package jisc

// One testing.B benchmark per table/figure of the paper's evaluation
// (§6), exercising the same scenario shapes as the jiscbench figure
// drivers but under the standard Go benchmark harness. Run with:
//
//	go test -bench=. -benchmem
//
// Sub-benchmarks compare the strategies the corresponding figure
// compares; ns/op ratios between siblings reproduce the figure's
// shape (see EXPERIMENTS.md).

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"jisc/internal/analysis"
	"jisc/internal/bench"
	"jisc/internal/core"
	"jisc/internal/eddy"
	"jisc/internal/engine"
	"jisc/internal/migrate"
	"jisc/internal/pipeline"
	"jisc/internal/plan"
	"jisc/internal/testseed"
	"jisc/internal/tuple"
	"jisc/internal/workload"
)

const (
	benchJoins  = 8
	benchWindow = 500
)

func benchSource(streams int) *workload.Source {
	return workload.MustNewSource(workload.Config{
		Streams: streams, Domain: benchWindow, Seed: 1,
	})
}

func benchPlan(streams int) *plan.Plan {
	order := make([]tuple.StreamID, streams)
	for i := range order {
		order[i] = tuple.StreamID(i)
	}
	return plan.MustLeftDeep(order...)
}

type benchFeeder interface {
	Feed(ev workload.Event)
	Migrate(p *plan.Plan) error
}

// warmAndMigrate fills every window, applies the swap transition, and
// returns the executor ready for migration-stage feeding.
func warmAndMigrate(b *testing.B, f benchFeeder, src *workload.Source, streams int, p, target *plan.Plan) {
	b.Helper()
	for i := 0; i < streams*benchWindow; i++ {
		f.Feed(src.Next())
	}
	if err := f.Migrate(target); err != nil {
		b.Fatal(err)
	}
}

// migrationStageBench measures per-tuple cost right after a transition
// of the given shape — Figures 7 (best) and 8 (worst).
func migrationStageBench(b *testing.B, worst bool) {
	streams := benchJoins + 1
	p := benchPlan(streams)
	var target *plan.Plan
	var err error
	if worst {
		target, err = p.Swap(1, streams-1)
	} else {
		target, err = p.Swap(streams-2, streams-1)
	}
	if err != nil {
		b.Fatal(err)
	}

	b.Run("jisc", func(b *testing.B) {
		src := benchSource(streams)
		e := engine.MustNew(engine.Config{Plan: p, WindowSize: benchWindow, Strategy: core.New()})
		warmAndMigrate(b, e, src, streams, p, target)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Feed(src.Next())
		}
	})
	b.Run("paralleltrack", func(b *testing.B) {
		src := benchSource(streams)
		pt := migrate.MustNewParallelTrack(migrate.PTConfig{
			Plan: p, WindowSize: benchWindow, CheckEvery: benchWindow / 10,
		})
		warmAndMigrate(b, pt, src, streams, p, target)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pt.Feed(src.Next())
		}
	})
	b.Run("cacq", func(b *testing.B) {
		src := benchSource(streams)
		c := eddy.MustNewCACQ(eddy.CACQConfig{Plan: p, WindowSize: benchWindow})
		warmAndMigrate(b, c, src, streams, p, target)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Feed(src.Next())
		}
	})
}

// BenchmarkFig7MigrationBestCase reproduces Figure 7's comparison: one
// incomplete state after the transition.
func BenchmarkFig7MigrationBestCase(b *testing.B) { migrationStageBench(b, false) }

// BenchmarkFig8MigrationWorstCase reproduces Figure 8's comparison:
// every intermediate state incomplete.
func BenchmarkFig8MigrationWorstCase(b *testing.B) { migrationStageBench(b, true) }

// BenchmarkFig9NormalOperation reproduces Figure 9: steady-state
// per-tuple cost with no transition — JISC vs a pure symmetric hash
// join plan vs CACQ.
func BenchmarkFig9NormalOperation(b *testing.B) {
	streams := benchJoins + 1
	p := benchPlan(streams)
	run := func(b *testing.B, f benchFeeder) {
		src := benchSource(streams)
		for i := 0; i < streams*benchWindow; i++ {
			f.Feed(src.Next())
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.Feed(src.Next())
		}
	}
	b.Run("jisc", func(b *testing.B) {
		run(b, engine.MustNew(engine.Config{Plan: p, WindowSize: benchWindow, Strategy: core.New()}))
	})
	b.Run("pure-shj", func(b *testing.B) {
		run(b, engine.MustNew(engine.Config{Plan: p, WindowSize: benchWindow, Strategy: engine.Static{}}))
	})
	b.Run("cacq", func(b *testing.B) {
		run(b, eddy.MustNewCACQ(eddy.CACQConfig{Plan: p, WindowSize: benchWindow}))
	})
}

// BenchmarkFig10TransitionLatency reproduces Figure 10: the cost of
// the transition itself (which the query pays as output latency). One
// warmed engine alternates between two worst-case plans, so every
// iteration measures a real transition on full windows: JISC's is
// O(operators), Moving State's recomputes every incomplete state.
func BenchmarkFig10TransitionLatency(b *testing.B) {
	streams := 5
	p := benchPlan(streams)
	target, err := p.Swap(1, streams-1)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, strat engine.Strategy) {
		src := benchSource(streams)
		e := engine.MustNew(engine.Config{Plan: p, WindowSize: benchWindow, Strategy: strat})
		for j := 0; j < streams*benchWindow; j++ {
			e.Feed(src.Next())
		}
		plans := [2]*plan.Plan{target, p}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := e.Migrate(plans[i%2]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("jisc", func(b *testing.B) { run(b, core.New()) })
	b.Run("movingstate", func(b *testing.B) { run(b, migrate.MovingState{}) })
}

// BenchmarkFig10NLTransitionLatency is Figure 10b's variant: the same
// alternating transition over nested-loops joins, where eager
// recomputation is quadratic in the window.
func BenchmarkFig10NLTransitionLatency(b *testing.B) {
	const win = 128
	streams := 4
	p := benchPlan(streams)
	target, err := p.Swap(1, streams-1)
	if err != nil {
		b.Fatal(err)
	}
	band := func(x, y *tuple.Tuple) bool { return x.Key%16 == y.Key%16 }
	run := func(b *testing.B, strat engine.Strategy) {
		src := benchSource(streams)
		e := engine.MustNew(engine.Config{
			Plan: p, WindowSize: win, Kind: engine.NLJoin, Theta: band, Strategy: strat,
		})
		for j := 0; j < streams*win; j++ {
			e.Feed(src.Next())
		}
		plans := [2]*plan.Plan{target, p}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := e.Migrate(plans[i%2]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("jisc", func(b *testing.B) { run(b, core.New()) })
	b.Run("movingstate", func(b *testing.B) { run(b, migrate.MovingState{}) })
}

// frequencyBench reproduces Figures 11 and 12: per-tuple cost under
// periodic transitions (every `period` tuples).
func frequencyBench(b *testing.B, worst bool) {
	const period = 2000
	streams := benchJoins + 1
	p := benchPlan(streams)
	swap := func(cur *plan.Plan) *plan.Plan {
		order, _ := cur.Order()
		var q *plan.Plan
		var err error
		if worst {
			q, err = cur.Swap(1, len(order)-1)
		} else {
			q, err = cur.Swap(len(order)-2, len(order)-1)
		}
		if err != nil {
			b.Fatal(err)
		}
		return q
	}
	run := func(b *testing.B, f benchFeeder) {
		src := benchSource(streams)
		cur := p
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i > 0 && i%period == 0 {
				cur = swap(cur)
				if err := f.Migrate(cur); err != nil {
					b.Fatal(err)
				}
			}
			f.Feed(src.Next())
		}
	}
	b.Run("jisc", func(b *testing.B) {
		run(b, engine.MustNew(engine.Config{Plan: p, WindowSize: benchWindow, Strategy: core.New()}))
	})
	b.Run("paralleltrack", func(b *testing.B) {
		run(b, migrate.MustNewParallelTrack(migrate.PTConfig{
			Plan: p, WindowSize: benchWindow, CheckEvery: benchWindow / 10,
		}))
	})
	b.Run("cacq", func(b *testing.B) {
		run(b, eddy.MustNewCACQ(eddy.CACQConfig{Plan: p, WindowSize: benchWindow}))
	})
}

// BenchmarkFig11FrequentTransitionsWorstCase reproduces Figure 11.
func BenchmarkFig11FrequentTransitionsWorstCase(b *testing.B) { frequencyBench(b, true) }

// BenchmarkFig12FrequentTransitionsBestCase reproduces Figure 12.
func BenchmarkFig12FrequentTransitionsBestCase(b *testing.B) { frequencyBench(b, false) }

// BenchmarkPropositionsMonteCarlo covers the §5 analysis table: the
// cost of sampling the pairwise-exchange distribution.
func BenchmarkPropositionsMonteCarlo(b *testing.B) {
	rng := rand.New(rand.NewSource(testseed.Seed(b, 1)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		analysis.SampleSwap(rng, 1024)
	}
}

// BenchmarkStairsEddy covers the §4.6 ablation: steady-state eddy
// execution with STAIR states, eager vs lazy after a worst-case
// routing change.
func BenchmarkStairsEddy(b *testing.B) {
	streams := 6
	p := benchPlan(streams)
	target, err := p.Swap(1, streams-1)
	if err != nil {
		b.Fatal(err)
	}
	for _, lazy := range []bool{false, true} {
		name := "eager"
		if lazy {
			name = "jisc-lazy"
		}
		b.Run(name, func(b *testing.B) {
			src := benchSource(streams)
			s := eddy.MustNewStairs(eddy.StairsConfig{Plan: p, WindowSize: benchWindow, Lazy: lazy})
			warmAndMigrate(b, s, src, streams, p, target)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Feed(src.Next())
			}
		})
	}
}

// BenchmarkProcedure2vs3 covers the Procedure 2 vs Procedure 3
// ablation: completion cost on left-deep plans right after a
// worst-case transition.
func BenchmarkProcedure2vs3(b *testing.B) {
	streams := benchJoins + 1
	p := benchPlan(streams)
	target, err := p.Swap(1, streams-1)
	if err != nil {
		b.Fatal(err)
	}
	for _, generic := range []bool{false, true} {
		name := "proc3-leftdeep"
		if generic {
			name = "proc2-generic"
		}
		b.Run(name, func(b *testing.B) {
			src := benchSource(streams)
			e := engine.MustNew(engine.Config{
				Plan: p, WindowSize: benchWindow,
				Strategy: &core.JISC{DisableLeftDeepFastPath: generic},
			})
			warmAndMigrate(b, e, src, streams, p, target)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Feed(src.Next())
			}
		})
	}
}

// BenchmarkSetDiffPipeline covers §4.7: steady-state set-difference
// throughput under JISC after an inner reorder.
func BenchmarkSetDiffPipeline(b *testing.B) {
	p := plan.MustLeftDeep(0, 1, 2, 3)
	e := engine.MustNew(engine.Config{
		Plan: p, WindowSize: benchWindow, Kind: engine.SetDiff, Strategy: core.New(),
	})
	src := workload.MustNewSource(workload.Config{Streams: 4, Domain: benchWindow, Seed: 1})
	for i := 0; i < 4*benchWindow; i++ {
		e.Feed(src.Next())
	}
	if err := e.Migrate(plan.MustLeftDeep(0, 3, 1, 2)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Feed(src.Next())
	}
}

// BenchmarkEndToEndFigureDrivers smoke-runs the jiscbench figure
// drivers at a small scale, covering the harness itself.
func BenchmarkEndToEndFigureDrivers(b *testing.B) {
	cfg := bench.Config{Window: 100, Domain: 100, Tuples: 2000, Seed: 1}
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure7(cfg, []int{3}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScalingJoins measures steady-state per-tuple cost as the
// plan deepens — the substrate behind every figure's x-axis.
func BenchmarkScalingJoins(b *testing.B) {
	for _, joins := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("joins-%d", joins), func(b *testing.B) {
			streams := joins + 1
			e := engine.MustNew(engine.Config{
				Plan: benchPlan(streams), WindowSize: benchWindow, Strategy: core.New(),
			})
			src := benchSource(streams)
			for i := 0; i < streams*benchWindow; i++ {
				e.Feed(src.Next())
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Feed(src.Next())
			}
		})
	}
}

// BenchmarkScalingWindow measures steady-state per-tuple cost as the
// windows widen (state sizes grow, match rates stay ≈1).
func BenchmarkScalingWindow(b *testing.B) {
	for _, win := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("window-%d", win), func(b *testing.B) {
			e := engine.MustNew(engine.Config{
				Plan: benchPlan(4), WindowSize: win, Strategy: core.New(),
			})
			src := workload.MustNewSource(workload.Config{Streams: 4, Domain: int64(win), Seed: 1})
			for i := 0; i < 4*win; i++ {
				e.Feed(src.Next())
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Feed(src.Next())
			}
		})
	}
}

// BenchmarkCheckpoint measures checkpoint serialization throughput.
func BenchmarkCheckpoint(b *testing.B) {
	e := engine.MustNew(engine.Config{
		Plan: benchPlan(4), WindowSize: 1000, Strategy: core.New(),
	})
	src := benchSource(4)
	for i := 0; i < 8000; i++ {
		e.Feed(src.Next())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := e.Checkpoint(&buf); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.Len()))
	}
}

// BenchmarkPartitionedThroughput compares single-runner and
// partitioned feeding (4 partitions) through the concurrent harness.
func BenchmarkPartitionedThroughput(b *testing.B) {
	for _, parts := range []int{1, 4} {
		b.Run(fmt.Sprintf("partitions-%d", parts), func(b *testing.B) {
			pp := pipeline.MustNewPartitioned(pipeline.Config{
				Engine: engine.Config{
					Plan: benchPlan(4), WindowSize: benchWindow, Strategy: core.New(),
				},
				QueueSize: 4096,
			}, parts)
			defer pp.Close()
			src := benchSource(4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := pp.Feed(src.Next()); err != nil {
					b.Fatal(err)
				}
			}
			if err := pp.Flush(); err != nil {
				b.Fatal(err)
			}
		})
	}
}
