// Networked: the full daemon stack in one process — a jiscd-style
// server hosting two named queries, concurrent TCP producers, a
// subscriber streaming results, and a live MIGRATE on one query while
// traffic keeps flowing. Everything speaks the wire protocol through
// the client library, exactly as separate processes would.
//
// Run with:
//
//	go run ./examples/networked
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"jisc/internal/core"
	"jisc/internal/engine"
	"jisc/internal/pipeline"
	"jisc/internal/plan"
	"jisc/internal/server"
	"jisc/internal/tuple"
	"jisc/internal/workload"
)

func main() {
	srv, err := server.New(server.Config{Pipeline: pipeline.Config{
		Engine: engine.Config{
			Plan:       plan.MustLeftDeep(0, 1, 2),
			WindowSize: 2000,
			Strategy:   core.New(),
		},
		QueueSize: 4096,
	}})
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	addr := srv.Addr().String()
	fmt.Printf("daemon on %s\n", addr)

	// An admin client creates a second query at runtime.
	admin, err := server.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer admin.Close()
	if err := admin.Create("audit", 500, plan.MustLeftDeep(0, 1, 2)); err != nil {
		log.Fatal(err)
	}
	names, err := admin.List()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hosted queries: %v\n", names)

	// A subscriber streams the default query's results.
	subClient, err := server.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer subClient.Close()
	results, err := subClient.Subscribe()
	if err != nil {
		log.Fatal(err)
	}
	var resultCount sync.WaitGroup
	resultCount.Add(1)
	var seen int
	go func() {
		defer resultCount.Done()
		for r := range results {
			seen++
			if seen <= 3 {
				fmt.Printf("streamed result: key=%d %s\n", r.Key, r.Fingerprint)
			}
			if seen == 200 {
				return
			}
		}
	}()

	// Three producer connections feed the default query concurrently;
	// a fourth feeds the audit query.
	var wg sync.WaitGroup
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			c, err := server.Dial(addr)
			if err != nil {
				log.Print(err)
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(p)))
			for i := 0; i < 3000; i++ {
				ev := workload.Event{
					Stream: tuple.StreamID(rng.Intn(3)),
					Key:    tuple.Value(rng.Intn(300)),
				}
				if err := c.Feed(ev); err != nil {
					log.Print(err)
					return
				}
				if p == 0 && i == 1500 {
					// Live re-plan mid-traffic, through the protocol.
					if err := c.Migrate(plan.MustLeftDeep(2, 0, 1)); err != nil {
						log.Print(err)
						return
					}
					fmt.Println("producer 0 migrated the default query mid-stream")
				}
			}
		}(p)
	}
	wg.Wait()
	resultCount.Wait()

	st, err := admin.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("default query: input=%d output=%d transitions=%d completions=%d\n",
		st.Input, st.Output, st.Transitions, st.Completions)
	fmt.Printf("subscriber saw %d results streamed over TCP\n", seen)
}
