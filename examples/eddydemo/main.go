// Eddydemo: the eddy-based execution frameworks the paper discusses —
// CACQ with stateless SteMs (§3.1), STAIRs with eager Promote/Demote
// (§3.2), and JISC-on-STAIRs (§4.6) — side by side on the same
// workload with a forced routing change. The demo prints each
// framework's running time, eddy visits, and the work its migration
// performed, showing the trade the paper analyzes: CACQ migrates for
// free but recomputes intermediates on every tuple; eager STAIRs
// promotes everything at once; lazy STAIRs promotes only the entries
// that probes actually need.
//
// Run with:
//
//	go run ./examples/eddydemo
package main

import (
	"fmt"
	"log"
	"time"

	"jisc/internal/eddy"
	"jisc/internal/metrics"
	"jisc/internal/plan"
	"jisc/internal/workload"
)

const (
	streams = 6
	window  = 800
	warm    = 30000
	after   = 30000
)

type executor interface {
	Feed(ev workload.Event)
	Migrate(p *plan.Plan) error
	Name() string
	Metrics() metrics.Snapshot
}

func main() {
	start := plan.MustLeftDeep(0, 1, 2, 3, 4, 5)
	target, err := start.Swap(1, 5) // worst case: all prefixes change
	if err != nil {
		log.Fatal(err)
	}

	build := func() []executor {
		return []executor{
			eddy.MustNewCACQ(eddy.CACQConfig{Plan: start, WindowSize: window}),
			eddy.MustNewStairs(eddy.StairsConfig{Plan: start, WindowSize: window}),
			eddy.MustNewStairs(eddy.StairsConfig{Plan: start, WindowSize: window, Lazy: true}),
		}
	}

	fmt.Printf("%-12s %12s %12s %12s %10s %12s\n",
		"framework", "warm", "migrate", "after", "eddy-visits", "promo-work")
	for _, ex := range build() {
		src := workload.MustNewSource(workload.Config{
			Streams: streams, Domain: window, Seed: 99,
		})
		t0 := time.Now()
		for i := 0; i < warm; i++ {
			ex.Feed(src.Next())
		}
		warmTime := time.Since(t0)

		t1 := time.Now()
		if err := ex.Migrate(target); err != nil {
			log.Fatal(err)
		}
		migTime := time.Since(t1)

		t2 := time.Now()
		for i := 0; i < after; i++ {
			ex.Feed(src.Next())
		}
		afterTime := time.Since(t2)

		m := ex.Metrics()
		fmt.Printf("%-12s %12v %12v %12v %10d %12d\n",
			ex.Name(), warmTime.Round(time.Millisecond), migTime.Round(time.Microsecond),
			afterTime.Round(time.Millisecond), m.EddyVisits,
			m.MigrationWork+m.CompletedEntries)
	}
	fmt.Println("\nmigrate column: CACQ swaps a routing table; eager STAIRs halts to")
	fmt.Println("promote every state entry; JISC-on-STAIRs defers promotion to the")
	fmt.Println("probes that need it (promo-work shifts into the 'after' phase).")
}
