// Compliance: a streaming set-difference pipeline (§4.7 of the
// paper). An exchange emits orders; three control streams — cancels,
// blocked accounts, and fraud flags — each veto matching orders. The
// continuous query
//
//	orders − cancels − blocked − flagged
//
// streams every clean order, retracting results when a veto arrives
// later and re-emitting them when the veto's window expires. Mid-run
// the pipeline migrates to check the currently busiest veto stream
// first, using JISC: the reordered chain's states complete lazily.
//
// Run with:
//
//	go run ./examples/compliance
package main

import (
	"fmt"
	"log"
	"math/rand"

	"jisc"
)

const (
	orders  jisc.StreamID = 0
	cancels jisc.StreamID = 1
	blocked jisc.StreamID = 2
	flagged jisc.StreamID = 3
)

func main() {
	clean := map[string]bool{} // currently clean orders by provenance
	var adds, retractions int
	q, err := jisc.NewSetDiffQuery(jisc.QueryConfig{
		Plan:       jisc.LeftDeep(orders, cancels, blocked, flagged),
		WindowSize: 500,
		Strategy:   jisc.JISC,
		Output: func(d jisc.Delta) {
			if d.Retraction {
				retractions++
				delete(clean, d.Tuple.Fingerprint())
				return
			}
			adds++
			clean[d.Tuple.Fingerprint()] = true
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(3))
	feed := func(n int, cancelRate, blockRate, flagRate int) {
		for i := 0; i < n; i++ {
			id := jisc.Value(rng.Intn(400))
			q.Feed(jisc.Event{Stream: orders, Key: id})
			if rng.Intn(100) < cancelRate {
				q.Feed(jisc.Event{Stream: cancels, Key: jisc.Value(rng.Intn(400))})
			}
			if rng.Intn(100) < blockRate {
				q.Feed(jisc.Event{Stream: blocked, Key: jisc.Value(rng.Intn(400))})
			}
			if rng.Intn(100) < flagRate {
				q.Feed(jisc.Event{Stream: flagged, Key: jisc.Value(rng.Intn(400))})
			}
		}
	}

	// Phase 1: cancels dominate.
	feed(4000, 40, 5, 5)
	fmt.Printf("phase 1: %d clean orders live, %d emitted, %d retracted\n",
		len(clean), adds, retractions)

	// Fraud wave: reorder so the fraud stream filters first. The
	// running query migrates without halting; reordered diff states
	// complete on demand.
	if err := q.Migrate(jisc.LeftDeep(orders, flagged, cancels, blocked)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-planned to %s\n", q.Plan())

	// Phase 2: fraud flags dominate.
	feed(4000, 5, 5, 40)
	m := q.Metrics()
	fmt.Printf("phase 2: %d clean orders live, %d emitted, %d retracted\n",
		len(clean), adds, retractions)
	fmt.Printf("inputs=%d transitions=%d lazy completions=%d\n",
		m.Input, m.Transitions, m.Completions)
}
