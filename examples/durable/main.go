// Durable: stop and resume a continuous query without losing state —
// even in the middle of a lazy migration. The query joins three
// streams, migrates its plan, and is checkpointed to disk while the
// new plan's states are still incomplete; a second engine restores
// the checkpoint and keeps answering as if nothing happened, with
// JISC's completion machinery (attempted keys, counters, birth ticks)
// carried across the restart.
//
// Run with:
//
//	go run ./examples/durable
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"jisc"
)

func main() {
	dir, err := os.MkdirTemp("", "jisc-durable")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "query.ckpt")

	var results int
	out := func(jisc.Delta) { results++ }

	q, err := jisc.NewQuery(jisc.QueryConfig{
		Plan: jisc.LeftDeep(0, 1, 2), WindowSize: 500, Strategy: jisc.JISC,
		Output: out,
	})
	if err != nil {
		log.Fatal(err)
	}
	for id := jisc.Value(0); id < 400; id++ {
		for s := jisc.StreamID(0); s < 3; s++ {
			q.Feed(jisc.Event{Stream: s, Key: id % 100})
		}
	}
	// Migrate, then stop almost immediately: most states of the new
	// plan are still incomplete.
	if err := q.Migrate(jisc.LeftDeep(2, 1, 0)); err != nil {
		log.Fatal(err)
	}
	q.Feed(jisc.Event{Stream: 0, Key: 7})
	m := q.Metrics()
	fmt.Printf("before checkpoint: in=%d out=%d transitions=%d completions=%d\n",
		m.Input, m.Output, m.Transitions, m.Completions)

	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := q.Checkpoint(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	st, _ := os.Stat(path)
	fmt.Printf("checkpointed %d bytes mid-migration to %s\n", st.Size(), path)

	// "Restart": a new process would do exactly this.
	f, err = os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	r, err := jisc.RestoreQuery(f, jisc.QueryConfig{
		WindowSize: 500, Strategy: jisc.JISC, Output: out,
	})
	if err != nil {
		log.Fatal(err)
	}
	for id := jisc.Value(0); id < 200; id++ {
		for s := jisc.StreamID(0); s < 3; s++ {
			r.Feed(jisc.Event{Stream: s, Key: id % 100})
		}
	}
	m = r.Metrics()
	fmt.Printf("after restore: plan=%s completions=%d (lazy migration resumed)\n",
		r.Plan(), m.Completions)
	fmt.Printf("total results across the restart: %d\n", results)
}
