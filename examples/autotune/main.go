// Autotune: closing the optimize-at-runtime loop. The paper studies
// the plan-transition mechanism and leaves the trigger policy to the
// optimizer; this example wires the two together. An engine runs a
// five-way join whose streams have very different selectivities — and
// those selectivities swap mid-run. The optimizer.Advisor watches the
// live probe/match counters, and whenever the measured best order
// beats the running plan by enough margin, it proposes a transition
// that JISC applies without halting the query.
//
// Run with:
//
//	go run ./examples/autotune
package main

import (
	"fmt"
	"log"

	"jisc/internal/core"
	"jisc/internal/engine"
	"jisc/internal/optimizer"
	"jisc/internal/plan"
	"jisc/internal/tuple"
	"jisc/internal/workload"
)

const (
	streams = 5
	window  = 300
	phase   = 40000
)

func main() {
	e := engine.MustNew(engine.Config{
		Plan:       plan.MustLeftDeep(0, 1, 2, 3, 4),
		WindowSize: window,
		Strategy:   core.New(),
	})
	advisor := optimizer.MustNew(optimizer.Config{
		MinImprovement: 0.2,
		Cooldown:       5000,
		MinProbes:      32,
	})

	// Phase 1: stream 1 is a hose (tiny key domain, matches
	// constantly) while stream 4 is highly selective. Phase 2 swaps
	// their roles.
	domainsByPhase := [][]int64{
		{300, 20, 300, 300, 4000},
		{300, 4000, 300, 300, 20},
	}

	for ph, domains := range domainsByPhase {
		src := workload.MustNewSource(workload.Config{
			Streams: streams, Domain: 300, Seed: int64(ph + 1), Domains: domains,
		})
		for i := 0; i < phase; i++ {
			e.Feed(src.Next())
			if i%500 == 0 {
				advisor.Observe(e)
				if p, ok := advisor.Propose(e.Plan()); ok {
					if err := e.Migrate(p); err != nil {
						log.Fatal(err)
					}
					order, _ := p.Order()
					fmt.Printf("phase %d @%6d: re-planned to %v", ph+1, i, order)
					fmt.Printf("  (sel:")
					for s := tuple.StreamID(0); s < streams; s++ {
						if v, ok := advisor.Selectivity(s); ok {
							fmt.Printf(" %d=%.2f", s, v)
						}
					}
					fmt.Println(")")
				}
			}
		}
		m := e.Metrics()
		fmt.Printf("phase %d done: in=%d out=%d transitions=%d lazy-completions=%d\n",
			ph+1, m.Input, m.Output, m.Transitions, m.Completions)
	}
}
