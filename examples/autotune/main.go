// Autotune: closing the optimize-at-runtime loop. The paper studies
// the plan-transition mechanism and leaves the trigger policy to the
// optimizer; internal/adaptive packages that policy as a closed-loop
// autopilot. An engine runs a five-way join whose streams have very
// different selectivities — and those selectivities swap mid-run. The
// adaptive.Controller watches the live probe/match counters and,
// whenever the measured best order beats the running plan by enough
// margin on enough consecutive ticks, installs the transition through
// JISC without halting the query.
//
// Run with:
//
//	go run ./examples/autotune
package main

import (
	"fmt"
	"time"

	"jisc/internal/adaptive"
	"jisc/internal/core"
	"jisc/internal/engine"
	"jisc/internal/plan"
	"jisc/internal/workload"
)

const (
	streams = 5
	window  = 300
	phase   = 40000
)

func main() {
	e := engine.MustNew(engine.Config{
		Plan:       plan.MustLeftDeep(0, 1, 2, 3, 4),
		WindowSize: window,
		Strategy:   core.New(),
	})
	auto := adaptive.MustNew(adaptive.SingleEngine{E: e}, adaptive.Config{
		Cooldown:  2 * time.Second,
		MinProbes: 32,
	})

	// Phase 1: stream 1 is a hose (tiny key domain, matches
	// constantly) while stream 4 is highly selective. Phase 2 swaps
	// their roles. The controller is single-stepped on a logical clock
	// (one tick per 500 tuples), the deterministic mode the simulation
	// harness uses too.
	domainsByPhase := [][]int64{
		{300, 20, 300, 300, 4000},
		{300, 4000, 300, 300, 20},
	}
	clock := time.Unix(0, 0)
	for ph, domains := range domainsByPhase {
		src := workload.MustNewSource(workload.Config{
			Streams: streams, Domain: 300, Seed: int64(ph + 1), Domains: domains,
		})
		for i := 0; i < phase; i++ {
			e.Feed(src.Next())
			if i%500 == 0 {
				clock = clock.Add(500 * time.Millisecond)
				before := auto.Migrations()
				auto.Step(clock)
				if auto.Migrations() != before {
					order, _ := e.Plan().Order()
					fmt.Printf("phase %d @%6d: autopilot re-planned to %v\n", ph+1, i, order)
				}
			}
		}
		m := e.Metrics()
		fmt.Printf("phase %d done: in=%d out=%d transitions=%d lazy-completions=%d auto-migrations=%d\n",
			ph+1, m.Input, m.Output, m.Transitions, m.Completions, auto.Migrations())
	}
}
