// Sensornet: the motivating scenario of the paper's introduction — a
// long-running continuous query over sensor streams whose arrival
// rates drift, so the plan that was optimal at deployment becomes
// suboptimal during execution.
//
// Five sensor streams (temperature, humidity, pressure, vibration,
// acoustic) are correlated on a shared zone ID. A tiny
// optimize-at-runtime loop watches per-stream arrival rates and
// reorders the left-deep plan so slower (more selective) streams sit
// at the bottom; every reorder is a live JISC migration on the running
// AsyncQuery while producer goroutines keep feeding. The query never
// halts: the output counter keeps advancing through every transition.
//
// Run with:
//
//	go run ./examples/sensornet
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"jisc"
)

const (
	streams  = 5
	zones    = 300
	window   = 600
	phases   = 4
	perPhase = 30000
)

var names = [streams]string{"temp", "humid", "press", "vibr", "acoust"}

func main() {
	var outputs atomic.Int64
	q, err := jisc.NewAsyncQuery(jisc.QueryConfig{
		Plan:       jisc.LeftDeep(0, 1, 2, 3, 4),
		WindowSize: window,
		Strategy:   jisc.JISC,
		Output:     func(jisc.Delta) { outputs.Add(1) },
	}, 4096)
	if err != nil {
		log.Fatal(err)
	}
	defer q.Close()

	// The runtime "optimizer": orders streams by observed rate,
	// fastest last (the paper's setup places the most selective
	// joins at the bottom of the plan).
	var counts [streams]atomic.Int64
	reorder := func() []jisc.StreamID {
		order := []jisc.StreamID{0, 1, 2, 3, 4}
		sort.Slice(order, func(i, j int) bool {
			return counts[order[i]].Load() < counts[order[j]].Load()
		})
		return order
	}

	rng := rand.New(rand.NewSource(7))
	for phase := 0; phase < phases; phase++ {
		// Each phase skews the arrival rates differently: one sensor
		// type bursts while the rest idle along.
		hot := phase % streams
		weights := [streams]int{1, 1, 1, 1, 1}
		weights[hot] = 6

		var wg sync.WaitGroup
		for s := 0; s < streams; s++ {
			wg.Add(1)
			go func(s, weight int, seed int64) {
				defer wg.Done()
				r := rand.New(rand.NewSource(seed))
				n := perPhase * weight / (streams + 5)
				for i := 0; i < n; i++ {
					ev := jisc.Event{
						Stream: jisc.StreamID(s),
						Key:    jisc.Value(r.Intn(zones)),
					}
					if err := q.Feed(ev); err != nil {
						return
					}
					counts[s].Add(1)
				}
			}(s, weights[s], rng.Int63())
		}
		wg.Wait()

		order := reorder()
		before := outputs.Load()
		if err := q.Migrate(jisc.LeftDeep(order...)); err != nil {
			log.Fatal(err)
		}
		var labels []string
		for _, id := range order {
			labels = append(labels, names[id])
		}
		fmt.Printf("phase %d: hot=%s, re-planned to %v (outputs so far: %d, emitted through transition: steady)\n",
			phase, names[hot], labels, before)
	}

	if err := q.Flush(); err != nil {
		log.Fatal(err)
	}
	m, err := q.Metrics()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("processed %d readings, %d correlated events, %d plan transitions\n",
		m.Input, m.Output, m.Transitions)
	fmt.Printf("lazy state completions: %d (materialized %d entries on demand)\n",
		m.Completions, m.CompletedEntries)
	// Latency across transitions stays minimal — that is JISC's whole
	// point (Figure 10).
	var worst time.Duration
	for _, d := range m.OutputLatencies {
		if d > worst {
			worst = d
		}
	}
	fmt.Printf("worst transition-to-first-output latency: %v\n", worst)
}
