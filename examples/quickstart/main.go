// Quickstart: a three-way windowed stream join that switches its
// execution plan mid-flight without halting.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"jisc"
)

func main() {
	// Streams: 0 = orders, 1 = payments, 2 = shipments, joined on a
	// shared order ID. The initial plan joins orders with payments
	// first: ((orders ⋈ payments) ⋈ shipments).
	var results int
	q, err := jisc.NewQuery(jisc.QueryConfig{
		Plan:       jisc.LeftDeep(0, 1, 2),
		WindowSize: 1000,
		Strategy:   jisc.JISC,
		Output: func(d jisc.Delta) {
			results++
			if results <= 3 {
				fmt.Printf("matched order %d: %s\n", d.Tuple.Key, d.Tuple.Fingerprint())
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Feed some correlated traffic.
	for id := jisc.Value(1); id <= 500; id++ {
		q.Feed(jisc.Event{Stream: 0, Key: id})
		q.Feed(jisc.Event{Stream: 1, Key: id})
		if id%2 == 0 {
			q.Feed(jisc.Event{Stream: 2, Key: id})
		}
	}
	fmt.Printf("results before transition: %d\n", results)

	// The optimizer decides payments should join shipments first.
	// JISC migrates the running query lazily: no halt, no lost or
	// duplicated results, missing state computed only when probed.
	if err := q.Migrate(jisc.LeftDeep(1, 2, 0)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("migrated to %s\n", q.Plan())

	for id := jisc.Value(501); id <= 1000; id++ {
		q.Feed(jisc.Event{Stream: 2, Key: id})
		q.Feed(jisc.Event{Stream: 1, Key: id})
		q.Feed(jisc.Event{Stream: 0, Key: id})
	}

	m := q.Metrics()
	fmt.Printf("results after transition: %d\n", results)
	fmt.Printf("tuples=%d outputs=%d transitions=%d on-demand completions=%d (entries %d)\n",
		m.Input, m.Output, m.Transitions, m.Completions, m.CompletedEntries)
}
