#!/usr/bin/env bash
# End-to-end overload smoke, two phases:
#
#  1. Rate hose: boot jiscd with an ingest rate and hose it at 4x that
#     rate with cmd/jischaos. Assert the conservation law from the two
#     independent ledgers — the hose's per-line accounting and the
#     server's STATS counters:
#         input + admission_shed == ok-tuples
#         rejected              == busy-tuples
#     with dead == 0 on a clean loopback, and that the rate limiter
#     actually shed (a smoke that never degrades proves nothing).
#
#  2. Drain under chaos: boot a durable jiscd behind the jischaos
#     proxy (latency + jitter), hose it from the far side, SIGTERM the
#     server mid-hose and require exit 0 — the zero-loss drain. A
#     replacement on the same WAL directory must recover with
#     recovered_events=0 (the drain's final checkpoint left an empty
#     WAL tail) and finish serving the hose. RSS is sampled during the
#     hose against a generous cap: admission bounds queue memory, so
#     an overloaded server must not balloon.
#
# Usage: bash scripts/overload_smoke.sh
# Env:   JISCD    path to a built jiscd binary    (default: builds one)
#        JISCHAOS path to a built jischaos binary (default: builds one)
set -euo pipefail

JISCD=${JISCD:-}
JISCHAOS=${JISCHAOS:-}
if [ -z "$JISCD" ]; then
  JISCD=/tmp/jiscd-overload-smoke
  go build -o "$JISCD" ./cmd/jiscd
fi
if [ -z "$JISCHAOS" ]; then
  JISCHAOS=/tmp/jischaos-overload-smoke
  go build -o "$JISCHAOS" ./cmd/jischaos
fi

WAL=$(mktemp -d /tmp/jisc-overload-wal.XXXXXX)
HOSE_OUT=$(mktemp /tmp/jisc-overload-hose.XXXXXX)
ADDR=127.0.0.1:7983
PROXY=127.0.0.1:7984
HOST=${ADDR%:*} PORT=${ADDR#*:}
JISCD_PID= PROXY_PID= HOSE_PID=
RSS_CAP_KB=$((400 * 1024))

cleanup() {
  [ -n "$HOSE_PID" ] && kill "$HOSE_PID" 2>/dev/null || true
  [ -n "$PROXY_PID" ] && kill "$PROXY_PID" 2>/dev/null || true
  [ -n "$JISCD_PID" ] && kill "$JISCD_PID" 2>/dev/null || true
  rm -rf "$WAL" "$HOSE_OUT"
}
trap cleanup EXIT

wait_up() { # wait_up HOST PORT
  for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/$1/$2") 2>/dev/null; then return; fi
    sleep 0.1
  done
  echo "server at $1:$2 did not come up" >&2
  exit 1
}

ask() {
  exec 3<>"/dev/tcp/$HOST/$PORT"
  printf '%s\n' "$1" >&3
  IFS= read -r REPLY <&3
  exec 3<&- 3>&-
  printf '%s\n' "$REPLY"
}

# stat_field STATS_LINE NAME: extract one key=value field.
stat_field() {
  printf '%s\n' "$1" | tr ' ' '\n' | sed -n "s/^$2=//p"
}

# hose_field HOSE_LINE NAME: extract one key=value field from the
# hose's machine-readable summary.
hose_field() {
  sed -n 's/^HOSE .*/&/p' "$1" | tr ' ' '\n' | sed -n "s/^$2=//p"
}

echo "== phase 1: 4x rate hose, conservation =="

"$JISCD" -addr "$ADDR" -plan "0,1,2" -window 200 \
  -ingest-rate 2000 -ingest-burst 200 -inflight-budget 64k &
JISCD_PID=$!
wait_up "$HOST" "$PORT"

"$JISCHAOS" hose -addr "$ADDR" -tuples 20000 -batch 20 -rate 8000 \
  -streams 3 -domain 50 -timeout 60s >"$HOSE_OUT"

# Let the admitted tail drain out of the queues: STATS input is the
# processed counter, and the conservation check is exact only once
# in-flight returns to zero.
for _ in $(seq 1 100); do
  STATS=$(ask "STATS")
  [ "$(stat_field "$STATS" inflight_bytes)" = 0 ] && break
  sleep 0.1
done

SENT=$(hose_field "$HOSE_OUT" sent)
OK=$(hose_field "$HOSE_OUT" ok)
BUSY=$(hose_field "$HOSE_OUT" busy)
DEAD=$(hose_field "$HOSE_OUT" dead)
INPUT=$(stat_field "$STATS" input)
SHED=$(stat_field "$STATS" admission_shed)
REJ=$(stat_field "$STATS" rejected)
echo "hose: sent=$SENT ok=$OK busy=$BUSY dead=$DEAD"
echo "stats: input=$INPUT admission_shed=$SHED rejected=$REJ"

[ "$SENT" = 20000 ] || { echo "hose did not send everything"; exit 1; }
[ "$DEAD" = 0 ] || { echo "connections died on a clean loopback"; exit 1; }
[ $((INPUT + SHED)) -eq "$OK" ] || { echo "conservation broken: input+shed != ok"; exit 1; }
[ "$REJ" = "$BUSY" ] || { echo "conservation broken: rejected != busy"; exit 1; }
[ "$SHED" -gt 0 ] || { echo "a 4x hose shed nothing; the rate limiter is inert"; exit 1; }

kill "$JISCD_PID"
wait "$JISCD_PID" 2>/dev/null || true
JISCD_PID=

echo "== phase 2: SIGTERM drain mid-hose, behind the chaos proxy =="

"$JISCD" -addr "$ADDR" -plan "0,1,2" -window 200 -wal "$WAL" \
  -ingest-rate 20000 -inflight-budget 256k -drain-timeout 30s &
JISCD_PID=$!
wait_up "$HOST" "$PORT"

"$JISCHAOS" proxy -listen "$PROXY" -target "$ADDR" -seed 42 \
  -latency 1ms -jitter 2ms &
PROXY_PID=$!
wait_up "${PROXY%:*}" "${PROXY#*:}"

"$JISCHAOS" hose -addr "$PROXY" -tuples 30000 -batch 25 \
  -streams 3 -domain 50 -timeout 120s >"$HOSE_OUT" &
HOSE_PID=$!

# SIGTERM only once the hose has real acknowledged work in flight, and
# sample RSS while the server is under fire: admission bounds queued
# bytes, so an overloaded server must stay within a generous cap.
for _ in $(seq 1 200); do
  INPUT=$(stat_field "$(ask "STATS")" input)
  RSS_KB=$(sed -n 's/^VmRSS:[^0-9]*\([0-9]*\).*/\1/p' "/proc/$JISCD_PID/status")
  [ "$RSS_KB" -lt "$RSS_CAP_KB" ] || { echo "RSS $RSS_KB KiB over cap under hose"; exit 1; }
  [ "${INPUT:-0}" -ge 2000 ] && break
  sleep 0.05
done
[ "${INPUT:-0}" -ge 2000 ] || { echo "hose never got traffic through the proxy"; exit 1; }

kill -TERM "$JISCD_PID"
DRAIN_RC=0
wait "$JISCD_PID" || DRAIN_RC=$?
JISCD_PID=
[ "$DRAIN_RC" = 0 ] || { echo "SIGTERM drain exited $DRAIN_RC, want 0"; exit 1; }
echo "drain mid-hose: exit 0"

# The replacement recovers on the same WAL and finishes serving the
# hose through the same proxy.
"$JISCD" -addr "$ADDR" -plan "0,1,2" -window 200 -wal "$WAL" \
  -ingest-rate 20000 -inflight-budget 256k -drain-timeout 30s &
JISCD_PID=$!
wait_up "$HOST" "$PORT"

HOSE_RC=0
wait "$HOSE_PID" || HOSE_RC=$?
HOSE_PID=
[ "$HOSE_RC" = 0 ] || { echo "hose exited $HOSE_RC: $(cat "$HOSE_OUT")"; exit 1; }

STATS=$(ask "STATS")
SENT=$(hose_field "$HOSE_OUT" sent)
OK=$(hose_field "$HOSE_OUT" ok)
BUSY=$(hose_field "$HOSE_OUT" busy)
DEAD=$(hose_field "$HOSE_OUT" dead)
INPUT=$(stat_field "$STATS" input)
SHED=$(stat_field "$STATS" admission_shed)
RECOVERED=$(stat_field "$STATS" recovered_events)
echo "hose: sent=$SENT ok=$OK busy=$BUSY dead=$DEAD"
echo "stats: input=$INPUT admission_shed=$SHED recovered_events=$RECOVERED"

[ "$SENT" = 30000 ] || { echo "hose did not send everything"; exit 1; }
# recovered_events=0 is the zero-loss proof: the drain's final
# checkpoint pinned everything admitted, leaving no WAL tail to replay.
[ "$RECOVERED" = 0 ] || { echo "drain lost its checkpoint: recovered_events=$RECOVERED"; exit 1; }
# Acked lines were admitted or shed; >= because an ack can die on the
# proxied wire after the server committed the batch (counted dead by
# the hose, processed by the server).
[ $((INPUT + SHED)) -ge "$OK" ] || { echo "acknowledged tuples lost: input+shed < ok"; exit 1; }
[ "$DEAD" -gt 0 ] || { echo "no connection died across a mid-hose restart?"; exit 1; }

kill "$JISCD_PID"
wait "$JISCD_PID" 2>/dev/null || true
JISCD_PID=
kill -INT "$PROXY_PID" 2>/dev/null || true
wait "$PROXY_PID" 2>/dev/null || true
PROXY_PID=

echo "overload smoke passed: conservation held, drain lost nothing"
