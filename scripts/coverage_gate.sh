#!/usr/bin/env bash
# Coverage gate: fail if total statement coverage drops below the
# baseline recorded in .github/coverage-baseline.txt.
#
# The baseline is the value measured when the gate was introduced (or
# last ratcheted). A 0.2-point tolerance absorbs scheduling jitter in
# goroutine-heavy paths; anything below that is a real regression —
# either add tests or consciously lower the baseline in the same PR
# and say why.
set -euo pipefail
cd "$(dirname "$0")/.."

baseline=$(tr -d '[:space:]' < .github/coverage-baseline.txt)
go test -coverprofile=coverage.out ./... > /dev/null
total=$(go tool cover -func=coverage.out | tail -1 | awk '{sub(/%/, "", $3); print $3}')
echo "total statement coverage: ${total}% (baseline ${baseline}%)"
if ! awk -v t="$total" -v b="$baseline" 'BEGIN { exit !(t + 0.2 >= b) }'; then
  echo "FAIL: coverage ${total}% fell below the baseline ${baseline}%" >&2
  echo "add tests for the new code, or lower .github/coverage-baseline.txt in this PR with justification" >&2
  exit 1
fi
if awk -v t="$total" -v b="$baseline" 'BEGIN { exit !(t >= b + 1.0) }'; then
  echo "note: coverage is ≥1 point above baseline; consider ratcheting .github/coverage-baseline.txt up to ${total}"
fi
