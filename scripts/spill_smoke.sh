#!/usr/bin/env bash
# End-to-end spill smoke: boot jiscd with a WAL and a state budget far
# below the working set, feed over TCP until the store is spilling and
# faulting, kill -9 mid-spill, recover, and assert the replayed engine
# reaches the identical logical state (counters and plan). Spill
# segments are a residency cache, not durable state — recovery rebuilds
# from the WAL and re-spills under the same budget.
#
# Usage: bash scripts/spill_smoke.sh
# Env:   JISCD  path to a built jiscd binary (default: builds one)
set -euo pipefail

JISCD=${JISCD:-}
if [ -z "$JISCD" ]; then
  JISCD=/tmp/jiscd-spill-smoke
  go build -o "$JISCD" ./cmd/jiscd
fi
WAL=$(mktemp -d /tmp/jisc-spill-wal.XXXXXX)
ADDR=127.0.0.1:7981
HOST=${ADDR%:*} PORT=${ADDR#*:}
JISCD_PID=

cleanup() {
  [ -n "$JISCD_PID" ] && kill "$JISCD_PID" 2>/dev/null || true
  rm -rf "$WAL"
}
trap cleanup EXIT

start() {
  "$JISCD" -addr "$ADDR" -wal "$WAL" -window 400 -state-budget 16k -plan "0,1,2" &
  JISCD_PID=$!
  for _ in $(seq 1 50); do
    if exec 3<>"/dev/tcp/$HOST/$PORT" 2>/dev/null; then exec 3<&- 3>&-; return; fi
    sleep 0.1
  done
  echo "jiscd did not come up" >&2
  exit 1
}

ask() {
  exec 3<>"/dev/tcp/$HOST/$PORT"
  printf '%s\n' "$1" >&3
  IFS= read -r REPLY <&3
  exec 3<&- 3>&-
  printf '%s\n' "$REPLY"
}

# stat_field STATS_LINE NAME: extract one key=value field.
stat_field() {
  printf '%s\n' "$1" | tr ' ' '\n' | sed -n "s/^$2=//p"
}

# Keys cycle over a modest domain: wide enough that join fan-out stays
# small, narrow enough that the window holds every key and probes keep
# touching buckets the budget has pushed out — forcing just-in-time
# faults.
feed_round() {
  exec 3<>"/dev/tcp/$HOST/$PORT"
  local lines=0 keys s i
  for _ in $(seq 1 10); do
    for s in 0 1 2; do
      keys=""
      for i in $(seq 1 60); do
        keys="$keys $((RANDOM % 200))"
      done
      printf 'FEEDB %s%s\n' "$s" "$keys" >&3
      lines=$((lines + 1))
    done
  done
  for _ in $(seq 1 "$lines"); do
    IFS= read -r REPLY <&3
    [ "$REPLY" = OK ] || { echo "feed rejected: $REPLY" >&2; exit 1; }
  done
  exec 3<&- 3>&-
}

start
ask "MIGRATE ((0 2) 1)" >/dev/null

FAULTS=0
for round in $(seq 1 20); do
  feed_round
  STATS=$(ask "STATS")
  FAULTS=$(stat_field "$STATS" spill_faults)
  echo "round $round: spill_faults=$FAULTS state_bytes=$(stat_field "$STATS" state_bytes)"
  [ "${FAULTS:-0}" -ge 1 ] && break
done
[ "${FAULTS:-0}" -ge 1 ] || { echo "budget never forced a fault"; exit 1; }

STATS_BEFORE=$(ask "STATS")
PLAN_BEFORE=$(ask "PLAN")
echo "before crash: $STATS_BEFORE / $PLAN_BEFORE"

kill -9 "$JISCD_PID"
wait "$JISCD_PID" 2>/dev/null || true

start
STATS_AFTER=$(ask "STATS")
PLAN_AFTER=$(ask "PLAN")
echo "after recovery: $STATS_AFTER / $PLAN_AFTER"

# Recovery must replay something, and the replayed engine must land on
# the same logical state. Residency and replay bookkeeping legitimately
# differ (state_bytes, spill_faults, recovered_events, latencies) — the
# logical fields may not.
REC=$(stat_field "$STATS_AFTER" recovered_events)
[ "${REC:-0}" -ge 1 ] || { echo "nothing replayed"; exit 1; }
for f in input output transitions completions; do
  B=$(stat_field "$STATS_BEFORE" "$f")
  A=$(stat_field "$STATS_AFTER" "$f")
  [ "$A" = "$B" ] || { echo "$f diverged after recovery: $A vs $B"; exit 1; }
done
[ "$PLAN_AFTER" = "$PLAN_BEFORE" ] || { echo "plan mismatch: $PLAN_AFTER vs $PLAN_BEFORE"; exit 1; }

# The recovered engine keeps spilling under the same budget: feed one
# more round and confirm the command path still answers.
feed_round
ask "STATS" >/dev/null

echo "spill smoke passed"
