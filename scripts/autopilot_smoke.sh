#!/usr/bin/env bash
# End-to-end autopilot smoke: boot jiscd with -auto and a WAL, feed a
# skewed workload over TCP until /metrics reports an autopilot
# migration, kill -9, recover, and assert both the AUTO toggle and the
# autopilot-installed plan survived.
#
# Usage: bash scripts/autopilot_smoke.sh
# Env:   JISCD  path to a built jiscd binary (default: builds one)
set -euo pipefail

JISCD=${JISCD:-}
if [ -z "$JISCD" ]; then
  JISCD=/tmp/jiscd-auto-smoke
  go build -o "$JISCD" ./cmd/jiscd
fi
WAL=$(mktemp -d /tmp/jisc-auto-wal.XXXXXX)
ADDR=127.0.0.1:7979
TEL=127.0.0.1:9191
HOST=${ADDR%:*} PORT=${ADDR#*:}
JISCD_PID=

cleanup() {
  [ -n "$JISCD_PID" ] && kill "$JISCD_PID" 2>/dev/null || true
  rm -rf "$WAL"
}
trap cleanup EXIT

# start <auto-interval>: the first boot ticks fast so the controller
# acts during the feed; the recovery boot ticks slowly so the plan we
# assert on is the recovered one, not a fresh decision.
start() {
  "$JISCD" -addr "$ADDR" -telemetry "$TEL" -wal "$WAL" -window 300 \
    -auto -auto-interval "$1" -auto-cooldown 1s -plan "0,1,2" &
  JISCD_PID=$!
  for _ in $(seq 1 50); do
    curl -fsS -o /dev/null "http://$TEL/healthz" 2>/dev/null && return
    sleep 0.1
  done
  echo "jiscd did not come up" >&2
  exit 1
}

ask() {
  exec 3<>"/dev/tcp/$HOST/$PORT"
  printf '%s\n' "$1" >&3
  IFS= read -r REPLY <&3
  exec 3<&- 3>&-
  printf '%s\n' "$REPLY"
}

# feed_round: one connection, a burst of FEEDB lines. Stream 0 is the
# hose (two keys); streams 1 and 2 spread over a wide domain — the
# initial plan 0,1,2 probes the hose first, the worst order.
feed_round() {
  exec 3<>"/dev/tcp/$HOST/$PORT"
  local lines=0 keys s i
  for _ in $(seq 1 10); do
    for s in 0 1 2; do
      keys=""
      for i in $(seq 1 60); do
        if [ "$s" = 0 ]; then keys="$keys $((RANDOM % 2))"; else keys="$keys $((RANDOM % 3000))"; fi
      done
      printf 'FEEDB %s%s\n' "$s" "$keys" >&3
      lines=$((lines + 1))
    done
  done
  for _ in $(seq 1 "$lines"); do
    IFS= read -r REPLY <&3
    [ "$REPLY" = OK ] || { echo "feed rejected: $REPLY" >&2; exit 1; }
  done
  exec 3<&- 3>&-
}

migrations() {
  curl -fsS "http://$TEL/metrics" | sed -n 's/^jisc_auto_migrations_total{query="default"} //p'
}

start 100ms
ask "AUTO STATUS" | grep -q 'enabled=1' || { echo "-auto did not enable the autopilot"; exit 1; }

for round in $(seq 1 60); do
  feed_round
  M=$(migrations)
  echo "round $round: jisc_auto_migrations_total=$M"
  [ "${M:-0}" -ge 1 ] && break
  sleep 0.2
done
[ "${M:-0}" -ge 1 ] || { echo "autopilot never migrated"; exit 1; }

PLAN_BEFORE=$(ask "PLAN")
AUTO_BEFORE=$(ask "AUTO STATUS")
echo "before crash: $PLAN_BEFORE / $AUTO_BEFORE"
echo "$PLAN_BEFORE" | grep -qv '^PLAN ((0 1) 2)$' || { echo "plan unchanged from initial"; exit 1; }

kill -9 "$JISCD_PID"
wait "$JISCD_PID" 2>/dev/null || true

start 10m
PLAN_AFTER=$(ask "PLAN")
AUTO_AFTER=$(ask "AUTO STATUS")
echo "after recovery: $PLAN_AFTER / $AUTO_AFTER"
echo "$AUTO_AFTER" | grep -q 'enabled=1' || { echo "AUTO state lost in recovery"; exit 1; }
[ "$PLAN_AFTER" = "$PLAN_BEFORE" ] || { echo "autopilot plan lost: $PLAN_AFTER vs $PLAN_BEFORE"; exit 1; }
METRICS=$(curl -fsS "http://$TEL/metrics")
echo "$METRICS" | grep -q 'jisc_auto_enabled{query="default"} 1' \
  || { echo "telemetry does not report the autopilot enabled"; exit 1; }

echo "autopilot smoke passed"
