// Command planviz renders query plans and transition diffs: given an
// old and a new left-deep join order, it prints both trees and
// classifies each state of the new plan as complete or incomplete per
// Definition 1 — the classification that decides how much work a JISC
// transition needs.
//
// Usage:
//
//	planviz -old 0,1,2,3 -new 0,1,3,2
//	planviz -old 0,1,2,3,4 -swap 1,4
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"jisc/internal/analysis"
	"jisc/internal/plan"
	"jisc/internal/tuple"
)

func parseOrder(s string) ([]tuple.StreamID, error) {
	parts := strings.Split(s, ",")
	out := make([]tuple.StreamID, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 0 || v >= tuple.MaxStreams {
			return nil, fmt.Errorf("bad stream id %q", p)
		}
		out = append(out, tuple.StreamID(v))
	}
	return out, nil
}

func main() {
	var (
		oldOrder = flag.String("old", "0,1,2,3", "old plan: comma-separated left-deep stream order")
		newOrder = flag.String("new", "", "new plan: comma-separated left-deep stream order")
		swap     = flag.String("swap", "", "alternative to -new: two 0-based positions to exchange, e.g. 1,3")
	)
	flag.Parse()

	die := func(err error) {
		fmt.Fprintf(os.Stderr, "planviz: %v\n", err)
		os.Exit(1)
	}

	oo, err := parseOrder(*oldOrder)
	if err != nil {
		die(err)
	}
	old, err := plan.LeftDeep(oo...)
	if err != nil {
		die(err)
	}

	var neu *plan.Plan
	switch {
	case *newOrder != "":
		no, err := parseOrder(*newOrder)
		if err != nil {
			die(err)
		}
		if neu, err = plan.LeftDeep(no...); err != nil {
			die(err)
		}
	case *swap != "":
		pos, err := parseOrder(*swap)
		if err != nil || len(pos) != 2 {
			die(fmt.Errorf("-swap wants two positions, got %q", *swap))
		}
		if neu, err = old.Swap(int(pos[0]), int(pos[1])); err != nil {
			die(err)
		}
	default:
		fmt.Printf("plan %s\n\n%s", old, old.Render())
		return
	}

	fmt.Printf("old plan: %s\n%s\n", old, old.Render())
	fmt.Printf("new plan: %s\n%s\n", neu, neu.Render())

	diff := plan.Diff(plan.AllComplete(old), neu)
	fmt.Printf("state classification (Definition 1):\n%s\n", plan.Describe(diff, neu))
	inc := plan.IncompleteCount(diff, neu)
	n := neu.Joins()
	fmt.Printf("incomplete states: %d of %d joins (C_n = %d)\n", inc, n, n-inc)
	fmt.Printf("E[C_n] under the §5.2 swap model: %.2f (Var %.2f)\n",
		analysis.MeanCn(n), analysis.VarCn(n))
}
