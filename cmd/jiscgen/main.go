// Command jiscgen emits a synthetic stream workload as jiscd protocol
// lines (FEED <stream> <key>), one per row, so shell pipelines can
// drive a daemon:
//
//	jiscgen -streams 3 -count 100000 | nc 127.0.0.1 7878
//
// The generator matches the paper's §6 setup: uniform keys
// round-robined across streams, with optional Zipf skew, per-stream
// weights, and per-stream key domains.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"jisc/internal/workload"
)

func main() {
	var (
		streams = flag.Int("streams", 3, "number of streams")
		count   = flag.Int("count", 100000, "tuples to emit")
		domain  = flag.Int64("domain", 10000, "join-key domain size")
		domains = flag.String("domains", "", "optional per-stream domains, comma-separated")
		weights = flag.String("weights", "", "optional per-stream rate weights, comma-separated")
		zipf    = flag.Bool("zipf", false, "Zipf-distributed keys instead of uniform")
		seed    = flag.Int64("seed", 1, "generator seed")
		query   = flag.String("query", "", "optional query name prefixed to each FEED line")
	)
	flag.Parse()

	die := func(err error) {
		fmt.Fprintf(os.Stderr, "jiscgen: %v\n", err)
		os.Exit(1)
	}

	cfg := workload.Config{Streams: *streams, Domain: *domain, Seed: *seed}
	if *zipf {
		cfg.Dist = workload.Zipf
	}
	if *domains != "" {
		for _, part := range strings.Split(*domains, ",") {
			d, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
			if err != nil {
				die(fmt.Errorf("bad domain %q", part))
			}
			cfg.Domains = append(cfg.Domains, d)
		}
	}
	if *weights != "" {
		for _, part := range strings.Split(*weights, ",") {
			w, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				die(fmt.Errorf("bad weight %q", part))
			}
			cfg.Weights = append(cfg.Weights, w)
		}
	}
	src, err := workload.NewSource(cfg)
	if err != nil {
		die(err)
	}

	prefix := ""
	if *query != "" {
		prefix = *query + " "
	}
	w := bufio.NewWriterSize(os.Stdout, 1<<16)
	defer w.Flush()
	for i := 0; i < *count; i++ {
		ev := src.Next()
		fmt.Fprintf(w, "FEED %s%d %d\n", prefix, ev.Stream, ev.Key)
	}
}
