// Command jiscbench regenerates the paper's tables and figures
// (EDBT 2014, §6) plus this repository's ablations. Each figure prints
// the same rows/series the paper reports; absolute numbers reflect
// this machine, shapes are the reproduction target.
//
// Usage:
//
//	jiscbench -fig all                         # everything, scaled down
//	jiscbench -fig 7 -window 10000 -tuples 10000000   # paper scale
//	jiscbench -fig props                       # Propositions 1–3 table
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"jisc/internal/bench"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figure to reproduce: 7, 8, 9, 10a, 10b, 11, 12, props, stairs, proc, skew, mem, timeline, overlap, all")
		window   = flag.Int("window", 1000, "per-stream sliding window size in tuples (paper: 10000)")
		domain   = flag.Int64("domain", 0, "join-key domain size (default: window, ≈1 match per probe per level)")
		tuples   = flag.Int("tuples", 50000, "tuples per measurement (paper: 10000000)")
		seed     = flag.Int64("seed", 1, "workload seed")
		joins    = flag.Int("joins", 20, "joins for figures 9, 11, 12 (paper: 20)")
		ptcheck  = flag.Int("ptcheck", 0, "Parallel Track discard-scan period in tuples (0 = window/10)")
		reps     = flag.Int("reps", 3, "repetitions per timing-sensitive measurement (min/median reported)")
		shards   = flag.Int("shards", 1, "run the Fig-7/8 JISC measurement through the sharded runtime with N shards")
		latency  = flag.Bool("latency", false, "run the per-phase transition latency benchmark (p50/p95/p99/max per strategy) instead of a figure")
		latOut   = flag.String("latencyout", "BENCH_latency.json", "output path for the -latency JSON report")
		wal      = flag.Bool("wal", false, "run the WAL ingest-throughput benchmark (fsync off/batch/always vs baseline, 1-4 shards) instead of a figure")
		walOut   = flag.String("walout", "BENCH_wal.json", "output path for the -wal JSON report")
		batch    = flag.Bool("batch", false, "run the batched-ingest throughput benchmark (batch sizes 1/8/64/256 through the runtime and TCP paths, with and without the WAL) instead of a figure")
		batchOut = flag.String("batchout", "BENCH_batch.json", "output path for the -batch JSON report")
		adapt    = flag.Bool("adaptive", false, "run the autopilot benchmark (static plan rotations vs the closed-loop controller on a hose-shift workload) instead of a figure")
		adaptOut = flag.String("adaptiveout", "BENCH_adaptive.json", "output path for the -adaptive JSON report")
		spill    = flag.Bool("spill", false, "run the tiered-state spill benchmark (budgets of ∞/2x/1x/¼x the measured working set) instead of a figure")
		spillOut = flag.String("spillout", "BENCH_spill.json", "output path for the -spill JSON report")
	)
	flag.Parse()

	if *domain == 0 {
		*domain = int64(*window)
	}
	cfg := bench.Config{Window: *window, Domain: *domain, Tuples: *tuples, Seed: *seed, PTCheckEvery: *ptcheck, Reps: *reps, Shards: *shards}
	w := os.Stdout

	run := func(name string, f func() error) {
		fmt.Fprintf(w, "\n== %s ==\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "jiscbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	want := func(name string) bool {
		return *fig == "all" || strings.EqualFold(*fig, name)
	}

	if *latency {
		run("Transition latency (Fig 7/8 conditions)", func() error {
			return runLatency(cfg, *latOut, w)
		})
		return
	}
	if *wal {
		run("WAL ingest throughput", func() error {
			return runWAL(cfg, *walOut, w)
		})
		return
	}
	if *batch {
		run("Batched ingest throughput", func() error {
			return runBatch(cfg, *batchOut, w)
		})
		return
	}
	if *adapt {
		run("Adaptive control plane", func() error {
			return runAdaptive(cfg, *adaptOut, w)
		})
		return
	}
	if *spill {
		run("Tiered-state spill sweep", func() error {
			return runSpill(cfg, *spillOut, w)
		})
		return
	}

	joinSweep := []int{4, 8, 12, 16, 20}
	freqPeriods := []int{
		*tuples / 10, *tuples / 5, *tuples / 4, *tuples / 2, *tuples,
	}
	latWindows := []int{*window / 8, *window / 4, *window / 2, *window}
	nlWindows := []int{32, 64, 128, 256}

	any := false
	if want("7") {
		any = true
		run("Figure 7", func() error { _, err := bench.Figure7(cfg, joinSweep, w); return err })
	}
	if want("8") {
		any = true
		run("Figure 8", func() error { _, err := bench.Figure8(cfg, joinSweep, w); return err })
	}
	if want("9") {
		any = true
		run("Figure 9", func() error { _, err := bench.Figure9(cfg, *joins, 10, w); return err })
	}
	if want("10a") {
		any = true
		run("Figure 10a", func() error { _, err := bench.Figure10Hash(cfg, 6, latWindows, w); return err })
	}
	if want("10b") {
		any = true
		run("Figure 10b", func() error { _, err := bench.Figure10NL(cfg, 3, nlWindows, w); return err })
	}
	if want("11") {
		any = true
		run("Figure 11", func() error { _, err := bench.Figure11(cfg, *joins, freqPeriods, w); return err })
	}
	if want("12") {
		any = true
		run("Figure 12", func() error { _, err := bench.Figure12(cfg, *joins, freqPeriods, w); return err })
	}
	if want("props") {
		any = true
		run("Propositions 1–3", func() error {
			bench.PropositionTable([]int{8, 16, 32, 64, 128, 256, 512, 1024, 4096}, 200000, *seed, w)
			return nil
		})
	}
	if want("stairs") {
		any = true
		run("STAIRs ablation", func() error {
			_, err := bench.StairsAblation(cfg, 8, []int{*tuples / 10, *tuples / 2, *tuples}, w)
			return err
		})
	}
	if want("proc") {
		any = true
		run("Procedure 2 vs 3 ablation", func() error {
			_, err := bench.ProcedureAblation(cfg, []int{4, 8, 12, 16, 20}, w)
			return err
		})
	}
	if want("skew") {
		any = true
		run("Key-skew ablation", func() error {
			_, err := bench.SkewAblation(cfg, 8, w)
			return err
		})
	}
	if want("mem") {
		any = true
		run("Memory ablation (§5)", func() error {
			_, err := bench.MemoryAblation(cfg, 8, w)
			return err
		})
	}
	if want("timeline") {
		any = true
		run("Steady output timeline (§5.1.1)", func() error {
			_, _, err := bench.Timeline(cfg, 8, 11, *window/4, w)
			return err
		})
	}
	if want("overlap") {
		any = true
		run("Overlapped transitions (§3.3)", func() error {
			turnover := 9 * *window
			_, err := bench.OverlapAblation(cfg, 8, []int{turnover / 8, turnover / 4, turnover / 2}, w)
			return err
		})
	}
	if !any {
		fmt.Fprintf(os.Stderr, "jiscbench: unknown figure %q\n", *fig)
		flag.Usage()
		os.Exit(2)
	}
}

// runLatency runs the per-phase transition latency benchmark for the
// best- and worst-case swaps and writes the JSON report to out. It
// uses 8 joins — the mid-point of the paper's sweep — so the eager
// Moving State recomputation is visible without dominating runtime.
func runLatency(cfg bench.Config, out string, w *os.File) error {
	const latJoins = 8
	best, err := bench.LatencyBench(cfg, latJoins, false, w)
	if err != nil {
		return err
	}
	fmt.Fprintln(w)
	worst, err := bench.LatencyBench(cfg, latJoins, true, w)
	if err != nil {
		return err
	}
	report := struct {
		Description string              `json:"description"`
		Go          string              `json:"go"`
		Config      bench.Config        `json:"config"`
		BestCase    bench.LatencyReport `json:"best_case"`
		WorstCase   bench.LatencyReport `json:"worst_case"`
	}{
		Description: "Per-tuple feed latency (p50/p95/p99/max, ns) across a plan transition " +
			"under Fig 7/8 conditions: steady state, the migration stage (until Parallel " +
			"Track discards the old plan), and post-migration, plus the synchronous " +
			"Migrate-call stall per strategy. Regenerate with: jiscbench -latency",
		Go:        runtime.Version(),
		Config:    cfg,
		BestCase:  best,
		WorstCase: worst,
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nwrote %s\n", out)
	return nil
}

// runBatch measures ingest throughput per batch size through each
// ingest entry point and writes the JSON report to out. Batch size 1
// is the per-event baseline within each mode.
func runBatch(cfg bench.Config, out string, w *os.File) error {
	report, err := bench.BatchBench(cfg, []int{1, 8, 64, 256}, w)
	if err != nil {
		return err
	}
	full := struct {
		Description string            `json:"description"`
		Go          string            `json:"go"`
		Config      bench.Config      `json:"config"`
		Report      bench.BatchReport `json:"report"`
	}{
		Description: "Ingest throughput (tuples/s, best of reps) per batch size through the " +
			"in-process runtime (Feed vs FeedBatch) and the TCP line protocol (FEED round " +
			"trips vs pipelined FEEDB lines), each with and without the write-ahead log " +
			"under group commit. Batch size 1 is the per-event pre-refactor baseline within " +
			"each mode. Regenerate with: jiscbench -batch",
		Go:     runtime.Version(),
		Config: cfg,
		Report: report,
	}
	buf, err := json.MarshalIndent(full, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nwrote %s\n", out)
	return nil
}

// runAdaptive measures every static plan rotation and the autopilot
// on the two-phase hose-shift workload and writes the JSON report to
// out.
func runAdaptive(cfg bench.Config, out string, w *os.File) error {
	report, err := bench.AdaptiveBench(cfg, w)
	if err != nil {
		return err
	}
	full := struct {
		Description string               `json:"description"`
		Go          string               `json:"go"`
		Config      bench.Config         `json:"config"`
		Report      bench.AdaptiveReport `json:"report"`
	}{
		Description: "Autopilot vs static plans (tuples/s, best of reps) on a 4-stream, 3-join " +
			"query whose hose stream shifts mid-run from stream 0 to stream 3. Each left-deep " +
			"rotation runs the identical tuple sequence statically; the autopilot starts from " +
			"the measured-worst order with a live controller. Acceptance: vs_worst > 1.0 and " +
			"vs_best >= 0.9. Regenerate with: jiscbench -adaptive",
		Go:     runtime.Version(),
		Config: cfg,
		Report: report,
	}
	buf, err := json.MarshalIndent(full, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nwrote %s\n", out)
	return nil
}

// runSpill measures ingest throughput per state-budget point against
// the unbounded baseline and writes the JSON report to out.
func runSpill(cfg bench.Config, out string, w *os.File) error {
	report, err := bench.SpillBench(cfg, w)
	if err != nil {
		return err
	}
	full := struct {
		Description string            `json:"description"`
		Go          string            `json:"go"`
		Config      bench.Config      `json:"config"`
		Report      bench.SpillReport `json:"report"`
	}{
		Description: "Ingest throughput (tuples/s, best of reps) with the tiered state store off " +
			"(unbounded baseline) and under resident-byte budgets of 2x, 1x, and 1/4x the " +
			"measured peak working set. A budget that never binds (2x) should cost only the " +
			"accounting (within ~10% of baseline); 1/4x runs with most state in spill " +
			"segments, faulting buckets back per probe. Regenerate with: jiscbench -spill",
		Go:     runtime.Version(),
		Config: cfg,
		Report: report,
	}
	buf, err := json.MarshalIndent(full, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nwrote %s\n", out)
	return nil
}

// runWAL measures ingest throughput per fsync policy against the
// durability-off baseline and writes the JSON report to out.
func runWAL(cfg bench.Config, out string, w *os.File) error {
	report, err := bench.WALBench(cfg, []int{1, 2, 4}, w)
	if err != nil {
		return err
	}
	full := struct {
		Description string          `json:"description"`
		Go          string          `json:"go"`
		Config      bench.Config    `json:"config"`
		Report      bench.WALReport `json:"report"`
	}{
		Description: "Ingest throughput (tuples/s, best of reps) through the sharded runtime " +
			"with durability off (baseline) and with the write-ahead log under each fsync " +
			"policy: off (no fsync), batch (group commit, the default), always (fsync per " +
			"acknowledgment). Regenerate with: jiscbench -wal",
		Go:     runtime.Version(),
		Config: cfg,
		Report: report,
	}
	buf, err := json.MarshalIndent(full, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nwrote %s\n", out)
	return nil
}
