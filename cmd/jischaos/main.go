// Command jischaos is the chaos-test sidekick for jiscd: a
// fault-injecting TCP proxy and a measuring load generator in one
// binary, used by scripts/overload_smoke.sh and by hand when poking a
// deployment.
//
// Proxy mode — put a misbehaving network in front of a server:
//
//	jischaos proxy -listen 127.0.0.1:7979 -target 127.0.0.1:7878 \
//	    -latency 2ms -jitter 3ms -bps 262144 -reset-prob 0.001
//
// Hose mode — blast FEEDB batches at a server and account every line:
//
//	jischaos hose -addr 127.0.0.1:7979 -tuples 100000 -batch 50 -rate 4000
//
// The hose prints one machine-readable summary line on exit:
//
//	HOSE sent=<tuples> ok=<tuples> busy=<tuples> dead=<tuples>
//
// sent = every tuple put on the wire; ok = tuples on lines the server
// acknowledged OK; busy = tuples refused with ERR BUSY (retriable);
// dead = tuples on lines whose response never arrived (connection
// died). sent == ok + busy + dead always; the smoke script combines
// these with the server's STATS counters for the conservation check.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"jisc/internal/chaosnet"
)

func main() {
	if len(os.Args) < 2 {
		die(fmt.Errorf("usage: jischaos proxy|hose [flags]"))
	}
	switch os.Args[1] {
	case "proxy":
		proxyMain(os.Args[2:])
	case "hose":
		hoseMain(os.Args[2:])
	default:
		die(fmt.Errorf("unknown mode %q: want proxy or hose", os.Args[1]))
	}
}

func die(err error) {
	fmt.Fprintf(os.Stderr, "jischaos: %v\n", err)
	os.Exit(1)
}

func proxyMain(args []string) {
	fs := flag.NewFlagSet("proxy", flag.ExitOnError)
	var (
		listen     = fs.String("listen", "127.0.0.1:7979", "proxy listen address")
		target     = fs.String("target", "127.0.0.1:7878", "upstream server address")
		seed       = fs.Int64("seed", 1, "seed for jitter and reset decisions")
		latency    = fs.Duration("latency", 0, "fixed one-way latency per chunk")
		jitter     = fs.Duration("jitter", 0, "uniform random extra latency")
		bps        = fs.Int64("bps", 0, "bandwidth cap per direction in bytes/sec (0 = uncapped)")
		chunk      = fs.Int("chunk", 0, "forwarding chunk size in bytes (0 = 1024)")
		resetAfter = fs.Int64("reset-after", 0, "hard-reset a conn after this many ingest bytes (0 = off)")
		resetProb  = fs.Float64("reset-prob", 0, "per-chunk reset probability in [0,1]")
		stallAfter = fs.Int64("stall-after", 0, "half-open a conn after this many ingest bytes (0 = off)")
	)
	fs.Parse(args)

	p, err := chaosnet.New(*listen, *target, chaosnet.Config{
		Seed:            *seed,
		Latency:         *latency,
		Jitter:          *jitter,
		BytesPerSec:     *bps,
		ChunkBytes:      *chunk,
		ResetAfterBytes: *resetAfter,
		ResetProb:       *resetProb,
		StallAfterBytes: *stallAfter,
	})
	if err != nil {
		die(err)
	}
	fmt.Printf("jischaos: proxying %s -> %s\n", p.Addr(), *target)
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	s := p.Stats()
	p.Close()
	fmt.Printf("PROXY conns=%d resets=%d stalls=%d to_server=%d to_client=%d partition_drops=%d\n",
		s.Conns, s.Resets, s.Stalls, s.BytesToServer, s.BytesToClient, s.PartitionDrops)
}

func hoseMain(args []string) {
	fs := flag.NewFlagSet("hose", flag.ExitOnError)
	var (
		addr    = fs.String("addr", "127.0.0.1:7878", "server (or proxy) address")
		tuples  = fs.Int("tuples", 100_000, "total tuples to send")
		batch   = fs.Int("batch", 50, "tuples per FEEDB line")
		rate    = fs.Float64("rate", 0, "target send rate in tuples/sec (0 = as fast as possible)")
		streams = fs.Int("streams", 3, "stream count to cycle keys over")
		domain  = fs.Int("domain", 8, "key domain size")
		timeout = fs.Duration("timeout", 60*time.Second, "overall wall-clock budget")
	)
	fs.Parse(args)
	if *batch < 1 || *tuples < 1 || *streams < 1 || *domain < 1 {
		die(fmt.Errorf("batch, tuples, streams, and domain must be positive"))
	}

	var sent, ok, busy, dead int
	deadline := time.Now().Add(*timeout)
	start := time.Now()

	// One connection at a time; on connection death reconnect and keep
	// hosing until the tuple budget is spent. A server that is down
	// (drained, restarting) burns wall clock, not the accounting.
	for sent < *tuples && time.Now().Before(deadline) {
		conn, err := net.Dial("tcp", *addr)
		if err != nil {
			time.Sleep(50 * time.Millisecond)
			continue
		}
		conn.SetDeadline(deadline)
		r := bufio.NewReader(conn)
		for sent < *tuples {
			n := *batch
			if rem := *tuples - sent; rem < n {
				n = rem
			}
			var sb strings.Builder
			fmt.Fprintf(&sb, "FEEDB %d", sent%*streams)
			for j := 0; j < n; j++ {
				fmt.Fprintf(&sb, " %d", (sent+j)%*domain)
			}
			sb.WriteByte('\n')
			if _, err := conn.Write([]byte(sb.String())); err != nil {
				sent += n
				dead += n
				break
			}
			sent += n
			resp, err := r.ReadString('\n')
			if err != nil {
				dead += n
				break
			}
			switch {
			case strings.TrimSpace(resp) == "OK":
				ok += n
			case strings.HasPrefix(resp, "ERR BUSY"):
				busy += n
			default:
				// A non-BUSY error is a hose bug (malformed line) —
				// surface it loudly rather than folding it into a
				// counter the conservation check would hide it in.
				die(fmt.Errorf("server said %q to a FEEDB line", strings.TrimSpace(resp)))
			}
			if *rate > 0 {
				// Pace against the global schedule so transient stalls
				// are caught up rather than compounded.
				ahead := time.Duration(float64(sent)/(*rate)*float64(time.Second)) - time.Since(start)
				if ahead > 0 {
					time.Sleep(ahead)
				}
			}
		}
		conn.Close()
	}

	fmt.Printf("HOSE sent=%d ok=%d busy=%d dead=%d\n", sent, ok, busy, dead)
	if sent < *tuples {
		die(fmt.Errorf("budget exhausted: sent %d of %d tuples in %v", sent, *tuples, *timeout))
	}
}
