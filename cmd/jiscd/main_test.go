package main

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildJiscd compiles the daemon once per test binary.
func buildJiscd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "jiscd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startJiscd launches the daemon and waits until its TCP port accepts.
func startJiscd(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	// Ask the kernel for a free port, then hand it to the daemon. The
	// tiny race (the port being grabbed between Close and exec) is
	// acceptable in a test.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	cmd := exec.Command(bin, append([]string{"-addr", addr}, args...)...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	deadline := time.Now().Add(10 * time.Second)
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			conn.Close()
			return cmd, addr
		}
		if time.Now().After(deadline) {
			t.Fatalf("jiscd never came up on %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

type lineConn struct {
	conn net.Conn
	r    *bufio.Reader
}

func dialDaemon(t *testing.T, addr string) *lineConn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &lineConn{conn: conn, r: bufio.NewReader(conn)}
}

func (c *lineConn) cmd(t *testing.T, line string) string {
	t.Helper()
	if _, err := fmt.Fprintln(c.conn, line); err != nil {
		t.Fatal(err)
	}
	resp, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatalf("reading response to %q: %v", line, err)
	}
	return strings.TrimSpace(resp)
}

func statOf(t *testing.T, stats, key string) string {
	t.Helper()
	for _, f := range strings.Fields(stats) {
		if v, ok := strings.CutPrefix(f, key+"="); ok {
			return v
		}
	}
	t.Fatalf("stats %q has no %q field", stats, key)
	return ""
}

// TestJiscdSurvivesSIGKILL is the quick-start promise as a test: run
// the daemon with -wal, feed it and migrate it, kill -9 mid-flight,
// restart with the same flags, and find the counters, plan, and query
// topology exactly where they were.
func TestJiscdSurvivesSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	bin := buildJiscd(t)
	wal := filepath.Join(t.TempDir(), "wal")
	args := []string{"-wal", wal, "-fsync", "always", "-plan", "0,1,2", "-window", "100"}

	proc, addr := startJiscd(t, bin, args...)
	c := dialDaemon(t, addr)
	for _, line := range []string{
		"FEED 0 7", "FEED 1 7", "FEED 2 7",
		"MIGRATE ((0 2) 1)",
		"FEED 0 9",
		"CREATE pairs 50 (0 1)",
		"FEED pairs 0 3",
	} {
		if resp := c.cmd(t, line); resp != "OK" {
			t.Fatalf("%s -> %s", line, resp)
		}
	}
	stats := c.cmd(t, "STATS")
	wantInput := statOf(t, stats, "input")
	wantOutput := statOf(t, stats, "output")
	wantPlan := c.cmd(t, "PLAN")

	// The unclean death: no shutdown handler runs, no buffer flushes.
	if err := proc.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	proc.Wait()

	_, addr2 := startJiscd(t, bin, args...)
	c2 := dialDaemon(t, addr2)
	stats2 := c2.cmd(t, "STATS")
	if got := statOf(t, stats2, "input"); got != wantInput {
		t.Fatalf("input after kill -9 = %s, want %s (stats %q)", got, wantInput, stats2)
	}
	if got := statOf(t, stats2, "output"); got != wantOutput {
		t.Fatalf("output after kill -9 = %s, want %s", got, wantOutput)
	}
	if got := statOf(t, stats2, "recovered_events"); got == "0" {
		t.Fatalf("restart replayed nothing: %s", stats2)
	}
	if got := c2.cmd(t, "PLAN"); got != wantPlan {
		t.Fatalf("plan after kill -9 = %q, want %q", got, wantPlan)
	}
	if list := c2.cmd(t, "LIST"); !strings.Contains(list, "pairs") {
		t.Fatalf("CREATEd query lost: %q", list)
	}
	// And the recovered daemon still works.
	if resp := c2.cmd(t, "FEED 1 9"); resp != "OK" {
		t.Fatalf("post-recovery feed: %s", resp)
	}
}

// -shed with -wal must be rejected at startup: shed tuples would be
// logged but dropped, so replay would resurrect them.
func TestJiscdRejectsShedWithWAL(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	bin := buildJiscd(t)
	cmd := exec.Command(bin, "-wal", t.TempDir(), "-shed")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("jiscd accepted -shed with -wal:\n%s", out)
	}
	if !strings.Contains(string(out), "shed") {
		t.Fatalf("unhelpful error:\n%s", out)
	}
}
