package main

import (
	"bufio"
	"fmt"
	"net"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// waitExit waits for the process to exit and returns its exit code,
// failing the test if it does not die within the deadline.
func waitExit(t *testing.T, proc *exec.Cmd, deadline time.Duration) int {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- proc.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			return 0
		}
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		t.Fatalf("wait: %v", err)
	case <-time.After(deadline):
		proc.Process.Kill()
		t.Fatalf("jiscd did not exit within %v", deadline)
	}
	return -1
}

// TestJiscdSIGTERMDrainsCleanly is the rolling-restart contract end to
// end: SIGTERM a durable daemon mid-hose; it must fence new work, flush
// what it admitted, checkpoint, and exit 0 — and the restarted daemon
// must hold every acknowledged tuple.
func TestJiscdSIGTERMDrainsCleanly(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	bin := buildJiscd(t)
	wal := filepath.Join(t.TempDir(), "wal")
	args := []string{"-wal", wal, "-fsync", "always", "-plan", "0,1,2", "-window", "100", "-drain-timeout", "30s"}

	proc, addr := startJiscd(t, bin, args...)

	// Hose from two connections; count acknowledged tuples. Feeders
	// stop at connection death or BUSY (the drain fence).
	var acked atomic.Uint64
	var wg sync.WaitGroup
	hoseUp := make(chan struct{})
	var once sync.Once
	for f := 0; f < 2; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				return
			}
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(30 * time.Second))
			r := bufio.NewReader(conn)
			for i := 0; ; i++ {
				if i == 20 {
					once.Do(func() { close(hoseUp) })
				}
				if _, err := fmt.Fprintf(conn, "FEEDB %d %d %d\n", i%3, i%7, (i+1)%7); err != nil {
					return
				}
				resp, err := r.ReadString('\n')
				if err != nil {
					return
				}
				if strings.TrimSpace(resp) == "OK" {
					acked.Add(2)
				} else {
					return
				}
			}
		}(f)
	}
	<-hoseUp

	if err := proc.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := waitExit(t, proc, 30*time.Second); code != 0 {
		t.Fatalf("SIGTERM exit code = %d, want 0", code)
	}
	wg.Wait()

	// The replacement process: everything acknowledged must be there,
	// restored from the final checkpoint (WAL empty → zero replayed).
	_, addr2 := startJiscd(t, bin, args...)
	c := dialDaemon(t, addr2)
	stats := c.cmd(t, "STATS")
	input, err := strconv.ParseUint(statOf(t, stats, "input"), 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	if input < acked.Load() {
		t.Fatalf("restarted input = %d < %d acked (drain lost admitted batches)", input, acked.Load())
	}
	if got := statOf(t, stats, "recovered_events"); got != "0" {
		t.Fatalf("recovered_events = %s, want 0 (the drain must take a final checkpoint)", got)
	}
	if resp := c.cmd(t, "FEED 0 1"); resp != "OK" {
		t.Fatalf("replacement daemon not serving: %s", resp)
	}
}

// TestJiscdSIGINTStillFast: SIGINT keeps the legacy behaviour — an
// immediate close, no drain.
func TestJiscdSIGINTStillFast(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	bin := buildJiscd(t)
	proc, _ := startJiscd(t, bin)
	if err := proc.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	if code := waitExit(t, proc, 10*time.Second); code != 0 {
		t.Fatalf("SIGINT exit code = %d, want 0", code)
	}
}

// TestJiscdRejectsFeedDeadlineWithWAL: the deadline×durability
// combination must die at flag parsing, with the reason in the error.
func TestJiscdRejectsFeedDeadlineWithWAL(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	bin := buildJiscd(t)
	cmd := exec.Command(bin, "-wal", t.TempDir(), "-feed-deadline", "10ms")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("jiscd accepted -feed-deadline with -wal:\n%s", out)
	}
	if !strings.Contains(string(out), "resurrect") {
		t.Fatalf("unhelpful error:\n%s", out)
	}
}

// TestJiscdAdmissionFlags: the admission flags reach the serving path —
// an over-rate hose sheds counted, and the connection cap turns extra
// dials away with a BUSY.
func TestJiscdAdmissionFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	bin := buildJiscd(t)
	_, addr := startJiscd(t, bin, "-ingest-rate", "50", "-ingest-burst", "50", "-max-conns", "2")

	c := dialDaemon(t, addr)
	for i := 0; i < 200; i++ {
		if resp := c.cmd(t, fmt.Sprintf("FEED %d %d", i%3, i%7)); resp != "OK" {
			t.Fatalf("feed %d: %s", i, resp)
		}
	}
	stats := c.cmd(t, "STATS")
	input, _ := strconv.ParseUint(statOf(t, stats, "input"), 10, 64)
	shed, _ := strconv.ParseUint(statOf(t, stats, "admission_shed"), 10, 64)
	if input+shed != 200 {
		t.Fatalf("conservation: input %d + admission_shed %d != 200", input, shed)
	}
	if shed == 0 {
		t.Fatal("nothing shed at 4x the rate")
	}

	// Conn 2 fits the cap; conn 3 draws BUSY.
	c2 := dialDaemon(t, addr)
	if resp := c2.cmd(t, "FEED 0 1"); resp != "OK" {
		t.Fatalf("conn 2: %s", resp)
	}
	conn3, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn3.Close()
	conn3.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := bufio.NewReader(conn3).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "ERR BUSY too many connections") {
		t.Fatalf("over-cap dial greeted with %q", line)
	}
}
