// Command jiscd runs a continuous multi-way join query as a network
// daemon: producers FEED tuples over TCP, consumers SUBSCRIBE to
// results, and an operator (or an external optimizer) MIGRATEs the
// live plan — under JISC, without halting the query.
//
// Usage:
//
//	jiscd -addr :7878 -plan 0,1,2 -window 10000 -strategy jisc
//
// With -wal DIR every mutating command (FEED, FEEDB, MIGRATE, CREATE,
// DROP) is write-ahead logged before it is acknowledged, and a restart
// recovers the full topology and per-query state from DIR — kill -9
// the daemon and bring it back up with the same flags. -fsync picks
// the durability/throughput trade-off: always, batch (group commit,
// the default), or off.
//
// Protocol (one line per command; [query] defaults to "default"):
//
//	FEED [query] <stream> <key>
//	FEEDB [query] <stream> <key>... ingest every key on the line as one
//	                                batch of <stream> tuples: one queue
//	                                slot, one WAL frame, one OK — the
//	                                high-throughput ingest path
//	MIGRATE [query] <plan>          e.g. MIGRATE ((0 2) 1)  or  MIGRATE 0,2,1
//	AUTO ON|OFF|STATUS [query]      toggle or inspect the autopilot (see
//	                                -auto to start it at boot); with -wal
//	                                the toggle survives restarts
//	SUBSCRIBE [query]
//	CREATE <query> <window> <plan>
//	DROP <query> | LIST
//	STATS [query] | PLAN [query] | CHECKPOINT [query] <path> | QUIT
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"jisc/internal/adaptive"
	"jisc/internal/admission"
	"jisc/internal/core"
	"jisc/internal/durable"
	"jisc/internal/engine"
	"jisc/internal/migrate"
	"jisc/internal/pipeline"
	"jisc/internal/plan"
	"jisc/internal/server"
)

// parseStateBudget turns the -state-budget flag into the runtime's
// StateBudget convention: "" → 0 (auto from GOMEMLIMIT when set),
// "off" → -1 (never spill), otherwise a byte count with an optional
// k/m/g suffix (powers of 1024).
func parseStateBudget(s string) (int64, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	if s == "" {
		return 0, nil
	}
	if s == "off" {
		return -1, nil
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'k':
		mult, s = 1<<10, s[:len(s)-1]
	case 'm':
		mult, s = 1<<20, s[:len(s)-1]
	case 'g':
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("bad -state-budget %q: want a positive byte count with optional k/m/g suffix, or \"off\"", s)
	}
	return n * mult, nil
}

// parseInflightBudget parses -inflight-budget: "" → 0 (unlimited),
// otherwise a positive byte count with an optional k/m/g suffix.
func parseInflightBudget(s string) (int64, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'k':
		mult, s = 1<<10, s[:len(s)-1]
	case 'm':
		mult, s = 1<<20, s[:len(s)-1]
	case 'g':
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("bad -inflight-budget %q: want a positive byte count with optional k/m/g suffix", s)
	}
	return n * mult, nil
}

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7878", "listen address")
		planSrc   = flag.String("plan", "0,1,2", "initial plan (infix tree or comma-separated left-deep order)")
		window    = flag.Int("window", 10000, "per-stream window size in tuples")
		timeSpan  = flag.Uint64("timespan", 0, "time-based window span in ticks (0 = count-based)")
		strat     = flag.String("strategy", "jisc", "migration strategy: jisc, moving-state, static")
		queue     = flag.Int("queue", 4096, "input queue size (per shard)")
		shedding  = flag.Bool("shed", false, "drop tuples instead of blocking when the queue is full")
		shards    = flag.Int("shards", 1, "worker shards per query (hash-partitioned by join key)")
		telemetry = flag.String("telemetry", "", "HTTP observability address, e.g. 127.0.0.1:9090 (/metrics, /trace, /healthz, /debug/pprof/); empty = off")
		walDir    = flag.String("wal", "", "durability directory: write-ahead log every mutating command and recover from it on start; empty = off")
		fsyncMode = flag.String("fsync", "batch", "WAL fsync policy: always (fsync before every ack), batch (group commit), off (no fsync)")
		fsyncIvl  = flag.Duration("fsync-interval", 0, "group-commit window for -fsync batch (0 = default 2ms)")
		ckptIvl   = flag.Duration("checkpoint-interval", 0, "background checkpoint period (0 = default 15s, negative = never)")
		budget    = flag.String("state-budget", "", "resident state budget across shards, e.g. 64m or 1g (suffix k/m/g, powers of 1024): cold state spills to disk and faults back on demand; empty = auto from GOMEMLIMIT when set, otherwise unbounded; \"off\" = never spill")
		spillDir  = flag.String("spill-dir", "", "spill segment directory (a cache, wiped on start); empty = a temp directory")
		auto      = flag.Bool("auto", false, "start the autopilot on the default query: watch live selectivities and migrate the plan automatically (toggle per query at runtime with AUTO ON/OFF)")
		autoIvl   = flag.Duration("auto-interval", 0, "autopilot control-loop period (0 = default 500ms)")
		autoCool  = flag.Duration("auto-cooldown", 0, "minimum pause between autopilot migrations (0 = default 5s)")

		maxConns     = flag.Int("max-conns", 0, "max concurrent client connections; dials beyond the cap draw a retriable ERR BUSY (0 = unlimited)")
		ingestRate   = flag.Float64("ingest-rate", 0, "sustained ingest admission rate in tuples/sec per query; arrivals beyond it are shed counted and acknowledged OK (0 = unlimited)")
		ingestBurst  = flag.Float64("ingest-burst", 0, "token-bucket burst above -ingest-rate, in tuples (0 = one second of -ingest-rate)")
		inflight     = flag.String("inflight-budget", "", "admitted-but-unprocessed ingest byte budget per query, e.g. 8m (suffix k/m/g); batches beyond it draw a retriable ERR BUSY; empty = unlimited")
		feedDeadline = flag.Duration("feed-deadline", 0, "per-batch queue deadline: an admitted batch still queued after this long is dropped counted instead of processed late (0 = off; incompatible with -wal)")
		readTimeout  = flag.Duration("read-timeout", 0, "per-command read deadline, armed once a line starts arriving; idle connections are never timed out (0 = off)")
		writeTimeout = flag.Duration("write-timeout", 0, "per-write deadline on acks and subscriber result lines; a timed-out write closes the connection (0 = off)")
		drainTO      = flag.Duration("drain-timeout", 30*time.Second, "SIGTERM graceful-drain bound: how long to wait for in-flight batches to flush before giving up and exiting non-zero (0 = wait forever)")
	)
	flag.Parse()

	die := func(err error) {
		fmt.Fprintf(os.Stderr, "jiscd: %v\n", err)
		os.Exit(1)
	}

	p, err := plan.Parse(*planSrc)
	if err != nil {
		die(err)
	}
	var strategy engine.Strategy
	switch *strat {
	case "jisc":
		strategy = core.New()
	case "moving-state":
		strategy = migrate.MovingState{}
	case "static":
		strategy = engine.Static{}
	default:
		die(fmt.Errorf("unknown strategy %q", *strat))
	}
	overflow := pipeline.Block
	if *shedding {
		overflow = pipeline.Shed
	}
	stateBudget, err := parseStateBudget(*budget)
	if err != nil {
		die(err)
	}
	inflightBudget, err := parseInflightBudget(*inflight)
	if err != nil {
		die(err)
	}

	var dur durable.Options
	if *walDir != "" {
		if *shedding {
			die(fmt.Errorf("-shed cannot be combined with -wal: a shed tuple would be logged but dropped, so replay would resurrect it"))
		}
		if *feedDeadline > 0 {
			die(fmt.Errorf("-feed-deadline cannot be combined with -wal: a deadline-shed batch would already be logged, so replay would resurrect it"))
		}
		policy, err := durable.ParsePolicy(*fsyncMode)
		if err != nil {
			die(err)
		}
		dur = durable.Options{
			Dir:                *walDir,
			Fsync:              policy,
			FlushInterval:      *fsyncIvl,
			CheckpointInterval: *ckptIvl,
		}
	}

	srv, err := server.New(server.Config{
		Pipeline: pipeline.Config{
			Engine: engine.Config{
				Plan:        p,
				WindowSize:  *window,
				TimeSpan:    *timeSpan,
				Strategy:    strategy,
				StateBudget: stateBudget,
				SpillDir:    *spillDir,
			},
			QueueSize: *queue,
			Overflow:  overflow,
			Shards:    *shards,
		},
		Durable: dur,
		Adaptive: adaptive.Config{
			Interval: *autoIvl,
			Cooldown: *autoCool,
		},
		AutoStart: *auto,
		Admission: admission.Config{
			MaxConns:      *maxConns,
			Rate:          *ingestRate,
			Burst:         *ingestBurst,
			InflightBytes: inflightBudget,
			FeedDeadline:  *feedDeadline,
		},
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
	})
	if err != nil {
		die(err)
	}
	if dur.Enabled() {
		ds := srv.DurableStats()
		fmt.Printf("jiscd: recovered from %s in %.3fs (%d events replayed, %d torn tails truncated; fsync %s)\n",
			*walDir, float64(ds.RecoveryNs)/1e9, ds.RecoveredEvents, ds.TornTruncations, dur.Fsync)
	}
	if err := srv.Listen(*addr); err != nil {
		die(err)
	}
	if *telemetry != "" {
		if err := srv.ServeTelemetry(*telemetry); err != nil {
			die(err)
		}
		fmt.Printf("jiscd: telemetry on http://%s/metrics\n", srv.TelemetryAddr())
	}
	autopilot := ""
	if *auto {
		autopilot = ", autopilot on"
	}
	fmt.Printf("jiscd: serving %s on %s (strategy %s, window %d, shards %d%s)\n",
		p, srv.Addr(), *strat, *window, *shards, autopilot)

	// SIGTERM is the rolling-restart signal: stop accepting, fence new
	// work behind BUSY, flush everything admitted, checkpoint (when
	// durable), and exit 0 — the supervisor's replacement loses
	// nothing. SIGINT stays the fast path: close immediately.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	if got := <-sig; got == syscall.SIGTERM {
		fmt.Println("jiscd: draining (SIGTERM)")
		if err := srv.Drain(*drainTO); err != nil {
			fmt.Fprintf(os.Stderr, "jiscd: drain: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("jiscd: drained cleanly")
		return
	}
	fmt.Println("jiscd: shutting down")
	srv.Close()
}
