// Package testseed pins the seeds of randomized tests so `go test
// ./...` is bit-for-bit reproducible, while keeping every seed
// explicit, overridable, and printed when a test fails.
//
// A test that draws randomness declares its default seed once:
//
//	rng := rand.New(rand.NewSource(testseed.Seed(t, 42)))
//
// Runs are reproducible because the default is a constant; failures
// are debuggable because the seed is logged with the failure; and a
// suspicious seed can be re-tried across a whole run without editing
// code via the JISC_TEST_SEED environment variable, which overrides
// every call's default.
package testseed

import (
	"math/rand"
	"os"
	"strconv"
	"testing"
	"testing/quick"
)

// Env is the environment variable that overrides every test's default
// seed in one sweep: JISC_TEST_SEED=7 go test ./...
const Env = "JISC_TEST_SEED"

// Seed returns the seed the calling test should use: def, unless the
// JISC_TEST_SEED environment variable is set, in which case its value
// wins. The chosen seed is logged if (and only if) the test fails, so
// a red run always names the randomness that produced it.
func Seed(t testing.TB, def int64) int64 {
	t.Helper()
	seed := def
	if env := os.Getenv(Env); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("testseed: %s=%q is not an int64: %v", Env, env, err)
		}
		seed = v
	}
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("testseed: failing run used seed %d (override with %s=N)", seed, Env)
		}
	})
	return seed
}

// Quick returns a quick.Config whose value generator is pinned to
// Seed(t, def). testing/quick's default generator is seeded from the
// wall clock — the one source of run-to-run nondeterminism in this
// repo's tests — so every quick.Check call must pass a config from
// here. maxCount 0 keeps quick's default count.
func Quick(t testing.TB, def int64, maxCount int) *quick.Config {
	t.Helper()
	return &quick.Config{
		MaxCount: maxCount,
		Rand:     rand.New(rand.NewSource(Seed(t, def))),
	}
}

// Derive returns a sub-seed for one case of a table- or loop-driven
// test: Seed's result mixed with the case index, so each case draws
// independent randomness but the whole table still keys off one
// overridable base. The derived seed is logged on failure.
func Derive(t testing.TB, def int64, i int) int64 {
	t.Helper()
	base := Seed(t, def)
	z := uint64(base) + 0x9E3779B97F4A7C15*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}
