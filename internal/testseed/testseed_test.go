package testseed

import "testing"

func TestSeedDefault(t *testing.T) {
	t.Setenv(Env, "")
	if got := Seed(t, 42); got != 42 {
		t.Fatalf("Seed = %d, want the default 42", got)
	}
}

func TestSeedEnvOverride(t *testing.T) {
	t.Setenv(Env, "-7")
	if got := Seed(t, 42); got != -7 {
		t.Fatalf("Seed = %d, want the override -7", got)
	}
}

func TestDeriveSpreadsCases(t *testing.T) {
	t.Setenv(Env, "")
	a, b := Derive(t, 1, 0), Derive(t, 1, 1)
	if a == b {
		t.Fatalf("Derive produced the same seed %d for different cases", a)
	}
	if again := Derive(t, 1, 0); again != a {
		t.Fatalf("Derive is not deterministic: %d then %d", a, again)
	}
}

func TestQuickPinsGenerator(t *testing.T) {
	t.Setenv(Env, "")
	c1, c2 := Quick(t, 5, 10), Quick(t, 5, 10)
	if c1.Rand == nil || c2.Rand == nil {
		t.Fatal("Quick left the generator nil (time-seeded)")
	}
	if x, y := c1.Rand.Int63(), c2.Rand.Int63(); x != y {
		t.Fatalf("pinned generators diverge: %d vs %d", x, y)
	}
	if c1.MaxCount != 10 {
		t.Fatalf("MaxCount = %d, want 10", c1.MaxCount)
	}
}
