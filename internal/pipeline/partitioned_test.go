package pipeline

import (
	"sync"
	"testing"

	"jisc/internal/core"
	"jisc/internal/engine"
	"jisc/internal/plan"
	"jisc/internal/tuple"
	"jisc/internal/workload"
)

func TestPartitionedValidation(t *testing.T) {
	cfg := Config{Engine: engine.Config{Plan: plan.MustLeftDeep(0, 1)}}
	if _, err := NewPartitioned(cfg, 0); err == nil {
		t.Error("zero partitions accepted")
	}
	if _, err := NewPartitioned(Config{}, 2); err == nil {
		t.Error("nil plan accepted")
	}
}

// With eviction-free windows, the partitioned run produces exactly the
// single-engine results: hash partitioning by the join key is lossless
// for equi-joins. Partitions number tuples locally, so results are
// compared by join key (each key lives on exactly one partition), not
// by provenance fingerprint.
func TestPartitionedMatchesSingleEngine(t *testing.T) {
	const n = 1200
	src := workload.MustNewSource(workload.Config{Streams: 3, Domain: 12, Seed: 17})
	events := src.Take(n)

	single := map[tuple.Value]int{}
	se := engine.MustNew(engine.Config{
		Plan: plan.MustLeftDeep(0, 1, 2), WindowSize: n, Strategy: core.New(),
		Output: func(d engine.Delta) { single[d.Tuple.Key]++ },
	})

	parts := map[tuple.Value]int{}
	var mu sync.Mutex
	pp := MustNewPartitioned(Config{Engine: engine.Config{
		Plan: plan.MustLeftDeep(0, 1, 2), WindowSize: n, Strategy: core.New(),
		Output: func(d engine.Delta) {
			mu.Lock()
			parts[d.Tuple.Key]++
			mu.Unlock()
		},
	}}, 4)
	defer pp.Close()

	target := plan.MustLeftDeep(2, 0, 1)
	for i, ev := range events {
		if i == n/2 {
			if err := se.Migrate(target); err != nil {
				t.Fatal(err)
			}
			if err := pp.Migrate(target); err != nil {
				t.Fatal(err)
			}
		}
		se.Feed(ev)
		if err := pp.Feed(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := pp.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(single) != len(parts) {
		t.Fatalf("result keys: single %d vs partitioned %d", len(single), len(parts))
	}
	for key, c := range single {
		if parts[key] != c {
			t.Fatalf("key %d: single %d vs partitioned %d results", key, c, parts[key])
		}
	}
	m, err := pp.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Input != n {
		t.Fatalf("aggregated Input = %d, want %d", m.Input, n)
	}
	if m.Transitions != 1 {
		t.Fatalf("Transitions = %d", m.Transitions)
	}
}

func TestPartitionedShardCount(t *testing.T) {
	// Key-routing affinity itself is covered in internal/runtime,
	// where the router lives.
	pp := MustNewPartitioned(Config{Engine: engine.Config{
		Plan: plan.MustLeftDeep(0, 1), WindowSize: 100,
	}}, 3)
	defer pp.Close()
	if pp.Partitions() != 3 {
		t.Fatalf("Partitions = %d", pp.Partitions())
	}
}

// TestPartitionedConcurrentEquivalence is the strong form of the
// equivalence check: one producer goroutine per stream feeds the
// partitioned runtime while a plan transition lands mid-stream, and
// the per-key output counts must still equal a single-threaded
// engine's. With eviction-free windows a symmetric hash join emits
// every matching combination exactly once — when its last constituent
// arrives — so the output multiset is independent of arrival
// interleaving and of the transition point, as long as migration loses
// and duplicates nothing (Theorem 1). Run under -race this also
// exercises the router, the per-shard engines, and the merged metrics
// concurrently.
func TestPartitionedConcurrentEquivalence(t *testing.T) {
	const (
		streams = 3
		perStr  = 300
		domain  = 10
		window  = streams * perStr // eviction-free
	)
	// Fixed per-stream key sequences so both runs see the same data.
	keyOf := func(s tuple.StreamID, i int) tuple.Value {
		return tuple.Value((i*7 + int(s)*3) % domain)
	}

	// Single-threaded reference: round-robin arrival, transition in
	// the middle.
	single := map[tuple.Value]int{}
	se := engine.MustNew(engine.Config{
		Plan: plan.MustLeftDeep(0, 1, 2), WindowSize: window, Strategy: core.New(),
		Output: func(d engine.Delta) { single[d.Tuple.Key]++ },
	})
	target := plan.MustLeftDeep(2, 0, 1)
	for i := 0; i < perStr; i++ {
		if i == perStr/2 {
			if err := se.Migrate(target); err != nil {
				t.Fatal(err)
			}
		}
		for s := tuple.StreamID(0); s < streams; s++ {
			se.Feed(workload.Event{Stream: s, Key: keyOf(s, i)})
		}
	}

	// Partitioned run: one producer per stream, migration fired from
	// the main goroutine while they are in flight.
	parts := map[tuple.Value]int{}
	var mu sync.Mutex
	pp := MustNewPartitioned(Config{
		Engine: engine.Config{
			Plan: plan.MustLeftDeep(0, 1, 2), WindowSize: window, Strategy: core.New(),
			Output: func(d engine.Delta) {
				mu.Lock()
				parts[d.Tuple.Key]++
				mu.Unlock()
			},
		},
		QueueSize: 32, // small queues so producers and workers overlap
	}, 4)
	defer pp.Close()

	var wg sync.WaitGroup
	release := make(chan struct{})
	for s := tuple.StreamID(0); s < streams; s++ {
		wg.Add(1)
		go func(s tuple.StreamID) {
			defer wg.Done()
			<-release
			for i := 0; i < perStr; i++ {
				if err := pp.Feed(workload.Event{Stream: s, Key: keyOf(s, i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	close(release)
	if err := pp.Migrate(target); err != nil { // mid-stream: producers are live
		t.Fatal(err)
	}
	wg.Wait()
	if err := pp.Flush(); err != nil {
		t.Fatal(err)
	}

	for key, want := range single {
		if parts[key] != want {
			t.Fatalf("key %d: single %d vs partitioned %d results", key, want, parts[key])
		}
	}
	for key := range parts {
		if _, ok := single[key]; !ok {
			t.Fatalf("key %d produced only by the partitioned run", key)
		}
	}
	m, err := pp.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Input != streams*perStr {
		t.Fatalf("merged Input = %d, want %d", m.Input, streams*perStr)
	}
	if m.Transitions != 1 {
		t.Fatalf("merged Transitions = %d, want 1", m.Transitions)
	}
}

func TestPartitionedConcurrentProducers(t *testing.T) {
	var outputs int
	var mu sync.Mutex
	pp := MustNewPartitioned(Config{
		Engine: engine.Config{
			Plan: plan.MustLeftDeep(0, 1, 2), WindowSize: 256, Strategy: core.New(),
			Output: func(engine.Delta) { mu.Lock(); outputs++; mu.Unlock() },
		},
		QueueSize: 64,
	}, 4)
	defer pp.Close()

	var wg sync.WaitGroup
	for s := tuple.StreamID(0); s < 3; s++ {
		wg.Add(1)
		go func(s tuple.StreamID) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				if err := pp.Feed(workload.Event{Stream: s, Key: tuple.Value(i % 16)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	if err := pp.Migrate(plan.MustLeftDeep(1, 2, 0)); err != nil {
		t.Fatal(err)
	}
	<-done
	if err := pp.Flush(); err != nil {
		t.Fatal(err)
	}
	if outputs == 0 {
		t.Fatal("no outputs under concurrency")
	}
}
