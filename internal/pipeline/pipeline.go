// Package pipeline re-exports the unified execution runtime (package
// runtime) under its historical names: Runner for the single-worker
// harness, Partitioned for the hash-sharded one. New code should
// construct runtime.Runtime directly; this package exists so older
// call sites and the public wrappers keep compiling unchanged.
package pipeline

import (
	"jisc/internal/runtime"
)

// ErrClosed is returned by Runner methods after Close.
var ErrClosed = runtime.ErrClosed

// Runner executes one continuous query on a dedicated worker
// goroutine. See runtime.Runner.
type Runner = runtime.Runner

// Config parameterizes a Runner (its Shards field applies only to
// Partitioned/runtime.Runtime). Setting Config.Obs turns on the
// internal/obs latency instrumentation here too. See runtime.Config.
type Config = runtime.Config

// Overflow selects what Feed does when the input queue is full.
type Overflow = runtime.Overflow

const (
	// Block applies backpressure: Feed waits for queue space.
	Block = runtime.Block
	// Shed drops the newest tuple instead of blocking.
	Shed = runtime.Shed
)

// New builds and starts a Runner.
func New(cfg Config) (*Runner, error) { return runtime.NewRunner(cfg) }

// MustNew is New but panics on error.
func MustNew(cfg Config) *Runner { return runtime.MustNewRunner(cfg) }
