package pipeline

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"

	"jisc/internal/core"
	"jisc/internal/engine"
	"jisc/internal/migrate"
	"jisc/internal/plan"
	"jisc/internal/tuple"
	"jisc/internal/workload"
)

func ev(s tuple.StreamID, k tuple.Value) workload.Event {
	return workload.Event{Stream: s, Key: k}
}

func TestRunnerBasicFlow(t *testing.T) {
	var outputs atomic.Int64
	r := MustNew(Config{Engine: engine.Config{
		Plan:   plan.MustLeftDeep(0, 1),
		Output: func(engine.Delta) { outputs.Add(1) },
	}})
	defer r.Close()
	if err := r.Feed(ev(0, 5)); err != nil {
		t.Fatal(err)
	}
	if err := r.Feed(ev(1, 5)); err != nil {
		t.Fatal(err)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if outputs.Load() != 1 {
		t.Fatalf("outputs = %d", outputs.Load())
	}
}

func TestRunnerQueueIsBufferClearingPhase(t *testing.T) {
	var outs []string
	r := MustNew(Config{Engine: engine.Config{
		Plan:     plan.MustLeftDeep(0, 1, 2),
		Strategy: core.New(),
		Output: func(d engine.Delta) {
			outs = append(outs, d.Tuple.Fingerprint()) // worker goroutine only
		},
	}})
	defer r.Close()
	// Tuples enqueued before the migration must be processed by the
	// OLD plan; tuples after it by the new plan. Either way the
	// result multiset must be complete.
	for _, e := range []workload.Event{ev(0, 3), ev(1, 3)} {
		if err := r.Feed(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Migrate(plan.MustLeftDeep(2, 1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := r.Feed(ev(2, 3)); err != nil {
		t.Fatal(err)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || outs[0] != "0#1|1#1|2#1" {
		t.Fatalf("outs = %v", outs)
	}
}

func TestRunnerConcurrentProducers(t *testing.T) {
	var outputs atomic.Int64
	r := MustNew(Config{
		Engine: engine.Config{
			Plan:       plan.MustLeftDeep(0, 1, 2, 3),
			WindowSize: 64,
			Strategy:   core.New(),
			Output:     func(engine.Delta) { outputs.Add(1) },
		},
		QueueSize: 256,
	})
	defer r.Close()

	var wg sync.WaitGroup
	for s := tuple.StreamID(0); s < 4; s++ {
		wg.Add(1)
		go func(s tuple.StreamID) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if err := r.Feed(ev(s, tuple.Value(i%8))); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	// Concurrently migrate a few times while producers are running.
	plans := []*plan.Plan{
		plan.MustLeftDeep(1, 0, 2, 3),
		plan.MustLeftDeep(1, 2, 0, 3),
		plan.MustLeftDeep(0, 1, 2, 3),
	}
	for _, p := range plans {
		if err := r.Migrate(p); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	m, err := r.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Input != 2000 {
		t.Fatalf("Input = %d, want 2000", m.Input)
	}
	if m.Transitions != 3 {
		t.Fatalf("Transitions = %d", m.Transitions)
	}
	if outputs.Load() == 0 {
		t.Fatal("no outputs under concurrency")
	}
}

// Concurrent runners under JISC and Moving State must produce the
// same output multiset for the same serialized message sequence.
func TestRunnerStrategiesAgree(t *testing.T) {
	type res struct {
		mu   sync.Mutex
		outs map[string]int
	}
	run := func(strat engine.Strategy) map[string]int {
		rs := &res{outs: map[string]int{}}
		r := MustNew(Config{Engine: engine.Config{
			Plan: plan.MustLeftDeep(0, 1, 2), WindowSize: 8, Strategy: strat,
			Output: func(d engine.Delta) {
				rs.mu.Lock()
				rs.outs[d.Tuple.Fingerprint()]++
				rs.mu.Unlock()
			},
		}})
		defer r.Close()
		src := workload.MustNewSource(workload.Config{Streams: 3, Domain: 4, Seed: 9})
		for i := 0; i < 300; i++ {
			if i == 100 {
				if err := r.Migrate(plan.MustLeftDeep(2, 0, 1)); err != nil {
					t.Fatal(err)
				}
			}
			if err := r.Feed(src.Next()); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.Flush(); err != nil {
			t.Fatal(err)
		}
		return rs.outs
	}
	a := run(core.New())
	b := run(migrate.MovingState{})
	if len(a) != len(b) {
		t.Fatalf("output count differs: %d vs %d", len(a), len(b))
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("output %s: %d vs %d", k, v, b[k])
		}
	}
}

func TestRunnerClosedErrors(t *testing.T) {
	r := MustNew(Config{Engine: engine.Config{Plan: plan.MustLeftDeep(0, 1)}})
	r.Close()
	r.Close() // idempotent
	if err := r.Feed(ev(0, 1)); err != ErrClosed {
		t.Fatalf("Feed after close: %v", err)
	}
	if err := r.Migrate(plan.MustLeftDeep(1, 0)); err != ErrClosed {
		t.Fatalf("Migrate after close: %v", err)
	}
	if err := r.Flush(); err != ErrClosed {
		t.Fatalf("Flush after close: %v", err)
	}
	if _, err := r.Metrics(); err != ErrClosed {
		t.Fatalf("Metrics after close: %v", err)
	}
}

func TestRunnerConfigValidation(t *testing.T) {
	if _, err := New(Config{Engine: engine.Config{Plan: plan.MustLeftDeep(0, 1)}, QueueSize: -1}); err == nil {
		t.Error("negative queue accepted")
	}
	if _, err := New(Config{}); err == nil {
		t.Error("nil plan accepted")
	}
}

func TestRunnerMigrateErrorPropagates(t *testing.T) {
	r := MustNew(Config{Engine: engine.Config{Plan: plan.MustLeftDeep(0, 1)}}) // Static
	defer r.Close()
	if err := r.Migrate(plan.MustLeftDeep(1, 0)); err == nil {
		t.Fatal("static strategy migration should error")
	}
}

func TestRunnerQueueLen(t *testing.T) {
	r := MustNew(Config{Engine: engine.Config{Plan: plan.MustLeftDeep(0, 1)}, QueueSize: 8})
	defer r.Close()
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if r.QueueLen() != 0 {
		t.Fatalf("QueueLen = %d after flush", r.QueueLen())
	}
}

func TestRunnerLoadShedding(t *testing.T) {
	r := MustNew(Config{
		Engine: engine.Config{
			Plan:   plan.MustLeftDeep(0, 1),
			Output: func(engine.Delta) {},
		},
		QueueSize: 2,
		Overflow:  Shed,
	})
	defer r.Close()
	// Flood a tiny queue: Feed must never block, and every tuple must
	// be accounted either processed or shed.
	const total = 50000
	for i := 0; i < total; i++ {
		if err := r.Feed(ev(tuple.StreamID(i%2), tuple.Value(i%8))); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	m, err := r.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Input+r.Shed() != total {
		t.Fatalf("accounting: processed %d + shed %d != %d", m.Input, r.Shed(), total)
	}
	if m.Input == 0 {
		t.Fatal("everything was shed")
	}
}

func TestRunnerBlockPolicyProcessesEverything(t *testing.T) {
	r := MustNew(Config{
		Engine:    engine.Config{Plan: plan.MustLeftDeep(0, 1)},
		QueueSize: 2,
	})
	defer r.Close()
	const total = 5000
	for i := 0; i < total; i++ {
		if err := r.Feed(ev(tuple.StreamID(i%2), tuple.Value(i%8))); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	m, err := r.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Input != total || r.Shed() != 0 {
		t.Fatalf("block policy lost tuples: input=%d shed=%d", m.Input, r.Shed())
	}
}

func TestRunnerCheckpoint(t *testing.T) {
	r := MustNew(Config{Engine: engine.Config{Plan: plan.MustLeftDeep(0, 1), WindowSize: 8, Strategy: core.New()}})
	defer r.Close()
	if err := r.Feed(ev(0, 3)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	var n int
	restored, err := engine.Restore(&buf, engine.Config{
		WindowSize: 8, Strategy: core.New(),
		Output: func(engine.Delta) { n++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	restored.Feed(ev(1, 3))
	if n != 1 {
		t.Fatalf("restored results = %d", n)
	}
}
