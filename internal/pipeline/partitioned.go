package pipeline

import (
	"fmt"
	"sync"

	"jisc/internal/engine"
	"jisc/internal/metrics"
	"jisc/internal/plan"
	"jisc/internal/workload"
)

// Partitioned scales one continuous equi-join query across worker
// goroutines by hash-partitioning the join key: tuples with equal keys
// land on the same partition, and since every join in the query
// matches on that key, partitions never need to exchange state. Each
// partition is a full Runner (engine + input queue); plan transitions
// fan out to all partitions, each of which migrates independently
// under the configured strategy — JISC's lazy completion then
// proceeds per partition, on that partition's keys only.
//
// Windows are per partition: a count window of W tuples bounds each
// partition's per-stream state separately (the usual semantics of
// hash-partitioned stream processors). With eviction-free horizons
// (windows larger than the data) the output multiset is identical to
// a single-engine run; the tests assert exactly that.
type Partitioned struct {
	parts []*Runner

	outMu sync.Mutex
}

// NewPartitioned builds `parts` runners. cfg.Engine.Output, if set, is
// serialized across partitions. cfg.QueueSize applies per partition.
func NewPartitioned(cfg Config, parts int) (*Partitioned, error) {
	if parts <= 0 {
		return nil, fmt.Errorf("pipeline: need at least 1 partition, got %d", parts)
	}
	p := &Partitioned{}
	userOut := cfg.Engine.Output
	if userOut != nil {
		cfg.Engine.Output = func(d engine.Delta) {
			p.outMu.Lock()
			userOut(d)
			p.outMu.Unlock()
		}
	}
	for i := 0; i < parts; i++ {
		r, err := New(cfg)
		if err != nil {
			for _, prev := range p.parts {
				prev.Close()
			}
			return nil, err
		}
		p.parts = append(p.parts, r)
	}
	return p, nil
}

// MustNewPartitioned is NewPartitioned but panics on error.
func MustNewPartitioned(cfg Config, parts int) *Partitioned {
	p, err := NewPartitioned(cfg, parts)
	if err != nil {
		panic(err)
	}
	return p
}

// Partitions returns the partition count.
func (p *Partitioned) Partitions() int { return len(p.parts) }

// route picks the partition for a join key. Fibonacci hashing spreads
// sequential keys.
func (p *Partitioned) route(ev workload.Event) *Runner {
	h := uint64(ev.Key) * 0x9E3779B97F4A7C15
	return p.parts[h%uint64(len(p.parts))]
}

// Feed enqueues one tuple on its key's partition.
func (p *Partitioned) Feed(ev workload.Event) error { return p.route(ev).Feed(ev) }

// Migrate transitions every partition to the new plan, in-band per
// partition. It returns the first error; partitions that already
// migrated stay on the new plan (they run the same strategy, so a
// retry converges).
func (p *Partitioned) Migrate(pl *plan.Plan) error {
	for _, r := range p.parts {
		if err := r.Migrate(pl); err != nil {
			return err
		}
	}
	return nil
}

// Flush waits for every partition to drain.
func (p *Partitioned) Flush() error {
	for _, r := range p.parts {
		if err := r.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Metrics aggregates the partition counters.
func (p *Partitioned) Metrics() (metrics.Snapshot, error) {
	var total metrics.Snapshot
	for _, r := range p.parts {
		s, err := r.Metrics()
		if err != nil {
			return metrics.Snapshot{}, err
		}
		total.Input += s.Input
		total.Output += s.Output
		total.Probes += s.Probes
		total.Inserts += s.Inserts
		total.Completions += s.Completions
		total.CompletedEntries += s.CompletedEntries
		total.Evictions += s.Evictions
		total.Transitions = s.Transitions // same on every partition
		total.OutputLatencies = append(total.OutputLatencies, s.OutputLatencies...)
	}
	return total, nil
}

// Close stops every partition.
func (p *Partitioned) Close() {
	for _, r := range p.parts {
		r.Close()
	}
}
