package pipeline

import (
	"jisc/internal/runtime"
)

// Partitioned is the historical name of the sharded runtime. See
// runtime.Runtime for the semantics (key-hash routing, per-shard
// windows, fan-out migration, merged metrics).
type Partitioned = runtime.Runtime

// NewPartitioned builds `parts` shards. cfg.Engine.Output, if set, is
// serialized across shards. cfg.QueueSize applies per shard.
func NewPartitioned(cfg Config, parts int) (*Partitioned, error) {
	cfg.Shards = parts
	if parts <= 0 {
		// Preserve the historical contract: zero shards is an error
		// here, not a default.
		cfg.Shards = -1
	}
	return runtime.New(cfg)
}

// MustNewPartitioned is NewPartitioned but panics on error.
func MustNewPartitioned(cfg Config, parts int) *Partitioned {
	p, err := NewPartitioned(cfg, parts)
	if err != nil {
		panic(err)
	}
	return p
}
