package runtime

import (
	"fmt"
	"sync"
	"testing"

	"jisc/internal/core"
	"jisc/internal/durable"
	"jisc/internal/engine"
	"jisc/internal/plan"
	"jisc/internal/tuple"
	"jisc/internal/workload"
)

func batchWorkload(n int) []workload.Event {
	src := workload.MustNewSource(workload.Config{Streams: 3, Domain: 6, Seed: 7})
	return src.Take(n)
}

func countOutputs(mu *sync.Mutex, dst map[string]int) engine.Config {
	return engine.Config{
		Plan:          plan.MustLeftDeep(0, 1, 2),
		WindowSize:    16,
		Strategy:      core.New(),
		Deterministic: true,
		Output: func(d engine.Delta) {
			if !d.Retraction {
				mu.Lock()
				dst[d.Tuple.Fingerprint()]++
				mu.Unlock()
			}
		},
	}
}

// TestRuntimeFeedBatchEquivalence: FeedBatch over 1 and 4 shards
// produces the same output multiset and counters as per-event Feed.
func TestRuntimeFeedBatchEquivalence(t *testing.T) {
	evs := batchWorkload(600)
	for _, shards := range []int{1, 4} {
		for _, chunk := range []int{1, 8, 64, 600} {
			t.Run(fmt.Sprintf("shards=%d/chunk=%d", shards, chunk), func(t *testing.T) {
				var refMu, batMu sync.Mutex
				refOuts, batOuts := map[string]int{}, map[string]int{}
				ref := MustNew(Config{Engine: countOutputs(&refMu, refOuts), Shards: shards})
				defer ref.Close()
				bat := MustNew(Config{Engine: countOutputs(&batMu, batOuts), Shards: shards})
				defer bat.Close()
				for _, ev := range evs {
					if err := ref.Feed(ev); err != nil {
						t.Fatal(err)
					}
				}
				for i := 0; i < len(evs); i += chunk {
					if err := bat.FeedBatch(evs[i:min(i+chunk, len(evs))]); err != nil {
						t.Fatal(err)
					}
				}
				if err := ref.Flush(); err != nil {
					t.Fatal(err)
				}
				if err := bat.Flush(); err != nil {
					t.Fatal(err)
				}
				rm, bm := ref.Snapshot(), bat.Snapshot()
				if rm.Input != bm.Input || rm.Output != bm.Output {
					t.Fatalf("counters diverge: ref Input=%d Output=%d, batch Input=%d Output=%d",
						rm.Input, rm.Output, bm.Input, bm.Output)
				}
				if len(refOuts) != len(batOuts) {
					t.Fatalf("distinct outputs: ref %d, batch %d", len(refOuts), len(batOuts))
				}
				for fp, c := range refOuts {
					if batOuts[fp] != c {
						t.Fatalf("output %q: ref %d, batch %d", fp, c, batOuts[fp])
					}
				}
			})
		}
	}
}

// TestRunnerFeedBatchShedAccounting floods a tiny queue with batches:
// FeedBatch never blocks under Shed, whole sub-batches drop, and every
// tuple is accounted as either processed or shed.
func TestRunnerFeedBatchShedAccounting(t *testing.T) {
	r := MustNewRunner(Config{
		Engine: engine.Config{
			Plan:   plan.MustLeftDeep(0, 1),
			Output: func(engine.Delta) {},
		},
		QueueSize: 2,
		Overflow:  Shed,
	})
	defer r.Close()
	const batches, per = 5000, 10
	for i := 0; i < batches; i++ {
		evs := make([]workload.Event, per)
		for j := range evs {
			evs[j] = workload.Event{Stream: tuple.StreamID(j % 2), Key: tuple.Value(j % 8)}
		}
		if err := r.FeedBatch(evs); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	m, err := r.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Input+r.Shed() != batches*per {
		t.Fatalf("accounting: processed %d + shed %d != %d", m.Input, r.Shed(), batches*per)
	}
	if m.Input == 0 {
		t.Fatal("everything was shed")
	}
	if r.Shed()%per != 0 {
		t.Fatalf("shed %d tuples; drops must be whole %d-tuple batches", r.Shed(), per)
	}
}

// TestDurableFeedBatchRecovery: a durable runtime fed via FeedBatch
// writes FEEDB frames; killing it (Close is crash-equivalent under
// FsyncAlways) and recovering lands on the same counters, and the new
// process keeps working.
func TestDurableFeedBatchRecovery(t *testing.T) {
	for _, shards := range []int{1, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			fs := durable.NewMemFS()
			dopts := durable.Options{Dir: "wal", Fsync: durable.FsyncAlways, CheckpointInterval: -1, FS: fs}
			evs := batchWorkload(300)

			var mu sync.Mutex
			outs := map[string]int{}
			rt, err := New(Config{Engine: countOutputs(&mu, outs), Shards: shards, Durability: dopts})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < len(evs); i += 32 {
				if err := rt.FeedBatch(evs[i:min(i+32, len(evs))]); err != nil {
					t.Fatal(err)
				}
			}
			if err := rt.Flush(); err != nil {
				t.Fatal(err)
			}
			pre := rt.Snapshot()
			rt.Close()

			var mu2 sync.Mutex
			outs2 := map[string]int{}
			rt2, err := New(Config{Engine: countOutputs(&mu2, outs2), Shards: shards, Durability: dopts})
			if err != nil {
				t.Fatal(err)
			}
			defer rt2.Close()
			rec := rt2.Snapshot()
			if rec.Input != pre.Input || rec.Output != pre.Output {
				t.Fatalf("recovered Input=%d Output=%d, want %d and %d", rec.Input, rec.Output, pre.Input, pre.Output)
			}
			if got := rt2.DurableStats().RecoveredEvents; got != uint64(len(evs)) {
				t.Fatalf("RecoveredEvents = %d, want %d", got, len(evs))
			}
			if len(outs2) != 0 {
				t.Fatalf("replay re-emitted %d outputs", len(outs2))
			}
			// The recovered runtime still ingests batches.
			if err := rt2.FeedBatch(evs[:50]); err != nil {
				t.Fatal(err)
			}
			if err := rt2.Flush(); err != nil {
				t.Fatal(err)
			}
			if post := rt2.Snapshot(); post.Input != pre.Input+50 {
				t.Fatalf("post-recovery Input = %d, want %d", post.Input, pre.Input+50)
			}
		})
	}
}

// TestRuntimeFeedBatchEmpty: a zero-length batch is a no-op, not an
// error or a queue slot.
func TestRuntimeFeedBatchEmpty(t *testing.T) {
	rt := MustNew(Config{Engine: engine.Config{Plan: plan.MustLeftDeep(0, 1)}})
	defer rt.Close()
	if err := rt.FeedBatch(nil); err != nil {
		t.Fatal(err)
	}
	if err := rt.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := rt.Snapshot().Input; got != 0 {
		t.Fatalf("Input = %d after empty batch", got)
	}
}
