package runtime

import (
	"sync"
	"testing"

	"jisc/internal/core"
	"jisc/internal/engine"
	"jisc/internal/obs"
	"jisc/internal/plan"
	"jisc/internal/tuple"
	"jisc/internal/workload"
)

func TestNewDefaultsToOneShard(t *testing.T) {
	rt := MustNew(Config{Engine: engine.Config{Plan: plan.MustLeftDeep(0, 1)}})
	defer rt.Close()
	if rt.Shards() != 1 {
		t.Fatalf("Shards = %d, want 1", rt.Shards())
	}
}

func TestNewRejectsNegativeShards(t *testing.T) {
	if _, err := New(Config{
		Engine: engine.Config{Plan: plan.MustLeftDeep(0, 1)},
		Shards: -1,
	}); err == nil {
		t.Fatal("negative shard count accepted")
	}
}

func TestRouteKeyAffinity(t *testing.T) {
	rt := MustNew(Config{
		Engine: engine.Config{Plan: plan.MustLeftDeep(0, 1), WindowSize: 100},
		Shards: 3,
	})
	defer rt.Close()
	// Same key must always land on the same shard, whatever the
	// stream: equi-join matching is per key.
	for key := tuple.Value(0); key < 64; key++ {
		a := rt.route(workload.Event{Stream: 0, Key: key})
		b := rt.route(workload.Event{Stream: 1, Key: key})
		if a != b {
			t.Fatalf("key %d routed to different shards", key)
		}
	}
}

// TestSnapshotConcurrentWithFeed exercises the lock-free metrics path:
// Snapshot merges the shard counters from the test goroutine while the
// workers are busy processing, with no control-channel round trip.
// Run with -race this doubles as the data-race proof for the atomic
// collector contract.
func TestSnapshotConcurrentWithFeed(t *testing.T) {
	const n = 2000
	rt := MustNew(Config{
		Engine: engine.Config{
			Plan: plan.MustLeftDeep(0, 1, 2), WindowSize: 256, Strategy: core.New(),
		},
		QueueSize: 64,
		Shards:    4,
	})
	defer rt.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := rt.Feed(workload.Event{
				Stream: tuple.StreamID(i % 3), Key: tuple.Value(i % 32),
			}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Live snapshots while the workers churn: monotone non-decreasing
	// input counts, never an error, never blocking on the queues.
	var last uint64
	for i := 0; i < 100; i++ {
		s := rt.Snapshot()
		if s.Input < last {
			t.Fatalf("Snapshot Input went backwards: %d -> %d", last, s.Input)
		}
		last = s.Input
	}
	wg.Wait()
	if err := rt.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := rt.Snapshot().Input; got != n {
		t.Fatalf("final Snapshot Input = %d, want %d", got, n)
	}
}

func TestMigrateFansOutToAllShards(t *testing.T) {
	rt := MustNew(Config{
		Engine: engine.Config{
			Plan: plan.MustLeftDeep(0, 1, 2), WindowSize: 128, Strategy: core.New(),
		},
		Shards: 3,
	})
	defer rt.Close()
	for i := 0; i < 300; i++ {
		if err := rt.Feed(workload.Event{
			Stream: tuple.StreamID(i % 3), Key: tuple.Value(i % 16),
		}); err != nil {
			t.Fatal(err)
		}
	}
	target := plan.MustLeftDeep(2, 0, 1)
	if err := rt.Migrate(target); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rt.Shards(); i++ {
		p, err := rt.Shard(i).Plan()
		if err != nil {
			t.Fatal(err)
		}
		if p.String() != target.String() {
			t.Fatalf("shard %d on plan %s, want %s", i, p, target)
		}
	}
	if m, err := rt.Metrics(); err != nil || m.Transitions != 1 {
		t.Fatalf("merged Transitions = %d (err %v), want 1", m.Transitions, err)
	}
}

func TestCheckpointRequiresSingleShard(t *testing.T) {
	rt := MustNew(Config{
		Engine: engine.Config{Plan: plan.MustLeftDeep(0, 1)},
		Shards: 2,
	})
	defer rt.Close()
	if err := rt.Checkpoint(nil); err == nil {
		t.Fatal("multi-shard Checkpoint accepted")
	}
	if err := rt.CheckpointShard(5, nil); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
}

// TestObsWiringShardedMigration wires an obs.Set through a sharded
// runtime: every shard gets its own recorder, ObsSnapshot merges them,
// and a fanned-out migration leaves one plan-installed trace event and
// one Migrate histogram sample per shard.
func TestObsWiringShardedMigration(t *testing.T) {
	const shards = 3
	set := obs.NewSet("q", 64)
	rt := MustNew(Config{
		Engine: engine.Config{
			Plan: plan.MustLeftDeep(0, 1, 2), WindowSize: 128, Strategy: core.New(),
		},
		Shards: shards,
		Obs:    set,
	})
	defer rt.Close()
	if rt.Obs() != set {
		t.Fatal("Obs() did not return the configured set")
	}
	for i := 0; i < 3000; i++ {
		if err := rt.Feed(workload.Event{
			Stream: tuple.StreamID(i % 3), Key: tuple.Value(i % 48),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Migrate(plan.MustLeftDeep(2, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := rt.Flush(); err != nil {
		t.Fatal(err)
	}
	s := rt.ObsSnapshot()
	if s.Feed.Count == 0 {
		t.Fatal("merged snapshot has no feed samples")
	}
	if got := s.Migrate.Count; got != shards {
		t.Fatalf("Migrate histogram count = %d, want one per shard (%d)", got, shards)
	}
	// Each shard recorded into its own recorder.
	perShard := 0
	for _, r := range set.Recorders() {
		if r.Feed.Count() > 0 {
			perShard++
		}
	}
	if perShard != shards {
		t.Fatalf("%d shards recorded feed latency, want %d", perShard, shards)
	}
	installed := map[int]bool{}
	for _, ev := range set.Tracer.Events() {
		if ev.Kind == obs.EvPlanInstalled {
			installed[ev.Shard] = true
		}
	}
	if len(installed) != shards {
		t.Fatalf("plan-installed events from %d shards, want %d", len(installed), shards)
	}
}

// TestObsStandaloneRunner checks the single-runner wiring: Config.Obs
// without a Runtime lands on shard 0's recorder.
func TestObsStandaloneRunner(t *testing.T) {
	set := obs.NewSet("q", 16)
	r := MustNewRunner(Config{
		Engine: engine.Config{Plan: plan.MustLeftDeep(0, 1), WindowSize: 64},
		Obs:    set,
	})
	defer r.Close()
	for i := 0; i < 200; i++ {
		if err := r.Feed(workload.Event{
			Stream: tuple.StreamID(i % 2), Key: tuple.Value(i % 8),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if r.Obs() != set.Recorder(0) {
		t.Fatal("runner recorder is not the set's shard-0 recorder")
	}
	if r.Obs().Feed.Count() == 0 {
		t.Fatal("no feed samples recorded")
	}
}
