package runtime

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"jisc/internal/core"
	"jisc/internal/durable"
	"jisc/internal/engine"
	"jisc/internal/metrics"
	"jisc/internal/plan"
	"jisc/internal/tuple"
	"jisc/internal/workload"
)

func durWorkload(n int) []workload.Event {
	evs := make([]workload.Event, 0, 3*n)
	for k := 0; k < n; k++ {
		for s := 0; s < 3; s++ {
			evs = append(evs, workload.Event{Stream: tuple.StreamID(s), Key: tuple.Value(k % 16)})
		}
	}
	return evs
}

func durConfig(shards int, dir string, out engine.Output) Config {
	return Config{
		Engine: engine.Config{
			Plan:       plan.MustLeftDeep(0, 1, 2),
			WindowSize: 1000,
			Strategy:   core.New(),
			Output:     out,
		},
		Shards: shards,
		Durability: durable.Options{
			Dir:   dir,
			Fsync: durable.FsyncAlways,
			// Deterministic tests drive checkpoints explicitly.
			CheckpointInterval: -1,
		},
	}
}

func durDelta(d engine.Delta) string {
	return fmt.Sprintf("%v %d %s", d.Retraction, d.Tuple.Key, d.Tuple.Fingerprint())
}

// runReference runs the workload durability-off and returns the sorted
// output multiset, final counters, and final plan.
func runReference(t *testing.T, shards int, evs []workload.Event, migrateAt int, p2 *plan.Plan) ([]string, map[string]uint64, string) {
	t.Helper()
	var out []string
	cfg := durConfig(shards, "", func(d engine.Delta) { out = append(out, durDelta(d)) })
	cfg.Durability = durable.Options{}
	rt := MustNew(cfg)
	defer rt.Close()
	for i, ev := range evs {
		if i == migrateAt {
			if err := rt.Migrate(p2); err != nil {
				t.Fatal(err)
			}
		}
		if err := rt.Feed(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Flush(); err != nil {
		t.Fatal(err)
	}
	m, err := rt.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	p, err := rt.Plan()
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(out)
	return out, counterMapOf(m), p.String()
}

// counterMapOf flattens the deterministic counters of a snapshot for
// comparison; latency samples are wall-clock and excluded.
func counterMapOf(m metrics.Snapshot) map[string]uint64 {
	return map[string]uint64{
		"input": m.Input, "output": m.Output,
		"probes": m.Probes, "inserts": m.Inserts,
		"completions": m.Completions, "completed_entries": m.CompletedEntries,
		"evictions": m.Evictions, "dup_dropped": m.DupDropped,
		"transitions": m.Transitions,
	}
}

func sameCounters(a, b map[string]uint64) bool {
	for k, v := range b {
		if a[k] != v {
			return false
		}
	}
	return true
}

// TestDurableRecoveryEquivalence is the subsystem's contract, end to
// end at the runtime layer: kill the runtime at assorted points of a
// workload with a mid-stream migration (including immediately after the
// MIGRATE fan-out), recover from disk, finish the workload, and require
// the combined output multiset, the merged counters, and the plan to
// match an uninterrupted durability-off run exactly.
func TestDurableRecoveryEquivalence(t *testing.T) {
	const keys = 12
	evs := durWorkload(keys)
	p2 := plan.MustLeftDeep(2, 0, 1)
	migrateAt := len(evs) / 2

	for _, shards := range []int{1, 2} {
		refOut, refMet, refPlan := runReference(t, shards, evs, migrateAt, p2)
		cuts := []int{0, 1, migrateAt - 1, migrateAt, migrateAt + 1, migrateAt + 3, len(evs) - 1, len(evs)}
		for _, cut := range cuts {
			for _, ckpt := range []bool{false, true} {
				t.Run(fmt.Sprintf("shards=%d/cut=%d/ckpt=%v", shards, cut, ckpt), func(t *testing.T) {
					dir := t.TempDir()

					// Phase 1: live durable run up to the crash point.
					var liveOut []string
					rt := MustNew(durConfig(shards, dir, func(d engine.Delta) { liveOut = append(liveOut, durDelta(d)) }))
					for i := 0; i < cut; i++ {
						if i == migrateAt {
							if err := rt.Migrate(p2); err != nil {
								t.Fatal(err)
							}
						}
						if err := rt.Feed(evs[i]); err != nil {
							t.Fatal(err)
						}
					}
					if ckpt && cut > 0 {
						if err := rt.CheckpointNow(); err != nil {
							t.Fatal(err)
						}
					}
					if err := rt.Flush(); err != nil {
						t.Fatal(err)
					}
					// Close under FsyncAlways leaves crash-equivalent disk
					// state: no final checkpoint, no state outside the WAL.
					rt.Close()

					// Phase 2: recover and finish the workload.
					var postOut []string
					rt2 := MustNew(durConfig(shards, dir, func(d engine.Delta) { postOut = append(postOut, durDelta(d)) }))
					defer rt2.Close()
					if len(postOut) != 0 {
						t.Fatalf("recovery re-emitted %d results", len(postOut))
					}
					for i := cut; i < len(evs); i++ {
						if i == migrateAt {
							if err := rt2.Migrate(p2); err != nil {
								t.Fatal(err)
							}
						}
						if err := rt2.Feed(evs[i]); err != nil {
							t.Fatal(err)
						}
					}
					if err := rt2.Flush(); err != nil {
						t.Fatal(err)
					}

					got := append(append([]string(nil), liveOut...), postOut...)
					sort.Strings(got)
					if len(got) != len(refOut) {
						t.Fatalf("outputs: got %d, want %d", len(got), len(refOut))
					}
					for i := range refOut {
						if got[i] != refOut[i] {
							t.Fatalf("output %d = %q, want %q", i, got[i], refOut[i])
						}
					}
					m, err := rt2.Metrics()
					if err != nil {
						t.Fatal(err)
					}
					if gm := counterMapOf(m); !sameCounters(gm, refMet) {
						t.Fatalf("counters diverged:\n got %v\nwant %v", gm, refMet)
					}
					p, err := rt2.Plan()
					if err != nil {
						t.Fatal(err)
					}
					if p.String() != refPlan {
						t.Fatalf("plan = %s, want %s", p, refPlan)
					}
					if cut > 0 && !ckpt {
						if rt2.DurableStats().RecoveredEvents == 0 {
							t.Fatal("recovery replayed nothing despite a non-empty WAL")
						}
					}
				})
			}
		}
	}
}

// A crash after some shards migrated but before the fan-out finished
// must not leave the runtime split-brained: recovery converges every
// shard onto shard 0's plan.
func TestDurableRecoveryConvergesPartialMigration(t *testing.T) {
	dir := t.TempDir()
	p2 := plan.MustLeftDeep(2, 0, 1)
	rt := MustNew(durConfig(2, dir, nil))
	for _, ev := range durWorkload(8) {
		if err := rt.Feed(ev); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate dying mid-fan-out: shard 0 logs and applies the MIGRATE,
	// shard 1 never hears about it.
	if err := rt.migrateDurable(0, p2); err != nil {
		t.Fatal(err)
	}
	if err := rt.Flush(); err != nil {
		t.Fatal(err)
	}
	rt.Close()

	rt2 := MustNew(durConfig(2, dir, nil))
	defer rt2.Close()
	for i := 0; i < rt2.Shards(); i++ {
		p, err := rt2.Shard(i).Plan()
		if err != nil {
			t.Fatal(err)
		}
		if p.String() != p2.String() {
			t.Fatalf("shard %d on plan %s after recovery, want %s", i, p, p2)
		}
	}
}

// CheckpointNow must bound the log: segments fully covered by the
// checkpoint are deleted, and a recovery afterwards starts from the
// checkpoint rather than replaying history.
func TestDurableCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	cfg := durConfig(2, dir, nil)
	cfg.Durability.SegmentBytes = 256 // force rotations
	rt := MustNew(cfg)
	for _, ev := range durWorkload(64) {
		if err := rt.Feed(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Flush(); err != nil {
		t.Fatal(err)
	}
	before := rt.WALSegments()
	if before <= 2 {
		t.Fatalf("only %d segments before checkpoint; the test needs rotations", before)
	}
	if err := rt.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	ds := rt.DurableStats()
	if ds.Checkpoints != 2 {
		t.Fatalf("Checkpoints = %d, want one per shard", ds.Checkpoints)
	}
	if ds.SegmentsRemoved == 0 {
		t.Fatal("checkpoint deleted no WAL segments")
	}
	if after := rt.WALSegments(); after != 2 {
		t.Fatalf("%d segments after checkpoint, want the two active ones", after)
	}
	rt.Close()

	rt2 := MustNew(durConfig(2, dir, nil))
	defer rt2.Close()
	if replayed := rt2.DurableStats().RecoveredEvents; replayed != 0 {
		t.Fatalf("recovery replayed %d events past a covering checkpoint", replayed)
	}
	m, err := rt2.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Input != 3*64 {
		t.Fatalf("restored Input = %d, want %d", m.Input, 3*64)
	}
}

// The background checkpoint loop runs without explicit calls.
func TestDurableBackgroundCheckpointLoop(t *testing.T) {
	dir := t.TempDir()
	cfg := durConfig(1, dir, nil)
	cfg.Durability.CheckpointInterval = 5 * time.Millisecond
	rt := MustNew(cfg)
	defer rt.Close()
	for _, ev := range durWorkload(16) {
		if err := rt.Feed(ev); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for rt.DurableStats().Checkpoints == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background loop wrote no checkpoint")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDurabilityRejectsShedOverflow(t *testing.T) {
	cfg := durConfig(1, t.TempDir(), nil)
	cfg.Overflow = Shed
	cfg.QueueSize = 4
	if _, err := New(cfg); err == nil {
		t.Fatal("Shed + durability accepted; shed tuples would resurrect on replay")
	}
}

// Feed after Close must fail rather than ack an event that will never
// be processed or logged.
func TestDurableFeedAfterCloseFails(t *testing.T) {
	rt := MustNew(durConfig(1, t.TempDir(), nil))
	rt.Close()
	if err := rt.Feed(workload.Event{Stream: 0, Key: 1}); err == nil {
		t.Fatal("Feed after Close succeeded")
	}
}
