package runtime

import (
	"fmt"
	"io"
	"math"
	"path/filepath"
	"runtime/debug"
	"sort"
	"sync"

	"jisc/internal/adaptive"
	"jisc/internal/admission"
	"jisc/internal/durable"
	"jisc/internal/engine"
	"jisc/internal/metrics"
	"jisc/internal/obs"
	"jisc/internal/plan"
	"jisc/internal/statestore"
	"jisc/internal/tuple"
	"jisc/internal/workload"
)

// Runtime scales one continuous equi-join query across shard workers
// by hash-partitioning the join key: tuples with equal keys land on
// the same shard, and since every join in the query matches on that
// key, shards never need to exchange state. Each shard is a full
// Runner (engine + input queue); plan transitions fan out to all
// shards, each of which migrates independently under the configured
// strategy — JISC's lazy completion then proceeds per shard, on that
// shard's keys only.
//
// Windows are per shard: a count window of W tuples bounds each
// shard's per-stream state separately (the usual semantics of
// hash-partitioned stream processors). With eviction-free horizons
// (windows larger than the data) the output multiset is identical to
// a single-engine run; the tests assert exactly that.
type Runtime struct {
	shards []*Runner
	obs    *obs.Set
	adm    *admission.Controller // nil = admit everything

	outMu sync.Mutex

	// Durability state, nil/zero when Config.Durability is off. dur[i]
	// pairs shard i's WAL with the mutex that keeps WAL order identical
	// to enqueue order.
	dur       []*durShard
	durOpts   durable.Options
	durStats  *durable.Stats
	ckptStop  chan struct{}
	ckptDone  chan struct{}
	closeOnce sync.Once

	// Autopilot state, nil while AUTO is off. autoMu also serializes
	// StartAuto/StopAuto against each other.
	autoMu sync.Mutex
	auto   *adaptive.Controller
}

// New builds a Runtime with cfg.Shards workers (default 1).
// cfg.Engine.Output, if set, is serialized across shards.
// cfg.QueueSize applies per shard.
func New(cfg Config) (*Runtime, error) {
	shards := cfg.Shards
	if shards == 0 {
		shards = 1
	}
	if shards < 0 {
		return nil, fmt.Errorf("runtime: need at least 1 shard, got %d", shards)
	}
	if err := validateAdmission(cfg); err != nil {
		return nil, err
	}
	rt := &Runtime{obs: cfg.Obs, adm: cfg.Admission}
	userOut := cfg.Engine.Output
	if userOut != nil && shards > 1 {
		cfg.Engine.Output = func(d engine.Delta) {
			rt.outMu.Lock()
			userOut(d)
			rt.outMu.Unlock()
		}
	}
	if cfg.Durability.Enabled() {
		if err := rt.recoverDurable(cfg, shards); err != nil {
			return nil, err
		}
		return rt.startConfiguredAuto(cfg)
	}
	baseEng := cfg.Engine
	budget := resolveStateBudget(baseEng.StateBudget, baseEng.Kind)
	for i := 0; i < shards; i++ {
		cfg.Engine = shardSpill(baseEng, budget, shards, i)
		if cfg.Obs != nil {
			// One recorder per shard; Set.Snapshot merges them, which
			// is exact because bucket boundaries are shared.
			cfg.Engine.Obs = cfg.Obs.Recorder(i)
		}
		r, err := NewRunner(cfg)
		if err != nil {
			for _, prev := range rt.shards {
				prev.Close()
			}
			return nil, err
		}
		rt.shards = append(rt.shards, r)
	}
	return rt.startConfiguredAuto(cfg)
}

// startConfiguredAuto starts the autopilot requested by Config.Adaptive
// on a fully constructed (and, on the durable path, recovered) runtime.
func (rt *Runtime) startConfiguredAuto(cfg Config) (*Runtime, error) {
	if cfg.Adaptive == nil {
		return rt, nil
	}
	if err := rt.StartAuto(*cfg.Adaptive); err != nil {
		rt.Close()
		return nil, err
	}
	return rt, nil
}

// StartAuto starts a closed-loop autopilot on the runtime: an
// adaptive.Controller goroutine observing the merged scan statistics
// and migrating all shards when a better plan is confirmed. The
// controller's Tracer and Query default from the runtime's obs Set.
// Errors if an autopilot is already running.
func (rt *Runtime) StartAuto(cfg adaptive.Config) error {
	rt.autoMu.Lock()
	defer rt.autoMu.Unlock()
	if rt.auto != nil {
		return fmt.Errorf("runtime: autopilot already running")
	}
	if rt.obs != nil {
		if cfg.Tracer == nil {
			cfg.Tracer = rt.obs.Tracer
		}
		if cfg.Query == "" {
			cfg.Query = rt.obs.Query
		}
	}
	c, err := adaptive.New(rt, cfg)
	if err != nil {
		return err
	}
	rt.auto = c
	c.Start()
	return nil
}

// StopAuto stops the autopilot, waiting for any in-flight decision
// tick. A no-op when none is running.
func (rt *Runtime) StopAuto() {
	rt.autoMu.Lock()
	c := rt.auto
	rt.auto = nil
	rt.autoMu.Unlock()
	if c != nil {
		c.Stop()
	}
}

// Auto returns the running autopilot controller, nil when AUTO is off.
func (rt *Runtime) Auto() *adaptive.Controller {
	rt.autoMu.Lock()
	defer rt.autoMu.Unlock()
	return rt.auto
}

// resolveStateBudget interprets Config.Engine.StateBudget at the
// runtime level, where it is the TOTAL resident-state budget across
// all shards: positive is used as given (New splits it evenly), zero
// auto-sizes to half of GOMEMLIMIT when the operator set one (the
// other half is working memory — queues, scratch arenas, the Go
// runtime itself) and leaves spilling off otherwise, and negative
// forces spilling off regardless of GOMEMLIMIT. Set-difference
// pipelines never auto-enable: the engine does not support spilling
// them and would refuse to start.
func resolveStateBudget(budget int64, kind engine.Kind) int64 {
	switch {
	case budget > 0:
		return budget
	case budget < 0:
		return 0
	}
	if kind == engine.SetDiff {
		return 0
	}
	if lim := debug.SetMemoryLimit(-1); lim < math.MaxInt64 {
		return lim / 2
	}
	return 0
}

// shardSpill carves shard i's slice out of the runtime-wide spill
// configuration: an equal share of the total budget and a
// shard-private segment directory (shards run concurrently and must
// not share an active segment file).
func shardSpill(engCfg engine.Config, total int64, shards, i int) engine.Config {
	if total <= 0 {
		engCfg.StateBudget = 0
		return engCfg
	}
	per := total / int64(shards)
	if per <= 0 {
		per = 1
	}
	engCfg.StateBudget = per
	base := engCfg.SpillDir
	if base == "" && engCfg.SpillFS != nil {
		base = "jisc-spill"
	}
	if base != "" {
		engCfg.SpillDir = filepath.Join(base, fmt.Sprintf("shard-%d", i))
	}
	// base == "" on the real filesystem: each engine picks its own
	// temp directory, already shard-private.
	return engCfg
}

// SpillStats merges the tiered state store counters across shards; ok
// is false when spilling is off. The counters are atomic — safe from
// any goroutine, concurrently with the workers, including after Close.
func (rt *Runtime) SpillStats() (statestore.Stats, bool) {
	var total statestore.Stats
	any := false
	for _, r := range rt.shards {
		if s, ok := r.SpillStats(); ok {
			total = total.Add(s)
			any = true
		}
	}
	return total, any
}

// StateBytes sums the resident state footprint across shards, each
// read in-band on its worker after previously enqueued messages.
func (rt *Runtime) StateBytes() (int64, error) {
	var total int64
	for _, r := range rt.shards {
		b, err := r.StateBytes()
		if err != nil {
			return 0, err
		}
		total += b
	}
	return total, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Runtime {
	rt, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return rt
}

// Shards returns the shard count.
func (rt *Runtime) Shards() int { return len(rt.shards) }

// Partitions returns the shard count under its historical name.
func (rt *Runtime) Partitions() int { return len(rt.shards) }

// Shard returns shard i's Runner, for per-shard operations
// (checkpointing, diagnostics).
func (rt *Runtime) Shard(i int) *Runner { return rt.shards[i] }

// ShardOf returns the shard index a join key routes to in an n-shard
// runtime. Fibonacci hashing spreads sequential keys. Exported so an
// external model of the runtime — the simulation harness's per-shard
// oracle — can reproduce the routing exactly.
func ShardOf(key tuple.Value, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint64(key) * 0x9E3779B97F4A7C15
	return int(h % uint64(n))
}

// route picks the shard index for a join key.
func (rt *Runtime) route(ev workload.Event) int {
	return ShardOf(ev.Key, len(rt.shards))
}

// Feed enqueues one tuple on its key's shard, after the admission
// ladder when admission is configured: a rate-shed tuple returns nil
// (counted, never existed), a budget reject returns a retriable BUSY
// error. With durability on, the tuple is appended to that shard's
// write-ahead log first; it is not enqueued (and Feed does not return
// nil) unless the append succeeded.
func (rt *Runtime) Feed(ev workload.Event) error {
	deadlineNS, cost, ok, err := rt.admit(1)
	if !ok {
		return err
	}
	i := rt.route(ev)
	if rt.dur != nil {
		return rt.feedDurable(i, ev, cost)
	}
	return rt.shards[i].feedAdmitted(ev, deadlineNS, cost)
}

// Migrate transitions every shard to the new plan, in-band per shard.
// It returns the first error; shards that already migrated stay on the
// new plan (they run the same strategy, so a retry converges). With
// durability on, each shard logs a MIGRATE record before applying —
// recovery replays it, so a node that dies mid-lazy-migration resumes
// with the same incomplete-state metadata.
func (rt *Runtime) Migrate(p *plan.Plan) error {
	for i, r := range rt.shards {
		if rt.dur != nil {
			if err := rt.migrateDurable(i, p); err != nil {
				return err
			}
			continue
		}
		if err := r.Migrate(p); err != nil {
			return err
		}
	}
	return nil
}

// Flush waits for every shard to drain: when it returns, every tuple
// enqueued before the call has been fully processed and its outputs
// emitted. It is the deterministic drain barrier the simulation
// harness compares shard output against its oracle across — after a
// Flush, the runtime's cumulative output is a pure function of the
// fed event sequence, independent of worker scheduling.
func (rt *Runtime) Flush() error {
	for _, r := range rt.shards {
		if err := r.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Metrics aggregates the shard counters in-band: each shard reports
// after all its previously enqueued messages. See Snapshot for the
// live, non-blocking variant.
func (rt *Runtime) Metrics() (metrics.Snapshot, error) {
	snaps := make([]metrics.Snapshot, 0, len(rt.shards))
	for _, r := range rt.shards {
		s, err := r.Metrics()
		if err != nil {
			return metrics.Snapshot{}, err
		}
		snaps = append(snaps, s)
	}
	return metrics.MergeShards(snaps), nil
}

// Snapshot merges the shard counters live, without control-channel
// round trips: the per-engine collectors are atomic, so monitoring
// reads them concurrently with the workers and never queues behind
// tuples. Safe from any goroutine, including after Close.
func (rt *Runtime) Snapshot() metrics.Snapshot {
	snaps := make([]metrics.Snapshot, 0, len(rt.shards))
	for _, r := range rt.shards {
		snaps = append(snaps, r.Snapshot())
	}
	return metrics.MergeShards(snaps)
}

// Obs returns the runtime's observability set (Config.Obs), nil when
// instrumentation is off.
func (rt *Runtime) Obs() *obs.Set { return rt.obs }

// ObsSnapshot merges the per-shard latency histograms live, the
// observability companion of Snapshot: recorders are atomic, so
// monitoring reads them concurrently with the workers. An empty
// snapshot when instrumentation is off.
func (rt *Runtime) ObsSnapshot() obs.SetSnapshot { return rt.obs.Snapshot() }

// Shed sums the tuples dropped by the Shed overflow policy across
// shards.
func (rt *Runtime) Shed() uint64 {
	var total uint64
	for _, r := range rt.shards {
		total += r.Shed()
	}
	return total
}

// QueueLen sums the input-buffer occupancy across shards.
func (rt *Runtime) QueueLen() int {
	total := 0
	for _, r := range rt.shards {
		total += r.QueueLen()
	}
	return total
}

// Plan returns the currently executing plan, observed on shard 0 —
// migrations fan out to every shard in order, so shard 0 is never
// behind the others' plan.
func (rt *Runtime) Plan() (*plan.Plan, error) { return rt.shards[0].Plan() }

// ScanStats sums the per-stream scan counters across shards, each read
// in-band on its worker. The sums are cumulative like the per-shard
// counters; consumers diff successive readings (optimizer.Advisor
// rebaselines when a transition resets them). During a Migrate fan-out
// shards can briefly disagree on the plan; summing over the stream
// union keeps the reading well-defined.
func (rt *Runtime) ScanStats() ([]engine.ScanStats, error) {
	byStream := make(map[tuple.StreamID]engine.ScanStats)
	for _, r := range rt.shards {
		stats, err := r.ScanStats()
		if err != nil {
			return nil, err
		}
		for _, s := range stats {
			agg := byStream[s.Stream]
			agg.Stream = s.Stream
			agg.Probes += s.Probes
			agg.Matches += s.Matches
			agg.ProbeNanos += s.ProbeNanos
			agg.ProbeSamples += s.ProbeSamples
			byStream[s.Stream] = agg
		}
	}
	out := make([]engine.ScanStats, 0, len(byStream))
	for _, s := range byStream {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stream < out[j].Stream })
	return out, nil
}

// Checkpoint serializes the single shard's state to w. With several
// shards there is no single consistent stream; use CheckpointShard
// per shard instead.
func (rt *Runtime) Checkpoint(w io.Writer) error {
	if len(rt.shards) > 1 {
		return fmt.Errorf("runtime: %d shards have no single checkpoint stream; checkpoint each shard", len(rt.shards))
	}
	return rt.shards[0].Checkpoint(w)
}

// CheckpointShard serializes shard i's state to w, in-band on that
// shard's worker.
func (rt *Runtime) CheckpointShard(i int, w io.Writer) error {
	if i < 0 || i >= len(rt.shards) {
		return fmt.Errorf("runtime: no shard %d (have %d)", i, len(rt.shards))
	}
	return rt.shards[i].Checkpoint(w)
}

// Close stops every shard. With durability on, each shard's log is
// flushed and closed before its worker: a Feed that raced with Close
// either logged-and-enqueued its tuple (the worker drains it) or
// failed at the log, never one without the other. Close writes no
// final checkpoint — a graceful shutdown under FsyncAlways leaves the
// same disk state as a crash, which is exactly what the recovery-
// equivalence tests rely on.
func (rt *Runtime) Close() {
	rt.closeOnce.Do(func() {
		// The autopilot goes first: its decision ticks send control
		// messages to the shards, so they must still be alive here.
		rt.StopAuto()
		if rt.ckptStop != nil {
			close(rt.ckptStop)
			<-rt.ckptDone
		}
		for i, r := range rt.shards {
			if rt.dur != nil {
				d := rt.dur[i]
				d.mu.Lock()
				d.log.Close()
				d.mu.Unlock()
			}
			r.Close()
		}
	})
}
