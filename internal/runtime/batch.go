package runtime

// Batch-granular ingest. Runtime.FeedBatch scatters a caller's batch
// into per-shard staging slices by join-key hash and hands each
// touched shard one channel message carrying its whole sub-batch — one
// send, one WAL frame, one engine.FeedBatch per shard instead of one
// of each per tuple. Staging slices come from a pool and are recycled
// by the shard worker after processing, so the steady-state batch path
// allocates nothing per call.
//
// Semantics match the per-event path exactly: tuples keep their
// arrival order within a shard (scattering preserves relative order,
// and channel order is processing order), Flush remains a drain
// barrier, and under the Shed policy a full shard queue drops that
// shard's whole sub-batch with every dropped tuple counted.

import (
	"sync"

	"jisc/internal/admission"
	"jisc/internal/durable"
	"jisc/internal/workload"
)

// batchPool recycles staging slices flowing from FeedBatch callers to
// shard workers.
var batchPool = sync.Pool{New: func() any {
	s := make([]workload.Event, 0, 256)
	return &s
}}

func getBatch() *[]workload.Event {
	return batchPool.Get().(*[]workload.Event)
}

func putBatch(b *[]workload.Event) {
	if cap(*b) > 1<<16 {
		return // let oversized one-offs be collected instead of pinned
	}
	*b = (*b)[:0]
	batchPool.Put(b)
}

// scatterPool recycles the per-call table of shard staging pointers.
type scatter struct {
	bufs []*[]workload.Event
}

var scatterPool = sync.Pool{New: func() any { return new(scatter) }}

// FeedBatch enqueues evs as one message: the tuples are processed in
// order, observably identically to len(evs) Feed calls, but with the
// channel send, queue slot, and (on a durable runtime) WAL frame paid
// once. The slice is copied; the caller may reuse evs immediately.
// Under the Shed policy a full queue drops the whole batch, counted
// tuple by tuple in Shed. Returns ErrClosed after Close.
func (r *Runner) FeedBatch(evs []workload.Event) error {
	if len(evs) == 0 {
		return nil
	}
	b := getBatch()
	*b = append((*b)[:0], evs...)
	return r.feedBatchOwned(b)
}

// feedBatchOwned enqueues a staging slice the runner now owns: it is
// recycled by the worker after processing, or here on shed/error.
func (r *Runner) feedBatchOwned(b *[]workload.Event) error {
	return r.feedBatchOwnedAdmitted(b, 0, 0)
}

// feedBatchOwnedAdmitted is feedBatchOwned carrying admission
// metadata: the cost reservation transfers to the worker on a
// successful enqueue and is released here on queue shed or a closed
// runner — exactly-once release on every path.
func (r *Runner) feedBatchOwnedAdmitted(b *[]workload.Event, deadlineNS, cost int64) error {
	m := message{kind: msgFeedBatch, batch: b, deadlineNS: deadlineNS, cost: cost}
	if r.overflow == Shed {
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.closed {
			r.adm.Release(cost)
			putBatch(b)
			return ErrClosed
		}
		select {
		case r.in <- m:
		default:
			r.shed.Add(uint64(len(*b)))
			r.adm.Release(cost)
			putBatch(b)
		}
		return nil
	}
	if err := r.send(m); err != nil {
		r.adm.Release(cost)
		putBatch(b)
		return err
	}
	return nil
}

// FeedBatch scatters evs across shards by join-key hash and delivers
// one sub-batch message per touched shard, in ascending shard order.
// Tuples that route to the same shard keep their relative order, so
// the per-shard outcome is identical to feeding evs one at a time;
// tuples on different shards were never ordered relative to each other
// to begin with (Feed interleaves them under worker scheduling too).
//
// With durability on, each touched shard appends one FEEDB record
// carrying its whole sub-batch — one fsync per shard per batch — under
// the same log mutex discipline as Feed, so WAL order still equals
// apply order. On error, sub-batches already delivered to earlier
// shards stay delivered (exactly the partial outcome a crash between
// two per-event Feeds would leave); the caller may retry the whole
// batch, which at-least-once delivery permits.
//
// The slice is copied; the caller may reuse evs immediately.
func (rt *Runtime) FeedBatch(evs []workload.Event) error {
	if len(evs) == 0 {
		return nil
	}
	// One admission decision per batch, before scatter and WAL: a shed
	// batch returns nil with every tuple counted, a rejected batch
	// returns BUSY with nothing delivered anywhere. The reservation is
	// split across sub-batches by tuple count (shares sum exactly to
	// the admitted total), so each shard worker releases its own part.
	deadlineNS, _, ok, admErr := rt.admit(len(evs))
	if !ok {
		return admErr
	}
	n := len(rt.shards)
	if n == 1 {
		b := getBatch()
		*b = append((*b)[:0], evs...)
		cost := batchCost(rt.adm, len(evs))
		if rt.dur != nil {
			return rt.feedBatchDurableOwned(0, b, cost)
		}
		return rt.shards[0].feedBatchOwnedAdmitted(b, deadlineNS, cost)
	}
	sc := scatterPool.Get().(*scatter)
	if cap(sc.bufs) < n {
		sc.bufs = make([]*[]workload.Event, n)
	}
	bufs := sc.bufs[:n]
	for i := range bufs {
		bufs[i] = nil
	}
	for _, ev := range evs {
		i := ShardOf(ev.Key, n)
		if bufs[i] == nil {
			bufs[i] = getBatch()
		}
		*bufs[i] = append(*bufs[i], ev)
	}
	var firstErr error
	for i, b := range bufs {
		if b == nil {
			continue
		}
		bufs[i] = nil
		cost := batchCost(rt.adm, len(*b))
		if firstErr != nil {
			rt.adm.Release(cost) // an earlier shard failed; don't deliver a gap
			putBatch(b)
			continue
		}
		var err error
		if rt.dur != nil {
			err = rt.feedBatchDurableOwned(i, b, cost)
		} else {
			err = rt.shards[i].feedBatchOwnedAdmitted(b, deadlineNS, cost)
		}
		if err != nil {
			firstErr = err
		}
	}
	scatterPool.Put(sc)
	return firstErr
}

// batchCost is the admission byte reservation a sub-batch of n tuples
// carries — zero when admission is off, so messages on the default
// path stay all-zero.
func batchCost(adm *admission.Controller, n int) int64 {
	if adm == nil {
		return 0
	}
	return int64(n) * EventBytes
}

// feedBatchDurableOwned logs one FEEDB record then enqueues the
// sub-batch under shard i's log mutex — the batch-granular analogue of
// feedDurable. cost is the sub-batch's admission reservation (released
// here on a log error, by the worker otherwise); deadlines never reach
// the durable path.
func (rt *Runtime) feedBatchDurableOwned(i int, b *[]workload.Event, cost int64) error {
	d := rt.dur[i]
	d.mu.Lock()
	defer d.mu.Unlock()
	// One record per batch; a batch beyond the frame's u16 count field
	// splits across records, still inside this one critical section so
	// no checkpoint can pin a sequence between the pieces.
	for evs := *b; len(evs) > 0; {
		chunk := evs
		if len(chunk) > durable.MaxBatchEvents {
			chunk = chunk[:durable.MaxBatchEvents]
		}
		if _, err := d.log.AppendFeedBatch(chunk); err != nil {
			rt.adm.Release(cost)
			putBatch(b)
			return err
		}
		evs = evs[len(chunk):]
	}
	return rt.shards[i].feedBatchOwnedAdmitted(b, 0, cost)
}
