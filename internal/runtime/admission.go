package runtime

// Admission wiring for the sharded Runtime. The controller's
// degradation ladder runs ONCE at the Runtime entry points (Feed,
// FeedBatch) — before routing, before any WAL append — so a shed or
// rejected batch costs nothing downstream and, on the durable path,
// never reaches the log (replay only ever sees admitted traffic).
// Admitted messages carry their deadline and byte reservation to the
// shard workers, which release the reservation when the message
// leaves the queue and shed it counted if its deadline passed first.

import (
	"fmt"

	"jisc/internal/admission"
)

// EventBytes is the in-flight cost model: what one queued tuple is
// charged against the admission controller's byte budget. It
// approximates the real footprint of a queued workload.Event plus its
// queue slot; the budget exists to bound memory order-of-magnitude
// under overload, not to account bytes exactly.
const EventBytes = 32

// Admission returns the runtime's admission controller, nil when
// admission is off.
func (rt *Runtime) Admission() *admission.Controller { return rt.adm }

// admit runs the degradation ladder for a batch of `tuples` tuples.
// ok=false with err=nil means the batch was shed (the caller reports
// success — shed tuples never existed); ok=false with a BUSY err means
// rejected. On ok=true the returned cost is reserved and must travel
// on the message(s) so a worker releases it exactly once.
func (rt *Runtime) admit(tuples int) (deadlineNS, cost int64, ok bool, err error) {
	if rt.adm == nil {
		return 0, 0, true, nil
	}
	cost = int64(tuples) * EventBytes
	dec, deadline := rt.adm.AdmitBatch(tuples, cost)
	switch dec {
	case admission.Shed:
		return 0, 0, false, nil
	case admission.Reject:
		if rt.adm.Draining() {
			return 0, 0, false, admission.Busy("draining")
		}
		return 0, 0, false, admission.Busy("in-flight budget exhausted")
	}
	return deadline, cost, true, nil
}

// validateAdmission checks the admission section of a Config at New
// time.
func validateAdmission(cfg Config) error {
	if cfg.Admission == nil {
		return nil
	}
	if cfg.Admission.FeedDeadline() > 0 && cfg.Durability.Enabled() {
		// A deadline shed happens at dequeue, after the WAL append:
		// replay would resurrect the shed batch and recovered STATS
		// would diverge from the live run. Rate and budget limits are
		// fine — they act before the log.
		return fmt.Errorf("runtime: a feed deadline cannot be combined with durability; shed before the log or not at all")
	}
	return nil
}

// PauseAuto suspends the autopilot's decision-making (a no-op when
// AUTO is off). The drain path pauses rather than stops: Pause is
// reversible, takes effect immediately, and never joins a goroutine,
// so it is safe while the drain holds server locks.
func (rt *Runtime) PauseAuto() {
	rt.autoMu.Lock()
	defer rt.autoMu.Unlock()
	if rt.auto != nil {
		rt.auto.Pause()
	}
}

// ResumeAuto lifts a PauseAuto (a no-op when AUTO is off).
func (rt *Runtime) ResumeAuto() {
	rt.autoMu.Lock()
	defer rt.autoMu.Unlock()
	if rt.auto != nil {
		rt.auto.Resume()
	}
}
