// Package runtime is the unified execution entry point around the
// deterministic engine: config → N shards → router → merged
// metrics/output. A Runner is one worker goroutine owning one engine
// behind a buffered input queue (the §2.1 input buffers); a Runtime
// hash-partitions a query across N Runners, fans plan transitions out
// to every shard, and merges their metrics without control-channel
// round trips (the collectors are atomic). cmd/jiscd, cmd/jiscbench,
// and internal/server all construct this entry point; package pipeline
// re-exports it under its historical names.
//
// The harness makes the paper's latency story observable with real
// wall-clock concurrency: under a lazy strategy (core.JISC) the worker
// keeps emitting results throughout a transition, while an eager
// strategy (migrate.MovingState) stalls the worker and the queue
// grows — exactly the input-buffer-overflow risk §3.2 warns about.
package runtime

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"jisc/internal/adaptive"
	"jisc/internal/admission"
	"jisc/internal/durable"
	"jisc/internal/engine"
	"jisc/internal/metrics"
	"jisc/internal/obs"
	"jisc/internal/plan"
	"jisc/internal/statestore"
	"jisc/internal/workload"
)

// ErrClosed is returned by Runner and Runtime methods after Close.
var ErrClosed = errors.New("runtime: runner closed")

type msgKind int

const (
	msgFeed msgKind = iota
	msgFeedBatch
	msgMigrate
	msgFlush
	msgMetrics
	msgPlan
	msgCheckpoint
	msgScanStats
	msgStateBytes
)

type message struct {
	kind    msgKind
	ev      workload.Event
	batch   *[]workload.Event // msgFeedBatch: pooled, recycled by the worker
	migrate *plan.Plan
	done    chan error
	snap    chan metrics.Snapshot
	planCh  chan *plan.Plan
	ckptW   io.Writer
	scanCh  chan []engine.ScanStats
	bytesCh chan int64

	// Admission metadata on msgFeed/msgFeedBatch, zero without an
	// admission controller: deadlineNS is the unix-nano point after
	// which the worker sheds the tuples instead of processing them
	// late; cost is the in-flight byte reservation the worker releases
	// once the message leaves the queue (processed or shed).
	deadlineNS int64
	cost       int64
}

// Runner executes one continuous query on a dedicated worker
// goroutine. All methods are safe for concurrent use.
type Runner struct {
	in       chan message
	worker   sync.WaitGroup
	overflow Overflow
	shed     atomic.Uint64
	adm      *admission.Controller // nil = admit everything

	mu     sync.Mutex
	closed bool
	eng    *engine.Engine
}

// Overflow selects what Feed does when the input queue is full.
type Overflow int

const (
	// Block applies backpressure: Feed waits for queue space.
	Block Overflow = iota
	// Shed drops the newest tuple instead of blocking — the "tuple
	// load shedding ... when tuples overflow the input buffers" that
	// §2.1 mentions as the alternative to halting. Shed tuples are
	// counted (Runner.Shed) and simply never existed as far as the
	// query is concerned.
	Shed
)

// Config parameterizes a Runner or a Runtime.
type Config struct {
	// Engine configures the wrapped engine(s). Engine.Output is
	// invoked on the worker goroutine; with several shards, calls are
	// serialized across shards.
	Engine engine.Config
	// QueueSize is the input-queue capacity (default 1024), per
	// shard. Feed blocks when the queue is full — the backpressure
	// equivalent of the paper's buffer-overflow discussion.
	QueueSize int
	// Overflow selects blocking backpressure (default) or load
	// shedding when the queue is full. Control messages (Migrate,
	// Flush, Metrics) always block; only tuples are shed.
	Overflow Overflow
	// Shards is the worker count of a Runtime (default 1). Ignored by
	// NewRunner.
	Shards int
	// Obs, when non-nil, turns on latency instrumentation: each
	// shard's engine records into Obs.Recorder(shard) — merged by
	// Runtime.ObsSnapshot — and migration lifecycle events go to
	// Obs.Tracer. Takes precedence over Engine.Obs.
	Obs *obs.Set
	// Durability, when enabled (Dir set), makes the Runtime durable:
	// every Feed and Migrate is appended to a per-shard write-ahead log
	// before it is enqueued, background checkpoints bound replay time,
	// and New recovers each shard from disk (checkpoint + WAL tail)
	// instead of starting empty. Incompatible with the Shed overflow
	// policy. Ignored by NewRunner.
	Durability durable.Options
	// Adaptive, when non-nil, starts a closed-loop autopilot on the
	// Runtime: an adaptive.Controller goroutine that watches the merged
	// scan statistics and migrates all shards when a better plan is
	// confirmed (New starts it — after recovery on the durable path —
	// and Close stops it first). Its Tracer/Query default from Obs.
	// Ignored by NewRunner; see also Runtime.StartAuto.
	Adaptive *adaptive.Config
	// Admission, when non-nil, puts the controller's degradation
	// ladder in front of Feed/FeedBatch: rate-limited traffic is shed
	// counted, traffic beyond the in-flight byte budget is rejected
	// with a retriable BUSY error, and (with FeedDeadline set) workers
	// shed admitted batches whose deadline passed before dequeue. One
	// controller spans all shards of a Runtime. A FeedDeadline is
	// incompatible with Durability: a logged batch must replay, and a
	// deadline drop at dequeue would diverge from that replay.
	Admission *admission.Controller
}

// NewRunner builds and starts a single-shard Runner. The Shards field
// of cfg is ignored; use New for a sharded Runtime.
func NewRunner(cfg Config) (*Runner, error) {
	if cfg.QueueSize == 0 {
		cfg.QueueSize = 1024
	}
	if cfg.QueueSize < 0 {
		return nil, fmt.Errorf("runtime: negative queue size %d", cfg.QueueSize)
	}
	if cfg.Obs != nil && cfg.Engine.Obs == nil {
		// Standalone runner: shard 0 of its Set. Runtime.New overrides
		// Engine.Obs per shard before reaching here.
		cfg.Engine.Obs = cfg.Obs.Recorder(0)
	}
	eng, err := engine.New(cfg.Engine)
	if err != nil {
		return nil, err
	}
	return newRunnerWith(eng, cfg), nil
}

// newRunnerWith wraps an existing engine — e.g. one rebuilt by crash
// recovery — in a started Runner. cfg supplies only the queue
// parameters; its Engine section is ignored.
func newRunnerWith(eng *engine.Engine, cfg Config) *Runner {
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 1024
	}
	r := &Runner{
		in:       make(chan message, cfg.QueueSize),
		overflow: cfg.Overflow,
		adm:      cfg.Admission,
		eng:      eng,
	}
	r.worker.Add(1)
	go r.loop()
	return r
}

// MustNewRunner is NewRunner but panics on error.
func MustNewRunner(cfg Config) *Runner {
	r, err := NewRunner(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

func (r *Runner) loop() {
	defer r.worker.Done()
	for msg := range r.in {
		switch msg.kind {
		case msgFeed:
			// Deadline check at dequeue: a tuple that waited past its
			// admission deadline is dropped counted rather than
			// processed late — the paper's load-shed escape hatch,
			// applied at the moment lateness is known. The budget
			// reservation is returned either way.
			if r.adm.DeadlineExpired(msg.deadlineNS) {
				r.adm.CountDeadlineShed(1)
			} else {
				r.eng.Feed(msg.ev)
			}
			r.adm.Release(msg.cost)
		case msgFeedBatch:
			if r.adm.DeadlineExpired(msg.deadlineNS) {
				r.adm.CountDeadlineShed(len(*msg.batch))
			} else {
				r.eng.FeedBatch(*msg.batch)
			}
			r.adm.Release(msg.cost)
			putBatch(msg.batch)
		case msgMigrate:
			// Every tuple enqueued before this control message has
			// already been processed through the old plan: channel
			// order is the buffer-clearing phase.
			msg.done <- r.eng.Migrate(msg.migrate)
		case msgFlush:
			msg.done <- nil
		case msgMetrics:
			msg.snap <- r.eng.Metrics()
		case msgPlan:
			msg.planCh <- r.eng.Plan()
		case msgCheckpoint:
			msg.done <- r.eng.Checkpoint(msg.ckptW)
		case msgScanStats:
			msg.scanCh <- r.eng.ScanStats()
		case msgStateBytes:
			msg.bytesCh <- r.eng.StateBytes()
		}
	}
}

// send enqueues a message unless the runner is closed.
func (r *Runner) send(m message) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	// Holding mu during the channel send keeps Close from closing the
	// channel under a concurrent sender.
	defer r.mu.Unlock()
	r.in <- m
	return nil
}

// Feed enqueues one tuple. Under the Block policy it waits while the
// input queue is full; under Shed it drops the tuple instead (counted
// by Shed). Returns ErrClosed after Close.
func (r *Runner) Feed(ev workload.Event) error {
	return r.feedAdmitted(ev, 0, 0)
}

// feedAdmitted enqueues one admitted tuple with its admission
// metadata. The cost reservation transfers to the worker on a
// successful enqueue and is released here on every other outcome
// (queue shed, closed runner) — exactly-once release either way.
func (r *Runner) feedAdmitted(ev workload.Event, deadlineNS, cost int64) error {
	m := message{kind: msgFeed, ev: ev, deadlineNS: deadlineNS, cost: cost}
	if r.overflow == Shed {
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.closed {
			r.adm.Release(cost)
			return ErrClosed
		}
		select {
		case r.in <- m:
		default:
			r.shed.Add(1)
			r.adm.Release(cost)
		}
		return nil
	}
	if err := r.send(m); err != nil {
		r.adm.Release(cost)
		return err
	}
	return nil
}

// Shed returns the number of tuples dropped by the Shed overflow
// policy.
func (r *Runner) Shed() uint64 { return r.shed.Load() }

// Migrate submits a plan transition in-band and waits until the worker
// has applied it. Tuples enqueued before the call are processed by the
// old plan; tuples enqueued after it by the new plan.
func (r *Runner) Migrate(p *plan.Plan) error {
	done := make(chan error, 1)
	if err := r.send(message{kind: msgMigrate, migrate: p, done: done}); err != nil {
		return err
	}
	return <-done
}

// Flush blocks until every message enqueued before the call has been
// fully processed.
func (r *Runner) Flush() error {
	done := make(chan error, 1)
	if err := r.send(message{kind: msgFlush, done: done}); err != nil {
		return err
	}
	return <-done
}

// QueueLen returns the number of queued, unprocessed messages — the
// input-buffer occupancy §3.2's overflow discussion is about.
func (r *Runner) QueueLen() int { return len(r.in) }

// Metrics snapshots the engine counters on the worker, after all
// previously enqueued messages.
func (r *Runner) Metrics() (metrics.Snapshot, error) {
	snap := make(chan metrics.Snapshot, 1)
	if err := r.send(message{kind: msgMetrics, snap: snap}); err != nil {
		return metrics.Snapshot{}, err
	}
	return <-snap, nil
}

// Snapshot reads the engine counters live, without a control-channel
// round trip: the collector is atomic, so this is safe from any
// goroutine, concurrently with the worker, and never blocks behind
// queued tuples. Unlike Metrics it reflects the instant of the call,
// not the point after previously enqueued work. Safe after Close.
func (r *Runner) Snapshot() metrics.Snapshot { return r.eng.Metrics() }

// Obs returns the engine's latency recorder, nil when instrumentation
// is off. The recorder's histograms are atomic: safe to snapshot from
// any goroutine, concurrently with the worker.
func (r *Runner) Obs() *obs.Recorder { return r.eng.Obs() }

// Checkpoint serializes the engine's state to w on the worker, after
// all previously enqueued messages — a consistent snapshot without
// stopping producers (they block on the queue at most briefly).
func (r *Runner) Checkpoint(w io.Writer) error {
	done, err := r.checkpointAsync(w)
	if err != nil {
		return err
	}
	return <-done
}

// checkpointAsync enqueues a checkpoint control message and returns
// without waiting for the worker to serialize. The caller must not
// touch w until the returned channel delivers. The durable runtime
// uses this to pin a checkpoint at an exact WAL position: it enqueues
// while holding the shard's log mutex (so no feed can slip between the
// captured sequence number and the snapshot point) but waits for the
// serialization itself with the mutex released.
func (r *Runner) checkpointAsync(w io.Writer) (<-chan error, error) {
	done := make(chan error, 1)
	if err := r.send(message{kind: msgCheckpoint, ckptW: w, done: done}); err != nil {
		return nil, err
	}
	return done, nil
}

// ScanStats reads the engine's per-stream scan counters on the worker,
// after all previously enqueued messages. The counters are plain
// worker-owned fields, so the in-band round trip is what makes the
// read race-free.
func (r *Runner) ScanStats() ([]engine.ScanStats, error) {
	ch := make(chan []engine.ScanStats, 1)
	if err := r.send(message{kind: msgScanStats, scanCh: ch}); err != nil {
		return nil, err
	}
	return <-ch, nil
}

// StateBytes reads the engine's resident state footprint in-band on
// the worker, after all previously enqueued messages.
func (r *Runner) StateBytes() (int64, error) {
	ch := make(chan int64, 1)
	if err := r.send(message{kind: msgStateBytes, bytesCh: ch}); err != nil {
		return 0, err
	}
	return <-ch, nil
}

// SpillStats snapshots the engine's tiered state store counters; ok is
// false when spilling is off. The counters are atomic — safe from any
// goroutine, concurrently with the worker, and never queued behind
// tuples. Safe after Close.
func (r *Runner) SpillStats() (statestore.Stats, bool) { return r.eng.SpillStats() }

// Plan returns the currently executing plan, observed on the worker
// after all previously enqueued messages.
func (r *Runner) Plan() (*plan.Plan, error) {
	ch := make(chan *plan.Plan, 1)
	if err := r.send(message{kind: msgPlan, planCh: ch}); err != nil {
		return nil, err
	}
	return <-ch, nil
}

// Close drains the queue, stops the worker, and returns once all
// processing has finished. Close is idempotent. The engine's pooled
// scratch is released; tuples already emitted stay valid.
func (r *Runner) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	close(r.in)
	r.mu.Unlock()
	r.worker.Wait()
	r.eng.Close()
}
