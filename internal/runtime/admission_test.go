package runtime

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"jisc/internal/admission"
	"jisc/internal/durable"
	"jisc/internal/engine"
	"jisc/internal/plan"
	"jisc/internal/tuple"
	"jisc/internal/workload"
)

// stepClock advances by a fixed stride on every reading — a logical
// clock that makes deadline behaviour a pure function of the call
// sequence.
type stepClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

func (c *stepClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(c.step)
	return c.t
}

// TestFeedShedByRateLimit: under a frozen clock the bucket never
// refills, so exactly the burst is admitted and the rest is shed —
// silently (Feed returns nil) but counted.
func TestFeedShedByRateLimit(t *testing.T) {
	fixed := time.Unix(9000, 0)
	adm := admission.MustNew(admission.Config{
		Rate: 1000, Burst: 8,
		Now: func() time.Time { return fixed },
	})
	rt := MustNew(Config{
		Engine:    engine.Config{Plan: plan.MustLeftDeep(0, 1), WindowSize: 32},
		Admission: adm,
	})
	defer rt.Close()
	for i := 0; i < 20; i++ {
		ev := workload.Event{Stream: tuple.StreamID(i % 2), Key: tuple.Value(i)}
		if err := rt.Feed(ev); err != nil {
			t.Fatalf("Feed %d: %v (shed must be silent)", i, err)
		}
	}
	if err := rt.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := rt.Snapshot().Input; got != 8 {
		t.Fatalf("engine Input = %d, want the 8-token burst", got)
	}
	s := adm.Snapshot()
	if s.ShedTuples != 12 {
		t.Fatalf("ShedTuples = %d, want 12", s.ShedTuples)
	}
	if s.InflightBytes != 0 {
		t.Fatalf("InflightBytes = %d after Flush, want 0", s.InflightBytes)
	}
}

// TestFeedBatchRejectOverBudget: a batch whose cost exceeds the
// in-flight budget draws a retriable BUSY and is counted rejected;
// traffic that fits keeps flowing afterwards.
func TestFeedBatchRejectOverBudget(t *testing.T) {
	adm := admission.MustNew(admission.Config{InflightBytes: EventBytes})
	rt := MustNew(Config{
		Engine:    engine.Config{Plan: plan.MustLeftDeep(0, 1), WindowSize: 32},
		Admission: adm,
	})
	defer rt.Close()

	big := make([]workload.Event, 4)
	for i := range big {
		big[i] = workload.Event{Stream: tuple.StreamID(i % 2), Key: tuple.Value(i)}
	}
	err := rt.FeedBatch(big)
	if !errors.Is(err, admission.ErrBusy) {
		t.Fatalf("over-budget FeedBatch err = %v, want ErrBusy", err)
	}
	if !strings.Contains(err.Error(), "in-flight budget") {
		t.Fatalf("reject reason = %q, want the budget named", err)
	}
	s := adm.Snapshot()
	if s.RejectedTuples != 4 || s.RejectedBatches != 1 {
		t.Fatalf("rejected = %d tuples / %d batches, want 4/1", s.RejectedTuples, s.RejectedBatches)
	}

	// A single tuple fits the one-slot budget; the reservation is
	// released once the worker dequeues it, so repeated feeds succeed.
	for i := 0; i < 5; i++ {
		if err := rt.Feed(workload.Event{Stream: 0, Key: tuple.Value(i)}); err != nil {
			t.Fatalf("within-budget Feed %d: %v", i, err)
		}
		if err := rt.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if got := rt.Snapshot().Input; got != 5 {
		t.Fatalf("Input = %d, want 5", got)
	}
	if got := adm.Snapshot().InflightBytes; got != 0 {
		t.Fatalf("InflightBytes = %d after Flush, want 0", got)
	}
}

// TestFeedDeadlineShedsAtDequeue: with a clock that strides a full
// second per reading, every admitted batch's 10ms deadline has passed
// by the time the worker dequeues it — the engine sees nothing, the
// deadline-shed counter sees everything, and every byte reservation is
// still released.
func TestFeedDeadlineShedsAtDequeue(t *testing.T) {
	ck := &stepClock{t: time.Unix(9000, 0), step: time.Second}
	adm := admission.MustNew(admission.Config{
		FeedDeadline:  10 * time.Millisecond,
		InflightBytes: 1 << 20,
		Now:           ck.now,
	})
	rt := MustNew(Config{
		Engine:    engine.Config{Plan: plan.MustLeftDeep(0, 1), WindowSize: 32},
		Admission: adm,
	})
	defer rt.Close()
	const n = 10
	for i := 0; i < n; i++ {
		if err := rt.Feed(workload.Event{Stream: tuple.StreamID(i % 2), Key: tuple.Value(i)}); err != nil {
			t.Fatalf("Feed %d: %v", i, err)
		}
	}
	if err := rt.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := rt.Snapshot().Input; got != 0 {
		t.Fatalf("engine Input = %d, want 0 (all past deadline)", got)
	}
	s := adm.Snapshot()
	if s.DeadlineShedTuples != n {
		t.Fatalf("DeadlineShedTuples = %d, want %d", s.DeadlineShedTuples, n)
	}
	if s.InflightBytes != 0 {
		t.Fatalf("InflightBytes = %d after deadline sheds, want 0", s.InflightBytes)
	}
}

// TestNewRejectsDeadlineWithDurability: a feed deadline sheds after the
// WAL append, so replay would resurrect the shed batch — New must
// refuse the combination. Rate limits act before the log and stay
// legal.
func TestNewRejectsDeadlineWithDurability(t *testing.T) {
	dopts := durable.Options{Dir: "wal", Fsync: durable.FsyncOff, CheckpointInterval: -1, FS: durable.NewMemFS()}
	eng := engine.Config{Plan: plan.MustLeftDeep(0, 1), WindowSize: 32}

	if _, err := New(Config{
		Engine:     eng,
		Durability: dopts,
		Admission:  admission.MustNew(admission.Config{FeedDeadline: time.Millisecond}),
	}); err == nil {
		t.Fatal("New accepted feed deadline + durability")
	}

	rt, err := New(Config{
		Engine:     eng,
		Durability: dopts,
		Admission:  admission.MustNew(admission.Config{Rate: 1e6}),
	})
	if err != nil {
		t.Fatalf("rate limit + durability refused: %v", err)
	}
	rt.Close()
}

// TestDrainingRuntimeRejectsBusy: once the controller drains, Feed and
// FeedBatch draw "BUSY draining" and nothing reaches the engine.
func TestDrainingRuntimeRejectsBusy(t *testing.T) {
	adm := admission.MustNew(admission.Config{Rate: 1e9})
	rt := MustNew(Config{
		Engine:    engine.Config{Plan: plan.MustLeftDeep(0, 1), WindowSize: 32},
		Admission: adm,
	})
	defer rt.Close()
	adm.StartDrain()
	err := rt.Feed(workload.Event{Stream: 0, Key: 1})
	if !errors.Is(err, admission.ErrBusy) || !strings.Contains(err.Error(), "draining") {
		t.Fatalf("Feed while draining: %v, want BUSY draining", err)
	}
	if err := rt.FeedBatch([]workload.Event{{Stream: 0, Key: 1}, {Stream: 1, Key: 1}}); !errors.Is(err, admission.ErrBusy) {
		t.Fatalf("FeedBatch while draining: %v, want ErrBusy", err)
	}
	if err := rt.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := rt.Snapshot().Input; got != 0 {
		t.Fatalf("Input = %d while draining, want 0", got)
	}
	if got := adm.Snapshot().RejectedTuples; got != 3 {
		t.Fatalf("RejectedTuples = %d, want 3", got)
	}
}

// TestAdmissionConservationConcurrent hammers a sharded, rate- and
// budget-limited runtime from several goroutines and checks the books:
// every tuple is exactly one of processed, shed, or rejected, and the
// in-flight gauge returns to zero. Run under -race this is also the
// concurrency proof for the admit/release path.
func TestAdmissionConservationConcurrent(t *testing.T) {
	adm := admission.MustNew(admission.Config{
		Rate:          50_000,
		Burst:         1_000,
		InflightBytes: 64 * EventBytes,
	})
	rt := MustNew(Config{
		Engine:    engine.Config{Plan: plan.MustLeftDeep(0, 1), WindowSize: 64},
		Shards:    3,
		QueueSize: 16,
		Admission: adm,
	})
	defer rt.Close()

	const feeders, batches, per = 4, 300, 5
	var sent, busy atomic.Uint64
	var wg sync.WaitGroup
	for f := 0; f < feeders; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			for i := 0; i < batches; i++ {
				evs := make([]workload.Event, per)
				for j := range evs {
					evs[j] = workload.Event{Stream: tuple.StreamID(j % 2), Key: tuple.Value((f*batches + i + j) % 32)}
				}
				sent.Add(per)
				if err := rt.FeedBatch(evs); err != nil {
					if !errors.Is(err, admission.ErrBusy) {
						t.Errorf("feeder %d: %v", f, err)
						return
					}
					busy.Add(per)
				}
			}
		}(f)
	}
	wg.Wait()
	if err := rt.Flush(); err != nil {
		t.Fatal(err)
	}

	s := adm.Snapshot()
	input := rt.Snapshot().Input
	if got := input + s.ShedTuples + s.RejectedTuples; got != sent.Load() {
		t.Fatalf("conservation: processed %d + shed %d + rejected %d = %d, want %d",
			input, s.ShedTuples, s.RejectedTuples, got, sent.Load())
	}
	if s.RejectedTuples != busy.Load() {
		t.Fatalf("controller rejected %d tuples, feeders saw BUSY for %d", s.RejectedTuples, busy.Load())
	}
	if s.InflightBytes != 0 {
		t.Fatalf("InflightBytes = %d after Flush, want 0", s.InflightBytes)
	}
}
