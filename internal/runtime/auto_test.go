package runtime

import (
	"testing"
	"time"

	"jisc/internal/adaptive"
	"jisc/internal/core"
	"jisc/internal/engine"
	"jisc/internal/plan"
	"jisc/internal/workload"
)

// TestAutopilotShiftWorkload runs the full concurrent stack — sharded
// runtime, background controller goroutine, producer goroutine — under
// a skewed workload that starts on its worst plan order. The autopilot
// must install exactly one plan switch (Cooldown is an hour, so a
// second would be a pacing bug), and the counters, plan reads, and
// migration fan-out must all be race-clean (this test is the reason
// the suite runs under -race).
func TestAutopilotShiftWorkload(t *testing.T) {
	initial := plan.MustLeftDeep(0, 1, 2)
	rt, err := New(Config{
		Engine: engine.Config{
			Plan:       initial,
			WindowSize: 200,
			Strategy:   core.New(),
		},
		Shards: 2,
		Adaptive: &adaptive.Config{
			Interval:         2 * time.Millisecond,
			Confirm:          2,
			Cooldown:         time.Hour,
			MinProbes:        16,
			RegressionFactor: -1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if rt.Auto() == nil {
		t.Fatal("Config.Adaptive did not start a controller")
	}

	// Stream 0 is a hose (tiny key domain): the initial order probes
	// its matches first, the worst choice.
	src := workload.MustNewSource(workload.Config{
		Streams: 3, Domain: 200, Seed: 11, Domains: []int64{4, 2000, 2000},
	})
	deadline := time.Now().Add(30 * time.Second)
	for rt.Auto().Migrations() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("the autopilot never migrated a skewed workload off its worst plan")
		}
		for i := 0; i < 500; i++ {
			if err := rt.Feed(src.Next()); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Keep feeding well past the switch: the hour-long cooldown must
	// pin the count at exactly one.
	for i := 0; i < 10000; i++ {
		if err := rt.Feed(src.Next()); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := rt.Auto().Migrations(); got != 1 {
		t.Fatalf("Migrations = %d, want exactly 1 under an hour-long cooldown", got)
	}
	p, err := rt.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if p.Equal(initial) {
		t.Fatalf("plan still %s after an autopilot migration", p)
	}
	if _, err := p.Order(); err != nil {
		t.Fatalf("autopilot installed a non-left-deep plan %s: %v", p, err)
	}
	if rt.Auto().LastMigration().IsZero() {
		t.Fatal("LastMigration still zero after a migration")
	}
}

// TestStartStopAutoLifecycle covers the manual AUTO ON/OFF path the
// server uses, including double starts and stop-then-restart.
func TestStartStopAutoLifecycle(t *testing.T) {
	rt, err := New(Config{Engine: engine.Config{
		Plan: plan.MustLeftDeep(0, 1, 2), WindowSize: 10, Strategy: core.New(),
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if rt.Auto() != nil {
		t.Fatal("autopilot running without Config.Adaptive")
	}
	if err := rt.StartAuto(adaptive.Config{Interval: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if rt.Auto() == nil {
		t.Fatal("Auto() nil after StartAuto")
	}
	if err := rt.StartAuto(adaptive.Config{}); err == nil {
		t.Fatal("double StartAuto accepted")
	}
	rt.StopAuto()
	if rt.Auto() != nil {
		t.Fatal("Auto() non-nil after StopAuto")
	}
	rt.StopAuto() // idempotent
	if err := rt.StartAuto(adaptive.Config{Interval: time.Millisecond}); err != nil {
		t.Fatalf("restart after stop: %v", err)
	}
	// Close with a live controller: Close must stop it first.
}

// TestScanStatsMergesShards pins the cross-shard stat merge: per-shard
// counters sum per stream, ascending by stream ID.
func TestScanStatsMergesShards(t *testing.T) {
	rt, err := New(Config{
		Engine: engine.Config{Plan: plan.MustLeftDeep(0, 1, 2), WindowSize: 50, Strategy: core.New()},
		Shards: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	src := workload.MustNewSource(workload.Config{Streams: 3, Domain: 10, Seed: 3})
	var fed uint64
	for i := 0; i < 900; i++ {
		if err := rt.Feed(src.Next()); err != nil {
			t.Fatal(err)
		}
		fed++
	}
	stats, err := rt.ScanStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 {
		t.Fatalf("ScanStats returned %d streams, want 3", len(stats))
	}
	var probes uint64
	for i, s := range stats {
		if int(s.Stream) != i {
			t.Fatalf("stats not ascending by stream: %v", stats)
		}
		probes += s.Probes
	}
	if probes == 0 {
		t.Fatal("no probes recorded across shards")
	}
	// Fed tuples are visible through the Target-facing snapshot too.
	if got := rt.Snapshot().Input; got != fed {
		t.Fatalf("Snapshot().Input = %d, want %d", got, fed)
	}
}
