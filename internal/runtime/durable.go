package runtime

// Durability wiring for the sharded Runtime. The core invariant is
// WAL order = apply order: each shard pairs its write-ahead log with a
// mutex held across {append record; enqueue message}, so the sequence
// of records on disk is exactly the sequence of events the worker will
// process. Recovery can then replay the log tail through the
// deterministic engine and land on the precise state the shard had
// when the process died — including mid-lazy-migration, because
// MIGRATE records replay too.
//
// Checkpoints ride the same mutex: CheckpointNow captures the log's
// last sequence number and enqueues the snapshot control message in
// one critical section, so the serialized engine state covers exactly
// the records up to that sequence — no feed can slip between the two.
// The serialization itself (the expensive part) happens on the worker
// with the mutex released; producers block only for the enqueue.

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"jisc/internal/durable"
	"jisc/internal/engine"
	"jisc/internal/plan"
	"jisc/internal/workload"
)

// durShard serializes one shard's WAL appends with its runner
// enqueues.
type durShard struct {
	mu  sync.Mutex
	log *durable.Log
}

// recoverDurable builds the runtime's shards from the durability
// directory: every shard recovers in parallel (checkpoint load + WAL
// tail replay), laggard shards are converged onto shard 0's plan, and
// the background checkpoint loop is started.
func (rt *Runtime) recoverDurable(cfg Config, shards int) error {
	if cfg.Overflow == Shed {
		// A shed tuple is dropped after acknowledgment without ever
		// reaching the log, so the WAL could not tell a shed tuple from
		// a lost one — replay would be nondeterministic. Backpressure
		// (Block) is the only overflow policy with an exact log.
		return fmt.Errorf("runtime: the Shed overflow policy cannot be combined with durability; use Block")
	}
	if cfg.QueueSize < 0 {
		return fmt.Errorf("runtime: negative queue size %d", cfg.QueueSize)
	}
	opts := cfg.Durability.WithDefaults()
	rt.durOpts = opts
	rt.durStats = &durable.Stats{}
	start := time.Now()

	type result struct {
		rec *durable.ShardRecovery
		err error
	}
	results := make([]result, shards)
	var wg sync.WaitGroup
	budget := resolveStateBudget(cfg.Engine.StateBudget, cfg.Engine.Kind)
	for i := 0; i < shards; i++ {
		engCfg := shardSpill(cfg.Engine, budget, shards, i)
		if cfg.Obs != nil {
			engCfg.Obs = cfg.Obs.Recorder(i)
		}
		wg.Add(1)
		go func(i int, engCfg engine.Config) {
			defer wg.Done()
			rec, err := durable.RecoverShard(opts, i, engCfg, engCfg.Obs, rt.durStats)
			results[i] = result{rec, err}
		}(i, engCfg)
	}
	wg.Wait()

	fail := func(err error) error {
		for _, res := range results {
			if res.rec != nil {
				res.rec.Log.Close()
				res.rec.Engine.Close()
			}
		}
		return err
	}
	for _, res := range results {
		if res.err != nil {
			return fail(res.err)
		}
	}

	// Migrate fans out shard 0..N-1, so a crash mid-fan-out leaves a
	// suffix of shards on the old plan while shard 0 is never behind.
	// Converge the laggards before exposing the runtime, logging the
	// migration first exactly as a live Migrate would — a second crash
	// here just repeats the convergence.
	target := results[0].rec.Engine.Plan()
	for i := 1; i < shards; i++ {
		eng := results[i].rec.Engine
		if eng.Plan().String() == target.String() {
			continue
		}
		if _, err := results[i].rec.Log.AppendMigrate(target.String()); err != nil {
			return fail(fmt.Errorf("runtime: shard %d: logging plan convergence: %w", i, err))
		}
		if err := eng.Migrate(target); err != nil {
			return fail(fmt.Errorf("runtime: shard %d: converging onto plan %s: %w", i, target, err))
		}
	}

	for i := 0; i < shards; i++ {
		rt.shards = append(rt.shards, newRunnerWith(results[i].rec.Engine, cfg))
		rt.dur = append(rt.dur, &durShard{log: results[i].rec.Log})
	}
	durable.MarkRecovery(rt.durStats, start)

	if opts.CheckpointInterval > 0 {
		rt.ckptStop = make(chan struct{})
		rt.ckptDone = make(chan struct{})
		go rt.checkpointLoop(opts.CheckpointInterval)
	}
	return nil
}

// feedDurable logs then enqueues one tuple under shard i's log mutex.
// cost is the tuple's admission reservation (0 when admission is off);
// a feed deadline never reaches this path (admission rejects the
// combination at New), so the enqueued message carries no deadline.
func (rt *Runtime) feedDurable(i int, ev workload.Event, cost int64) error {
	d := rt.dur[i]
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, err := d.log.AppendFeed(ev.Stream, ev.Key); err != nil {
		rt.adm.Release(cost)
		return err
	}
	return rt.shards[i].feedAdmitted(ev, 0, cost)
}

// migrateDurable logs a MIGRATE record and enqueues the transition
// under shard i's log mutex, then waits for the worker to apply it
// with the mutex released — producers to the shard queue behind the
// transition in the channel, not on the lock.
func (rt *Runtime) migrateDurable(i int, p *plan.Plan) error {
	d := rt.dur[i]
	d.mu.Lock()
	if _, err := d.log.AppendMigrate(p.String()); err != nil {
		d.mu.Unlock()
		return err
	}
	done := make(chan error, 1)
	if err := rt.shards[i].send(message{kind: msgMigrate, migrate: p, done: done}); err != nil {
		d.mu.Unlock()
		return err
	}
	d.mu.Unlock()
	return <-done
}

// CheckpointNow checkpoints every shard: snapshot the engine at an
// exact WAL position, write the snapshot atomically, and delete WAL
// segments the checkpoint made dead. Returns the first error after
// attempting every shard; failures leave the previous checkpoint and
// the full log intact (recovery just replays more).
func (rt *Runtime) CheckpointNow() error {
	if rt.dur == nil {
		return fmt.Errorf("runtime: durability is off; no checkpoint directory")
	}
	var firstErr error
	for i := range rt.shards {
		if err := rt.checkpointShard(i); err != nil {
			rt.durStats.CheckpointFailures.Add(1)
			if firstErr == nil {
				firstErr = fmt.Errorf("runtime: checkpointing shard %d: %w", i, err)
			}
		}
	}
	return firstErr
}

func (rt *Runtime) checkpointShard(i int) error {
	d := rt.dur[i]
	d.mu.Lock()
	seq := d.log.LastSeq()
	var buf bytes.Buffer
	done, err := rt.shards[i].checkpointAsync(&buf)
	if err != nil {
		d.mu.Unlock()
		return err
	}
	d.mu.Unlock()
	if err := <-done; err != nil {
		return err
	}
	if err := durable.WriteShardCheckpoint(rt.durOpts, i, seq, buf.Bytes()); err != nil {
		return err
	}
	rt.durStats.Checkpoints.Add(1)
	_, err = d.log.TruncateThrough(seq)
	return err
}

// checkpointLoop runs background checkpoints on the configured
// interval until Close. Failures are counted (CheckpointFailures) and
// retried on the next tick.
func (rt *Runtime) checkpointLoop(interval time.Duration) {
	defer close(rt.ckptDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-rt.ckptStop:
			return
		case <-t.C:
			rt.CheckpointNow() //nolint:errcheck // counted in durStats
		}
	}
}

// Durable reports whether the runtime was built with durability on.
func (rt *Runtime) Durable() bool { return rt.dur != nil }

// DurableStats snapshots the durability counters; zero when
// durability is off. Safe from any goroutine.
func (rt *Runtime) DurableStats() durable.StatsSnapshot { return rt.durStats.Snapshot() }

// WALSegments returns the current on-disk segment count summed over
// shards (0 when durability is off).
func (rt *Runtime) WALSegments() int {
	n := 0
	for _, d := range rt.dur {
		n += d.log.Segments()
	}
	return n
}
