package server

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"jisc/internal/admission"
	"jisc/internal/chaosnet"
	"jisc/internal/core"
	"jisc/internal/engine"
	"jisc/internal/pipeline"
	"jisc/internal/plan"
	"jisc/internal/testseed"
)

// chaosServer: an admission-limited server plus a chaosnet proxy in
// front of it. Clients dial the proxy; assertions dial the server
// directly.
func chaosServer(t *testing.T, adm admission.Config, readTO time.Duration, ccfg chaosnet.Config) (*Server, *chaosnet.Proxy) {
	t.Helper()
	s := admissionServer(t, adm, readTO, 500*time.Millisecond)
	p, err := chaosnet.New("127.0.0.1:0", s.Addr().String(), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return s, p
}

// TestChaosSlowLinkConservation hoses the server through a slow, jittery,
// bandwidth-capped link at well over the admission rate. Every line the
// client saw acknowledged OK must be covered by the server's books
// (processed or shed — an ack is a promise), and the server must end
// healthy.
func TestChaosSlowLinkConservation(t *testing.T) {
	noLeak(t)
	seed := testseed.Seed(t, 0xc4a05)
	s, p := chaosServer(t,
		admission.Config{Rate: 2000, Burst: 200},
		0,
		chaosnet.Config{
			Seed:        seed,
			Latency:     time.Millisecond,
			Jitter:      2 * time.Millisecond,
			BytesPerSec: 256 << 10,
			ChunkBytes:  512,
		})

	const feeders, lines, per = 3, 150, 4
	var acked atomic.Uint64
	var wg sync.WaitGroup
	for f := 0; f < feeders; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", p.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(60 * time.Second))
			r := bufio.NewReader(conn)
			for i := 0; i < lines; i++ {
				fmt.Fprintf(conn, "FEEDB %d %d %d %d %d\n", i%3, i%7, (i+1)%7, (i+2)%7, (i+3)%7)
				resp, err := r.ReadString('\n')
				if err != nil {
					return // link death: unacked lines are unclaimed
				}
				if strings.TrimSpace(resp) == "OK" {
					acked.Add(per)
				}
			}
		}(f)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Assert through a direct connection — the proxy is not trusted
	// for the audit.
	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	accounted := st.Input + st.AdmissionShed
	if accounted < acked.Load() {
		t.Fatalf("acked %d tuples but the server accounts only %d (input %d + shed %d)",
			acked.Load(), accounted, st.Input, st.AdmissionShed)
	}
	if st.InflightBytes != 0 {
		t.Fatalf("inflight_bytes = %d at quiescence, want 0", st.InflightBytes)
	}
}

// TestChaosMidWriteResets: connections die by RST mid-conversation,
// repeatedly. The server must shrug — no leaked handlers, and a fresh
// direct connection serves normally afterwards.
func TestChaosMidWriteResets(t *testing.T) {
	noLeak(t)
	seed := testseed.Seed(t, 0xc4a06)
	s, p := chaosServer(t,
		admission.Config{Rate: 1e6, Burst: 1e6},
		0,
		chaosnet.Config{Seed: seed, ResetAfterBytes: 512, ChunkBytes: 128})

	for round := 0; round < 8; round++ {
		conn, err := net.Dial("tcp", p.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		conn.SetDeadline(time.Now().Add(10 * time.Second))
		r := bufio.NewReader(conn)
		for i := 0; ; i++ {
			if _, err := fmt.Fprintf(conn, "FEED %d %d\n", i%3, i%7); err != nil {
				break
			}
			if _, err := r.ReadString('\n'); err != nil {
				break
			}
		}
		conn.Close()
	}
	if got := p.Stats().Resets; got == 0 {
		t.Fatal("the proxy never fired a reset — the test exercised nothing")
	}

	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Feed(batchEvents(1)[0]); err != nil {
		t.Fatalf("server unhealthy after resets: %v", err)
	}
}

// TestChaosHalfOpenStall: a connection goes silent mid-line (the proxy
// half-opens it). The server's read deadline must reap the wedged
// handler instead of holding it forever — proven by the noLeak check
// once the test server closes.
func TestChaosHalfOpenStall(t *testing.T) {
	noLeak(t)
	seed := testseed.Seed(t, 0xc4a07)
	s, p := chaosServer(t,
		admission.Config{},
		200*time.Millisecond,
		chaosnet.Config{Seed: seed, StallAfterBytes: 256, ChunkBytes: 64})

	conn, err := net.Dial("tcp", p.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Short deadline: once the link stalls, the client's next read
	// only needs to fail, not wait out a long patience budget.
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	r := bufio.NewReader(conn)
	for i := 0; i < 1000; i++ {
		if _, err := fmt.Fprintf(conn, "FEED %d %d\n", i%3, i%7); err != nil {
			break
		}
		if _, err := r.ReadString('\n'); err != nil {
			break
		}
	}
	if got := p.Stats().Stalls; got == 0 {
		t.Fatal("the proxy never stalled — the test exercised nothing")
	}
	// The server side of the stalled link holds a half-received line;
	// its read deadline reaps it. Give it a moment, then check health
	// directly.
	time.Sleep(400 * time.Millisecond)
	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Stats(); err != nil {
		t.Fatalf("server unhealthy after stall: %v", err)
	}
}

// TestChaosPartitionRecovery: a full partition kills every client
// mid-hose; after healing, service resumes and the books are
// consistent.
func TestChaosPartitionRecovery(t *testing.T) {
	noLeak(t)
	seed := testseed.Seed(t, 0xc4a08)
	_, p := chaosServer(t,
		admission.Config{Rate: 1e6, Burst: 1e6},
		0,
		chaosnet.Config{Seed: seed})

	var wg sync.WaitGroup
	started := make(chan struct{})
	for f := 0; f < 3; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", p.Addr().String())
			if err != nil {
				return
			}
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(30 * time.Second))
			r := bufio.NewReader(conn)
			for i := 0; ; i++ {
				if i == 10 && f == 0 {
					close(started)
				}
				if _, err := fmt.Fprintf(conn, "FEED %d %d\n", i%3, i%7); err != nil {
					return
				}
				if _, err := r.ReadString('\n'); err != nil {
					return
				}
			}
		}(f)
	}
	<-started
	p.SetPartitioned(true)
	// Every feeder must die promptly — a partition is not a hang.
	doneCh := make(chan struct{})
	go func() { wg.Wait(); close(doneCh) }()
	select {
	case <-doneCh:
	case <-time.After(15 * time.Second):
		t.Fatal("feeders hung across the partition")
	}

	p.SetPartitioned(false)
	conn, err := net.Dial("tcp", p.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	fmt.Fprintf(conn, "STATS\n")
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil || !strings.HasPrefix(line, "STATS ") {
		t.Fatalf("post-heal STATS = %q, %v", line, err)
	}
}

// TestChaosDrainUnderFire: SIGTERM-equivalent — Drain lands while
// clients hose through a lossy, laggy proxy. The drain must complete
// within its bound and the durable restart must see every batch that
// was acknowledged. This is the library-level twin of the
// overload_smoke.sh script.
func TestChaosDrainUnderFire(t *testing.T) {
	noLeak(t)
	seed := testseed.Seed(t, 0xc4a09)
	dir := t.TempDir()
	s, err := New(Config{
		Pipeline: pipeline.Config{Engine: engine.Config{
			Plan:       plan.MustLeftDeep(0, 1, 2),
			WindowSize: 100,
			Strategy:   core.New(),
		}},
		Durable:   durableServerConfig(dir).Durable,
		Admission: admission.Config{Rate: 1e6, Burst: 1e6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	p, err := chaosnet.New("127.0.0.1:0", s.Addr().String(), chaosnet.Config{
		Seed:    seed,
		Latency: 500 * time.Microsecond,
		Jitter:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })

	var acked atomic.Uint64
	var wg sync.WaitGroup
	hoseUp := make(chan struct{})
	var once sync.Once
	for f := 0; f < 3; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", p.Addr().String())
			if err != nil {
				return
			}
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(30 * time.Second))
			r := bufio.NewReader(conn)
			for i := 0; ; i++ {
				if i == 5 {
					once.Do(func() { close(hoseUp) })
				}
				if _, err := fmt.Fprintf(conn, "FEEDB %d %d %d\n", i%3, i%7, (i+1)%7); err != nil {
					return
				}
				resp, err := r.ReadString('\n')
				if err != nil {
					return
				}
				if strings.TrimSpace(resp) == "OK" {
					acked.Add(2)
				} else {
					return // BUSY: the drain fence is up
				}
			}
		}(f)
	}
	<-hoseUp
	if err := s.Drain(15 * time.Second); err != nil {
		t.Fatalf("Drain under fire: %v", err)
	}
	wg.Wait()

	// Restart from the drained state: everything acknowledged must be
	// there. (Acked is a lower bound: lines processed whose ack was
	// lost in flight are legal extras.)
	s2 := startDurableServer(t, dir)
	defer s2.Close()
	c, err := Dial(s2.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Input < acked.Load() {
		t.Fatalf("restarted input = %d < %d acked tuples: the drain lost admitted batches", st.Input, acked.Load())
	}
}
