package server

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"jisc/internal/core"
	"jisc/internal/durable"
	"jisc/internal/engine"
	"jisc/internal/pipeline"
	"jisc/internal/plan"
	"jisc/internal/workload"
)

func newTestServer(t *testing.T) *Server {
	t.Helper()
	s, err := New(Config{Pipeline: pipeline.Config{Engine: engine.Config{
		Plan:       plan.MustLeftDeep(0, 1, 2),
		WindowSize: 100,
		Strategy:   core.New(),
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

type client struct {
	conn net.Conn
	r    *bufio.Reader
}

func dial(t *testing.T, s *Server) *client {
	t.Helper()
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &client{conn: conn, r: bufio.NewReader(conn)}
}

func (c *client) cmd(t *testing.T, line string) string {
	t.Helper()
	if _, err := fmt.Fprintln(c.conn, line); err != nil {
		t.Fatal(err)
	}
	resp, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatalf("reading response to %q: %v", line, err)
	}
	return strings.TrimSpace(resp)
}

func TestServerFeedAndStats(t *testing.T) {
	s := newTestServer(t)
	c := dial(t, s)
	for _, cmdLine := range []string{"FEED 0 7", "FEED 1 7", "FEED 2 7"} {
		if resp := c.cmd(t, cmdLine); resp != "OK" {
			t.Fatalf("%s -> %s", cmdLine, resp)
		}
	}
	stats := c.cmd(t, "STATS")
	if !strings.HasPrefix(stats, "STATS ") || !strings.Contains(stats, "input=3") {
		t.Fatalf("stats = %q", stats)
	}
	if !strings.Contains(stats, "output=1") {
		t.Fatalf("stats = %q, want one join result", stats)
	}
}

func TestServerSubscribe(t *testing.T) {
	s := newTestServer(t)
	sub := dial(t, s)
	if resp := sub.cmd(t, "SUBSCRIBE"); resp != "OK" {
		t.Fatalf("subscribe: %s", resp)
	}
	if resp := sub.cmd(t, "SUBSCRIBE"); !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("double subscribe: %s", resp)
	}

	feeder := dial(t, s)
	feeder.cmd(t, "FEED 0 9")
	feeder.cmd(t, "FEED 1 9")
	feeder.cmd(t, "FEED 2 9")

	sub.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := sub.r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "RESULT 9 ") {
		t.Fatalf("subscription line = %q", line)
	}
	if s.Subscribers(DefaultQuery) != 1 {
		t.Fatalf("Subscribers = %d", s.Subscribers(DefaultQuery))
	}
}

func TestServerMigrateAndPlan(t *testing.T) {
	s := newTestServer(t)
	c := dial(t, s)
	if resp := c.cmd(t, "PLAN"); resp != "PLAN ((0⋈1)⋈2)" {
		t.Fatalf("plan = %q", resp)
	}
	if resp := c.cmd(t, "MIGRATE 2,0,1"); resp != "OK" {
		t.Fatalf("migrate: %s", resp)
	}
	if resp := c.cmd(t, "PLAN"); resp != "PLAN ((2⋈0)⋈1)" {
		t.Fatalf("plan after migrate = %q", resp)
	}
	if resp := c.cmd(t, "MIGRATE ((("); !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("bad migrate: %s", resp)
	}
	// Feeding still works after migration; results flow.
	c.cmd(t, "FEED 0 5")
	c.cmd(t, "FEED 1 5")
	c.cmd(t, "FEED 2 5")
	stats := c.cmd(t, "STATS")
	if !strings.Contains(stats, "transitions=1") || !strings.Contains(stats, "output=1") {
		t.Fatalf("stats = %q", stats)
	}
}

func TestServerErrors(t *testing.T) {
	s := newTestServer(t)
	c := dial(t, s)
	// "FEED 12 7" is the fuzz-found remote crash: stream 12 parses (it
	// is under MaxStreams) but is not in the 3-stream plan, and used to
	// reach the engine's unknown-stream panic.
	for _, bad := range []string{"FEED", "FEED x 1", "FEED 0 x", "FEED 99 1", "FEED 12 7", "FEEDB 12 7 8", "BOGUS"} {
		if resp := c.cmd(t, bad); !strings.HasPrefix(resp, "ERR") {
			t.Fatalf("%q -> %q, want ERR", bad, resp)
		}
	}
	if resp := c.cmd(t, "QUIT"); resp != "OK" {
		t.Fatalf("quit: %s", resp)
	}
}

func TestServerConfigValidation(t *testing.T) {
	if _, err := New(Config{Pipeline: pipeline.Config{Engine: engine.Config{
		Plan:   plan.MustLeftDeep(0, 1),
		Output: func(engine.Delta) {},
	}}}); err == nil {
		t.Error("output-owning config accepted")
	}
	if _, err := New(Config{
		Pipeline:         pipeline.Config{Engine: engine.Config{Plan: plan.MustLeftDeep(0, 1)}},
		SubscriberBuffer: -1,
	}); err == nil {
		t.Error("negative buffer accepted")
	}
	// A server with no default query is legal: CREATE adds queries.
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Queries()) != 0 {
		t.Errorf("queries = %v", s.Queries())
	}
	s.Close()
}

func TestServerCloseIsIdempotent(t *testing.T) {
	s := newTestServer(t)
	c := dial(t, s)
	c.cmd(t, "FEED 0 1")
	s.Close()
	s.Close()
}

func TestServerConcurrentClients(t *testing.T) {
	s := newTestServer(t)
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func(w int) {
			conn, err := net.Dial("tcp", s.Addr().String())
			if err != nil {
				done <- err
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			for i := 0; i < 100; i++ {
				fmt.Fprintf(conn, "FEED %d %d\n", (w+i)%3, i%10)
				if _, err := r.ReadString('\n'); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	c := dial(t, s)
	stats := c.cmd(t, "STATS")
	if !strings.Contains(stats, "input=400") {
		t.Fatalf("stats = %q, want input=400", stats)
	}
}

func TestClientRoundTrip(t *testing.T) {
	s := newTestServer(t)
	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, ev := range []workload.Event{{Stream: 0, Key: 7}, {Stream: 1, Key: 7}, {Stream: 2, Key: 7}} {
		if err := c.Feed(ev); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Input != 3 || st.Output != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if err := c.Migrate(plan.MustLeftDeep(2, 0, 1)); err != nil {
		t.Fatal(err)
	}
	p, err := c.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(plan.MustLeftDeep(2, 0, 1)) {
		t.Fatalf("plan = %s", p)
	}
	if err := c.Feed(workload.Event{Stream: 99, Key: 0}); err == nil {
		t.Fatal("bad feed accepted")
	}
}

func TestClientSubscribe(t *testing.T) {
	s := newTestServer(t)
	sub, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	results, err := sub.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	feeder, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer feeder.Close()
	for _, ev := range []workload.Event{{Stream: 0, Key: 5}, {Stream: 1, Key: 5}, {Stream: 2, Key: 5}} {
		if err := feeder.Feed(ev); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case r := <-results:
		if r.Key != 5 || r.Retraction || r.Fingerprint != "0#1|1#1|2#1" {
			t.Fatalf("result = %+v", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no result streamed")
	}
}

func TestServerCheckpointCommand(t *testing.T) {
	s := newTestServer(t)
	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Feed(workload.Event{Stream: 0, Key: 4}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "srv.ckpt")
	if err := c.Checkpoint(path); err != nil {
		t.Fatal(err)
	}
	payload, err := durable.ReadSnapshotFile(durable.OS(), path)
	if err != nil {
		t.Fatal(err)
	}
	var n int
	restored, err := engine.Restore(bytes.NewReader(payload), engine.Config{
		WindowSize: 100, Strategy: core.New(),
		Output: func(engine.Delta) { n++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	restored.Feed(workload.Event{Stream: 1, Key: 4})
	restored.Feed(workload.Event{Stream: 2, Key: 4})
	if n != 1 {
		t.Fatalf("restored results = %d", n)
	}
	if err := c.Checkpoint(""); err == nil {
		t.Fatal("empty path accepted")
	}
}

func TestServerMultiQuery(t *testing.T) {
	s := newTestServer(t)
	c := dial(t, s)
	// Create a second query with its own plan and window.
	if resp := c.cmd(t, "CREATE alerts 50 ((0 1) 2)"); resp != "OK" {
		t.Fatalf("create: %s", resp)
	}
	if resp := c.cmd(t, "CREATE alerts 50 0,1"); !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("duplicate create: %s", resp)
	}
	if resp := c.cmd(t, "LIST"); resp != "QUERIES alerts default" {
		t.Fatalf("list: %s", resp)
	}
	// Feed the named query and the default query independently.
	for _, line := range []string{"FEED alerts 0 9", "FEED alerts 1 9", "FEED alerts 2 9", "FEED 0 9"} {
		if resp := c.cmd(t, line); resp != "OK" {
			t.Fatalf("%s -> %s", line, resp)
		}
	}
	if resp := c.cmd(t, "STATS alerts"); !strings.Contains(resp, "input=3") || !strings.Contains(resp, "output=1") {
		t.Fatalf("alerts stats: %s", resp)
	}
	if resp := c.cmd(t, "STATS"); !strings.Contains(resp, "input=1") {
		t.Fatalf("default stats: %s", resp)
	}
	// Migrate only the named query.
	if resp := c.cmd(t, "MIGRATE alerts 2,1,0"); resp != "OK" {
		t.Fatalf("migrate alerts: %s", resp)
	}
	if resp := c.cmd(t, "PLAN alerts"); resp != "PLAN ((2⋈1)⋈0)" {
		t.Fatalf("alerts plan: %s", resp)
	}
	if resp := c.cmd(t, "PLAN"); resp != "PLAN ((0⋈1)⋈2)" {
		t.Fatalf("default plan changed: %s", resp)
	}
	// Drop the named query.
	if resp := c.cmd(t, "DROP alerts"); resp != "OK" {
		t.Fatalf("drop: %s", resp)
	}
	if resp := c.cmd(t, "DROP alerts"); !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("double drop: %s", resp)
	}
	if resp := c.cmd(t, "LIST"); resp != "QUERIES default" {
		t.Fatalf("list after drop: %s", resp)
	}
	if resp := c.cmd(t, "FEED alerts 0 1"); !strings.HasPrefix(resp, "ERR") {
		// "alerts" no longer resolves; falls through to the default
		// query, where "alerts" is not a valid stream id.
		t.Fatalf("feed to dropped query: %s", resp)
	}
}

func TestServerMultiQuerySubscriptions(t *testing.T) {
	s := newTestServer(t)
	admin := dial(t, s)
	if resp := admin.cmd(t, "CREATE side 50 0,1"); resp != "OK" {
		t.Fatalf("create: %s", resp)
	}
	sub := dial(t, s)
	if resp := sub.cmd(t, "SUBSCRIBE side"); resp != "OK" {
		t.Fatalf("subscribe side: %s", resp)
	}
	// One connection may subscribe to several queries.
	if resp := sub.cmd(t, "SUBSCRIBE"); resp != "OK" {
		t.Fatalf("subscribe default: %s", resp)
	}
	admin.cmd(t, "FEED side 0 4")
	admin.cmd(t, "FEED side 1 4")
	sub.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := sub.r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "RESULT 4 ") {
		t.Fatalf("line = %q", line)
	}
	if s.Subscribers("side") != 1 || s.Subscribers(DefaultQuery) != 1 {
		t.Fatalf("subscribers: side=%d default=%d", s.Subscribers("side"), s.Subscribers(DefaultQuery))
	}
	// Dropping the subscribed query ends its stream without killing
	// the connection.
	if resp := admin.cmd(t, "DROP side"); resp != "OK" {
		t.Fatalf("drop: %s", resp)
	}
	if resp := sub.cmd(t, "LIST"); resp != "QUERIES default" {
		t.Fatalf("list after drop: %s", resp)
	}
}

func TestServerNoDefaultQuery(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	c := dial(t, s)
	if resp := c.cmd(t, "FEED 0 1"); !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("feed with no queries: %s", resp)
	}
	if resp := c.cmd(t, "CREATE q1 10 0,1"); resp != "OK" {
		t.Fatalf("create: %s", resp)
	}
	if resp := c.cmd(t, "FEED q1 0 1"); resp != "OK" {
		t.Fatalf("feed q1: %s", resp)
	}
	if resp := c.cmd(t, "CREATE bad 0 0,1"); !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("zero window create: %s", resp)
	}
}

func TestScopedClient(t *testing.T) {
	s := newTestServer(t)
	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Create("other", 20, plan.MustLeftDeep(0, 1)); err != nil {
		t.Fatal(err)
	}
	names, err := c.List()
	if err != nil || len(names) != 2 {
		t.Fatalf("list = %v, %v", names, err)
	}
	sc := c.On("other")
	if err := sc.Feed(workload.Event{Stream: 0, Key: 3}); err != nil {
		t.Fatal(err)
	}
	if err := sc.Feed(workload.Event{Stream: 1, Key: 3}); err != nil {
		t.Fatal(err)
	}
	st, err := sc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Input != 2 || st.Output != 1 {
		t.Fatalf("scoped stats = %+v", st)
	}
	if err := sc.Migrate(plan.MustLeftDeep(1, 0)); err != nil {
		t.Fatal(err)
	}
	// The default query is untouched.
	dst, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if dst.Input != 0 || dst.Transitions != 0 {
		t.Fatalf("default stats = %+v", dst)
	}
	if err := c.Drop("other"); err != nil {
		t.Fatal(err)
	}
	if err := c.Drop("other"); err == nil {
		t.Fatal("double drop accepted")
	}
	if _, err := c.Raw("LIST"); err != nil {
		t.Fatal(err)
	}
}
