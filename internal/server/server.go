// Package server exposes running continuous queries over a TCP line
// protocol, so external producers can feed streams and external
// consumers can subscribe to results — the shape a deployed DSMS node
// takes. The server hosts any number of named queries (each an
// AsyncQuery runner); plan transitions arrive as protocol commands and
// migrate the live queries under the configured strategy (JISC by
// default: no halt, steady output to subscribers).
//
// Protocol (one command per line, ASCII). Commands that omit the query
// name address the default query:
//
//	FEED [query] <stream> <key>      ingest a tuple
//	FEEDB [query] <stream> <key>...  ingest a batch: every key on the
//	                                 line becomes one tuple of <stream>,
//	                                 delivered as a single FeedBatch and
//	                                 acknowledged with a single OK
//	MIGRATE [query] <plan>           transition, e.g. MIGRATE ((0 2) 1)
//	AUTO ON|OFF|STATUS [query]       toggle or inspect the autopilot: a
//	                                 per-query adaptive controller that
//	                                 watches live selectivities and
//	                                 migrates the plan by itself
//	SUBSCRIBE [query]                stream results on this connection
//	STATS [query]                    one-line counters
//	PLAN [query]                     current plan
//	CHECKPOINT [query] <path>        write a checkpoint (server-local)
//	CREATE <query> <window> <plan>   start a new named query
//	DROP <query>                     stop and remove a named query
//	LIST                             names of the hosted queries
//	QUIT                             close the connection
//
// Responses: "OK", "ERR <msg>", "STATS <...>", "PLAN <plan>",
// "QUERIES <names...>"; streamed results are "RESULT <key>
// <fingerprint>" and "RETRACT <key> <fingerprint>" lines. Subscribers
// with stalled connections are disconnected rather than allowed to
// block a query; every such drop is counted (subs_dropped) and traced.
//
// The STATS response is one line of space-separated key=value fields
// (all unsigned decimal, unknown fields must be ignored by clients):
//
//	input/output/transitions/completions/shed   lifetime counters
//	feed_p50_ns, feed_p99_ns                    per-tuple feed-latency
//	                                            quantiles (sampled;
//	                                            0 until samples exist)
//	episodes                                    completion episodes run
//	subs_dropped                                subscribers dropped for
//	                                            falling behind
//	batch_fill_p50                              median realized ingest
//	                                            batch size, in tuples
//	                                            (0 until batches flow)
//	batch_flushes                               ingest batches processed
//	                                            (FeedBatch calls: FEEDB
//	                                            lines plus coalesced
//	                                            FEED runs)
//	auto_enabled                                1 while the autopilot is
//	                                            on for the query
//	auto_proposals, auto_migrations,            plan changes proposed /
//	auto_rollbacks                              installed / rolled back
//	                                            by the autopilot since
//	                                            its last AUTO ON
//	last_migration_age_ms                       milliseconds since the
//	                                            autopilot last installed
//	                                            a plan (0 = never;
//	                                            reported ≥ 1 otherwise)
//	admission_shed                              tuples dropped by the
//	                                            ingest rate limiter
//	                                            (acknowledged OK)
//	deadline_shed                               admitted tuples dropped
//	                                            in queue past their
//	                                            feed deadline
//	rejected, rejected_batches                  tuples / batches refused
//	                                            with ERR BUSY (in-flight
//	                                            budget, or drain fence)
//	inflight_bytes                              admitted-but-unprocessed
//	                                            byte gauge (bounded by
//	                                            the in-flight budget)
//	draining                                    1 while a graceful drain
//	                                            is in progress
//
// "AUTO STATUS [query]" answers with the same autopilot fields on one
// "AUTO query=<name> ..." line.
//
// Lines are read through a 1 MiB cap: an over-long command draws
// "ERR line longer than ..." and the connection survives, it is not
// silently dropped. Pipelined commands are acknowledged in order but
// flushed together — one write per drained read buffer, not one per
// ack — and consecutive FEED lines for the same query already sitting
// in the read buffer are coalesced into a single FeedBatch (still one
// OK per line).
//
// ServeTelemetry additionally exposes HTTP observability (/metrics
// Prometheus text, /trace JSON event dump, /healthz, /debug/pprof/) —
// see its method documentation.
package server

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"jisc/internal/adaptive"
	"jisc/internal/admission"
	"jisc/internal/core"
	"jisc/internal/durable"
	"jisc/internal/pipeline"
	"jisc/internal/plan"
	"jisc/internal/tuple"
	"jisc/internal/workload"
)

// Config parameterizes a Server.
type Config struct {
	// Pipeline configures the default query's runtime and serves as
	// the template for CREATEd queries (strategy, queue size,
	// overflow policy, shard count). Setting its Shards field above 1
	// hash-partitions every hosted query across that many worker
	// shards; CHECKPOINT then writes one file per shard
	// (<path>.0 … <path>.N-1). Its Engine.Output is owned by the
	// server and must be nil. Engine.Plan may be nil to start the
	// server with no default query (CREATE adds queries at runtime).
	// Its Durability field is owned by the server and must be zero;
	// set Config.Durable instead.
	Pipeline pipeline.Config
	// SubscriberBuffer is the per-subscriber line buffer (default
	// 1024); a subscriber that falls this far behind is dropped.
	SubscriberBuffer int
	// Durable, when enabled (Dir set), makes every mutating command
	// durable: FEED and MIGRATE are write-ahead logged per query shard
	// before they are acknowledged, CREATE and DROP go to the query
	// catalog (Dir/catalog.wal, always fsynced), and New recovers the
	// whole topology — catalog fold, then per-query checkpoint + WAL
	// replay — before Listen accepts a single connection.
	Durable durable.Options
	// Adaptive is the autopilot template AUTO ON starts controllers
	// with (and recovery, for queries whose logged AUTO state was on).
	// The zero value uses the adaptive package defaults.
	Adaptive adaptive.Config
	// AutoStart turns the autopilot on for the default query at
	// startup (cmd/jiscd -auto). With durability on, the toggle is
	// logged like an AUTO ON command.
	AutoStart bool
	// Admission configures overload control. MaxConns is server-wide
	// (the accept loop refuses connections past the cap with "ERR BUSY
	// too many connections"); Rate/Burst, InflightBytes, and
	// FeedDeadline become a per-query controller each hosted query
	// feeds through. The zero value disables every limit. A
	// FeedDeadline cannot be combined with Durable (the runtime rejects
	// the pair).
	Admission admission.Config
	// ReadTimeout bounds how long a started command line may take to
	// finish arriving (armed once the first byte of a line exists;
	// idle connections are never timed out). 0 disables. A timeout
	// closes the connection.
	ReadTimeout time.Duration
	// WriteTimeout bounds each write to a connection (acks and
	// subscriber result lines). 0 disables. A timed-out write closes
	// the connection, so a stalled consumer can never hold the
	// connection's write lock — and with it the feed path's acks —
	// beyond this bound.
	WriteTimeout time.Duration
}

// Server hosts named continuous queries over TCP.
type Server struct {
	template pipeline.Config
	bufSize  int
	ln       net.Listener
	durable  durable.Options
	catalog  *durable.Catalog
	catStats *durable.Stats
	// walDisabled counts mutating commands (FEED, MIGRATE, CREATE,
	// DROP, AUTO ON/OFF) executed while durability is off — each one is
	// state a crash would silently lose, so the telemetry endpoint
	// exposes the count distinctly rather than leaving "no WAL"
	// invisible.
	walDisabled atomic.Uint64
	// autoCfg is the autopilot template AUTO ON instantiates.
	autoCfg adaptive.Config
	// admCfg is the per-query admission template newQuery instantiates
	// (MaxConns stripped); adm is the server-wide controller owning the
	// connection gate, nil when MaxConns is 0.
	admCfg admission.Config
	adm    *admission.Controller
	// draining is the graceful-drain fence: once up, mutating commands
	// draw "ERR BUSY draining" while reads (STATS, PLAN, LIST) keep
	// answering. See Drain.
	draining     atomic.Bool
	readTimeout  time.Duration
	writeTimeout time.Duration

	mu          sync.Mutex
	queries     map[string]*query
	conns       map[net.Conn]struct{}
	closed      bool
	telemetry   *http.Server
	telemetryLn net.Listener
	connWG      sync.WaitGroup
	acceptWG    sync.WaitGroup
}

// New builds a server and starts the default query (when the config
// carries a plan). With durability enabled it first recovers every
// query recorded in the catalog. Call Listen to accept connections.
func New(cfg Config) (*Server, error) {
	if cfg.Pipeline.Engine.Output != nil {
		return nil, errors.New("server: Engine.Output is owned by the server")
	}
	if cfg.Pipeline.Durability.Enabled() {
		return nil, errors.New("server: Pipeline.Durability is owned by the server; set Config.Durable")
	}
	if cfg.SubscriberBuffer == 0 {
		cfg.SubscriberBuffer = 1024
	}
	if cfg.SubscriberBuffer < 0 {
		return nil, fmt.Errorf("server: negative subscriber buffer")
	}
	if cfg.ReadTimeout < 0 || cfg.WriteTimeout < 0 {
		return nil, fmt.Errorf("server: negative timeout")
	}
	s := &Server{
		template:     cfg.Pipeline,
		bufSize:      cfg.SubscriberBuffer,
		autoCfg:      cfg.Adaptive,
		admCfg:       cfg.Admission,
		readTimeout:  cfg.ReadTimeout,
		writeTimeout: cfg.WriteTimeout,
		queries:      make(map[string]*query),
		conns:        make(map[net.Conn]struct{}),
	}
	if cfg.Admission.MaxConns > 0 {
		ctrl, err := admission.New(admission.Config{MaxConns: cfg.Admission.MaxConns})
		if err != nil {
			return nil, err
		}
		s.adm = ctrl
	} else if _, err := admission.New(cfg.Admission); err != nil {
		return nil, err // surface a bad template before any query uses it
	}
	if cfg.Durable.Enabled() {
		if err := s.recoverDurable(cfg); err != nil {
			return nil, err
		}
	} else if cfg.Pipeline.Engine.Plan != nil {
		q, err := newQuery(DefaultQuery, cfg.Pipeline, s.bufSize, s.admCfg)
		if err != nil {
			return nil, err
		}
		s.queries[DefaultQuery] = q
	}
	if cfg.AutoStart {
		q, ok := s.queries[DefaultQuery]
		if !ok {
			s.Close()
			return nil, errors.New("server: AutoStart needs a default query")
		}
		if err := s.autoOn(q); err != nil {
			s.Close()
			return nil, fmt.Errorf("server: starting autopilot: %w", err)
		}
	}
	return s, nil
}

// autoOn starts the autopilot on q from the server's template and,
// with durability on, logs the toggle to the catalog — recovery then
// re-enables it before Listen. Idempotent: an already-running
// autopilot is left untouched (and nothing is re-logged).
func (s *Server) autoOn(q *query) error {
	if q.runner.Auto() != nil {
		return nil
	}
	if err := q.runner.StartAuto(s.autoCfg); err != nil {
		return err
	}
	if s.catalog != nil {
		if err := s.catalog.AppendAuto(q.name, true); err != nil {
			q.runner.StopAuto()
			return fmt.Errorf("logging AUTO ON: %w", err)
		}
	}
	return nil
}

// autoOff stops the autopilot on q, logging the toggle when durable.
// Idempotent.
func (s *Server) autoOff(q *query) error {
	if q.runner.Auto() == nil {
		return nil
	}
	q.runner.StopAuto()
	if s.catalog != nil {
		if err := s.catalog.AppendAuto(q.name, false); err != nil {
			return fmt.Errorf("logging AUTO OFF: %w", err)
		}
	}
	return nil
}

// autoStats reads q's autopilot telemetry: the enabled flag, the
// proposal/migration/rollback counters, and the age of the last
// autopilot migration in milliseconds (0 = never; clamped to ≥ 1 when
// one happened, so "never" stays unambiguous). All zeros while the
// autopilot is off — the counters belong to the running controller.
func autoStats(q *query) (enabled, proposals, migrations, rollbacks, ageMS uint64) {
	c := q.runner.Auto()
	if c == nil {
		return 0, 0, 0, 0, 0
	}
	enabled = 1
	proposals, migrations, rollbacks = c.Proposals(), c.Migrations(), c.Rollbacks()
	if t := c.LastMigration(); !t.IsZero() {
		ms := time.Since(t).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		ageMS = uint64(ms)
	}
	return enabled, proposals, migrations, rollbacks, ageMS
}

// recoverDurable restores the server's query topology from the
// durability directory: open and fold the catalog, then bring up the
// config's default query and every cataloged query, each recovering
// its own shards from checkpoint + WAL tail.
func (s *Server) recoverDurable(cfg Config) error {
	opts := cfg.Durable.WithDefaults()
	s.durable = opts
	s.catStats = &durable.Stats{}
	start := time.Now()
	cat, entries, auto, err := durable.OpenCatalog(opts, s.catStats)
	if err != nil {
		return fmt.Errorf("server: opening catalog: %w", err)
	}
	s.catalog = cat
	fail := func(err error) error {
		for name, q := range s.queries {
			q.close()
			delete(s.queries, name)
		}
		cat.Close()
		return err
	}
	if cfg.Pipeline.Engine.Plan != nil {
		q, err := s.newDurableQuery(DefaultQuery, cfg.Pipeline)
		if err != nil {
			return fail(fmt.Errorf("server: recovering default query: %w", err))
		}
		s.queries[DefaultQuery] = q
	}
	for _, e := range entries {
		if _, dup := s.queries[e.Name]; dup {
			// The catalog can only collide with the config default
			// (create rejects duplicate names); the config wins.
			continue
		}
		p, err := plan.Parse(e.Plan)
		if err != nil {
			return fail(fmt.Errorf("server: catalog entry %q: %w", e.Name, err))
		}
		qcfg := s.template
		qcfg.Engine.Plan = p
		qcfg.Engine.WindowSize = e.Window
		if qcfg.Engine.Strategy == nil {
			qcfg.Engine.Strategy = core.New()
		}
		q, err := s.newDurableQuery(e.Name, qcfg)
		if err != nil {
			return fail(fmt.Errorf("server: recovering query %q: %w", e.Name, err))
		}
		s.queries[e.Name] = q
	}
	// Autopilot state survives recovery: re-enable the controller of
	// every query whose last logged toggle was ON (no re-logging — the
	// catalog already says so).
	for name, on := range auto {
		if !on {
			continue
		}
		if q, ok := s.queries[name]; ok {
			if err := q.runner.StartAuto(s.autoCfg); err != nil {
				return fail(fmt.Errorf("server: restarting autopilot of %q: %w", name, err))
			}
		}
	}
	durable.MarkRecovery(s.catStats, start)
	return nil
}

// queryDir returns the named query's durability directory.
func (s *Server) queryDir(name string) string {
	return filepath.Join(s.durable.Dir, "q-"+name)
}

// newDurableQuery builds a query whose runtime persists under the
// server's durability root.
func (s *Server) newDurableQuery(name string, cfg pipeline.Config) (*query, error) {
	cfg.Durability = s.durable
	cfg.Durability.Dir = s.queryDir(name)
	return newQuery(name, cfg, s.bufSize, s.admCfg)
}

// validDurableName restricts durable query names to characters that
// are safe in a directory name on every platform.
func validDurableName(name string) bool {
	if name == "" || name == "." || name == ".." {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '.', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// Listen binds addr (e.g. "127.0.0.1:0") and starts accepting.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.acceptWG.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the bound address after Listen.
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Queries returns the hosted query names, sorted.
func (s *Server) Queries() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.queries))
	for name := range s.queries {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Subscribers returns the live subscriber count of the named query.
func (s *Server) Subscribers(name string) int {
	s.mu.Lock()
	q := s.queries[name]
	s.mu.Unlock()
	if q == nil {
		return 0
	}
	return q.subscribers()
}

// lookup resolves a query by name.
func (s *Server) lookup(name string) (*query, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.queries[name]
	if !ok {
		return nil, fmt.Errorf("no query %q", name)
	}
	return q, nil
}

// create starts a new named query from the server template. With
// durability on it is logged to the catalog before the OK: the command
// sequence is newQuery (validates everything and brings the runtime
// up), then AppendCreate (fsynced), then acknowledge — a crash between
// the two leaves an unacknowledged query that simply doesn't exist
// after restart.
func (s *Server) create(name string, windowSize int, p *plan.Plan) error {
	if name == "" || strings.ContainsAny(name, " \t") {
		return fmt.Errorf("bad query name %q", name)
	}
	if s.durable.Enabled() && !validDurableName(name) {
		return fmt.Errorf("bad query name %q: durable query names use [A-Za-z0-9._-] only", name)
	}
	cfg := s.template
	cfg.Engine.Plan = p
	cfg.Engine.WindowSize = windowSize
	if cfg.Engine.Strategy == nil {
		cfg.Engine.Strategy = core.New()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("server closed")
	}
	if _, dup := s.queries[name]; dup {
		return fmt.Errorf("query %q exists", name)
	}
	if s.durable.Enabled() {
		// A crash between a logged DROP and its directory removal can
		// leave stale state under this name; a fresh CREATE must start
		// empty, never resurrect it. (Recovery-time creation takes the
		// other branch in recoverDurable and keeps the directory.)
		if err := s.durable.FS.RemoveAll(s.queryDir(name)); err != nil {
			return fmt.Errorf("clearing stale state for %q: %w", name, err)
		}
		cfg.Durability = s.durable
		cfg.Durability.Dir = s.queryDir(name)
	}
	q, err := newQuery(name, cfg, s.bufSize, s.admCfg)
	if err != nil {
		return err
	}
	if s.catalog != nil {
		if err := s.catalog.AppendCreate(name, windowSize, p.String()); err != nil {
			q.close()
			return fmt.Errorf("logging CREATE: %w", err)
		}
	}
	s.queries[name] = q
	return nil
}

// drop stops and removes a named query. With durability on the DROP is
// logged to the catalog, then the query's directory is removed; a
// crash between the two is healed by the next CREATE of the same name
// (which clears the directory first). Dropping the config's default
// query only empties it: the config recreates it, fresh, on restart.
func (s *Server) drop(name string) error {
	s.mu.Lock()
	q, ok := s.queries[name]
	if ok {
		delete(s.queries, name)
	}
	cat := s.catalog
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("no query %q", name)
	}
	q.close()
	if cat != nil {
		if err := cat.AppendDrop(name); err != nil {
			return fmt.Errorf("logging DROP: %w", err)
		}
		if err := s.durable.FS.RemoveAll(s.queryDir(name)); err != nil {
			return fmt.Errorf("removing state of %q: %w", name, err)
		}
	}
	return nil
}

func (s *Server) acceptLoop() {
	defer s.acceptWG.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		// The connection cap is the outermost rung of the degradation
		// ladder: refuse with a retriable BUSY line instead of letting
		// goroutine and buffer costs grow unbounded. The rejected dial
		// is counted (conn_rejected) and never enters the conn map.
		if !s.adm.AcquireConn() {
			go func(c net.Conn) {
				c.SetWriteDeadline(time.Now().Add(time.Second))
				fmt.Fprintf(c, "ERR BUSY too many connections\n")
				c.Close()
			}(conn)
			continue
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			s.adm.ReleaseConn()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.connWG.Add(1)
		go s.handle(conn)
	}
}

// lockedWriter serializes whole-line writes from the command handler
// and the subscription streamers onto one connection. With a write
// timeout configured, every operation that may touch the socket (an
// explicit flush, or a buffered write spilling a full buffer) first
// arms a write deadline — so a consumer that stops reading can hold
// the write lock for at most the timeout before the write errors, the
// connection is closed, and both the streamer and the command loop
// unwind. Without the deadline a blocked subscriber would pin the
// lock and stall the same connection's feed acks forever.
type lockedWriter struct {
	mu      sync.Mutex
	w       *bufio.Writer
	conn    net.Conn
	timeout time.Duration
}

// writeLine buffers one line without flushing: the command loop
// flushes once per drained read buffer (just before it would block on
// the next read) so a pipelined burst of commands costs one write
// syscall for all its acks, and streamers flush when their channel
// runs dry.
func (lw *lockedWriter) writeLine(format string, args ...any) error {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	lw.armDeadline()
	_, err := fmt.Fprintf(lw.w, format+"\n", args...)
	if err != nil {
		lw.conn.Close()
	}
	return err
}

func (lw *lockedWriter) flush() error {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	lw.armDeadline()
	err := lw.w.Flush()
	if err != nil {
		// A timed-out or failed write leaves the protocol stream torn
		// mid-line; the connection is unusable either way. Closing it
		// here (not just in the goroutine that noticed) unblocks the
		// peer goroutine sharing the writer.
		lw.conn.Close()
	}
	return err
}

// armDeadline sets the per-write deadline; callers hold lw.mu.
func (lw *lockedWriter) armDeadline() {
	if lw.timeout > 0 {
		lw.conn.SetWriteDeadline(time.Now().Add(lw.timeout))
	}
}

// maxLineBytes caps one protocol line. A FEEDB line of maximal batch
// size fits comfortably; anything longer draws an ERR instead of
// killing the connection (the old Scanner died silently at its 64 KiB
// default token limit).
const maxLineBytes = 1 << 20

// maxCoalesce bounds how many consecutive buffered FEED lines fold
// into one FeedBatch, so one connection's burst cannot monopolize a
// shard queue slot arbitrarily.
const maxCoalesce = 512

var errLineTooLong = errors.New("line too long")

// readLine reads one \n-terminated line of at most maxLineBytes.
// An over-long line is discarded through its terminator and reported
// as errLineTooLong, leaving the stream positioned at the next line.
func readLine(br *bufio.Reader) (string, error) {
	var long []byte
	for {
		frag, err := br.ReadSlice('\n')
		if err == nil {
			if long == nil {
				return string(frag[:len(frag)-1]), nil
			}
			long = append(long, frag...)
			if len(long) > maxLineBytes {
				return "", errLineTooLong
			}
			return string(long[:len(long)-1]), nil
		}
		if err != bufio.ErrBufferFull {
			return "", err
		}
		long = append(long, frag...)
		if len(long) > maxLineBytes {
			for {
				if _, err := br.ReadSlice('\n'); err == nil {
					return "", errLineTooLong
				} else if err != bufio.ErrBufferFull {
					return "", err
				}
			}
		}
	}
}

// bufferedLine returns the next complete line already sitting in br's
// buffer, without consuming it, and whether one exists. Consuming it
// is the caller's Discard(n) of the returned length.
func bufferedLine(br *bufio.Reader) (string, int, bool) {
	buffered, _ := br.Peek(br.Buffered())
	nl := bytes.IndexByte(buffered, '\n')
	if nl < 0 {
		return "", 0, false
	}
	return string(buffered[:nl]), nl + 1, true
}

// splitQuery interprets the optional leading query name of a command:
// when the first field names a hosted query, it is consumed; otherwise
// the default query is addressed.
func (s *Server) splitQuery(rest string) (*query, string, error) {
	fields := strings.Fields(rest)
	if len(fields) > 0 {
		s.mu.Lock()
		q, ok := s.queries[fields[0]]
		s.mu.Unlock()
		if ok {
			return q, strings.Join(fields[1:], " "), nil
		}
	}
	q, err := s.lookup(DefaultQuery)
	if err != nil {
		return nil, "", fmt.Errorf("no default query; name one of %v", s.Queries())
	}
	return q, rest, nil
}

func (s *Server) handle(conn net.Conn) {
	defer s.connWG.Done()
	defer s.adm.ReleaseConn()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	lw := &lockedWriter{w: bufio.NewWriter(conn), conn: conn, timeout: s.writeTimeout}
	br := bufio.NewReaderSize(conn, 64<<10)
	var batch []workload.Event
	// Per-connection subscriptions: at most one per query.
	type sub struct {
		q  *query
		id int
	}
	var subs []sub
	var subWG sync.WaitGroup
	defer func() {
		for _, su := range subs {
			su.q.unsubscribe(su.id)
		}
		subWG.Wait()
	}()
	respond := func(err error) error {
		if err != nil {
			return lw.writeLine("ERR %v", err)
		}
		return lw.writeLine("OK")
	}
	for {
		if _, _, ok := bufferedLine(br); !ok {
			// About to block (no complete line buffered): everything
			// acknowledged so far goes out in one write.
			if err := lw.flush(); err != nil {
				return
			}
			if s.readTimeout > 0 {
				// The command read deadline arms only once a line has
				// started arriving: Peek blocks without a deadline (an
				// idle connection may sit forever), but after the first
				// byte the rest of the line must land within the
				// timeout — a half-open peer or a byte-trickling client
				// cannot pin the handler goroutine.
				if _, err := br.Peek(1); err != nil {
					return
				}
				conn.SetReadDeadline(time.Now().Add(s.readTimeout))
			}
		}
		line, rerr := readLine(br)
		if s.readTimeout > 0 {
			conn.SetReadDeadline(time.Time{})
		}
		if rerr == errLineTooLong {
			if lw.writeLine("ERR line longer than %d bytes", maxLineBytes) != nil {
				return
			}
			continue
		}
		if rerr != nil {
			return
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var werr error
		verb, rest, _ := strings.Cut(line, " ")
		if s.draining.Load() {
			// The drain fence: mutating commands are rejected retriably
			// (the client's BUSY backoff will land on the replacement
			// process after the rolling restart) while reads keep
			// answering so operators can watch the drain progress.
			switch strings.ToUpper(verb) {
			case "FEED", "FEEDB", "MIGRATE", "CREATE", "DROP", "CHECKPOINT", "AUTO":
				if respond(admission.Busy("draining")) != nil {
					return
				}
				continue
			}
		}
		switch strings.ToUpper(verb) {
		case "FEED", "FEEDB", "MIGRATE", "CREATE", "DROP":
			if !s.durable.Enabled() {
				s.walDisabled.Add(1)
			}
		}
		switch strings.ToUpper(verb) {
		case "FEED":
			q, args, err := s.splitQuery(rest)
			var ev workload.Event
			if err == nil {
				ev, err = parseFeedEvent(args)
			}
			if err == nil && !q.hasStream(ev.Stream) {
				err = fmt.Errorf("stream %d not in query %q", ev.Stream, q.name)
			}
			if err != nil {
				werr = respond(err)
				break
			}
			batch = append(batch[:0], ev)
			// Coalesce consecutive FEEDs to the same query already
			// sitting in the read buffer: the whole run becomes one
			// FeedBatch — one queue slot and, on a durable server, one
			// WAL frame — while the client still sees one OK per line.
			acks := 1
			for len(batch) < maxCoalesce {
				next, consume, ok := bufferedLine(br)
				if !ok {
					break
				}
				v, r, _ := strings.Cut(strings.TrimSpace(next), " ")
				if !strings.EqualFold(v, "FEED") {
					break
				}
				q2, args2, err2 := s.splitQuery(r)
				if err2 != nil || q2 != q {
					break
				}
				ev2, err2 := parseFeedEvent(args2)
				if err2 != nil || !q.hasStream(ev2.Stream) {
					break
				}
				br.Discard(consume)
				batch = append(batch, ev2)
				acks++
			}
			if acks > 1 && !s.durable.Enabled() {
				s.walDisabled.Add(uint64(acks - 1)) // the first FEED is counted above
			}
			ferr := q.runner.FeedBatch(batch)
			for i := 0; i < acks && werr == nil; i++ {
				werr = respond(ferr)
			}
		case "FEEDB":
			q, args, err := s.splitQuery(rest)
			if err == nil {
				var evs []workload.Event
				if evs, err = parseFeedBatch(args); err == nil {
					if len(evs) > 0 && !q.hasStream(evs[0].Stream) {
						err = fmt.Errorf("stream %d not in query %q", evs[0].Stream, q.name)
					} else {
						err = q.runner.FeedBatch(evs)
					}
				}
			}
			werr = respond(err)
		case "MIGRATE":
			q, args, err := s.splitQuery(rest)
			if err == nil {
				var p *plan.Plan
				if p, err = plan.Parse(args); err == nil {
					err = q.runner.Migrate(p)
				}
			}
			werr = respond(err)
		case "SUBSCRIBE":
			q, _, err := s.splitQuery(rest)
			if err != nil {
				werr = respond(err)
				break
			}
			already := false
			for _, su := range subs {
				if su.q == q {
					already = true
				}
			}
			if already {
				werr = respond(fmt.Errorf("already subscribed to %q", q.name))
				break
			}
			id, ch := q.subscribe()
			subs = append(subs, sub{q: q, id: id})
			werr = respond(nil)
			subWG.Add(1)
			go func() {
				defer subWG.Done()
				for l := range ch {
					if err := lw.writeLine("%s", l); err != nil {
						return
					}
					// Flush when the channel runs dry: bursts batch
					// into one write, a lone result still goes out
					// immediately.
					if len(ch) == 0 {
						if err := lw.flush(); err != nil {
							return
						}
					}
				}
				lw.flush()
			}()
		case "AUTO":
			action, qname, _ := strings.Cut(strings.TrimSpace(rest), " ")
			q, leftover, err := s.splitQuery(qname)
			if err != nil {
				werr = respond(err)
				break
			}
			if leftover != "" {
				// Unlike FEED, AUTO takes no payload after the query name,
				// so a leftover token is a typo'd name — don't let it fall
				// through to the default query.
				werr = respond(fmt.Errorf("no query %q", leftover))
				break
			}
			switch strings.ToUpper(action) {
			case "ON":
				if !s.durable.Enabled() {
					s.walDisabled.Add(1)
				}
				werr = respond(s.autoOn(q))
			case "OFF":
				if !s.durable.Enabled() {
					s.walDisabled.Add(1)
				}
				werr = respond(s.autoOff(q))
			case "STATUS":
				en, pr, mg, rb, age := autoStats(q)
				werr = lw.writeLine("AUTO query=%s enabled=%d proposals=%d migrations=%d rollbacks=%d last_migration_age_ms=%d",
					q.name, en, pr, mg, rb, age)
			default:
				werr = respond(fmt.Errorf("AUTO wants ON, OFF, or STATUS"))
			}
		case "STATS":
			q, _, err := s.splitQuery(rest)
			if err != nil {
				werr = respond(err)
				break
			}
			m, merr := q.runner.Metrics()
			if merr != nil {
				werr = respond(merr)
				break
			}
			o := q.obs.Snapshot()
			ds := q.runner.DurableStats()
			en, pr, mg, rb, age := autoStats(q)
			stateBytes, sberr := q.runner.StateBytes()
			if sberr != nil {
				werr = respond(sberr)
				break
			}
			spill, _ := q.runner.SpillStats()
			adm := q.adm.Snapshot()
			draining := 0
			if s.draining.Load() {
				draining = 1
			}
			werr = lw.writeLine("STATS input=%d output=%d transitions=%d completions=%d shed=%d feed_p50_ns=%d feed_p99_ns=%d episodes=%d subs_dropped=%d wal_appends=%d wal_fsync_p99_ns=%d recovered_events=%d batch_fill_p50=%d batch_flushes=%d state_bytes=%d spill_faults=%d auto_enabled=%d auto_proposals=%d auto_migrations=%d auto_rollbacks=%d last_migration_age_ms=%d admission_shed=%d deadline_shed=%d rejected=%d rejected_batches=%d inflight_bytes=%d draining=%d",
				m.Input, m.Output, m.Transitions, m.Completions, q.runner.Shed(),
				o.Feed.Quantile(0.50), o.Feed.Quantile(0.99), o.Completion.Count, q.dropped(),
				ds.Appends, o.WALFsync.Quantile(0.99), ds.RecoveredEvents,
				uint64(o.BatchFill.Quantile(0.50)), o.BatchFill.Count,
				stateBytes, spill.Faults,
				en, pr, mg, rb, age,
				adm.ShedTuples, adm.DeadlineShedTuples, adm.RejectedTuples, adm.RejectedBatches,
				adm.InflightBytes, draining)
		case "PLAN":
			q, _, err := s.splitQuery(rest)
			if err != nil {
				werr = respond(err)
				break
			}
			p, perr := q.runner.Plan()
			if perr != nil {
				werr = respond(perr)
				break
			}
			werr = lw.writeLine("PLAN %s", p)
		case "CHECKPOINT":
			q, args, err := s.splitQuery(rest)
			if err != nil {
				werr = respond(err)
				break
			}
			path := strings.TrimSpace(args)
			if path == "" {
				werr = respond(fmt.Errorf("CHECKPOINT wants <path>"))
				break
			}
			werr = respond(q.checkpoint(path))
		case "CREATE":
			fields := strings.Fields(rest)
			if len(fields) < 3 {
				werr = respond(fmt.Errorf("CREATE wants <name> <window> <plan>"))
				break
			}
			win, err := strconv.Atoi(fields[1])
			if err != nil || win <= 0 {
				werr = respond(fmt.Errorf("bad window %q", fields[1]))
				break
			}
			p, err := plan.Parse(strings.Join(fields[2:], " "))
			if err == nil {
				err = s.create(fields[0], win, p)
			}
			werr = respond(err)
		case "DROP":
			// Dropping a query this connection subscribes to closes
			// that subscription channel; its streamer exits cleanly.
			werr = respond(s.drop(strings.TrimSpace(rest)))
		case "LIST":
			werr = lw.writeLine("QUERIES %s", strings.Join(s.Queries(), " "))
		case "QUIT":
			lw.writeLine("OK")
			lw.flush()
			return
		default:
			werr = lw.writeLine("ERR unknown command %q", verb)
		}
		if werr != nil {
			return
		}
	}
}

func parseStream(field string) (tuple.StreamID, error) {
	stream, err := strconv.Atoi(field)
	if err != nil || stream < 0 || stream >= tuple.MaxStreams {
		return 0, fmt.Errorf("bad stream %q", field)
	}
	return tuple.StreamID(stream), nil
}

func parseFeedEvent(rest string) (workload.Event, error) {
	fields := strings.Fields(rest)
	if len(fields) != 2 {
		return workload.Event{}, fmt.Errorf("FEED wants [query] <stream> <key>")
	}
	stream, err := parseStream(fields[0])
	if err != nil {
		return workload.Event{}, err
	}
	key, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return workload.Event{}, fmt.Errorf("bad key %q", fields[1])
	}
	return workload.Event{Stream: stream, Key: tuple.Value(key)}, nil
}

// parseFeedBatch parses the tail of "FEEDB [query] <stream> <key>
// [<key>...]": one batch of same-stream tuples in line order.
func parseFeedBatch(rest string) ([]workload.Event, error) {
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return nil, fmt.Errorf("FEEDB wants [query] <stream> <key> [<key>...]")
	}
	stream, err := parseStream(fields[0])
	if err != nil {
		return nil, err
	}
	evs := make([]workload.Event, len(fields)-1)
	for i, f := range fields[1:] {
		key, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad key %q", f)
		}
		evs[i] = workload.Event{Stream: stream, Key: tuple.Value(key)}
	}
	return evs, nil
}

// Close stops accepting, closes every connection, and shuts all
// queries down.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	queries := make([]*query, 0, len(s.queries))
	for name, q := range s.queries {
		queries = append(queries, q)
		delete(s.queries, name)
	}
	telemetry := s.telemetry
	s.mu.Unlock()
	if telemetry != nil {
		telemetry.Close()
	}
	if s.ln != nil {
		s.ln.Close()
		s.acceptWG.Wait()
	}
	s.connWG.Wait()
	for _, q := range queries {
		q.close()
	}
	if s.catalog != nil {
		s.catalog.Close()
	}
}

// Durable reports whether the server write-ahead logs mutations.
func (s *Server) Durable() bool { return s.durable.Enabled() }

// WALDisabledMutations returns the number of mutating commands
// executed while durability was off.
func (s *Server) WALDisabledMutations() uint64 { return s.walDisabled.Load() }

// DurableStats aggregates the durability counters across the catalog
// and every hosted query. Zero when durability is off.
func (s *Server) DurableStats() durable.StatsSnapshot {
	total := s.catStats.Snapshot()
	for _, q := range s.sortedQueries() {
		total = total.Add(q.runner.DurableStats())
	}
	return total
}
