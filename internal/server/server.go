// Package server exposes running continuous queries over a TCP line
// protocol, so external producers can feed streams and external
// consumers can subscribe to results — the shape a deployed DSMS node
// takes. The server hosts any number of named queries (each an
// AsyncQuery runner); plan transitions arrive as protocol commands and
// migrate the live queries under the configured strategy (JISC by
// default: no halt, steady output to subscribers).
//
// Protocol (one command per line, ASCII). Commands that omit the query
// name address the default query:
//
//	FEED [query] <stream> <key>      ingest a tuple
//	MIGRATE [query] <plan>           transition, e.g. MIGRATE ((0 2) 1)
//	SUBSCRIBE [query]                stream results on this connection
//	STATS [query]                    one-line counters
//	PLAN [query]                     current plan
//	CHECKPOINT [query] <path>        write a checkpoint (server-local)
//	CREATE <query> <window> <plan>   start a new named query
//	DROP <query>                     stop and remove a named query
//	LIST                             names of the hosted queries
//	QUIT                             close the connection
//
// Responses: "OK", "ERR <msg>", "STATS <...>", "PLAN <plan>",
// "QUERIES <names...>"; streamed results are "RESULT <key>
// <fingerprint>" and "RETRACT <key> <fingerprint>" lines. Subscribers
// with stalled connections are disconnected rather than allowed to
// block a query; every such drop is counted (subs_dropped) and traced.
//
// The STATS response is one line of space-separated key=value fields
// (all unsigned decimal, unknown fields must be ignored by clients):
//
//	input/output/transitions/completions/shed   lifetime counters
//	feed_p50_ns, feed_p99_ns                    per-tuple feed-latency
//	                                            quantiles (sampled;
//	                                            0 until samples exist)
//	episodes                                    completion episodes run
//	subs_dropped                                subscribers dropped for
//	                                            falling behind
//
// ServeTelemetry additionally exposes HTTP observability (/metrics
// Prometheus text, /trace JSON event dump, /healthz, /debug/pprof/) —
// see its method documentation.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"jisc/internal/core"
	"jisc/internal/pipeline"
	"jisc/internal/plan"
	"jisc/internal/tuple"
	"jisc/internal/workload"
)

// Config parameterizes a Server.
type Config struct {
	// Pipeline configures the default query's runtime and serves as
	// the template for CREATEd queries (strategy, queue size,
	// overflow policy, shard count). Setting its Shards field above 1
	// hash-partitions every hosted query across that many worker
	// shards; CHECKPOINT then writes one file per shard
	// (<path>.0 … <path>.N-1). Its Engine.Output is owned by the
	// server and must be nil. Engine.Plan may be nil to start the
	// server with no default query (CREATE adds queries at runtime).
	Pipeline pipeline.Config
	// SubscriberBuffer is the per-subscriber line buffer (default
	// 1024); a subscriber that falls this far behind is dropped.
	SubscriberBuffer int
}

// Server hosts named continuous queries over TCP.
type Server struct {
	template pipeline.Config
	bufSize  int
	ln       net.Listener

	mu          sync.Mutex
	queries     map[string]*query
	conns       map[net.Conn]struct{}
	closed      bool
	telemetry   *http.Server
	telemetryLn net.Listener
	connWG      sync.WaitGroup
	acceptWG    sync.WaitGroup
}

// New builds a server and starts the default query (when the config
// carries a plan). Call Listen to accept connections.
func New(cfg Config) (*Server, error) {
	if cfg.Pipeline.Engine.Output != nil {
		return nil, errors.New("server: Engine.Output is owned by the server")
	}
	if cfg.SubscriberBuffer == 0 {
		cfg.SubscriberBuffer = 1024
	}
	if cfg.SubscriberBuffer < 0 {
		return nil, fmt.Errorf("server: negative subscriber buffer")
	}
	s := &Server{
		template: cfg.Pipeline,
		bufSize:  cfg.SubscriberBuffer,
		queries:  make(map[string]*query),
		conns:    make(map[net.Conn]struct{}),
	}
	if cfg.Pipeline.Engine.Plan != nil {
		q, err := newQuery(DefaultQuery, cfg.Pipeline, s.bufSize)
		if err != nil {
			return nil, err
		}
		s.queries[DefaultQuery] = q
	}
	return s, nil
}

// Listen binds addr (e.g. "127.0.0.1:0") and starts accepting.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.acceptWG.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the bound address after Listen.
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Queries returns the hosted query names, sorted.
func (s *Server) Queries() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.queries))
	for name := range s.queries {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Subscribers returns the live subscriber count of the named query.
func (s *Server) Subscribers(name string) int {
	s.mu.Lock()
	q := s.queries[name]
	s.mu.Unlock()
	if q == nil {
		return 0
	}
	return q.subscribers()
}

// lookup resolves a query by name.
func (s *Server) lookup(name string) (*query, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.queries[name]
	if !ok {
		return nil, fmt.Errorf("no query %q", name)
	}
	return q, nil
}

// create starts a new named query from the server template.
func (s *Server) create(name string, windowSize int, p *plan.Plan) error {
	if name == "" || strings.ContainsAny(name, " \t") {
		return fmt.Errorf("bad query name %q", name)
	}
	cfg := s.template
	cfg.Engine.Plan = p
	cfg.Engine.WindowSize = windowSize
	if cfg.Engine.Strategy == nil {
		cfg.Engine.Strategy = core.New()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("server closed")
	}
	if _, dup := s.queries[name]; dup {
		return fmt.Errorf("query %q exists", name)
	}
	q, err := newQuery(name, cfg, s.bufSize)
	if err != nil {
		return err
	}
	s.queries[name] = q
	return nil
}

// drop stops and removes a named query.
func (s *Server) drop(name string) error {
	s.mu.Lock()
	q, ok := s.queries[name]
	if ok {
		delete(s.queries, name)
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("no query %q", name)
	}
	q.close()
	return nil
}

func (s *Server) acceptLoop() {
	defer s.acceptWG.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.connWG.Add(1)
		go s.handle(conn)
	}
}

// lockedWriter serializes whole-line writes from the command handler
// and the subscription streamers onto one connection.
type lockedWriter struct {
	mu sync.Mutex
	w  *bufio.Writer
}

func (lw *lockedWriter) writeLine(format string, args ...any) error {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	if _, err := fmt.Fprintf(lw.w, format+"\n", args...); err != nil {
		return err
	}
	return lw.w.Flush()
}

// splitQuery interprets the optional leading query name of a command:
// when the first field names a hosted query, it is consumed; otherwise
// the default query is addressed.
func (s *Server) splitQuery(rest string) (*query, string, error) {
	fields := strings.Fields(rest)
	if len(fields) > 0 {
		s.mu.Lock()
		q, ok := s.queries[fields[0]]
		s.mu.Unlock()
		if ok {
			return q, strings.Join(fields[1:], " "), nil
		}
	}
	q, err := s.lookup(DefaultQuery)
	if err != nil {
		return nil, "", fmt.Errorf("no default query; name one of %v", s.Queries())
	}
	return q, rest, nil
}

func (s *Server) handle(conn net.Conn) {
	defer s.connWG.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	lw := &lockedWriter{w: bufio.NewWriter(conn)}
	sc := bufio.NewScanner(conn)
	// Per-connection subscriptions: at most one per query.
	type sub struct {
		q  *query
		id int
	}
	var subs []sub
	var subWG sync.WaitGroup
	defer func() {
		for _, su := range subs {
			su.q.unsubscribe(su.id)
		}
		subWG.Wait()
	}()
	respond := func(err error) error {
		if err != nil {
			return lw.writeLine("ERR %v", err)
		}
		return lw.writeLine("OK")
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var werr error
		verb, rest, _ := strings.Cut(line, " ")
		switch strings.ToUpper(verb) {
		case "FEED":
			q, args, err := s.splitQuery(rest)
			if err == nil {
				err = feed(q, args)
			}
			werr = respond(err)
		case "MIGRATE":
			q, args, err := s.splitQuery(rest)
			if err == nil {
				var p *plan.Plan
				if p, err = plan.Parse(args); err == nil {
					err = q.runner.Migrate(p)
				}
			}
			werr = respond(err)
		case "SUBSCRIBE":
			q, _, err := s.splitQuery(rest)
			if err != nil {
				werr = respond(err)
				break
			}
			already := false
			for _, su := range subs {
				if su.q == q {
					already = true
				}
			}
			if already {
				werr = respond(fmt.Errorf("already subscribed to %q", q.name))
				break
			}
			id, ch := q.subscribe()
			subs = append(subs, sub{q: q, id: id})
			werr = respond(nil)
			subWG.Add(1)
			go func() {
				defer subWG.Done()
				for l := range ch {
					if err := lw.writeLine("%s", l); err != nil {
						return
					}
				}
			}()
		case "STATS":
			q, _, err := s.splitQuery(rest)
			if err != nil {
				werr = respond(err)
				break
			}
			m, merr := q.runner.Metrics()
			if merr != nil {
				werr = respond(merr)
				break
			}
			o := q.obs.Snapshot()
			werr = lw.writeLine("STATS input=%d output=%d transitions=%d completions=%d shed=%d feed_p50_ns=%d feed_p99_ns=%d episodes=%d subs_dropped=%d",
				m.Input, m.Output, m.Transitions, m.Completions, q.runner.Shed(),
				o.Feed.Quantile(0.50), o.Feed.Quantile(0.99), o.Completion.Count, q.dropped())
		case "PLAN":
			q, _, err := s.splitQuery(rest)
			if err != nil {
				werr = respond(err)
				break
			}
			p, perr := q.runner.Plan()
			if perr != nil {
				werr = respond(perr)
				break
			}
			werr = lw.writeLine("PLAN %s", p)
		case "CHECKPOINT":
			q, args, err := s.splitQuery(rest)
			if err != nil {
				werr = respond(err)
				break
			}
			path := strings.TrimSpace(args)
			if path == "" {
				werr = respond(fmt.Errorf("CHECKPOINT wants <path>"))
				break
			}
			werr = respond(q.checkpoint(path))
		case "CREATE":
			fields := strings.Fields(rest)
			if len(fields) < 3 {
				werr = respond(fmt.Errorf("CREATE wants <name> <window> <plan>"))
				break
			}
			win, err := strconv.Atoi(fields[1])
			if err != nil || win <= 0 {
				werr = respond(fmt.Errorf("bad window %q", fields[1]))
				break
			}
			p, err := plan.Parse(strings.Join(fields[2:], " "))
			if err == nil {
				err = s.create(fields[0], win, p)
			}
			werr = respond(err)
		case "DROP":
			// Dropping a query this connection subscribes to closes
			// that subscription channel; its streamer exits cleanly.
			werr = respond(s.drop(strings.TrimSpace(rest)))
		case "LIST":
			werr = lw.writeLine("QUERIES %s", strings.Join(s.Queries(), " "))
		case "QUIT":
			lw.writeLine("OK")
			return
		default:
			werr = lw.writeLine("ERR unknown command %q", verb)
		}
		if werr != nil {
			return
		}
	}
}

func feed(q *query, rest string) error {
	fields := strings.Fields(rest)
	if len(fields) != 2 {
		return fmt.Errorf("FEED wants [query] <stream> <key>")
	}
	stream, err := strconv.Atoi(fields[0])
	if err != nil || stream < 0 || stream >= tuple.MaxStreams {
		return fmt.Errorf("bad stream %q", fields[0])
	}
	key, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return fmt.Errorf("bad key %q", fields[1])
	}
	return q.runner.Feed(workload.Event{
		Stream: tuple.StreamID(stream),
		Key:    tuple.Value(key),
	})
}

// Close stops accepting, closes every connection, and shuts all
// queries down.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	queries := make([]*query, 0, len(s.queries))
	for name, q := range s.queries {
		queries = append(queries, q)
		delete(s.queries, name)
	}
	telemetry := s.telemetry
	s.mu.Unlock()
	if telemetry != nil {
		telemetry.Close()
	}
	if s.ln != nil {
		s.ln.Close()
		s.acceptWG.Wait()
	}
	s.connWG.Wait()
	for _, q := range queries {
		q.close()
	}
}
