package server

import (
	"bufio"
	"net"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"jisc/internal/core"
	"jisc/internal/engine"
	"jisc/internal/pipeline"
	"jisc/internal/plan"
)

// FuzzServerCommand throws arbitrary bytes at the full line protocol.
// The contract under fuzz: the server never panics (a panic in a
// handler fails the in-process test), never leaks a goroutine past
// Close, and always resyncs — after any garbage, a fresh connection
// gets a well-formed answer to a well-formed command.
//
// CHECKPOINT is the one verb with a filesystem side effect, so fuzzed
// checkpoint lines have their path argument confined to the test's
// temp directory before they reach the wire.
func FuzzServerCommand(f *testing.F) {
	// Seed corpus: every protocol shape the README demonstrates, plus
	// framing edge cases the parser must survive.
	for _, seed := range []string{
		"FEED 0 7\nFEED 1 7\nFEED 2 7\nMIGRATE ((0 2) 1)\nSTATS\n",
		"FEEDB 0 7 8 9\nFEEDB 1 7 8 9\nFEEDB 2 7 8 9\nSTATS\n",
		"AUTO STATUS\nPLAN\n",
		"AUTO ON\nAUTO OFF\n",
		"CREATE pairs 50 (0 1)\nFEED pairs 0 3\nFEED pairs 1 3\nSTATS pairs\nDROP pairs\nLIST\n",
		"SUBSCRIBE\nFEED 0 5\nFEED 1 5\nFEED 2 5\n",
		"CHECKPOINT /tmp/x.ckpt\n",
		"QUIT\n",
		"STATS\nPLAN\nLIST\n",
		"MIGRATE 2,0,1\nPLAN\n",
		"",
		"\n\n\n",
		"FEED\nFEED x\nFEED 0 x\nFEED 99 1\nBOGUS\n",
		"FEEDB 0\nFEEDB\nMIGRATE (((\n",
		"CREATE q 0 0,1\nCREATE 50 (0 1)\nDROP nosuch\n",
		"\x00\x01\x02\nFEED 0 1\n",
		strings.Repeat("A", 2000) + "\nSTATS\n",
		"FEED 0 1 trailing garbage here\nSUBSCRIBE nosuchquery\n",
	} {
		f.Add([]byte(seed))
	}

	ckptDir := f.TempDir()
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<14 {
			t.Skip("oversized input")
		}
		base := runtime.NumGoroutine()
		s, err := New(Config{Pipeline: pipeline.Config{Engine: engine.Config{
			Plan:       plan.MustLeftDeep(0, 1, 2),
			WindowSize: 32,
			Strategy:   core.New(),
		}}})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		defer s.Close()

		conn, err := net.Dial("tcp", s.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		conn.SetDeadline(time.Now().Add(10 * time.Second))

		// Drain whatever the server says in the background so its
		// writer never blocks on a full socket.
		go func() {
			r := bufio.NewReader(conn)
			for {
				if _, err := r.ReadString('\n'); err != nil {
					return
				}
			}
		}()

		for _, line := range strings.SplitAfter(string(data), "\n") {
			if line == "" {
				continue
			}
			out := confineCheckpoint(line, ckptDir)
			if !strings.HasSuffix(out, "\n") {
				out += "\n" // an unterminated tail would just sit in the server's buffer
			}
			if _, err := conn.Write([]byte(out)); err != nil {
				break // server closed us (QUIT, oversized line): legal
			}
		}
		conn.Close()

		// Resync proof: a fresh connection speaks the protocol cleanly,
		// whatever the garbage did.
		probe, err := net.Dial("tcp", s.Addr().String())
		if err != nil {
			t.Fatalf("server stopped accepting after fuzz input %q: %v", data, err)
		}
		defer probe.Close()
		probe.SetDeadline(time.Now().Add(10 * time.Second))
		if _, err := probe.Write([]byte("PLAN\n")); err != nil {
			t.Fatalf("probe write: %v", err)
		}
		resp, err := bufio.NewReader(probe).ReadString('\n')
		if err != nil {
			t.Fatalf("no response to PLAN after fuzz input %q: %v", data, err)
		}
		if !strings.HasPrefix(resp, "PLAN ") {
			t.Fatalf("PLAN answered %q after fuzz input %q", resp, data)
		}
		// Goroutine hygiene: after Close every handler, subscriber
		// pump, and worker must unwind — a per-iteration leak would
		// compound across the fuzz run and OOM it anyway, so fail
		// fast and name the stacks.
		s.Close()
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > base {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				t.Fatalf("goroutine leak after input %q: %d live, baseline %d\n%s",
					data, runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
			}
			time.Sleep(5 * time.Millisecond)
		}
	})
}

// confineCheckpoint rewrites any line whose verb is CHECKPOINT so its
// path argument lands inside dir — fuzzed inputs must not write
// outside the test sandbox.
func confineCheckpoint(line, dir string) string {
	fields := strings.Fields(line)
	if len(fields) == 0 || !strings.EqualFold(fields[0], "CHECKPOINT") {
		return line
	}
	return "CHECKPOINT " + filepath.Join(dir, "fuzz.ckpt") + "\n"
}
