package server

import (
	"strings"
	"testing"
	"time"

	"jisc/internal/adaptive"
	"jisc/internal/core"
	"jisc/internal/engine"
	"jisc/internal/pipeline"
	"jisc/internal/plan"
)

func TestServerAutoCommand(t *testing.T) {
	s := newTestServer(t)
	c := dial(t, s)
	status := c.cmd(t, "AUTO STATUS")
	if !strings.HasPrefix(status, "AUTO query=default ") || !strings.Contains(status, "enabled=0") {
		t.Fatalf("initial AUTO STATUS = %q", status)
	}
	if resp := c.cmd(t, "AUTO ON"); resp != "OK" {
		t.Fatalf("AUTO ON -> %s", resp)
	}
	if resp := c.cmd(t, "AUTO ON"); resp != "OK" { // idempotent
		t.Fatalf("second AUTO ON -> %s", resp)
	}
	status = c.cmd(t, "AUTO STATUS")
	for _, want := range []string{"enabled=1", "proposals=", "migrations=", "rollbacks=", "last_migration_age_ms="} {
		if !strings.Contains(status, want) {
			t.Fatalf("AUTO STATUS %q missing %q", status, want)
		}
	}
	stats := c.cmd(t, "STATS")
	if got := statField(t, stats, "auto_enabled"); got != "1" {
		t.Fatalf("STATS auto_enabled = %s with the autopilot on", got)
	}
	if got := statField(t, stats, "last_migration_age_ms"); got != "0" {
		t.Fatalf("last_migration_age_ms = %s before any migration, want 0", got)
	}
	if resp := c.cmd(t, "AUTO OFF"); resp != "OK" {
		t.Fatalf("AUTO OFF -> %s", resp)
	}
	if got := statField(t, c.cmd(t, "STATS"), "auto_enabled"); got != "0" {
		t.Fatalf("STATS auto_enabled = %s after AUTO OFF", got)
	}
	if resp := c.cmd(t, "AUTO FLIP"); !strings.HasPrefix(resp, "ERR ") {
		t.Fatalf("AUTO FLIP -> %q, want an error", resp)
	}
	if resp := c.cmd(t, "AUTO STATUS nosuch"); !strings.HasPrefix(resp, "ERR ") {
		t.Fatalf("AUTO STATUS nosuch -> %q, want an error", resp)
	}
	// ON and OFF mutate autopilot state; on a non-durable server both
	// count as unlogged mutations, STATUS does not.
	if got := s.WALDisabledMutations(); got != 3 {
		t.Fatalf("WALDisabledMutations = %d after ON+ON+OFF, want 3", got)
	}
}

// TestServerAutoStartFlag covers cmd/jiscd's -auto path: the autopilot
// is live on the default query before the first connection.
func TestServerAutoStartFlag(t *testing.T) {
	s, err := New(Config{
		Pipeline: pipeline.Config{Engine: engine.Config{
			Plan:       plan.MustLeftDeep(0, 1, 2),
			WindowSize: 100,
			Strategy:   core.New(),
		}},
		Adaptive:  adaptive.Config{Interval: time.Millisecond},
		AutoStart: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	c := dial(t, s)
	if got := statField(t, c.cmd(t, "STATS"), "auto_enabled"); got != "1" {
		t.Fatalf("auto_enabled = %s on an AutoStart server, want 1", got)
	}

	// AutoStart without a default query cannot work.
	if _, err := New(Config{
		Pipeline:  pipeline.Config{Engine: engine.Config{Strategy: core.New()}},
		AutoStart: true,
	}); err == nil {
		t.Fatal("AutoStart accepted with no default query")
	}
}

// TestServerAutoSurvivesRestart: AUTO ON is a logged mutation — a
// durable server that crashes after acknowledging it must come back
// with the autopilot running, and after AUTO OFF it must stay off.
func TestServerAutoSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s := startDurableServer(t, dir)
	c := dial(t, s)
	if resp := c.cmd(t, "AUTO ON"); resp != "OK" {
		t.Fatalf("AUTO ON -> %s", resp)
	}
	if resp := c.cmd(t, "CREATE pairs 50 (0 1)"); resp != "OK" {
		t.Fatalf("CREATE -> %s", resp)
	}
	if resp := c.cmd(t, "AUTO ON pairs"); resp != "OK" {
		t.Fatalf("AUTO ON pairs -> %s", resp)
	}
	if resp := c.cmd(t, "AUTO OFF pairs"); resp != "OK" {
		t.Fatalf("AUTO OFF pairs -> %s", resp)
	}
	s.Close()

	s2 := startDurableServer(t, dir)
	c2 := dial(t, s2)
	if got := statField(t, c2.cmd(t, "STATS"), "auto_enabled"); got != "1" {
		t.Fatal("default query's autopilot did not survive the restart")
	}
	if got := statField(t, c2.cmd(t, "STATS pairs"), "auto_enabled"); got != "0" {
		t.Fatal("pairs' autopilot resurrected despite AUTO OFF")
	}
	// A dropped query takes its logged toggle with it.
	if resp := c2.cmd(t, "DROP default"); resp != "OK" {
		t.Fatalf("DROP default -> %s", resp)
	}
	s2.Close()

	s3 := startDurableServer(t, dir)
	defer s3.Close()
	c3 := dial(t, s3)
	if resp := c3.cmd(t, "AUTO STATUS pairs"); !strings.Contains(resp, "enabled=0") {
		t.Fatalf("AUTO STATUS pairs after restart = %q", resp)
	}
}

func TestTelemetryAutoSeries(t *testing.T) {
	s := newTestServer(t)
	if err := s.ServeTelemetry("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	c := dial(t, s)
	if resp := c.cmd(t, "AUTO ON"); resp != "OK" {
		t.Fatalf("AUTO ON -> %s", resp)
	}
	m := scrape(t, s, "/metrics")
	for _, want := range []string{
		`jisc_auto_enabled{query="default"} 1`,
		`jisc_auto_proposals_total{query="default"}`,
		`jisc_auto_migrations_total{query="default"} 0`,
		`jisc_auto_rollbacks_total{query="default"} 0`,
		`jisc_auto_last_migration_seconds{query="default"} 0`,
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if resp := c.cmd(t, "AUTO OFF"); resp != "OK" {
		t.Fatalf("AUTO OFF -> %s", resp)
	}
	if !strings.Contains(scrape(t, s, "/metrics"), `jisc_auto_enabled{query="default"} 0`) {
		t.Error("jisc_auto_enabled did not drop to 0 after AUTO OFF")
	}
}

func TestClientParsesAutoStats(t *testing.T) {
	st, err := parseStats("STATS input=5 auto_enabled=1 auto_proposals=7 auto_migrations=2 auto_rollbacks=1 last_migration_age_ms=1500")
	if err != nil {
		t.Fatal(err)
	}
	if st.AutoEnabled != 1 || st.AutoProposals != 7 || st.AutoMigrations != 2 || st.AutoRollbacks != 1 || st.LastMigrationAgeMS != 1500 {
		t.Fatalf("parsed %+v", st)
	}
}
