package server

import (
	"fmt"
	"os"
	"sync"

	"jisc/internal/engine"
	"jisc/internal/pipeline"
)

// query is one named continuous query hosted by the server: a runner
// plus its subscriber set.
type query struct {
	name   string
	runner *pipeline.Runner

	mu      sync.Mutex
	subs    map[int]chan string
	nextSub int
	bufSize int
}

func newQuery(name string, cfg pipeline.Config, bufSize int) (*query, error) {
	q := &query{name: name, subs: make(map[int]chan string), bufSize: bufSize}
	cfg.Engine.Output = q.broadcast
	r, err := pipeline.New(cfg)
	if err != nil {
		return nil, err
	}
	q.runner = r
	return q, nil
}

// broadcast fans one result out to the query's subscribers; it runs on
// the query's worker goroutine and must not block, so stalled
// subscribers are dropped.
func (q *query) broadcast(d engine.Delta) {
	verb := "RESULT"
	if d.Retraction {
		verb = "RETRACT"
	}
	line := fmt.Sprintf("%s %d %s", verb, d.Tuple.Key, d.Tuple.Fingerprint())
	q.mu.Lock()
	for id, ch := range q.subs {
		select {
		case ch <- line:
		default:
			close(ch)
			delete(q.subs, id)
		}
	}
	q.mu.Unlock()
}

func (q *query) subscribe() (int, chan string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	id := q.nextSub
	q.nextSub++
	ch := make(chan string, q.bufSize)
	q.subs[id] = ch
	return id, ch
}

func (q *query) unsubscribe(id int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if ch, ok := q.subs[id]; ok {
		close(ch)
		delete(q.subs, id)
	}
}

func (q *query) subscribers() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.subs)
}

func (q *query) checkpoint(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := q.runner.Checkpoint(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (q *query) close() {
	q.runner.Close()
	q.mu.Lock()
	for id, ch := range q.subs {
		close(ch)
		delete(q.subs, id)
	}
	q.mu.Unlock()
}

// DefaultQuery is the name implicit commands address.
const DefaultQuery = "default"
