package server

import (
	"bytes"
	"fmt"
	"io"
	"path/filepath"
	"sync"
	"sync/atomic"

	"jisc/internal/admission"
	"jisc/internal/durable"
	"jisc/internal/engine"
	"jisc/internal/obs"
	"jisc/internal/pipeline"
	"jisc/internal/runtime"
	"jisc/internal/tuple"
)

// query is one named continuous query hosted by the server: a sharded
// runtime plus its subscriber set and observability bundle.
type query struct {
	name   string
	runner *runtime.Runtime
	// adm is the query's admission controller (rate limit, in-flight
	// budget, feed deadline, drain fence), nil when the server runs
	// without admission limits. The runtime shares the same pointer;
	// STATS and /metrics read its counters here.
	adm *admission.Controller
	// obs carries the query's latency histograms (one recorder per
	// shard) and migration-lifecycle tracer; the telemetry endpoint
	// and the STATS command read it.
	obs *obs.Set
	// subsDropped counts subscribers disconnected for falling behind
	// (buffer full). Exposed via STATS and /metrics — a silent drop
	// looks identical to a quiet query from the consumer side, so the
	// server must account for it.
	subsDropped atomic.Uint64
	// streamMask has bit i set when stream i participates in the plan.
	// The network boundary checks feeds against it: the engine treats
	// an unknown stream as programmer error and panics, which a remote
	// byte sequence must never be able to reach (MaxStreams is 64, so
	// one word covers every legal id).
	streamMask uint64

	mu      sync.Mutex
	subs    map[int]chan string
	nextSub int
	bufSize int
}

func newQuery(name string, cfg pipeline.Config, bufSize int, admCfg admission.Config) (*query, error) {
	q := &query{name: name, subs: make(map[int]chan string), bufSize: bufSize}
	if cfg.Engine.Plan != nil {
		for _, id := range cfg.Engine.Plan.Streams.Streams() {
			q.streamMask |= 1 << id
		}
	}
	q.obs = obs.NewSet(name, 0)
	cfg.Obs = q.obs
	cfg.Engine.Output = q.broadcast
	// Each query gets its own controller from the server template:
	// rate, budget, and deadline are per query (queries don't share a
	// bucket), while the connection cap stays server-wide and is
	// stripped here.
	admCfg.MaxConns = 0
	if admCfg.Enabled() {
		ctrl, err := admission.New(admCfg)
		if err != nil {
			return nil, err
		}
		q.adm = ctrl
		cfg.Admission = ctrl
	}
	if cfg.Engine.SpillDir != "" {
		// The flag-level spill dir is shared by every hosted query;
		// each query's runtime wipes its directory on open, so they
		// must not collide.
		cfg.Engine.SpillDir = filepath.Join(cfg.Engine.SpillDir, name)
	}
	r, err := runtime.New(cfg)
	if err != nil {
		return nil, err
	}
	q.runner = r
	return q, nil
}

// broadcast fans one result out to the query's subscribers; it runs on
// the query's worker goroutine and must not block, so stalled
// subscribers are dropped — counted and traced, never silently.
func (q *query) broadcast(d engine.Delta) {
	verb := "RESULT"
	if d.Retraction {
		verb = "RETRACT"
	}
	line := fmt.Sprintf("%s %d %s", verb, d.Tuple.Key, d.Tuple.Fingerprint())
	q.mu.Lock()
	for id, ch := range q.subs {
		select {
		case ch <- line:
		default:
			close(ch)
			delete(q.subs, id)
			q.subsDropped.Add(1)
			q.obs.Tracer.Emit(obs.Event{
				Kind: obs.EvSubscriberDropped, Query: q.name,
				Key:  int64(id),
				Note: fmt.Sprintf("subscriber %d fell %d lines behind; disconnected", id, q.bufSize),
			})
		}
	}
	q.mu.Unlock()
}

// dropped returns the number of subscribers disconnected for falling
// behind.
func (q *query) dropped() uint64 { return q.subsDropped.Load() }

// hasStream reports whether stream id participates in this query's
// plan; feeds for any other stream are protocol errors.
func (q *query) hasStream(id tuple.StreamID) bool {
	return q.streamMask&(1<<id) != 0
}

func (q *query) subscribe() (int, chan string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	id := q.nextSub
	q.nextSub++
	ch := make(chan string, q.bufSize)
	q.subs[id] = ch
	return id, ch
}

func (q *query) unsubscribe(id int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if ch, ok := q.subs[id]; ok {
		close(ch)
		delete(q.subs, id)
	}
}

func (q *query) subscribers() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.subs)
}

// checkpoint writes the query's state to path. A single-shard query
// produces one file; a sharded one produces path.0 … path.N-1, one
// consistent snapshot per shard (shards never exchange state, so
// per-shard files restore independently). Each file is a validated
// snapshot envelope (magic, version, CRC) written atomically via temp
// file + rename + directory fsync: a crash mid-CHECKPOINT never leaves
// a torn file under the requested name, and a load of a corrupt file
// fails with a clear error instead of undefined engine state.
func (q *query) checkpoint(path string) error {
	writeOne := func(p string, ckpt func(w io.Writer) error) error {
		var buf bytes.Buffer
		if err := ckpt(&buf); err != nil {
			return err
		}
		return durable.WriteSnapshotFile(durable.OS(), p, buf.Bytes())
	}
	if q.runner.Shards() == 1 {
		return writeOne(path, q.runner.Checkpoint)
	}
	for i := 0; i < q.runner.Shards(); i++ {
		i := i
		if err := writeOne(fmt.Sprintf("%s.%d", path, i), func(w io.Writer) error {
			return q.runner.CheckpointShard(i, w)
		}); err != nil {
			return err
		}
	}
	return nil
}

func (q *query) close() {
	q.runner.Close()
	q.mu.Lock()
	for id, ch := range q.subs {
		close(ch)
		delete(q.subs, id)
	}
	q.mu.Unlock()
}

// DefaultQuery is the name implicit commands address.
const DefaultQuery = "default"
