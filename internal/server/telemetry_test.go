package server

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"testing"

	"jisc/internal/admission"
	"jisc/internal/engine"
	"jisc/internal/obs"
	"jisc/internal/pipeline"
	"jisc/internal/plan"
	"jisc/internal/tuple"
	"jisc/internal/workload"
)

// scrape GETs a telemetry path and returns the body, failing the test
// on any non-200.
func scrape(t *testing.T, s *Server, path string) string {
	t.Helper()
	resp, err := http.Get("http://" + s.TelemetryAddr().String() + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d, body %q", path, resp.StatusCode, body)
	}
	return string(body)
}

// TestTelemetryLiveMigration is the end-to-end observability check:
// a live server feeds, migrates under JISC, and keeps feeding so lazy
// completion episodes run; /metrics must then expose a non-empty
// completion-episode histogram, and /trace the migration lifecycle.
func TestTelemetryLiveMigration(t *testing.T) {
	s := newTestServer(t)
	if err := s.ServeTelemetry("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	feed := func(n int, seed int64) {
		src := workload.MustNewSource(workload.Config{Streams: 3, Domain: 24, Seed: seed})
		for i := 0; i < n; i++ {
			if err := c.Feed(src.Next()); err != nil {
				t.Fatal(err)
			}
		}
	}
	feed(400, 1)
	if err := c.Migrate(plan.MustLeftDeep(2, 0, 1)); err != nil {
		t.Fatal(err)
	}
	feed(400, 2)
	if _, err := c.Stats(); err != nil { // in-band: everything above is processed
		t.Fatal(err)
	}

	if got := scrape(t, s, "/healthz"); got != "ok\n" {
		t.Fatalf("/healthz = %q", got)
	}

	metrics := scrape(t, s, "/metrics")
	count := func(name string) uint64 {
		re := regexp.MustCompile(`(?m)^` + name + `_count\{query="default"\} (\d+)$`)
		m := re.FindStringSubmatch(metrics)
		if m == nil {
			t.Fatalf("no %s_count series in metrics:\n%s", name, metrics)
		}
		n, err := strconv.ParseUint(m[1], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	if count("jisc_completion_episode_seconds") == 0 {
		t.Error("completion-episode histogram empty after live migration")
	}
	if count("jisc_feed_latency_seconds") == 0 {
		t.Error("feed-latency histogram empty")
	}
	if count("jisc_migrate_seconds") == 0 {
		t.Error("migrate histogram empty")
	}
	// Bucket lines must be present and cumulative for the episode
	// histogram (the Prometheus contract scrapers rely on).
	bucketRe := regexp.MustCompile(`(?m)^jisc_completion_episode_seconds_bucket\{query="default",le="[^"]+"\} (\d+)$`)
	var last uint64
	buckets := bucketRe.FindAllStringSubmatch(metrics, -1)
	if len(buckets) == 0 {
		t.Fatal("no completion-episode bucket lines")
	}
	for _, b := range buckets {
		n, _ := strconv.ParseUint(b[1], 10, 64)
		if n < last {
			t.Fatalf("bucket counts not cumulative: %d after %d", n, last)
		}
		last = n
	}
	if !regexp.MustCompile(`(?m)^jisc_transitions_total\{query="default"\} 1$`).MatchString(metrics) {
		t.Error("transitions counter missing or wrong")
	}

	var dump struct {
		Queries []struct {
			Query  string `json:"query"`
			Events []struct {
				Kind string `json:"kind"`
			} `json:"events"`
		} `json:"queries"`
	}
	if err := json.Unmarshal([]byte(scrape(t, s, "/trace")), &dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.Queries) != 1 || dump.Queries[0].Query != "default" {
		t.Fatalf("trace dump queries = %+v", dump.Queries)
	}
	kinds := map[string]int{}
	for _, ev := range dump.Queries[0].Events {
		kinds[ev.Kind]++
	}
	if kinds["plan-installed"] == 0 {
		t.Errorf("no plan-installed trace event; kinds: %v", kinds)
	}
	if kinds["completion-end"] == 0 {
		t.Errorf("no completion-end trace event; kinds: %v", kinds)
	}
}

// TestStatsLatencyFields: the extended STATS fields reach the typed
// client.
func TestStatsLatencyFields(t *testing.T) {
	s := newTestServer(t)
	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	src := workload.MustNewSource(workload.Config{Streams: 3, Domain: 16, Seed: 3})
	for i := 0; i < 200; i++ {
		if err := c.Feed(src.Next()); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Migrate(plan.MustLeftDeep(1, 2, 0)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := c.Feed(src.Next()); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Input != 400 {
		t.Fatalf("Input = %d, want 400", st.Input)
	}
	if st.FeedP50Ns == 0 || st.FeedP99Ns < st.FeedP50Ns {
		t.Fatalf("feed quantiles p50=%d p99=%d", st.FeedP50Ns, st.FeedP99Ns)
	}
	if st.Episodes == 0 {
		t.Fatal("no completion episodes counted")
	}
	if st.SubsDropped != 0 {
		t.Fatalf("SubsDropped = %d, want 0", st.SubsDropped)
	}
}

// TestSubscriberDropCounted: a subscriber that falls behind is
// disconnected — and that drop is counted and traced, never silent.
func TestSubscriberDropCounted(t *testing.T) {
	q, err := newQuery("q", pipeline.Config{Engine: engine.Config{
		Plan: plan.MustLeftDeep(0, 1), WindowSize: 16,
	}}, 2, admission.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer q.close()
	_, ch := q.subscribe()
	for i := 0; i < 4; i++ { // buffer is 2: the third send overflows
		q.broadcast(engine.Delta{Tuple: tuple.NewBase(0, uint64(i+1), 7, uint64(i+1))})
	}
	if got := q.dropped(); got != 1 {
		t.Fatalf("dropped = %d, want 1", got)
	}
	if q.subscribers() != 0 {
		t.Fatalf("subscriber still registered after drop")
	}
	if _, open := <-ch; !open {
		// channel closed after draining buffered lines — expected
	}
	found := false
	for _, ev := range q.obs.Tracer.Events() {
		if ev.Kind == obs.EvSubscriberDropped {
			found = true
		}
	}
	if !found {
		t.Fatal("no subscriber-dropped trace event")
	}
}
