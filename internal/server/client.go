package server

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"jisc/internal/plan"
	"jisc/internal/tuple"
	"jisc/internal/workload"
)

// Client speaks the jiscd line protocol. A Client is safe for
// concurrent use; commands are serialized over one connection.
// Subscribe takes the connection over for streaming — use a dedicated
// Client for subscriptions.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader

	// RetryBusy, when > 0, makes commands that draw a retriable
	// "ERR BUSY ..." response (connection caps, in-flight budget,
	// drain fence) retry up to that many additional times with
	// jittered exponential backoff before surfacing the error.
	// FeedBatch retries only the BUSY'd lines, not the whole batch.
	// 0 (the default) surfaces BUSY immediately.
	RetryBusy int
	// RetryBase is the first backoff step (default 5ms); each retry
	// doubles it, capped at 500ms, with full jitter in [d/2, d).
	RetryBase time.Duration
}

// IsBusy reports whether err is a retriable server BUSY rejection
// (overload or drain) rather than a hard protocol or transport error.
func IsBusy(err error) bool {
	return err != nil && strings.Contains(err.Error(), "server: BUSY")
}

// backoff returns the jittered exponential delay for retry attempt n.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.RetryBase
	if d <= 0 {
		d = 5 * time.Millisecond
	}
	for i := 0; i < attempt && d < 500*time.Millisecond; i++ {
		d *= 2
	}
	if d > 500*time.Millisecond {
		d = 500 * time.Millisecond
	}
	// Full jitter over the upper half: concurrent producers hitting
	// the same BUSY wall spread out instead of retrying in lockstep.
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// Dial connects to a jiscd server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one command line and reads one response line,
// retrying BUSY rejections per the client's retry policy.
func (c *Client) roundTrip(line string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for attempt := 0; ; attempt++ {
		resp, err := c.roundTripLocked(line)
		if err == nil || !IsBusy(err) || attempt >= c.RetryBusy {
			return resp, err
		}
		time.Sleep(c.backoff(attempt))
	}
}

func (c *Client) roundTripLocked(line string) (string, error) {
	if _, err := fmt.Fprintln(c.conn, line); err != nil {
		return "", err
	}
	resp, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	resp = strings.TrimSpace(resp)
	if strings.HasPrefix(resp, "ERR ") {
		return "", fmt.Errorf("server: %s", strings.TrimPrefix(resp, "ERR "))
	}
	return resp, nil
}

// Feed ingests one tuple.
func (c *Client) Feed(ev workload.Event) error {
	_, err := c.roundTrip(fmt.Sprintf("FEED %d %d", ev.Stream, ev.Key))
	return err
}

// maxKeysPerLine bounds one FEEDB line well under the server's 1 MiB
// line cap (a key is at most 20 decimal characters plus a separator).
const maxKeysPerLine = 4096

// FeedBatch ingests a batch of tuples. Each run of consecutive
// same-stream events becomes one FEEDB line; all lines are written in
// one pipelined burst and their acks read afterwards, so an N-run
// batch costs one round trip instead of len(evs).
func (c *Client) FeedBatch(evs []workload.Event) error { return c.feedBatch("", evs) }

func (c *Client) feedBatch(name string, evs []workload.Event) error {
	if len(evs) == 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for attempt := 0; ; attempt++ {
		retry, busyErr, hardErr, terr := c.feedBatchLocked(name, evs)
		if terr != nil {
			return terr // transport: the connection is gone
		}
		if hardErr != nil {
			return hardErr // protocol error: retrying won't help
		}
		if len(retry) == 0 {
			return nil
		}
		if attempt >= c.RetryBusy {
			return busyErr
		}
		time.Sleep(c.backoff(attempt))
		evs = retry
	}
}

// feedBatchLocked writes one pipelined burst of FEEDB lines and drains
// their acks. BUSY'd lines come back as retry (their events, in
// order) with the first BUSY error; any non-BUSY ERR is hardErr; terr
// is a transport failure. The connection stays in lockstep on every
// non-transport outcome — all acks are drained even after an error.
func (c *Client) feedBatchLocked(name string, evs []workload.Event) (retry []workload.Event, busyErr, hardErr, terr error) {
	var sb strings.Builder
	type span struct{ from, to int }
	var spans []span
	for i := 0; i < len(evs); {
		j := i
		for j < len(evs) && evs[j].Stream == evs[i].Stream && j-i < maxKeysPerLine {
			j++
		}
		sb.WriteString("FEEDB ")
		if name != "" {
			sb.WriteString(name)
			sb.WriteByte(' ')
		}
		sb.WriteString(strconv.Itoa(int(evs[i].Stream)))
		spans = append(spans, span{from: i, to: j})
		for ; i < j; i++ {
			sb.WriteByte(' ')
			sb.WriteString(strconv.FormatInt(int64(evs[i].Key), 10))
		}
		sb.WriteByte('\n')
	}
	if _, err := c.conn.Write([]byte(sb.String())); err != nil {
		return nil, nil, nil, err
	}
	for _, sp := range spans {
		resp, err := c.r.ReadString('\n')
		if err != nil {
			return nil, nil, nil, err
		}
		resp = strings.TrimSpace(resp)
		if !strings.HasPrefix(resp, "ERR ") {
			continue
		}
		rerr := fmt.Errorf("server: %s", strings.TrimPrefix(resp, "ERR "))
		if IsBusy(rerr) {
			if busyErr == nil {
				busyErr = rerr
			}
			retry = append(retry, evs[sp.from:sp.to]...)
		} else if hardErr == nil {
			hardErr = rerr
		}
	}
	return retry, busyErr, hardErr, nil
}

// Migrate transitions the server's query to a new plan.
func (c *Client) Migrate(p *plan.Plan) error {
	_, err := c.roundTrip("MIGRATE " + p.String())
	return err
}

// Plan returns the server's current plan.
func (c *Client) Plan() (*plan.Plan, error) {
	resp, err := c.roundTrip("PLAN")
	if err != nil {
		return nil, err
	}
	return plan.Parse(strings.TrimPrefix(resp, "PLAN "))
}

// Stats holds the server's one-line counters. The latency fields are
// zero until the server has recorded feed-latency samples.
type Stats struct {
	Input, Output, Transitions, Completions, Shed uint64
	// FeedP50Ns and FeedP99Ns are the per-tuple feed-latency quantiles
	// in nanoseconds (sampled, see internal/obs).
	FeedP50Ns, FeedP99Ns uint64
	// Episodes counts the just-in-time completion episodes run.
	Episodes uint64
	// SubsDropped counts subscribers the server disconnected for
	// falling behind.
	SubsDropped uint64
	// BatchFillP50 is the median realized ingest batch size in tuples;
	// BatchFlushes counts FeedBatch invocations on the server (FEEDB
	// lines plus coalesced FEED runs).
	BatchFillP50, BatchFlushes uint64
	// StateBytes is the resident state footprint across shards;
	// SpillFaults counts tiered-state bucket faults (0 with spilling
	// off — the server runs unbounded unless started with a state
	// budget).
	StateBytes, SpillFaults uint64
	// AutoEnabled is 1 while the query's autopilot is on; the Auto*
	// counters cover its decisions since the last AUTO ON.
	AutoEnabled, AutoProposals, AutoMigrations, AutoRollbacks uint64
	// LastMigrationAgeMS is milliseconds since the autopilot last
	// installed a plan (0 = never; the server reports ≥ 1 otherwise).
	LastMigrationAgeMS uint64
	// AdmissionShed counts tuples dropped by the ingest rate limiter
	// (acknowledged OK); DeadlineShed counts admitted tuples dropped
	// in queue past their feed deadline; Rejected/RejectedBatches
	// count BUSY refusals. All zero when admission is off.
	AdmissionShed, DeadlineShed, Rejected, RejectedBatches uint64
	// InflightBytes is the admitted-but-unprocessed byte gauge;
	// Draining is 1 while the server is gracefully draining.
	InflightBytes, Draining uint64
}

// Stats fetches the default query's counters.
func (c *Client) Stats() (Stats, error) {
	resp, err := c.roundTrip("STATS")
	if err != nil {
		return Stats{}, err
	}
	return parseStats(resp)
}

func parseStats(resp string) (Stats, error) {
	var s Stats
	for _, field := range strings.Fields(strings.TrimPrefix(resp, "STATS ")) {
		name, val, ok := strings.Cut(field, "=")
		if !ok {
			continue
		}
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return Stats{}, fmt.Errorf("server: bad stats field %q", field)
		}
		switch name {
		case "input":
			s.Input = n
		case "output":
			s.Output = n
		case "transitions":
			s.Transitions = n
		case "completions":
			s.Completions = n
		case "shed":
			s.Shed = n
		case "feed_p50_ns":
			s.FeedP50Ns = n
		case "feed_p99_ns":
			s.FeedP99Ns = n
		case "episodes":
			s.Episodes = n
		case "subs_dropped":
			s.SubsDropped = n
		case "batch_fill_p50":
			s.BatchFillP50 = n
		case "batch_flushes":
			s.BatchFlushes = n
		case "state_bytes":
			s.StateBytes = n
		case "spill_faults":
			s.SpillFaults = n
		case "auto_enabled":
			s.AutoEnabled = n
		case "auto_proposals":
			s.AutoProposals = n
		case "auto_migrations":
			s.AutoMigrations = n
		case "auto_rollbacks":
			s.AutoRollbacks = n
		case "last_migration_age_ms":
			s.LastMigrationAgeMS = n
		case "admission_shed":
			s.AdmissionShed = n
		case "deadline_shed":
			s.DeadlineShed = n
		case "rejected":
			s.Rejected = n
		case "rejected_batches":
			s.RejectedBatches = n
		case "inflight_bytes":
			s.InflightBytes = n
		case "draining":
			s.Draining = n
		}
	}
	return s, nil
}

// Checkpoint asks the server to write a checkpoint to a server-local
// path.
func (c *Client) Checkpoint(path string) error {
	_, err := c.roundTrip("CHECKPOINT " + path)
	return err
}

// Result is one streamed subscription line.
type Result struct {
	Key         tuple.Value
	Fingerprint string
	Retraction  bool
}

// Subscribe switches the connection into streaming mode and returns a
// channel of results. The channel closes when the connection drops or
// the client is closed. After Subscribe, no other commands may be
// issued on this client.
func (c *Client) Subscribe() (<-chan Result, error) {
	if _, err := c.roundTrip("SUBSCRIBE"); err != nil {
		return nil, err
	}
	out := make(chan Result, 64)
	go func() {
		defer close(out)
		for {
			line, err := c.r.ReadString('\n')
			if err != nil {
				return
			}
			fields := strings.Fields(line)
			if len(fields) != 3 {
				continue
			}
			key, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				continue
			}
			out <- Result{
				Key:         tuple.Value(key),
				Fingerprint: fields[2],
				Retraction:  fields[0] == "RETRACT",
			}
		}
	}()
	return out, nil
}

// Raw sends one protocol line and returns the single response line —
// an escape hatch for commands without a typed wrapper.
func (c *Client) Raw(line string) (string, error) { return c.roundTrip(line) }

// Create starts a new named query on the server.
func (c *Client) Create(name string, window int, p *plan.Plan) error {
	_, err := c.roundTrip(fmt.Sprintf("CREATE %s %d %s", name, window, p))
	return err
}

// Drop stops and removes a named query.
func (c *Client) Drop(name string) error {
	_, err := c.roundTrip("DROP " + name)
	return err
}

// List returns the names of the hosted queries.
func (c *Client) List() ([]string, error) {
	resp, err := c.roundTrip("LIST")
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(strings.TrimPrefix(resp, "QUERIES"))
	return fields, nil
}

// On addresses subsequent Feed/Migrate/Stats/Plan/Subscribe calls to
// the named query by returning a scoped view of the same connection.
func (c *Client) On(name string) *ScopedClient { return &ScopedClient{c: c, name: name} }

// ScopedClient addresses one named query through a shared Client.
type ScopedClient struct {
	c    *Client
	name string
}

// Feed ingests one tuple into the scoped query.
func (s *ScopedClient) Feed(ev workload.Event) error {
	_, err := s.c.roundTrip(fmt.Sprintf("FEED %s %d %d", s.name, ev.Stream, ev.Key))
	return err
}

// FeedBatch ingests a batch into the scoped query via pipelined FEEDB
// lines.
func (s *ScopedClient) FeedBatch(evs []workload.Event) error {
	return s.c.feedBatch(s.name, evs)
}

// Migrate transitions the scoped query.
func (s *ScopedClient) Migrate(p *plan.Plan) error {
	_, err := s.c.roundTrip(fmt.Sprintf("MIGRATE %s %s", s.name, p))
	return err
}

// Stats fetches the scoped query's counters.
func (s *ScopedClient) Stats() (Stats, error) {
	resp, err := s.c.roundTrip("STATS " + s.name)
	if err != nil {
		return Stats{}, err
	}
	return parseStats(resp)
}
