package server

import (
	"runtime"
	"testing"
	"time"

	"jisc/internal/workload"
)

// batchEvents generates n deterministic events over the 3-stream test
// topology.
func batchEvents(n int) []workload.Event {
	src := workload.MustNewSource(workload.Config{Streams: 3, Domain: 8, Seed: 42})
	return src.Take(n)
}

// noLeak captures the goroutine count and, at cleanup, fails the test
// unless the count settles back to the baseline. Register it BEFORE
// starting the server under test so the server's own teardown runs
// first (cleanups execute in reverse order).
func noLeak(t *testing.T) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= base {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		t.Errorf("goroutine leak: %d live, baseline %d\n%s",
			runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
	})
}
