package server

// Graceful drain: the protocol behind a zero-loss rolling restart.
// SIGTERM on cmd/jiscd calls Drain, which runs these steps in order:
//
//  1. stop accepting — the listener closes, so load balancers fail new
//     dials over to a replacement node;
//  2. fence — the draining flag turns every mutating command on the
//     surviving connections into a retriable "ERR BUSY draining", and
//     each query's admission controller rejects at its own door too
//     (defense in depth for callers that bypass the command loop);
//  3. pause autopilots — a plan migration mid-drain would re-lengthen
//     exactly the queues the drain is emptying, so decision-making is
//     suspended (not stopped: Pause never joins a goroutine);
//  4. drain — Flush every query, bounded by the timeout: when Flush
//     returns, every admitted batch has been fully processed and its
//     outputs emitted, so nothing admitted is ever lost;
//  5. final checkpoint — on a durable server, CheckpointNow after the
//     flush barrier pins the drained state, making the successor's
//     recovery a checkpoint load with an empty WAL tail;
//  6. close — connections, queries, catalog.
//
// A drain that cannot finish flushing within the timeout returns an
// error WITHOUT closing: something is wedged, and Close would block on
// the same wedge. The caller (cmd/jiscd) reports and exits non-zero;
// supervisors treat that as the kill-hard signal.

import (
	"fmt"
	"time"
)

// Drain gracefully shuts the server down; see the file comment for
// the protocol. timeout bounds the flush step (0 = wait forever).
// Drain is idempotent — concurrent calls beyond the first return nil
// immediately — and returns nil once everything admitted has been
// processed, checkpointed (when durable), and closed.
func (s *Server) Drain(timeout time.Duration) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	already := s.draining.Swap(true)
	s.mu.Unlock()
	if already {
		return nil
	}
	if s.ln != nil {
		s.ln.Close()
		s.acceptWG.Wait()
	}
	queries := s.sortedQueries()
	for _, q := range queries {
		q.adm.StartDrain()
		q.runner.PauseAuto()
	}
	flushed := make(chan error, 1)
	go func() {
		var first error
		for _, q := range queries {
			if err := q.runner.Flush(); err != nil && first == nil {
				first = err
			}
		}
		flushed <- first
	}()
	var ferr error
	if timeout > 0 {
		select {
		case ferr = <-flushed:
		case <-time.After(timeout):
			return fmt.Errorf("server: drain did not finish flushing within %v", timeout)
		}
	} else {
		ferr = <-flushed
	}
	if ferr != nil {
		return fmt.Errorf("server: draining queries: %w", ferr)
	}
	// Every admitted batch is processed; pin that state so the
	// successor recovers from the checkpoint instead of replaying the
	// drained WAL tail.
	if s.durable.Enabled() {
		for _, q := range queries {
			if !q.runner.Durable() {
				continue
			}
			if err := q.runner.CheckpointNow(); err != nil && ferr == nil {
				ferr = fmt.Errorf("server: final checkpoint of %q: %w", q.name, err)
			}
		}
	}
	s.Close()
	return ferr
}

// Draining reports whether a graceful drain has started.
func (s *Server) Draining() bool { return s.draining.Load() }
