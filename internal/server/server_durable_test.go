package server

import (
	"strings"
	"testing"

	"jisc/internal/core"
	"jisc/internal/durable"
	"jisc/internal/engine"
	"jisc/internal/pipeline"
	"jisc/internal/plan"
)

func durableServerConfig(dir string) Config {
	return Config{
		Pipeline: pipeline.Config{Engine: engine.Config{
			Plan:       plan.MustLeftDeep(0, 1, 2),
			WindowSize: 100,
			Strategy:   core.New(),
		}},
		Durable: durable.Options{
			Dir:   dir,
			Fsync: durable.FsyncAlways,
			// Restart tests exercise pure WAL replay.
			CheckpointInterval: -1,
		},
	}
}

func startDurableServer(t *testing.T, dir string) *Server {
	t.Helper()
	s, err := New(durableServerConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen("127.0.0.1:0"); err != nil {
		s.Close()
		t.Fatal(err)
	}
	return s
}

func statField(t *testing.T, stats, key string) string {
	t.Helper()
	for _, f := range strings.Fields(stats) {
		if v, ok := strings.CutPrefix(f, key+"="); ok {
			return v
		}
	}
	t.Fatalf("stats %q has no %q field", stats, key)
	return ""
}

// TestServerDurableRestart is the server-level crash contract: every
// acknowledged mutating command — FEED, MIGRATE, CREATE, DROP — must
// survive a restart, restoring counters, plans, and the query topology.
func TestServerDurableRestart(t *testing.T) {
	dir := t.TempDir()
	s := startDurableServer(t, dir)
	c := dial(t, s)
	for _, line := range []string{
		"FEED 0 7", "FEED 1 7", "FEED 2 7",
		"MIGRATE ((0 2) 1)",
		"FEED 0 9", // post-migration ingest, replays through the migrated plan
		"CREATE pairs 50 (0 1)",
		"FEED pairs 0 3", "FEED pairs 1 3",
		"CREATE doomed 50 (1 2)",
		"DROP doomed",
	} {
		if resp := c.cmd(t, line); resp != "OK" {
			t.Fatalf("%s -> %s", line, resp)
		}
	}
	stats := c.cmd(t, "STATS")
	if got := statField(t, stats, "wal_appends"); got == "0" {
		t.Fatalf("durable server logged nothing: %s", stats)
	}
	wantDefault := map[string]string{
		"input":       statField(t, stats, "input"),
		"output":      statField(t, stats, "output"),
		"transitions": statField(t, stats, "transitions"),
	}
	wantPlan := c.cmd(t, "PLAN")
	s.Close() // no final checkpoint: disk state is crash-equivalent

	s2 := startDurableServer(t, dir)
	defer s2.Close()
	c2 := dial(t, s2)
	stats2 := c2.cmd(t, "STATS")
	for k, want := range wantDefault {
		if got := statField(t, stats2, k); got != want {
			t.Fatalf("after restart %s=%s, want %s (stats %q)", k, got, want, stats2)
		}
	}
	if got := statField(t, stats2, "recovered_events"); got == "0" {
		t.Fatalf("restart replayed nothing: %s", stats2)
	}
	if got := c2.cmd(t, "PLAN"); got != wantPlan {
		t.Fatalf("plan after restart = %q, want %q", got, wantPlan)
	}
	list := c2.cmd(t, "LIST")
	if !strings.Contains(list, "pairs") || strings.Contains(list, "doomed") {
		t.Fatalf("recovered topology = %q; want pairs alive and doomed gone", list)
	}
	pairsStats := c2.cmd(t, "STATS pairs")
	if got := statField(t, pairsStats, "input"); got != "2" {
		t.Fatalf("pairs input after restart = %s, want 2", got)
	}
	// The recovered server keeps working: finish the pairs join.
	if resp := c2.cmd(t, "FEED pairs 0 4"); resp != "OK" {
		t.Fatalf("post-recovery feed: %s", resp)
	}
}

// A DROPped query's durability directory is removed, so re-creating
// the name starts from scratch rather than inheriting stale state.
func TestServerDurableDropClearsState(t *testing.T) {
	dir := t.TempDir()
	s := startDurableServer(t, dir)
	c := dial(t, s)
	for _, line := range []string{
		"CREATE q 50 (0 1)", "FEED q 0 1", "FEED q 1 1",
		"DROP q",
		"CREATE q 50 (0 1)",
	} {
		if resp := c.cmd(t, line); resp != "OK" {
			t.Fatalf("%s -> %s", line, resp)
		}
	}
	s.Close()
	s2 := startDurableServer(t, dir)
	defer s2.Close()
	c2 := dial(t, s2)
	if got := statField(t, c2.cmd(t, "STATS q"), "input"); got != "0" {
		t.Fatalf("re-created query inherited input=%s from its dropped namesake", got)
	}
}

// Durable query names become directory names; reject separators and
// anything else unsafe rather than writing outside the root.
func TestServerDurableRejectsUnsafeNames(t *testing.T) {
	s := startDurableServer(t, t.TempDir())
	defer s.Close()
	c := dial(t, s)
	for _, name := range []string{"a/b", "a\\b", "..", "a b"} {
		if resp := c.cmd(t, "CREATE "+name+" 50 (0 1)"); !strings.HasPrefix(resp, "ERR") {
			t.Fatalf("CREATE %q -> %s, want ERR", name, resp)
		}
	}
}

// The WAL series must reach /metrics: per-query append/fsync counters
// when durability is on, and the wal_disabled gauge + distinct
// unlogged-mutation counter when it is off.
func TestTelemetryWALSeries(t *testing.T) {
	s := startDurableServer(t, t.TempDir())
	defer s.Close()
	if err := s.ServeTelemetry("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	c := dial(t, s)
	for _, line := range []string{"FEED 0 1", "FEED 1 1", "MIGRATE ((0 2) 1)"} {
		if resp := c.cmd(t, line); resp != "OK" {
			t.Fatalf("%s -> %s", line, resp)
		}
	}
	c.cmd(t, "STATS") // in-band barrier
	m := scrape(t, s, "/metrics")
	for _, want := range []string{
		`jisc_wal_appends_total{query="default"} 3`,
		`jisc_wal_fsyncs_total{query="default"} 3`,
		`jisc_wal_segments{query="default"} 1`,
		"jisc_wal_disabled{} 0",
		"jisc_wal_disabled_mutations_total{} 0",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	s2 := newTestServer(t)
	if err := s2.ServeTelemetry("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	c2 := dial(t, s2)
	if resp := c2.cmd(t, "FEED 0 1"); resp != "OK" {
		t.Fatalf("feed: %s", resp)
	}
	m2 := scrape(t, s2, "/metrics")
	for _, want := range []string{
		"jisc_wal_disabled{} 1",
		"jisc_wal_disabled_mutations_total{} 1",
	} {
		if !strings.Contains(m2, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// Without durability every mutating command is counted as unlogged —
// the operator-facing signal that a crash would lose state.
func TestServerCountsWALDisabledMutations(t *testing.T) {
	s := newTestServer(t)
	c := dial(t, s)
	for _, line := range []string{"FEED 0 1", "FEED 1 2", "MIGRATE ((0 2) 1)"} {
		if resp := c.cmd(t, line); resp != "OK" {
			t.Fatalf("%s -> %s", line, resp)
		}
	}
	c.cmd(t, "STATS") // non-mutating: must not count
	if got := s.WALDisabledMutations(); got != 3 {
		t.Fatalf("WALDisabledMutations = %d, want 3", got)
	}

	s2 := startDurableServer(t, t.TempDir())
	defer s2.Close()
	c2 := dial(t, s2)
	if resp := c2.cmd(t, "FEED 0 1"); resp != "OK" {
		t.Fatalf("feed: %s", resp)
	}
	if got := s2.WALDisabledMutations(); got != 0 {
		t.Fatalf("durable server counted %d unlogged mutations", got)
	}
}
