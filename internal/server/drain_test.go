package server

import (
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"jisc/internal/admission"
	"jisc/internal/core"
	"jisc/internal/engine"
	"jisc/internal/pipeline"
	"jisc/internal/plan"
)

// TestDrainFenceRejectsMutations: with the drain flag up, every
// mutating verb on an existing connection draws a retriable BUSY while
// read-only verbs keep answering — operators can watch a drain through
// STATS.
func TestDrainFenceRejectsMutations(t *testing.T) {
	noLeak(t)
	s := newTestServer(t)
	c := dial(t, s)
	if resp := c.cmd(t, "FEED 0 1"); resp != "OK" {
		t.Fatalf("pre-drain feed: %s", resp)
	}
	// Raise the fence directly — the full Drain() closes the server
	// too fast to probe commands deterministically from outside.
	s.draining.Store(true)
	for _, line := range []string{
		"FEED 0 1", "FEEDB 0 1 2", "MIGRATE 2,0,1",
		"CREATE late 10 0,1", "DROP default", "AUTO ON",
	} {
		resp := c.cmd(t, line)
		if !strings.HasPrefix(resp, "ERR BUSY draining") {
			t.Fatalf("%q during drain -> %q, want ERR BUSY draining", line, resp)
		}
	}
	for _, line := range []string{"STATS", "PLAN", "LIST"} {
		resp := c.cmd(t, line)
		if strings.HasPrefix(resp, "ERR") {
			t.Fatalf("read-only %q during drain -> %q", line, resp)
		}
	}
	if got := statField(t, c.cmd(t, "STATS"), "draining"); got != "1" {
		t.Fatalf("draining stat = %s, want 1", got)
	}
	s.draining.Store(false)
}

// TestDrainFlushesAndCloses: Drain on a busy server returns nil, the
// listener stops accepting, and the call is idempotent.
func TestDrainFlushesAndCloses(t *testing.T) {
	noLeak(t)
	s := newTestServer(t)
	c := dial(t, s)
	for i := 0; i < 100; i++ {
		if resp := c.cmd(t, "FEED "+strconv.Itoa(i%3)+" "+strconv.Itoa(i%7)); resp != "OK" {
			t.Fatalf("feed %d: %s", i, resp)
		}
	}
	if err := s.Drain(10 * time.Second); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if !s.Draining() {
		t.Fatal("Draining() false after Drain")
	}
	if conn, err := net.DialTimeout("tcp", s.Addr().String(), time.Second); err == nil {
		conn.Close()
		t.Fatal("dial succeeded after Drain closed the listener")
	}
	// Idempotent: a second drain of a closed server is a no-op nil.
	if err := s.Drain(time.Second); err != nil {
		t.Fatalf("second Drain: %v", err)
	}
}

// TestDrainDurableZeroLoss is the rolling-restart contract: every
// batch acknowledged before the drain survives into the next
// process — via the final checkpoint, not WAL replay, proving the
// drain checkpointed.
func TestDrainDurableZeroLoss(t *testing.T) {
	noLeak(t)
	dir := t.TempDir()
	s := startDurableServer(t, dir)
	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	evs := batchEvents(300)
	if err := c.FeedBatch(evs); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Input != 300 {
		t.Fatalf("pre-drain input = %d, want 300", st.Input)
	}
	c.Close()
	if err := s.Drain(10 * time.Second); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	s2 := startDurableServer(t, dir)
	defer s2.Close()
	c2, err := Dial(s2.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	st2, err := c2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Input != 300 {
		t.Fatalf("post-restart input = %d, want 300 (drain lost batches)", st2.Input)
	}
	// The final checkpoint truncated the WAL: recovery replayed no
	// events, it restored the snapshot.
	if got := s2.DurableStats().RecoveredEvents; got != 0 {
		t.Fatalf("RecoveredEvents = %d, want 0 (drain must checkpoint)", got)
	}
}

// TestDrainPausesAutopilot: a drain must freeze the adaptive control
// plane — a plan migration mid-flush would race the final checkpoint.
func TestDrainPausesAutopilot(t *testing.T) {
	noLeak(t)
	s, err := New(Config{Pipeline: pipeline.Config{Engine: engine.Config{
		Plan:       plan.MustLeftDeep(0, 1, 2),
		WindowSize: 100,
		Strategy:   core.New(),
	}}, AutoStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	c := dial(t, s)
	if resp := c.cmd(t, "AUTO STATUS"); !strings.Contains(resp, "enabled=1") {
		t.Fatalf("autopilot not running: %s", resp)
	}
	if err := s.Drain(10 * time.Second); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	// The runner is closed by now; the assertion that matters is that
	// Drain completed without the autopilot racing it — covered by
	// -race runs of this test.
}

// TestDrainConcurrentWithIngest hoses the server from several
// goroutines while a drain lands mid-stream. Every feeder must
// terminate with either an acknowledged command, a BUSY, or a
// connection error — never a hang — and the drain must return nil.
func TestDrainConcurrentWithIngest(t *testing.T) {
	noLeak(t)
	s, err := New(Config{
		Pipeline: pipeline.Config{Engine: engine.Config{
			Plan:       plan.MustLeftDeep(0, 1, 2),
			WindowSize: 100,
			Strategy:   core.New(),
		}},
		Admission: admission.Config{Rate: 1e9, Burst: 1e9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for f := 0; f < 4; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			c, err := Dial(s.Addr().String())
			if err != nil {
				return
			}
			defer c.Close()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				evs := batchEvents(8)
				if err := c.FeedBatch(evs); err != nil {
					return // BUSY (fence) or conn death: both legal
				}
			}
		}(f)
	}
	time.Sleep(50 * time.Millisecond) // let the hose build up
	if err := s.Drain(10 * time.Second); err != nil {
		t.Fatalf("Drain under load: %v", err)
	}
	close(stop)
	waitDone := make(chan struct{})
	go func() { wg.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(10 * time.Second):
		t.Fatal("feeders hung after drain")
	}
}
