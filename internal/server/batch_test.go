package server

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"jisc/internal/plan"
	"jisc/internal/tuple"
	"jisc/internal/workload"
)

func TestServerFeedBatchCommand(t *testing.T) {
	s := newTestServer(t)
	c := dial(t, s)
	// One FEEDB line per stream, one OK per line; keys 7 and 8 both
	// complete across the three streams of the default query.
	for _, line := range []string{"FEEDB 0 7 8", "FEEDB 1 7 8", "FEEDB 2 7 8"} {
		if resp := c.cmd(t, line); resp != "OK" {
			t.Fatalf("%s -> %s", line, resp)
		}
	}
	stats := c.cmd(t, "STATS")
	if got := statField(t, stats, "input"); got != "6" {
		t.Fatalf("input = %s, want 6 (stats %q)", got, stats)
	}
	if got := statField(t, stats, "output"); got != "2" {
		t.Fatalf("output = %s, want 2 (stats %q)", got, stats)
	}
	if got := statField(t, stats, "batch_flushes"); got != "3" {
		t.Fatalf("batch_flushes = %s, want 3 (stats %q)", got, stats)
	}
	if got := statField(t, stats, "batch_fill_p50"); got != "2" {
		t.Fatalf("batch_fill_p50 = %s, want 2 (stats %q)", got, stats)
	}
	for _, bad := range []string{"FEEDB", "FEEDB 0", "FEEDB 99 1", "FEEDB 0 x", "FEEDB 0 1 x 3"} {
		if resp := c.cmd(t, bad); !strings.HasPrefix(resp, "ERR") {
			t.Fatalf("%q -> %q, want ERR", bad, resp)
		}
	}
	// A rejected batch is all-or-nothing: no tuple of "FEEDB 0 1 x 3"
	// may have been fed.
	if got := statField(t, c.cmd(t, "STATS"), "input"); got != "6" {
		t.Fatalf("input after bad batches = %s, want 6", got)
	}
}

func TestServerFeedBatchNamedQuery(t *testing.T) {
	s := newTestServer(t)
	c := dial(t, s)
	if resp := c.cmd(t, "CREATE pairs 50 (0 1)"); resp != "OK" {
		t.Fatalf("create: %s", resp)
	}
	for _, line := range []string{"FEEDB pairs 0 1 2 3", "FEEDB pairs 1 1 2 3"} {
		if resp := c.cmd(t, line); resp != "OK" {
			t.Fatalf("%s -> %s", line, resp)
		}
	}
	ps := c.cmd(t, "STATS pairs")
	if statField(t, ps, "input") != "6" || statField(t, ps, "output") != "3" {
		t.Fatalf("pairs stats = %q", ps)
	}
	if got := statField(t, c.cmd(t, "STATS"), "input"); got != "0" {
		t.Fatalf("default query got %s tuples from a scoped batch", got)
	}
}

// TestServerLongLineSurvives pins the Scanner fix: a FEEDB line well
// past the old 64 KiB token limit parses fine, a line past the 1 MiB
// cap draws an ERR, and in both cases the connection keeps working.
func TestServerLongLineSurvives(t *testing.T) {
	s := newTestServer(t)
	c := dial(t, s)
	var sb strings.Builder
	sb.WriteString("FEEDB 0")
	n := 0
	for sb.Len() < 128<<10 { // ~128 KiB: dead under the old Scanner
		sb.WriteString(" ")
		sb.WriteString(strconv.Itoa(n % 50))
		n++
	}
	if resp := c.cmd(t, sb.String()); resp != "OK" {
		t.Fatalf("128KiB FEEDB -> %s", resp)
	}
	if got := statField(t, c.cmd(t, "STATS"), "input"); got != strconv.Itoa(n) {
		t.Fatalf("input = %s, want %d", got, n)
	}

	if resp := c.cmd(t, "FEEDB 0 "+strings.Repeat("1 ", 600<<10)); !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("over-long line -> %q, want ERR", resp)
	}
	// The connection survived and the stream is positioned at the next
	// line.
	if resp := c.cmd(t, "FEED 1 1"); resp != "OK" {
		t.Fatalf("feed after over-long line -> %s", resp)
	}
}

// TestServerPipelinedFeeds writes a burst of FEED lines in one send
// and expects one OK per line, in order, with every tuple ingested —
// the coalescing path must preserve the ack-per-line contract.
func TestServerPipelinedFeeds(t *testing.T) {
	s := newTestServer(t)
	c := dial(t, s)
	const n = 300
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "FEED %d %d\n", i%3, i%10)
	}
	sb.WriteString("STATS\n")
	if _, err := c.conn.Write([]byte(sb.String())); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		resp, err := c.r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if strings.TrimSpace(resp) != "OK" {
			t.Fatalf("ack %d = %q", i, resp)
		}
	}
	stats, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if got := statField(t, strings.TrimSpace(stats), "input"); got != strconv.Itoa(n) {
		t.Fatalf("input = %s, want %d", got, n)
	}
	// Coalescing is timing-dependent (it only folds lines already
	// buffered), so the only hard bounds are 1 ≤ flushes ≤ n.
	flushes, err := strconv.Atoi(statField(t, strings.TrimSpace(stats), "batch_flushes"))
	if err != nil || flushes < 1 || flushes > n {
		t.Fatalf("batch_flushes = %q (%v)", statField(t, strings.TrimSpace(stats), "batch_flushes"), err)
	}
}

// A pipelined burst mixing FEEDs into different queries and non-FEED
// commands must stop coalescing at each boundary and answer every
// line in order.
func TestServerCoalescingStopsAtBoundaries(t *testing.T) {
	s := newTestServer(t)
	c := dial(t, s)
	if resp := c.cmd(t, "CREATE side 50 (0 1)"); resp != "OK" {
		t.Fatalf("create: %s", resp)
	}
	burst := "FEED 0 1\nFEED 1 1\nFEED side 0 2\nFEED side 1 2\nPLAN\nFEED 2 1\n"
	if _, err := c.conn.Write([]byte(burst)); err != nil {
		t.Fatal(err)
	}
	want := []string{"OK", "OK", "OK", "OK", "PLAN ((0⋈1)⋈2)", "OK"}
	for i, w := range want {
		resp, err := c.r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if strings.TrimSpace(resp) != w {
			t.Fatalf("response %d = %q, want %q", i, strings.TrimSpace(resp), w)
		}
	}
	if got := statField(t, c.cmd(t, "STATS"), "input"); got != "3" {
		t.Fatalf("default input = %s, want 3", got)
	}
	if got := statField(t, c.cmd(t, "STATS side"), "input"); got != "2" {
		t.Fatalf("side input = %s, want 2", got)
	}
}

func TestClientFeedBatch(t *testing.T) {
	s := newTestServer(t)
	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Mixed streams: each run of consecutive same-stream events becomes
	// one FEEDB line on one pipelined burst — three lines here.
	var evs []workload.Event
	for st := 0; st < 3; st++ {
		for k := int64(0); k < 20; k++ {
			evs = append(evs, workload.Event{Stream: tuple.StreamID(st), Key: tuple.Value(k)})
		}
	}
	if err := c.FeedBatch(evs); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Input != 60 || st.Output != 20 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BatchFlushes == 0 {
		t.Fatalf("stats = %+v, want batch flushes recorded", st)
	}
	if err := c.FeedBatch(nil); err != nil {
		t.Fatal(err)
	}
	if err := c.FeedBatch([]workload.Event{{Stream: 99, Key: 1}}); err == nil {
		t.Fatal("bad stream accepted")
	}
	// The connection is still in lockstep after a rejected batch.
	if _, err := c.Plan(); err != nil {
		t.Fatal(err)
	}
}

func TestScopedClientFeedBatch(t *testing.T) {
	s := newTestServer(t)
	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Create("pairs", 20, plan.MustLeftDeep(0, 1)); err != nil {
		t.Fatal(err)
	}
	sc := c.On("pairs")
	if err := sc.FeedBatch([]workload.Event{
		{Stream: 0, Key: 1}, {Stream: 0, Key: 2}, {Stream: 1, Key: 1}, {Stream: 1, Key: 2},
	}); err != nil {
		t.Fatal(err)
	}
	st, err := sc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Input != 4 || st.Output != 2 || st.BatchFlushes != 2 {
		t.Fatalf("scoped stats = %+v", st)
	}
	dst, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if dst.Input != 0 {
		t.Fatalf("default stats = %+v", dst)
	}
}

// FEEDB on a durable server appends batch WAL frames; the batch
// survives a restart like any acknowledged FEED.
func TestServerDurableFeedBatchRestart(t *testing.T) {
	dir := t.TempDir()
	s := startDurableServer(t, dir)
	c := dial(t, s)
	for _, line := range []string{"FEEDB 0 7 8 9", "FEEDB 1 7 8 9", "FEEDB 2 7 8 9"} {
		if resp := c.cmd(t, line); resp != "OK" {
			t.Fatalf("%s -> %s", line, resp)
		}
	}
	stats := c.cmd(t, "STATS")
	wantIn, wantOut := statField(t, stats, "input"), statField(t, stats, "output")
	if wantIn != "9" || wantOut != "3" {
		t.Fatalf("stats = %q", stats)
	}
	// Three FEEDB commands, three appends: batch framing, not
	// per-event framing.
	if got := statField(t, stats, "wal_appends"); got != "3" {
		t.Fatalf("wal_appends = %s, want 3", got)
	}
	s.Close()

	s2 := startDurableServer(t, dir)
	defer s2.Close()
	c2 := dial(t, s2)
	stats2 := c2.cmd(t, "STATS")
	if statField(t, stats2, "input") != wantIn || statField(t, stats2, "output") != wantOut {
		t.Fatalf("after restart stats = %q, want input=%s output=%s", stats2, wantIn, wantOut)
	}
	if got := statField(t, stats2, "recovered_events"); got != "9" {
		t.Fatalf("recovered_events = %s, want 9", got)
	}
	// The recovered server still takes batches.
	if resp := c2.cmd(t, "FEEDB 0 10"); resp != "OK" {
		t.Fatalf("post-recovery FEEDB: %s", resp)
	}
}

// The batch telemetry families reach /metrics with raw (unitless)
// bucket bounds.
func TestTelemetryBatchSeries(t *testing.T) {
	s := newTestServer(t)
	if err := s.ServeTelemetry("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	c := dial(t, s)
	if resp := c.cmd(t, "FEEDB 0 1 2 3"); resp != "OK" {
		t.Fatalf("feedb: %s", resp)
	}
	c.cmd(t, "STATS") // in-band barrier
	m := scrape(t, s, "/metrics")
	for _, want := range []string{
		"# TYPE jisc_batch_fill histogram",
		`jisc_batch_fill_bucket{query="default",le="3"} 1`,
		`jisc_batch_fill_sum{query="default"} 3`,
		`jisc_batch_fill_count{query="default"} 1`,
		"# TYPE jisc_batch_flush_total counter",
		`jisc_batch_flush_total{query="default"} 1`,
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
