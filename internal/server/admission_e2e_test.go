package server

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"jisc/internal/admission"
	"jisc/internal/core"
	"jisc/internal/engine"
	"jisc/internal/pipeline"
	"jisc/internal/plan"
	"jisc/internal/workload"
)

// admissionServer starts a server with the given admission config and
// timeouts over the standard 3-stream test pipeline.
func admissionServer(t *testing.T, adm admission.Config, readTO, writeTO time.Duration) *Server {
	t.Helper()
	s, err := New(Config{
		Pipeline: pipeline.Config{Engine: engine.Config{
			Plan:       plan.MustLeftDeep(0, 1, 2),
			WindowSize: 100,
			Strategy:   core.New(),
		}},
		Admission:    adm,
		ReadTimeout:  readTO,
		WriteTimeout: writeTO,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestServerConnCap: dials beyond -max-conns draw one BUSY line and a
// close; a released slot is immediately reusable.
func TestServerConnCap(t *testing.T) {
	noLeak(t)
	s := admissionServer(t, admission.Config{MaxConns: 1}, 0, 0)
	c1 := dial(t, s)
	if resp := c1.cmd(t, "FEED 0 1"); resp != "OK" {
		t.Fatalf("capped conn 1: %s", resp)
	}

	c2, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c2.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := bufio.NewReader(c2).ReadString('\n')
	if err != nil {
		t.Fatalf("over-cap dial: %v", err)
	}
	if !strings.HasPrefix(line, "ERR BUSY too many connections") {
		t.Fatalf("over-cap greeting = %q", line)
	}
	// The server closes the rejected conn: the next read is EOF.
	if _, err := bufio.NewReader(c2).ReadString('\n'); err == nil {
		t.Fatal("rejected conn left open")
	}
	c2.Close()

	// Releasing the held slot lets a new dial in.
	c1.conn.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c3, err := net.Dial("tcp", s.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		c3.SetDeadline(time.Now().Add(2 * time.Second))
		fmt.Fprintf(c3, "FEED 0 2\n")
		resp, err := bufio.NewReader(c3).ReadString('\n')
		c3.Close()
		if err == nil && strings.TrimSpace(resp) == "OK" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never released: resp=%q err=%v", resp, err)
		}
		time.Sleep(20 * time.Millisecond) // the old conn's teardown may lag the close
	}
}

// TestServerRateLimitShedAccounting: a hose past the ingest rate gets
// every line acknowledged OK, but STATS shows the overage as
// admission_shed and conservation holds: input + admission_shed ==
// sent.
func TestServerRateLimitShedAccounting(t *testing.T) {
	noLeak(t)
	s := admissionServer(t, admission.Config{Rate: 50, Burst: 50}, 0, 0)
	c := dial(t, s)
	const sent = 300
	for i := 0; i < sent; i++ {
		if resp := c.cmd(t, fmt.Sprintf("FEED %d %d", i%3, i%7)); resp != "OK" {
			t.Fatalf("feed %d: %q (sheds must ack OK)", i, resp)
		}
	}
	stats := c.cmd(t, "STATS")
	input := statUint(t, stats, "input")
	shed := statUint(t, stats, "admission_shed")
	if input+shed != sent {
		t.Fatalf("conservation: input %d + admission_shed %d != %d\n%s", input, shed, sent, stats)
	}
	if shed == 0 {
		t.Fatal("nothing shed at 6x the rate limit")
	}
	if input == 0 {
		t.Fatal("everything shed — the burst should have admitted some")
	}
}

// TestServerInflightBudgetBusy: a single batch whose cost exceeds the
// whole in-flight budget is rejected with a retriable BUSY naming the
// budget, and counted.
func TestServerInflightBudgetBusy(t *testing.T) {
	noLeak(t)
	// Budget of 2 tuples' worth: any FEEDB with more can never fit.
	s := admissionServer(t, admission.Config{InflightBytes: 64}, 0, 0)
	c := dial(t, s)
	resp := c.cmd(t, "FEEDB 0 1 2 3 4")
	if !strings.HasPrefix(resp, "ERR BUSY") || !strings.Contains(resp, "in-flight budget") {
		t.Fatalf("over-budget FEEDB -> %q", resp)
	}
	stats := c.cmd(t, "STATS")
	if got := statUint(t, stats, "rejected"); got != 4 {
		t.Fatalf("rejected = %d, want 4", got)
	}
	if got := statUint(t, stats, "rejected_batches"); got != 1 {
		t.Fatalf("rejected_batches = %d, want 1", got)
	}
	// Within-budget traffic still flows.
	if resp := c.cmd(t, "FEED 0 1"); resp != "OK" {
		t.Fatalf("within-budget feed: %s", resp)
	}
}

// TestClientRetriesBusy: the typed client's jittered-backoff retry
// turns transient BUSY rejections into eventual delivery — under a
// tight in-flight budget and concurrent feeders, every tuple lands
// exactly once.
func TestClientRetriesBusy(t *testing.T) {
	noLeak(t)
	s := admissionServer(t, admission.Config{InflightBytes: 8 * 32}, 0, 0)
	const feeders, perFeeder = 4, 200
	var wg sync.WaitGroup
	for f := 0; f < feeders; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			c, err := Dial(s.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			c.RetryBusy = 100
			src := workload.MustNewSource(workload.Config{Streams: 3, Domain: 8, Seed: int64(f)})
			evs := src.Take(perFeeder)
			for i := 0; i < len(evs); i += 8 {
				end := i + 8
				if end > len(evs) {
					end = len(evs)
				}
				if err := c.FeedBatch(evs[i:end]); err != nil {
					t.Errorf("feeder %d: %v", f, err)
					return
				}
			}
		}(f)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Input != feeders*perFeeder {
		t.Fatalf("input = %d, want %d (BUSY retries must deliver exactly once)", st.Input, feeders*perFeeder)
	}
}

// TestServerReadTimeout: a half-sent command times the connection out,
// but a fully idle connection is never reaped — the deadline arms only
// once the first byte of a line arrives.
func TestServerReadTimeout(t *testing.T) {
	noLeak(t)
	s := admissionServer(t, admission.Config{}, 150*time.Millisecond, 0)

	// Idle conn: no bytes sent, must survive well past the timeout.
	idle := dial(t, s)
	time.Sleep(450 * time.Millisecond)
	if resp := idle.cmd(t, "FEED 0 1"); resp != "OK" {
		t.Fatalf("idle conn reaped: %s", resp)
	}

	// Half a line and then silence: the server must cut the conn.
	stuck, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer stuck.Close()
	if _, err := fmt.Fprintf(stuck, "FEE"); err != nil {
		t.Fatal(err)
	}
	stuck.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := bufio.NewReader(stuck).ReadString('\n'); err == nil {
		t.Fatal("half-line conn survived the read timeout")
	}
}

// TestBlockedSubscriberCannotStallFeeds is the satellite-4 regression:
// subscriber-drop (slow consumer) and admission shed share one
// ordering, and a subscriber wedged mid-TCP-write is bounded by the
// write deadline — it can never pin its connection's writer lock, and
// the feed path keeps acknowledging at full speed throughout.
func TestBlockedSubscriberCannotStallFeeds(t *testing.T) {
	noLeak(t)
	s, err := New(Config{
		Pipeline: pipeline.Config{Engine: engine.Config{
			Plan:       plan.MustLeftDeep(0, 1),
			WindowSize: 2000,
			Strategy:   core.New(),
		}},
		SubscriberBuffer: 4,
		WriteTimeout:     200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	// The victim subscriber: tiny receive window, then never reads.
	subConn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer subConn.Close()
	if tc, ok := subConn.(*net.TCPConn); ok {
		tc.SetReadBuffer(1 << 10)
	}
	fmt.Fprintf(subConn, "SUBSCRIBE\n")
	subConn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if line, err := bufio.NewReader(subConn).ReadString('\n'); err != nil || strings.TrimSpace(line) != "OK" {
		t.Fatalf("subscribe: %q, %v", line, err)
	}
	// From here on the subscriber reads nothing.

	// The feeder: a high-fanout join (every stream-1 tuple matches the
	// whole windowed stream-0 population) floods the subscriber with
	// result lines until its socket jams.
	feeder := dial(t, s)
	for i := 0; i < 1000; i++ {
		if resp := feeder.cmd(t, "FEED 0 7"); resp != "OK" {
			t.Fatalf("warmup feed %d: %s", i, resp)
		}
	}
	// Each of these produces ~1000 result lines; the feed ack must
	// come back promptly even while the subscriber's conn is wedged.
	for i := 0; i < 200; i++ {
		feeder.conn.SetDeadline(time.Now().Add(5 * time.Second))
		if resp := feeder.cmd(t, "FEED 1 7"); resp != "OK" {
			t.Fatalf("fanout feed %d: %s", i, resp)
		}
	}

	// The wedged subscriber must be gone within the write deadline —
	// dropped by the slow-consumer policy and its conn closed by the
	// deadline, counted in subs_dropped.
	deadline := time.Now().Add(10 * time.Second)
	for s.Subscribers(DefaultQuery) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("blocked subscriber still registered")
		}
		time.Sleep(20 * time.Millisecond)
	}
	st, err := func() (Stats, error) {
		c, err := Dial(s.Addr().String())
		if err != nil {
			return Stats{}, err
		}
		defer c.Close()
		return c.Stats()
	}()
	if err != nil {
		t.Fatal(err)
	}
	if st.SubsDropped != 1 {
		t.Fatalf("subs_dropped = %d, want 1 (the drop must be counted, not silent)", st.SubsDropped)
	}
}

// statUint reads one numeric field from a raw STATS line.
func statUint(t *testing.T, stats, key string) uint64 {
	t.Helper()
	var v uint64
	if _, err := fmt.Sscanf(statField(t, stats, key), "%d", &v); err != nil {
		t.Fatalf("stats field %s: %v", key, err)
	}
	return v
}
