package server

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"

	"jisc/internal/admission"
	"jisc/internal/durable"
	"jisc/internal/obs"
	"jisc/internal/statestore"
)

// ServeTelemetry binds addr (e.g. "127.0.0.1:9090") and serves the
// HTTP observability endpoint alongside the TCP query protocol:
//
//	/metrics       Prometheus text format: per-query counters plus the
//	               latency histograms (feed, probe, build, completion
//	               episode, migrate) from the internal/obs recorders
//	/trace         JSON dump of the recent migration-lifecycle events
//	               (plan proposed/installed, state classification,
//	               completion episodes, subscriber drops)
//	/healthz       liveness probe, "ok" with status 200
//	/debug/pprof/  the standard net/http/pprof profiles
//
// The endpoint is read-only and lock-free on the hot path: counters
// and histograms are atomic snapshots, so scraping never queues behind
// tuples. Server.Close shuts the endpoint down.
func (s *Server) ServeTelemetry(addr string) error {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/trace", s.handleTrace)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: mux}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("server closed")
	}
	if s.telemetry != nil {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("telemetry already serving on %s", s.telemetryLn.Addr())
	}
	s.telemetry = srv
	s.telemetryLn = ln
	s.mu.Unlock()
	go srv.Serve(ln)
	return nil
}

// TelemetryAddr returns the bound telemetry address, nil before
// ServeTelemetry.
func (s *Server) TelemetryAddr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.telemetryLn == nil {
		return nil
	}
	return s.telemetryLn.Addr()
}

// sortedQueries snapshots the hosted queries, sorted by name for
// stable exposition output.
func (s *Server) sortedQueries() []*query {
	s.mu.Lock()
	qs := make([]*query, 0, len(s.queries))
	for _, q := range s.queries {
		qs = append(qs, q)
	}
	s.mu.Unlock()
	sort.Slice(qs, func(i, j int) bool { return qs[i].name < qs[j].name })
	return qs
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	qs := s.sortedQueries()

	counters := []struct {
		name string
		get  func(*query) uint64
	}{
		{"jisc_input_tuples_total", func(q *query) uint64 { return q.runner.Snapshot().Input }},
		{"jisc_output_tuples_total", func(q *query) uint64 { return q.runner.Snapshot().Output }},
		{"jisc_transitions_total", func(q *query) uint64 { return q.runner.Snapshot().Transitions }},
		{"jisc_completions_total", func(q *query) uint64 { return q.runner.Snapshot().Completions }},
		{"jisc_completed_entries_total", func(q *query) uint64 { return q.runner.Snapshot().CompletedEntries }},
		{"jisc_shed_tuples_total", func(q *query) uint64 { return q.runner.Shed() }},
		{"jisc_subscribers_dropped_total", func(q *query) uint64 { return q.dropped() }},
		{"jisc_trace_events_total", func(q *query) uint64 { return q.obs.Tracer.Emitted() }},
		{"jisc_trace_dropped_total", func(q *query) uint64 { return q.obs.Tracer.Dropped() }},
	}
	for _, c := range counters {
		obs.WritePromType(w, c.name, "counter")
		for _, q := range qs {
			obs.WritePromCounterSeries(w, c.name, obs.PromLabels(q.name), c.get(q))
		}
	}

	obs.WritePromType(w, "jisc_subscribers", "gauge")
	for _, q := range qs {
		obs.WritePromGaugeSeries(w, "jisc_subscribers", obs.PromLabels(q.name), float64(q.subscribers()))
	}
	obs.WritePromType(w, "jisc_queue_depth", "gauge")
	for _, q := range qs {
		obs.WritePromGaugeSeries(w, "jisc_queue_depth", obs.PromLabels(q.name), float64(q.runner.QueueLen()))
	}

	// Durability: per-query WAL and checkpoint counters, plus the
	// server-wide "running without a WAL" accounting. All are atomic
	// snapshots, zero for non-durable servers.
	walCounters := []struct {
		name string
		get  func(durable.StatsSnapshot) uint64
	}{
		{"jisc_wal_appends_total", func(d durable.StatsSnapshot) uint64 { return d.Appends }},
		{"jisc_wal_append_bytes_total", func(d durable.StatsSnapshot) uint64 { return d.AppendBytes }},
		{"jisc_wal_fsyncs_total", func(d durable.StatsSnapshot) uint64 { return d.Fsyncs }},
		{"jisc_wal_rotations_total", func(d durable.StatsSnapshot) uint64 { return d.Rotations }},
		{"jisc_wal_segments_removed_total", func(d durable.StatsSnapshot) uint64 { return d.SegmentsRemoved }},
		{"jisc_wal_torn_truncations_total", func(d durable.StatsSnapshot) uint64 { return d.TornTruncations }},
		{"jisc_checkpoints_total", func(d durable.StatsSnapshot) uint64 { return d.Checkpoints }},
		{"jisc_checkpoint_failures_total", func(d durable.StatsSnapshot) uint64 { return d.CheckpointFailures }},
		{"jisc_recovered_events_total", func(d durable.StatsSnapshot) uint64 { return d.RecoveredEvents }},
	}
	durSnaps := make([]durable.StatsSnapshot, len(qs))
	for i, q := range qs {
		durSnaps[i] = q.runner.DurableStats()
	}
	for _, c := range walCounters {
		obs.WritePromType(w, c.name, "counter")
		for i, q := range qs {
			obs.WritePromCounterSeries(w, c.name, obs.PromLabels(q.name), c.get(durSnaps[i]))
		}
	}
	obs.WritePromType(w, "jisc_wal_segments", "gauge")
	for _, q := range qs {
		obs.WritePromGaugeSeries(w, "jisc_wal_segments", obs.PromLabels(q.name), float64(q.runner.WALSegments()))
	}
	obs.WritePromType(w, "jisc_recovery_seconds", "gauge")
	for i, q := range qs {
		obs.WritePromGaugeSeries(w, "jisc_recovery_seconds", obs.PromLabels(q.name), float64(durSnaps[i].RecoveryNs)/1e9)
	}
	// Tiered state: resident footprint, spill segment count, and the
	// fault counter. Segments and faults stay 0 for queries running
	// without a state budget. With spilling on, state bytes come from
	// the store's atomic accounting (lock-free); without it the only
	// race-free read is in-band on each worker, so the scrape may
	// briefly queue behind tuples there.
	spillSnaps := make([]statestore.Stats, len(qs))
	spillOn := make([]bool, len(qs))
	for i, q := range qs {
		spillSnaps[i], spillOn[i] = q.runner.SpillStats()
	}
	obs.WritePromType(w, "jisc_state_bytes", "gauge")
	for i, q := range qs {
		if spillOn[i] {
			obs.WritePromGaugeSeries(w, "jisc_state_bytes", obs.PromLabels(q.name), float64(spillSnaps[i].ResidentBytes))
		} else if b, err := q.runner.StateBytes(); err == nil {
			obs.WritePromGaugeSeries(w, "jisc_state_bytes", obs.PromLabels(q.name), float64(b))
		}
	}
	obs.WritePromType(w, "jisc_spill_segments", "gauge")
	for i, q := range qs {
		obs.WritePromGaugeSeries(w, "jisc_spill_segments", obs.PromLabels(q.name), float64(spillSnaps[i].Segments))
	}
	obs.WritePromType(w, "jisc_spill_fault_total", "counter")
	for i, q := range qs {
		obs.WritePromCounterSeries(w, "jisc_spill_fault_total", obs.PromLabels(q.name), spillSnaps[i].Faults)
	}

	walDisabled := 1.0
	if s.durable.Enabled() {
		walDisabled = 0
	}
	obs.WritePromGauge(w, "jisc_wal_disabled", "", walDisabled)
	obs.WritePromCounter(w, "jisc_wal_disabled_mutations_total", "", s.walDisabled.Load())

	// Autopilot: the enabled gauge, the decision counters, and the age
	// of the last self-driven migration. All zeros while AUTO is off.
	autoSnaps := make([][5]uint64, len(qs))
	for i, q := range qs {
		en, pr, mg, rb, age := autoStats(q)
		autoSnaps[i] = [5]uint64{en, pr, mg, rb, age}
	}
	obs.WritePromType(w, "jisc_auto_enabled", "gauge")
	for i, q := range qs {
		obs.WritePromGaugeSeries(w, "jisc_auto_enabled", obs.PromLabels(q.name), float64(autoSnaps[i][0]))
	}
	autoCounters := []struct {
		name string
		idx  int
	}{
		{"jisc_auto_proposals_total", 1},
		{"jisc_auto_migrations_total", 2},
		{"jisc_auto_rollbacks_total", 3},
	}
	for _, c := range autoCounters {
		obs.WritePromType(w, c.name, "counter")
		for i, q := range qs {
			obs.WritePromCounterSeries(w, c.name, obs.PromLabels(q.name), autoSnaps[i][c.idx])
		}
	}
	obs.WritePromType(w, "jisc_auto_last_migration_seconds", "gauge")
	for i, q := range qs {
		obs.WritePromGaugeSeries(w, "jisc_auto_last_migration_seconds", obs.PromLabels(q.name), float64(autoSnaps[i][4])/1e3)
	}

	hists := []struct {
		name string
		get  func(obs.SetSnapshot) obs.HistSnapshot
	}{
		{"jisc_feed_latency_seconds", func(s obs.SetSnapshot) obs.HistSnapshot { return s.Feed }},
		{"jisc_probe_seconds", func(s obs.SetSnapshot) obs.HistSnapshot { return s.Probe }},
		{"jisc_build_seconds", func(s obs.SetSnapshot) obs.HistSnapshot { return s.Build }},
		{"jisc_completion_episode_seconds", func(s obs.SetSnapshot) obs.HistSnapshot { return s.Completion }},
		{"jisc_migrate_seconds", func(s obs.SetSnapshot) obs.HistSnapshot { return s.Migrate }},
		{"jisc_wal_append_seconds", func(s obs.SetSnapshot) obs.HistSnapshot { return s.WALAppend }},
		{"jisc_wal_fsync_seconds", func(s obs.SetSnapshot) obs.HistSnapshot { return s.WALFsync }},
		{"jisc_spill_fault_seconds", func(s obs.SetSnapshot) obs.HistSnapshot { return s.SpillFault }},
	}
	snaps := make([]obs.SetSnapshot, len(qs))
	for i, q := range qs {
		snaps[i] = q.obs.Snapshot()
	}
	for _, h := range hists {
		obs.WritePromType(w, h.name, "histogram")
		for i, q := range qs {
			obs.WritePromHistogramSeries(w, h.name, obs.PromLabels(q.name), h.get(snaps[i]))
		}
	}

	// Batched ingest: realized batch sizes as a raw (unitless)
	// histogram, plus the batch-flush counter (its _count, duplicated
	// as a plain counter for easy rate() queries).
	obs.WritePromType(w, "jisc_batch_fill", "histogram")
	for i, q := range qs {
		obs.WritePromHistogramRawSeries(w, "jisc_batch_fill", obs.PromLabels(q.name), snaps[i].BatchFill)
	}
	obs.WritePromType(w, "jisc_batch_flush_total", "counter")
	for i, q := range qs {
		obs.WritePromCounterSeries(w, "jisc_batch_flush_total", obs.PromLabels(q.name), snaps[i].BatchFill.Count)
	}

	// Admission: the degradation-ladder counters per query (zero when
	// admission is off — the nil controller snapshots to zeros), the
	// in-flight byte gauge the budget bounds, and the server-wide
	// connection gate.
	admSnaps := make([]admission.Stats, len(qs))
	for i, q := range qs {
		admSnaps[i] = q.adm.Snapshot()
	}
	admCounters := []struct {
		name string
		get  func(admission.Stats) uint64
	}{
		{"jisc_admission_shed_tuples_total", func(a admission.Stats) uint64 { return a.ShedTuples }},
		{"jisc_admission_deadline_shed_tuples_total", func(a admission.Stats) uint64 { return a.DeadlineShedTuples }},
		{"jisc_admission_rejected_tuples_total", func(a admission.Stats) uint64 { return a.RejectedTuples }},
		{"jisc_admission_rejected_batches_total", func(a admission.Stats) uint64 { return a.RejectedBatches }},
	}
	for _, c := range admCounters {
		obs.WritePromType(w, c.name, "counter")
		for i, q := range qs {
			obs.WritePromCounterSeries(w, c.name, obs.PromLabels(q.name), c.get(admSnaps[i]))
		}
	}
	obs.WritePromType(w, "jisc_admission_inflight_bytes", "gauge")
	for i, q := range qs {
		obs.WritePromGaugeSeries(w, "jisc_admission_inflight_bytes", obs.PromLabels(q.name), float64(admSnaps[i].InflightBytes))
	}
	connStats := s.adm.Snapshot()
	obs.WritePromGauge(w, "jisc_admission_conns", "", float64(connStats.Conns))
	obs.WritePromCounter(w, "jisc_admission_conns_rejected_total", "", connStats.ConnRejected)
	draining := 0.0
	if s.draining.Load() {
		draining = 1
	}
	obs.WritePromGauge(w, "jisc_draining", "", draining)
}

// traceDump is the /trace response shape.
type traceDump struct {
	Queries []queryTrace `json:"queries"`
}

type queryTrace struct {
	Query   string      `json:"query"`
	Emitted uint64      `json:"emitted"`
	Dropped uint64      `json:"dropped"`
	Events  []obs.Event `json:"events"`
}

func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	dump := traceDump{Queries: []queryTrace{}}
	for _, q := range s.sortedQueries() {
		ev := q.obs.Tracer.Events()
		if ev == nil {
			ev = []obs.Event{}
		}
		dump.Queries = append(dump.Queries, queryTrace{
			Query:   q.name,
			Emitted: q.obs.Tracer.Emitted(),
			Dropped: q.obs.Tracer.Dropped(),
			Events:  ev,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(dump)
}
