// Package chaosnet is a fault-injecting TCP proxy for hardening
// network servers: it forwards byte streams between clients and a
// target address while imposing latency, jitter, bandwidth caps,
// mid-write connection resets, half-open stalls, and full partitions.
//
// The proxy is the adversary in the overload e2e suite — it sits in
// front of a jiscd listener and makes the network misbehave in the
// ways production networks actually do, so the tests can assert the
// server's invariants (bounded memory, exact drop accounting, clean
// drain) hold under abuse rather than only on a loopback in a good
// mood.
//
// Faults are applied per direction, per chunk (a bounded read of at
// most ChunkBytes). All randomness derives from Config.Seed, so a
// failing test names one integer to reproduce the fault schedule.
package chaosnet

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Config selects which faults the proxy injects. The zero value is a
// transparent proxy: no latency, no cap, no resets.
type Config struct {
	// Seed drives every random decision (jitter, reset coin flips).
	// Zero is a valid seed.
	Seed int64

	// Latency is a fixed one-way delay added to every forwarded chunk,
	// both directions. Jitter adds a uniform random extra in [0,
	// Jitter) on top.
	Latency time.Duration
	Jitter  time.Duration

	// BytesPerSec caps forwarding throughput per direction; 0 means
	// uncapped. The cap is enforced by pacing: after forwarding a
	// chunk the pump sleeps long enough that the connection's average
	// rate never exceeds the cap.
	BytesPerSec int64

	// ChunkBytes is the forwarding granularity (max bytes moved per
	// read); 0 means 1024. Small chunks interact with latency to
	// simulate a slow, choppy link.
	ChunkBytes int

	// ResetAfterBytes hard-resets a connection (RST, not FIN — the
	// peer sees ECONNRESET mid-write) once its client→server pump has
	// forwarded at least this many bytes. 0 disables.
	ResetAfterBytes int64

	// ResetProb is a per-chunk probability in [0,1] of hard-resetting
	// the connection, independent of ResetAfterBytes.
	ResetProb float64

	// StallAfterBytes half-opens a connection once its client→server
	// pump has forwarded at least this many bytes: the proxy keeps
	// both sockets open but forwards nothing further in either
	// direction. The peers see a silent peer, not an error — the
	// nastiest failure mode. 0 disables.
	StallAfterBytes int64
}

// Stats counts what the proxy has done, for test assertions.
type Stats struct {
	Conns          uint64 // connections accepted
	Resets         uint64 // connections hard-reset by fault injection
	Stalls         uint64 // connections half-opened by fault injection
	BytesToServer  uint64
	BytesToClient  uint64
	PartitionDrops uint64 // dials refused or conns killed by partition
}

// Proxy is a fault-injecting TCP forwarder. Create with New, stop with
// Close.
type Proxy struct {
	cfg    Config
	ln     net.Listener
	target string

	partitioned atomic.Bool
	closed      atomic.Bool

	mu    sync.Mutex
	links map[*link]struct{}
	seq   int64 // connection counter, seeds per-link rngs

	conns          atomic.Uint64
	resets         atomic.Uint64
	stalls         atomic.Uint64
	bytesToServer  atomic.Uint64
	bytesToClient  atomic.Uint64
	partitionDrops atomic.Uint64

	wg sync.WaitGroup
}

// link is one proxied connection pair.
type link struct {
	client net.Conn
	server net.Conn
	// done closes exactly once, whatever ends the link first.
	done     chan struct{}
	doneOnce sync.Once
	// stalled flips once and never back; pumps park on done after it.
	stalled atomic.Bool
}

func (l *link) finish() { l.doneOnce.Do(func() { close(l.done) }) }

// New starts a proxy listening on addr (use "127.0.0.1:0" for an
// ephemeral port) and forwarding every connection to target.
func New(addr, target string, cfg Config) (*Proxy, error) {
	if cfg.ChunkBytes <= 0 {
		cfg.ChunkBytes = 1024
	}
	if cfg.ResetProb < 0 || cfg.ResetProb > 1 {
		return nil, errors.New("chaosnet: ResetProb outside [0,1]")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p := &Proxy{cfg: cfg, ln: ln, target: target, links: map[*link]struct{}{}}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the proxy's listen address — point clients here.
func (p *Proxy) Addr() net.Addr { return p.ln.Addr() }

// SetPartitioned toggles a full partition. Partitioned, the proxy
// hard-kills every active connection and refuses new ones (accept then
// immediate close — the client sees a connection that dies instantly,
// as across a real partition with RST-generating middleboxes). Healing
// the partition lets new connections through again; the killed ones
// stay dead.
func (p *Proxy) SetPartitioned(v bool) {
	p.partitioned.Store(v)
	if !v {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for l := range p.links {
		p.partitionDrops.Add(1)
		hardClose(l.client)
		hardClose(l.server)
		l.finish()
	}
}

// Partitioned reports the current partition state.
func (p *Proxy) Partitioned() bool { return p.partitioned.Load() }

// Stats returns a snapshot of the proxy's counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Conns:          p.conns.Load(),
		Resets:         p.resets.Load(),
		Stalls:         p.stalls.Load(),
		BytesToServer:  p.bytesToServer.Load(),
		BytesToClient:  p.bytesToClient.Load(),
		PartitionDrops: p.partitionDrops.Load(),
	}
}

// Close stops accepting, kills every live link, and waits for the
// pump goroutines to exit — after Close returns the proxy has leaked
// nothing.
func (p *Proxy) Close() error {
	if p.closed.Swap(true) {
		return nil
	}
	err := p.ln.Close()
	p.mu.Lock()
	for l := range p.links {
		hardClose(l.client)
		hardClose(l.server)
		l.finish()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if p.partitioned.Load() {
			p.partitionDrops.Add(1)
			hardClose(c)
			continue
		}
		s, err := net.Dial("tcp", p.target)
		if err != nil {
			hardClose(c)
			continue
		}
		p.conns.Add(1)
		l := &link{client: c, server: s, done: make(chan struct{})}
		p.mu.Lock()
		seq := p.seq
		p.seq++
		if p.closed.Load() {
			p.mu.Unlock()
			hardClose(c)
			hardClose(s)
			continue
		}
		p.links[l] = struct{}{}
		p.mu.Unlock()

		p.wg.Add(2)
		// Independent rngs per pump: the two directions must not
		// contend on one rand source, and the schedule stays a pure
		// function of (Seed, connection index, direction).
		go p.pump(l, c, s, &p.bytesToServer, true, rand.New(rand.NewSource(p.cfg.Seed^(seq*2+1))))
		go p.pump(l, s, c, &p.bytesToClient, false, rand.New(rand.NewSource(p.cfg.Seed^(seq*2+2))))
	}
}

// pump moves chunks src→dst until the link dies, injecting the
// configured faults. toServer marks the client→server direction, which
// owns the byte-threshold reset and stall triggers (thresholds against
// ingest volume, the quantity the tests control).
func (p *Proxy) pump(l *link, src, dst net.Conn, total *atomic.Uint64, toServer bool, rng *rand.Rand) {
	defer p.wg.Done()
	defer p.unlink(l)
	buf := make([]byte, p.cfg.ChunkBytes)
	var forwarded int64
	for {
		select {
		case <-l.done:
			return
		default:
		}
		if l.stalled.Load() {
			<-l.done // half-open: hold the sockets, forward nothing
			return
		}
		// Bound the read so a stall/partition decision is never more
		// than one chunk away.
		src.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
		n, err := src.Read(buf)
		if n > 0 {
			if d := p.delay(rng); d > 0 {
				select {
				case <-l.done:
					return
				case <-time.After(d):
				}
			}
			if l.stalled.Load() {
				<-l.done
				return
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				l.finish()
				return
			}
			forwarded += int64(n)
			total.Add(uint64(n))
			if toServer && p.maybeFault(l, forwarded, rng) {
				return
			}
			if p.cfg.BytesPerSec > 0 {
				pace := time.Duration(float64(n) / float64(p.cfg.BytesPerSec) * float64(time.Second))
				select {
				case <-l.done:
					return
				case <-time.After(pace):
				}
			}
		}
		if err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				continue // deadline tick: re-check done/stall and read again
			}
			if err == io.EOF {
				// Graceful half-close: propagate the FIN and let the
				// other pump keep running.
				if cw, ok := dst.(interface{ CloseWrite() error }); ok {
					cw.CloseWrite()
					return
				}
			}
			l.finish()
			return
		}
	}
}

// maybeFault applies the reset and stall triggers; true means the pump
// must exit.
func (p *Proxy) maybeFault(l *link, forwarded int64, rng *rand.Rand) bool {
	if p.cfg.StallAfterBytes > 0 && forwarded >= p.cfg.StallAfterBytes && !l.stalled.Swap(true) {
		p.stalls.Add(1)
		<-l.done
		return true
	}
	reset := p.cfg.ResetAfterBytes > 0 && forwarded >= p.cfg.ResetAfterBytes
	if !reset && p.cfg.ResetProb > 0 && rng.Float64() < p.cfg.ResetProb {
		reset = true
	}
	if reset {
		p.resets.Add(1)
		hardClose(l.client)
		hardClose(l.server)
		l.finish()
		return true
	}
	return false
}

// delay computes the per-chunk latency+jitter.
func (p *Proxy) delay(rng *rand.Rand) time.Duration {
	d := p.cfg.Latency
	if p.cfg.Jitter > 0 {
		d += time.Duration(rng.Int63n(int64(p.cfg.Jitter)))
	}
	return d
}

func (p *Proxy) unlink(l *link) {
	l.finish()
	l.client.Close()
	l.server.Close()
	p.mu.Lock()
	delete(p.links, l)
	p.mu.Unlock()
}

// hardClose sends RST instead of FIN where the transport allows it, so
// the peer sees ECONNRESET mid-write rather than a graceful EOF.
func hardClose(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Close()
}
