package chaosnet

import (
	"bufio"
	"fmt"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"
)

// echoServer accepts connections and echoes lines back, until its
// listener closes.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				sc := bufio.NewScanner(c)
				for sc.Scan() {
					fmt.Fprintf(c, "%s\n", sc.Text())
				}
			}(c)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

// checkGoroutines fails the test if the goroutine count has not
// settled back to the baseline it captures at call time.
func checkGoroutines(t *testing.T) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		for i := 0; i < 50; i++ {
			if runtime.NumGoroutine() <= base {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<16)
		t.Errorf("goroutines leaked: %d > baseline %d\n%s",
			runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
	})
}

func TestTransparentForwarding(t *testing.T) {
	checkGoroutines(t)
	ln := echoServer(t)
	p, err := New("127.0.0.1:0", ln.Addr().String(), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", p.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r := bufio.NewReader(c)
	for i := 0; i < 50; i++ {
		line := fmt.Sprintf("hello %d", i)
		fmt.Fprintf(c, "%s\n", line)
		got, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if strings.TrimSpace(got) != line {
			t.Fatalf("echo %q, want %q", got, line)
		}
	}
	s := p.Stats()
	if s.Conns != 1 || s.BytesToServer == 0 || s.BytesToClient == 0 {
		t.Fatalf("stats after clean echo: %+v", s)
	}
}

func TestResetAfterBytes(t *testing.T) {
	checkGoroutines(t)
	ln := echoServer(t)
	p, err := New("127.0.0.1:0", ln.Addr().String(), Config{Seed: 2, ResetAfterBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", p.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(5 * time.Second))
	// Keep writing until the proxy pulls the plug; the client must see
	// an error (reset or closed pipe), never hang.
	var failed bool
	for i := 0; i < 10_000; i++ {
		if _, err := fmt.Fprintf(c, "x line %d padding padding padding\n", i); err != nil {
			failed = true
			break
		}
	}
	if !failed {
		// The write side may succeed into OS buffers; the read side
		// must still observe the death.
		buf := make([]byte, 1)
		if _, err := c.Read(buf); err == nil {
			t.Fatal("connection survived past the reset threshold")
		}
	}
	if got := p.Stats().Resets; got != 1 {
		t.Fatalf("Resets = %d, want 1", got)
	}
}

func TestStallHalfOpens(t *testing.T) {
	checkGoroutines(t)
	ln := echoServer(t)
	p, err := New("127.0.0.1:0", ln.Addr().String(), Config{Seed: 3, StallAfterBytes: 32, ChunkBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", p.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fmt.Fprintf(c, "0123456789012345678901234567890123456789\n") // past the threshold
	// The connection is now half-open: reads see silence, not EOF.
	c.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
	buf := make([]byte, 64)
	if _, err := c.Read(buf); err == nil {
		// The first chunk(s) may echo before the stall lands; a second
		// read must then block.
		c.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
		if _, err := c.Read(buf); err == nil {
			t.Fatal("stalled connection still delivering")
		}
	}
	ne, ok := err.(net.Error)
	if err != nil && (!ok || !ne.Timeout()) {
		t.Fatalf("stalled read: %v, want timeout (half-open, not closed)", err)
	}
	if got := p.Stats().Stalls; got != 1 {
		t.Fatalf("Stalls = %d, want 1", got)
	}
}

func TestPartition(t *testing.T) {
	checkGoroutines(t)
	ln := echoServer(t)
	p, err := New("127.0.0.1:0", ln.Addr().String(), Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", p.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r := bufio.NewReader(c)
	fmt.Fprintf(c, "before\n")
	if _, err := r.ReadString('\n'); err != nil {
		t.Fatal(err)
	}

	p.SetPartitioned(true)
	c.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := r.ReadString('\n'); err == nil {
		t.Fatal("read succeeded across a partition")
	}
	// New dials during the partition die immediately.
	c2, err := net.Dial("tcp", p.Addr().String())
	if err == nil {
		c2.SetDeadline(time.Now().Add(2 * time.Second))
		if _, err := c2.Read(make([]byte, 1)); err == nil {
			t.Fatal("new connection alive across a partition")
		}
		c2.Close()
	}

	// Healing restores service for fresh connections.
	p.SetPartitioned(false)
	c3, err := net.Dial("tcp", p.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	c3.SetDeadline(time.Now().Add(2 * time.Second))
	fmt.Fprintf(c3, "after\n")
	got, err := bufio.NewReader(c3).ReadString('\n')
	if err != nil || strings.TrimSpace(got) != "after" {
		t.Fatalf("post-heal echo = %q, %v", got, err)
	}
}

func TestLatencySlowsEcho(t *testing.T) {
	checkGoroutines(t)
	ln := echoServer(t)
	p, err := New("127.0.0.1:0", ln.Addr().String(), Config{Seed: 5, Latency: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", p.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	fmt.Fprintf(c, "ping\n")
	if _, err := bufio.NewReader(c).ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	// One chunk each way: at least 2× the one-way latency.
	if rtt := time.Since(start); rtt < 60*time.Millisecond {
		t.Fatalf("round trip %v under a 30ms one-way latency", rtt)
	}
}
