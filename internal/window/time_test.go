package window

import (
	"testing"

	"jisc/internal/tuple"
)

func TestTimeWindowBasics(t *testing.T) {
	w := NewTime(0, 10)
	if w.Stream() != 0 || w.Span() != 10 {
		t.Fatal("accessors")
	}
	if exp := w.Slide(tuple.Ref{Stream: 0, Seq: 1}, 5, 100); len(exp) != 0 {
		t.Fatalf("expiry on first admit: %v", exp)
	}
	if exp := w.Slide(tuple.Ref{Stream: 0, Seq: 2}, 6, 105); len(exp) != 0 {
		t.Fatalf("expiry within span: %v", exp)
	}
	if w.Len() != 2 {
		t.Fatalf("Len = %d", w.Len())
	}
	// ts 111: cutoff 101 expires the ts-100 entry only.
	exp := w.Slide(tuple.Ref{Stream: 0, Seq: 3}, 7, 111)
	if len(exp) != 1 || exp[0].Ref.Seq != 1 || exp[0].Key != 5 {
		t.Fatalf("expired = %v", exp)
	}
	if w.Len() != 2 {
		t.Fatalf("Len after expiry = %d", w.Len())
	}
}

func TestTimeWindowBatchExpiry(t *testing.T) {
	w := NewTime(1, 5)
	for i := uint64(1); i <= 4; i++ {
		w.Slide(tuple.Ref{Stream: 1, Seq: i}, tuple.Value(i), 10+i)
	}
	// Jump far ahead: everything expires at once.
	exp := w.Slide(tuple.Ref{Stream: 1, Seq: 5}, 9, 100)
	if len(exp) != 4 {
		t.Fatalf("expired %d entries, want 4", len(exp))
	}
	for i, e := range exp {
		if e.Ref.Seq != uint64(i+1) {
			t.Fatalf("expiry order: %v", exp)
		}
	}
	if w.Len() != 1 {
		t.Fatalf("Len = %d", w.Len())
	}
}

func TestTimeWindowBoundaries(t *testing.T) {
	w := NewTime(0, 10)
	w.Slide(tuple.Ref{Stream: 0, Seq: 1}, 1, 100)
	// ts 110: cutoff 100 — the entry AT the cutoff expires (strictly
	// older-or-equal leaves the window).
	exp := w.Slide(tuple.Ref{Stream: 0, Seq: 2}, 2, 110)
	if len(exp) != 1 {
		t.Fatalf("boundary expiry = %v", exp)
	}
}

func TestTimeWindowCompaction(t *testing.T) {
	w := NewTime(0, 1)
	for i := uint64(1); i <= 500; i++ {
		w.Slide(tuple.Ref{Stream: 0, Seq: i}, 0, i*10)
	}
	if w.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (span smaller than gaps)", w.Len())
	}
	var seen int
	w.Each(func(Entry) bool { seen++; return true })
	if seen != 1 {
		t.Fatalf("Each visited %d", seen)
	}
}

func TestTimeWindowPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero span", func() { NewTime(0, 0) })
	mustPanic("cross stream", func() {
		NewTime(0, 5).Slide(tuple.Ref{Stream: 1, Seq: 1}, 0, 1)
	})
	mustPanic("time regression", func() {
		w := NewTime(0, 5)
		w.Slide(tuple.Ref{Stream: 0, Seq: 1}, 0, 10)
		w.Slide(tuple.Ref{Stream: 0, Seq: 2}, 0, 9)
	})
}

func TestCountWindowSlideAdapter(t *testing.T) {
	var s Slider = New(0, 2)
	s.Slide(tuple.Ref{Stream: 0, Seq: 1}, 1, 0)
	s.Slide(tuple.Ref{Stream: 0, Seq: 2}, 2, 0)
	exp := s.Slide(tuple.Ref{Stream: 0, Seq: 3}, 3, 0)
	if len(exp) != 1 || exp[0].Ref.Seq != 1 {
		t.Fatalf("adapter expiry = %v", exp)
	}
	if s.Len() != 2 || s.Stream() != 0 {
		t.Fatal("adapter accessors")
	}
}
