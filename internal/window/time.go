package window

import (
	"fmt"

	"jisc/internal/tuple"
)

// Slider is the common contract of sliding-window implementations:
// admit a new base tuple with its event timestamp, get back every
// entry that fell out of the window.
type Slider interface {
	// Slide admits one tuple and returns the expired entries, oldest
	// first.
	Slide(ref tuple.Ref, key tuple.Value, ts uint64) []Entry
	// Len returns the number of live tuples.
	Len() int
	// Stream returns the stream the window tracks.
	Stream() tuple.StreamID
}

// Slide implements Slider for the count-based Window: at most one
// entry expires per admission. The timestamp is ignored.
func (w *Window) Slide(ref tuple.Ref, key tuple.Value, _ uint64) []Entry {
	if exp, ok := w.Admit(ref, key); ok {
		return []Entry{exp}
	}
	return nil
}

// TimeWindow is a time-based sliding window (§2.1 covers sliding
// windows generally; the paper's experiments use count-based ones):
// it keeps the tuples whose timestamp lies within Span of the newest
// admitted timestamp. Timestamps must be non-decreasing per stream;
// in this repository they are the engine's global arrival ticks, so
// the window is deterministic and testable.
type TimeWindow struct {
	stream tuple.StreamID
	span   uint64

	entries []timedEntry
	head    int
}

type timedEntry struct {
	e  Entry
	ts uint64
}

// NewTime returns a time window of the given span for stream id.
func NewTime(id tuple.StreamID, span uint64) *TimeWindow {
	if span == 0 {
		panic(fmt.Sprintf("window: zero time span for stream %d", id))
	}
	return &TimeWindow{stream: id, span: span}
}

// Stream implements Slider.
func (w *TimeWindow) Stream() tuple.StreamID { return w.stream }

// Span returns the configured span.
func (w *TimeWindow) Span() uint64 { return w.span }

// Len implements Slider.
func (w *TimeWindow) Len() int { return len(w.entries) - w.head }

// Slide implements Slider: admits the tuple at ts and expires every
// live entry with timestamp ≤ ts − span.
func (w *TimeWindow) Slide(ref tuple.Ref, key tuple.Value, ts uint64) []Entry {
	if ref.Stream != w.stream {
		panic(fmt.Sprintf("window: tuple from stream %d admitted to time window of stream %d", ref.Stream, w.stream))
	}
	if n := len(w.entries); n > w.head && w.entries[n-1].ts > ts {
		panic(fmt.Sprintf("window: timestamps regressed on stream %d: %d after %d", w.stream, ts, w.entries[n-1].ts))
	}
	var expired []Entry
	var cutoff uint64
	if ts > w.span {
		cutoff = ts - w.span
	}
	for w.head < len(w.entries) && w.entries[w.head].ts <= cutoff {
		expired = append(expired, w.entries[w.head].e)
		w.head++
	}
	// Compact once the dead prefix dominates.
	if w.head > 64 && w.head*2 > len(w.entries) {
		w.entries = append(w.entries[:0], w.entries[w.head:]...)
		w.head = 0
	}
	w.entries = append(w.entries, timedEntry{e: Entry{Ref: ref, Key: key}, ts: ts})
	return expired
}

// Each visits the live entries oldest-first.
func (w *TimeWindow) Each(fn func(Entry) bool) {
	for i := w.head; i < len(w.entries); i++ {
		if !fn(w.entries[i].e) {
			return
		}
	}
}

// EachTimed visits the live entries oldest-first with their
// timestamps. Used by checkpointing.
func (w *TimeWindow) EachTimed(fn func(Entry, uint64) bool) {
	for i := w.head; i < len(w.entries); i++ {
		if !fn(w.entries[i].e, w.entries[i].ts) {
			return
		}
	}
}
