// Package window implements per-stream count-based sliding windows
// (§2.1). Each stream keeps its most recent W tuples; when a new tuple
// arrives the tuple that falls out of the window must be deleted from
// every operator state, propagating bottom-up through the pipeline.
// The package tracks window membership and yields the expiry events;
// the engine owns the propagation.
package window

import (
	"fmt"

	"jisc/internal/tuple"
)

// Entry is one base tuple tracked by a window.
type Entry struct {
	Ref tuple.Ref
	Key tuple.Value
}

// Window is a count-based sliding window over one stream. The zero
// value is unusable; construct with New.
type Window struct {
	stream tuple.StreamID
	size   int
	// ring buffer of the last size entries
	buf   []Entry
	head  int // index of oldest
	count int
}

// New returns a window of the given size (tuples) for stream id.
// Size must be positive.
func New(id tuple.StreamID, size int) *Window {
	if size <= 0 {
		panic(fmt.Sprintf("window: non-positive size %d", size))
	}
	return &Window{stream: id, size: size, buf: make([]Entry, size)}
}

// Stream returns the stream this window tracks.
func (w *Window) Stream() tuple.StreamID { return w.stream }

// Size returns the configured window size.
func (w *Window) Size() int { return w.size }

// Len returns the current number of tuples inside the window.
func (w *Window) Len() int { return w.count }

// Admit adds a new base tuple to the window and returns the expired
// entry, if admitting it pushed the oldest tuple out.
func (w *Window) Admit(ref tuple.Ref, key tuple.Value) (expired Entry, ok bool) {
	if ref.Stream != w.stream {
		panic(fmt.Sprintf("window: tuple from stream %d admitted to window of stream %d", ref.Stream, w.stream))
	}
	if w.count == w.size {
		expired = w.buf[w.head]
		ok = true
		w.buf[w.head] = Entry{Ref: ref, Key: key}
		w.head = (w.head + 1) % w.size
		return expired, true
	}
	w.buf[(w.head+w.count)%w.size] = Entry{Ref: ref, Key: key}
	w.count++
	return Entry{}, false
}

// Oldest returns the oldest entry still inside the window.
func (w *Window) Oldest() (Entry, bool) {
	if w.count == 0 {
		return Entry{}, false
	}
	return w.buf[w.head], true
}

// Contains reports whether the given sequence number is still inside
// the window.
func (w *Window) Contains(seq uint64) bool {
	if w.count == 0 {
		return false
	}
	oldest := w.buf[w.head].Ref.Seq
	newest := w.buf[(w.head+w.count-1)%w.size].Ref.Seq
	return seq >= oldest && seq <= newest
}

// Each visits the live entries oldest-first.
func (w *Window) Each(fn func(Entry) bool) {
	for i := 0; i < w.count; i++ {
		if !fn(w.buf[(w.head+i)%w.size]) {
			return
		}
	}
}
