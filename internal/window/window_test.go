package window

import (
	"testing"
	"testing/quick"

	"jisc/internal/testseed"
	"jisc/internal/tuple"
)

func TestAdmitBelowCapacity(t *testing.T) {
	w := New(0, 3)
	for seq := uint64(1); seq <= 3; seq++ {
		if _, ok := w.Admit(tuple.Ref{Stream: 0, Seq: seq}, tuple.Value(seq)); ok {
			t.Fatalf("expiry before capacity at seq %d", seq)
		}
	}
	if w.Len() != 3 {
		t.Fatalf("Len = %d, want 3", w.Len())
	}
}

func TestAdmitEvictsOldest(t *testing.T) {
	w := New(0, 2)
	w.Admit(tuple.Ref{Stream: 0, Seq: 1}, 10)
	w.Admit(tuple.Ref{Stream: 0, Seq: 2}, 20)
	exp, ok := w.Admit(tuple.Ref{Stream: 0, Seq: 3}, 30)
	if !ok {
		t.Fatal("no expiry at capacity")
	}
	if exp.Ref.Seq != 1 || exp.Key != 10 {
		t.Fatalf("expired %+v, want seq 1 key 10", exp)
	}
	exp, ok = w.Admit(tuple.Ref{Stream: 0, Seq: 4}, 40)
	if !ok || exp.Ref.Seq != 2 {
		t.Fatalf("expired %+v, want seq 2", exp)
	}
	if w.Len() != 2 {
		t.Fatalf("Len = %d, want 2", w.Len())
	}
}

func TestOldestAndContains(t *testing.T) {
	w := New(1, 3)
	if _, ok := w.Oldest(); ok {
		t.Fatal("Oldest on empty window")
	}
	if w.Contains(1) {
		t.Fatal("Contains on empty window")
	}
	for seq := uint64(1); seq <= 5; seq++ {
		w.Admit(tuple.Ref{Stream: 1, Seq: seq}, 0)
	}
	old, ok := w.Oldest()
	if !ok || old.Ref.Seq != 3 {
		t.Fatalf("Oldest = %+v", old)
	}
	for seq := uint64(3); seq <= 5; seq++ {
		if !w.Contains(seq) {
			t.Errorf("Contains(%d) = false", seq)
		}
	}
	for _, seq := range []uint64{1, 2, 6} {
		if w.Contains(seq) {
			t.Errorf("Contains(%d) = true", seq)
		}
	}
}

func TestEachOldestFirst(t *testing.T) {
	w := New(0, 3)
	for seq := uint64(1); seq <= 5; seq++ {
		w.Admit(tuple.Ref{Stream: 0, Seq: seq}, 0)
	}
	var seqs []uint64
	w.Each(func(e Entry) bool { seqs = append(seqs, e.Ref.Seq); return true })
	want := []uint64{3, 4, 5}
	for i := range want {
		if seqs[i] != want[i] {
			t.Fatalf("Each order = %v, want %v", seqs, want)
		}
	}
	n := 0
	w.Each(func(Entry) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Each early stop visited %d", n)
	}
}

func TestWrongStreamPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("cross-stream Admit did not panic")
		}
	}()
	New(0, 2).Admit(tuple.Ref{Stream: 1, Seq: 1}, 0)
}

func TestZeroSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size window did not panic")
		}
	}()
	New(0, 0)
}

// Property: after any admission sequence, the window holds exactly the
// last min(n, size) tuples and expiry order is FIFO.
func TestFIFOProperty(t *testing.T) {
	f := func(sizeRaw uint8, nRaw uint8) bool {
		size := int(sizeRaw%16) + 1
		n := int(nRaw)
		w := New(0, size)
		nextExpiry := uint64(1)
		for seq := uint64(1); seq <= uint64(n); seq++ {
			exp, ok := w.Admit(tuple.Ref{Stream: 0, Seq: seq}, 0)
			if ok {
				if exp.Ref.Seq != nextExpiry {
					return false
				}
				nextExpiry++
			}
		}
		wantLen := n
		if wantLen > size {
			wantLen = size
		}
		return w.Len() == wantLen
	}
	if err := quick.Check(f, testseed.Quick(t, 1, 0)); err != nil {
		t.Fatal(err)
	}
}
