package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"jisc/internal/eddy"
	"jisc/internal/engine"
	"jisc/internal/migrate"
	"jisc/internal/plan"
	"jisc/internal/testseed"
	"jisc/internal/tuple"
	"jisc/internal/workload"
)

// The equivalence suite is the empirical counterpart of the paper's
// Theorems 1–3 (complete, closed, duplicate-free): on randomized
// workloads with forced — and overlapped — plan transitions, every
// migration strategy must produce exactly the same output multiset as
// CACQ, which recomputes results directly from the live windows and
// therefore serves as the oracle.

// runner adapts each executor to the test harness.
type runner struct {
	name    string
	feed    func(workload.Event)
	migrate func(*plan.Plan) error
	outs    map[string]int
}

func (r *runner) add(t *tuple.Tuple) { r.outs[t.Fingerprint()]++ }

func newRunners(t *testing.T, p *plan.Plan, win int) []*runner {
	t.Helper()
	var rs []*runner

	mk := func(name string, strat engine.Strategy) {
		r := &runner{name: name, outs: map[string]int{}}
		e := engine.MustNew(engine.Config{
			Plan: p, WindowSize: win, Strategy: strat,
			Output: func(d engine.Delta) {
				if !d.Retraction {
					r.add(d.Tuple)
				}
			},
		})
		r.feed = e.Feed
		r.migrate = e.Migrate
		rs = append(rs, r)
	}
	mk("jisc", New())
	mk("jisc-proc2", &JISC{DisableLeftDeepFastPath: true})
	mk("moving-state", migrate.MovingState{})

	{
		r := &runner{name: "parallel-track", outs: map[string]int{}}
		pt := migrate.MustNewParallelTrack(migrate.PTConfig{
			Plan: p, WindowSize: win, CheckEvery: 7,
			Output: func(d engine.Delta) {
				if !d.Retraction {
					r.add(d.Tuple)
				}
			},
		})
		r.feed = pt.Feed
		r.migrate = pt.Migrate
		rs = append(rs, r)
	}
	{
		r := &runner{name: "cacq", outs: map[string]int{}}
		c := eddy.MustNewCACQ(eddy.CACQConfig{Plan: p, WindowSize: win, Output: r.add})
		r.feed = c.Feed
		r.migrate = c.Migrate
		rs = append(rs, r)
	}
	for _, lazy := range []bool{false, true} {
		name := "stairs"
		if lazy {
			name = "stairs-jisc"
		}
		r := &runner{name: name, outs: map[string]int{}}
		s := eddy.MustNewStairs(eddy.StairsConfig{Plan: p, WindowSize: win, Lazy: lazy, Output: r.add})
		r.feed = s.Feed
		r.migrate = s.Migrate
		rs = append(rs, r)
	}
	return rs
}

func diffOutputs(a, b map[string]int) string {
	var sb strings.Builder
	keys := map[string]bool{}
	for k := range a {
		keys[k] = true
	}
	for k := range b {
		keys[k] = true
	}
	var sorted []string
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	n := 0
	for _, k := range sorted {
		if a[k] != b[k] {
			fmt.Fprintf(&sb, "  %s: %d vs %d\n", k, a[k], b[k])
			n++
			if n > 12 {
				sb.WriteString("  ...\n")
				break
			}
		}
	}
	return sb.String()
}

// scenario drives all runners through the same events and transitions
// and asserts identical output multisets.
func scenario(t *testing.T, seed int64, streams, win, events, transitions int, overlapped bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(testseed.Seed(t, seed)))
	order := make([]tuple.StreamID, streams)
	for i := range order {
		order[i] = tuple.StreamID(i)
	}
	p := plan.MustLeftDeep(order...)
	rs := newRunners(t, p, win)

	src := workload.MustNewSource(workload.Config{
		Streams: streams,
		Domain:  int64(3 + rng.Intn(8)),
		Seed:    rng.Int63(),
	})

	// Pick transition points. Overlapped scenarios cluster them so a
	// new transition lands while states are still incomplete.
	points := map[int]bool{}
	for len(points) < transitions {
		if overlapped && len(points) > 0 {
			base := 0
			for pt := range points {
				if pt > base {
					base = pt
				}
			}
			points[base+1+rng.Intn(4)] = true
		} else {
			points[1+rng.Intn(events-1)] = true
		}
	}

	cur := p
	for i := 0; i < events; i++ {
		if points[i] {
			next, err := cur.Swap(rng.Intn(streams), rng.Intn(streams))
			if err != nil {
				t.Fatal(err)
			}
			cur = next
			for _, r := range rs {
				if err := r.migrate(cur); err != nil {
					t.Fatalf("%s: migrate: %v", r.name, err)
				}
			}
		}
		e := src.Next()
		for _, r := range rs {
			r.feed(e)
		}
	}

	oracle := rs[0]
	for _, r := range rs {
		if r.name == "cacq" {
			oracle = r
		}
	}
	for _, r := range rs {
		if r == oracle {
			continue
		}
		if len(r.outs) != len(oracle.outs) || diffOutputs(oracle.outs, r.outs) != "" {
			t.Errorf("%s diverges from oracle (seed %d):\n%s", r.name, seed, diffOutputs(oracle.outs, r.outs))
		}
	}
}

func TestEquivalenceSingleTransition(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		scenario(t, seed, 3+int(seed%3), 8, 300, 1, false)
	}
}

func TestEquivalenceMultipleTransitions(t *testing.T) {
	for seed := int64(100); seed < 106; seed++ {
		scenario(t, seed, 4, 10, 400, 4, false)
	}
}

func TestEquivalenceOverlappedTransitions(t *testing.T) {
	for seed := int64(200); seed < 206; seed++ {
		scenario(t, seed, 5, 12, 350, 5, true)
	}
}

func TestEquivalenceTinyWindows(t *testing.T) {
	// Windows of 3 force constant eviction through incomplete states.
	for seed := int64(300); seed < 306; seed++ {
		scenario(t, seed, 4, 3, 300, 3, false)
	}
}

func TestEquivalenceManyStreams(t *testing.T) {
	scenario(t, 400, 7, 6, 500, 3, false)
	scenario(t, 401, 7, 6, 500, 4, true)
}

// Bushy-plan equivalence: only the engine strategies support bushy
// plans, so compare JISC against Moving State with a bushy target.
func TestEquivalenceBushy(t *testing.T) {
	base := testseed.Seed(t, 500)
	for seed := base; seed < base+5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := plan.MustLeftDeep(0, 1, 2, 3)
		bushy := plan.MustNew(plan.Join(
			plan.Join(plan.Leaf(0), plan.Leaf(2)),
			plan.Join(plan.Leaf(1), plan.Leaf(3)),
		))
		bushy2 := plan.MustNew(plan.Join(
			plan.Join(plan.Leaf(3), plan.Leaf(0)),
			plan.Join(plan.Leaf(2), plan.Leaf(1)),
		))
		plans := []*plan.Plan{bushy, bushy2, plan.MustLeftDeep(2, 3, 0, 1)}

		outs := map[string]map[string]int{}
		for _, strat := range []engine.Strategy{New(), migrate.MovingState{}} {
			outs[strat.Name()] = map[string]int{}
			dst := outs[strat.Name()]
			e := engine.MustNew(engine.Config{
				Plan: p, WindowSize: 6, Strategy: strat,
				Output: func(d engine.Delta) { dst[d.Tuple.Fingerprint()]++ },
			})
			src := workload.MustNewSource(workload.Config{Streams: 4, Domain: 5, Seed: seed})
			rng2 := rand.New(rand.NewSource(seed + 1))
			pi := 0
			for i := 0; i < 300; i++ {
				if i > 0 && i%80 == 0 {
					if err := e.Migrate(plans[pi%len(plans)]); err != nil {
						t.Fatal(err)
					}
					pi++
				}
				e.Feed(src.Next())
				_ = rng2
			}
		}
		if d := diffOutputs(outs["moving-state"], outs["jisc"]); d != "" {
			t.Errorf("bushy: jisc diverges from moving-state (seed %d):\n%s", seed, d)
		}
		_ = rng
	}
}

// FuzzEquivalence drives random workload/transition scenarios through
// every strategy and requires identical outputs — continuous fuzzing
// over the same invariant the fixed-seed suite checks.
func FuzzEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(6), uint8(2))
	f.Add(int64(99), uint8(5), uint8(3), uint8(4))
	f.Fuzz(func(t *testing.T, seed int64, streamsRaw, winRaw, transRaw uint8) {
		streams := 3 + int(streamsRaw%4)
		win := 3 + int(winRaw%12)
		transitions := 1 + int(transRaw%4)
		scenario(t, seed, streams, win, 150, transitions, seed%2 == 0)
	})
}
