package core

import (
	"bytes"
	"testing"

	"jisc/internal/engine"
	"jisc/internal/plan"
	"jisc/internal/tuple"
	"jisc/internal/workload"
)

// Checkpoint/restore round trips, exercised through the JISC strategy
// so that mid-migration snapshots carry incomplete states, attempted
// keys, armed counters, and birth ticks.

func runPair(t *testing.T, cfg engine.Config, events []workload.Event,
	migrateAt map[int]*plan.Plan, checkpointAt int) (uninterrupted, resumed map[string]int) {
	t.Helper()

	feedAll := func(e *engine.Engine, evs []workload.Event, base int, sink map[string]int, plans map[int]*plan.Plan) {
		for i, ev := range evs {
			if p, ok := plans[base+i]; ok {
				if err := e.Migrate(p); err != nil {
					t.Fatal(err)
				}
			}
			e.Feed(ev)
		}
		_ = sink
	}

	// Uninterrupted run.
	uninterrupted = map[string]int{}
	cfgA := cfg
	cfgA.Output = func(d engine.Delta) {
		if !d.Retraction {
			uninterrupted[d.Tuple.Fingerprint()]++
		}
	}
	ea := engine.MustNew(cfgA)
	feedAll(ea, events, 0, uninterrupted, migrateAt)

	// Interrupted run: process a prefix, checkpoint, restore into a
	// fresh engine, process the suffix.
	resumed = map[string]int{}
	sink := func(d engine.Delta) {
		if !d.Retraction {
			resumed[d.Tuple.Fingerprint()]++
		}
	}
	cfgB := cfg
	cfgB.Output = sink
	eb := engine.MustNew(cfgB)
	feedAll(eb, events[:checkpointAt], 0, resumed, migrateAt)

	var buf bytes.Buffer
	if err := eb.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	cfgC := cfg
	cfgC.Plan = nil // restored from the checkpoint
	cfgC.Output = sink
	ec, err := engine.Restore(&buf, cfgC)
	if err != nil {
		t.Fatal(err)
	}
	feedAll(ec, events[checkpointAt:], checkpointAt, resumed, migrateAt)
	return uninterrupted, resumed
}

func compare(t *testing.T, a, b map[string]int) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("distinct outputs differ: %d vs %d", len(a), len(b))
	}
	for fp, n := range a {
		if b[fp] != n {
			t.Fatalf("%s: %d vs %d", fp, n, b[fp])
		}
	}
}

func TestCheckpointRoundTripSteadyState(t *testing.T) {
	src := workload.MustNewSource(workload.Config{Streams: 3, Domain: 6, Seed: 50})
	events := src.Take(400)
	cfg := engine.Config{Plan: plan.MustLeftDeep(0, 1, 2), WindowSize: 12, Strategy: New()}
	a, b := runPair(t, cfg, events, nil, 200)
	compare(t, a, b)
	if len(a) == 0 {
		t.Fatal("no outputs")
	}
}

// The demanding case: checkpoint taken between a transition and the
// completion of its incomplete states — the snapshot must carry the
// whole lazy-migration machinery.
func TestCheckpointMidMigration(t *testing.T) {
	src := workload.MustNewSource(workload.Config{Streams: 4, Domain: 8, Seed: 51})
	events := src.Take(600)
	cfg := engine.Config{Plan: plan.MustLeftDeep(0, 1, 2, 3), WindowSize: 16, Strategy: New()}
	migrations := map[int]*plan.Plan{
		295: plan.MustLeftDeep(3, 2, 1, 0), // worst case: everything incomplete
	}
	// Checkpoint 5 tuples after the transition, long before the
	// incomplete states can have completed.
	a, b := runPair(t, cfg, events, migrations, 300)
	compare(t, a, b)
	if len(a) == 0 {
		t.Fatal("no outputs")
	}
}

func TestCheckpointMidMigrationOverlapped(t *testing.T) {
	src := workload.MustNewSource(workload.Config{Streams: 4, Domain: 6, Seed: 52})
	events := src.Take(700)
	cfg := engine.Config{Plan: plan.MustLeftDeep(0, 1, 2, 3), WindowSize: 10, Strategy: New()}
	migrations := map[int]*plan.Plan{
		290: plan.MustLeftDeep(1, 2, 0, 3),
		296: plan.MustLeftDeep(1, 2, 3, 0), // overlapped
	}
	a, b := runPair(t, cfg, events, migrations, 302)
	compare(t, a, b)
}

func TestCheckpointTimeWindows(t *testing.T) {
	src := workload.MustNewSource(workload.Config{Streams: 3, Domain: 5, Seed: 53})
	events := src.Take(500)
	cfg := engine.Config{Plan: plan.MustLeftDeep(0, 1, 2), TimeSpan: 18, Strategy: New()}
	migrations := map[int]*plan.Plan{240: plan.MustLeftDeep(2, 1, 0)}
	a, b := runPair(t, cfg, events, migrations, 250)
	compare(t, a, b)
}

func TestCheckpointNLJoin(t *testing.T) {
	band := func(x, y *tuple.Tuple) bool { return x.Key%4 == y.Key%4 }
	src := workload.MustNewSource(workload.Config{Streams: 3, Domain: 16, Seed: 54})
	events := src.Take(300)
	cfg := engine.Config{
		Plan: plan.MustLeftDeep(0, 1, 2), WindowSize: 10,
		Kind: engine.NLJoin, Theta: band, Strategy: New(),
	}
	migrations := map[int]*plan.Plan{140: plan.MustLeftDeep(1, 2, 0)}
	a, b := runPair(t, cfg, events, migrations, 145)
	compare(t, a, b)
}

func TestCheckpointErrors(t *testing.T) {
	e := engine.MustNew(engine.Config{Plan: plan.MustLeftDeep(0, 1), Strategy: New()})
	e.Enqueue(ev(0, 1))
	var buf bytes.Buffer
	if err := e.Checkpoint(&buf); err == nil {
		t.Fatal("checkpoint with buffered tuples accepted")
	}
	e.Drain()
	if err := e.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	// Kind mismatch rejected.
	if _, err := engine.Restore(bytes.NewReader(buf.Bytes()), engine.Config{
		Kind: engine.NLJoin, Theta: func(a, b *tuple.Tuple) bool { return true },
	}); err == nil {
		t.Fatal("kind mismatch accepted")
	}
	// Window mismatch rejected.
	if _, err := engine.Restore(bytes.NewReader(buf.Bytes()), engine.Config{WindowSize: 5}); err == nil {
		t.Fatal("window mismatch accepted")
	}
	// Garbage rejected.
	if _, err := engine.Restore(bytes.NewReader([]byte("junk")), engine.Config{}); err == nil {
		t.Fatal("garbage checkpoint accepted")
	}
}

// The restored engine's counters keep working: a counter armed before
// the checkpoint must still drain and complete the state afterwards.
func TestCheckpointPreservesCounters(t *testing.T) {
	e := engine.MustNew(engine.Config{Plan: plan.MustLeftDeep(0, 1, 2), WindowSize: 100, Strategy: New()})
	e.Feed(ev(1, 1))
	e.Feed(ev(1, 2))
	e.Feed(ev(2, 1))
	e.Feed(ev(2, 2))
	if err := e.Migrate(plan.MustLeftDeep(1, 2, 0)); err != nil {
		t.Fatal(err)
	}
	e.Feed(ev(0, 1)) // completes key 1; counter at 1
	n12 := e.NodeBySet(tuple.NewStreamSet(1, 2))
	if n12.St.Counter() != 1 {
		t.Fatalf("counter = %d before checkpoint", n12.St.Counter())
	}
	var buf bytes.Buffer
	if err := e.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := engine.Restore(&buf, engine.Config{WindowSize: 100, Strategy: New()})
	if err != nil {
		t.Fatal(err)
	}
	m12 := r.NodeBySet(tuple.NewStreamSet(1, 2))
	if m12.St.Complete() || m12.St.Counter() != 1 {
		t.Fatalf("restored counter = %d complete=%v", m12.St.Counter(), m12.St.Complete())
	}
	if m12.CounterSide == nil {
		t.Fatal("counter side not restored")
	}
	r.Feed(ev(0, 2)) // completes key 2: counter drains
	if !m12.St.Complete() {
		t.Fatal("restored state did not complete after counter drained")
	}
}
