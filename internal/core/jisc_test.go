package core

import (
	"testing"

	"jisc/internal/engine"
	"jisc/internal/migrate"
	"jisc/internal/plan"
	"jisc/internal/tuple"
	"jisc/internal/workload"
)

func ev(s tuple.StreamID, k tuple.Value) workload.Event {
	return workload.Event{Stream: s, Key: k}
}

func newJISC(t *testing.T, p *plan.Plan, win int, out *[]engine.Delta) *engine.Engine {
	t.Helper()
	cfg := engine.Config{Plan: p, WindowSize: win, Strategy: New()}
	if out != nil {
		cfg.Output = func(d engine.Delta) { *out = append(*out, d) }
	}
	return engine.MustNew(cfg)
}

// Scenario 1 of the introduction: r should join with s, t, u that all
// arrived before the transition. Without state completion the output
// (r,s,t,u) would be missed.
func TestPaperScenario1NoMissedOutput(t *testing.T) {
	var out []engine.Delta
	// Old plan ((R S) T) U with R=0 S=1 T=2 U=3.
	e := newJISC(t, plan.MustLeftDeep(0, 1, 2, 3), 100, &out)
	e.Feed(ev(1, 7)) // s
	e.Feed(ev(2, 7)) // t
	e.Feed(ev(3, 7)) // u
	// Transition to ((S T) U) R.
	if err := e.Migrate(plan.MustLeftDeep(1, 2, 3, 0)); err != nil {
		t.Fatal(err)
	}
	e.Feed(ev(0, 7)) // r arrives after the transition
	if len(out) != 1 {
		t.Fatalf("output (r,s,t,u) missed: %d results", len(out))
	}
	if fp := out[0].Tuple.Fingerprint(); fp != "0#1|1#1|2#1|3#1" {
		t.Errorf("fingerprint = %q", fp)
	}
}

// Scenario 3 / §4.2: after the transition, the window of S slides so s
// expires; the quadruple must NOT be produced even though state ST was
// empty when the removal passed through it.
func TestPaperScenario3WindowSlideThroughIncompleteState(t *testing.T) {
	var out []engine.Delta
	e := newJISC(t, plan.MustLeftDeep(0, 1, 2, 3), 2, &out)
	e.Feed(ev(0, 7)) // r
	e.Feed(ev(1, 7)) // s
	e.Feed(ev(2, 7)) // t
	if err := e.Migrate(plan.MustLeftDeep(1, 2, 3, 0)); err != nil {
		t.Fatal(err)
	}
	// Slide S's window (size 2) so s (key 7) falls out.
	e.Feed(ev(1, 99))
	e.Feed(ev(1, 98))
	// Now u arrives; (r,s,t,u) must not appear.
	e.Feed(ev(3, 7))
	for _, d := range out {
		if !d.Retraction && d.Tuple.Set.Count() == 4 {
			t.Fatalf("invalid output produced after s expired: %v", d.Tuple)
		}
	}
}

func TestLazyCompletionOnDemand(t *testing.T) {
	var out []engine.Delta
	e := newJISC(t, plan.MustLeftDeep(0, 1, 2, 3), 100, &out)
	for _, k := range []tuple.Value{1, 2, 3} {
		e.Feed(ev(0, k))
		e.Feed(ev(1, k))
		e.Feed(ev(2, k))
		e.Feed(ev(3, k))
	}
	if got := len(out); got != 3 {
		t.Fatalf("pre-transition outputs = %d, want 3", got)
	}
	if err := e.Migrate(plan.MustLeftDeep(1, 2, 3, 0)); err != nil {
		t.Fatal(err)
	}
	// Nothing was computed eagerly.
	if c := e.Metrics().Completions; c != 0 {
		t.Fatalf("eager completions at transition: %d", c)
	}
	n123 := e.NodeBySet(tuple.NewStreamSet(1, 2, 3))
	if n123.St.Complete() || n123.St.Size() != 0 {
		t.Fatalf("{1,2,3} should be incomplete and empty, size=%d", n123.St.Size())
	}
	// A probe with key 2 completes exactly key 2's entries.
	out = nil
	e.Feed(ev(0, 2))
	if len(out) != 1 {
		t.Fatalf("results after completion = %d, want 1", len(out))
	}
	if e.Metrics().Completions == 0 {
		t.Fatal("no completion recorded")
	}
	if n123.St.Size() != 1 {
		t.Fatalf("{1,2,3} materialized %d entries, want only key 2's single entry", n123.St.Size())
	}
	// Keys 1 and 3 remain unmaterialized until probed.
	if n123.St.ContainsKey(1) || n123.St.ContainsKey(3) {
		t.Fatal("unprobed keys were materialized")
	}
}

func TestRepeatedProbesCompleteOnce(t *testing.T) {
	var out []engine.Delta
	e := newJISC(t, plan.MustLeftDeep(0, 1, 2), 100, &out)
	e.Feed(ev(1, 5))
	e.Feed(ev(2, 5))
	if err := e.Migrate(plan.MustLeftDeep(1, 2, 0)); err != nil {
		t.Fatal(err)
	}
	e.Feed(ev(0, 5))
	c1 := e.Metrics().Completions
	if c1 == 0 {
		t.Fatal("first probe did not complete")
	}
	e.Feed(ev(0, 5)) // same key again: §4.4 at-most-once
	if c2 := e.Metrics().Completions; c2 != c1 {
		t.Fatalf("repeated completion: %d -> %d", c1, c2)
	}
	if len(out) != 2 {
		t.Fatalf("outputs = %d, want 2", len(out))
	}
}

// A post-transition tuple inserts entries into an incomplete state via
// normal processing; a later probe of the same key must still complete
// the pre-transition entries (the contains-check fast path of the
// paper's Procedure 1 pseudo-code would lose this output).
func TestPartialEntriesDoNotSuppressCompletion(t *testing.T) {
	var out []engine.Delta
	e := newJISC(t, plan.MustLeftDeep(0, 1, 2), 100, &out)
	e.Feed(ev(1, 5)) // s_old
	e.Feed(ev(2, 5)) // t_old
	if err := e.Migrate(plan.MustLeftDeep(1, 2, 0)); err != nil {
		t.Fatal(err)
	}
	// New S tuple flows into incomplete {1,2} normally.
	e.Feed(ev(1, 5)) // s_new joins t_old -> {1,2} now has a post-transition entry for key 5
	n12 := e.NodeBySet(tuple.NewStreamSet(1, 2))
	if n12.St.Size() != 1 {
		t.Fatalf("normal processing should insert 1 entry, got %d", n12.St.Size())
	}
	// r probes {1,2}: must find BOTH (s_old,t_old) and (s_new,t_old).
	e.Feed(ev(0, 5))
	if len(out) != 2 {
		t.Fatalf("outputs = %d, want 2 (pre-transition pair lost?)", len(out))
	}
}

func TestCompletionCounterDetectsCompleteState(t *testing.T) {
	e := newJISC(t, plan.MustLeftDeep(0, 1, 2), 100, nil)
	e.Feed(ev(1, 1))
	e.Feed(ev(1, 2))
	e.Feed(ev(2, 1))
	e.Feed(ev(2, 2))
	if err := e.Migrate(plan.MustLeftDeep(1, 2, 0)); err != nil {
		t.Fatal(err)
	}
	n12 := e.NodeBySet(tuple.NewStreamSet(1, 2))
	if n12.St.Complete() {
		t.Fatal("{1,2} should start incomplete")
	}
	if !n12.St.CounterArmed() || n12.St.Counter() != 2 {
		t.Fatalf("counter = %d armed=%v, want 2 armed", n12.St.Counter(), n12.St.CounterArmed())
	}
	e.Feed(ev(0, 1)) // completes key 1
	if n12.St.Complete() || n12.St.Counter() != 1 {
		t.Fatalf("counter after key 1 = %d", n12.St.Counter())
	}
	e.Feed(ev(0, 2)) // completes key 2 -> drained -> complete
	if !n12.St.Complete() {
		t.Fatal("{1,2} should be complete after all designated keys attempted")
	}
}

func TestCounterDropsEvictedKeys(t *testing.T) {
	e := newJISC(t, plan.MustLeftDeep(0, 1, 2), 2, nil)
	e.Feed(ev(1, 1))
	e.Feed(ev(1, 2))
	e.Feed(ev(2, 1))
	e.Feed(ev(2, 2))
	if err := e.Migrate(plan.MustLeftDeep(1, 2, 0)); err != nil {
		t.Fatal(err)
	}
	n12 := e.NodeBySet(tuple.NewStreamSet(1, 2))
	side := n12.CounterSide.Stream
	if n12.St.Counter() != 2 {
		t.Fatalf("counter = %d", n12.St.Counter())
	}
	// Evict both keys of the designated side by sliding its window.
	e.Feed(ev(side, 50))
	e.Feed(ev(side, 51))
	// Keys 1 and 2 left the designated side; counter pending dropped.
	// Keys 50,51 are post-transition and were never pending.
	if !n12.St.Complete() {
		t.Fatalf("state should complete once pending keys evicted; counter=%d", n12.St.Counter())
	}
}

func TestBestCaseTransitionNoWork(t *testing.T) {
	// Swap just below the root (positions n-1, n): only one state
	// changes. Everything else must be reusable with zero work.
	order := []tuple.StreamID{0, 1, 2, 3, 4, 5}
	e := newJISC(t, plan.MustLeftDeep(order...), 50, nil)
	src := workload.MustNewSource(workload.Config{Streams: 6, Domain: 20, Seed: 3})
	for i := 0; i < 600; i++ {
		e.Feed(src.Next())
	}
	newPlan, err := e.Plan().Swap(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Migrate(newPlan); err != nil {
		t.Fatal(err)
	}
	incomplete := 0
	for _, n := range e.Nodes() {
		if !n.IsLeaf() && !n.St.Complete() {
			incomplete++
		}
	}
	if incomplete != 1 {
		t.Fatalf("best-case transition: %d incomplete states, want 1", incomplete)
	}
}

func TestWorstCaseTransitionAllIncomplete(t *testing.T) {
	order := []tuple.StreamID{0, 1, 2, 3, 4, 5}
	e := newJISC(t, plan.MustLeftDeep(order...), 50, nil)
	src := workload.MustNewSource(workload.Config{Streams: 6, Domain: 20, Seed: 5})
	for i := 0; i < 600; i++ {
		e.Feed(src.Next())
	}
	newPlan, err := e.Plan().Swap(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Migrate(newPlan); err != nil {
		t.Fatal(err)
	}
	incomplete := 0
	for _, n := range e.Nodes() {
		if !n.IsLeaf() && !n.St.Complete() {
			incomplete++
		}
	}
	// Joins 1..4 change; the root keeps the full stream set.
	if incomplete != 4 {
		t.Fatalf("worst-case transition: %d incomplete states, want 4", incomplete)
	}
}

func TestBushyPlanCompletion(t *testing.T) {
	var out []engine.Delta
	// Old: left-deep; new: bushy (0 1) (2 3).
	e := newJISC(t, plan.MustLeftDeep(0, 1, 2, 3), 100, &out)
	for _, k := range []tuple.Value{1, 2} {
		e.Feed(ev(0, k))
		e.Feed(ev(1, k))
		e.Feed(ev(2, k))
		e.Feed(ev(3, k))
	}
	pre := len(out)
	bushy := plan.MustNew(plan.Join(
		plan.Join(plan.Leaf(0), plan.Leaf(1)),
		plan.Join(plan.Leaf(2), plan.Leaf(3)),
	))
	if err := e.Migrate(bushy); err != nil {
		t.Fatal(err)
	}
	// {2,3} incomplete; a new stream-0 tuple forms a composite {0,1}
	// that probes {2,3} and must trigger recursive completion.
	e.Feed(ev(0, 1))
	if len(out) != pre+1 {
		t.Fatalf("bushy completion missed output: got %d new", len(out)-pre)
	}
	n23 := e.NodeBySet(tuple.NewStreamSet(2, 3))
	if !n23.St.ContainsKey(1) {
		t.Fatal("{2,3} not completed for key 1")
	}
}

func TestNLJoinLazyCompletion(t *testing.T) {
	var out []engine.Delta
	band := func(a, b *tuple.Tuple) bool {
		d := a.Key - b.Key
		return d >= -2 && d <= 2
	}
	e := engine.MustNew(engine.Config{
		Plan: plan.MustLeftDeep(0, 1, 2), Kind: engine.NLJoin, Theta: band,
		Strategy: New(),
		Output:   func(d engine.Delta) { out = append(out, d) },
	})
	e.Feed(ev(0, 10))
	e.Feed(ev(1, 11))
	e.Feed(ev(2, 12))
	if len(out) != 1 {
		t.Fatalf("pre-transition outputs = %d", len(out))
	}
	if err := e.Migrate(plan.MustLeftDeep(1, 2, 0)); err != nil {
		t.Fatal(err)
	}
	out = nil
	e.Feed(ev(0, 11)) // probes incomplete {1,2}: completes it on demand
	if len(out) != 1 {
		t.Fatalf("post-transition outputs = %d, want 1", len(out))
	}
	if e.Metrics().Completions == 0 {
		t.Fatal("NL completion not recorded")
	}
}

func TestJISCName(t *testing.T) {
	if New().Name() != "jisc" {
		t.Fatal("name")
	}
}

// §4.7: a group-by count on top of the QEP is unaffected by plan
// transitions — the aggregate over a JISC-migrated run matches the
// aggregate over a static run of the same input exactly.
func TestAggregateUnaffectedByTransition(t *testing.T) {
	run := func(strat engine.Strategy, migrate bool) *engine.GroupCount {
		g := engine.NewGroupCount(nil)
		e := engine.MustNew(engine.Config{
			Plan: plan.MustLeftDeep(0, 1, 2), WindowSize: 8,
			Strategy: strat, Output: g.Consume,
		})
		src := workload.MustNewSource(workload.Config{Streams: 3, Domain: 5, Seed: 77})
		for i := 0; i < 400; i++ {
			if migrate && i > 0 && i%90 == 0 {
				target := plan.MustLeftDeep(2, 0, 1)
				if i%180 == 0 {
					target = plan.MustLeftDeep(0, 1, 2)
				}
				if err := e.Migrate(target); err != nil {
					t.Fatal(err)
				}
			}
			e.Feed(src.Next())
		}
		return g
	}
	static := run(engine.Static{}, false)
	jisc := run(New(), true)
	if static.Total() != jisc.Total() || static.Groups() != jisc.Groups() {
		t.Fatalf("aggregates diverge: static total=%d groups=%d, jisc total=%d groups=%d",
			static.Total(), static.Groups(), jisc.Total(), jisc.Groups())
	}
	for _, e := range static.Top(100) {
		if jisc.Count(e.Key) != e.Count {
			t.Fatalf("group %d: static %d vs jisc %d", e.Key, e.Count, jisc.Count(e.Key))
		}
	}
}

// Revision streams (EmitExpiry) under migration: the live result set
// maintained from additions minus retractions must agree between JISC
// and Moving State at the end of a scenario with transitions.
func TestRevisionStreamEquivalence(t *testing.T) {
	run := func(strat engine.Strategy) map[string]bool {
		live := map[string]bool{}
		e := engine.MustNew(engine.Config{
			Plan: plan.MustLeftDeep(0, 1, 2), WindowSize: 6,
			Strategy: strat, EmitExpiry: true,
			Output: func(d engine.Delta) {
				fp := d.Tuple.Fingerprint()
				if d.Retraction {
					if !live[fp] {
						t.Errorf("%s: retraction of non-live %s", strat.Name(), fp)
					}
					delete(live, fp)
				} else {
					if live[fp] {
						t.Errorf("%s: duplicate addition of %s", strat.Name(), fp)
					}
					live[fp] = true
				}
			},
		})
		src := workload.MustNewSource(workload.Config{Streams: 3, Domain: 4, Seed: 61})
		for i := 0; i < 400; i++ {
			if i > 0 && i%120 == 0 {
				target := plan.MustLeftDeep(2, 1, 0)
				if (i/120)%2 == 0 {
					target = plan.MustLeftDeep(0, 1, 2)
				}
				if err := e.Migrate(target); err != nil {
					t.Fatal(err)
				}
			}
			e.Feed(src.Next())
		}
		return live
	}
	a := run(New())
	b := run(migrate.MovingState{})
	if len(a) != len(b) {
		t.Fatalf("live sets differ: %d vs %d", len(a), len(b))
	}
	for fp := range a {
		if !b[fp] {
			t.Fatalf("live set mismatch at %s", fp)
		}
	}
	if len(a) == 0 {
		t.Fatal("empty live set")
	}
}

// Regression: found by the simulation harness (seed 3285 shrunk). When
// a window slide removes the last counter-side tuple of a key, the
// completion counter drops the key and may complete the state — but if
// that happened before the eviction walk ascended past the state,
// EvictContinue saw "complete", stopped, and an adopted ancestor state
// (same stream set carried across the transition, §4.5) kept an entry
// referencing the expired tuple. The next probe then emitted a result
// built from a tuple no longer in any window.
func TestEvictWalkPassesCounterDropCompletedState(t *testing.T) {
	var out []engine.Delta
	e := engine.MustNew(engine.Config{
		Plan: plan.MustLeftDeep(1, 0, 2, 3),
		// Stream 2's window is 2 so its first tuple expires quickly;
		// the other windows never slide in this test.
		WindowSize:  100,
		WindowSizes: map[tuple.StreamID]int{2: 2},
		Strategy:    New(),
		Output:      func(d engine.Delta) { out = append(out, d) },
	})
	e.Feed(ev(0, 2))
	e.Feed(ev(2, 2))
	e.Feed(ev(1, 2))
	// New plan's {0,1,2} node adopts the old ((1⋈0)⋈2) state holding
	// 0#1|1#1|2#1; the fresh (2⋈1) node is born empty with its counter
	// armed on leaf 2's only key (2).
	if err := e.Migrate(plan.MustLeftDeep(2, 1, 0, 3)); err != nil {
		t.Fatal(err)
	}
	// Two stream-2 arrivals slide 2#1 (key 2) out: the counter drops
	// key 2 and completes (2⋈1); the walk must still reach the adopted
	// {0,1,2} state and remove 0#1|1#1|2#1.
	e.Feed(ev(2, 4))
	e.Feed(ev(2, 5))
	// 3#1 (key 2) probes the adopted state: no result may appear — a
	// never-migrated engine evicted the triple when 2#1 expired.
	e.Feed(ev(3, 2))
	for _, d := range out {
		if !d.Retraction && d.Tuple.Set.Count() == 4 {
			t.Fatalf("stale adopted-state entry produced output %s after 2#1 expired", d.Tuple.Fingerprint())
		}
	}
}
