package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"jisc/internal/engine"
	"jisc/internal/migrate"
	"jisc/internal/plan"
	"jisc/internal/testseed"
	"jisc/internal/tuple"
	"jisc/internal/workload"
)

// Set-difference pipelines (§4.7). The oracle maintains the raw
// per-stream windows and recomputes the passing set — outer tuples
// whose key has no live match in any inner stream — from scratch; the
// engine's delta stream (additions minus retractions) must always
// reproduce it.

type diffHarness struct {
	e       *engine.Engine
	passing map[tuple.Ref]tuple.Value // derived from the delta stream

	// raw windows for the oracle
	win     int
	streams int
	hist    map[tuple.StreamID][]tuple.Value // per-stream keys, arrival order
	seqs    map[tuple.StreamID]uint64
}

func newDiffHarness(t *testing.T, strat engine.Strategy, streams, win int) *diffHarness {
	t.Helper()
	order := make([]tuple.StreamID, streams)
	for i := range order {
		order[i] = tuple.StreamID(i)
	}
	h := &diffHarness{
		passing: map[tuple.Ref]tuple.Value{},
		win:     win,
		streams: streams,
		hist:    map[tuple.StreamID][]tuple.Value{},
		seqs:    map[tuple.StreamID]uint64{},
	}
	h.e = engine.MustNew(engine.Config{
		Plan: plan.MustLeftDeep(order...), Kind: engine.SetDiff, WindowSize: win,
		Strategy: strat,
		Output: func(d engine.Delta) {
			ref := d.Tuple.Refs[0]
			if d.Retraction {
				if _, ok := h.passing[ref]; !ok {
					t.Fatalf("retraction of non-passing tuple %v", ref)
				}
				delete(h.passing, ref)
			} else {
				if _, ok := h.passing[ref]; ok {
					t.Fatalf("duplicate addition of %v", ref)
				}
				h.passing[ref] = d.Tuple.Key
			}
		},
	})
	return h
}

func (h *diffHarness) feed(ev workload.Event) {
	h.hist[ev.Stream] = append(h.hist[ev.Stream], ev.Key)
	h.seqs[ev.Stream]++
	h.e.Feed(ev)
}

// oracle recomputes the passing set from the raw windows.
func (h *diffHarness) oracle() map[tuple.Ref]tuple.Value {
	innerKeys := map[tuple.Value]bool{}
	for s := 1; s < h.streams; s++ {
		keys := h.hist[tuple.StreamID(s)]
		start := 0
		if len(keys) > h.win {
			start = len(keys) - h.win
		}
		for _, k := range keys[start:] {
			innerKeys[k] = true
		}
	}
	out := map[tuple.Ref]tuple.Value{}
	outer := h.hist[0]
	start := 0
	if len(outer) > h.win {
		start = len(outer) - h.win
	}
	for i := start; i < len(outer); i++ {
		if !innerKeys[outer[i]] {
			out[tuple.Ref{Stream: 0, Seq: uint64(i + 1)}] = outer[i]
		}
	}
	return out
}

func (h *diffHarness) check(t *testing.T, at string) {
	t.Helper()
	want := h.oracle()
	if len(want) == len(h.passing) {
		same := true
		for r, k := range want {
			if h.passing[r] != k {
				same = false
				break
			}
		}
		if same {
			return
		}
	}
	t.Fatalf("%s: passing set diverged\n got: %s\nwant: %s", at, renderSet(h.passing), renderSet(want))
}

func renderSet(m map[tuple.Ref]tuple.Value) string {
	var parts []string
	for r, k := range m {
		parts = append(parts, fmt.Sprintf("%v=%d", r, k))
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}

func TestSetDiffBasics(t *testing.T) {
	h := newDiffHarness(t, engine.Static{}, 2, 10)
	h.feed(ev(0, 1)) // passes
	h.check(t, "after outer")
	h.feed(ev(1, 1)) // suppresses it
	h.check(t, "after inner arrival")
	h.feed(ev(0, 2)) // passes
	h.feed(ev(0, 1)) // suppressed immediately
	h.check(t, "after more outers")
}

func TestSetDiffRequalificationOnInnerExpiry(t *testing.T) {
	h := newDiffHarness(t, engine.Static{}, 2, 2)
	h.feed(ev(0, 7))
	h.feed(ev(1, 7)) // suppress
	h.check(t, "suppressed")
	h.feed(ev(1, 8))
	h.feed(ev(1, 9)) // inner window 2: key 7 expires -> requalify
	h.check(t, "requalified")
	if len(h.passing) != 1 {
		t.Fatalf("passing = %v", h.passing)
	}
}

func TestSetDiffOuterExpiry(t *testing.T) {
	h := newDiffHarness(t, engine.Static{}, 2, 2)
	h.feed(ev(0, 1))
	h.feed(ev(0, 2))
	h.feed(ev(0, 3)) // key 1 expires from the outer window
	h.check(t, "outer expiry")
}

func TestSetDiffChain(t *testing.T) {
	h := newDiffHarness(t, engine.Static{}, 4, 5)
	rng := rand.New(rand.NewSource(testseed.Seed(t, 11)))
	for i := 0; i < 200; i++ {
		h.feed(ev(tuple.StreamID(rng.Intn(4)), tuple.Value(rng.Intn(5))))
		h.check(t, fmt.Sprintf("step %d", i))
	}
}

// §4.7 with JISC: migrate a diff chain and keep checking against the
// oracle. The oracle is order-independent, so any inner reordering
// must leave the passing set unchanged.
func TestSetDiffJISCMigration(t *testing.T) {
	base := testseed.Seed(t, 0)
	for seed := base; seed < base+6; seed++ {
		h := newDiffHarness(t, New(), 4, 4)
		rng := rand.New(rand.NewSource(seed))
		plans := []*plan.Plan{
			plan.MustLeftDeep(0, 3, 1, 2),
			plan.MustLeftDeep(0, 2, 3, 1),
			plan.MustLeftDeep(0, 1, 2, 3),
		}
		for i := 0; i < 240; i++ {
			if i > 0 && i%40 == 0 {
				if err := h.e.Migrate(plans[(i/40-1)%len(plans)]); err != nil {
					t.Fatal(err)
				}
			}
			h.feed(ev(tuple.StreamID(rng.Intn(4)), tuple.Value(rng.Intn(4))))
			h.check(t, fmt.Sprintf("seed %d step %d", seed, i))
		}
	}
}

func TestSetDiffMovingStateMigration(t *testing.T) {
	h := newDiffHarness(t, migrate.MovingState{}, 3, 4)
	rng := rand.New(rand.NewSource(testseed.Seed(t, 3)))
	plans := []*plan.Plan{
		plan.MustLeftDeep(0, 2, 1),
		plan.MustLeftDeep(0, 1, 2),
	}
	for i := 0; i < 160; i++ {
		if i > 0 && i%30 == 0 {
			if err := h.e.Migrate(plans[(i/30-1)%len(plans)]); err != nil {
				t.Fatal(err)
			}
		}
		h.feed(ev(tuple.StreamID(rng.Intn(3)), tuple.Value(rng.Intn(3))))
		h.check(t, fmt.Sprintf("step %d", i))
	}
}

// Outer migration is rejected: the outer stream anchors the pipeline.
func TestSetDiffKeepsOuterFirst(t *testing.T) {
	h := newDiffHarness(t, New(), 3, 4)
	// Migrating so a different stream becomes the outer changes the
	// query itself, not the plan; the engine accepts only reorderings
	// of the same stream set, and the paper's §4.7 example reorders
	// inners only. Feed a little and reorder inners.
	h.feed(ev(0, 1))
	if err := h.e.Migrate(plan.MustLeftDeep(0, 2, 1)); err != nil {
		t.Fatal(err)
	}
	h.check(t, "after inner reorder")
}

// The paper's §4.7 example: (((A−B)−C)−D) migrates to (((A−D)−B)−C);
// states AD and ADB are incomplete while ADBC is complete.
func TestSetDiffPaperExampleClassification(t *testing.T) {
	h := newDiffHarness(t, New(), 4, 10)
	for s := tuple.StreamID(0); s < 4; s++ {
		h.feed(ev(s, tuple.Value(10+int(s))))
	}
	if err := h.e.Migrate(plan.MustLeftDeep(0, 3, 1, 2)); err != nil {
		t.Fatal(err)
	}
	ad := h.e.NodeBySet(tuple.NewStreamSet(0, 3))
	adb := h.e.NodeBySet(tuple.NewStreamSet(0, 3, 1))
	adbc := h.e.NodeBySet(tuple.NewStreamSet(0, 1, 2, 3))
	if ad.St.Complete() {
		t.Error("AD should be incomplete")
	}
	if adb.St.Complete() {
		t.Error("ADB should be incomplete")
	}
	if !adbc.St.Complete() {
		t.Error("ADBC should be complete")
	}
	h.check(t, "after classification")
}
