package core
