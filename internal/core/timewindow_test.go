package core

import (
	"testing"

	"jisc/internal/engine"
	"jisc/internal/migrate"
	"jisc/internal/plan"
	"jisc/internal/tuple"
	"jisc/internal/workload"
)

// Time-based sliding windows with plan transitions: the paper's
// sliding-window handling (§2.1, §4.2) is window-shape agnostic; the
// engine's time windows must behave identically under JISC and Moving
// State.

func TestTimeWindowJoinSemantics(t *testing.T) {
	var out []engine.Delta
	e := engine.MustNew(engine.Config{
		Plan: plan.MustLeftDeep(0, 1), TimeSpan: 3,
		Output: func(d engine.Delta) { out = append(out, d) },
	})
	// Ticks advance one per Feed.
	e.Feed(ev(0, 7)) // tick 1
	e.Feed(ev(1, 9)) // tick 2
	e.Feed(ev(1, 9)) // tick 3
	e.Feed(ev(1, 9)) // tick 4
	// tick 5: the stream-0 tuple from tick 1 is outside span 3 when
	// stream 0 next slides; a key-7 match must not appear.
	e.Feed(ev(0, 9)) // tick 5: slides stream 0, expiring tick-1 tuple
	e.Feed(ev(1, 7)) // tick 6: would join the expired tuple
	for _, d := range out {
		if d.Tuple.Key == 7 {
			t.Fatalf("expired tuple joined: %v", d.Tuple)
		}
	}
	// Live join still works within span.
	e.Feed(ev(1, 9)) // tick 7: joins the tick-5 stream-0 tuple (within 3)
	found := false
	for _, d := range out {
		if d.Tuple.Key == 9 {
			found = true
		}
	}
	if !found {
		t.Fatal("live time-window join missed")
	}
}

func TestTimeWindowEquivalenceAcrossStrategies(t *testing.T) {
	run := func(strat engine.Strategy) map[string]int {
		outs := map[string]int{}
		e := engine.MustNew(engine.Config{
			Plan: plan.MustLeftDeep(0, 1, 2), TimeSpan: 20, Strategy: strat,
			Output: func(d engine.Delta) { outs[d.Tuple.Fingerprint()]++ },
		})
		src := workload.MustNewSource(workload.Config{Streams: 3, Domain: 4, Seed: 31})
		for i := 0; i < 500; i++ {
			if i > 0 && i%120 == 0 {
				target := plan.MustLeftDeep(2, 1, 0)
				if (i/120)%2 == 0 {
					target = plan.MustLeftDeep(0, 1, 2)
				}
				if err := e.Migrate(target); err != nil {
					t.Fatal(err)
				}
			}
			e.Feed(src.Next())
		}
		return outs
	}
	jisc := run(New())
	ms := run(migrate.MovingState{})
	if len(jisc) != len(ms) {
		t.Fatalf("distinct outputs differ: %d vs %d", len(jisc), len(ms))
	}
	for fp, n := range ms {
		if jisc[fp] != n {
			t.Fatalf("%s: jisc %d vs ms %d", fp, jisc[fp], n)
		}
	}
	if len(jisc) == 0 {
		t.Fatal("no outputs at all")
	}
}

func TestTimeWindowStateBounded(t *testing.T) {
	e := engine.MustNew(engine.Config{
		Plan: plan.MustLeftDeep(0, 1), TimeSpan: 10, Strategy: New(),
	})
	for i := 0; i < 5000; i++ {
		e.Feed(ev(tuple.StreamID(i%2), 1))
	}
	if total := e.TotalStateSize(); total > 200 {
		t.Fatalf("state grew unbounded under time windows: %d", total)
	}
}
