package core

import (
	"math/rand"
	"testing"

	"jisc/internal/engine"
	"jisc/internal/migrate"
	"jisc/internal/plan"
	"jisc/internal/testseed"
	"jisc/internal/tuple"
	"jisc/internal/workload"
)

// Hybrid plans (§2.1): equi-joins at the bottom of a left-deep plan,
// theta joins above. The oracle recomputes results directly from the
// raw windows with the mixed predicate chain.

// hybridTheta is the non-equi predicate used for the upper joins:
// composite and stored tuple agree on key mod 3 (coarser than the
// equi-join on full keys below).
func hybridTheta(a, b *tuple.Tuple) bool { return a.Key%3 == b.Key%3 }

// hybridOracle recomputes the hybrid join over the current windows:
// streams 0,1,2 equi-join on key; streams 3 (and 4 if present) theta-
// join on key mod 3 against the growing composite.
type hybridOracle struct {
	win     int
	streams int
	hist    map[tuple.StreamID][]tuple.Value
}

func (o *hybridOracle) live(s tuple.StreamID) [][2]int64 {
	keys := o.hist[s]
	start := 0
	if len(keys) > o.win {
		start = len(keys) - o.win
	}
	var out [][2]int64 // (seq, key)
	for i := start; i < len(keys); i++ {
		out = append(out, [2]int64{int64(i + 1), int64(keys[i])})
	}
	return out
}

// results enumerates the full hybrid join over the live windows,
// returning fingerprint-count pairs.
func (o *hybridOracle) results() map[string]int {
	out := map[string]int{}
	for _, a := range o.live(0) {
		for _, b := range o.live(1) {
			if b[1] != a[1] {
				continue
			}
			for _, c := range o.live(2) {
				if c[1] != a[1] {
					continue
				}
				for _, d := range o.live(3) {
					if d[1]%3 != a[1]%3 {
						continue
					}
					t := tuple.Join(
						tuple.Join(tuple.NewBase(0, uint64(a[0]), tuple.Value(a[1]), 0),
							tuple.NewBase(1, uint64(b[0]), tuple.Value(b[1]), 0)),
						tuple.Join(tuple.NewBase(2, uint64(c[0]), tuple.Value(c[1]), 0),
							tuple.NewBase(3, uint64(d[0]), tuple.Value(d[1]), 0)),
					)
					out[t.Fingerprint()]++
				}
			}
		}
	}
	return out
}

func hybridEngine(t *testing.T, strat engine.Strategy, win int, outs map[string]int) *engine.Engine {
	t.Helper()
	// (((0⋈1)⋈2) theta 3): bottom two joins equi, top join theta.
	top := tuple.NewStreamSet(0, 1, 2, 3)
	return engine.MustNew(engine.Config{
		Plan: plan.MustLeftDeep(0, 1, 2, 3), WindowSize: win,
		Kind:       engine.HashJoin,
		Theta:      hybridTheta,
		ThetaNodes: func(set tuple.StreamSet) bool { return set == top },
		Strategy:   strat,
		Output: func(d engine.Delta) {
			outs[d.Tuple.Fingerprint()]++
		},
	})
}

func TestHybridPlanMatchesOracle(t *testing.T) {
	const win = 6
	outs := map[string]int{}
	e := hybridEngine(t, engine.Static{}, win, outs)
	o := &hybridOracle{win: win, streams: 4, hist: map[tuple.StreamID][]tuple.Value{}}
	rng := rand.New(rand.NewSource(testseed.Seed(t, 21)))

	produced := map[string]int{}
	for i := 0; i < 300; i++ {
		s := tuple.StreamID(rng.Intn(4))
		k := tuple.Value(rng.Intn(6))
		before := o.results()
		o.hist[s] = append(o.hist[s], k)
		after := o.results()
		e.Feed(workload.Event{Stream: s, Key: k})
		// New oracle results this step = after - before (new tuple's
		// contributions). Engine emits exactly those.
		for fp, n := range after {
			if n > before[fp] {
				produced[fp] += n - before[fp]
			}
		}
	}
	if len(outs) != len(produced) {
		t.Fatalf("output count differs: engine %d vs oracle %d", len(outs), len(produced))
	}
	for fp, n := range produced {
		if outs[fp] != n {
			t.Fatalf("result %s: engine %d vs oracle %d", fp, outs[fp], n)
		}
	}
}

// A hybrid plan migrates the equi-join prefix while the theta join on
// top stays put; JISC and Moving State must agree exactly.
func TestHybridMigrationStrategiesAgree(t *testing.T) {
	run := func(strat engine.Strategy) map[string]int {
		outs := map[string]int{}
		e := hybridEngine(t, strat, 8, outs)
		src := workload.MustNewSource(workload.Config{Streams: 4, Domain: 6, Seed: 13})
		plans := []*plan.Plan{
			plan.MustLeftDeep(1, 2, 0, 3),
			plan.MustLeftDeep(2, 0, 1, 3),
			plan.MustLeftDeep(0, 1, 2, 3),
		}
		for i := 0; i < 400; i++ {
			if i > 0 && i%90 == 0 {
				if err := e.Migrate(plans[(i/90-1)%len(plans)]); err != nil {
					t.Fatal(err)
				}
			}
			e.Feed(src.Next())
		}
		return outs
	}
	jisc := run(New())
	ms := run(migrate.MovingState{})
	if len(jisc) != len(ms) {
		t.Fatalf("distinct outputs differ: jisc %d vs ms %d", len(jisc), len(ms))
	}
	for fp, n := range ms {
		if jisc[fp] != n {
			t.Fatalf("result %s: jisc %d vs ms %d", fp, jisc[fp], n)
		}
	}
}

// Moving the theta join's stream set itself (here: making the theta
// node cover a different prefix) keeps working as long as the theta
// node stays above the hash joins.
func TestHybridValidation(t *testing.T) {
	theta := func(set tuple.StreamSet) bool { return set == tuple.NewStreamSet(0, 1) }
	_, err := engine.New(engine.Config{
		Plan: plan.MustLeftDeep(0, 1, 2), Kind: engine.HashJoin,
		Theta:      hybridTheta,
		ThetaNodes: theta,
	})
	if err == nil {
		t.Fatal("hash join above a nested-loops child was accepted")
	}
	// Theta on top is fine.
	top := tuple.NewStreamSet(0, 1, 2)
	e, err := engine.New(engine.Config{
		Plan: plan.MustLeftDeep(0, 1, 2), Kind: engine.HashJoin,
		Theta:      hybridTheta,
		ThetaNodes: func(set tuple.StreamSet) bool { return set == top },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Migrating to a plan where the theta node would sink below a
	// hash join is rejected.
	if err := e.Migrate(plan.MustLeftDeep(2, 0, 1)); err == nil {
		// With this ThetaNodes, set {2,0} is not theta and the top is
		// {0,1,2} which IS theta — actually legal; construct an
		// explicitly illegal target instead.
		t.Log("top-level theta migration accepted (legal)")
	}
	// ThetaNodes without Theta is rejected.
	if _, err := engine.New(engine.Config{
		Plan: plan.MustLeftDeep(0, 1), ThetaNodes: theta,
	}); err == nil {
		t.Fatal("ThetaNodes without Theta accepted")
	}
	// ThetaNodes with non-hash base kind is rejected.
	if _, err := engine.New(engine.Config{
		Plan: plan.MustLeftDeep(0, 1), Kind: engine.NLJoin,
		Theta: hybridTheta, ThetaNodes: theta,
	}); err == nil {
		t.Fatal("ThetaNodes with NLJoin base accepted")
	}
}

// A migration that invalidates both a hash state and the theta state
// above it: completing the nested-loops state must first complete its
// incomplete hash child in full (completeHashFull).
func TestHybridCompletionThroughIncompleteHashChild(t *testing.T) {
	theta := func(set tuple.StreamSet) bool { return set.Count() >= 4 }
	mk := func(strat engine.Strategy, outs map[string]int) *engine.Engine {
		return engine.MustNew(engine.Config{
			Plan: plan.MustLeftDeep(0, 1, 2, 3, 4), WindowSize: 8,
			Kind:       engine.HashJoin,
			Theta:      hybridTheta,
			ThetaNodes: theta,
			Strategy:   strat,
			Output:     func(d engine.Delta) { outs[d.Tuple.Fingerprint()]++ },
		})
	}
	run := func(strat engine.Strategy) map[string]int {
		outs := map[string]int{}
		e := mk(strat, outs)
		src := workload.MustNewSource(workload.Config{Streams: 5, Domain: 5, Seed: 23})
		for i := 0; i < 300; i++ {
			if i == 150 {
				// Swap positions 2 and 4: {0,1,4} (hash) and
				// {0,1,4,3} (theta) are both new and incomplete.
				if err := e.Migrate(plan.MustLeftDeep(0, 1, 4, 3, 2)); err != nil {
					t.Fatal(err)
				}
			}
			e.Feed(src.Next())
		}
		return outs
	}
	jisc := run(New())
	ms := run(migrate.MovingState{})
	if len(jisc) == 0 {
		t.Fatal("no outputs")
	}
	if len(jisc) != len(ms) {
		t.Fatalf("distinct outputs: jisc %d vs ms %d", len(jisc), len(ms))
	}
	for fp, n := range ms {
		if jisc[fp] != n {
			t.Fatalf("%s: jisc %d vs ms %d", fp, jisc[fp], n)
		}
	}
}
