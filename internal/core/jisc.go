// Package core implements Just-In-Time State Completion (JISC), the
// paper's contribution: a lazy plan-migration strategy for continuous
// queries. At a plan transition nothing is computed; the new plan's
// states are classified complete/incomplete per Definition 1 (and the
// §4.5 overlapped-transition rule), completion-detection counters are
// armed per §4.3, and missing state entries are computed on demand —
// one join-attribute value at a time — the first time a probe needs
// them (Procedures 1–3). The query never halts, so output stays
// steady (§5.1.1).
package core

import (
	"jisc/internal/engine"
	"jisc/internal/obs"
	"jisc/internal/tuple"
)

// JISC is the lazy migration strategy. The zero value is ready to use
// with default options; use New for explicit construction.
type JISC struct {
	// DisableLeftDeepFastPath forces the generic recursive completion
	// (Procedure 2) even on left-deep plans, for the Procedure 2 vs 3
	// ablation. Default false: left-deep plans use the iterative
	// spine walk of Procedure 3.
	DisableLeftDeepFastPath bool

	// FaultSkipEveryNth, when positive, deliberately skips every Nth
	// completion episode: the state is marked attempted without its
	// entries being materialized, silently losing the results those
	// entries would have produced. Test-only — the simulation
	// harness's self-test injects this fault to prove the differential
	// oracle catches it and shrinks it to a minimal repro. Never set
	// in production code.
	FaultSkipEveryNth int
	faultEpisodes     int
}

// faultSkip reports whether fault injection swallows this completion
// episode (see FaultSkipEveryNth).
func (c *JISC) faultSkip() bool {
	if c.FaultSkipEveryNth <= 0 {
		return false
	}
	c.faultEpisodes++
	return c.faultEpisodes%c.FaultSkipEveryNth == 0
}

// New returns a JISC strategy with default options.
func New() *JISC { return &JISC{} }

// Name implements engine.Strategy.
func (c *JISC) Name() string { return "jisc" }

// OnTransition implements engine.Strategy. The engine has already
// performed the buffer-clearing phase (§4.1), re-attached surviving
// states (keeping §4.5 completeness), and created the incomplete
// states. JISC only arms the §4.3 completion counters, bottom-up so
// Case 1/2 classification sees children first.
func (c *JISC) OnTransition(e *engine.Engine) error {
	for _, n := range e.Nodes() {
		if n.IsLeaf() {
			continue
		}
		if n.St != nil && !n.St.Complete() && !n.St.CounterArmed() {
			e.ArmCounter(n)
		}
	}
	return nil
}

// BeforeProbe implements engine.Strategy: when a tuple is about to
// probe an incomplete state whose entries for the tuple's join
// attribute value were never computed, complete exactly those entries
// (Procedure 1 lines 5–6). The per-state attempted set guarantees the
// §4.4 at-most-once property; the per-stream fresh flag is the paper's
// O(1) fast path and is only trusted on left-deep plans, where the
// probing tuple of an incomplete state is always a base tuple (in
// bushy plans a composite's driving tuple may be attempted even though
// this state never saw its key).
func (c *JISC) BeforeProbe(e *engine.Engine, j, opp *engine.Node, t *tuple.Tuple, fresh bool) {
	switch {
	case opp.St != nil:
		if opp.St.Complete() {
			return
		}
		if !fresh && t.IsBase() && !c.DisableLeftDeepFastPath {
			// Attempted base tuple: an earlier tuple with the same
			// key from the same stream already drove this exact
			// probe path since the transition.
			return
		}
		if opp.St.Attempted(t.Key) {
			return
		}
		if c.faultSkip() {
			if opp.St.MarkAttempted(t.Key) {
				e.MarkNodeComplete(opp)
			}
			return
		}
		end := beginEpisode(e, t.Key)
		if !c.DisableLeftDeepFastPath && isLeftSpine(opp) {
			c.completeKeyLD(e, opp, t.Key)
		} else {
			c.completeKey(e, opp, t.Key)
		}
		end()
	case opp.Ls != nil:
		if opp.Ls.Complete() || opp.Ls.Attempted(t.Refs[0]) {
			return
		}
		opp.Ls.MarkAttempted(t.Refs[0])
		end := beginEpisode(e, t.Key)
		c.completeNLState(e, opp)
		end()
	}
}

// noEpisode is the no-op episode closer handed out when
// instrumentation is off, so the probe path allocates nothing.
func noEpisode() {}

// beginEpisode opens one just-in-time completion episode — the unit
// the paper trades the migration stall into — and returns its closer.
// The episode duration lands in the Completion histogram; start/end
// events (with the triggering key and the tuples materialized) go to
// the tracer.
func beginEpisode(e *engine.Engine, key tuple.Value) func() {
	o := e.Obs()
	if o == nil {
		return noEpisode
	}
	met := e.Collector()
	before := met.CompletedEntries.Load()
	o.Tracer.Emit(obs.Event{
		Kind: obs.EvCompletionStart, Query: o.Query, Shard: o.Shard,
		Tick: e.Tick(), Key: int64(key),
	})
	start := e.Now()
	return func() {
		d := e.Now().Sub(start)
		o.Completion.Record(d)
		o.Tracer.Emit(obs.Event{
			Kind: obs.EvCompletionEnd, Query: o.Query, Shard: o.Shard,
			Tick: e.Tick(), Key: int64(key),
			Count: met.CompletedEntries.Load() - before, Dur: d,
		})
	}
}

// EvictContinue implements engine.Strategy: window-slide removals keep
// propagating past an incomplete state when the removed key's entries
// were never materialized there (§4.2), and stop per the standard rule
// once the entries are guaranteed to exist (§4.4's optimization).
func (c *JISC) EvictContinue(e *engine.Engine, j *engine.Node, key tuple.Value) bool {
	if j.St != nil {
		return !j.St.Complete() && !j.St.Attempted(key)
	}
	if j.Ls != nil {
		return !j.Ls.Complete()
	}
	return false
}

// completeKey is Procedure 2: recursive state completion for bushy
// plans. It materializes the entries of key at node n by first
// completing both children for the key, then joining the children's
// pre-Born entries. Entries whose newest constituent arrived after the
// state was born are produced by normal processing and must not be
// regenerated.
func (c *JISC) completeKey(e *engine.Engine, n *engine.Node, key tuple.Value) {
	if n.IsLeaf() || n.St.Complete() || n.St.Attempted(key) {
		return
	}
	c.completeKey(e, n.Left, key)
	c.completeKey(e, n.Right, key)
	c.joinInto(e, n, key)
	if n.St.MarkAttempted(key) {
		e.MarkNodeComplete(n)
	}
}

// completeKeyLD is Procedure 3: iterative state completion for
// left-deep plans. Starting from the highest operator with a complete
// (or already attempted) state on the left spine below n, it walks
// upward joining each level's entries with the inner scan's entries,
// completing every state on the way up to and including n.
func (c *JISC) completeKeyLD(e *engine.Engine, n *engine.Node, key tuple.Value) {
	var spine []*engine.Node
	cur := n
	for !cur.IsLeaf() && !cur.St.Complete() && !cur.St.Attempted(key) {
		spine = append(spine, cur)
		cur = cur.Left
	}
	for i := len(spine) - 1; i >= 0; i-- {
		o := spine[i]
		c.joinInto(e, o, key)
		if o.St.MarkAttempted(key) {
			e.MarkNodeComplete(o)
		}
	}
}

// joinInto materializes the pre-Born entries of key at join node n
// from its children's states.
func (c *JISC) joinInto(e *engine.Engine, n *engine.Node, key tuple.Value) {
	met := e.Collector()
	met.Completions.Add(1)
	bld := e.Builder()
	born := n.Born
	left := n.Left.St.Probe(key)
	right := n.Right.St.Probe(key)
	for _, l := range left {
		if l.Arrival > born {
			continue
		}
		for _, r := range right {
			if r.Arrival > born {
				continue
			}
			n.St.Insert(bld.Join(l, r))
			met.CompletedEntries.Add(1)
		}
	}
}

// isLeftSpine reports whether the subtree under n is a left-deep
// chain (every right descendant a leaf), the shape Procedure 3
// requires.
func isLeftSpine(n *engine.Node) bool {
	for !n.IsLeaf() {
		if !n.Right.IsLeaf() {
			return false
		}
		n = n.Left
	}
	return true
}

// completeNLState completes a nested-loops state in full (recursively
// completing its children first). Nested-loops states have no join-key
// granularity to complete at, so JISC amortizes by completing a state
// the first time any probe needs it rather than all states at
// transition time. In hybrid plans (§2.1) a nested-loops node may have
// hash-join children; those are completed in full too.
func (c *JISC) completeNLState(e *engine.Engine, n *engine.Node) {
	if n.IsLeaf() || n.Ls.Complete() {
		return
	}
	c.completeChildFull(e, n.Left)
	c.completeChildFull(e, n.Right)
	met := e.Collector()
	met.Completions.Add(1)
	bld := e.Builder()
	born := n.Born
	pred := e.Theta()
	n.Left.EachEntry(func(l *tuple.Tuple) bool {
		if l.Arrival > born {
			return true
		}
		n.Right.EachEntry(func(r *tuple.Tuple) bool {
			if r.Arrival > born {
				return true
			}
			if pred(l, r) {
				n.Ls.Insert(bld.JoinTheta(l, r))
				met.CompletedEntries.Add(1)
			}
			return true
		})
		return true
	})
	e.MarkNodeComplete(n)
}

// completeChildFull brings a child's whole state up to date, whatever
// operator backs it — the recursion step a full nested-loops
// completion needs in hybrid plans.
func (c *JISC) completeChildFull(e *engine.Engine, n *engine.Node) {
	switch {
	case n.IsLeaf():
	case n.Ls != nil:
		c.completeNLState(e, n)
	default:
		c.completeHashFull(e, n)
	}
}

// completeHashFull completes every missing key of a hash-join state —
// used when a nested-loops parent needs the child's full extent. The
// per-key work is identical to on-demand completion, just driven over
// the remaining unattempted keys of the smaller child side.
func (c *JISC) completeHashFull(e *engine.Engine, n *engine.Node) {
	if n.St.Complete() {
		return
	}
	c.completeChildFull(e, n.Left)
	c.completeChildFull(e, n.Right)
	small, other := n.Left.St, n.Right.St
	if other.DistinctKeys() < small.DistinctKeys() {
		small = other
	}
	for _, key := range e.IterKeys(small) {
		if n.St.Attempted(key) {
			continue
		}
		c.joinInto(e, n, key)
		n.St.MarkAttempted(key)
	}
	e.MarkNodeComplete(n)
}

// BeforeDiffEvent implements engine.DiffCompleter: materialize the
// entries of key at set-difference node j (§4.7), completing the chain
// below first, deduplicating against entries already inserted by
// normal post-transition processing, and ignoring the in-flight tuple
// `exclude` so the books reflect the instant before the triggering
// event.
func (c *JISC) BeforeDiffEvent(e *engine.Engine, j *engine.Node, key tuple.Value, exclude tuple.Ref, haveExclude bool) {
	end := beginEpisode(e, key)
	c.completeDiffKey(e, j, key, exclude, haveExclude)
	end()
}

func (c *JISC) completeDiffKey(e *engine.Engine, j *engine.Node, key tuple.Value, exclude tuple.Ref, haveExclude bool) {
	if j.IsLeaf() || j.St.Complete() || j.St.Attempted(key) {
		return
	}
	c.completeDiffKey(e, j.Left, key, exclude, haveExclude)
	met := e.Collector()
	met.Completions.Add(1)
	// Does the inner stream suppress this key (ignoring the excluded
	// in-flight tuple)?
	suppressed := false
	for _, b := range j.Right.St.Probe(key) {
		if haveExclude && b.Refs[0] == exclude {
			continue
		}
		suppressed = true
		break
	}
	if !suppressed {
		existing := make(map[tuple.Ref]bool)
		for _, t := range j.St.Probe(key) {
			existing[t.Refs[0]] = true
		}
		for _, t := range j.Left.St.Probe(key) {
			if haveExclude && t.Refs[0] == exclude {
				continue
			}
			if existing[t.Refs[0]] {
				continue
			}
			j.St.Insert(t)
			met.CompletedEntries.Add(1)
		}
	}
	if j.St.MarkAttempted(key) {
		e.MarkNodeComplete(j)
	}
}
