package workload

import (
	"math"
	"testing"

	"jisc/internal/tuple"
)

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"too few streams", Config{Streams: 1, Domain: 10}},
		{"too many streams", Config{Streams: tuple.MaxStreams + 1, Domain: 10}},
		{"zero domain", Config{Streams: 3, Domain: 0}},
		{"weight count mismatch", Config{Streams: 3, Domain: 10, Weights: []float64{1, 2}}},
		{"negative weight", Config{Streams: 2, Domain: 10, Weights: []float64{1, -1}}},
		{"zero weights", Config{Streams: 2, Domain: 10, Weights: []float64{0, 0}}},
	}
	for _, c := range cases {
		if _, err := NewSource(c.cfg); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Streams: 4, Domain: 100, Seed: 7}
	a := MustNewSource(cfg).Take(1000)
	b := MustNewSource(cfg).Take(1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRoundRobinDistribution(t *testing.T) {
	s := MustNewSource(Config{Streams: 5, Domain: 1000, Seed: 1})
	counts := map[tuple.StreamID]int{}
	for _, e := range s.Take(5000) {
		counts[e.Stream]++
	}
	for id := tuple.StreamID(0); id < 5; id++ {
		if counts[id] != 1000 {
			t.Errorf("stream %d got %d tuples, want exactly 1000 (round-robin)", id, counts[id])
		}
	}
}

func TestKeysInDomain(t *testing.T) {
	s := MustNewSource(Config{Streams: 2, Domain: 50, Seed: 3})
	for _, e := range s.Take(2000) {
		if e.Key < 0 || e.Key >= 50 {
			t.Fatalf("key %d outside [0,50)", e.Key)
		}
	}
}

func TestUniformKeysCoverDomain(t *testing.T) {
	s := MustNewSource(Config{Streams: 2, Domain: 16, Seed: 5})
	seen := map[tuple.Value]bool{}
	for _, e := range s.Take(2000) {
		seen[e.Key] = true
	}
	if len(seen) != 16 {
		t.Errorf("uniform keys covered %d/16 values", len(seen))
	}
}

func TestZipfSkew(t *testing.T) {
	s := MustNewSource(Config{Streams: 2, Domain: 1000, Dist: Zipf, Seed: 9})
	counts := map[tuple.Value]int{}
	n := 20000
	for _, e := range s.Take(n) {
		counts[e.Key]++
	}
	// Zipf concentrates mass on small keys: key 0 should be far more
	// frequent than the uniform expectation n/domain.
	if counts[0] < 5*n/1000 {
		t.Errorf("zipf key 0 count = %d, expected heavy skew (> %d)", counts[0], 5*n/1000)
	}
}

func TestWeightedStreams(t *testing.T) {
	s := MustNewSource(Config{
		Streams: 2, Domain: 100, Seed: 11,
		Weights: []float64{3, 1},
	})
	counts := map[tuple.StreamID]int{}
	n := 40000
	for _, e := range s.Take(n) {
		counts[e.Stream]++
	}
	frac := float64(counts[0]) / float64(n)
	if math.Abs(frac-0.75) > 0.02 {
		t.Errorf("stream 0 fraction = %f, want ~0.75", frac)
	}
}

func TestStreamsAccessor(t *testing.T) {
	s := MustNewSource(Config{Streams: 7, Domain: 10, Seed: 1})
	if s.Streams() != 7 {
		t.Fatalf("Streams() = %d", s.Streams())
	}
}

func TestMustNewSourcePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewSource did not panic on invalid config")
		}
	}()
	MustNewSource(Config{Streams: 0, Domain: 0})
}

func TestPerStreamDomains(t *testing.T) {
	s := MustNewSource(Config{
		Streams: 2, Domain: 100, Seed: 7,
		Domains: []int64{4, 1000},
	})
	maxKey := map[tuple.StreamID]tuple.Value{}
	for _, e := range s.Take(4000) {
		if e.Key > maxKey[e.Stream] {
			maxKey[e.Stream] = e.Key
		}
	}
	if maxKey[0] >= 4 {
		t.Errorf("stream 0 key %d outside its domain 4", maxKey[0])
	}
	if maxKey[1] < 100 {
		t.Errorf("stream 1 max key %d suspiciously small for domain 1000", maxKey[1])
	}
}

func TestDomainsValidation(t *testing.T) {
	if _, err := NewSource(Config{Streams: 2, Domain: 10, Domains: []int64{1}}); err == nil {
		t.Error("domain count mismatch accepted")
	}
	if _, err := NewSource(Config{Streams: 2, Domain: 10, Domains: []int64{1, 0}}); err == nil {
		t.Error("zero per-stream domain accepted")
	}
}
