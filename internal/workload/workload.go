// Package workload generates the synthetic stream workloads of the
// paper's experimental study (§6): uniformly distributed join-key
// values, tuples distributed across the query's streams (round-robin
// or weighted), plus a Zipf option for skewed-key scenarios and
// deterministic seeding so every run is reproducible.
package workload

import (
	"fmt"
	"math/rand"

	"jisc/internal/tuple"
)

// Event is one input tuple before it enters an executor.
type Event struct {
	Stream tuple.StreamID
	Key    tuple.Value
}

// KeyDist selects the distribution of join-attribute values.
type KeyDist int

const (
	// Uniform draws keys uniformly from [0, Domain) — the paper's
	// setting ("we uniformly generate the data").
	Uniform KeyDist = iota
	// Zipf draws keys Zipf-distributed over [0, Domain) with s=1.1.
	Zipf
)

// Config parameterizes a Source.
type Config struct {
	// Streams is the number of base streams (n+1 for n joins).
	Streams int
	// Domain is the number of distinct join-attribute values.
	// Together with the window size it fixes join selectivity:
	// expected matches per probe ≈ window/Domain.
	Domain int64
	// Dist selects the key distribution.
	Dist KeyDist
	// Seed makes the workload deterministic.
	Seed int64
	// Weights optionally skews the per-stream arrival rates; nil
	// means uniform round-robin assignment ("uniformly distribute it
	// across the different streams").
	Weights []float64
	// Domains optionally overrides Domain per stream, giving streams
	// different join selectivities (a stream drawing from a larger
	// domain matches less often). nil means every stream uses Domain.
	Domains []int64
}

// Source produces a deterministic stream of Events.
type Source struct {
	cfg  Config
	rng  *rand.Rand
	zipf *rand.Zipf
	// cumulative weights for weighted stream choice; nil for
	// round-robin.
	cum  []float64
	next int // round-robin cursor
}

// NewSource validates cfg and returns a Source.
func NewSource(cfg Config) (*Source, error) {
	if cfg.Streams < 2 || cfg.Streams > tuple.MaxStreams {
		return nil, fmt.Errorf("workload: streams must be in [2,%d], got %d", tuple.MaxStreams, cfg.Streams)
	}
	if cfg.Domain <= 0 {
		return nil, fmt.Errorf("workload: domain must be positive, got %d", cfg.Domain)
	}
	if cfg.Weights != nil && len(cfg.Weights) != cfg.Streams {
		return nil, fmt.Errorf("workload: %d weights for %d streams", len(cfg.Weights), cfg.Streams)
	}
	if cfg.Domains != nil {
		if len(cfg.Domains) != cfg.Streams {
			return nil, fmt.Errorf("workload: %d domains for %d streams", len(cfg.Domains), cfg.Streams)
		}
		for i, d := range cfg.Domains {
			if d <= 0 {
				return nil, fmt.Errorf("workload: non-positive domain %d for stream %d", d, i)
			}
		}
	}
	s := &Source{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	if cfg.Dist == Zipf {
		s.zipf = rand.NewZipf(s.rng, 1.1, 1, uint64(cfg.Domain-1))
	}
	if cfg.Weights != nil {
		total := 0.0
		s.cum = make([]float64, cfg.Streams)
		for i, w := range cfg.Weights {
			if w < 0 {
				return nil, fmt.Errorf("workload: negative weight %f for stream %d", w, i)
			}
			total += w
			s.cum[i] = total
		}
		if total <= 0 {
			return nil, fmt.Errorf("workload: weights sum to zero")
		}
	}
	return s, nil
}

// MustNewSource is NewSource but panics on error.
func MustNewSource(cfg Config) *Source {
	s, err := NewSource(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Next returns the next event.
func (s *Source) Next() Event {
	var id tuple.StreamID
	if s.cum != nil {
		x := s.rng.Float64() * s.cum[len(s.cum)-1]
		for i, c := range s.cum {
			if x < c {
				id = tuple.StreamID(i)
				break
			}
		}
	} else {
		id = tuple.StreamID(s.next)
		s.next = (s.next + 1) % s.cfg.Streams
	}
	return Event{Stream: id, Key: s.key(id)}
}

func (s *Source) key(id tuple.StreamID) tuple.Value {
	if s.zipf != nil {
		return tuple.Value(s.zipf.Uint64())
	}
	domain := s.cfg.Domain
	if s.cfg.Domains != nil {
		domain = s.cfg.Domains[id]
	}
	return tuple.Value(s.rng.Int63n(domain))
}

// DeriveSeed deterministically derives an independent labeled sub-seed
// from a base seed, so one scenario seed can fan out into seeds for
// several generators (workload source, migration schedule, crash
// point, …) without correlation between them. The mix is splitmix64
// over the base xored with an FNV-1a hash of the label.
func DeriveSeed(base uint64, label string) int64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	z := base ^ h
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// Take returns the next n events.
func (s *Source) Take(n int) []Event {
	out := make([]Event, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

// Streams returns the configured stream count.
func (s *Source) Streams() int { return s.cfg.Streams }
