package engine

import (
	"time"

	"jisc/internal/tuple"
	"jisc/internal/window"
)

// Set-difference pipelines (§4.7). A left-deep chain (((A−B)−C)−D)
// streams the tuples of the outer stream A that match nothing in any
// inner stream. Each diff node's St holds its "passing" tuples: the
// left child's passing tuples with no live match in the node's inner
// (right) stream. Suppressed tuples are not stored — they remain
// visible in the left child's state and are re-derived on demand —
// which also makes a surviving state's content independent of the
// inner-stream order, so Definition 1's stream-set identity applies
// to diff states exactly as to join states.
//
// Semantics are key-level (one live inner tuple with key k suppresses
// every outer tuple with key k) and revision-based: suppression emits
// retractions at the root, requalification after the last inner
// k-tuple expires emits additions (the "possibly adding" direction of
// §2.1's removal tracing).
//
// Lazy migration: events that operate on whole key buckets (inner
// arrivals, last-key inner expiries) must materialize the key's
// entries in incomplete states first; the engine calls the strategy's
// DiffCompleter for that. Single-tuple additions and retractions apply
// directly — a later completion deduplicates by provenance ref.

// DiffCompleter is the optional Strategy extension for lazy migration
// of set-difference pipelines: materialize the entries of key at diff
// node j (recursively completing descendants), ignoring the in-flight
// tuple identified by exclude when haveExclude is true.
type DiffCompleter interface {
	BeforeDiffEvent(e *Engine, j *Node, key tuple.Value, exclude tuple.Ref, haveExclude bool)
}

// setDiffOp dispatches arriving tuples at diff nodes.
type setDiffOp struct{}

// Kind implements Operator.
func (setDiffOp) Kind() Kind { return SetDiff }

// Push implements Operator.
func (setDiffOp) Push(e *Engine, j, from *Node, t *tuple.Tuple, fresh bool) {
	if from == j.Right {
		e.diffInnerArrival(j, t)
		return
	}
	e.diffOuterAddition(j, t, fresh)
}

// diffOuterAddition handles a new left-child passing tuple at j: store
// and propagate it unless the inner stream suppresses its key.
func (e *Engine) diffOuterAddition(j *Node, t *tuple.Tuple, fresh bool) {
	e.met.Probes.Add(1)
	timed := e.obs.SampleProbe()
	var t0 time.Time
	if timed {
		t0 = e.now()
	}
	suppressed := j.Right.St.ContainsKey(t.Key)
	if timed {
		e.recordProbe(j.Right, e.now().Sub(t0))
	}
	if suppressed {
		return // suppressed: stays visible only in the left child
	}
	j.St.Insert(t)
	e.met.Inserts.Add(1)
	e.pushUp(j, t, fresh)
}

// diffInnerArrival handles a new inner-stream tuple b at j: every
// passing outer tuple with b's key becomes suppressed, retracting
// upward. If j's state is incomplete and the key unattempted, the
// strategy materializes the key's entries first — excluding b itself,
// so the books reflect the instant before this event and the moves
// below produce the right retractions.
func (e *Engine) diffInnerArrival(j *Node, b *tuple.Tuple) {
	e.met.Probes.Add(1)
	e.materializeDiffKey(j, b.Key, b.Refs[0], true)
	for _, t := range j.St.RemoveKey(b.Key) {
		e.retractDiff(j, t)
	}
}

// materializeDiffKey invokes the strategy's DiffCompleter when j's
// state is incomplete and key unattempted.
func (e *Engine) materializeDiffKey(j *Node, key tuple.Value, exclude tuple.Ref, have bool) {
	if j.IsLeaf() || j.St.Complete() || j.St.Attempted(key) {
		return
	}
	if dc, ok := e.strategy.(DiffCompleter); ok {
		dc.BeforeDiffEvent(e, j, key, exclude, have)
	}
}

// retractDiff withdraws tuple t — which just stopped passing at node
// `below` — from every state above, stopping where it was suppressed.
// For keys never materialized in an incomplete state, the current
// inner scan decides whether t was passing there: keys stay
// unattempted only while no inner event for them occurs, so the scan's
// key membership is unchanged since the state was born.
func (e *Engine) retractDiff(below *Node, t *tuple.Tuple) {
	u := below.Parent
	if u == nil {
		e.emit(Delta{Tuple: t, Retraction: true})
		return
	}
	if removed := u.St.RemoveRef(t.Key, t.Refs[0]); len(removed) > 0 {
		e.retractDiff(u, t)
		return
	}
	if !u.St.Complete() && !u.St.Attempted(t.Key) && !u.Right.St.ContainsKey(t.Key) {
		e.retractDiff(u, t)
	}
}

// setDiffEvict handles window expiry in a set-difference pipeline.
func (e *Engine) setDiffEvict(scan *Node, exp window.Entry) {
	e.met.Evictions.Add(1)
	j := scan.Parent
	if j != nil && j.Right == scan {
		e.diffInnerExpiry(j, scan, exp)
		return
	}
	// Outer-stream expiry: remove from the scan state, then retract
	// from every diff node upward.
	scan.St.RemoveRef(exp.Key, exp.Ref)
	t := tuple.NewBase(exp.Ref.Stream, exp.Ref.Seq, exp.Key, 0)
	e.retractDiff(scan, t)
}

// diffInnerExpiry removes an expired inner tuple from the scan of j's
// inner stream. If it was the last inner tuple with its key, the outer
// tuples it suppressed requalify: they are re-derived from the left
// child's state (materializing it for the key if needed) and
// propagated upward as additions.
func (e *Engine) diffInnerExpiry(j, scan *Node, exp window.Entry) {
	last := len(scan.St.Probe(exp.Key)) == 1
	scan.St.RemoveRef(exp.Key, exp.Ref)
	if !last {
		return
	}
	// Materialize the left child (and hence the whole chain below it)
	// for the key so its passing set is trustworthy, then lift every
	// left-passing tuple not already at j and propagate it upward.
	// The lift itself is j's materialization for the key — it must
	// run here rather than through the DiffCompleter because these
	// insertions have to propagate as additions.
	e.materializeDiffKey(j.Left, exp.Key, tuple.Ref{}, false)
	have := make(map[tuple.Ref]bool)
	for _, t := range j.St.Probe(exp.Key) {
		have[t.Refs[0]] = true
	}
	for _, t := range j.Left.St.Probe(exp.Key) {
		if have[t.Refs[0]] {
			continue
		}
		j.St.Insert(t)
		e.met.Inserts.Add(1)
		e.pushUp(j, t, false)
	}
	if !j.St.Complete() {
		if j.St.MarkAttempted(exp.Key) {
			e.MarkNodeComplete(j)
		}
	}
}
