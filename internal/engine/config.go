package engine

import (
	"time"

	"jisc/internal/obs"
	"jisc/internal/plan"
	"jisc/internal/storage"
	"jisc/internal/tuple"
)

// Config parameterizes an Engine.
type Config struct {
	// Plan is the initial query plan.
	Plan *plan.Plan
	// WindowSize is the per-stream sliding window size in tuples
	// (default 10_000, the paper's setting). Ignored when TimeSpan is
	// set.
	WindowSize int
	// WindowSizes optionally overrides WindowSize per stream (§5
	// notes the general case of per-stream window sizes). Streams
	// absent from the map use WindowSize.
	WindowSizes map[tuple.StreamID]int
	// TimeSpan, when non-zero, selects time-based sliding windows
	// instead of count-based ones: a tuple stays live while its
	// arrival tick is within TimeSpan of the stream's newest tuple.
	TimeSpan uint64
	// Kind selects the physical operator for internal nodes
	// (default HashJoin).
	Kind Kind
	// Theta is the join predicate for nested-loops nodes. It receives
	// the probing tuple and a stored tuple. Required iff Kind is
	// NLJoin or ThetaNodes is set.
	Theta func(probe, stored *tuple.Tuple) bool
	// ThetaNodes builds a hybrid plan (§2.1): with Kind == HashJoin,
	// join nodes whose output stream set satisfies the predicate run
	// as nested-loops theta joins, the rest as symmetric hash joins.
	// A hash join probes its children by key, so a nested-loops node
	// may not be the child of a hash node — theta joins sit above the
	// equi-joins, the usual hybrid shape.
	ThetaNodes func(set tuple.StreamSet) bool
	// Strategy handles plan transitions (default Static).
	Strategy Strategy
	// Output receives root results; may be nil.
	Output Output
	// Observer, when non-nil, receives a TransitionEvent after every
	// plan transition's classification — the observability hook
	// monitoring and tests use to watch migrations.
	Observer func(TransitionEvent)
	// Obs, when non-nil, turns on latency instrumentation: per-tuple
	// feed latency, sampled per-operator probe/build time, Migrate
	// duration, and (through the recorder's Tracer) migration
	// lifecycle events. Nil — the default — keeps every clock read off
	// the hot path.
	Obs *obs.Recorder
	// EmitExpiry turns the output into a revision stream for join
	// pipelines: when a window slide removes results from the root
	// state, each removal is emitted as a retraction Delta, so
	// downstream aggregates (§4.7) track the live window instead of
	// the all-time output. Set-difference pipelines always emit
	// retractions regardless of this flag.
	EmitExpiry bool
	// Now supplies time for latency metrics; defaults to time.Now.
	// Tests inject a fake clock.
	Now func() time.Time
	// StateBudget, when positive, bounds the engine's resident state
	// bytes (state.TupleBytes accounting): a tiered statestore spills
	// cold hash buckets to CRC-framed segment files and faults them
	// back just in time when a probe needs them — the storage-level
	// analogue of JISC's lazy completion. Zero or negative keeps all
	// state resident (the default). Unsupported for set-difference
	// pipelines, whose operator moves whole buckets between tables.
	StateBudget int64
	// SpillDir is the spill tier's segment directory. It is a cache —
	// wiped on open, removed on Close — never durable state. Empty
	// picks a fresh temp directory (or "jisc-spill" on an injected
	// in-memory filesystem).
	SpillDir string
	// SpillFS overrides the spill tier's filesystem; nil means the
	// real one. Tests and the simulation harness inject
	// storage.NewMemFS() for hermetic, deterministic runs.
	SpillFS storage.FS
	// SpillSegmentBytes overrides the spill segment rotation size
	// (default 1 MiB). The simulation harness shrinks it to force
	// multi-segment stores under tiny budgets.
	SpillSegmentBytes int64
	// Deterministic makes the engine bit-for-bit reproducible across
	// processes: key sets iterated during state completion and eager
	// fills (IterKeys) are visited in sorted order instead of Go's
	// randomized map order. Output multisets never depend on that
	// order, but intermediate insertion orders do — the simulation
	// harness's shrinker re-runs scenarios and relies on every run of
	// a seed behaving identically. Costs one sort per completion; off
	// by default.
	Deterministic bool
	// AfterFeed, when non-nil, runs after each input tuple has been
	// processed to completion, with the tuple's arrival tick. Unlike
	// wrapping Feed, it also fires for tuples drained from the input
	// buffer during Migrate's buffer-clearing phase — the batch
	// boundary callback the simulation harness observes per-tuple
	// progress through.
	AfterFeed func(tick uint64)
}

// TransitionEvent describes one applied plan transition.
type TransitionEvent struct {
	// Old and New are the plans' infix forms.
	Old, New string
	// Complete and Incomplete count the new plan's join states by
	// Definition 1 classification.
	Complete, Incomplete int
	// Tick is the arrival tick at which the transition applied.
	Tick uint64
}
