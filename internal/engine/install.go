package engine

import (
	"fmt"

	"jisc/internal/plan"
	"jisc/internal/state"
	"jisc/internal/tuple"
)

// install builds the operator tree for p, attaching surviving states
// from the store and creating empty incomplete states for new stream
// sets. initial marks the first installation, where every state starts
// complete (there is nothing to migrate from). Each internal node is
// bound to its Operator singleton here, so the feed hot path
// dispatches through one interface call without re-deriving kinds.
func (e *Engine) install(p *plan.Plan, initial bool) {
	live := make(map[tuple.StreamSet]bool)
	var build func(n *plan.Node) *Node
	build = func(n *plan.Node) *Node {
		set := n.Set()
		live[set] = true
		node := &Node{Set: set, Kind: e.nodeKind(set)}
		if n.IsLeaf() {
			node.Stream = n.Stream
			node.Kind = HashJoin // scan windows are always key-hashed
			e.scans[n.Stream] = node
			node.St = e.ensureTable(set, initial)
			return node
		}
		node.Op = operatorFor(node.Kind)
		node.Left = build(n.Left)
		node.Right = build(n.Right)
		node.Left.Parent = node
		node.Right.Parent = node
		if node.Kind == NLJoin {
			node.Ls = e.ensureList(set, initial)
		} else {
			node.St = e.ensureTable(set, initial)
		}
		node.Born = e.born[set]
		return node
	}
	e.root = build(p.Root)
	e.plan = p
	// Discard states whose stream set is not in the new plan. Release
	// detaches each from the spill tier first, so spilled buckets and
	// byte accounting don't leak into the budget.
	for set, st := range e.states {
		if !live[set] {
			st.Release()
			delete(e.states, set)
			delete(e.born, set)
		}
	}
	for set, ls := range e.lists {
		if !live[set] {
			ls.Release()
			delete(e.lists, set)
			delete(e.born, set)
		}
	}
}

func (e *Engine) ensureTable(set tuple.StreamSet, initial bool) *state.Table {
	if st, ok := e.states[set]; ok {
		// Surviving state: completeness carries over unchanged
		// (§4.5: incomplete in the old plan stays incomplete).
		return st
	}
	st := state.NewTable(set)
	if !initial && set.Count() > 1 {
		st.MarkIncomplete()
		e.born[set] = e.tick
	}
	if e.store != nil {
		// Scan windows hold exactly one ref per tuple and evict in
		// seq order, so spilled buckets can shrink by tombstone alone;
		// join states need the removed tuples back (metrics, expiry
		// retractions) and fault on eviction instead.
		st.SetBackend(e.store, set.Count() == 1)
	}
	e.states[set] = st
	return st
}

func (e *Engine) ensureList(set tuple.StreamSet, initial bool) *state.List {
	if ls, ok := e.lists[set]; ok {
		return ls
	}
	ls := state.NewList(set)
	if !initial && set.Count() > 1 {
		ls.MarkIncomplete()
		e.born[set] = e.tick
	}
	if e.store != nil {
		// Lists only account toward the budget; a nested-loops scan
		// touches every stored tuple, so spilling them would fault the
		// whole list back on each probe.
		ls.SetBackend(e.store)
	}
	e.lists[set] = ls
	return ls
}

// ClearBorn forgets the creation tick of set once its state is
// complete again.
func (e *Engine) ClearBorn(set tuple.StreamSet) { delete(e.born, set) }

// nodeKind returns the operator kind for the internal node covering
// set.
func (e *Engine) nodeKind(set tuple.StreamSet) Kind {
	if e.cfg.Kind == HashJoin && e.cfg.ThetaNodes != nil && e.cfg.ThetaNodes(set) {
		return NLJoin
	}
	return e.cfg.Kind
}

// validateKinds rejects plans where a hash join would have a
// nested-loops child: hash probes need a key index, which list states
// lack.
func (e *Engine) validateKinds(p *plan.Plan) error {
	if e.cfg.ThetaNodes == nil {
		return nil
	}
	var err error
	p.Root.Walk(func(n *plan.Node) {
		if err != nil || n.IsLeaf() || e.nodeKind(n.Set()) == NLJoin {
			return
		}
		for _, child := range []*plan.Node{n.Left, n.Right} {
			if !child.IsLeaf() && e.nodeKind(child.Set()) == NLJoin {
				err = fmt.Errorf("engine: hash join %v cannot consume nested-loops child %v; theta joins must sit above equi-joins", n.Set(), child.Set())
			}
		}
	})
	return err
}
