package engine

import (
	"testing"

	"jisc/internal/plan"
	"jisc/internal/tuple"
)

// Engine-level set-difference tests (strategy-independent paths; the
// migration-aware behavior is covered in internal/core against a
// recompute oracle).

func newDiff(t *testing.T, win int, out *[]Delta) *Engine {
	t.Helper()
	cfg := Config{Plan: plan.MustLeftDeep(0, 1, 2), Kind: SetDiff, WindowSize: win}
	if out != nil {
		cfg.Output = collect(out)
	}
	return MustNew(cfg)
}

func TestSetDiffPassAndSuppress(t *testing.T) {
	var out []Delta
	e := newDiff(t, 10, &out)
	e.Feed(ev(0, 5)) // passes both inners
	if len(out) != 1 || out[0].Retraction {
		t.Fatalf("out = %v", out)
	}
	e.Feed(ev(1, 5)) // inner B match: retract
	if len(out) != 2 || !out[1].Retraction {
		t.Fatalf("out = %v", out)
	}
	e.Feed(ev(0, 5)) // new outer with suppressed key: nothing
	if len(out) != 2 {
		t.Fatalf("suppressed outer emitted: %v", out)
	}
}

func TestSetDiffSecondInnerSuppresses(t *testing.T) {
	var out []Delta
	e := newDiff(t, 10, &out)
	e.Feed(ev(0, 3))
	e.Feed(ev(2, 3)) // second-level inner
	if len(out) != 2 || !out[1].Retraction {
		t.Fatalf("out = %v", out)
	}
}

func TestSetDiffRequalifyOnInnerExpiry(t *testing.T) {
	var out []Delta
	e := newDiff(t, 2, &out)
	e.Feed(ev(0, 9))
	e.Feed(ev(1, 9)) // suppress
	e.Feed(ev(1, 1))
	e.Feed(ev(1, 2)) // inner window size 2: key 9 expires
	adds := 0
	for _, d := range out {
		if !d.Retraction && d.Tuple.Key == 9 {
			adds++
		}
	}
	if adds != 2 { // initial pass + requalification
		t.Fatalf("requalification adds = %d, out = %v", adds, out)
	}
}

func TestSetDiffOuterExpiryRetracts(t *testing.T) {
	var out []Delta
	e := newDiff(t, 2, &out)
	e.Feed(ev(0, 1))
	e.Feed(ev(0, 2))
	e.Feed(ev(0, 3)) // outer window 2: key 1 expires
	var retracted []tuple.Value
	for _, d := range out {
		if d.Retraction {
			retracted = append(retracted, d.Tuple.Key)
		}
	}
	if len(retracted) != 1 || retracted[0] != 1 {
		t.Fatalf("retracted = %v", retracted)
	}
}

func TestSetDiffStatesVisible(t *testing.T) {
	e := newDiff(t, 10, nil)
	e.Feed(ev(0, 5))
	if e.TotalStateSize() == 0 {
		t.Fatal("no state recorded")
	}
	if e.DescribeStates() == "" {
		t.Fatal("empty DescribeStates")
	}
}

func TestHybridEngineSmoke(t *testing.T) {
	var out []Delta
	top := tuple.NewStreamSet(0, 1, 2)
	e := MustNew(Config{
		Plan: plan.MustLeftDeep(0, 1, 2), WindowSize: 10,
		Theta:      func(a, b *tuple.Tuple) bool { return a.Key%2 == b.Key%2 },
		ThetaNodes: func(set tuple.StreamSet) bool { return set == top },
		Output:     collect(&out),
	})
	e.Feed(ev(0, 4))
	e.Feed(ev(1, 4)) // equi join at the bottom
	e.Feed(ev(2, 6)) // theta join on parity at the top
	if len(out) != 1 {
		t.Fatalf("out = %v", out)
	}
	// Parity mismatch produces nothing.
	e.Feed(ev(2, 7))
	if len(out) != 1 {
		t.Fatalf("parity mismatch joined: %v", out)
	}
	// The NL node stores composites in a list state.
	root := e.Root()
	if root.Ls == nil || root.Ls.Size() != 1 {
		t.Fatalf("hybrid root state: %+v", root)
	}
	n := e.NodeBySet(tuple.NewStreamSet(0, 1))
	if n.St == nil {
		t.Fatal("bottom equi node missing table state")
	}
}

func TestNLEngineUsesTablesForScans(t *testing.T) {
	e := MustNew(Config{
		Plan: plan.MustLeftDeep(0, 1), Kind: NLJoin,
		Theta: func(a, b *tuple.Tuple) bool { return true },
	})
	e.Feed(ev(0, 1))
	if e.Scan(0).St == nil {
		t.Fatal("scan state should be a table even under NLJoin")
	}
	if e.Root().Ls == nil {
		t.Fatal("NL join state should be a list")
	}
}

func TestEachEntryBothKinds(t *testing.T) {
	e := MustNew(Config{Plan: plan.MustLeftDeep(0, 1)})
	e.Feed(ev(0, 1))
	n := 0
	e.Scan(0).EachEntry(func(*tuple.Tuple) bool { n++; return true })
	if n != 1 {
		t.Fatalf("EachEntry over table visited %d", n)
	}
	nl := MustNew(Config{
		Plan: plan.MustLeftDeep(0, 1), Kind: NLJoin,
		Theta: func(a, b *tuple.Tuple) bool { return true },
	})
	nl.Feed(ev(0, 1))
	nl.Feed(ev(1, 1))
	n = 0
	nl.Root().EachEntry(func(*tuple.Tuple) bool { n++; return true })
	if n != 1 {
		t.Fatalf("EachEntry over list visited %d", n)
	}
}
