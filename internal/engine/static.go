package engine

import (
	"fmt"

	"jisc/internal/tuple"
)

// Static is the no-migration strategy: a plain symmetric-hash-join (or
// nested-loops) pipeline. It is the "pure symmetric hash join plan"
// baseline of Figure 9a. Migrating a Static engine fails before any
// state is touched.
type Static struct{}

// RejectsTransitions implements TransitionRejector.
func (Static) RejectsTransitions() bool { return true }

// Name implements Strategy.
func (Static) Name() string { return "static" }

// OnTransition implements Strategy; unreachable because Migrate
// rejects Static transitions up front, kept as a safety net.
func (Static) OnTransition(*Engine) error {
	return fmt.Errorf("engine: static strategy does not support plan transitions")
}

// BeforeProbe implements Strategy (no-op).
func (Static) BeforeProbe(*Engine, *Node, *Node, *tuple.Tuple, bool) {}

// EvictContinue implements Strategy (standard stop-at-no-match rule).
func (Static) EvictContinue(*Engine, *Node, tuple.Value) bool { return false }
