package engine

import (
	"sort"

	"jisc/internal/tuple"
)

// GroupCount is the unary aggregation operator of §4.7: a per-group
// (join-key) count maintained on top of a QEP's root. Unary operators
// have complete states by definition, so a plan transition below never
// touches the aggregate — connect it as the engine's Output and
// migrate freely. Retraction deltas (set-difference pipelines, §4.7)
// decrement their group.
type GroupCount struct {
	counts map[tuple.Value]int64
	total  int64
	// next chains another consumer, so the aggregate can sit between
	// the engine and application output.
	next Output
}

// NewGroupCount returns an empty aggregate; chain an optional
// downstream consumer.
func NewGroupCount(next Output) *GroupCount {
	return &GroupCount{counts: make(map[tuple.Value]int64), next: next}
}

// Consume is the Output hook to install on an Engine.
func (g *GroupCount) Consume(d Delta) {
	if d.Retraction {
		g.counts[d.Tuple.Key]--
		g.total--
		if g.counts[d.Tuple.Key] == 0 {
			delete(g.counts, d.Tuple.Key)
		}
	} else {
		g.counts[d.Tuple.Key]++
		g.total++
	}
	if g.next != nil {
		g.next(d)
	}
}

// Count returns the count for one group.
func (g *GroupCount) Count(key tuple.Value) int64 { return g.counts[key] }

// Total returns the count across all groups.
func (g *GroupCount) Total() int64 { return g.total }

// Groups returns the number of non-zero groups.
func (g *GroupCount) Groups() int { return len(g.counts) }

// Top returns the k most frequent groups, counts descending (ties by
// ascending key, deterministically).
func (g *GroupCount) Top(k int) []GroupCountEntry {
	out := make([]GroupCountEntry, 0, len(g.counts))
	for key, c := range g.counts {
		out = append(out, GroupCountEntry{Key: key, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// GroupCountEntry is one group in Top's result.
type GroupCountEntry struct {
	Key   tuple.Value
	Count int64
}
