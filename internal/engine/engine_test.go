package engine

import (
	"testing"
	"time"

	"jisc/internal/plan"
	"jisc/internal/tuple"
	"jisc/internal/workload"
)

func collect(dst *[]Delta) Output {
	return func(d Delta) { *dst = append(*dst, d) }
}

func feedAll(e *Engine, evs []workload.Event) {
	for _, ev := range evs {
		e.Feed(ev)
	}
}

func ev(s tuple.StreamID, k tuple.Value) workload.Event {
	return workload.Event{Stream: s, Key: k}
}

func TestConfigValidation(t *testing.T) {
	p := plan.MustLeftDeep(0, 1)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"nil plan", Config{}},
		{"negative window", Config{Plan: p, WindowSize: -1}},
		{"nljoin without theta", Config{Plan: p, Kind: NLJoin}},
		{"theta without nljoin", Config{Plan: p, Theta: func(a, b *tuple.Tuple) bool { return true }}},
		{"bushy setdiff", Config{
			Plan: plan.MustNew(plan.Join(plan.Join(plan.Leaf(0), plan.Leaf(1)), plan.Join(plan.Leaf(2), plan.Leaf(3)))),
			Kind: SetDiff,
		}},
	}
	for _, c := range cases {
		if _, err := New(c.cfg); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestTwoWayJoinBasics(t *testing.T) {
	var out []Delta
	e := MustNew(Config{Plan: plan.MustLeftDeep(0, 1), Output: collect(&out)})
	e.Feed(ev(0, 7))
	if len(out) != 0 {
		t.Fatalf("output before any match: %v", out)
	}
	e.Feed(ev(1, 7))
	if len(out) != 1 {
		t.Fatalf("want 1 result, got %d", len(out))
	}
	if fp := out[0].Tuple.Fingerprint(); fp != "0#1|1#1" {
		t.Errorf("fingerprint = %q", fp)
	}
	e.Feed(ev(1, 7)) // second match with the same stored tuple
	e.Feed(ev(0, 9)) // no match
	if len(out) != 2 {
		t.Fatalf("want 2 results, got %d", len(out))
	}
}

func TestThreeWayJoinMultiplicity(t *testing.T) {
	var out []Delta
	e := MustNew(Config{Plan: plan.MustLeftDeep(0, 1, 2), Output: collect(&out)})
	// Two tuples on stream 0, one on 1, one on 2, all key 5:
	// results = 2 × 1 × 1.
	feedAll(e, []workload.Event{ev(0, 5), ev(0, 5), ev(1, 5), ev(2, 5)})
	if len(out) != 2 {
		t.Fatalf("want 2 results, got %d", len(out))
	}
}

func TestJoinRespectsWindowEviction(t *testing.T) {
	var out []Delta
	e := MustNew(Config{Plan: plan.MustLeftDeep(0, 1), WindowSize: 2, Output: collect(&out)})
	e.Feed(ev(0, 1))
	e.Feed(ev(0, 2))
	e.Feed(ev(0, 3)) // evicts seq 1 (key 1)
	e.Feed(ev(1, 1)) // key 1 expired: no match
	if len(out) != 0 {
		t.Fatalf("expired tuple joined: %v", out)
	}
	e.Feed(ev(1, 3))
	if len(out) != 1 {
		t.Fatalf("live tuple missed: %d", len(out))
	}
}

func TestEvictionPropagatesToJoinStates(t *testing.T) {
	e := MustNew(Config{Plan: plan.MustLeftDeep(0, 1, 2), WindowSize: 2})
	feedAll(e, []workload.Event{ev(0, 5), ev(1, 5)})
	join01 := e.NodeBySet(tuple.NewStreamSet(0, 1))
	if join01.St.Size() != 1 {
		t.Fatalf("join state size = %d, want 1", join01.St.Size())
	}
	// Push two more stream-0 tuples: seq 1 (key 5) leaves the window.
	feedAll(e, []workload.Event{ev(0, 8), ev(0, 9)})
	if join01.St.Size() != 0 {
		t.Fatalf("join state size after eviction = %d, want 0", join01.St.Size())
	}
}

func TestRootStateBounded(t *testing.T) {
	e := MustNew(Config{Plan: plan.MustLeftDeep(0, 1), WindowSize: 4})
	for i := 0; i < 200; i++ {
		e.Feed(ev(0, 1))
		e.Feed(ev(1, 1))
	}
	root := e.Root()
	// Root holds at most window² results for a single hot key.
	if root.St.Size() > 16 {
		t.Fatalf("root state grew unbounded: %d", root.St.Size())
	}
}

func TestStaticRejectsMigration(t *testing.T) {
	e := MustNew(Config{Plan: plan.MustLeftDeep(0, 1, 2)})
	if err := e.Migrate(plan.MustLeftDeep(0, 2, 1)); err == nil {
		t.Fatal("static engine accepted migration")
	}
}

func TestMigrateRejectsDifferentStreams(t *testing.T) {
	e := MustNew(Config{Plan: plan.MustLeftDeep(0, 1, 2), Strategy: nopStrategy{}})
	if err := e.Migrate(plan.MustLeftDeep(0, 1, 3)); err == nil {
		t.Fatal("migration to different stream set accepted")
	}
}

// nopStrategy allows transitions but performs no state work, leaving
// incomplete states incomplete — useful to observe the engine's
// classification directly.
type nopStrategy struct{}

func (nopStrategy) Name() string                                          { return "nop" }
func (nopStrategy) OnTransition(*Engine) error                            { return nil }
func (nopStrategy) BeforeProbe(*Engine, *Node, *Node, *tuple.Tuple, bool) {}
func (nopStrategy) EvictContinue(*Engine, *Node, tuple.Value) bool        { return false }

func TestMigrationClassifiesStates(t *testing.T) {
	e := MustNew(Config{Plan: plan.MustLeftDeep(0, 1, 2, 3), Strategy: nopStrategy{}})
	feedAll(e, []workload.Event{ev(0, 1), ev(1, 1), ev(2, 1), ev(3, 1)})
	if err := e.Migrate(plan.MustLeftDeep(0, 1, 3, 2)); err != nil {
		t.Fatal(err)
	}
	// {0,1} existed: complete, content preserved.
	n01 := e.NodeBySet(tuple.NewStreamSet(0, 1))
	if !n01.St.Complete() || n01.St.Size() != 1 {
		t.Errorf("{0,1}: complete=%v size=%d", n01.St.Complete(), n01.St.Size())
	}
	// {0,1,3} is new: incomplete and empty.
	n013 := e.NodeBySet(tuple.NewStreamSet(0, 1, 3))
	if n013.St.Complete() || n013.St.Size() != 0 {
		t.Errorf("{0,1,3}: complete=%v size=%d", n013.St.Complete(), n013.St.Size())
	}
	// Root {0,1,2,3} existed: complete with the old result.
	root := e.Root()
	if !root.St.Complete() || root.St.Size() != 1 {
		t.Errorf("root: complete=%v size=%d", root.St.Complete(), root.St.Size())
	}
	// Old state {0,1,2} must be discarded from the store.
	if e.NodeBySet(tuple.NewStreamSet(0, 1, 2)) != nil {
		t.Error("old state {0,1,2} still wired")
	}
}

// §4.5: a state surviving two transitions while incomplete must stay
// incomplete.
func TestOverlappedTransitionKeepsIncomplete(t *testing.T) {
	e := MustNew(Config{Plan: plan.MustLeftDeep(0, 1, 2, 3), Strategy: nopStrategy{}})
	feedAll(e, []workload.Event{ev(0, 1), ev(1, 1), ev(2, 1), ev(3, 1)})
	if err := e.Migrate(plan.MustLeftDeep(1, 2, 0, 3)); err != nil {
		t.Fatal(err)
	}
	n12 := e.NodeBySet(tuple.NewStreamSet(1, 2))
	if n12.St.Complete() {
		t.Fatal("{1,2} should be incomplete after first transition")
	}
	born := n12.Born
	if err := e.Migrate(plan.MustLeftDeep(1, 2, 3, 0)); err != nil {
		t.Fatal(err)
	}
	n12b := e.NodeBySet(tuple.NewStreamSet(1, 2))
	if n12b.St.Complete() {
		t.Fatal("{1,2} must stay incomplete across overlapped transition")
	}
	if n12b.Born != born {
		t.Fatalf("Born changed across overlapped transition: %d -> %d", born, n12b.Born)
	}
}

func TestBufferClearingPhase(t *testing.T) {
	var out []Delta
	e := MustNew(Config{Plan: plan.MustLeftDeep(0, 1, 2), Strategy: nopStrategy{}, Output: collect(&out)})
	// Buffer tuples without processing, then migrate: the §4.1
	// buffer-clearing phase must process them through the OLD plan.
	e.Enqueue(ev(0, 3))
	e.Enqueue(ev(1, 3))
	e.Enqueue(ev(2, 3))
	if err := e.Migrate(plan.MustLeftDeep(2, 1, 0)); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("buffered tuples not drained through old plan: %d outputs", len(out))
	}
	// The old plan's state {0,1} must have been populated during the
	// drain and then discarded; the new {2,1} state starts incomplete.
	if n := e.NodeBySet(tuple.NewStreamSet(1, 2)); n.St.Complete() {
		t.Error("{1,2} should be incomplete")
	}
}

func TestFreshnessTracking(t *testing.T) {
	e := MustNew(Config{Plan: plan.MustLeftDeep(0, 1, 2), Strategy: recordFresh{}})
	freshLog = nil
	e.Feed(ev(2, 5))
	e.Feed(ev(2, 5))
	if err := e.Migrate(plan.MustLeftDeep(0, 2, 1)); err != nil {
		t.Fatal(err)
	}
	e.Feed(ev(2, 5)) // first arrival of (2,5) after transition: fresh
	e.Feed(ev(2, 5)) // attempted
	e.Feed(ev(2, 6)) // different key: fresh
	// Note the second pre-transition arrival reports attempted: with
	// no transition yet the flag is never consulted, so the engine
	// does not special-case it.
	want := []bool{true, false, true, false, true}
	if len(freshLog) != len(want) {
		t.Fatalf("freshLog = %v", freshLog)
	}
	for i := range want {
		if freshLog[i] != want[i] {
			t.Fatalf("freshLog[%d] = %v, want %v (%v)", i, freshLog[i], want[i], freshLog)
		}
	}
}

var freshLog []bool

type recordFresh struct{}

func (recordFresh) Name() string               { return "record-fresh" }
func (recordFresh) OnTransition(*Engine) error { return nil }
func (recordFresh) BeforeProbe(e *Engine, j, opp *Node, t *tuple.Tuple, fresh bool) {
	if t.IsBase() {
		freshLog = append(freshLog, fresh)
	}
}
func (recordFresh) EvictContinue(*Engine, *Node, tuple.Value) bool { return false }

func TestNLJoinBasics(t *testing.T) {
	var out []Delta
	// Band theta join: |a.Key - b.Key| <= 1.
	band := func(a, b *tuple.Tuple) bool {
		d := a.Key - b.Key
		return d >= -1 && d <= 1
	}
	e := MustNew(Config{
		Plan: plan.MustLeftDeep(0, 1), Kind: NLJoin, Theta: band,
		Output: collect(&out),
	})
	e.Feed(ev(0, 10))
	e.Feed(ev(1, 11)) // within band
	e.Feed(ev(1, 12)) // outside band
	if len(out) != 1 {
		t.Fatalf("band join results = %d, want 1", len(out))
	}
}

func TestNLJoinPredicateOrientation(t *testing.T) {
	var out []Delta
	less := func(a, b *tuple.Tuple) bool { return a.Key < b.Key }
	e := MustNew(Config{
		Plan: plan.MustLeftDeep(0, 1), Kind: NLJoin, Theta: less,
		Output: collect(&out),
	})
	e.Feed(ev(0, 1))
	e.Feed(ev(1, 5)) // probe from right: pred(left=1, right=5) = true
	if len(out) != 1 {
		t.Fatalf("results = %d, want 1", len(out))
	}
	e.Feed(ev(0, 9)) // probe from left: pred(9, 5) = false
	if len(out) != 1 {
		t.Fatalf("orientation violated: %d results", len(out))
	}
}

func TestMetricsCounters(t *testing.T) {
	e := MustNew(Config{Plan: plan.MustLeftDeep(0, 1)})
	e.Feed(ev(0, 1))
	e.Feed(ev(1, 1))
	s := e.Metrics()
	if s.Input != 2 {
		t.Errorf("Input = %d", s.Input)
	}
	if s.Output != 1 {
		t.Errorf("Output = %d", s.Output)
	}
	if s.Probes == 0 || s.Inserts == 0 {
		t.Errorf("probes/inserts not counted: %+v", s)
	}
}

func TestOutputLatencyMeasured(t *testing.T) {
	clock := time.Unix(0, 0)
	now := func() time.Time { return clock }
	var out []Delta
	e := MustNew(Config{
		Plan: plan.MustLeftDeep(0, 1), Strategy: nopStrategy{},
		Output: collect(&out), Now: now,
	})
	e.Feed(ev(0, 1))
	if err := e.Migrate(plan.MustLeftDeep(1, 0)); err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(3 * time.Second)
	e.Feed(ev(1, 1))
	lat := e.Metrics().OutputLatencies
	if len(lat) != 1 || lat[0] != 3*time.Second {
		t.Fatalf("latencies = %v", lat)
	}
}

func TestNodesBottomUp(t *testing.T) {
	e := MustNew(Config{Plan: plan.MustLeftDeep(0, 1, 2)})
	nodes := e.Nodes()
	if len(nodes) != 5 {
		t.Fatalf("nodes = %d, want 5", len(nodes))
	}
	seen := map[tuple.StreamSet]bool{}
	for _, n := range nodes {
		if !n.IsLeaf() {
			if !seen[n.Left.Set] || !seen[n.Right.Set] {
				t.Fatal("parent visited before children")
			}
		}
		seen[n.Set] = true
	}
}

func TestDescribeAndTotalSize(t *testing.T) {
	e := MustNew(Config{Plan: plan.MustLeftDeep(0, 1)})
	e.Feed(ev(0, 1))
	if e.DescribeStates() == "" {
		t.Error("empty DescribeStates")
	}
	if e.TotalStateSize() != 1 {
		t.Errorf("TotalStateSize = %d, want 1", e.TotalStateSize())
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{HashJoin: "hash-join", NLJoin: "nl-join", SetDiff: "set-difference", Kind(9): "Kind(9)"} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestFeedUnknownStreamPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown stream")
		}
	}()
	MustNew(Config{Plan: plan.MustLeftDeep(0, 1)}).Feed(ev(5, 1))
}

func BenchmarkEngineSteadyState(b *testing.B) {
	e := MustNew(Config{Plan: plan.MustLeftDeep(0, 1, 2, 3), WindowSize: 1000})
	src := workload.MustNewSource(workload.Config{Streams: 4, Domain: 10000, Seed: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Feed(src.Next())
	}
}

func TestObserverReceivesTransitionEvents(t *testing.T) {
	var events []TransitionEvent
	e := MustNew(Config{
		Plan: plan.MustLeftDeep(0, 1, 2, 3), Strategy: nopStrategy{},
		Observer: func(ev TransitionEvent) { events = append(events, ev) },
	})
	feedAll(e, []workload.Event{ev(0, 1), ev(1, 1), ev(2, 1), ev(3, 1)})
	if err := e.Migrate(plan.MustLeftDeep(0, 1, 3, 2)); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("events = %d", len(events))
	}
	got := events[0]
	if got.Old != "(((0⋈1)⋈2)⋈3)" || got.New != "(((0⋈1)⋈3)⋈2)" {
		t.Fatalf("plans: %+v", got)
	}
	if got.Incomplete != 1 || got.Complete != 2 {
		t.Fatalf("classification: %+v", got)
	}
	if got.Tick != 4 {
		t.Fatalf("tick = %d", got.Tick)
	}
}

func TestEmitExpiryRevisionStream(t *testing.T) {
	var out []Delta
	g := NewGroupCount(nil)
	e := MustNew(Config{
		Plan: plan.MustLeftDeep(0, 1), WindowSize: 2, EmitExpiry: true,
		Output: func(d Delta) { g.Consume(d); out = append(out, d) },
	})
	e.Feed(ev(0, 1))
	e.Feed(ev(1, 1)) // result (0#1,1#1)
	if g.Total() != 1 {
		t.Fatalf("live results = %d", g.Total())
	}
	// Slide stream 0's window past seq 1: the result is retracted and
	// the aggregate tracks the live window.
	e.Feed(ev(0, 8))
	e.Feed(ev(0, 9))
	if g.Total() != 0 {
		t.Fatalf("live results after expiry = %d (out=%v)", g.Total(), out)
	}
	retracts := 0
	for _, d := range out {
		if d.Retraction {
			retracts++
		}
	}
	if retracts != 1 {
		t.Fatalf("retractions = %d", retracts)
	}
}

func TestNoExpiryEmissionByDefault(t *testing.T) {
	var retracts int
	e := MustNew(Config{
		Plan: plan.MustLeftDeep(0, 1), WindowSize: 2,
		Output: func(d Delta) {
			if d.Retraction {
				retracts++
			}
		},
	})
	e.Feed(ev(0, 1))
	e.Feed(ev(1, 1))
	e.Feed(ev(0, 8))
	e.Feed(ev(0, 9))
	if retracts != 0 {
		t.Fatalf("unexpected retractions: %d", retracts)
	}
}

func TestPerStreamWindowSizes(t *testing.T) {
	var out []Delta
	e := MustNew(Config{
		Plan: plan.MustLeftDeep(0, 1), WindowSize: 100,
		WindowSizes: map[tuple.StreamID]int{0: 1},
		Output:      collect(&out),
	})
	e.Feed(ev(0, 1))
	e.Feed(ev(0, 2)) // stream 0's window of 1: key 1 expires
	e.Feed(ev(1, 1)) // must not match
	e.Feed(ev(1, 2)) // matches
	if len(out) != 1 || out[0].Tuple.Key != 2 {
		t.Fatalf("out = %v", out)
	}
	if _, err := New(Config{
		Plan: plan.MustLeftDeep(0, 1), WindowSize: 10,
		WindowSizes: map[tuple.StreamID]int{1: -4},
	}); err == nil {
		t.Fatal("negative per-stream window accepted")
	}
}

// A rejected migration must leave the engine fully functional on the
// OLD plan (the rejection happens before any state is touched).
func TestStaticRejectionLeavesEngineIntact(t *testing.T) {
	var out []Delta
	e := MustNew(Config{Plan: plan.MustLeftDeep(0, 1), Output: collect(&out)})
	e.Feed(ev(0, 1))
	if err := e.Migrate(plan.MustLeftDeep(1, 0)); err == nil {
		t.Fatal("static migration accepted")
	}
	e.Feed(ev(1, 1))
	if len(out) != 1 {
		t.Fatalf("engine broken after rejected migration: %d outputs", len(out))
	}
	if e.Plan().String() != "(0⋈1)" {
		t.Fatalf("plan changed: %s", e.Plan())
	}
	if e.Metrics().Transitions != 0 {
		t.Fatalf("transition counted despite rejection")
	}
}

func TestFeedStampedIdentity(t *testing.T) {
	var out []Delta
	a := MustNew(Config{Plan: plan.MustLeftDeep(0, 1), Output: collect(&out)})
	// Two engines fed the same externally stamped tuples must agree
	// on identity (the Parallel Track invariant).
	b := MustNew(Config{Plan: plan.MustLeftDeep(1, 0), Output: collect(&out)})
	a.FeedStamped(ev(0, 5), 7, 100)
	b.FeedStamped(ev(0, 5), 7, 100)
	a.FeedStamped(ev(1, 5), 3, 101)
	b.FeedStamped(ev(1, 5), 3, 101)
	if len(out) != 2 {
		t.Fatalf("outputs = %d", len(out))
	}
	if out[0].Tuple.Fingerprint() != out[1].Tuple.Fingerprint() {
		t.Fatalf("identity mismatch: %s vs %s",
			out[0].Tuple.Fingerprint(), out[1].Tuple.Fingerprint())
	}
	if out[0].Tuple.Fingerprint() != "0#7|1#3" {
		t.Fatalf("fingerprint = %s", out[0].Tuple.Fingerprint())
	}
	if a.Tick() != 101 || a.TransitionTick() != 0 {
		t.Fatalf("ticks: %d %d", a.Tick(), a.TransitionTick())
	}
}

func TestNodeStatsCount(t *testing.T) {
	e := MustNew(Config{Plan: plan.MustLeftDeep(0, 1)})
	e.Feed(ev(0, 1))
	e.Feed(ev(1, 1)) // probes scan 0: 1 probe, 1 match
	e.Feed(ev(1, 2)) // probes scan 0: 1 probe, 0 matches
	s0 := e.Scan(0)
	if s0.Probes != 2 || s0.Matches != 1 {
		t.Fatalf("scan0 stats: probes=%d matches=%d", s0.Probes, s0.Matches)
	}
}
