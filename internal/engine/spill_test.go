package engine

import (
	"testing"

	"jisc/internal/plan"
	"jisc/internal/storage"
	"jisc/internal/tuple"
	"jisc/internal/workload"
)

// spillWorkload builds a deterministic two-stream workload whose join
// state is several times larger than any budget we'll grant: keys are
// drawn from a small range so buckets hold multiple tuples and matches
// multiply into the root state.
func spillWorkload(n int) []workload.Event {
	evs := make([]workload.Event, 0, n)
	rng := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < n; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		key := tuple.Value(rng >> 33 % 200)
		evs = append(evs, workload.Event{Stream: tuple.StreamID(i % 2), Key: key})
	}
	return evs
}

// TestSpillBoundedMemoryEquivalence is the tentpole demo: a join whose
// working set is ≥ 4× the state budget runs with resident bytes
// governed to the budget (plus a one-bucket fault transient) and emits
// exactly the same output sequence as the unbounded run.
func TestSpillBoundedMemoryEquivalence(t *testing.T) {
	const n = 6000
	evs := spillWorkload(n)
	cfg := Config{
		Plan:          plan.MustLeftDeep(0, 1),
		WindowSize:    1500,
		EmitExpiry:    true, // exercise the eviction/retraction path through spilled buckets
		Deterministic: true,
	}

	// Reference run: unbounded, tracking the peak working set.
	var want []string
	ref := cfg
	ref.Output = func(d Delta) { want = append(want, deltaKey(d)) }
	re := MustNew(ref)
	var working int64
	for _, e := range evs {
		re.Feed(e)
		if b := re.StateBytes(); b > working {
			working = b
		}
	}
	re.Close()
	if working == 0 {
		t.Fatal("reference run accumulated no state")
	}

	budget := working / 4
	var got []string
	bounded := cfg
	bounded.StateBudget = budget
	bounded.SpillFS = storage.NewMemFS()
	// Small segments keep MemFS faults cheap (its Open snapshots the
	// whole file); production uses *os.File ReaderAt spans instead.
	bounded.SpillSegmentBytes = 64 << 10
	bounded.Output = func(d Delta) { got = append(got, deltaKey(d)) }
	be := MustNew(bounded)
	defer be.Close()
	for _, e := range evs {
		be.Feed(e)
	}

	if len(got) != len(want) {
		t.Fatalf("bounded run emitted %d deltas, unbounded %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delta %d diverged: bounded %q, unbounded %q", i, got[i], want[i])
		}
	}

	stats, ok := be.SpillStats()
	if !ok {
		t.Fatal("SpillStats reports spilling off")
	}
	if stats.Spills == 0 || stats.Faults == 0 {
		t.Fatalf("workload never exercised the spill tier: %+v", stats)
	}
	// The budget is a governor, not a hard wall: a fault makes the
	// bucket resident before the following spill pass re-evicts, so
	// the peak may transiently exceed the budget by about one bucket.
	slack := budget / 10
	if stats.PeakResidentBytes > budget+slack {
		t.Fatalf("peak resident %d exceeds budget %d + slack %d (working set %d)",
			stats.PeakResidentBytes, budget, slack, working)
	}
	if working < 4*budget {
		t.Fatalf("working set %d is not ≥ 4× budget %d", working, budget)
	}
}

func deltaKey(d Delta) string {
	s := d.Tuple.Fingerprint()
	if d.Retraction {
		return "-" + s
	}
	return "+" + s
}

// TestSpillStatsOffByDefault pins that engines without a budget report
// spilling off and keep byte accounting available.
func TestSpillStatsOffByDefault(t *testing.T) {
	e := MustNew(Config{Plan: plan.MustLeftDeep(0, 1)})
	defer e.Close()
	if _, ok := e.SpillStats(); ok {
		t.Fatal("SpillStats reports spilling on without a budget")
	}
	e.Feed(ev(0, 1))
	if e.StateBytes() == 0 {
		t.Fatal("StateBytes is zero after an insert")
	}
}

// BenchmarkSpillAccountingOverhead measures the never-binding cost of
// an attached store: identical 3-way join (≈1 match per probe per
// level, the spill sweep's shape), budget far above the working set,
// so the difference to the no-store run is pure accounting plus the
// residency bookkeeping on the insert/probe/evict hot path.
func BenchmarkSpillAccountingOverhead(b *testing.B) {
	const n = 1 << 16
	evs := make([]workload.Event, n)
	rng := uint64(0x9E3779B97F4A7C15)
	for i := range evs {
		rng = rng*6364136223846793005 + 1442695040888963407
		evs[i] = workload.Event{Stream: tuple.StreamID(i % 3), Key: tuple.Value(rng >> 33 % 1000)}
	}
	for _, budget := range []int64{0, 1 << 30} {
		name := "no-store"
		if budget > 0 {
			name = "store-2x"
		}
		b.Run(name, func(b *testing.B) {
			cfg := Config{Plan: plan.MustLeftDeep(0, 1, 2), WindowSize: 1000, StateBudget: budget}
			if budget > 0 {
				cfg.SpillFS = storage.NewMemFS()
			}
			e := MustNew(cfg)
			defer e.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Feed(evs[i&(n-1)])
			}
		})
	}
}

// TestSpillRejectsSetDiff pins the unsupported-combination gate.
func TestSpillRejectsSetDiff(t *testing.T) {
	_, err := New(Config{Plan: plan.MustLeftDeep(0, 1), Kind: SetDiff, StateBudget: 1 << 20})
	if err == nil {
		t.Fatal("New accepted StateBudget with SetDiff")
	}
}
