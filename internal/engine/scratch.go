package engine

import (
	"jisc/internal/tuple"
)

// scratch is the engine's per-run scratch allocator: an arena-backed
// tuple builder acquired from the shared pool at construction and
// threaded through the feed hot path (base-tuple creation in
// processStamped, composite construction in the operators, state fills
// in the migration strategies). One builder per engine keeps the
// arenas single-threaded without locks; the sharded runtime gives each
// shard its own engine and hence its own scratch.
type scratch struct {
	b *tuple.Builder
}

func (s *scratch) init() { s.b = tuple.AcquireBuilder() }

func (s *scratch) builder() *tuple.Builder { return s.b }

// release returns the builder to the pool. Safe to call more than
// once; tuples already built stay valid (the pool never recycles
// handed-out memory).
func (s *scratch) release() {
	if s.b != nil {
		s.b.Release()
		s.b = nil
	}
}
