package engine

import (
	"fmt"

	"jisc/internal/metrics"
	"jisc/internal/plan"
	"jisc/internal/state"
	"jisc/internal/tuple"
	"jisc/internal/workload"
)

// Kind selects the physical operator implementing internal plan nodes.
type Kind int

const (
	// HashJoin is the symmetric hash equi-join of §2.1.
	HashJoin Kind = iota
	// NLJoin is the nested-loops join used for general theta joins.
	NLJoin
	// SetDiff is the binary set-difference operator of §4.7.
	SetDiff
)

func (k Kind) String() string {
	switch k {
	case HashJoin:
		return "hash-join"
	case NLJoin:
		return "nl-join"
	case SetDiff:
		return "set-difference"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Operator is the physical-operator contract behind every internal
// node: process one tuple pushed up from a child. Implementations are
// stateless singletons (per-node state lives on the Node); each lives
// in its own file — hashjoin.go, nljoin.go, setdiff.go.
type Operator interface {
	// Kind identifies the operator.
	Kind() Kind
	// Push processes t, the freshly produced output of child `from`,
	// at node j: probe/scan the opposite state, construct result
	// composites through the engine's scratch builder, insert them
	// into j's state, and recurse upward via e.pushUp.
	Push(e *Engine, j, from *Node, t *tuple.Tuple, fresh bool)
}

// operatorFor returns the singleton Operator implementing k.
func operatorFor(k Kind) Operator {
	switch k {
	case HashJoin:
		return hashJoinOp{}
	case NLJoin:
		return nlJoinOp{}
	case SetDiff:
		return setDiffOp{}
	default:
		panic(fmt.Sprintf("engine: unknown operator kind %d", int(k)))
	}
}

// Delta is an output event at the plan root. Streaming set-difference
// can retract previously emitted results, so outputs carry a sign;
// joins only ever emit additions.
type Delta struct {
	Tuple *tuple.Tuple
	// Retraction is true when the result is withdrawn (set-difference
	// semantics or window expiry at the root).
	Retraction bool
}

// Output receives root results.
type Output func(Delta)

// Executor is the contract shared by every execution strategy in the
// repository (this engine under JISC/Moving State/static, Parallel
// Track, CACQ, STAIRs): feed tuples, trigger plan transitions, read
// metrics. It is what the benchmark harness and the equivalence tests
// program against.
type Executor interface {
	Name() string
	// Feed processes one input tuple to completion.
	Feed(ev workload.Event)
	// Migrate transitions the executor to a new plan.
	Migrate(p *plan.Plan) error
	// Metrics returns a snapshot of the executor's counters.
	Metrics() metrics.Snapshot
}

// Node is one physical operator instance. Exported fields are
// read-only for strategies; only the engine mutates the tree.
type Node struct {
	// Set identifies the streams covered by the node's output state.
	Set tuple.StreamSet
	// Stream is the scanned stream when the node is a leaf.
	Stream tuple.StreamID
	// Left, Right, Parent wire the operator tree. Leaves have nil
	// children; the root has a nil parent.
	Left, Right, Parent *Node
	// Kind selects the operator implementation for internal nodes.
	Kind Kind
	// Op is the Operator implementing Kind, bound at install time.
	Op Operator

	// St is the node's output state for hash-based operators.
	St *state.Table
	// Ls is the node's output state for nested-loops operators.
	Ls *state.List

	// CounterSide is the designated child whose distinct keys armed
	// this node's completion counter (§4.3 Cases 1–2); nil when no
	// counter is armed (Case 3 or complete state).
	CounterSide *Node

	// Born is the engine tick at which this node's state was created
	// empty (i.e. classified incomplete). State completion must only
	// reconstruct results whose constituents all arrived at or before
	// Born; later results are produced by normal processing. Born
	// survives re-installation across overlapped transitions.
	Born uint64

	// Probes and Matches count lookups against this node's state and
	// the entries they returned — the per-operator selectivity signal
	// a runtime optimizer feeds on (the paper treats the transition
	// trigger policy as orthogonal, §2; package optimizer provides
	// one). They survive re-installation only while the state itself
	// survives; fresh states start at zero.
	Probes, Matches uint64

	// ProbeNanos and ProbeSamples accumulate sampled probe durations
	// against this node's state (recorded only when the engine has an
	// obs.Recorder) — the per-operator latency signal the optimizer's
	// cost model can weight selectivities with. Same lifecycle as
	// Probes/Matches.
	ProbeNanos, ProbeSamples uint64
}

// IsLeaf reports whether the node is a stream scan.
func (n *Node) IsLeaf() bool { return n.Left == nil && n.Right == nil }

// Opposite returns the sibling of child c under n.
func (n *Node) Opposite(c *Node) *Node {
	if n.Left == c {
		return n.Right
	}
	return n.Left
}
