package engine

import (
	"jisc/internal/tuple"
)

// nlJoinOp processes tuples under nested-loops semantics: the opposite
// child's list state is scanned in full and the configured theta
// predicate decides matches (§2.1). The strategy hook runs first so
// lazy migration can complete the opposite state for the probing tuple
// before the scan.
type nlJoinOp struct{}

// Kind implements Operator.
func (nlJoinOp) Kind() Kind { return NLJoin }

// Push implements Operator.
func (nlJoinOp) Push(e *Engine, j, from *Node, t *tuple.Tuple, fresh bool) {
	opp := j.Opposite(from)
	e.strategy.BeforeProbe(e, j, opp, t, fresh)
	e.met.Probes.Add(1)
	pred := e.cfg.Theta
	// The probe orientation matters to theta predicates: pred is
	// defined as pred(left-side tuple, right-side tuple) in plan
	// order, so flip the arguments when the probing tuple came from
	// the right child.
	fromLeft := j.Left == from
	opp.EachEntry(func(m *tuple.Tuple) bool {
		e.met.Probes.Add(1)
		var hit bool
		if fromLeft {
			hit = pred(t, m)
		} else {
			hit = pred(m, t)
		}
		if hit {
			out := e.scratch.builder().JoinTheta(t, m)
			j.Ls.Insert(out)
			e.met.Inserts.Add(1)
			e.pushUp(j, out, fresh)
		}
		return true
	})
}
