package engine

import (
	"time"

	"jisc/internal/tuple"
)

// nlJoinOp processes tuples under nested-loops semantics: the opposite
// child's list state is scanned in full and the configured theta
// predicate decides matches (§2.1). The strategy hook runs first so
// lazy migration can complete the opposite state for the probing tuple
// before the scan.
type nlJoinOp struct{}

// Kind implements Operator.
func (nlJoinOp) Kind() Kind { return NLJoin }

// Push implements Operator.
func (nlJoinOp) Push(e *Engine, j, from *Node, t *tuple.Tuple, fresh bool) {
	opp := j.Opposite(from)
	e.strategy.BeforeProbe(e, j, opp, t, fresh)
	e.met.Probes.Add(1)
	// The whole opposite-state scan is one probe for timing purposes:
	// that is the unit of work an arriving tuple pays at this operator.
	timed := e.obs.SampleProbe()
	var t0 time.Time
	if timed {
		t0 = e.now()
	}
	pred := e.cfg.Theta
	// The probe orientation matters to theta predicates: pred is
	// defined as pred(left-side tuple, right-side tuple) in plan
	// order, so flip the arguments when the probing tuple came from
	// the right child.
	fromLeft := j.Left == from
	opp.EachEntry(func(m *tuple.Tuple) bool {
		e.met.Probes.Add(1)
		var hit bool
		if fromLeft {
			hit = pred(t, m)
		} else {
			hit = pred(m, t)
		}
		if hit {
			out := e.scratch.builder().JoinTheta(t, m)
			j.Ls.Insert(out)
			e.met.Inserts.Add(1)
			e.pushUp(j, out, fresh)
		}
		return true
	})
	if timed {
		// Includes the matches' downstream processing — for a
		// nested-loops scan the two are inseparable without a clock
		// read per stored entry, and the optimizer's left-deep cost
		// model never reads nested-loops nodes anyway.
		e.recordProbe(opp, e.now().Sub(t0))
	}
}
