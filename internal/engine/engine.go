// Package engine implements the paper's execution model (§2.1): a
// push-based pipeline of binary tree-structured operators — stream
// scans at the leaves, symmetric hash joins (or nested-loops joins for
// theta queries, or set-differences) at internal nodes — with
// count-based sliding windows, bottom-up eviction propagation, and a
// pluggable migration strategy that decides what happens to operator
// states when the plan changes at runtime.
//
// The engine is deterministic and single-threaded: Feed processes one
// input tuple to completion before returning, which makes the
// cross-strategy equivalence tests exact. Package pipeline provides
// the concurrent sharded harness around it.
//
// File layout (the runtime layer, see DESIGN.md):
//
//	engine.go     Engine struct, construction, the feed hot path
//	config.go     Config and TransitionEvent
//	operator.go   Kind, Node, the Operator interface, Executor
//	hashjoin.go   symmetric hash join operator
//	nljoin.go     nested-loops theta join operator
//	setdiff.go    streaming set-difference operator
//	install.go    plan → operator tree construction, state store
//	transition.go Migrate and the §4.1 buffer-clearing phase
//	evict.go      bottom-up eviction propagation, §4.3 counters
//	static.go     the no-migration baseline strategy
//	scratch.go    per-run scratch allocator (arena tuple builder)
package engine

import (
	"fmt"
	"os"
	"sort"
	"time"

	"jisc/internal/metrics"
	"jisc/internal/obs"
	"jisc/internal/plan"
	"jisc/internal/state"
	"jisc/internal/statestore"
	"jisc/internal/tuple"
	"jisc/internal/window"
	"jisc/internal/workload"
)

// Strategy customizes how the engine behaves around plan transitions.
// Implementations: Static (no transitions), migrate.MovingState
// (eager), core.JISC (lazy, the paper's contribution).
//
// OnTransition runs after the engine has switched to the new plan; an
// error from it leaves the engine on the new plan with unfilled
// states, so strategies that refuse transitions outright should also
// implement TransitionRejector to be rejected before any state
// changes.
type Strategy interface {
	Name() string
	// OnTransition runs after the buffer-clearing phase, with the new
	// operator tree built and surviving states re-attached. The
	// engine has already marked states absent from the old plan
	// incomplete; the strategy decides how/when they get filled.
	OnTransition(e *Engine) error
	// BeforeProbe runs when t, pushed up from child `from`, is about
	// to probe the state of the opposite child `opp` at join j. JISC
	// completes missing entries here; eager strategies do nothing.
	BeforeProbe(e *Engine, j, opp *Node, t *tuple.Tuple, fresh bool)
	// EvictContinue reports whether eviction propagation must proceed
	// past join j although no stored entry matched (§4.2: removals
	// continue through incomplete states).
	EvictContinue(e *Engine, j *Node, key tuple.Value) bool
}

// Engine executes one continuous query.
type Engine struct {
	cfg     Config
	plan    *plan.Plan
	root    *Node
	scans   map[tuple.StreamID]*Node
	windows map[tuple.StreamID]window.Slider
	// states is the state store: one table per live stream set.
	// Surviving a transition means staying in this map.
	states map[tuple.StreamSet]*state.Table
	lists  map[tuple.StreamSet]*state.List
	// store is the tiered state backend, nil unless Config.StateBudget
	// is positive. Every table attaches to it on creation; lists only
	// account (nested-loops scans have no bucket granularity to spill).
	store *statestore.Store
	// born records the creation tick of each incomplete state so that
	// the tick survives re-installation across overlapped transitions.
	born map[tuple.StreamSet]uint64

	strategy Strategy
	out      Output
	met      metrics.Collector
	obs      *obs.Recorder
	now      func() time.Time
	scratch  scratch

	// tick is the global arrival counter; transitionTick is the tick
	// of the most recent plan transition (Definition 2 freshness).
	tick           uint64
	transitionTick uint64
	seqs           map[tuple.StreamID]uint64
	// lastArrival[stream][key] is the tick of the most recent arrival
	// of key on stream, backing Definition 2's fresh/attempted
	// classification in O(1).
	lastArrival map[tuple.StreamID]map[tuple.Value]uint64

	// pending models the input buffers of §4.1: tuples received but
	// not yet processed. Migrate drains it through the old plan (the
	// buffer-clearing phase) before switching.
	pending []workload.Event
}

// New builds an engine for cfg.
func New(cfg Config) (*Engine, error) {
	if cfg.Plan == nil {
		return nil, fmt.Errorf("engine: nil plan")
	}
	if cfg.WindowSize == 0 {
		cfg.WindowSize = 10000
	}
	if cfg.WindowSize < 0 {
		return nil, fmt.Errorf("engine: negative window size %d", cfg.WindowSize)
	}
	needsTheta := cfg.Kind == NLJoin || cfg.ThetaNodes != nil
	if needsTheta && cfg.Theta == nil {
		return nil, fmt.Errorf("engine: nested-loops nodes require a Theta predicate")
	}
	if !needsTheta && cfg.Theta != nil {
		return nil, fmt.Errorf("engine: Theta predicate given for %v without ThetaNodes", cfg.Kind)
	}
	if cfg.ThetaNodes != nil && cfg.Kind != HashJoin {
		return nil, fmt.Errorf("engine: ThetaNodes hybrid plans require Kind == HashJoin, got %v", cfg.Kind)
	}
	if cfg.Kind == SetDiff && !cfg.Plan.Root.IsLeftDeep() {
		return nil, fmt.Errorf("engine: set-difference pipelines must be left-deep, got %s", cfg.Plan)
	}
	if cfg.StateBudget > 0 && cfg.Kind == SetDiff {
		// The set-difference operator moves whole buckets between its
		// tables; a spilled bucket would need a fault inside the move.
		// Not wired — reject up front rather than corrupt accounting.
		return nil, fmt.Errorf("engine: StateBudget spilling is unsupported for set-difference pipelines")
	}
	if cfg.Strategy == nil {
		cfg.Strategy = Static{}
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	e := &Engine{
		cfg:         cfg,
		strategy:    cfg.Strategy,
		out:         cfg.Output,
		obs:         cfg.Obs,
		now:         cfg.Now,
		scans:       make(map[tuple.StreamID]*Node),
		windows:     make(map[tuple.StreamID]window.Slider),
		states:      make(map[tuple.StreamSet]*state.Table),
		lists:       make(map[tuple.StreamSet]*state.List),
		born:        make(map[tuple.StreamSet]uint64),
		seqs:        make(map[tuple.StreamID]uint64),
		lastArrival: make(map[tuple.StreamID]map[tuple.Value]uint64),
	}
	e.scratch.init()
	if err := e.validateKinds(cfg.Plan); err != nil {
		return nil, err
	}
	for _, id := range cfg.Plan.Streams.Streams() {
		if cfg.TimeSpan > 0 {
			e.windows[id] = window.NewTime(id, cfg.TimeSpan)
		} else {
			size := cfg.WindowSize
			if s, ok := cfg.WindowSizes[id]; ok {
				size = s
			}
			if size <= 0 {
				return nil, fmt.Errorf("engine: non-positive window size %d for stream %d", size, id)
			}
			e.windows[id] = window.New(id, size)
		}
		e.lastArrival[id] = make(map[tuple.Value]uint64)
	}
	if cfg.StateBudget > 0 {
		opts := statestore.Options{
			Budget:       cfg.StateBudget,
			Dir:          cfg.SpillDir,
			FS:           cfg.SpillFS,
			SegmentBytes: cfg.SpillSegmentBytes,
		}
		if opts.Dir == "" {
			if opts.FS == nil {
				dir, err := os.MkdirTemp("", "jisc-spill-")
				if err != nil {
					return nil, fmt.Errorf("engine: spill dir: %w", err)
				}
				opts.Dir = dir
			} else {
				opts.Dir = "jisc-spill"
			}
		}
		if cfg.Obs != nil {
			opts.FaultLatency = &cfg.Obs.SpillFault
		}
		store, err := statestore.Open(opts)
		if err != nil {
			return nil, err
		}
		e.store = store
	}
	e.install(cfg.Plan, true)
	return e, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Engine {
	e, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Name implements Executor.
func (e *Engine) Name() string { return "engine/" + e.strategy.Name() }

// Plan returns the currently executing plan.
func (e *Engine) Plan() *plan.Plan { return e.plan }

// Root returns the root operator.
func (e *Engine) Root() *Node { return e.root }

// Scan returns the scan node of stream id.
func (e *Engine) Scan(id tuple.StreamID) *Node { return e.scans[id] }

// Tick returns the global arrival counter.
func (e *Engine) Tick() uint64 { return e.tick }

// TransitionTick returns the tick of the most recent transition.
func (e *Engine) TransitionTick() uint64 { return e.transitionTick }

// Metrics implements Executor. The collector is atomic, so this is
// safe to call from any goroutine, concurrently with Feed.
func (e *Engine) Metrics() metrics.Snapshot { return e.met.Snapshot() }

// Collector exposes the live metrics collector to strategies.
func (e *Engine) Collector() *metrics.Collector { return &e.met }

// Obs returns the engine's latency recorder, nil when instrumentation
// is off.
func (e *Engine) Obs() *obs.Recorder { return e.obs }

// Now reads the engine's clock (Config.Now, default time.Now) — the
// clock instrumentation and strategies must share so injected test
// clocks govern every recorded duration.
func (e *Engine) Now() time.Time { return e.now() }

// Kind returns the physical operator kind of internal nodes.
func (e *Engine) Kind() Kind { return e.cfg.Kind }

// Theta returns the theta predicate (NLJoin engines).
func (e *Engine) Theta() func(probe, stored *tuple.Tuple) bool { return e.cfg.Theta }

// Builder returns the engine's arena-backed tuple builder — the
// per-run scratch allocator operators and strategies construct
// composite tuples through.
func (e *Engine) Builder() *tuple.Builder { return e.scratch.builder() }

// SetOutput replaces the output callback. The engine must be quiescent
// (no Feed in progress). The durability layer uses it to silence
// output while replaying the write-ahead log — those results were
// already emitted before the crash — and to restore the real sink
// afterwards.
func (e *Engine) SetOutput(out Output) {
	e.out = out
	e.cfg.Output = out
}

// Close releases the engine's pooled scratch resources and, when
// spilling is enabled, the spill tier's segment directory. The engine
// must not be fed afterwards; tuples it produced stay valid.
func (e *Engine) Close() {
	e.scratch.release()
	if e.store != nil {
		e.store.Close()
	}
}

// SpillStats snapshots the tiered state store's counters; ok is false
// when spilling is off (Config.StateBudget ≤ 0). The counters are
// atomic: safe from any goroutine, concurrently with Feed.
func (e *Engine) SpillStats() (statestore.Stats, bool) {
	if e.store == nil {
		return statestore.Stats{}, false
	}
	return e.store.Stats(), true
}

// StateBytes returns the resident byte footprint of the engine's state
// (state.TupleBytes accounting). With spilling enabled it reads the
// store's atomic counter and is safe from any goroutine; otherwise it
// sums the live tables and lists and must run on the goroutine that
// feeds the engine.
func (e *Engine) StateBytes() int64 {
	if e.store != nil {
		return e.store.Stats().ResidentBytes
	}
	var b int64
	for _, st := range e.states {
		b += st.Bytes()
	}
	for _, ls := range e.lists {
		b += ls.Bytes()
	}
	return b
}

// Feed implements Executor: enqueue and immediately process ev.
func (e *Engine) Feed(ev workload.Event) {
	e.pending = append(e.pending, ev)
	e.drain()
}

// FeedStamped processes ev immediately using caller-assigned identity:
// seq is the per-stream sequence number and tick the global arrival
// tick, both strictly increasing. It lets several plan instances agree
// on tuple identity (Parallel Track runs the same input through old
// and new plans and deduplicates by provenance). FeedStamped bypasses
// the input buffer and must not be mixed with Enqueue.
func (e *Engine) FeedStamped(ev workload.Event, seq, tick uint64) {
	e.processStamped(ev, seq, tick)
}

// FeedBatch processes evs in arrival order, observably identical to
// len(evs) consecutive Feed calls — same window slides, same eviction
// points, same counters — but with the per-tuple entry overhead paid
// once per batch: a single obs sampling decision and at most one clock
// pair (recording the mean per-tuple latency), plus one batch-fill
// observation. Config.AfterFeed still fires after every tuple, so a
// deterministic harness can interleave Migrate calls mid-batch; the
// engine's input buffer is drained first so previously Enqueued tuples
// stay older than the batch.
func (e *Engine) FeedBatch(evs []workload.Event) {
	if len(evs) == 0 {
		return
	}
	e.drain()
	var start time.Time
	timed := e.obs.SampleFeed()
	if timed {
		start = e.now()
	}
	for i := range evs {
		ev := evs[i]
		e.processCore(ev, e.seqs[ev.Stream]+1, e.tick+1)
		if e.cfg.AfterFeed != nil {
			e.cfg.AfterFeed(e.tick)
		}
	}
	if timed {
		e.obs.Feed.Record(e.now().Sub(start) / time.Duration(len(evs)))
	}
	e.obs.ObserveBatchFill(len(evs))
}

// Enqueue buffers ev without processing — used by tests that exercise
// the §4.1 buffer-clearing phase explicitly, and by the Parallel Track
// wrapper.
func (e *Engine) Enqueue(ev workload.Event) { e.pending = append(e.pending, ev) }

// Drain processes all buffered tuples through the current plan.
func (e *Engine) Drain() { e.drain() }

func (e *Engine) drain() {
	for i := 0; i < len(e.pending); i++ {
		e.process(e.pending[i])
	}
	e.pending = e.pending[:0]
	if cap(e.pending) > 1024 {
		e.pending = nil
	}
}

// process runs one input tuple through the pipeline to completion,
// assigning the next sequence number and tick.
func (e *Engine) process(ev workload.Event) {
	e.processStamped(ev, e.seqs[ev.Stream]+1, e.tick+1)
}

func (e *Engine) processStamped(ev workload.Event, seq, tick uint64) {
	var start time.Time
	timedFeed := e.obs.SampleFeed()
	if timedFeed {
		start = e.now()
	}
	e.processCore(ev, seq, tick)
	if timedFeed {
		e.obs.Feed.Record(e.now().Sub(start))
	}
	if e.cfg.AfterFeed != nil {
		e.cfg.AfterFeed(e.tick)
	}
}

// processCore is the per-tuple pipeline — window slide, eviction, scan
// insert, probe/build push-up — without the obs sampling or AfterFeed
// hook, which the per-event and batched entry points layer differently.
func (e *Engine) processCore(ev workload.Event, seq, tick uint64) {
	scan, ok := e.scans[ev.Stream]
	if !ok {
		panic(fmt.Sprintf("engine: tuple for unknown stream %d", ev.Stream))
	}
	e.tick = tick
	e.met.Input.Add(1)
	e.seqs[ev.Stream] = seq

	// Definition 2: fresh iff no tuple with this key arrived on this
	// stream since the last transition.
	la := e.lastArrival[ev.Stream]
	fresh := la[ev.Key] <= e.transitionTick
	la[ev.Key] = e.tick

	// Slide the window first so the new tuple never joins expired ones.
	for _, expired := range e.windows[ev.Stream].Slide(tuple.Ref{Stream: ev.Stream, Seq: seq}, ev.Key, e.tick) {
		e.evict(scan, expired)
	}

	t := e.scratch.builder().Base(ev.Stream, seq, ev.Key, e.tick)
	scan.St.Insert(t)
	e.met.Inserts.Add(1)
	e.pushUp(scan, t, fresh)
}

// IterKeys returns st's distinct keys for iteration by a strategy's
// completion or eager-fill pass: sorted ascending when the engine was
// configured Deterministic, in map order otherwise.
func (e *Engine) IterKeys(st *state.Table) []tuple.Value {
	keys := st.Keys()
	if e.cfg.Deterministic {
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	}
	return keys
}

// pushUp delivers t (the freshly produced output of child) to child's
// parent operator, recursing upward; at the root it emits.
func (e *Engine) pushUp(child *Node, t *tuple.Tuple, fresh bool) {
	j := child.Parent
	if j == nil {
		e.emit(Delta{Tuple: t})
		return
	}
	j.Op.Push(e, j, child, t, fresh)
}

// emit delivers a root result.
func (e *Engine) emit(d Delta) {
	if d.Retraction {
		if e.out != nil {
			e.out(d)
		}
		return
	}
	e.met.MarkOutput(e.now())
	if e.out != nil {
		e.out(d)
	}
}
