// Package engine implements the paper's execution model (§2.1): a
// push-based pipeline of binary tree-structured operators — stream
// scans at the leaves, symmetric hash joins (or nested-loops joins for
// theta queries, or set-differences) at internal nodes — with
// count-based sliding windows, bottom-up eviction propagation, and a
// pluggable migration strategy that decides what happens to operator
// states when the plan changes at runtime.
//
// The engine is deterministic and single-threaded: Feed processes one
// input tuple to completion before returning, which makes the
// cross-strategy equivalence tests exact. Package pipeline provides a
// goroutine-per-operator variant of the same model.
package engine

import (
	"fmt"
	"time"

	"jisc/internal/metrics"
	"jisc/internal/plan"
	"jisc/internal/state"
	"jisc/internal/tuple"
	"jisc/internal/window"
	"jisc/internal/workload"
)

// Kind selects the physical operator implementing internal plan nodes.
type Kind int

const (
	// HashJoin is the symmetric hash equi-join of §2.1.
	HashJoin Kind = iota
	// NLJoin is the nested-loops join used for general theta joins.
	NLJoin
	// SetDiff is the binary set-difference operator of §4.7.
	SetDiff
)

func (k Kind) String() string {
	switch k {
	case HashJoin:
		return "hash-join"
	case NLJoin:
		return "nl-join"
	case SetDiff:
		return "set-difference"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Delta is an output event at the plan root. Streaming set-difference
// can retract previously emitted results, so outputs carry a sign;
// joins only ever emit additions.
type Delta struct {
	Tuple *tuple.Tuple
	// Retraction is true when the result is withdrawn (set-difference
	// semantics or window expiry at the root).
	Retraction bool
}

// Output receives root results.
type Output func(Delta)

// Executor is the contract shared by every execution strategy in the
// repository (this engine under JISC/Moving State/static, Parallel
// Track, CACQ, STAIRs): feed tuples, trigger plan transitions, read
// metrics. It is what the benchmark harness and the equivalence tests
// program against.
type Executor interface {
	Name() string
	// Feed processes one input tuple to completion.
	Feed(ev workload.Event)
	// Migrate transitions the executor to a new plan.
	Migrate(p *plan.Plan) error
	// Metrics returns a snapshot of the executor's counters.
	Metrics() metrics.Snapshot
}

// Strategy customizes how the engine behaves around plan transitions.
// Implementations: Static (no transitions), migrate.MovingState
// (eager), core.JISC (lazy, the paper's contribution).
//
// OnTransition runs after the engine has switched to the new plan; an
// error from it leaves the engine on the new plan with unfilled
// states, so strategies that refuse transitions outright should also
// implement TransitionRejector to be rejected before any state
// changes.
type Strategy interface {
	Name() string
	// OnTransition runs after the buffer-clearing phase, with the new
	// operator tree built and surviving states re-attached. The
	// engine has already marked states absent from the old plan
	// incomplete; the strategy decides how/when they get filled.
	OnTransition(e *Engine) error
	// BeforeProbe runs when t, pushed up from child `from`, is about
	// to probe the state of the opposite child `opp` at join j. JISC
	// completes missing entries here; eager strategies do nothing.
	BeforeProbe(e *Engine, j, opp *Node, t *tuple.Tuple, fresh bool)
	// EvictContinue reports whether eviction propagation must proceed
	// past join j although no stored entry matched (§4.2: removals
	// continue through incomplete states).
	EvictContinue(e *Engine, j *Node, key tuple.Value) bool
}

// Node is one physical operator. Exported fields are read-only for
// strategies; only the engine mutates the tree.
type Node struct {
	// Set identifies the streams covered by the node's output state.
	Set tuple.StreamSet
	// Stream is the scanned stream when the node is a leaf.
	Stream tuple.StreamID
	// Left, Right, Parent wire the operator tree. Leaves have nil
	// children; the root has a nil parent.
	Left, Right, Parent *Node
	// Kind selects the operator implementation for internal nodes.
	Kind Kind

	// St is the node's output state for hash-based operators.
	St *state.Table
	// Ls is the node's output state for nested-loops operators.
	Ls *state.List

	// CounterSide is the designated child whose distinct keys armed
	// this node's completion counter (§4.3 Cases 1–2); nil when no
	// counter is armed (Case 3 or complete state).
	CounterSide *Node

	// Born is the engine tick at which this node's state was created
	// empty (i.e. classified incomplete). State completion must only
	// reconstruct results whose constituents all arrived at or before
	// Born; later results are produced by normal processing. Born
	// survives re-installation across overlapped transitions.
	Born uint64

	// Probes and Matches count lookups against this node's state and
	// the entries they returned — the per-operator selectivity signal
	// a runtime optimizer feeds on (the paper treats the transition
	// trigger policy as orthogonal, §2; package optimizer provides
	// one). They survive re-installation only while the state itself
	// survives; fresh states start at zero.
	Probes, Matches uint64
}

// IsLeaf reports whether the node is a stream scan.
func (n *Node) IsLeaf() bool { return n.Left == nil && n.Right == nil }

// Opposite returns the sibling of child c under n.
func (n *Node) Opposite(c *Node) *Node {
	if n.Left == c {
		return n.Right
	}
	return n.Left
}

// Config parameterizes an Engine.
type Config struct {
	// Plan is the initial query plan.
	Plan *plan.Plan
	// WindowSize is the per-stream sliding window size in tuples
	// (default 10_000, the paper's setting). Ignored when TimeSpan is
	// set.
	WindowSize int
	// WindowSizes optionally overrides WindowSize per stream (§5
	// notes the general case of per-stream window sizes). Streams
	// absent from the map use WindowSize.
	WindowSizes map[tuple.StreamID]int
	// TimeSpan, when non-zero, selects time-based sliding windows
	// instead of count-based ones: a tuple stays live while its
	// arrival tick is within TimeSpan of the stream's newest tuple.
	TimeSpan uint64
	// Kind selects the physical operator for internal nodes
	// (default HashJoin).
	Kind Kind
	// Theta is the join predicate for nested-loops nodes. It receives
	// the probing tuple and a stored tuple. Required iff Kind is
	// NLJoin or ThetaNodes is set.
	Theta func(probe, stored *tuple.Tuple) bool
	// ThetaNodes builds a hybrid plan (§2.1): with Kind == HashJoin,
	// join nodes whose output stream set satisfies the predicate run
	// as nested-loops theta joins, the rest as symmetric hash joins.
	// A hash join probes its children by key, so a nested-loops node
	// may not be the child of a hash node — theta joins sit above the
	// equi-joins, the usual hybrid shape.
	ThetaNodes func(set tuple.StreamSet) bool
	// Strategy handles plan transitions (default Static).
	Strategy Strategy
	// Output receives root results; may be nil.
	Output Output
	// Observer, when non-nil, receives a TransitionEvent after every
	// plan transition's classification — the observability hook
	// monitoring and tests use to watch migrations.
	Observer func(TransitionEvent)
	// EmitExpiry turns the output into a revision stream for join
	// pipelines: when a window slide removes results from the root
	// state, each removal is emitted as a retraction Delta, so
	// downstream aggregates (§4.7) track the live window instead of
	// the all-time output. Set-difference pipelines always emit
	// retractions regardless of this flag.
	EmitExpiry bool
	// Now supplies time for latency metrics; defaults to time.Now.
	// Tests inject a fake clock.
	Now func() time.Time
}

// TransitionEvent describes one applied plan transition.
type TransitionEvent struct {
	// Old and New are the plans' infix forms.
	Old, New string
	// Complete and Incomplete count the new plan's join states by
	// Definition 1 classification.
	Complete, Incomplete int
	// Tick is the arrival tick at which the transition applied.
	Tick uint64
}

// Engine executes one continuous query.
type Engine struct {
	cfg     Config
	plan    *plan.Plan
	root    *Node
	scans   map[tuple.StreamID]*Node
	windows map[tuple.StreamID]window.Slider
	// states is the state store: one table per live stream set.
	// Surviving a transition means staying in this map.
	states map[tuple.StreamSet]*state.Table
	lists  map[tuple.StreamSet]*state.List
	// born records the creation tick of each incomplete state so that
	// the tick survives re-installation across overlapped transitions.
	born map[tuple.StreamSet]uint64

	strategy Strategy
	out      Output
	met      metrics.Collector
	now      func() time.Time

	// tick is the global arrival counter; transitionTick is the tick
	// of the most recent plan transition (Definition 2 freshness).
	tick           uint64
	transitionTick uint64
	seqs           map[tuple.StreamID]uint64
	// lastArrival[stream][key] is the tick of the most recent arrival
	// of key on stream, backing Definition 2's fresh/attempted
	// classification in O(1).
	lastArrival map[tuple.StreamID]map[tuple.Value]uint64

	// pending models the input buffers of §4.1: tuples received but
	// not yet processed. Migrate drains it through the old plan (the
	// buffer-clearing phase) before switching.
	pending []workload.Event
}

// New builds an engine for cfg.
func New(cfg Config) (*Engine, error) {
	if cfg.Plan == nil {
		return nil, fmt.Errorf("engine: nil plan")
	}
	if cfg.WindowSize == 0 {
		cfg.WindowSize = 10000
	}
	if cfg.WindowSize < 0 {
		return nil, fmt.Errorf("engine: negative window size %d", cfg.WindowSize)
	}
	needsTheta := cfg.Kind == NLJoin || cfg.ThetaNodes != nil
	if needsTheta && cfg.Theta == nil {
		return nil, fmt.Errorf("engine: nested-loops nodes require a Theta predicate")
	}
	if !needsTheta && cfg.Theta != nil {
		return nil, fmt.Errorf("engine: Theta predicate given for %v without ThetaNodes", cfg.Kind)
	}
	if cfg.ThetaNodes != nil && cfg.Kind != HashJoin {
		return nil, fmt.Errorf("engine: ThetaNodes hybrid plans require Kind == HashJoin, got %v", cfg.Kind)
	}
	if cfg.Kind == SetDiff && !cfg.Plan.Root.IsLeftDeep() {
		return nil, fmt.Errorf("engine: set-difference pipelines must be left-deep, got %s", cfg.Plan)
	}
	if cfg.Strategy == nil {
		cfg.Strategy = Static{}
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	e := &Engine{
		cfg:         cfg,
		strategy:    cfg.Strategy,
		out:         cfg.Output,
		now:         cfg.Now,
		scans:       make(map[tuple.StreamID]*Node),
		windows:     make(map[tuple.StreamID]window.Slider),
		states:      make(map[tuple.StreamSet]*state.Table),
		lists:       make(map[tuple.StreamSet]*state.List),
		born:        make(map[tuple.StreamSet]uint64),
		seqs:        make(map[tuple.StreamID]uint64),
		lastArrival: make(map[tuple.StreamID]map[tuple.Value]uint64),
	}
	if err := e.validateKinds(cfg.Plan); err != nil {
		return nil, err
	}
	for _, id := range cfg.Plan.Streams.Streams() {
		if cfg.TimeSpan > 0 {
			e.windows[id] = window.NewTime(id, cfg.TimeSpan)
		} else {
			size := cfg.WindowSize
			if s, ok := cfg.WindowSizes[id]; ok {
				size = s
			}
			if size <= 0 {
				return nil, fmt.Errorf("engine: non-positive window size %d for stream %d", size, id)
			}
			e.windows[id] = window.New(id, size)
		}
		e.lastArrival[id] = make(map[tuple.Value]uint64)
	}
	e.install(cfg.Plan, true)
	return e, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Engine {
	e, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Name implements Executor.
func (e *Engine) Name() string { return "engine/" + e.strategy.Name() }

// Plan returns the currently executing plan.
func (e *Engine) Plan() *plan.Plan { return e.plan }

// Root returns the root operator.
func (e *Engine) Root() *Node { return e.root }

// Scan returns the scan node of stream id.
func (e *Engine) Scan(id tuple.StreamID) *Node { return e.scans[id] }

// Tick returns the global arrival counter.
func (e *Engine) Tick() uint64 { return e.tick }

// TransitionTick returns the tick of the most recent transition.
func (e *Engine) TransitionTick() uint64 { return e.transitionTick }

// Metrics implements Executor.
func (e *Engine) Metrics() metrics.Snapshot { return e.met.Snapshot() }

// Collector exposes the live metrics collector to strategies.
func (e *Engine) Collector() *metrics.Collector { return &e.met }

// Kind returns the physical operator kind of internal nodes.
func (e *Engine) Kind() Kind { return e.cfg.Kind }

// Theta returns the theta predicate (NLJoin engines).
func (e *Engine) Theta() func(probe, stored *tuple.Tuple) bool { return e.cfg.Theta }

// install builds the operator tree for p, attaching surviving states
// from the store and creating empty incomplete states for new stream
// sets. initial marks the first installation, where every state starts
// complete (there is nothing to migrate from).
func (e *Engine) install(p *plan.Plan, initial bool) {
	live := make(map[tuple.StreamSet]bool)
	var build func(n *plan.Node) *Node
	build = func(n *plan.Node) *Node {
		set := n.Set()
		live[set] = true
		node := &Node{Set: set, Kind: e.nodeKind(set)}
		if n.IsLeaf() {
			node.Stream = n.Stream
			node.Kind = HashJoin // scan windows are always key-hashed
			e.scans[n.Stream] = node
			node.St = e.ensureTable(set, initial)
			return node
		}
		node.Left = build(n.Left)
		node.Right = build(n.Right)
		node.Left.Parent = node
		node.Right.Parent = node
		if node.Kind == NLJoin {
			node.Ls = e.ensureList(set, initial)
		} else {
			node.St = e.ensureTable(set, initial)
		}
		node.Born = e.born[set]
		return node
	}
	e.root = build(p.Root)
	e.plan = p
	// Discard states whose stream set is not in the new plan.
	for set := range e.states {
		if !live[set] {
			delete(e.states, set)
			delete(e.born, set)
		}
	}
	for set := range e.lists {
		if !live[set] {
			delete(e.lists, set)
			delete(e.born, set)
		}
	}
}

func (e *Engine) ensureTable(set tuple.StreamSet, initial bool) *state.Table {
	if st, ok := e.states[set]; ok {
		// Surviving state: completeness carries over unchanged
		// (§4.5: incomplete in the old plan stays incomplete).
		return st
	}
	st := state.NewTable(set)
	if !initial && set.Count() > 1 {
		st.MarkIncomplete()
		e.born[set] = e.tick
	}
	e.states[set] = st
	return st
}

func (e *Engine) ensureList(set tuple.StreamSet, initial bool) *state.List {
	if ls, ok := e.lists[set]; ok {
		return ls
	}
	ls := state.NewList(set)
	if !initial && set.Count() > 1 {
		ls.MarkIncomplete()
		e.born[set] = e.tick
	}
	e.lists[set] = ls
	return ls
}

// ClearBorn forgets the creation tick of set once its state is
// complete again.
func (e *Engine) ClearBorn(set tuple.StreamSet) { delete(e.born, set) }

// nodeKind returns the operator kind for the internal node covering
// set.
func (e *Engine) nodeKind(set tuple.StreamSet) Kind {
	if e.cfg.Kind == HashJoin && e.cfg.ThetaNodes != nil && e.cfg.ThetaNodes(set) {
		return NLJoin
	}
	return e.cfg.Kind
}

// validateKinds rejects plans where a hash join would have a
// nested-loops child: hash probes need a key index, which list states
// lack.
func (e *Engine) validateKinds(p *plan.Plan) error {
	if e.cfg.ThetaNodes == nil {
		return nil
	}
	var err error
	p.Root.Walk(func(n *plan.Node) {
		if err != nil || n.IsLeaf() || e.nodeKind(n.Set()) == NLJoin {
			return
		}
		for _, child := range []*plan.Node{n.Left, n.Right} {
			if !child.IsLeaf() && e.nodeKind(child.Set()) == NLJoin {
				err = fmt.Errorf("engine: hash join %v cannot consume nested-loops child %v; theta joins must sit above equi-joins", n.Set(), child.Set())
			}
		}
	})
	return err
}

// Feed implements Executor: enqueue and immediately process ev.
func (e *Engine) Feed(ev workload.Event) {
	e.pending = append(e.pending, ev)
	e.drain()
}

// FeedStamped processes ev immediately using caller-assigned identity:
// seq is the per-stream sequence number and tick the global arrival
// tick, both strictly increasing. It lets several plan instances agree
// on tuple identity (Parallel Track runs the same input through old
// and new plans and deduplicates by provenance). FeedStamped bypasses
// the input buffer and must not be mixed with Enqueue.
func (e *Engine) FeedStamped(ev workload.Event, seq, tick uint64) {
	e.processStamped(ev, seq, tick)
}

// Enqueue buffers ev without processing — used by tests that exercise
// the §4.1 buffer-clearing phase explicitly, and by the Parallel Track
// wrapper.
func (e *Engine) Enqueue(ev workload.Event) { e.pending = append(e.pending, ev) }

// Drain processes all buffered tuples through the current plan.
func (e *Engine) Drain() { e.drain() }

func (e *Engine) drain() {
	for i := 0; i < len(e.pending); i++ {
		e.process(e.pending[i])
	}
	e.pending = e.pending[:0]
	if cap(e.pending) > 1024 {
		e.pending = nil
	}
}

// process runs one input tuple through the pipeline to completion,
// assigning the next sequence number and tick.
func (e *Engine) process(ev workload.Event) {
	e.processStamped(ev, e.seqs[ev.Stream]+1, e.tick+1)
}

func (e *Engine) processStamped(ev workload.Event, seq, tick uint64) {
	scan, ok := e.scans[ev.Stream]
	if !ok {
		panic(fmt.Sprintf("engine: tuple for unknown stream %d", ev.Stream))
	}
	e.tick = tick
	e.met.Input++
	e.seqs[ev.Stream] = seq

	// Definition 2: fresh iff no tuple with this key arrived on this
	// stream since the last transition.
	la := e.lastArrival[ev.Stream]
	fresh := la[ev.Key] <= e.transitionTick
	la[ev.Key] = e.tick

	// Slide the window first so the new tuple never joins expired ones.
	for _, expired := range e.windows[ev.Stream].Slide(tuple.Ref{Stream: ev.Stream, Seq: seq}, ev.Key, e.tick) {
		e.evict(scan, expired)
	}

	t := tuple.NewBase(ev.Stream, seq, ev.Key, e.tick)
	scan.St.Insert(t)
	e.met.Inserts++
	e.pushUp(scan, t, fresh)
}

// pushUp delivers t (the freshly produced output of child) to child's
// parent, performing the join/diff there and recursing upward.
func (e *Engine) pushUp(child *Node, t *tuple.Tuple, fresh bool) {
	j := child.Parent
	if j == nil {
		e.emit(Delta{Tuple: t})
		return
	}
	switch j.Kind {
	case HashJoin:
		e.hashJoin(j, child, t, fresh)
	case NLJoin:
		e.nlJoin(j, child, t, fresh)
	case SetDiff:
		e.setDiff(j, child, t, fresh)
	default:
		panic("engine: unknown operator kind")
	}
}

// hashJoin implements Procedure 1 for symmetric hash join. Note one
// deliberate deviation from the paper's pseudo-code: completion runs
// whenever a fresh tuple probes an incomplete state, not only when the
// probe finds nothing. An incomplete state can contain post-transition
// entries for the probed key (inserted by normal processing of newer
// tuples) while its pre-transition entries are still missing; probing
// those partial entries without completing first would lose results.
// The paper's prose ("a new tuple from R causes a probe to the
// incomplete State UTS, which triggers a state completion") and its
// Theorem 1 both require the complete-before-probe order.
func (e *Engine) hashJoin(j, from *Node, t *tuple.Tuple, fresh bool) {
	opp := j.Opposite(from)
	e.strategy.BeforeProbe(e, j, opp, t, fresh)
	e.met.Probes++
	matches := opp.St.Probe(t.Key)
	opp.Probes++
	opp.Matches += uint64(len(matches))
	for _, m := range matches {
		out := tuple.Join(t, m)
		j.St.Insert(out)
		e.met.Inserts++
		e.pushUp(j, out, fresh)
	}
}

// emit delivers a root result.
func (e *Engine) emit(d Delta) {
	if d.Retraction {
		if e.out != nil {
			e.out(d)
		}
		return
	}
	e.met.MarkOutput(e.now())
	if e.out != nil {
		e.out(d)
	}
}

// Migrate implements Executor: transition to newPlan per §4.1 — clear
// the input buffers through the old plan, rebuild the operator tree
// re-attaching surviving states, discard dead states, then let the
// strategy prepare the rest (eagerly or lazily).
func (e *Engine) Migrate(newPlan *plan.Plan) error {
	if newPlan.Streams != e.plan.Streams {
		return fmt.Errorf("engine: new plan covers %v, old covers %v", newPlan.Streams, e.plan.Streams)
	}
	if e.cfg.Kind == SetDiff {
		if !newPlan.Root.IsLeftDeep() {
			return fmt.Errorf("engine: set-difference pipelines must be left-deep, got %s", newPlan)
		}
		// Reordering inners is a plan change; replacing the outer
		// changes the query itself (A−B is not B−A).
		oldOrder, _ := e.plan.Order()
		newOrder, _ := newPlan.Order()
		if oldOrder[0] != newOrder[0] {
			return fmt.Errorf("engine: set-difference outer stream must stay %d, got %d", oldOrder[0], newOrder[0])
		}
	}
	if err := e.validateKinds(newPlan); err != nil {
		return err
	}
	if tr, ok := e.strategy.(TransitionRejector); ok && tr.RejectsTransitions() {
		return fmt.Errorf("engine: %s strategy does not support plan transitions", e.strategy.Name())
	}
	e.met.MarkTransition(e.now())
	// Buffer-clearing phase: everything received before the
	// transition is processed through the old plan.
	e.drain()
	oldPlan := e.plan.String()
	e.transitionTick = e.tick
	e.install(newPlan, false)
	if err := e.strategy.OnTransition(e); err != nil {
		return err
	}
	if e.cfg.Observer != nil {
		ev := TransitionEvent{Old: oldPlan, New: newPlan.String(), Tick: e.tick}
		for _, n := range e.Nodes() {
			if n.IsLeaf() {
				continue
			}
			if childComplete(n) {
				ev.Complete++
			} else {
				ev.Incomplete++
			}
		}
		e.cfg.Observer(ev)
	}
	return nil
}

// TransitionRejector marks strategies that refuse plan transitions;
// the engine then rejects Migrate before touching any state.
type TransitionRejector interface {
	RejectsTransitions() bool
}

// Static is the no-migration strategy: a plain symmetric-hash-join (or
// nested-loops) pipeline. It is the "pure symmetric hash join plan"
// baseline of Figure 9a. Migrating a Static engine fails before any
// state is touched.
type Static struct{}

// RejectsTransitions implements TransitionRejector.
func (Static) RejectsTransitions() bool { return true }

// Name implements Strategy.
func (Static) Name() string { return "static" }

// OnTransition implements Strategy; unreachable because Migrate
// rejects Static transitions up front, kept as a safety net.
func (Static) OnTransition(*Engine) error {
	return fmt.Errorf("engine: static strategy does not support plan transitions")
}

// BeforeProbe implements Strategy (no-op).
func (Static) BeforeProbe(*Engine, *Node, *Node, *tuple.Tuple, bool) {}

// EvictContinue implements Strategy (standard stop-at-no-match rule).
func (Static) EvictContinue(*Engine, *Node, tuple.Value) bool { return false }
