package engine_test

import (
	"testing"

	"jisc/internal/core"
	"jisc/internal/engine"
	"jisc/internal/metrics"
	"jisc/internal/plan"
	"jisc/internal/storage"
	"jisc/internal/tuple"
	"jisc/internal/workload"
)

// TestSpillSurvivesMigration drives a JISC migration over an engine
// whose state is partly spilled: the completion episodes must fault
// cold buckets back in, dead states must release their spilled refs,
// and the output must match an unbounded run delta for delta.
func TestSpillSurvivesMigration(t *testing.T) {
	evs := make([]workload.Event, 0, 3000)
	rng := uint64(0xD1B54A32D192ED03)
	for i := 0; i < 3000; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		evs = append(evs, workload.Event{
			Stream: tuple.StreamID(i % 3),
			Key:    tuple.Value(rng >> 33 % 64),
		})
	}

	// working accumulates the unbounded run's peak resident bytes; the
	// bounded run's budget is a quarter of it so a real share of the
	// state lives on disk without degenerating into pure cache thrash.
	var working int64
	run := func(budget int64) ([]string, metrics.Snapshot, *engine.Engine) {
		var out []string
		cfg := engine.Config{
			Plan:          plan.MustLeftDeep(0, 1, 2),
			WindowSize:    500,
			Strategy:      core.New(),
			Deterministic: true,
			StateBudget:   budget,
			Output: func(d engine.Delta) {
				s := d.Tuple.Fingerprint()
				if d.Retraction {
					s = "-" + s
				}
				out = append(out, s)
			},
		}
		if budget > 0 {
			cfg.SpillFS = storage.NewMemFS()
			cfg.SpillSegmentBytes = 32 << 10
		}
		e := engine.MustNew(cfg)
		newPlan := plan.MustLeftDeep(2, 0, 1)
		for i, evt := range evs {
			if i == len(evs)/2 {
				if err := e.Migrate(newPlan); err != nil {
					t.Fatal(err)
				}
			}
			e.Feed(evt)
			if budget == 0 {
				if b := e.StateBytes(); b > working {
					working = b
				}
			}
		}
		return out, e.Metrics(), e
	}

	want, refStats, ref := run(0)
	defer ref.Close()
	got, boundedStats, bounded := run(working / 4)
	defer bounded.Close()

	if len(got) != len(want) {
		t.Fatalf("bounded run emitted %d deltas, unbounded %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delta %d diverged after migration: bounded %q, unbounded %q", i, got[i], want[i])
		}
	}
	if refStats.Transitions != boundedStats.Transitions {
		t.Fatalf("transition counts differ: %d vs %d", refStats.Transitions, boundedStats.Transitions)
	}
	spill, ok := bounded.SpillStats()
	if !ok || spill.Spills == 0 || spill.Faults == 0 {
		t.Fatalf("migration run never exercised the spill tier: %+v (on=%v)", spill, ok)
	}
}
