package engine

import (
	"fmt"
	"time"

	"jisc/internal/obs"
	"jisc/internal/plan"
)

// Migrate implements Executor: transition to newPlan per §4.1 — clear
// the input buffers through the old plan, rebuild the operator tree
// re-attaching surviving states, discard dead states, then let the
// strategy prepare the rest (eagerly or lazily).
func (e *Engine) Migrate(newPlan *plan.Plan) error {
	if newPlan.Streams != e.plan.Streams {
		return fmt.Errorf("engine: new plan covers %v, old covers %v", newPlan.Streams, e.plan.Streams)
	}
	if e.cfg.Kind == SetDiff {
		if !newPlan.Root.IsLeftDeep() {
			return fmt.Errorf("engine: set-difference pipelines must be left-deep, got %s", newPlan)
		}
		// Reordering inners is a plan change; replacing the outer
		// changes the query itself (A−B is not B−A).
		oldOrder, _ := e.plan.Order()
		newOrder, _ := newPlan.Order()
		if oldOrder[0] != newOrder[0] {
			return fmt.Errorf("engine: set-difference outer stream must stay %d, got %d", oldOrder[0], newOrder[0])
		}
	}
	if err := e.validateKinds(newPlan); err != nil {
		return err
	}
	if tr, ok := e.strategy.(TransitionRejector); ok && tr.RejectsTransitions() {
		return fmt.Errorf("engine: %s strategy does not support plan transitions", e.strategy.Name())
	}
	var start time.Time
	if e.obs != nil {
		start = e.now()
	}
	e.met.MarkTransition(e.now())
	// Buffer-clearing phase: everything received before the
	// transition is processed through the old plan.
	e.drain()
	oldPlan := e.plan.String()
	e.transitionTick = e.tick
	e.install(newPlan, false)
	if err := e.strategy.OnTransition(e); err != nil {
		return err
	}
	// The Migrate duration is the halt an eager strategy pays (buffer
	// clearing + OnTransition); under JISC it stays near zero — the
	// latency trade the paper's Figures 7/8 are about.
	var dur time.Duration
	if e.obs != nil {
		dur = e.now().Sub(start)
		e.obs.Migrate.Record(dur)
	}
	var tracer *obs.Tracer
	if e.obs != nil {
		tracer = e.obs.Tracer
	}
	if e.cfg.Observer != nil || tracer != nil {
		ev := TransitionEvent{Old: oldPlan, New: newPlan.String(), Tick: e.tick}
		var stateEvents []obs.Event
		for _, n := range e.Nodes() {
			if n.IsLeaf() {
				continue
			}
			kind := obs.EvStateIncomplete
			if childComplete(n) {
				ev.Complete++
				kind = obs.EvStateComplete
			} else {
				ev.Incomplete++
			}
			if tracer != nil {
				stateEvents = append(stateEvents, obs.Event{
					Kind: kind, Query: e.obs.Query, Shard: e.obs.Shard,
					Tick: e.tick, Note: n.Set.String(),
				})
			}
		}
		if tracer != nil {
			tracer.Emit(obs.Event{
				Kind: obs.EvPlanInstalled, Query: e.obs.Query, Shard: e.obs.Shard,
				Tick: e.tick, Count: uint64(ev.Incomplete), Extra: uint64(ev.Complete),
				Dur: dur, Note: oldPlan + " -> " + ev.New,
			})
			for _, se := range stateEvents {
				tracer.Emit(se)
			}
		}
		if e.cfg.Observer != nil {
			e.cfg.Observer(ev)
		}
	}
	return nil
}

// TransitionRejector marks strategies that refuse plan transitions;
// the engine then rejects Migrate before touching any state.
type TransitionRejector interface {
	RejectsTransitions() bool
}
