package engine

import (
	"testing"

	"jisc/internal/plan"
	"jisc/internal/tuple"
)

func TestGroupCountBasics(t *testing.T) {
	g := NewGroupCount(nil)
	add := func(k tuple.Value) {
		g.Consume(Delta{Tuple: tuple.NewBase(0, 1, k, 1)})
	}
	add(1)
	add(1)
	add(2)
	if g.Count(1) != 2 || g.Count(2) != 1 || g.Total() != 3 || g.Groups() != 2 {
		t.Fatalf("counts: %d %d total=%d groups=%d", g.Count(1), g.Count(2), g.Total(), g.Groups())
	}
	g.Consume(Delta{Tuple: tuple.NewBase(0, 1, 2, 1), Retraction: true})
	if g.Count(2) != 0 || g.Groups() != 1 || g.Total() != 2 {
		t.Fatalf("after retraction: count=%d groups=%d total=%d", g.Count(2), g.Groups(), g.Total())
	}
}

func TestGroupCountTop(t *testing.T) {
	g := NewGroupCount(nil)
	for i := 0; i < 3; i++ {
		g.Consume(Delta{Tuple: tuple.NewBase(0, 1, 7, 1)})
	}
	g.Consume(Delta{Tuple: tuple.NewBase(0, 1, 3, 1)})
	g.Consume(Delta{Tuple: tuple.NewBase(0, 1, 9, 1)})
	top := g.Top(2)
	if len(top) != 2 || top[0].Key != 7 || top[0].Count != 3 {
		t.Fatalf("Top = %+v", top)
	}
	// Deterministic tie-break by key.
	if top[1].Key != 3 {
		t.Fatalf("tie-break: %+v", top)
	}
	if full := g.Top(10); len(full) != 3 {
		t.Fatalf("Top(10) = %d entries", len(full))
	}
}

func TestGroupCountChains(t *testing.T) {
	var forwarded int
	g := NewGroupCount(func(Delta) { forwarded++ })
	g.Consume(Delta{Tuple: tuple.NewBase(0, 1, 1, 1)})
	if forwarded != 1 {
		t.Fatal("downstream consumer not invoked")
	}
}

// The aggregate plugs in as an engine Output without perturbing it.
// (Exact migration-invariance of aggregates — §4.7 — is asserted in
// the core package, where the JISC strategy is available:
// TestAggregateUnaffectedByTransition.)
func TestGroupCountOnEngine(t *testing.T) {
	g := NewGroupCount(nil)
	e := MustNew(Config{
		Plan: plan.MustLeftDeep(0, 1, 2), WindowSize: 8, Output: g.Consume,
	})
	for i := 0; i < 200; i++ {
		e.Feed(ev(tuple.StreamID(i%3), tuple.Value(i%5)))
	}
	if g.Total() == 0 || g.Groups() > 5 {
		t.Fatalf("aggregate: total=%d groups=%d", g.Total(), g.Groups())
	}
}
