package engine

import (
	"jisc/internal/tuple"
	"jisc/internal/window"
)

// evict removes an expired base tuple from every state, bottom-up
// (§2.1). The standard rule stops the walk at the first operator whose
// state holds no matching entry; strategies may force the walk to
// continue (JISC does so through incomplete states, §4.2).
// Set-difference pipelines have different removal semantics and take
// the setDiffEvict path instead.
func (e *Engine) evict(scan *Node, exp window.Entry) {
	if e.cfg.Kind == SetDiff {
		e.setDiffEvict(scan, exp)
		return
	}
	// Phase 1: the removal walk. Counter maintenance (dropPendingAt)
	// is deferred to phase 2: DropPending can complete a state whose
	// entries for the expired key were never materialized, and if that
	// happened mid-walk EvictContinue would stop at the now-complete
	// state while an ancestor whose state survived the last transition
	// (§4.5 adoption) still holds an entry referencing the expired
	// tuple. The stop rule is only sound against pre-drop completeness.
	scan.St.RemoveRef(exp.Key, exp.Ref)
	e.met.Evictions.Add(1)

	last := scan
	for j := scan.Parent; j != nil; j = j.Parent {
		last = j
		var removed []*tuple.Tuple
		if j.St != nil {
			removed = j.St.RemoveRef(exp.Key, exp.Ref)
		} else {
			removed = j.Ls.RemoveRef(exp.Ref)
		}
		e.met.Evictions.Add(uint64(len(removed)))
		if j.Parent == nil && e.cfg.EmitExpiry {
			for _, t := range removed {
				e.emit(Delta{Tuple: t, Retraction: true})
			}
		}
		if len(removed) == 0 && !e.strategy.EvictContinue(e, j, exp.Key) {
			break
		}
	}

	// Phase 2: counter maintenance over the same nodes, now that the
	// walk can no longer observe its side effects.
	e.dropPendingAt(scan, exp.Key)
	for j := scan.Parent; j != nil; j = j.Parent {
		e.dropPendingAt(j, exp.Key)
		if j == last {
			return
		}
	}
}

// dropPendingAt handles the §4.3 note that the completion counter is
// "decremented accordingly" when a window slide removes entries: if
// node n is the designated counter side of its parent and no tuple
// with the key remains in n's state, the key will never need
// completion at the parent, so it leaves the pending set.
func (e *Engine) dropPendingAt(n *Node, key tuple.Value) {
	p := n.Parent
	if p == nil || p.St == nil || p.St.Complete() || p.CounterSide != n {
		return
	}
	if n.St != nil && n.St.ContainsKey(key) {
		return
	}
	if p.St.DropPending(key) {
		e.MarkNodeComplete(p)
	}
}

// MarkNodeComplete declares n's state complete, forgets its birth
// tick, and notifies the parent (§4.3).
//
// Deviation from the paper, recorded in DESIGN.md: the paper resolves
// Case 3 (both children incomplete, no counter) by declaring the
// parent complete as soon as both children complete. That rule is
// unsound: a child can complete through probes at the parent level
// that never computed the parent's own pre-transition entries for the
// probed keys, so the parent may still miss entries. Instead, when a
// child of a counter-less incomplete parent completes, the parent is
// re-classified from Case 3 to Case 2 and its counter is armed lazily
// with the complete child's distinct keys (minus keys already
// attempted); an empty pending set then — and only then — completes
// the parent.
func (e *Engine) MarkNodeComplete(n *Node) {
	if n.St != nil {
		n.St.MarkComplete()
	} else if n.Ls != nil {
		n.Ls.MarkComplete()
	}
	n.CounterSide = nil
	e.ClearBorn(n.Set)
	p := n.Parent
	if p == nil || p.St == nil || p.St.Complete() || p.St.CounterArmed() {
		return
	}
	e.ArmCounter(p)
}

// ArmCounter initializes the §4.3 completion counter of join node j
// from its children's states: Case 1 (both complete) uses the side
// with fewer distinct keys, Case 2 (one complete) uses the complete
// side, Case 3 (neither complete) arms nothing. Keys already attempted
// at j are excluded; if nothing remains pending, j completes
// immediately.
func (e *Engine) ArmCounter(j *Node) {
	if j.St == nil || j.St.Complete() {
		return
	}
	l, r := j.Left, j.Right
	lc, rc := childComplete(l), childComplete(r)
	if j.Kind == SetDiff {
		// A diff state needs entries for every key of its outer
		// (left) child — unmatched keys still produce passing
		// entries — so only the left side can arm the counter.
		if !lc {
			return
		}
		rc = false
	}
	var side *Node
	switch {
	case lc && rc:
		side = l
		if r.St != nil && l.St != nil && r.St.DistinctKeys() < l.St.DistinctKeys() {
			side = r
		}
	case lc:
		side = l
	case rc:
		side = r
	default:
		return // Case 3: detection deferred to child notifications.
	}
	if side.St == nil {
		return // list-state child: no key-based counter possible
	}
	keys := side.St.Keys()
	pending := keys[:0]
	for _, k := range keys {
		if !j.St.Attempted(k) {
			pending = append(pending, k)
		}
	}
	j.CounterSide = side
	j.St.ArmCounter(pending)
	if len(pending) == 0 {
		e.MarkNodeComplete(j)
	}
}

func childComplete(n *Node) bool {
	if n == nil {
		return true
	}
	if n.St != nil {
		return n.St.Complete()
	}
	return n.Ls.Complete()
}
