package engine

import (
	"jisc/internal/tuple"
)

// hashJoinOp implements Procedure 1 for symmetric hash join. Note one
// deliberate deviation from the paper's pseudo-code: completion runs
// whenever a fresh tuple probes an incomplete state, not only when the
// probe finds nothing. An incomplete state can contain post-transition
// entries for the probed key (inserted by normal processing of newer
// tuples) while its pre-transition entries are still missing; probing
// those partial entries without completing first would lose results.
// The paper's prose ("a new tuple from R causes a probe to the
// incomplete State UTS, which triggers a state completion") and its
// Theorem 1 both require the complete-before-probe order.
type hashJoinOp struct{}

// Kind implements Operator.
func (hashJoinOp) Kind() Kind { return HashJoin }

// Push implements Operator: probe the opposite child's hash state with
// t's key, build composites through the engine's scratch builder, and
// recurse upward.
func (hashJoinOp) Push(e *Engine, j, from *Node, t *tuple.Tuple, fresh bool) {
	opp := j.Opposite(from)
	e.strategy.BeforeProbe(e, j, opp, t, fresh)
	e.met.Probes.Add(1)
	matches := opp.St.Probe(t.Key)
	opp.Probes++
	opp.Matches += uint64(len(matches))
	for _, m := range matches {
		out := e.scratch.builder().Join(t, m)
		j.St.Insert(out)
		e.met.Inserts.Add(1)
		e.pushUp(j, out, fresh)
	}
}
