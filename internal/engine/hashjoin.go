package engine

import (
	"time"

	"jisc/internal/tuple"
)

// hashJoinOp implements Procedure 1 for symmetric hash join. Note one
// deliberate deviation from the paper's pseudo-code: completion runs
// whenever a fresh tuple probes an incomplete state, not only when the
// probe finds nothing. An incomplete state can contain post-transition
// entries for the probed key (inserted by normal processing of newer
// tuples) while its pre-transition entries are still missing; probing
// those partial entries without completing first would lose results.
// The paper's prose ("a new tuple from R causes a probe to the
// incomplete State UTS, which triggers a state completion") and its
// Theorem 1 both require the complete-before-probe order.
type hashJoinOp struct{}

// Kind implements Operator.
func (hashJoinOp) Kind() Kind { return HashJoin }

// Push implements Operator: probe the opposite child's hash state with
// t's key, build composites through the engine's scratch builder, and
// recurse upward. With instrumentation on, one in obs.sampleEvery
// probes is timed (probe and build separately) — sampling keeps the
// two extra clock reads off most of the hot path.
func (hashJoinOp) Push(e *Engine, j, from *Node, t *tuple.Tuple, fresh bool) {
	opp := j.Opposite(from)
	e.strategy.BeforeProbe(e, j, opp, t, fresh)
	e.met.Probes.Add(1)
	timed := e.obs.SampleProbe()
	var t0, t1 time.Time
	if timed {
		t0 = e.now()
	}
	matches := opp.St.Probe(t.Key)
	if timed {
		t1 = e.now()
		e.recordProbe(opp, t1.Sub(t0))
	}
	opp.Probes++
	opp.Matches += uint64(len(matches))
	for i, m := range matches {
		out := e.scratch.builder().Join(t, m)
		j.St.Insert(out)
		if timed && i == 0 {
			// Time only the first build of a timed probe, reusing the
			// probe-end clock read as the build start: one extra read
			// per sample instead of two per match.
			e.obs.Build.Record(e.now().Sub(t1))
		}
		e.met.Inserts.Add(1)
		e.pushUp(j, out, fresh)
	}
}

// recordProbe folds one timed probe of n's state into the engine-wide
// probe histogram and n's per-operator accumulators.
func (e *Engine) recordProbe(n *Node, d time.Duration) {
	e.obs.Probe.Record(d)
	if d > 0 {
		n.ProbeNanos += uint64(d)
	}
	n.ProbeSamples++
}
