package engine

import "jisc/internal/tuple"

// ScanStats is one cumulative reading of a scan node's selectivity and
// latency counters — the per-operator signal a runtime optimizer feeds
// on, detached from the live Node so it can cross goroutine boundaries.
// Counters reset whenever the node's state is rebuilt (plan
// transitions); consumers diff successive readings and rebaseline on
// decreases, exactly like optimizer.Advisor.ObserveSample.
type ScanStats struct {
	Stream  tuple.StreamID
	Probes  uint64
	Matches uint64
	// ProbeNanos/ProbeSamples accumulate sampled probe durations; zero
	// when the engine runs without an obs.Recorder.
	ProbeNanos   uint64
	ProbeSamples uint64
}

// ScanStats reads every scan node's counters, ascending by stream ID.
// The counters are plain fields owned by the goroutine driving the
// engine, so this must run on that goroutine — the runtime layer
// forwards the call in-band on each shard's worker.
func (e *Engine) ScanStats() []ScanStats {
	streams := e.plan.Streams.Streams()
	out := make([]ScanStats, 0, len(streams))
	for _, id := range streams {
		scan := e.scans[id]
		if scan == nil {
			continue
		}
		out = append(out, ScanStats{
			Stream:       id,
			Probes:       scan.Probes,
			Matches:      scan.Matches,
			ProbeNanos:   scan.ProbeNanos,
			ProbeSamples: scan.ProbeSamples,
		})
	}
	return out
}
