package engine

import (
	"testing"

	"jisc/internal/obs"
	"jisc/internal/plan"
	"jisc/internal/tuple"
	"jisc/internal/workload"
)

// BenchmarkFeedSteadyState measures the steady-state hot path — window
// slide, scan insert, probe, composite construction, state insert,
// output — on a 3-way left-deep join with window-sized key domain
// (≈1 match per probe per level, the paper's §6 setting), windows
// turning over so eviction propagation is exercised too.
func BenchmarkFeedSteadyState(b *testing.B) {
	const window = 1024
	src := workload.MustNewSource(workload.Config{Streams: 3, Domain: window, Seed: 1})
	var outputs uint64
	e := MustNew(Config{
		Plan:       plan.MustLeftDeep(0, 1, 2),
		WindowSize: window,
		Output:     func(Delta) { outputs++ },
	})
	// Warm up past the window-fill phase so b.N tuples measure steady
	// state (full windows, every slide evicts).
	for i := 0; i < 4*window; i++ {
		e.Feed(src.Next())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Feed(src.Next())
	}
	_ = outputs
}

// BenchmarkFeedSteadyStateObserved is BenchmarkFeedSteadyState with
// latency instrumentation on (feed-latency histogram per tuple,
// sampled probe/build histograms): the difference between the two is
// the observability overhead, budgeted at ≤10% (tracked in
// BENCH_latency.json).
func BenchmarkFeedSteadyStateObserved(b *testing.B) {
	const window = 1024
	src := workload.MustNewSource(workload.Config{Streams: 3, Domain: window, Seed: 1})
	rec := obs.NewSet("bench", 0).Recorder(0)
	var outputs uint64
	e := MustNew(Config{
		Plan:       plan.MustLeftDeep(0, 1, 2),
		WindowSize: window,
		Output:     func(Delta) { outputs++ },
		Obs:        rec,
	})
	for i := 0; i < 4*window; i++ {
		e.Feed(src.Next())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Feed(src.Next())
	}
	_ = outputs
	if rec.Feed.Count() == 0 {
		b.Fatal("no feed latency recorded")
	}
}

// BenchmarkFeedTwoWay is the minimal join pipeline — one symmetric
// hash join — isolating per-tuple overhead from multi-level fan-out.
func BenchmarkFeedTwoWay(b *testing.B) {
	const window = 1024
	src := workload.MustNewSource(workload.Config{Streams: 2, Domain: window, Seed: 1})
	e := MustNew(Config{
		Plan:       plan.MustLeftDeep(0, 1),
		WindowSize: window,
	})
	for i := 0; i < 4*window; i++ {
		e.Feed(src.Next())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Feed(src.Next())
	}
}

// BenchmarkCompositeJoin measures composite-tuple construction (the
// tuple.Join path) through a probe that always matches.
func BenchmarkCompositeJoin(b *testing.B) {
	a := tuple.NewBase(0, 1, 7, 1)
	c := tuple.NewBase(1, 1, 7, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tuple.Join(a, c)
	}
}
