package engine_test

import (
	"fmt"
	"testing"

	"jisc/internal/core"
	"jisc/internal/engine"
	"jisc/internal/obs"
	"jisc/internal/plan"
	"jisc/internal/tuple"
	"jisc/internal/workload"
)

type Delta = engine.Delta

func collect(dst *[]Delta) engine.Output {
	return func(d Delta) { *dst = append(*dst, d) }
}

func feedAll(e *engine.Engine, evs []workload.Event) {
	for _, ev := range evs {
		e.Feed(ev)
	}
}

func ev(s tuple.StreamID, k tuple.Value) workload.Event {
	return workload.Event{Stream: s, Key: k}
}

func fingerprints(out []Delta) map[string]int {
	m := map[string]int{}
	for _, d := range out {
		if !d.Retraction {
			m[d.Tuple.Fingerprint()]++
		}
	}
	return m
}

func batchEvents(t *testing.T, n int) []workload.Event {
	t.Helper()
	src := workload.MustNewSource(workload.Config{Streams: 3, Domain: 5, Seed: 42})
	return src.Take(n)
}

// TestFeedBatchEquivalence pins the tentpole contract at the engine
// layer: FeedBatch in any chunking is observably identical to the same
// events fed one at a time — output multiset, Input/Output/Inserts
// counters, and window eviction points all match.
func TestFeedBatchEquivalence(t *testing.T) {
	evs := batchEvents(t, 500)
	for _, chunk := range []int{1, 2, 7, 64, 500} {
		t.Run(fmt.Sprintf("chunk=%d", chunk), func(t *testing.T) {
			cfg := func(out *[]Delta) engine.Config {
				return engine.Config{
					Plan:          plan.MustLeftDeep(0, 1, 2),
					WindowSize:    8,
					Deterministic: true,
					Output:        collect(out),
				}
			}
			var refOut, batOut []Delta
			ref := engine.MustNew(cfg(&refOut))
			bat := engine.MustNew(cfg(&batOut))
			feedAll(ref, evs)
			for i := 0; i < len(evs); i += chunk {
				j := min(i+chunk, len(evs))
				bat.FeedBatch(evs[i:j])
			}
			rm, bm := ref.Metrics(), bat.Metrics()
			if rm.Input != bm.Input || rm.Output != bm.Output || rm.Inserts != bm.Inserts {
				t.Fatalf("counters diverge: ref Input=%d Output=%d Inserts=%d, batch Input=%d Output=%d Inserts=%d",
					rm.Input, rm.Output, rm.Inserts, bm.Input, bm.Output, bm.Inserts)
			}
			refFp, batFp := fingerprints(refOut), fingerprints(batOut)
			if len(refFp) != len(batFp) {
				t.Fatalf("distinct outputs: ref %d, batch %d", len(refFp), len(batFp))
			}
			for fp, c := range refFp {
				if batFp[fp] != c {
					t.Fatalf("output %q: ref count %d, batch count %d", fp, c, batFp[fp])
				}
			}
		})
	}
}

// TestFeedBatchMidBatchMigration checks a Migrate issued from the
// AfterFeed hook in the middle of a batch lands at the same per-tuple
// point as the per-event schedule — the property the sim oracle's
// batched comparisons rely on.
func TestFeedBatchMidBatchMigration(t *testing.T) {
	evs := batchEvents(t, 200)
	p0 := plan.MustLeftDeep(0, 1, 2)
	p1 := plan.MustLeftDeep(2, 1, 0)
	const migrateAt = 103 // mid-batch for every chunk size below

	var refOut []Delta
	ref := engine.MustNew(engine.Config{Plan: p0, WindowSize: 8, Strategy: core.New(), Deterministic: true, Output: collect(&refOut)})
	for i, ev := range evs {
		if i == migrateAt {
			if err := ref.Migrate(p1); err != nil {
				t.Fatal(err)
			}
		}
		ref.Feed(ev)
	}

	for _, chunk := range []int{10, 64, 200} {
		var batOut []Delta
		fed := 0
		var bat *engine.Engine
		var migErr error
		bat = engine.MustNew(engine.Config{
			Plan: p0, WindowSize: 8, Strategy: core.New(), Deterministic: true,
			Output: collect(&batOut),
			AfterFeed: func(uint64) {
				fed++
				if fed == migrateAt {
					migErr = bat.Migrate(p1)
				}
			},
		})
		for i := 0; i < len(evs); i += chunk {
			bat.FeedBatch(evs[i:min(i+chunk, len(evs))])
		}
		if migErr != nil {
			t.Fatalf("chunk=%d: mid-batch migrate: %v", chunk, migErr)
		}
		if fed != len(evs) {
			t.Fatalf("chunk=%d: AfterFeed fired %d times, want %d", chunk, fed, len(evs))
		}
		rm, bm := ref.Metrics(), bat.Metrics()
		if rm.Output != bm.Output || rm.Transitions != bm.Transitions {
			t.Fatalf("chunk=%d: Output=%d Transitions=%d, want %d and %d", chunk, bm.Output, bm.Transitions, rm.Output, rm.Transitions)
		}
		refFp, batFp := fingerprints(refOut), fingerprints(batOut)
		for fp, c := range refFp {
			if batFp[fp] != c {
				t.Fatalf("chunk=%d: output %q: ref count %d, batch count %d", chunk, fp, c, batFp[fp])
			}
		}
		if len(batFp) != len(refFp) {
			t.Fatalf("chunk=%d: distinct outputs: ref %d, batch %d", chunk, len(refFp), len(batFp))
		}
	}
}

// TestFeedBatchDrainsPending: tuples already in the §4.1 input buffer
// are older than the batch and must be processed first.
func TestFeedBatchDrainsPending(t *testing.T) {
	var out []Delta
	e := engine.MustNew(engine.Config{Plan: plan.MustLeftDeep(0, 1), Output: collect(&out)})
	e.Enqueue(ev(0, 7))
	e.FeedBatch([]workload.Event{ev(1, 7)})
	if len(out) != 1 {
		t.Fatalf("want the enqueued tuple drained before the batch (1 join result), got %d", len(out))
	}
	if got := e.Metrics().Input; got != 2 {
		t.Fatalf("Input = %d, want 2", got)
	}
}

// TestFeedBatchRecordsFill: the batch-fill histogram counts one
// observation per batch, valued at the batch length.
func TestFeedBatchRecordsFill(t *testing.T) {
	rec := &obs.Recorder{}
	e := engine.MustNew(engine.Config{Plan: plan.MustLeftDeep(0, 1), Obs: rec})
	evs := []workload.Event{ev(0, 1), ev(1, 1), ev(0, 2), ev(1, 2), ev(0, 3), ev(1, 3)}
	e.FeedBatch(evs[:3])
	e.FeedBatch(evs[3:])
	s := rec.Snapshot()
	if s.BatchFill.Count != 2 {
		t.Fatalf("BatchFill.Count = %d, want 2", s.BatchFill.Count)
	}
	if s.BatchFill.Sum != 6 {
		t.Fatalf("BatchFill.Sum = %d, want 6", s.BatchFill.Sum)
	}
}
