package engine

import (
	"encoding/gob"
	"fmt"
	"io"

	"jisc/internal/metrics"
	"jisc/internal/plan"
	"jisc/internal/tuple"
	"jisc/internal/window"
)

// Checkpointing serializes the engine's complete execution state —
// plan, windows, operator states including JISC's completeness
// metadata (incomplete flags, attempted keys, armed counters, birth
// ticks) — so a query can stop and resume exactly where it was, even
// in the middle of a lazy migration with states still incomplete.
// Code (strategy, theta predicate, output) is not serialized; the
// restoring process supplies it again through the Config.

// snapVersion guards the checkpoint format. Version 2 added the
// lifetime metrics counters, so a restored node's STATS continue from
// where the crashed one left off.
const snapVersion = 2

type tupleSnap struct {
	Key     tuple.Value
	Refs    []tuple.Ref
	Arrival uint64
	Oldest  uint64
}

func snapOf(t *tuple.Tuple) tupleSnap {
	return tupleSnap{Key: t.Key, Refs: t.Refs, Arrival: t.Arrival, Oldest: t.Oldest}
}

func (s tupleSnap) tuple() *tuple.Tuple {
	set := tuple.StreamSet(0)
	for _, r := range s.Refs {
		set = set.Add(r.Stream)
	}
	return &tuple.Tuple{Key: s.Key, Set: set, Refs: s.Refs, Arrival: s.Arrival, Oldest: s.Oldest}
}

type tableSnap struct {
	Set          tuple.StreamSet
	Complete     bool
	Attempted    []tuple.Value
	Pending      []tuple.Value
	CounterArmed bool
	CounterSide  tuple.StreamSet // zero when no counter side
	Entries      []tupleSnap
}

type listSnap struct {
	Set       tuple.StreamSet
	Complete  bool
	Attempted []tuple.Ref
	Entries   []tupleSnap
}

type windowSnap struct {
	Stream  tuple.StreamID
	Entries []tuple.Ref
	Keys    []tuple.Value
	Times   []uint64 // time windows only
}

type engineSnap struct {
	Version        int
	Plan           string
	Kind           int
	WindowSize     int
	TimeSpan       uint64
	Tick           uint64
	TransitionTick uint64
	Seqs           map[tuple.StreamID]uint64
	LastArrival    map[tuple.StreamID]map[tuple.Value]uint64
	Born           map[tuple.StreamSet]uint64
	Tables         []tableSnap
	Lists          []listSnap
	Windows        []windowSnap
	Probes         map[tuple.StreamSet]uint64
	Matches        map[tuple.StreamSet]uint64
	Counters       metrics.Snapshot
}

// Checkpoint writes the engine's execution state to w. The engine must
// be quiescent (no Feed in progress); input buffers must be drained
// first (call Drain).
func (e *Engine) Checkpoint(w io.Writer) error {
	if len(e.pending) > 0 {
		return fmt.Errorf("engine: checkpoint with %d buffered tuples; Drain first", len(e.pending))
	}
	snap := engineSnap{
		Version:        snapVersion,
		Plan:           e.plan.String(),
		Kind:           int(e.cfg.Kind),
		WindowSize:     e.cfg.WindowSize,
		TimeSpan:       e.cfg.TimeSpan,
		Tick:           e.tick,
		TransitionTick: e.transitionTick,
		Seqs:           e.seqs,
		LastArrival:    e.lastArrival,
		Born:           e.born,
		Probes:         map[tuple.StreamSet]uint64{},
		Matches:        map[tuple.StreamSet]uint64{},
		Counters:       e.met.Snapshot(),
	}
	for _, n := range e.Nodes() {
		snap.Probes[n.Set] = n.Probes
		snap.Matches[n.Set] = n.Matches
		switch {
		case n.St != nil:
			ts := tableSnap{Set: n.Set, Complete: n.St.Complete()}
			ts.Attempted = n.St.AttemptedKeys()
			ts.Pending, ts.CounterArmed = n.St.PendingKeys()
			if n.CounterSide != nil {
				ts.CounterSide = n.CounterSide.Set
			}
			n.St.Each(func(t *tuple.Tuple) bool {
				ts.Entries = append(ts.Entries, snapOf(t))
				return true
			})
			snap.Tables = append(snap.Tables, ts)
		case n.Ls != nil:
			ls := listSnap{Set: n.Set, Complete: n.Ls.Complete(), Attempted: n.Ls.AttemptedRefs()}
			n.Ls.Each(func(t *tuple.Tuple) bool {
				ls.Entries = append(ls.Entries, snapOf(t))
				return true
			})
			snap.Lists = append(snap.Lists, ls)
		}
	}
	for _, id := range e.plan.Streams.Streams() {
		ws := windowSnap{Stream: id}
		switch win := e.windows[id].(type) {
		case *window.TimeWindow:
			win.EachTimed(func(en window.Entry, ts uint64) bool {
				ws.Entries = append(ws.Entries, en.Ref)
				ws.Keys = append(ws.Keys, en.Key)
				ws.Times = append(ws.Times, ts)
				return true
			})
		case *window.Window:
			win.Each(func(en window.Entry) bool {
				ws.Entries = append(ws.Entries, en.Ref)
				ws.Keys = append(ws.Keys, en.Key)
				return true
			})
		}
		snap.Windows = append(snap.Windows, ws)
	}
	return gob.NewEncoder(w).Encode(snap)
}

// Restore rebuilds an engine from a checkpoint. cfg supplies the
// non-serializable parts (Strategy, Theta, Output, Now); its Plan is
// ignored (the checkpointed plan wins) and its Kind, WindowSize and
// TimeSpan must match the checkpoint.
func Restore(r io.Reader, cfg Config) (*Engine, error) {
	var snap engineSnap
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("engine: decoding checkpoint: %w", err)
	}
	if snap.Version != snapVersion {
		return nil, fmt.Errorf("engine: checkpoint snapVersion %d, this build reads %d (re-checkpoint with a matching build)", snap.Version, snapVersion)
	}
	p, err := plan.Parse(snap.Plan)
	if err != nil {
		return nil, fmt.Errorf("engine: checkpointed plan: %w", err)
	}
	if cfg.Kind != Kind(snap.Kind) {
		return nil, fmt.Errorf("engine: checkpoint kind %v, config kind %v", Kind(snap.Kind), cfg.Kind)
	}
	if cfg.WindowSize == 0 {
		cfg.WindowSize = snap.WindowSize
	}
	if cfg.WindowSize != snap.WindowSize || cfg.TimeSpan != snap.TimeSpan {
		return nil, fmt.Errorf("engine: window config mismatch with checkpoint")
	}
	cfg.Plan = p
	e, err := New(cfg)
	if err != nil {
		return nil, err
	}

	e.met.Restore(snap.Counters)
	e.tick = snap.Tick
	e.transitionTick = snap.TransitionTick
	for id, s := range snap.Seqs {
		e.seqs[id] = s
	}
	for id, m := range snap.LastArrival {
		e.lastArrival[id] = m
	}
	for set, born := range snap.Born {
		e.born[set] = born
	}

	nodes := map[tuple.StreamSet]*Node{}
	for _, n := range e.Nodes() {
		nodes[n.Set] = n
		n.Probes = snap.Probes[n.Set]
		n.Matches = snap.Matches[n.Set]
		n.Born = e.born[n.Set]
	}
	for _, ts := range snap.Tables {
		n, ok := nodes[ts.Set]
		if !ok || n.St == nil {
			return nil, fmt.Errorf("engine: checkpoint table %v has no matching operator", ts.Set)
		}
		n.St.Clear()
		for _, en := range ts.Entries {
			n.St.Insert(en.tuple())
		}
		n.St.RestoreMeta(ts.Complete, ts.Attempted, ts.Pending, ts.CounterArmed)
		if ts.CounterArmed && ts.CounterSide != 0 {
			side, ok := nodes[ts.CounterSide]
			if !ok {
				return nil, fmt.Errorf("engine: counter side %v missing", ts.CounterSide)
			}
			n.CounterSide = side
		}
	}
	for _, ls := range snap.Lists {
		n, ok := nodes[ls.Set]
		if !ok || n.Ls == nil {
			return nil, fmt.Errorf("engine: checkpoint list %v has no matching operator", ls.Set)
		}
		n.Ls.Clear()
		for _, en := range ls.Entries {
			n.Ls.Insert(en.tuple())
		}
		n.Ls.RestoreMeta(ls.Complete, ls.Attempted)
	}
	for _, ws := range snap.Windows {
		win, ok := e.windows[ws.Stream]
		if !ok {
			return nil, fmt.Errorf("engine: checkpoint window for unknown stream %d", ws.Stream)
		}
		for i, ref := range ws.Entries {
			var ts uint64
			if ws.Times != nil {
				ts = ws.Times[i]
			}
			if exp := win.Slide(ref, ws.Keys[i], ts); len(exp) != 0 {
				return nil, fmt.Errorf("engine: checkpoint window for stream %d overflowed on restore", ws.Stream)
			}
		}
	}
	return e, nil
}
