package engine

import (
	"fmt"
	"strings"

	"jisc/internal/tuple"
)

// Nodes returns the operator tree bottom-up (children before parents).
func (e *Engine) Nodes() []*Node {
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		walk(n.Left)
		walk(n.Right)
		out = append(out, n)
	}
	walk(e.root)
	return out
}

// NodeBySet returns the operator whose state covers set, or nil.
func (e *Engine) NodeBySet(set tuple.StreamSet) *Node {
	for _, n := range e.Nodes() {
		if n.Set == set {
			return n
		}
	}
	return nil
}

// DescribeStates renders each operator's state for diagnostics,
// bottom-up, one line per operator.
func (e *Engine) DescribeStates() string {
	var b strings.Builder
	for _, n := range e.Nodes() {
		switch {
		case n.St != nil:
			fmt.Fprintf(&b, "%v\n", n.St)
		case n.Ls != nil:
			status := "complete"
			if !n.Ls.Complete() {
				status = "incomplete"
			}
			fmt.Fprintf(&b, "List(%v %s size=%d)\n", n.Ls.Set, status, n.Ls.Size())
		}
	}
	return b.String()
}

// TotalStateSize sums the tuples stored across all operator states.
func (e *Engine) TotalStateSize() int {
	total := 0
	for _, n := range e.Nodes() {
		if n.St != nil {
			total += n.St.Size()
		} else if n.Ls != nil {
			total += n.Ls.Size()
		}
	}
	return total
}

// EachEntry visits the node's stored output tuples regardless of the
// backing state type (hash table or list), until fn returns false.
func (n *Node) EachEntry(fn func(*tuple.Tuple) bool) {
	if n.St != nil {
		n.St.Each(fn)
		return
	}
	n.Ls.Each(fn)
}
