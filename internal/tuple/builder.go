package tuple

import "sync"

// Chunk sizes for the Builder arenas. Tuples and refs are carved from
// these blocks; one chunk amortizes one heap allocation over many
// composites.
const (
	tupleChunkLen = 256
	refChunkLen   = 1024
)

// Builder constructs tuples out of chunked slice-backed arenas: each
// Tuple struct and its Refs backing array is carved from a shared
// block, so steady-state construction costs ~2 allocations per chunk
// instead of 2 per tuple. Tuples built this way are ordinary immutable
// *Tuple values — they escape into operator states and live as long as
// any state references them (which pins their chunk; acceptable for
// window-bounded states, where chunk-mates expire together).
//
// A Builder is not safe for concurrent use; each engine owns one.
// Builders are pooled: Acquire one per run, Release it when the run is
// done. Release never recycles memory that was handed out — only the
// unused tail of the current chunks travels back through the pool — so
// released tuples remain valid forever.
type Builder struct {
	tuples []Tuple
	refs   []Ref
}

var builderPool = sync.Pool{New: func() any { return new(Builder) }}

// AcquireBuilder returns a pooled Builder.
func AcquireBuilder() *Builder { return builderPool.Get().(*Builder) }

// Release returns the builder to the pool. The builder must not be
// used afterwards; tuples it produced stay valid.
func (b *Builder) Release() { builderPool.Put(b) }

// alloc carves one Tuple struct from the tuple chunk. The chunk is
// only ever extended in place up to its capacity and then abandoned
// for a fresh one, so previously returned pointers are never moved.
func (b *Builder) alloc() *Tuple {
	if len(b.tuples) == cap(b.tuples) {
		b.tuples = make([]Tuple, 0, tupleChunkLen)
	}
	b.tuples = b.tuples[:len(b.tuples)+1]
	return &b.tuples[len(b.tuples)-1]
}

// allocRefs carves an n-ref backing array from the ref chunk, with
// capacity clamped so appends by a caller could never clobber a
// neighbor (Tuples are immutable; the clamp is defense in depth).
func (b *Builder) allocRefs(n int) []Ref {
	if cap(b.refs)-len(b.refs) < n {
		size := refChunkLen
		if n > size {
			size = n
		}
		b.refs = make([]Ref, 0, size)
	}
	start := len(b.refs)
	b.refs = b.refs[:start+n]
	return b.refs[start : start+n : start+n]
}

// Base builds a base tuple for stream id with per-stream sequence seq,
// join key key, arriving at global tick arrival — NewBase out of the
// arena.
func (b *Builder) Base(id StreamID, seq uint64, key Value, arrival uint64) *Tuple {
	t := b.alloc()
	refs := b.allocRefs(1)
	refs[0] = Ref{Stream: id, Seq: seq}
	*t = Tuple{
		Key:     key,
		Set:     NewStreamSet(id),
		Refs:    refs,
		Arrival: arrival,
		Oldest:  arrival,
	}
	return t
}

// Join merges two tuples with disjoint stream sets into a composite
// allocated from the arena. Semantics match the package-level Join.
func (b *Builder) Join(x, y *Tuple) *Tuple {
	t := b.alloc()
	joinInto(t, b.allocRefs(len(x.Refs)+len(y.Refs)), x, y)
	return t
}

// JoinTheta merges two tuples for a theta (non-equi) join; the
// composite inherits the left key, as in the package-level JoinTheta.
func (b *Builder) JoinTheta(x, y *Tuple) *Tuple {
	t := b.Join(x, y)
	t.Key = x.Key
	return t
}
