// Package tuple defines the data model shared by every operator in the
// repository: base stream tuples, composite join tuples, stream
// identifiers, and the stream-set bitmask that identifies join states.
//
// The paper's execution model (JISC, EDBT 2014, §2.1) uses symmetric
// hash joins on a single join attribute; a tuple therefore carries one
// Key used for hashing/probing plus an opaque payload. Composite
// tuples additionally carry provenance references (stream, sequence
// number) so that sliding-window eviction can locate and remove every
// intermediate result containing an expired base tuple.
package tuple

import (
	"fmt"
	"math/bits"
	"sort"
	"strconv"
	"strings"
)

// Value is the domain of the join attribute.
type Value int64

// StreamID identifies a base input stream. Streams are numbered
// densely from zero; at most MaxStreams streams participate in a query.
type StreamID uint8

// MaxStreams bounds the number of base streams in one query. The
// bound exists only because StreamSet is a 64-bit bitmask; the paper's
// largest experiments use 21 streams (20 joins).
const MaxStreams = 64

// StreamSet is a bitmask over StreamIDs. A join state is identified by
// the set of base streams its tuples cover (Definition 1 classifies a
// new-plan state as complete iff its stream set existed in the old
// plan), so StreamSet doubles as the state identifier.
type StreamSet uint64

// NewStreamSet returns the set containing the given streams.
func NewStreamSet(ids ...StreamID) StreamSet {
	var s StreamSet
	for _, id := range ids {
		s = s.Add(id)
	}
	return s
}

// Add returns s with id included.
func (s StreamSet) Add(id StreamID) StreamSet { return s | 1<<id }

// Has reports whether id is in the set.
func (s StreamSet) Has(id StreamID) bool { return s&(1<<id) != 0 }

// Union returns the union of both sets.
func (s StreamSet) Union(o StreamSet) StreamSet { return s | o }

// Intersects reports whether the two sets share a stream.
func (s StreamSet) Intersects(o StreamSet) bool { return s&o != 0 }

// Contains reports whether every stream of o is in s.
func (s StreamSet) Contains(o StreamSet) bool { return s&o == o }

// Count returns the number of streams in the set.
func (s StreamSet) Count() int { return bits.OnesCount64(uint64(s)) }

// Streams returns the member StreamIDs in ascending order.
func (s StreamSet) Streams() []StreamID {
	out := make([]StreamID, 0, s.Count())
	for s != 0 {
		id := StreamID(bits.TrailingZeros64(uint64(s)))
		out = append(out, id)
		s &^= 1 << id
	}
	return out
}

// String renders the set like "{0,2,5}".
func (s StreamSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, id := range s.Streams() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", id)
	}
	b.WriteByte('}')
	return b.String()
}

// Ref identifies one base tuple: the stream it arrived on and its
// per-stream sequence number. Refs are the unit of provenance used by
// window eviction and by Parallel Track duplicate elimination.
type Ref struct {
	Stream StreamID
	Seq    uint64
}

func (r Ref) String() string { return fmt.Sprintf("%d#%d", r.Stream, r.Seq) }

// Tuple is either a base stream tuple (one Ref) or a composite join
// result (the sorted union of its constituents' Refs). All
// constituents of an equi-join composite share the same Key.
//
// Tuples are immutable after construction; operators share pointers
// freely across states.
type Tuple struct {
	// Key is the join attribute value (the paper's "ID").
	Key Value
	// Set is the bitmask of base streams covered by this tuple.
	Set StreamSet
	// Refs holds the provenance of every constituent base tuple,
	// sorted by (Stream, Seq).
	Refs []Ref
	// Payload carries opaque non-join attributes of a base tuple.
	// Composites keep payloads reachable through their constituents
	// only, so Payload is nil for composites.
	Payload []Value
	// Arrival is the global arrival tick of the newest constituent;
	// it orders tuples across streams and marks pre- vs
	// post-transition tuples.
	Arrival uint64
	// Oldest is the global arrival tick of the oldest constituent.
	// Parallel Track uses it for O(1) duplicate elimination (a result
	// is produced by every plan instance born before its oldest
	// constituent) and for the old-plan discard check.
	Oldest uint64
}

// NewBase builds a base tuple for stream id with per-stream sequence
// seq, join key key, arriving at global tick arrival.
func NewBase(id StreamID, seq uint64, key Value, arrival uint64) *Tuple {
	return &Tuple{
		Key:     key,
		Set:     NewStreamSet(id),
		Refs:    []Ref{{Stream: id, Seq: seq}},
		Arrival: arrival,
		Oldest:  arrival,
	}
}

// Join merges two tuples with disjoint stream sets into a composite.
// It panics if the stream sets overlap, which would indicate a plan
// wiring bug rather than a data condition. Hot paths should prefer a
// Builder, which amortizes the composite's allocations through chunked
// arenas; Join remains for one-off construction.
func Join(a, b *Tuple) *Tuple {
	t := &Tuple{}
	joinInto(t, make([]Ref, len(a.Refs)+len(b.Refs)), a, b)
	return t
}

// joinInto fills out with the composite of a and b, using refs (of
// exactly len(a.Refs)+len(b.Refs)) as the provenance backing store.
// Each input's Refs are sorted by (Stream, Seq), so the union is a
// linear merge — no per-composite sort.
func joinInto(out *Tuple, refs []Ref, a, b *Tuple) {
	if a.Set.Intersects(b.Set) {
		panic(fmt.Sprintf("tuple: joining overlapping stream sets %v and %v", a.Set, b.Set))
	}
	mergeRefs(refs, a.Refs, b.Refs)
	arrival := a.Arrival
	if b.Arrival > arrival {
		arrival = b.Arrival
	}
	oldest := a.Oldest
	if b.Oldest < oldest {
		oldest = b.Oldest
	}
	*out = Tuple{
		Key:     a.Key,
		Set:     a.Set.Union(b.Set),
		Refs:    refs,
		Arrival: arrival,
		Oldest:  oldest,
	}
}

// mergeRefs merges the sorted ref slices a and b into dst, which must
// have length len(a)+len(b).
func mergeRefs(dst, a, b []Ref) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		if x.Stream < y.Stream || (x.Stream == y.Stream && x.Seq < y.Seq) {
			dst[k] = x
			i++
		} else {
			dst[k] = y
			j++
		}
		k++
	}
	k += copy(dst[k:], a[i:])
	copy(dst[k:], b[j:])
}

// JoinTheta merges two tuples for a theta (non-equi) join. The
// composite inherits the left key; theta-join states are scanned, not
// hashed, so the key choice only matters for diagnostics.
func JoinTheta(a, b *Tuple) *Tuple {
	t := Join(a, b)
	t.Key = a.Key
	return t
}

// Contains reports whether the tuple's provenance includes ref.
func (t *Tuple) Contains(ref Ref) bool {
	// Refs are sorted by (Stream, Seq); binary search.
	i := sort.Search(len(t.Refs), func(i int) bool {
		r := t.Refs[i]
		if r.Stream != ref.Stream {
			return r.Stream > ref.Stream
		}
		return r.Seq >= ref.Seq
	})
	return i < len(t.Refs) && t.Refs[i] == ref
}

// RefOf returns the provenance ref for stream id and whether the tuple
// covers that stream.
func (t *Tuple) RefOf(id StreamID) (Ref, bool) {
	if !t.Set.Has(id) {
		return Ref{}, false
	}
	for _, r := range t.Refs {
		if r.Stream == id {
			return r, true
		}
	}
	return Ref{}, false
}

// IsBase reports whether the tuple is a single-stream base tuple.
func (t *Tuple) IsBase() bool { return len(t.Refs) == 1 }

// Fingerprint returns a canonical string identifying the output tuple
// by its provenance. Two output tuples produced by different execution
// strategies (or different plans over the same streams) are the same
// logical result iff their fingerprints match, which is how the
// cross-strategy equivalence tests and the Parallel Track duplicate
// eliminator compare outputs.
func (t *Tuple) Fingerprint() string {
	// Hot path: Parallel Track dedups every root emission through this
	// string, and the sim harness fingerprints every output of every
	// engine. Append digits directly instead of going through fmt.
	buf := make([]byte, 0, 8*len(t.Refs))
	for i, r := range t.Refs {
		if i > 0 {
			buf = append(buf, '|')
		}
		buf = strconv.AppendUint(buf, uint64(r.Stream), 10)
		buf = append(buf, '#')
		buf = strconv.AppendUint(buf, r.Seq, 10)
	}
	return string(buf)
}

func (t *Tuple) String() string {
	return fmt.Sprintf("Tuple(key=%d set=%v refs=%s)", t.Key, t.Set, t.Fingerprint())
}
