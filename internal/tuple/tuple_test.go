package tuple

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"jisc/internal/testseed"
)

func TestStreamSetBasics(t *testing.T) {
	s := NewStreamSet(0, 3, 7)
	if got := s.Count(); got != 3 {
		t.Fatalf("Count = %d, want 3", got)
	}
	for _, id := range []StreamID{0, 3, 7} {
		if !s.Has(id) {
			t.Errorf("Has(%d) = false, want true", id)
		}
	}
	for _, id := range []StreamID{1, 2, 4, 63} {
		if s.Has(id) {
			t.Errorf("Has(%d) = true, want false", id)
		}
	}
	if got := s.String(); got != "{0,3,7}" {
		t.Errorf("String = %q, want {0,3,7}", got)
	}
}

func TestStreamSetStreamsSorted(t *testing.T) {
	s := NewStreamSet(9, 1, 5, 2)
	ids := s.Streams()
	if !sort.SliceIsSorted(ids, func(i, j int) bool { return ids[i] < ids[j] }) {
		t.Fatalf("Streams() not sorted: %v", ids)
	}
	if len(ids) != 4 {
		t.Fatalf("len(Streams) = %d, want 4", len(ids))
	}
}

func TestStreamSetUnionIntersects(t *testing.T) {
	a := NewStreamSet(0, 1)
	b := NewStreamSet(2, 3)
	if a.Intersects(b) {
		t.Error("disjoint sets reported as intersecting")
	}
	u := a.Union(b)
	if u.Count() != 4 {
		t.Errorf("union count = %d, want 4", u.Count())
	}
	if !u.Contains(a) || !u.Contains(b) {
		t.Error("union does not contain both operands")
	}
	if a.Contains(u) {
		t.Error("subset reported as containing superset")
	}
}

func TestStreamSetEmpty(t *testing.T) {
	var s StreamSet
	if s.Count() != 0 || len(s.Streams()) != 0 {
		t.Fatal("empty set not empty")
	}
	if s.String() != "{}" {
		t.Errorf("String = %q, want {}", s.String())
	}
}

// Property: union count equals count of the merged member lists.
func TestStreamSetUnionCountProperty(t *testing.T) {
	f := func(a, b uint64) bool {
		sa, sb := StreamSet(a), StreamSet(b)
		seen := map[StreamID]bool{}
		for _, id := range sa.Streams() {
			seen[id] = true
		}
		for _, id := range sb.Streams() {
			seen[id] = true
		}
		return sa.Union(sb).Count() == len(seen)
	}
	if err := quick.Check(f, testseed.Quick(t, 1, 0)); err != nil {
		t.Fatal(err)
	}
}

// Property: Add is idempotent and monotone.
func TestStreamSetAddProperty(t *testing.T) {
	f := func(base uint64, id uint8) bool {
		s := StreamSet(base)
		id &= MaxStreams - 1
		once := s.Add(StreamID(id))
		twice := once.Add(StreamID(id))
		return once == twice && once.Has(StreamID(id)) && once.Contains(s)
	}
	if err := quick.Check(f, testseed.Quick(t, 1, 0)); err != nil {
		t.Fatal(err)
	}
}

func TestNewBase(t *testing.T) {
	b := NewBase(2, 17, 99, 1234)
	if !b.IsBase() {
		t.Fatal("base tuple not IsBase")
	}
	if b.Key != 99 || b.Arrival != 1234 {
		t.Fatalf("fields mangled: %+v", b)
	}
	ref, ok := b.RefOf(2)
	if !ok || ref != (Ref{Stream: 2, Seq: 17}) {
		t.Fatalf("RefOf(2) = %v, %v", ref, ok)
	}
	if _, ok := b.RefOf(3); ok {
		t.Fatal("RefOf(3) should be absent")
	}
}

func TestJoinMergesProvenance(t *testing.T) {
	a := NewBase(1, 5, 7, 10)
	b := NewBase(0, 3, 7, 20)
	j := Join(a, b)
	if j.Key != 7 {
		t.Errorf("Key = %d, want 7", j.Key)
	}
	if j.Set != NewStreamSet(0, 1) {
		t.Errorf("Set = %v", j.Set)
	}
	want := []Ref{{0, 3}, {1, 5}}
	if len(j.Refs) != 2 || j.Refs[0] != want[0] || j.Refs[1] != want[1] {
		t.Errorf("Refs = %v, want %v", j.Refs, want)
	}
	if j.Arrival != 20 {
		t.Errorf("Arrival = %d, want max 20", j.Arrival)
	}
	if !j.IsBase() == false && j.IsBase() {
		t.Error("composite reported as base")
	}
}

func TestJoinPanicsOnOverlap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Join on overlapping sets did not panic")
		}
	}()
	a := NewBase(1, 5, 7, 10)
	b := NewBase(1, 6, 7, 20)
	Join(a, b)
}

func TestJoinTheta(t *testing.T) {
	a := NewBase(0, 1, 10, 1)
	b := NewBase(1, 1, 99, 2)
	j := JoinTheta(a, b)
	if j.Key != 10 {
		t.Errorf("theta composite key = %d, want left key 10", j.Key)
	}
	if j.Set != NewStreamSet(0, 1) {
		t.Errorf("Set = %v", j.Set)
	}
}

func TestContains(t *testing.T) {
	a := NewBase(0, 1, 5, 1)
	b := NewBase(3, 9, 5, 2)
	c := NewBase(1, 4, 5, 3)
	j := Join(Join(a, b), c)
	for _, r := range []Ref{{0, 1}, {3, 9}, {1, 4}} {
		if !j.Contains(r) {
			t.Errorf("Contains(%v) = false", r)
		}
	}
	for _, r := range []Ref{{0, 2}, {2, 9}, {1, 5}} {
		if j.Contains(r) {
			t.Errorf("Contains(%v) = true", r)
		}
	}
}

func TestFingerprintCanonical(t *testing.T) {
	a := NewBase(0, 1, 5, 1)
	b := NewBase(1, 2, 5, 2)
	c := NewBase(2, 3, 5, 3)
	// Different join orders must yield identical fingerprints.
	left := Join(Join(a, b), c)
	right := Join(a, Join(b, c))
	rev := Join(c, Join(b, a))
	if left.Fingerprint() != right.Fingerprint() || left.Fingerprint() != rev.Fingerprint() {
		t.Fatalf("fingerprints differ: %q %q %q",
			left.Fingerprint(), right.Fingerprint(), rev.Fingerprint())
	}
	if left.Fingerprint() != "0#1|1#2|2#3" {
		t.Errorf("fingerprint = %q", left.Fingerprint())
	}
}

// Property: joining any permutation of base tuples yields the same
// provenance fingerprint (join output identity is order-independent).
func TestJoinOrderIndependenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(testseed.Seed(t, 42)))
	for iter := 0; iter < 200; iter++ {
		n := 2 + rng.Intn(6)
		bases := make([]*Tuple, n)
		for i := range bases {
			bases[i] = NewBase(StreamID(i), uint64(rng.Intn(1000)), 7, uint64(i))
		}
		join := func(order []int) string {
			acc := bases[order[0]]
			for _, i := range order[1:] {
				acc = Join(acc, bases[i])
			}
			return acc.Fingerprint()
		}
		fwd := make([]int, n)
		for i := range fwd {
			fwd[i] = i
		}
		perm := rng.Perm(n)
		if join(fwd) != join(perm) {
			t.Fatalf("fingerprint differs for permutation %v", perm)
		}
	}
}

func TestRefString(t *testing.T) {
	r := Ref{Stream: 4, Seq: 77}
	if r.String() != "4#77" {
		t.Errorf("Ref.String = %q", r.String())
	}
}

func BenchmarkJoin(b *testing.B) {
	x := NewBase(0, 1, 5, 1)
	y := NewBase(1, 2, 5, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Join(x, y)
	}
}

func BenchmarkContains(b *testing.B) {
	parts := make([]*Tuple, 8)
	for i := range parts {
		parts[i] = NewBase(StreamID(i), uint64(i), 5, uint64(i))
	}
	acc := parts[0]
	for _, p := range parts[1:] {
		acc = Join(acc, p)
	}
	ref := Ref{Stream: 7, Seq: 7}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		acc.Contains(ref)
	}
}

func TestOldestTracking(t *testing.T) {
	a := NewBase(0, 1, 5, 10)
	b := NewBase(1, 1, 5, 3)
	c := NewBase(2, 1, 5, 7)
	j := Join(Join(a, b), c)
	if j.Oldest != 3 {
		t.Fatalf("Oldest = %d, want 3", j.Oldest)
	}
	if j.Arrival != 10 {
		t.Fatalf("Arrival = %d, want 10", j.Arrival)
	}
	if a.Oldest != 10 {
		t.Fatalf("base Oldest = %d, want its own arrival", a.Oldest)
	}
}
