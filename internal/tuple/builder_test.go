package tuple

import (
	"testing"
)

func TestBuilderBaseMatchesNewBase(t *testing.T) {
	b := AcquireBuilder()
	defer b.Release()
	got := b.Base(3, 17, 42, 99)
	want := NewBase(3, 17, 42, 99)
	if got.Key != want.Key || got.Set != want.Set || got.Arrival != want.Arrival ||
		got.Oldest != want.Oldest || len(got.Refs) != 1 || got.Refs[0] != want.Refs[0] {
		t.Fatalf("Builder.Base = %v, want %v", got, want)
	}
}

func TestBuilderJoinMatchesJoin(t *testing.T) {
	b := AcquireBuilder()
	defer b.Release()
	// Interleaved streams so the ref merge is exercised.
	x := b.Join(b.Base(0, 5, 7, 10), b.Base(2, 3, 7, 20))
	y := b.Base(1, 9, 7, 30)
	got := b.Join(x, y)
	want := Join(Join(NewBase(0, 5, 7, 10), NewBase(2, 3, 7, 20)), NewBase(1, 9, 7, 30))
	if got.Fingerprint() != want.Fingerprint() {
		t.Fatalf("Fingerprint = %s, want %s", got.Fingerprint(), want.Fingerprint())
	}
	if got.Set != want.Set || got.Arrival != want.Arrival || got.Oldest != want.Oldest {
		t.Fatalf("Builder.Join = %+v, want %+v", got, want)
	}
	for i := 1; i < len(got.Refs); i++ {
		a, c := got.Refs[i-1], got.Refs[i]
		if a.Stream > c.Stream || (a.Stream == c.Stream && a.Seq >= c.Seq) {
			t.Fatalf("Refs not sorted: %v", got.Refs)
		}
	}
}

func TestBuilderJoinTheta(t *testing.T) {
	b := AcquireBuilder()
	defer b.Release()
	x := b.Base(0, 1, 11, 1)
	y := b.Base(1, 1, 22, 2)
	// Theta composites inherit the left key.
	got := b.JoinTheta(x, y)
	if got.Key != 11 {
		t.Fatalf("theta key = %d, want 11", got.Key)
	}
	got = b.JoinTheta(y, x)
	if got.Key != 22 {
		t.Fatalf("theta key = %d, want 22", got.Key)
	}
}

func TestBuilderJoinOverlapPanics(t *testing.T) {
	b := AcquireBuilder()
	defer b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on overlapping stream sets")
		}
	}()
	b.Join(b.Base(0, 1, 1, 1), b.Base(0, 2, 1, 2))
}

// TestBuilderChunkTurnover verifies tuples built before a chunk
// turnover stay intact after it: the arena must never recycle memory
// it handed out.
func TestBuilderChunkTurnover(t *testing.T) {
	b := AcquireBuilder()
	defer b.Release()
	first := b.Base(0, 1, 123, 1)
	var composites []*Tuple
	for i := 0; i < 4*tupleChunkLen; i++ {
		l := b.Base(0, uint64(2*i+2), Value(i), uint64(i))
		r := b.Base(1, uint64(2*i+3), Value(i), uint64(i))
		composites = append(composites, b.Join(l, r))
	}
	if first.Key != 123 || first.Refs[0] != (Ref{Stream: 0, Seq: 1}) {
		t.Fatalf("early tuple corrupted after chunk turnover: %v", first)
	}
	for i, c := range composites {
		if c.Key != Value(i) || len(c.Refs) != 2 {
			t.Fatalf("composite %d corrupted: %v", i, c)
		}
	}
}

func TestMergeRefs(t *testing.T) {
	a := []Ref{{0, 1}, {2, 5}, {4, 1}}
	c := []Ref{{1, 9}, {2, 4}, {3, 7}}
	dst := make([]Ref, 6)
	mergeRefs(dst, a, c)
	want := []Ref{{0, 1}, {1, 9}, {2, 4}, {2, 5}, {3, 7}, {4, 1}}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("mergeRefs = %v, want %v", dst, want)
		}
	}
	// One side empty.
	mergeRefs(dst[:3], nil, a)
	if dst[0] != a[0] || dst[2] != a[2] {
		t.Fatalf("mergeRefs empty-left = %v", dst[:3])
	}
}
