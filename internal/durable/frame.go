package durable

import "jisc/internal/storage"

// The frame layer — len:u32 | crc:u32 | payload, little endian, CRC32C
// over the payload — is shared by every log-structured file this
// repository writes: the write-ahead log (record.go), the catalog log,
// and the state-spill segments of internal/statestore. It lives in
// internal/storage (a leaf package below both durable and statestore);
// these aliases keep the on-disk discipline reachable under its
// historical names.

// FrameHeader is the byte length of a frame's len+crc header.
const FrameHeader = storage.FrameHeader

// AppendFramed appends payload to dst as one self-delimiting frame.
func AppendFramed(dst, payload []byte) []byte { return storage.AppendFramed(dst, payload) }

// SealFrame patches the FrameHeader bytes at start, treating
// dst[start+FrameHeader:] as the frame's payload. Callers that build
// the payload in place (reserving the header first) avoid the copy
// AppendFramed would make.
func SealFrame(dst []byte, start int) { storage.SealFrame(dst, start) }

// NextFrame validates the frame at the head of data and returns its
// payload and total encoded length. ok is false when data starts with
// a torn or corrupted frame. max bounds the accepted payload length.
func NextFrame(data []byte, max int) (payload []byte, n int, ok bool) {
	return storage.NextFrame(data, max)
}
