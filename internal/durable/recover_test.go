package durable

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"jisc/internal/core"
	"jisc/internal/engine"
	"jisc/internal/plan"
	"jisc/internal/tuple"
	"jisc/internal/workload"
)

// testWorkload is a three-stream join feed with full-match keys: every
// key appears on all three streams, so the join produces output, and a
// mid-stream migration exercises JISC's lazy completion metadata.
func testWorkload(n int) []workload.Event {
	evs := make([]workload.Event, 0, 3*n)
	for k := 0; k < n; k++ {
		for s := 0; s < 3; s++ {
			evs = append(evs, workload.Event{Stream: tuple.StreamID(s), Key: tuple.Value(k % 8)})
		}
	}
	return evs
}

func testEngineConfig(out engine.Output) engine.Config {
	return engine.Config{
		Plan:       plan.MustLeftDeep(0, 1, 2),
		WindowSize: 1000,
		Strategy:   core.New(),
		Output:     out,
	}
}

func deltaLine(d engine.Delta) string {
	return fmt.Sprintf("%v %d %s", d.Retraction, d.Tuple.Key, d.Tuple.Fingerprint())
}

// TestRecoverShardEquivalence is the core recovery-equivalence proof
// at the engine level: feed a workload with a mid-stream migration,
// "crash" at every interesting cut point, recover, finish the
// workload, and require the recovered run's output and counters to be
// byte-identical to an uninterrupted run.
func TestRecoverShardEquivalence(t *testing.T) {
	const migrateAt = 9 // mid-stream, with states already populated
	evs := testWorkload(8)
	p2 := plan.MustLeftDeep(2, 0, 1)

	// Uninterrupted reference.
	var refOut []string
	refEng, err := engine.New(testEngineConfig(func(d engine.Delta) { refOut = append(refOut, deltaLine(d)) }))
	if err != nil {
		t.Fatal(err)
	}
	for i, ev := range evs {
		if i == migrateAt {
			if err := refEng.Migrate(p2); err != nil {
				t.Fatal(err)
			}
		}
		refEng.Feed(ev)
	}
	refMet := refEng.Metrics()
	refPlan := refEng.Plan().String()
	refEng.Close()

	cuts := []int{0, 1, migrateAt - 1, migrateAt, migrateAt + 1, migrateAt + 2, len(evs) - 1, len(evs)}
	for _, cut := range cuts {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			root := t.TempDir()
			dir := ShardDir(root, 0)
			opts := Options{Dir: root, Fsync: FsyncAlways}.WithDefaults()

			// Phase 1: live run to the cut, logging before applying —
			// exactly the runtime's discipline.
			var liveOut []string
			liveEng, err := engine.New(testEngineConfig(func(d engine.Delta) { liveOut = append(liveOut, deltaLine(d)) }))
			if err != nil {
				t.Fatal(err)
			}
			if err := opts.FS.MkdirAll(dir); err != nil {
				t.Fatal(err)
			}
			log, err := openLogAt(opts, dir, nil, &Stats{}, 0, nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < cut; i++ {
				if i == migrateAt {
					if _, err := log.AppendMigrate(p2.String()); err != nil {
						t.Fatal(err)
					}
					if err := liveEng.Migrate(p2); err != nil {
						t.Fatal(err)
					}
				}
				if _, err := log.AppendFeed(evs[i].Stream, evs[i].Key); err != nil {
					t.Fatal(err)
				}
				liveEng.Feed(evs[i])
			}
			log.Close() // crash: under FsyncAlways disk state equals a kill -9
			liveEng.Close()

			// Phase 2: recover and finish.
			stats := &Stats{}
			var postOut []string
			rec, err := RecoverShard(opts, 0, testEngineConfig(func(d engine.Delta) { postOut = append(postOut, deltaLine(d)) }), nil, stats)
			if err != nil {
				t.Fatal(err)
			}
			defer rec.Log.Close()
			defer rec.Engine.Close()
			wantReplayed := cut
			if cut > migrateAt {
				wantReplayed++ // the MIGRATE record
			}
			if rec.Replayed != wantReplayed {
				t.Fatalf("Replayed = %d, want %d", rec.Replayed, wantReplayed)
			}
			// Replay must not re-emit pre-crash results.
			if len(postOut) != 0 {
				t.Fatalf("replay emitted %d results", len(postOut))
			}
			for i := cut; i < len(evs); i++ {
				if i == migrateAt {
					if _, err := rec.Log.AppendMigrate(p2.String()); err != nil {
						t.Fatal(err)
					}
					if err := rec.Engine.Migrate(p2); err != nil {
						t.Fatal(err)
					}
				}
				if _, err := rec.Log.AppendFeed(evs[i].Stream, evs[i].Key); err != nil {
					t.Fatal(err)
				}
				rec.Engine.Feed(evs[i])
			}

			got := append(liveOut, postOut...)
			if len(got) != len(refOut) {
				t.Fatalf("outputs: got %d, want %d", len(got), len(refOut))
			}
			for i := range refOut {
				if got[i] != refOut[i] {
					t.Fatalf("output %d = %q, want %q", i, got[i], refOut[i])
				}
			}
			m := rec.Engine.Metrics()
			if m.Input != refMet.Input || m.Output != refMet.Output ||
				m.Probes != refMet.Probes || m.Inserts != refMet.Inserts ||
				m.Completions != refMet.Completions || m.CompletedEntries != refMet.CompletedEntries ||
				m.Evictions != refMet.Evictions || m.Transitions != refMet.Transitions {
				t.Fatalf("counters diverged:\n got %+v\nwant %+v", m, refMet)
			}
			if got, want := rec.Engine.Plan().String(), refPlan; got != want {
				t.Fatalf("plan = %s, want %s", got, want)
			}
		})
	}
}

// Recovery from checkpoint + WAL tail must land on the same state as
// replay-only recovery, and must delete the segments the checkpoint
// made dead.
func TestRecoverShardFromCheckpointPlusTail(t *testing.T) {
	evs := testWorkload(16)
	root := t.TempDir()
	opts := Options{Dir: root, Fsync: FsyncAlways, SegmentBytes: 128}.WithDefaults()
	dir := ShardDir(root, 0)
	if err := opts.FS.MkdirAll(dir); err != nil {
		t.Fatal(err)
	}
	log, err := openLogAt(opts, dir, nil, &Stats{}, 0, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(testEngineConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	ckptAt := len(evs) / 2
	for i, ev := range evs {
		if _, err := log.AppendFeed(ev.Stream, ev.Key); err != nil {
			t.Fatal(err)
		}
		eng.Feed(ev)
		if i == ckptAt {
			var buf bytes.Buffer
			if err := eng.Checkpoint(&buf); err != nil {
				t.Fatal(err)
			}
			if err := WriteShardCheckpoint(opts, 0, log.LastSeq(), buf.Bytes()); err != nil {
				t.Fatal(err)
			}
			// Deliberately skip TruncateThrough: recovery must delete
			// the dead segments itself (a crash can interrupt
			// truncation at any point).
		}
	}
	wantMet := eng.Metrics()
	log.Close()
	eng.Close()

	stats := &Stats{}
	rec, err := RecoverShard(opts, 0, testEngineConfig(nil), nil, stats)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Log.Close()
	defer rec.Engine.Close()
	if rec.CheckpointSeq == 0 {
		t.Fatal("recovery ignored the checkpoint")
	}
	if rec.Replayed != len(evs)-1-ckptAt {
		t.Fatalf("Replayed = %d, want %d", rec.Replayed, len(evs)-1-ckptAt)
	}
	m := rec.Engine.Metrics()
	if m.Input != wantMet.Input || m.Output != wantMet.Output || m.Inserts != wantMet.Inserts {
		t.Fatalf("counters diverged:\n got %+v\nwant %+v", m, wantMet)
	}
	// Dead segments (fully covered by the checkpoint) must be gone.
	segs, err := listSegments(OS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, sg := range segs[:len(segs)-1] {
		if sg.first <= rec.CheckpointSeq {
			// A surviving non-active segment must extend past the
			// checkpoint.
			next := segs[1].first
			if next <= rec.CheckpointSeq+1 {
				t.Fatalf("dead segment %s survived recovery", sg.name)
			}
		}
	}
	if rec.Log.LastSeq() != uint64(len(evs)) {
		t.Fatalf("LastSeq = %d, want %d", rec.Log.LastSeq(), len(evs))
	}
}

func TestRecoverShardDetectsGap(t *testing.T) {
	root := t.TempDir()
	dir := ShardDir(root, 0)
	if err := OS().MkdirAll(dir); err != nil {
		t.Fatal(err)
	}
	var data []byte
	var err error
	for _, seq := range []uint64{1, 2, 4} { // 3 is missing
		data, err = appendFrame(data, Record{Kind: KindFeed, Seq: seq, Stream: 0, Key: 1})
		if err != nil {
			t.Fatal(err)
		}
	}
	f, err := OS().Create(filepath.Join(dir, segmentName(1)))
	if err != nil {
		t.Fatal(err)
	}
	f.Write(data)
	f.Close()
	_, err = RecoverShard(Options{Dir: root}, 0, testEngineConfig(nil), nil, nil)
	if err == nil || !strings.Contains(err.Error(), "gap") {
		t.Fatalf("err = %v, want a WAL gap error", err)
	}
}

// A corrupt tail mid-log — with newer sealed segments after it — is
// not a torn write, it's data loss; recovery must refuse rather than
// silently drop acknowledged records.
func TestRecoverShardRefusesMidLogCorruption(t *testing.T) {
	root := t.TempDir()
	opts := Options{Dir: root, Fsync: FsyncAlways, SegmentBytes: 64}.WithDefaults()
	dir := ShardDir(root, 0)
	if err := opts.FS.MkdirAll(dir); err != nil {
		t.Fatal(err)
	}
	log, err := openLogAt(opts, dir, nil, &Stats{}, 0, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := log.AppendFeed(0, tuple.Value(i)); err != nil {
			t.Fatal(err)
		}
	}
	log.Close()
	segs, err := listSegments(OS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("need ≥2 segments, have %d", len(segs))
	}
	first := filepath.Join(dir, segs[0].name)
	n, err := OS().Size(first)
	if err != nil {
		t.Fatal(err)
	}
	if err := OS().Truncate(first, n-1); err != nil {
		t.Fatal(err)
	}
	_, err = RecoverShard(opts, 0, testEngineConfig(nil), nil, nil)
	if err == nil || !strings.Contains(err.Error(), "refusing") {
		t.Fatalf("err = %v, want a refusal", err)
	}
}

// A torn tail on the LAST segment is the expected crash signature:
// recovery truncates it at a record boundary and proceeds.
func TestRecoverShardTruncatesTornActiveTail(t *testing.T) {
	root := t.TempDir()
	opts := Options{Dir: root, Fsync: FsyncAlways}.WithDefaults()
	dir := ShardDir(root, 0)
	if err := opts.FS.MkdirAll(dir); err != nil {
		t.Fatal(err)
	}
	log, err := openLogAt(opts, dir, nil, &Stats{}, 0, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := log.AppendFeed(0, tuple.Value(i)); err != nil {
			t.Fatal(err)
		}
	}
	log.Close()
	seg := filepath.Join(dir, segmentName(1))
	n, err := OS().Size(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := OS().Truncate(seg, n-3); err != nil {
		t.Fatal(err)
	}
	stats := &Stats{}
	rec, err := RecoverShard(opts, 0, testEngineConfig(nil), nil, stats)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Log.Close()
	defer rec.Engine.Close()
	if rec.Replayed != 5 {
		t.Fatalf("Replayed = %d, want 5 (the 6th record was torn)", rec.Replayed)
	}
	if rec.TornBytes == 0 || stats.TornTruncations.Load() != 1 {
		t.Fatalf("torn tail not accounted: bytes=%d truncations=%d", rec.TornBytes, stats.TornTruncations.Load())
	}
	// The log must continue from the surviving sequence.
	seq, err := rec.Log.AppendFeed(0, 99)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 6 {
		t.Fatalf("next seq = %d, want 6 (reusing the torn record's slot)", seq)
	}
}

// TestRecoverShardFeedBatchFrames proves batch-frame replay: a log of
// FEEDB records (interleaved with per-event FEED frames and a
// MIGRATE) recovers to the same engine state — counters, plan, and
// subsequent outputs — as a per-event run of the same schedule.
func TestRecoverShardFeedBatchFrames(t *testing.T) {
	evs := testWorkload(8)
	p2 := plan.MustLeftDeep(2, 0, 1)
	const batch = 5
	const migrateAt = 10 // a batch boundary of `batch`

	// Reference: per-event, never crashed.
	var refOut []string
	refEng, err := engine.New(testEngineConfig(func(d engine.Delta) { refOut = append(refOut, deltaLine(d)) }))
	if err != nil {
		t.Fatal(err)
	}
	for i, ev := range evs {
		if i == migrateAt {
			if err := refEng.Migrate(p2); err != nil {
				t.Fatal(err)
			}
		}
		refEng.Feed(ev)
	}
	refMet := refEng.Metrics()
	refEng.Close()

	// Live run: batch-granular appends and feeds, then a "crash".
	root := t.TempDir()
	dir := ShardDir(root, 0)
	opts := Options{Dir: root, Fsync: FsyncAlways}.WithDefaults()
	if err := opts.FS.MkdirAll(dir); err != nil {
		t.Fatal(err)
	}
	log, err := openLogAt(opts, dir, nil, &Stats{}, 0, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	liveEng, err := engine.New(testEngineConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	records, events := 0, 0
	for i := 0; i < len(evs); i += batch {
		if i == migrateAt {
			if _, err := log.AppendMigrate(p2.String()); err != nil {
				t.Fatal(err)
			}
			if err := liveEng.Migrate(p2); err != nil {
				t.Fatal(err)
			}
			records++
		}
		j := min(i+batch, len(evs))
		if j-i == 1 {
			// Mix in a per-event frame so both kinds coexist in one log.
			if _, err := log.AppendFeed(evs[i].Stream, evs[i].Key); err != nil {
				t.Fatal(err)
			}
		} else if _, err := log.AppendFeedBatch(evs[i:j]); err != nil {
			t.Fatal(err)
		}
		liveEng.FeedBatch(evs[i:j])
		records++
		events += j - i
	}
	liveMet := liveEng.Metrics()
	log.Close()
	liveEng.Close()

	if liveMet.Input != refMet.Input || liveMet.Output != refMet.Output {
		t.Fatalf("live batched run diverged before the crash: Input=%d Output=%d, want %d and %d",
			liveMet.Input, liveMet.Output, refMet.Input, refMet.Output)
	}

	stats := &Stats{}
	var postOut []string
	rec, err := RecoverShard(opts, 0, testEngineConfig(func(d engine.Delta) { postOut = append(postOut, deltaLine(d)) }), nil, stats)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Log.Close()
	defer rec.Engine.Close()
	if rec.Replayed != records {
		t.Fatalf("Replayed = %d records, want %d", rec.Replayed, records)
	}
	if rec.ReplayedEvents != events || stats.RecoveredEvents.Load() != uint64(events) {
		t.Fatalf("ReplayedEvents = %d (stats %d), want %d", rec.ReplayedEvents, stats.RecoveredEvents.Load(), events)
	}
	if len(postOut) != 0 {
		t.Fatalf("replay re-emitted %d results", len(postOut))
	}
	recMet := rec.Engine.Metrics()
	if recMet.Input != refMet.Input || recMet.Output != refMet.Output || recMet.Transitions != refMet.Transitions {
		t.Fatalf("recovered counters diverge: Input=%d Output=%d Transitions=%d, want %d %d %d",
			recMet.Input, recMet.Output, recMet.Transitions, refMet.Input, refMet.Output, refMet.Transitions)
	}
	if got := rec.Engine.Plan().String(); got != p2.String() {
		t.Fatalf("recovered plan %q, want %q", got, p2.String())
	}
	// Recovered engine behaves identically going forward: a full-match
	// key emits the same number of joins as the reference would.
	rec.Engine.SetOutput(func(d engine.Delta) { postOut = append(postOut, deltaLine(d)) })
	rec.Engine.FeedBatch(testWorkload(1))
	if len(postOut) == 0 {
		t.Fatal("recovered engine produced no output on a full-match batch")
	}
}
