package durable

import (
	"hash/crc32"
	"testing"

	"jisc/internal/tuple"
	"jisc/internal/workload"
)

func mustFrames(t *testing.T, recs ...Record) []byte {
	t.Helper()
	var data []byte
	var err error
	for _, r := range recs {
		data, err = appendFrame(data, r)
		if err != nil {
			t.Fatalf("appendFrame(%+v): %v", r, err)
		}
	}
	return data
}

func sampleRecords() []Record {
	return []Record{
		{Kind: KindFeed, Seq: 1, Stream: 0, Key: 42},
		{Kind: KindFeed, Seq: 2, Stream: 2, Key: -7},
		{Kind: KindMigrate, Seq: 3, Plan: "((0 2) 1)"},
		{Kind: KindCreate, Seq: 4, Name: "sensors", Window: 1024, Plan: "(0 1)"},
		{Kind: KindDrop, Seq: 5, Name: "sensors"},
		{Kind: KindFeed, Seq: 6, Stream: 1, Key: 1 << 40},
		{Kind: KindFeedBatch, Seq: 7, Events: []workload.Event{
			{Stream: 0, Key: 9}, {Stream: 2, Key: -3}, {Stream: 1, Key: 1 << 50},
		}},
		{Kind: KindAuto, Seq: 8, Name: "sensors", Auto: true},
		{Kind: KindAuto, Seq: 9, Name: "sensors", Auto: false},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	want := sampleRecords()
	data := mustFrames(t, want...)
	var got []Record
	valid, err := scanFrames(data, func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if valid != int64(len(data)) {
		t.Fatalf("valid = %d, want %d", valid, len(data))
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestTornTailPrefixSweep is the torn-write contract, proven
// exhaustively: every byte-length prefix of a valid log either replays
// completely or is truncated at a record boundary — never a decode
// error, never a misparsed record.
func TestTornTailPrefixSweep(t *testing.T) {
	recs := sampleRecords()
	data := mustFrames(t, recs...)
	// boundary[i] is the offset at which record i ends.
	var boundaries []int64
	if _, err := func() (int64, error) {
		var off int64
		for i := range recs {
			one := mustFrames(t, recs[i])
			off += int64(len(one))
			boundaries = append(boundaries, off)
		}
		return off, nil
	}(); err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut <= len(data); cut++ {
		var got []Record
		valid, err := scanFrames(data[:cut], func(r Record) error {
			got = append(got, r)
			return nil
		})
		if err != nil {
			t.Fatalf("cut %d: scanFrames error: %v", cut, err)
		}
		// The valid prefix must be the largest record boundary ≤ cut.
		var wantValid int64
		wantRecs := 0
		for i, b := range boundaries {
			if b <= int64(cut) {
				wantValid = b
				wantRecs = i + 1
			}
		}
		if valid != wantValid {
			t.Fatalf("cut %d: valid = %d, want %d", cut, valid, wantValid)
		}
		if len(got) != wantRecs {
			t.Fatalf("cut %d: decoded %d records, want %d", cut, len(got), wantRecs)
		}
		for i := 0; i < wantRecs; i++ {
			if !got[i].Equal(recs[i]) {
				t.Fatalf("cut %d: record %d = %+v, want %+v", cut, i, got[i], recs[i])
			}
		}
	}
}

// TestCorruptionBitFlipSweep flips one bit at every byte offset and
// asserts the CRC catches it: the scan stops cleanly at or before the
// corrupted record, and every record it does deliver is intact.
func TestCorruptionBitFlipSweep(t *testing.T) {
	recs := sampleRecords()
	data := mustFrames(t, recs...)
	for pos := 0; pos < len(data); pos++ {
		corrupt := append([]byte(nil), data...)
		corrupt[pos] ^= 0x40
		var got []Record
		valid, err := scanFrames(corrupt, func(r Record) error {
			got = append(got, r)
			return nil
		})
		if err != nil {
			// A flip can never keep the CRC valid, so the only hard
			// error scanFrames may raise (CRC-valid-but-undecodable)
			// must not fire.
			t.Fatalf("pos %d: hard error: %v", pos, err)
		}
		if valid > int64(pos) {
			t.Fatalf("pos %d: scan claimed %d valid bytes past the corruption", pos, valid)
		}
		for i, r := range got {
			if !r.Equal(recs[i]) {
				t.Fatalf("pos %d: delivered corrupted record %d: %+v", pos, i, r)
			}
		}
	}
}

// A frame whose CRC validates but whose payload does not decode is
// damage no truncation can explain — scanFrames must refuse rather
// than silently drop acknowledged records.
func TestUndecodableValidCRCIsHardError(t *testing.T) {
	payload := []byte{0xFF, 0, 0, 0, 0, 0, 0, 0, 1} // kind 255, seq 1
	var data []byte
	data = le.AppendUint32(data, uint32(len(payload)))
	data = le.AppendUint32(data, crc32.Checksum(payload, castagnoli))
	data = append(data, payload...)
	if _, err := scanFrames(data, func(Record) error { return nil }); err == nil {
		t.Fatal("undecodable record with a valid CRC passed the scan")
	}
}

func TestFrameRejectsOversizedPayloads(t *testing.T) {
	if _, err := appendFrame(nil, Record{
		Kind: KindMigrate, Seq: 1, Plan: string(make([]byte, maxPayload)),
	}); err == nil {
		t.Fatal("oversized record accepted")
	}
}

func TestFeedBatchEncodeBounds(t *testing.T) {
	if _, err := appendFrame(nil, Record{Kind: KindFeedBatch, Seq: 1}); err == nil {
		t.Fatal("empty feedbatch accepted")
	}
	if _, err := appendFrame(nil, Record{
		Kind: KindFeedBatch, Seq: 1, Events: make([]workload.Event, MaxBatchEvents+1),
	}); err == nil {
		t.Fatal("feedbatch longer than the u16 count accepted")
	}
	full := Record{Kind: KindFeedBatch, Seq: 1, Events: make([]workload.Event, MaxBatchEvents)}
	data := mustFrames(t, full)
	var got []Record
	if _, err := scanFrames(data, func(r Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !got[0].Equal(full) {
		t.Fatalf("max-size feedbatch did not round-trip (%d records)", len(got))
	}
}

// TestFeedBatchZeroCountRejected pins the canonical-encoding rule the
// fuzzer relies on: a zero-count batch frame (which the encoder can
// never produce) must fail decode rather than yield an empty record.
func TestFeedBatchZeroCountRejected(t *testing.T) {
	data := mustFrames(t, Record{Kind: KindFeedBatch, Seq: 1, Events: []workload.Event{{Stream: 0, Key: 1}}})
	// Rewrite the count to zero, truncate the body, and re-patch CRC+len.
	payload := data[frameHeader : frameHeader+9+2] // kind+seq+count, no events
	le.PutUint16(payload[9:], 0)
	frame := append(append([]byte{}, data[:frameHeader]...), payload...)
	le.PutUint32(frame, uint32(len(payload)))
	patchCRC(frame)
	if _, err := scanFrames(frame, func(Record) error { return nil }); err == nil {
		t.Fatal("zero-count feedbatch frame decoded")
	}
}

func TestRecordKinds(t *testing.T) {
	// StreamID fits its field; the sweep tests depend on this staying
	// byte-sized.
	var _ = tuple.StreamID(0)
	if KindFeed == 0 {
		t.Fatal("KindFeed must be non-zero: a zero-filled torn frame may not decode as a record")
	}
}

// TestAutoBadStateByteRejected pins KindAuto's canonical encoding: the
// trailing state byte is 0 or 1, anything else is corruption or skew.
func TestAutoBadStateByteRejected(t *testing.T) {
	data := mustFrames(t, Record{Kind: KindAuto, Seq: 1, Name: "q", Auto: true})
	data[len(data)-1] = 2
	patchCRC(data)
	if _, err := scanFrames(data, func(Record) error { return nil }); err == nil {
		t.Fatal("auto frame with state byte 2 decoded")
	}
}
