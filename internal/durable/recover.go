package durable

import (
	"bytes"
	"fmt"
	"io"
	"path/filepath"
	"time"

	"jisc/internal/engine"
	"jisc/internal/obs"
	"jisc/internal/plan"
	"jisc/internal/workload"
)

// ShardRecovery is the result of recovering one shard: a live engine
// positioned exactly where the shard was when the process died, and
// its log reopened for appending.
type ShardRecovery struct {
	Engine *engine.Engine
	Log    *Log
	// Replayed counts WAL records applied on top of the checkpoint;
	// ReplayedEvents counts the input tuples those records carried (a
	// feedbatch record contributes its whole batch).
	Replayed       int
	ReplayedEvents int
	// CheckpointSeq is the WAL sequence the loaded checkpoint covered
	// (0 when the shard recovered from the log alone).
	CheckpointSeq uint64
	// TornBytes is the size of the torn tail truncated from the last
	// segment, if any.
	TornBytes int64
}

// RecoverShard rebuilds shard `shard` of a durable runtime from
// opts.Dir: it loads the newest valid checkpoint (validating envelope
// magic, version, and CRC — torn or corrupt checkpoints fall back to
// the previous one), deterministically replays the WAL tail through
// the engine with output suppressed (those results were already
// emitted before the crash), truncates any torn tail at a record
// boundary, and reopens the log for appending. cfg supplies the
// engine's non-serializable parts; a fresh engine is built from it
// when the shard has no state on disk. Replay includes MIGRATE
// records, so a shard that died mid-lazy-migration resumes with the
// same incomplete-state metadata it would have had.
//
// Safe to call concurrently for different shards — recovery of an
// N-shard runtime runs one goroutine per shard.
func RecoverShard(opts Options, shard int, cfg engine.Config, rec *obs.Recorder, stats *Stats) (*ShardRecovery, error) {
	opts = opts.WithDefaults()
	fs := opts.FS
	dir := ShardDir(opts.Dir, shard)
	if err := fs.MkdirAll(dir); err != nil {
		return nil, err
	}

	ckptSeq, payload, _, err := latestCheckpoint(fs, dir)
	if err != nil {
		return nil, fmt.Errorf("durable: shard %d: listing checkpoints: %w", shard, err)
	}
	out := cfg.Output
	cfg.Output = nil // replayed results were already emitted pre-crash
	var eng *engine.Engine
	if payload != nil {
		eng, err = engine.Restore(bytes.NewReader(payload), cfg)
		if err != nil {
			return nil, fmt.Errorf("durable: shard %d: restoring checkpoint %s: %w", shard, checkpointName(ckptSeq), err)
		}
	} else {
		eng, err = engine.New(cfg)
		if err != nil {
			return nil, err
		}
	}

	segs, err := listSegments(fs, dir)
	if err != nil {
		return nil, fmt.Errorf("durable: shard %d: listing segments: %w", shard, err)
	}
	res := &ShardRecovery{Engine: eng, CheckpointSeq: ckptSeq}
	next := ckptSeq + 1
	var live []segment
	var activeSize int64
	for i, sg := range segs {
		path := filepath.Join(dir, sg.name)
		// A segment is dead when the next one starts at or below the
		// checkpoint horizon — deleting it resumes a truncation that a
		// crash interrupted.
		if i+1 < len(segs) && segs[i+1].first <= ckptSeq+1 {
			if err := fs.Remove(path); err != nil {
				return nil, fmt.Errorf("durable: shard %d: removing dead segment %s: %w", shard, sg.name, err)
			}
			continue
		}
		data, err := readFile(fs, path)
		if err != nil {
			return nil, fmt.Errorf("durable: shard %d: reading %s: %w", shard, sg.name, err)
		}
		valid, err := scanFrames(data, func(r Record) error {
			if r.Seq <= ckptSeq {
				return nil // covered by the checkpoint
			}
			if r.Seq != next {
				return fmt.Errorf("durable: shard %d: WAL gap in %s: expected seq %d, found %d", shard, sg.name, next, r.Seq)
			}
			if err := applyRecord(eng, r); err != nil {
				return fmt.Errorf("durable: shard %d: replaying seq %d: %w", shard, r.Seq, err)
			}
			next++
			res.Replayed++
			switch r.Kind {
			case KindFeed:
				res.ReplayedEvents++
			case KindFeedBatch:
				res.ReplayedEvents += len(r.Events)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		if valid < int64(len(data)) {
			if i != len(segs)-1 {
				return nil, fmt.Errorf("durable: shard %d: segment %s is corrupt mid-log (%d of %d bytes valid) but %d newer segment(s) follow — refusing to drop acknowledged records",
					shard, sg.name, valid, len(data), len(segs)-1-i)
			}
			if err := fs.Truncate(path, valid); err != nil {
				return nil, fmt.Errorf("durable: shard %d: truncating torn tail of %s: %w", shard, sg.name, err)
			}
			if err := fs.SyncDir(dir); err != nil {
				return nil, err
			}
			res.TornBytes = int64(len(data)) - valid
			if stats != nil {
				stats.TornTruncations.Add(1)
			}
			activeSize = valid
		} else {
			activeSize = int64(len(data))
		}
		live = append(live, sg)
	}
	eng.SetOutput(out)

	lastSeq := next - 1
	if lastSeq < ckptSeq {
		lastSeq = ckptSeq
	}
	res.Log, err = openLogAt(opts, dir, rec, stats, lastSeq, live, activeSize)
	if err != nil {
		eng.Close()
		return nil, fmt.Errorf("durable: shard %d: reopening log: %w", shard, err)
	}
	if stats != nil {
		stats.RecoveredEvents.Add(uint64(res.ReplayedEvents))
	}
	return res, nil
}

// applyRecord replays one shard-log record through the engine.
func applyRecord(eng *engine.Engine, r Record) error {
	switch r.Kind {
	case KindFeed:
		eng.Feed(workload.Event{Stream: r.Stream, Key: r.Key})
		return nil
	case KindFeedBatch:
		eng.FeedBatch(r.Events)
		return nil
	case KindMigrate:
		p, err := plan.Parse(r.Plan)
		if err != nil {
			return fmt.Errorf("parsing logged plan %q: %w", r.Plan, err)
		}
		return eng.Migrate(p)
	default:
		return fmt.Errorf("record kind %d does not belong in a shard log", r.Kind)
	}
}

// MarkRecovery records the wall-clock duration of a whole recovery
// (all shards) in stats.
func MarkRecovery(stats *Stats, start time.Time) {
	if stats != nil {
		stats.RecoveryNs.Store(uint64(time.Since(start)))
	}
}

func readFile(fs FS, path string) ([]byte, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}
