package durable

import "jisc/internal/storage"

// The filesystem abstraction and its implementations (OS, in-memory,
// crash-injecting) moved to internal/storage so the state-spill tier
// can share them without importing this package — durable depends on
// the engine for recovery, and the engine depends on the spill tier.
// The historical names stay available here as aliases; existing
// callers never see the move.

// FS abstracts the filesystem operations the durability layer
// performs. See storage.FS.
type FS = storage.FS

// File is a writable log or checkpoint file. See storage.File.
type File = storage.File

// OS returns the real filesystem.
func OS() FS { return storage.OS() }

// ErrCrashed is returned by a CrashFS once its write budget is
// exhausted: the simulated machine has lost power.
var ErrCrashed = storage.ErrCrashed

// CrashFS wraps an FS and simulates power loss at a chosen byte
// offset. See storage.CrashFS.
type CrashFS = storage.CrashFS

// NewCrashFS wraps inner with a write budget of budget bytes.
func NewCrashFS(inner FS, budget int64) *CrashFS {
	return storage.NewCrashFS(inner, budget)
}
