package durable

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestSnapshotEnvelopeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.snap")
	payload := []byte("engine state bytes")
	if err := WriteSnapshotFile(OS(), path, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshotFile(OS(), path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload = %q", got)
	}
}

func TestSnapshotEnvelopeRejectsDamage(t *testing.T) {
	payload := []byte("engine state bytes")
	env := encodeEnvelope(payload)
	cases := []struct {
		name string
		data []byte
		want string // substring of the error
	}{
		{"short", env[:envHeader-1], "torn"},
		{"magic", append([]byte("NOTASNAP"), env[8:]...), "magic"},
		{"truncated", env[:len(env)-3], "truncated"},
		{"flipped", func() []byte {
			d := append([]byte(nil), env...)
			d[len(d)-1] ^= 1
			return d
		}(), "CRC"},
	}
	for _, tc := range cases {
		if _, err := decodeEnvelope(tc.data); err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestCheckpointAtomicUnderCrash proves the temp-file + rename
// discipline: whatever byte the power fails at, a reader afterwards
// sees either the previous checkpoint or the new one — never a torn
// file under a checkpoint name.
func TestCheckpointAtomicUnderCrash(t *testing.T) {
	oldPayload := []byte("old engine state")
	newPayload := []byte("new engine state, rather longer than the old one")

	// Size an uninterrupted write to bound the budget sweep.
	probe := t.TempDir()
	opts := Options{Dir: probe}.WithDefaults()
	if err := WriteShardCheckpoint(opts, 0, 1, oldPayload); err != nil {
		t.Fatal(err)
	}
	full := int64(len(encodeEnvelope(newPayload))) + 1

	for budget := int64(0); budget <= full; budget++ {
		dir := t.TempDir()
		opts := Options{Dir: dir}.WithDefaults()
		if err := WriteShardCheckpoint(opts, 0, 1, oldPayload); err != nil {
			t.Fatal(err)
		}
		crashOpts := opts
		crashOpts.FS = NewCrashFS(OS(), budget)
		// The crashing write may fail; that's the point.
		err := WriteShardCheckpoint(crashOpts, 0, 2, newPayload)

		seq, payload, _, lerr := latestCheckpoint(OS(), ShardDir(dir, 0))
		if lerr != nil {
			t.Fatalf("budget %d: latestCheckpoint: %v", budget, lerr)
		}
		switch {
		case seq == 1 && bytes.Equal(payload, oldPayload):
			// Crash before the rename: the old checkpoint survives.
		case seq == 2 && bytes.Equal(payload, newPayload):
			// The new checkpoint landed completely.
			if err != nil && budget < full {
				// Acceptable: the write succeeded through the rename
				// and crashed during a later step (prune, dir sync).
				continue
			}
		default:
			t.Fatalf("budget %d: recovered seq %d payload %q (write err %v)", budget, seq, payload, err)
		}
	}
}

// KeepCheckpoints bounds disk use: the newest N survive, everything
// older is pruned.
func TestCheckpointPruning(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, KeepCheckpoints: 2}.WithDefaults()
	for seq := uint64(1); seq <= 5; seq++ {
		if err := WriteShardCheckpoint(opts, 0, seq, []byte{byte(seq)}); err != nil {
			t.Fatal(err)
		}
	}
	names, err := OS().ReadDir(ShardDir(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	var ckpts []uint64
	for _, name := range names {
		if seq, ok := parseCheckpointName(name); ok {
			ckpts = append(ckpts, seq)
		}
	}
	if len(ckpts) != 2 || ckpts[0] != 4 || ckpts[1] != 5 {
		t.Fatalf("surviving checkpoints = %v, want [4 5]", ckpts)
	}
}

// A torn newest checkpoint must not poison recovery: latestCheckpoint
// falls back to the previous valid one.
func TestLatestCheckpointFallsBackPastCorruption(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir}.WithDefaults()
	if err := WriteShardCheckpoint(opts, 0, 1, []byte("good")); err != nil {
		t.Fatal(err)
	}
	// Hand-plant a corrupt newer checkpoint, bypassing the atomic
	// writer (as a buggy copy or partial scp might).
	bad := filepath.Join(ShardDir(dir, 0), checkpointName(9))
	f, err := OS().Create(bad)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("JISCSNAPgarbage")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	seq, payload, skipped, err := latestCheckpoint(OS(), ShardDir(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 || string(payload) != "good" || skipped != 1 {
		t.Fatalf("seq=%d payload=%q skipped=%d", seq, payload, skipped)
	}
}
