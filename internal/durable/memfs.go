package durable

import "jisc/internal/storage"

// MemFS is an in-memory FS for fault-injection sweeps at scale. It
// moved to internal/storage with the rest of the filesystem layer; the
// alias keeps the historical name working.
type MemFS = storage.MemFS

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS { return storage.NewMemFS() }
