package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// The catalog is the server-level log of query topology: one CREATE
// record per CREATE command, one DROP per DROP, in command order. On
// restart the server folds the catalog to the live query set and
// recreates each query, whose own per-shard logs then restore its
// state. CREATE/DROP are rare control operations, so the catalog
// always fsyncs — there is no batching window in which a CREATE could
// be acknowledged and lost.

// CatalogEntry is one live query after folding the catalog.
type CatalogEntry struct {
	Name   string
	Window int
	// Plan is the plan the query was CREATEd with. Later migrations
	// live in the query's own shard logs, not here.
	Plan string
}

// Catalog is the open, appendable catalog log.
type Catalog struct {
	fs   FS
	path string
	dir  string

	mu     sync.Mutex
	f      File
	seq    uint64
	buf    []byte
	closed bool
}

// CatalogPath returns the catalog file under the durability root.
func CatalogPath(root string) string { return filepath.Join(root, "catalog.wal") }

// OpenCatalog opens (creating if needed) the catalog under opts.Dir,
// replays it, truncates any torn tail at a record boundary, and
// returns the surviving log, the folded live query set in creation
// order, and the folded autopilot state — the set of query names whose
// last AUTO toggle was ON and that were not dropped afterwards.
func OpenCatalog(opts Options, stats *Stats) (*Catalog, []CatalogEntry, map[string]bool, error) {
	opts = opts.WithDefaults()
	fs := opts.FS
	if err := fs.MkdirAll(opts.Dir); err != nil {
		return nil, nil, nil, err
	}
	path := CatalogPath(opts.Dir)
	c := &Catalog{fs: fs, path: path, dir: opts.Dir}

	var entries []CatalogEntry
	auto := make(map[string]bool)
	data, err := readFile(fs, path)
	if err == nil {
		valid, serr := scanFrames(data, func(r Record) error {
			if r.Seq != c.seq+1 {
				return fmt.Errorf("durable: catalog gap: expected seq %d, found %d", c.seq+1, r.Seq)
			}
			c.seq = r.Seq
			switch r.Kind {
			case KindCreate:
				entries = append(entries, CatalogEntry{Name: r.Name, Window: r.Window, Plan: r.Plan})
			case KindDrop:
				for i, e := range entries {
					if e.Name == r.Name {
						entries = append(entries[:i], entries[i+1:]...)
						break
					}
				}
				// A dropped query takes its autopilot state with it; a
				// re-CREATE of the name starts with AUTO off.
				delete(auto, r.Name)
			case KindAuto:
				if r.Auto {
					auto[r.Name] = true
				} else {
					delete(auto, r.Name)
				}
			default:
				return fmt.Errorf("durable: record kind %d does not belong in the catalog", r.Kind)
			}
			return nil
		})
		if serr != nil {
			return nil, nil, nil, serr
		}
		if valid < int64(len(data)) {
			if err := fs.Truncate(path, valid); err != nil {
				return nil, nil, nil, fmt.Errorf("durable: truncating torn catalog tail: %w", err)
			}
			if stats != nil {
				stats.TornTruncations.Add(1)
			}
		}
		if stats != nil {
			stats.RecoveredEvents.Add(c.seq)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, nil, nil, err
	}

	f, err := fs.OpenAppend(path)
	if err != nil {
		return nil, nil, nil, err
	}
	c.f = f
	return c, entries, auto, nil
}

// AppendCreate durably logs a query creation before it is
// acknowledged.
func (c *Catalog) AppendCreate(name string, window int, plan string) error {
	return c.append(Record{Kind: KindCreate, Name: name, Window: window, Plan: plan})
}

// AppendDrop durably logs a query removal.
func (c *Catalog) AppendDrop(name string) error {
	return c.append(Record{Kind: KindDrop, Name: name})
}

// AppendAuto durably logs an autopilot toggle for a query.
func (c *Catalog) AppendAuto(name string, on bool) error {
	return c.append(Record{Kind: KindAuto, Name: name, Auto: on})
}

func (c *Catalog) append(r Record) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrLogClosed
	}
	r.Seq = c.seq + 1
	buf, err := appendFrame(c.buf[:0], r)
	if err != nil {
		return err
	}
	c.buf = buf
	if _, err := c.f.Write(buf); err != nil {
		return err
	}
	if err := c.f.Sync(); err != nil {
		return err
	}
	c.seq = r.Seq
	return nil
}

// Close closes the catalog file.
func (c *Catalog) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.f.Close()
}
