// Package durable is the durability subsystem: a per-shard write-ahead
// log, incremental background checkpoints, and crash recovery with
// deterministic replay.
//
// JISC's value proposition is that join state is expensive to rebuild —
// the paper completes states lazily precisely because recomputing them
// eagerly stalls the query. A production node therefore cannot treat
// that state as ephemeral: before this package, a crash of jiscd lost
// every window, every hash table, and every in-flight completion
// episode. The durability layer closes that gap with the classic
// WAL + checkpoint discipline:
//
//   - Every mutating event (FEED, MIGRATE, and at the server level
//     CREATE/DROP) is appended to a binary framed log before it is
//     acknowledged. Each record carries a CRC32C, so a torn write at
//     the tail is detected and truncated at a record boundary instead
//     of poisoning recovery.
//   - Logs are per shard: shards never exchange state (the runtime
//     hash-partitions by join key), so each shard's log + checkpoint
//     pair recovers independently and in parallel.
//   - Periodic checkpoints reuse engine.Checkpoint — which serializes
//     JISC's completeness metadata (incomplete flags, attempted keys,
//     armed counters, birth ticks) — and are written atomically
//     (temp file + rename + directory fsync). A checkpoint at sequence
//     number S makes every WAL segment whose records are all ≤ S dead;
//     dead segments are deleted, bounding both disk use and replay
//     time.
//   - Recovery loads the newest checkpoint that validates (magic,
//     version, CRC), then replays the WAL tail through the engine.
//     The engine is deterministic, so replaying the same events in the
//     same order — including a MIGRATE that left states incomplete —
//     reproduces exactly the state the node had when it died.
//
// Fsync policy is the durability/throughput dial: FsyncAlways fsyncs
// every append (no acked event is ever lost), FsyncBatch group-commits
// — appends land in a buffer that a background flusher writes and
// fsyncs every FlushInterval (bounded loss window, near-zero overhead),
// FsyncOff leaves persistence to the OS page cache.
//
// The CrashFS fault-injection filesystem cuts writes at a chosen byte
// offset, simulating power loss mid-write; the tests use it to prove
// torn-tail tolerance and checkpoint atomicity.
package durable

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// Policy selects when the write-ahead log fsyncs.
type Policy int

const (
	// FsyncBatch (the default) group-commits: appends are buffered and
	// a background flusher writes + fsyncs every FlushInterval. An
	// acknowledged event may be lost if the node crashes within the
	// flush window — the usual group-commit trade.
	FsyncBatch Policy = iota
	// FsyncAlways flushes and fsyncs on every append, before the
	// append returns: an acknowledged event is never lost.
	FsyncAlways
	// FsyncOff never fsyncs; buffered data is flushed to the OS on the
	// batch interval and on rotation/close, but persistence across a
	// machine crash is up to the page cache.
	FsyncOff
)

// String returns the flag spelling of the policy.
func (p Policy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncBatch:
		return "batch"
	case FsyncOff:
		return "off"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy parses the -fsync flag spelling.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(s) {
	case "always":
		return FsyncAlways, nil
	case "batch", "":
		return FsyncBatch, nil
	case "off", "none":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("durable: unknown fsync policy %q (want always, batch, or off)", s)
}

// Options configures the durability layer. The zero value (empty Dir)
// disables it.
type Options struct {
	// Dir is the durability directory. Empty disables durability.
	// Shard s of a runtime keeps its log segments and checkpoints
	// under Dir/shard-<s>/; the server keeps its query catalog at
	// Dir/catalog.wal and each query under Dir/q-<name>/.
	Dir string
	// Fsync selects the fsync policy (default FsyncBatch).
	Fsync Policy
	// FlushInterval is the group-commit window for FsyncBatch (and the
	// OS-flush period for FsyncOff). Default 2ms.
	FlushInterval time.Duration
	// SegmentBytes rotates the log to a new segment file once the
	// active one exceeds this size. Default 4 MiB.
	SegmentBytes int64
	// CheckpointInterval is the background checkpoint period. Zero
	// means the 15s default; negative disables background checkpoints
	// (manual CheckpointNow still works).
	CheckpointInterval time.Duration
	// KeepCheckpoints retains this many most-recent checkpoint files
	// per shard (default 2): the newest plus one fallback should the
	// newest turn out torn.
	KeepCheckpoints int
	// FS overrides the filesystem, for fault injection. Default: the
	// real one.
	FS FS
}

// Enabled reports whether the options turn durability on.
func (o Options) Enabled() bool { return o.Dir != "" }

// defaultFlushInterval etc. centralize the Options defaults.
const (
	defaultFlushInterval      = 2 * time.Millisecond
	defaultSegmentBytes       = 4 << 20
	defaultCheckpointInterval = 15 * time.Second
	defaultKeepCheckpoints    = 2
)

// WithDefaults returns o with every zero field replaced by its
// default.
func (o Options) WithDefaults() Options {
	if o.FlushInterval <= 0 {
		o.FlushInterval = defaultFlushInterval
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = defaultSegmentBytes
	}
	if o.CheckpointInterval == 0 {
		o.CheckpointInterval = defaultCheckpointInterval
	}
	if o.KeepCheckpoints <= 0 {
		o.KeepCheckpoints = defaultKeepCheckpoints
	}
	if o.FS == nil {
		o.FS = OS()
	}
	return o
}

// ShardDir returns the directory holding shard s's log and
// checkpoints under root.
func ShardDir(root string, shard int) string {
	return fmt.Sprintf("%s/shard-%d", root, shard)
}

// Stats are the durability counters of one runtime (shared by all its
// shard logs). Counters are atomic: the logs add from producer and
// flusher goroutines, monitoring snapshots concurrently.
type Stats struct {
	// Appends counts records appended; AppendBytes their framed size.
	Appends, AppendBytes atomic.Uint64
	// Fsyncs counts fsync calls (group commits under FsyncBatch).
	Fsyncs atomic.Uint64
	// Rotations counts segment rollovers; SegmentsRemoved counts dead
	// segments deleted by checkpoint truncation.
	Rotations, SegmentsRemoved atomic.Uint64
	// Checkpoints counts checkpoints written; CheckpointFailures the
	// attempts that errored.
	Checkpoints, CheckpointFailures atomic.Uint64
	// RecoveredEvents counts input tuples replayed from the WAL at
	// startup (a feedbatch record contributes its whole batch);
	// TornTruncations counts torn log tails detected and truncated.
	RecoveredEvents, TornTruncations atomic.Uint64
	// RecoveryNs is the wall-clock duration of the last recovery.
	RecoveryNs atomic.Uint64
}

// Snapshot copies the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	if s == nil {
		return StatsSnapshot{}
	}
	return StatsSnapshot{
		Appends:            s.Appends.Load(),
		AppendBytes:        s.AppendBytes.Load(),
		Fsyncs:             s.Fsyncs.Load(),
		Rotations:          s.Rotations.Load(),
		SegmentsRemoved:    s.SegmentsRemoved.Load(),
		Checkpoints:        s.Checkpoints.Load(),
		CheckpointFailures: s.CheckpointFailures.Load(),
		RecoveredEvents:    s.RecoveredEvents.Load(),
		TornTruncations:    s.TornTruncations.Load(),
		RecoveryNs:         s.RecoveryNs.Load(),
	}
}

// StatsSnapshot is an immutable copy of Stats.
type StatsSnapshot struct {
	Appends, AppendBytes             uint64
	Fsyncs                           uint64
	Rotations, SegmentsRemoved       uint64
	Checkpoints, CheckpointFailures  uint64
	RecoveredEvents, TornTruncations uint64
	RecoveryNs                       uint64
}

// Add returns the element-wise sum (RecoveryNs takes the maximum — the
// per-query recoveries of one node overlap in wall time).
func (s StatsSnapshot) Add(o StatsSnapshot) StatsSnapshot {
	out := StatsSnapshot{
		Appends:            s.Appends + o.Appends,
		AppendBytes:        s.AppendBytes + o.AppendBytes,
		Fsyncs:             s.Fsyncs + o.Fsyncs,
		Rotations:          s.Rotations + o.Rotations,
		SegmentsRemoved:    s.SegmentsRemoved + o.SegmentsRemoved,
		Checkpoints:        s.Checkpoints + o.Checkpoints,
		CheckpointFailures: s.CheckpointFailures + o.CheckpointFailures,
		RecoveredEvents:    s.RecoveredEvents + o.RecoveredEvents,
		TornTruncations:    s.TornTruncations + o.TornTruncations,
		RecoveryNs:         s.RecoveryNs,
	}
	if o.RecoveryNs > out.RecoveryNs {
		out.RecoveryNs = o.RecoveryNs
	}
	return out
}
