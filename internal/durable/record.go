package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"jisc/internal/tuple"
	"jisc/internal/workload"
)

// The log is a sequence of self-delimiting frames:
//
//	frame   := len:u32 | crc:u32 | payload       (little endian)
//	payload := kind:u8 | seq:u64 | body
//
// crc is CRC32C (Castagnoli) over the payload, so a torn or corrupted
// tail is detected without trusting the length field alone. Bodies:
//
//	feed      := stream:u8 | key:u64
//	migrate   := planLen:u16 | plan bytes
//	create    := nameLen:u8 | name | window:u32 | planLen:u16 | plan
//	drop      := nameLen:u8 | name
//	feedbatch := count:u16 | count × (stream:u8 | key:u64)
//
// seq is the per-log record sequence number, assigned by the log on
// append, strictly increasing from 1 with no gaps. Checkpoints record
// the seq they cover; replay skips records at or below it.
//
// feedbatch (the FEEDB frame) carries a whole ingest batch under one
// seq and one fsync. Old logs written before it existed contain only
// per-event feed frames and decode unchanged; new logs may interleave
// both kinds freely.

// RecordKind discriminates log records.
type RecordKind uint8

const (
	// KindFeed is one input tuple.
	KindFeed RecordKind = iota + 1
	// KindMigrate is a plan transition (the plan's infix form).
	KindMigrate
	// KindCreate is a query creation (catalog log only).
	KindCreate
	// KindDrop is a query removal (catalog log only).
	KindDrop
	// KindFeedBatch is one ingest batch: N input tuples appended —
	// and fsynced — as a single record.
	KindFeedBatch
	// KindAuto is an autopilot toggle for a query (catalog log only):
	// AUTO ON/OFF survive restarts by folding the last toggle per name.
	KindAuto
)

// MaxBatchEvents is the most tuples one feedbatch record can carry
// (the count field is a u16). Callers with larger batches split them
// across records.
const MaxBatchEvents = 1<<16 - 1

// Record is one durable log entry. Which fields are meaningful depends
// on Kind.
type Record struct {
	Kind RecordKind
	Seq  uint64

	// Stream and Key carry a KindFeed tuple.
	Stream tuple.StreamID
	Key    tuple.Value

	// Plan is the plan's infix form for KindMigrate and KindCreate.
	Plan string
	// Name and Window identify a query for KindCreate / KindDrop.
	Name   string
	Window int

	// Events carries a KindFeedBatch batch, in arrival order. The
	// slice makes Record non-comparable with ==; use Equal.
	Events []workload.Event

	// Auto is the autopilot state a KindAuto record toggles Name to.
	Auto bool
}

// Equal reports whether two records are identical field for field.
func (r Record) Equal(o Record) bool {
	if r.Kind != o.Kind || r.Seq != o.Seq || r.Stream != o.Stream || r.Key != o.Key ||
		r.Plan != o.Plan || r.Name != o.Name || r.Window != o.Window || r.Auto != o.Auto {
		return false
	}
	if len(r.Events) != len(o.Events) {
		return false
	}
	for i := range r.Events {
		if r.Events[i] != o.Events[i] {
			return false
		}
	}
	return true
}

const (
	frameHeader = 8       // len + crc
	maxPayload  = 1 << 20 // sanity bound while scanning; real payloads are tiny
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

var le = binary.LittleEndian

// appendFrame encodes r as one frame onto buf.
func appendFrame(buf []byte, r Record) ([]byte, error) {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // header, patched below
	buf = append(buf, byte(r.Kind))
	buf = le.AppendUint64(buf, r.Seq)
	switch r.Kind {
	case KindFeed:
		buf = append(buf, byte(r.Stream))
		buf = le.AppendUint64(buf, uint64(r.Key))
	case KindMigrate:
		var err error
		if buf, err = appendString16(buf, r.Plan, "plan"); err != nil {
			return nil, err
		}
	case KindCreate:
		var err error
		if buf, err = appendString8(buf, r.Name, "name"); err != nil {
			return nil, err
		}
		buf = le.AppendUint32(buf, uint32(r.Window))
		if buf, err = appendString16(buf, r.Plan, "plan"); err != nil {
			return nil, err
		}
	case KindDrop:
		var err error
		if buf, err = appendString8(buf, r.Name, "name"); err != nil {
			return nil, err
		}
	case KindFeedBatch:
		if len(r.Events) == 0 {
			return nil, fmt.Errorf("durable: feedbatch record with no events")
		}
		if len(r.Events) > MaxBatchEvents {
			return nil, fmt.Errorf("durable: feedbatch of %d events exceeds %d", len(r.Events), MaxBatchEvents)
		}
		buf = le.AppendUint16(buf, uint16(len(r.Events)))
		for _, ev := range r.Events {
			buf = append(buf, byte(ev.Stream))
			buf = le.AppendUint64(buf, uint64(ev.Key))
		}
	case KindAuto:
		var err error
		if buf, err = appendString8(buf, r.Name, "name"); err != nil {
			return nil, err
		}
		on := byte(0)
		if r.Auto {
			on = 1
		}
		buf = append(buf, on)
	default:
		return nil, fmt.Errorf("durable: encoding unknown record kind %d", r.Kind)
	}
	SealFrame(buf, start)
	return buf, nil
}

func appendString8(buf []byte, s, what string) ([]byte, error) {
	if len(s) > 255 {
		return nil, fmt.Errorf("durable: %s longer than 255 bytes", what)
	}
	buf = append(buf, byte(len(s)))
	return append(buf, s...), nil
}

func appendString16(buf []byte, s, what string) ([]byte, error) {
	if len(s) > 1<<16-1 {
		return nil, fmt.Errorf("durable: %s longer than 65535 bytes", what)
	}
	buf = le.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...), nil
}

// decodePayload decodes one CRC-validated payload.
func decodePayload(p []byte) (Record, error) {
	var r Record
	if len(p) < 9 {
		return r, fmt.Errorf("durable: payload of %d bytes is shorter than the kind+seq header", len(p))
	}
	r.Kind = RecordKind(p[0])
	r.Seq = le.Uint64(p[1:])
	body := p[9:]
	switch r.Kind {
	case KindFeed:
		if len(body) != 9 {
			return r, fmt.Errorf("durable: feed body is %d bytes, want 9", len(body))
		}
		r.Stream = tuple.StreamID(body[0])
		r.Key = tuple.Value(le.Uint64(body[1:]))
	case KindMigrate:
		s, rest, err := takeString16(body, "plan")
		if err != nil {
			return r, err
		}
		if len(rest) != 0 {
			return r, fmt.Errorf("durable: %d trailing bytes after migrate body", len(rest))
		}
		r.Plan = s
	case KindCreate:
		name, rest, err := takeString8(body, "name")
		if err != nil {
			return r, err
		}
		if len(rest) < 4 {
			return r, fmt.Errorf("durable: create body truncated before window")
		}
		r.Name = name
		r.Window = int(le.Uint32(rest))
		plan, rest, err := takeString16(rest[4:], "plan")
		if err != nil {
			return r, err
		}
		if len(rest) != 0 {
			return r, fmt.Errorf("durable: %d trailing bytes after create body", len(rest))
		}
		r.Plan = plan
	case KindDrop:
		name, rest, err := takeString8(body, "name")
		if err != nil {
			return r, err
		}
		if len(rest) != 0 {
			return r, fmt.Errorf("durable: %d trailing bytes after drop body", len(rest))
		}
		r.Name = name
	case KindFeedBatch:
		if len(body) < 2 {
			return r, fmt.Errorf("durable: feedbatch body truncated before count")
		}
		n := int(le.Uint16(body))
		if n == 0 {
			// Encoding rejects empty batches, so a zero count can only
			// be corruption or skew — not a canonical frame.
			return r, fmt.Errorf("durable: feedbatch record with zero count")
		}
		if len(body) != 2+9*n {
			return r, fmt.Errorf("durable: feedbatch body is %d bytes, want %d for %d events", len(body), 2+9*n, n)
		}
		r.Events = make([]workload.Event, n)
		for i := 0; i < n; i++ {
			b := body[2+9*i:]
			r.Events[i] = workload.Event{Stream: tuple.StreamID(b[0]), Key: tuple.Value(le.Uint64(b[1:]))}
		}
	case KindAuto:
		name, rest, err := takeString8(body, "name")
		if err != nil {
			return r, err
		}
		if len(rest) != 1 {
			return r, fmt.Errorf("durable: auto body has %d bytes after name, want 1", len(rest))
		}
		if rest[0] > 1 {
			return r, fmt.Errorf("durable: auto state byte %d is not 0 or 1", rest[0])
		}
		r.Name = name
		r.Auto = rest[0] == 1
	default:
		return r, fmt.Errorf("durable: unknown record kind %d", p[0])
	}
	return r, nil
}

func takeString8(b []byte, what string) (string, []byte, error) {
	if len(b) < 1 || len(b) < 1+int(b[0]) {
		return "", nil, fmt.Errorf("durable: %s truncated", what)
	}
	n := int(b[0])
	return string(b[1 : 1+n]), b[1+n:], nil
}

func takeString16(b []byte, what string) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, fmt.Errorf("durable: %s length truncated", what)
	}
	n := int(le.Uint16(b))
	if len(b) < 2+n {
		return "", nil, fmt.Errorf("durable: %s truncated", what)
	}
	return string(b[2 : 2+n]), b[2+n:], nil
}

// scanFrames decodes frames from data in order, calling fn for each.
// It returns the byte length of the valid prefix: everything past it
// is a torn tail (short frame, bad length, or CRC mismatch) that the
// caller should truncate at this record boundary. A frame whose CRC
// validates but whose payload does not decode is not a torn tail — it
// means writer/reader version skew or silent corruption — and is
// returned as a hard error along with the boundary offset.
func scanFrames(data []byte, fn func(Record) error) (int64, error) {
	off := 0
	for {
		payload, n, ok := NextFrame(data[off:], maxPayload)
		if !ok {
			return int64(off), nil
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return int64(off), fmt.Errorf("durable: CRC-valid record at offset %d does not decode: %w", off, err)
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return int64(off), err
			}
		}
		off += n
	}
}
