package durable

import (
	"bytes"
	"hash/crc32"
	"testing"

	"jisc/internal/workload"
)

// mustFrame builds one encoded frame for the seed corpus.
func mustFrame(t testing.TB, r Record) []byte {
	t.Helper()
	buf, err := appendFrame(nil, r)
	if err != nil {
		t.Fatalf("appendFrame(%+v): %v", r, err)
	}
	return buf
}

// FuzzRecordDecode throws arbitrary bytes at the WAL frame scanner.
// Invariants, for any input:
//
//   - scanFrames never panics and the valid-prefix offset it returns is
//     within the input (recovery truncates at that boundary);
//   - every record it yields re-encodes to a frame that decodes back to
//     the identical record (valid-decode ⇒ re-encode round-trips);
//   - the re-encoded frames, concatenated, reproduce the valid prefix
//     byte for byte — encoding is canonical, so a log rewritten from
//     its decoded records is the same log.
func FuzzRecordDecode(f *testing.F) {
	// Seed corpus: one well-formed frame per kind, a multi-record log,
	// a torn tail, and a few corruptions.
	feed := mustFrame(f, Record{Kind: KindFeed, Seq: 1, Stream: 3, Key: -77})
	mig := mustFrame(f, Record{Kind: KindMigrate, Seq: 2, Plan: "((0⋈1)⋈2)"})
	create := mustFrame(f, Record{Kind: KindCreate, Seq: 3, Name: "q1", Window: 128, Plan: "0,1,2"})
	drop := mustFrame(f, Record{Kind: KindDrop, Seq: 4, Name: "q1"})
	batch := mustFrame(f, Record{Kind: KindFeedBatch, Seq: 5, Events: []workload.Event{
		{Stream: 0, Key: 1}, {Stream: 2, Key: -9}, {Stream: 1, Key: 1 << 33},
	}})
	batch1 := mustFrame(f, Record{Kind: KindFeedBatch, Seq: 6, Events: []workload.Event{{Stream: 4, Key: 0}}})
	log := append(append(append(append(append(append([]byte{}, feed...), mig...), create...), drop...), batch...), batch1...)
	f.Add([]byte{})
	f.Add(feed)
	f.Add(mig)
	f.Add(create)
	f.Add(drop)
	f.Add(batch)
	f.Add(batch1)
	f.Add(log)
	f.Add(log[:len(log)-3]) // torn tail
	flipped := append([]byte{}, log...)
	flipped[9] ^= 0x40 // payload corruption → CRC mismatch
	f.Add(flipped)
	badKind := mustFrame(f, Record{Kind: KindFeed, Seq: 5, Stream: 0, Key: 0})
	badKind[frameHeader] = 0xEE // unknown kind with a recomputed CRC
	patchCRC(badKind)
	f.Add(badKind)

	f.Fuzz(func(t *testing.T, data []byte) {
		var recs []Record
		off, err := scanFrames(data, func(r Record) error {
			recs = append(recs, r)
			return nil
		})
		if off < 0 || off > int64(len(data)) {
			t.Fatalf("scanFrames returned offset %d outside input of %d bytes", off, len(data))
		}
		if err != nil {
			// A CRC-valid frame whose payload doesn't decode (version
			// skew / forged CRC). The boundary must still be sane, which
			// the check above proved.
			return
		}
		reenc := []byte{}
		for _, r := range recs {
			buf, err := appendFrame(nil, r)
			if err != nil {
				t.Fatalf("decoded record %+v does not re-encode: %v", r, err)
			}
			var back []Record
			if _, err := scanFrames(buf, func(r Record) error { back = append(back, r); return nil }); err != nil {
				t.Fatalf("re-encoded frame of %+v does not scan: %v", r, err)
			}
			if len(back) != 1 || !back[0].Equal(r) {
				t.Fatalf("record round-trip mismatch: %+v -> %+v", r, back)
			}
			reenc = append(reenc, buf...)
		}
		if !bytes.Equal(reenc, data[:off]) {
			t.Fatalf("re-encoded log (%d bytes) differs from the valid prefix (%d bytes)", len(reenc), off)
		}
	})
}

// patchCRC recomputes the CRC header of a single mutated frame so the
// scanner reaches decodePayload instead of treating it as a torn tail.
func patchCRC(frame []byte) {
	payload := frame[frameHeader:]
	le.PutUint32(frame[4:], crc32.Checksum(payload, castagnoli))
}
