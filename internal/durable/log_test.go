package durable

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"jisc/internal/tuple"
)

func testOptions(dir string) Options {
	return Options{
		Dir:   dir,
		Fsync: FsyncAlways, // tests want bytes on disk immediately
	}.WithDefaults()
}

func openTestLog(t *testing.T, opts Options, dir string) *Log {
	t.Helper()
	if err := opts.FS.MkdirAll(dir); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(opts.FS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 0 {
		t.Fatalf("fresh dir has %d segments", len(segs))
	}
	l, err := openLogAt(opts, dir, nil, &Stats{}, 0, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLogAppendAssignsContiguousSeqs(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	l := openTestLog(t, testOptions(dir), dir)
	defer l.Close()
	for i := 1; i <= 5; i++ {
		seq, err := l.AppendFeed(0, tuple.Value(i))
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i) {
			t.Fatalf("append %d got seq %d", i, seq)
		}
	}
	if got := l.LastSeq(); got != 5 {
		t.Fatalf("LastSeq = %d, want 5", got)
	}
}

func TestLogRotationAndTruncation(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	opts := testOptions(dir)
	opts.SegmentBytes = 64 // a few records per segment
	stats := &Stats{}
	if err := opts.FS.MkdirAll(dir); err != nil {
		t.Fatal(err)
	}
	l, err := openLogAt(opts, dir, nil, stats, 0, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var lastSeq uint64
	for i := 0; i < 50; i++ {
		if lastSeq, err = l.AppendFeed(1, tuple.Value(i)); err != nil {
			t.Fatal(err)
		}
	}
	if l.Segments() < 3 {
		t.Fatalf("only %d segments after 50 appends with tiny SegmentBytes", l.Segments())
	}
	if stats.Rotations.Load() == 0 {
		t.Fatal("no rotations counted")
	}
	before := l.Segments()
	removed, err := l.TruncateThrough(lastSeq)
	if err != nil {
		t.Fatal(err)
	}
	if removed != before-1 {
		t.Fatalf("TruncateThrough removed %d of %d segments; the active one must survive", removed, before)
	}
	if l.Segments() != 1 {
		t.Fatalf("%d segments left, want the active one", l.Segments())
	}
	// Truncating below any remaining segment is a no-op.
	if removed, err := l.TruncateThrough(0); err != nil || removed != 0 {
		t.Fatalf("no-op truncate: removed=%d err=%v", removed, err)
	}
}

func TestLogBatchPolicyFlushesOnInterval(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	opts := testOptions(dir)
	opts.Fsync = FsyncBatch
	opts.FlushInterval = time.Millisecond
	l := openTestLog(t, opts, dir)
	defer l.Close()
	if _, err := l.AppendFeed(0, 7); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segmentName(1))
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n, err := opts.FS.Size(seg); err == nil && n > 0 {
			break // the background flusher pushed the append out
		}
		if time.Now().After(deadline) {
			t.Fatal("append never reached disk under FsyncBatch")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestLogCloseIsIdempotentAndFinal(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	l := openTestLog(t, testOptions(dir), dir)
	if _, err := l.AppendFeed(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendFeed(0, 2); !errors.Is(err, ErrLogClosed) {
		t.Fatalf("append after close: %v, want ErrLogClosed", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrLogClosed) {
		t.Fatalf("sync after close: %v, want ErrLogClosed", err)
	}
}

// TestLogCrashLeavesDecodablePrefix drives the log through a CrashFS
// at every write budget: whatever survives on disk must scan cleanly —
// complete records followed by at most one torn tail.
func TestLogCrashLeavesDecodablePrefix(t *testing.T) {
	// First, learn the full size of an uninterrupted run.
	full := func() int64 {
		dir := filepath.Join(t.TempDir(), "wal")
		l := openTestLog(t, testOptions(dir), dir)
		for i := 0; i < 10; i++ {
			if _, err := l.AppendFeed(0, tuple.Value(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		n, err := OS().Size(filepath.Join(dir, segmentName(1)))
		if err != nil {
			t.Fatal(err)
		}
		return n
	}()
	for budget := int64(0); budget <= full; budget++ {
		dir := filepath.Join(t.TempDir(), "wal")
		opts := testOptions(dir)
		crash := NewCrashFS(OS(), budget)
		opts.FS = crash
		if err := OS().MkdirAll(dir); err != nil {
			t.Fatal(err)
		}
		l, err := openLogAt(opts, dir, nil, &Stats{}, 0, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		applied := 0
		for i := 0; i < 10; i++ {
			if _, err := l.AppendFeed(0, tuple.Value(i)); err != nil {
				break
			}
			applied++
		}
		l.Close()
		data, err := readFile(OS(), filepath.Join(dir, segmentName(1)))
		if err != nil {
			if budget == 0 {
				continue // crash before the segment was even created
			}
			t.Fatalf("budget %d: %v", budget, err)
		}
		decoded := 0
		valid, serr := scanFrames(data, func(r Record) error {
			if r.Key != tuple.Value(decoded) {
				t.Fatalf("budget %d: record %d has key %d", budget, decoded, r.Key)
			}
			decoded++
			return nil
		})
		if serr != nil {
			t.Fatalf("budget %d: hard scan error: %v", budget, serr)
		}
		if valid > int64(len(data)) {
			t.Fatalf("budget %d: valid %d > file %d", budget, valid, len(data))
		}
		// FsyncAlways acked appends must all be on disk.
		if decoded < applied {
			t.Fatalf("budget %d: %d acked appends but only %d decodable", budget, applied, decoded)
		}
	}
}
