package durable

import (
	"testing"
)

func reopenCatalog(t *testing.T, dir string, stats *Stats) (*Catalog, []CatalogEntry) {
	t.Helper()
	c, entries, _, err := OpenCatalog(Options{Dir: dir}, stats)
	if err != nil {
		t.Fatal(err)
	}
	return c, entries
}

// The catalog folds CREATE/DROP in command order across restarts: the
// live set after reopening is exactly the queries created and not yet
// dropped, in creation order.
func TestCatalogFoldsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	c, entries := reopenCatalog(t, dir, nil)
	if len(entries) != 0 {
		t.Fatalf("fresh catalog has %d entries", len(entries))
	}
	if err := c.AppendCreate("a", 100, "(0 1)"); err != nil {
		t.Fatal(err)
	}
	if err := c.AppendCreate("b", 200, "((0 1) 2)"); err != nil {
		t.Fatal(err)
	}
	if err := c.AppendDrop("a"); err != nil {
		t.Fatal(err)
	}
	if err := c.AppendCreate("c", 300, "(1 2)"); err != nil {
		t.Fatal(err)
	}
	c.Close()

	c2, entries := reopenCatalog(t, dir, nil)
	defer c2.Close()
	want := []CatalogEntry{
		{Name: "b", Window: 200, Plan: "((0 1) 2)"},
		{Name: "c", Window: 300, Plan: "(1 2)"},
	}
	if len(entries) != len(want) {
		t.Fatalf("entries = %+v, want %+v", entries, want)
	}
	for i := range want {
		if entries[i] != want[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, entries[i], want[i])
		}
	}
	// The reopened catalog continues the sequence: re-creating "a" must
	// append, not clash.
	if err := c2.AppendCreate("a", 100, "(0 1)"); err != nil {
		t.Fatal(err)
	}
}

// A torn catalog tail (crash mid-CREATE) is truncated on reopen and the
// surviving prefix replays; the lost record was never acknowledged.
func TestCatalogTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	c, _ := reopenCatalog(t, dir, nil)
	if err := c.AppendCreate("keep", 100, "(0 1)"); err != nil {
		t.Fatal(err)
	}
	if err := c.AppendCreate("torn", 200, "(1 2)"); err != nil {
		t.Fatal(err)
	}
	c.Close()

	path := CatalogPath(dir)
	n, err := OS().Size(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := OS().Truncate(path, n-2); err != nil {
		t.Fatal(err)
	}
	stats := &Stats{}
	c2, entries := reopenCatalog(t, dir, stats)
	defer c2.Close()
	if len(entries) != 1 || entries[0].Name != "keep" {
		t.Fatalf("entries = %+v, want only %q", entries, "keep")
	}
	if stats.TornTruncations.Load() != 1 {
		t.Fatalf("TornTruncations = %d, want 1", stats.TornTruncations.Load())
	}
	// The truncated tail must be reusable: the next append lands where
	// the torn record was.
	if err := c2.AppendCreate("next", 300, "(0 2)"); err != nil {
		t.Fatal(err)
	}
	c2.Close()
	_, entries = reopenCatalog(t, dir, nil)
	if len(entries) != 2 || entries[1].Name != "next" {
		t.Fatalf("after re-append: %+v", entries)
	}
}

// Feed records don't belong in the catalog; a catalog holding one is
// damage, not a torn write, and must be a hard error.
func TestCatalogRejectsForeignRecords(t *testing.T) {
	dir := t.TempDir()
	data, err := appendFrame(nil, Record{Kind: KindFeed, Seq: 1, Stream: 0, Key: 7})
	if err != nil {
		t.Fatal(err)
	}
	f, err := OS().Create(CatalogPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	f.Write(data)
	f.Close()
	if _, _, _, err := OpenCatalog(Options{Dir: dir}, nil); err == nil {
		t.Fatal("catalog accepted a feed record")
	}
}

// Crash-consistency for the catalog: at every write budget the
// surviving file reopens cleanly and folds to a prefix of the
// acknowledged creates.
func TestCatalogCrashConsistency(t *testing.T) {
	names := []string{"q0", "q1", "q2", "q3"}
	full := func() int64 {
		dir := t.TempDir()
		c, _ := reopenCatalog(t, dir, nil)
		for _, n := range names {
			if err := c.AppendCreate(n, 100, "(0 1)"); err != nil {
				t.Fatal(err)
			}
		}
		c.Close()
		n, err := OS().Size(CatalogPath(dir))
		if err != nil {
			t.Fatal(err)
		}
		return n
	}()
	for budget := int64(0); budget <= full; budget++ {
		dir := t.TempDir()
		crash := NewCrashFS(OS(), budget)
		c, _, _, err := OpenCatalog(Options{Dir: dir, FS: crash}, nil)
		if err != nil {
			continue // crashed before the catalog existed
		}
		acked := 0
		for _, n := range names {
			if err := c.AppendCreate(n, 100, "(0 1)"); err != nil {
				break
			}
			acked++
		}
		c.Close()
		c2, entries, _, err := OpenCatalog(Options{Dir: dir}, nil)
		if err != nil {
			t.Fatalf("budget %d: reopen: %v", budget, err)
		}
		c2.Close()
		// Every acknowledged create survived (always-fsync), and
		// anything beyond is at most the one in-flight record.
		if len(entries) < acked || len(entries) > acked+1 {
			t.Fatalf("budget %d: %d acked but %d recovered", budget, acked, len(entries))
		}
		for i, e := range entries {
			if e.Name != names[i] {
				t.Fatalf("budget %d: entry %d = %q, want %q", budget, i, e.Name, names[i])
			}
		}
	}
}

// The catalog folds AUTO toggles per query — last toggle wins, and a
// DROP takes the query's autopilot state with it so a later re-CREATE
// starts with AUTO off.
func TestCatalogFoldsAutoToggles(t *testing.T) {
	dir := t.TempDir()
	c, _, auto, err := OpenCatalog(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(auto) != 0 {
		t.Fatalf("fresh catalog has auto state %v", auto)
	}
	for _, step := range []func() error{
		func() error { return c.AppendCreate("a", 100, "(0 1)") },
		func() error { return c.AppendCreate("b", 100, "(0 1)") },
		func() error { return c.AppendAuto("a", true) },
		func() error { return c.AppendAuto("b", true) },
		func() error { return c.AppendAuto("b", false) },
	} {
		if err := step(); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()

	c2, entries, auto, err := OpenCatalog(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("entries = %+v, want a and b", entries)
	}
	if len(auto) != 1 || !auto["a"] {
		t.Fatalf("auto = %v, want map[a:true]", auto)
	}
	// Dropping a clears its toggle even though the last AUTO record for
	// a says on.
	if err := c2.AppendDrop("a"); err != nil {
		t.Fatal(err)
	}
	if err := c2.AppendCreate("a", 100, "(0 1)"); err != nil {
		t.Fatal(err)
	}
	c2.Close()

	c3, entries, auto, err := OpenCatalog(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if len(entries) != 2 {
		t.Fatalf("entries after re-create = %+v", entries)
	}
	if len(auto) != 0 {
		t.Fatalf("auto = %v after DROP+re-CREATE, want empty", auto)
	}
}
