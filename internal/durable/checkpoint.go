package durable

import (
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// Checkpoint files (and every snapshot the server's CHECKPOINT command
// writes) are wrapped in a validated envelope:
//
//	magic "JISCSNAP" | version:u32 | payloadLen:u64 | crc:u32 | payload
//
// and written via temp file + fsync + atomic rename + directory fsync,
// so a crash mid-write can never leave a torn checkpoint under the
// final name: the file either doesn't exist or validates. The payload
// is the engine's own gob snapshot, which carries its own snapVersion.

var snapMagic = [8]byte{'J', 'I', 'S', 'C', 'S', 'N', 'A', 'P'}

const (
	envVersion = 1
	envHeader  = 8 + 4 + 8 + 4
)

// encodeEnvelope wraps payload.
func encodeEnvelope(payload []byte) []byte {
	buf := make([]byte, 0, envHeader+len(payload))
	buf = append(buf, snapMagic[:]...)
	buf = le.AppendUint32(buf, envVersion)
	buf = le.AppendUint64(buf, uint64(len(payload)))
	buf = le.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	return append(buf, payload...)
}

// decodeEnvelope validates data and returns the payload. Errors spell
// out what failed so an operator reading an ERR line knows whether the
// file is foreign, torn, or version-skewed.
func decodeEnvelope(data []byte) ([]byte, error) {
	if len(data) < envHeader {
		return nil, fmt.Errorf("durable: snapshot is %d bytes, shorter than the %d-byte header (torn write?)", len(data), envHeader)
	}
	if string(data[:8]) != string(snapMagic[:]) {
		return nil, fmt.Errorf("durable: bad snapshot magic %q (not a JISC snapshot file)", string(data[:8]))
	}
	if v := le.Uint32(data[8:]); v != envVersion {
		return nil, fmt.Errorf("durable: snapshot envelope version %d, this build reads %d", v, envVersion)
	}
	n := le.Uint64(data[12:])
	payload := data[envHeader:]
	if uint64(len(payload)) < n {
		return nil, fmt.Errorf("durable: snapshot truncated: %d of %d payload bytes (torn write)", len(payload), n)
	}
	payload = payload[:n]
	if crc32.Checksum(payload, castagnoli) != le.Uint32(data[20:]) {
		return nil, fmt.Errorf("durable: snapshot CRC mismatch (corrupt or torn write)")
	}
	return payload, nil
}

// WriteSnapshotFile writes payload to path inside the validated
// envelope, atomically: temp file, fsync, rename, directory fsync.
// A reader never observes a partial file under path.
func WriteSnapshotFile(fs FS, path string, payload []byte) error {
	tmp := path + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(encodeEnvelope(payload)); err != nil {
		f.Close()
		fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fs.Remove(tmp)
		return err
	}
	if err := fs.Rename(tmp, path); err != nil {
		fs.Remove(tmp)
		return err
	}
	return fs.SyncDir(filepath.Dir(path))
}

// ReadSnapshotFile reads path and validates its envelope, returning
// the payload.
func ReadSnapshotFile(fs FS, path string) ([]byte, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	payload, err := decodeEnvelope(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return payload, nil
}

func checkpointName(seq uint64) string { return fmt.Sprintf("ckpt-%016x.snap", seq) }

func parseCheckpointName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, ".snap") {
		return 0, false
	}
	var seq uint64
	if _, err := fmt.Sscanf(strings.TrimSuffix(strings.TrimPrefix(name, "ckpt-"), ".snap"), "%x", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

// writeCheckpoint writes a shard checkpoint covering WAL records up to
// and including seq, then prunes old checkpoints down to keep.
func writeCheckpoint(fs FS, dir string, seq uint64, payload []byte, keep int) error {
	if err := WriteSnapshotFile(fs, filepath.Join(dir, checkpointName(seq)), payload); err != nil {
		return err
	}
	return pruneCheckpoints(fs, dir, keep)
}

// WriteShardCheckpoint atomically writes a checkpoint for shard shard
// covering WAL records through seq, then prunes old checkpoints down
// to opts.KeepCheckpoints. The runtime calls this with the engine
// snapshot it captured at exactly that log position.
func WriteShardCheckpoint(opts Options, shard int, seq uint64, payload []byte) error {
	opts = opts.WithDefaults()
	dir := ShardDir(opts.Dir, shard)
	if err := opts.FS.MkdirAll(dir); err != nil {
		return err
	}
	return writeCheckpoint(opts.FS, dir, seq, payload, opts.KeepCheckpoints)
}

// pruneCheckpoints removes all but the newest keep checkpoint files.
func pruneCheckpoints(fs FS, dir string, keep int) error {
	names, err := fs.ReadDir(dir)
	if err != nil {
		return err
	}
	var seqs []uint64
	for _, name := range names {
		if seq, ok := parseCheckpointName(name); ok {
			seqs = append(seqs, seq)
		}
	}
	if len(seqs) <= keep {
		return nil
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	for _, seq := range seqs[keep:] {
		if err := fs.Remove(filepath.Join(dir, checkpointName(seq))); err != nil {
			return err
		}
	}
	return fs.SyncDir(dir)
}

// latestCheckpoint loads the newest checkpoint in dir that validates,
// falling back to older ones when the newest is torn or corrupt. It
// returns the covered sequence number and payload, or (0, nil) when no
// valid checkpoint exists. skipped counts checkpoints that failed
// validation on the way.
func latestCheckpoint(fs FS, dir string) (seq uint64, payload []byte, skipped int, err error) {
	names, err := fs.ReadDir(dir)
	if err != nil {
		return 0, nil, 0, err
	}
	var seqs []uint64
	for _, name := range names {
		if s, ok := parseCheckpointName(name); ok {
			seqs = append(seqs, s)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	for _, s := range seqs {
		p, rerr := ReadSnapshotFile(fs, filepath.Join(dir, checkpointName(s)))
		if rerr != nil {
			skipped++
			continue
		}
		return s, p, skipped, nil
	}
	return 0, nil, skipped, nil
}
