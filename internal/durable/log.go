package durable

import (
	"bufio"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"jisc/internal/obs"
	"jisc/internal/tuple"
	"jisc/internal/workload"
)

// ErrLogClosed is returned by appends after Close.
var ErrLogClosed = errors.New("durable: log closed")

// segment is one on-disk log file; first is the sequence number of its
// first record (also encoded in its name).
type segment struct {
	first uint64
	name  string
}

func segmentName(first uint64) string { return fmt.Sprintf("wal-%016x.seg", first) }

// parseSegmentName inverts segmentName.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	var first uint64
	if _, err := fmt.Sscanf(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg"), "%x", &first); err != nil {
		return 0, false
	}
	return first, true
}

// listSegments returns dir's log segments sorted by first sequence
// number.
func listSegments(fs FS, dir string) ([]segment, error) {
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segment
	for _, name := range names {
		if first, ok := parseSegmentName(name); ok {
			segs = append(segs, segment{first: first, name: name})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

// Log is one shard's write-ahead log: a directory of framed segment
// files plus an append cursor. Appends are safe for concurrent use;
// the fsync policy decides when they become durable. The write buffer
// is flushed by the appender (FsyncAlways) or by a background flusher
// on the group-commit interval (FsyncBatch, FsyncOff).
type Log struct {
	fs       FS
	dir      string
	policy   Policy
	flushInt time.Duration
	segBytes int64
	rec      *obs.Recorder
	stats    *Stats

	mu      sync.Mutex
	f       File
	w       *bufio.Writer
	dirty   bool
	seq     uint64 // last assigned record sequence number
	segs    []segment
	segSize int64 // bytes in the active (last) segment
	buf     []byte
	closed  bool

	// syncMu serializes the flusher's out-of-lock fsync with file
	// close: the flusher releases mu before Sync so group commits never
	// stall appends, and anything closing the active file takes syncMu
	// first so the fd stays valid for the in-flight Sync. Lock order is
	// always mu → syncMu.
	syncMu sync.Mutex

	stop chan struct{}
	done chan struct{}
}

// openLogAt opens dir's log for appending with a known recovery state:
// lastSeq is the last record sequence on disk, segs the surviving
// segments (ascending; the last one is active with activeSize bytes).
// Recovery computes these; a fresh log passes zeroes.
func openLogAt(opts Options, dir string, rec *obs.Recorder, stats *Stats, lastSeq uint64, segs []segment, activeSize int64) (*Log, error) {
	l := &Log{
		fs:       opts.FS,
		dir:      dir,
		policy:   opts.Fsync,
		flushInt: opts.FlushInterval,
		segBytes: opts.SegmentBytes,
		rec:      rec,
		stats:    stats,
		seq:      lastSeq,
		segs:     segs,
		segSize:  activeSize,
	}
	if len(segs) > 0 {
		f, err := opts.FS.OpenAppend(filepath.Join(dir, segs[len(segs)-1].name))
		if err != nil {
			return nil, err
		}
		l.f = f
		l.w = bufio.NewWriterSize(f, 1<<16)
	}
	if l.policy != FsyncAlways {
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.flusher()
	}
	return l, nil
}

// flusher is the group-commit goroutine: every flush interval it
// pushes buffered appends to the OS and, under FsyncBatch, fsyncs
// them — one fsync covering every append of the window.
func (l *Log) flusher() {
	defer close(l.done)
	t := time.NewTicker(l.flushInt)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.dirty || l.closed || l.w == nil {
				l.mu.Unlock()
				continue
			}
			if err := l.w.Flush(); err != nil {
				l.mu.Unlock()
				continue
			}
			l.dirty = false
			if l.policy != FsyncBatch {
				l.mu.Unlock()
				continue
			}
			// Group commit: fsync outside mu so appends of the next
			// window proceed while this window reaches the platter.
			// syncMu (taken before releasing mu) keeps the fd open
			// until the Sync returns.
			f := l.f
			var start time.Time
			if l.rec != nil {
				start = time.Now()
			}
			l.syncMu.Lock()
			l.mu.Unlock()
			err := f.Sync()
			l.syncMu.Unlock()
			if err == nil {
				if l.stats != nil {
					l.stats.Fsyncs.Add(1)
				}
				if l.rec != nil {
					l.rec.WALFsync.Record(time.Since(start))
				}
			}
		}
	}
}

// flushLocked flushes the write buffer and optionally fsyncs. Called
// with mu held.
func (l *Log) flushLocked(fsync bool) error {
	if l.w == nil {
		l.dirty = false
		return nil
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	if fsync {
		var start time.Time
		if l.rec != nil {
			start = time.Now()
		}
		if err := l.f.Sync(); err != nil {
			return err
		}
		if l.stats != nil {
			l.stats.Fsyncs.Add(1)
		}
		if l.rec != nil {
			l.rec.WALFsync.Record(time.Since(start))
		}
	}
	l.dirty = false
	return nil
}

// openSegmentLocked starts a new segment whose first record will be
// seq. The directory is fsynced so the file name itself survives a
// crash.
func (l *Log) openSegmentLocked(seq uint64) error {
	name := segmentName(seq)
	f, err := l.fs.Create(filepath.Join(l.dir, name))
	if err != nil {
		return err
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	if l.w == nil {
		l.w = bufio.NewWriterSize(f, 1<<16)
	} else {
		l.w.Reset(f)
	}
	l.segs = append(l.segs, segment{first: seq, name: name})
	l.segSize = 0
	return nil
}

// rotateLocked seals the active segment (flush + fsync, so a sealed
// segment is always fully durable) and opens the next one.
func (l *Log) rotateLocked(nextSeq uint64) error {
	if err := l.flushLocked(l.policy != FsyncOff); err != nil {
		return err
	}
	l.syncMu.Lock()
	err := l.f.Close()
	l.syncMu.Unlock()
	if err != nil {
		return err
	}
	l.f = nil
	if l.stats != nil {
		l.stats.Rotations.Add(1)
	}
	return l.openSegmentLocked(nextSeq)
}

// AppendFeed logs one input tuple and returns its sequence number.
func (l *Log) AppendFeed(stream tuple.StreamID, key tuple.Value) (uint64, error) {
	return l.append(Record{Kind: KindFeed, Stream: stream, Key: key})
}

// AppendFeedBatch logs a whole ingest batch as one feedbatch record —
// one frame, one sequence number, one fsync — and returns that
// sequence number. The events are copied into the frame; the caller
// keeps ownership of evs.
func (l *Log) AppendFeedBatch(evs []workload.Event) (uint64, error) {
	return l.append(Record{Kind: KindFeedBatch, Events: evs})
}

// AppendMigrate logs one plan transition (infix plan form).
func (l *Log) AppendMigrate(plan string) (uint64, error) {
	return l.append(Record{Kind: KindMigrate, Plan: plan})
}

func (l *Log) append(r Record) (uint64, error) {
	var start time.Time
	if l.rec != nil {
		start = time.Now()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrLogClosed
	}
	r.Seq = l.seq + 1
	buf, err := appendFrame(l.buf[:0], r)
	if err != nil {
		return 0, err
	}
	l.buf = buf
	if l.f != nil && l.segSize+int64(len(buf)) > l.segBytes && l.segSize > 0 {
		if err := l.rotateLocked(r.Seq); err != nil {
			return 0, err
		}
	}
	if l.f == nil {
		if err := l.openSegmentLocked(r.Seq); err != nil {
			return 0, err
		}
	}
	if _, err := l.w.Write(buf); err != nil {
		return 0, fmt.Errorf("durable: appending to %s: %w", l.segs[len(l.segs)-1].name, err)
	}
	l.seq = r.Seq
	l.segSize += int64(len(buf))
	if l.stats != nil {
		l.stats.Appends.Add(1)
		l.stats.AppendBytes.Add(uint64(len(buf)))
	}
	if l.policy == FsyncAlways {
		if err := l.flushLocked(true); err != nil {
			return 0, err
		}
	} else {
		l.dirty = true
	}
	if l.rec != nil {
		l.rec.WALAppend.Record(time.Since(start))
	}
	return r.Seq, nil
}

// LastSeq returns the sequence number of the most recent append.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Sync forces buffered appends to disk regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrLogClosed
	}
	return l.flushLocked(true)
}

// TruncateThrough removes segments whose records are all covered by a
// checkpoint at seq. The active segment is never removed; within-
// segment truncation is unnecessary because replay skips records at or
// below the checkpoint sequence.
func (l *Log) TruncateThrough(seq uint64) (removed int, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.segs) > 1 && l.segs[1].first <= seq+1 {
		if err := l.fs.Remove(filepath.Join(l.dir, l.segs[0].name)); err != nil {
			return removed, err
		}
		l.segs = l.segs[1:]
		removed++
	}
	if removed > 0 {
		if l.stats != nil {
			l.stats.SegmentsRemoved.Add(uint64(removed))
		}
		if err := l.fs.SyncDir(l.dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// Segments returns the current number of on-disk segments.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// Close flushes, fsyncs, and closes the log. Further appends return
// ErrLogClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	err := l.flushLocked(l.policy != FsyncOff)
	if l.f != nil {
		l.syncMu.Lock()
		cerr := l.f.Close()
		l.syncMu.Unlock()
		if err == nil {
			err = cerr
		}
		l.f = nil
	}
	l.mu.Unlock()
	if l.stop != nil {
		close(l.stop)
		<-l.done
	}
	return err
}
