package analysis

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"jisc/internal/testseed"
)

func TestHarmonic(t *testing.T) {
	cases := []struct {
		n    int
		want float64
	}{
		{1, 1}, {2, 1.5}, {3, 1.5 + 1.0/3}, {4, 1.5 + 1.0/3 + 0.25},
	}
	for _, c := range cases {
		if got := Harmonic(c.n); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("H_%d = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestHarmonicAsymptotic(t *testing.T) {
	// H_n − (ln n + γ) = O(1/n).
	for _, n := range []int{100, 1000, 10000} {
		if d := math.Abs(Harmonic(n) - HarmonicAsymptotic(n)); d > 1.0/float64(n) {
			t.Errorf("n=%d: |H_n − asymptotic| = %v", n, d)
		}
	}
}

// The triangular distribution must sum to 1 (Eq. 2 normalizes it).
func TestSwapProbNormalized(t *testing.T) {
	for _, n := range []int{2, 3, 5, 10, 50, 200} {
		sum := 0.0
		for i := 1; i < n; i++ {
			for j := i + 1; j <= n; j++ {
				sum += SwapProb(n, i, j)
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("n=%d: Σ Prob = %v", n, sum)
		}
	}
}

func TestSwapProbOutOfRange(t *testing.T) {
	for _, c := range [][3]int{{5, 0, 2}, {5, 2, 2}, {5, 3, 2}, {5, 2, 6}} {
		if p := SwapProb(c[0], c[1], c[2]); p != 0 {
			t.Errorf("SwapProb(%v) = %v, want 0", c, p)
		}
	}
}

// Proposition 1 exact values against direct enumeration of the
// distribution.
func TestProposition1AgainstEnumeration(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8, 16, 64} {
		mean, varc := 0.0, 0.0
		for i := 1; i < n; i++ {
			for j := i + 1; j <= n; j++ {
				p := SwapProb(n, i, j)
				c := float64(CompleteStates(n, i, j))
				mean += p * c
				varc += p * c * c
			}
		}
		varc -= mean * mean
		if got := MeanCn(n); math.Abs(got-mean) > 1e-9 {
			t.Errorf("n=%d: MeanCn = %v, enumeration = %v", n, got, mean)
		}
		if got := VarCn(n); math.Abs(got-varc) > 1e-6 {
			t.Errorf("n=%d: VarCn = %v, enumeration = %v", n, got, varc)
		}
	}
}

// Proposition 2: asymptotic forms converge to the exact ones.
func TestProposition2Asymptotics(t *testing.T) {
	for _, n := range []int{1 << 10, 1 << 14, 1 << 18} {
		relMean := math.Abs(MeanCn(n)-MeanCnAsymptotic(n)) / MeanCn(n)
		if relMean > 0.05 {
			t.Errorf("n=%d: mean asymptotic off by %v", n, relMean)
		}
		relVar := math.Abs(VarCn(n)-VarCnAsymptotic(n)) / VarCn(n)
		if relVar > 0.5 {
			t.Errorf("n=%d: var asymptotic off by %v", n, relVar)
		}
	}
	// The variance approximation must improve with n.
	r1 := math.Abs(VarCn(1<<10)-VarCnAsymptotic(1<<10)) / VarCn(1<<10)
	r2 := math.Abs(VarCn(1<<18)-VarCnAsymptotic(1<<18)) / VarCn(1<<18)
	if r2 >= r1 {
		t.Errorf("variance asymptotic not improving: %v -> %v", r1, r2)
	}
}

// Monte-Carlo sampling reproduces the closed forms.
func TestMonteCarloMatchesClosedForm(t *testing.T) {
	rng := rand.New(rand.NewSource(testseed.Seed(t, 42)))
	for _, n := range []int{8, 32, 128} {
		mean, varc := MonteCarlo(rng, n, 200000)
		if rel := math.Abs(mean-MeanCn(n)) / MeanCn(n); rel > 0.01 {
			t.Errorf("n=%d: MC mean %v vs %v", n, mean, MeanCn(n))
		}
		if rel := math.Abs(varc-VarCn(n)) / VarCn(n); rel > 0.05 {
			t.Errorf("n=%d: MC var %v vs %v", n, varc, VarCn(n))
		}
	}
}

// Proposition 3: the tail probability shrinks as n grows and is
// bounded by Chebyshev.
func TestProposition3Concentration(t *testing.T) {
	rng := rand.New(rand.NewSource(testseed.Seed(t, 7)))
	const eps = 0.25
	prev := 1.0
	for _, n := range []int{16, 256, 4096} {
		tail := ConcentrationTail(rng, n, 100000, eps)
		if tail > prev+0.01 {
			t.Errorf("n=%d: tail %v did not shrink (prev %v)", n, tail, prev)
		}
		// Chebyshev bounds the tail (up to MC noise).
		if bound := ChebyshevBound(n, eps); tail > bound+0.02 {
			t.Errorf("n=%d: tail %v exceeds Chebyshev bound %v", n, tail, bound)
		}
		prev = tail
	}
	// The tail decays as O(1/ln n) (Proposition 3's bound), so it is
	// still ~0.08 at n=4096; assert the order of magnitude, not more.
	if prev > 0.12 {
		t.Errorf("tail at n=4096 = %v, concentration law violated", prev)
	}
}

// Property: SampleSwap always returns a valid pair.
func TestSampleSwapValidProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(testseed.Seed(t, 1)))
	f := func(nRaw uint8) bool {
		n := 2 + int(nRaw%60)
		i, j := SampleSwap(rng, n)
		return 1 <= i && i < j && j <= n
	}
	if err := quick.Check(f, testseed.Quick(t, 1, 500)); err != nil {
		t.Fatal(err)
	}
}

// Property: C_n within [1, n-1]... C_n = n-(j-i) ∈ [n-(n-1), n-1] = [1, n-1].
func TestCompleteStatesRangeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(testseed.Seed(t, 2)))
	f := func(nRaw uint8) bool {
		n := 2 + int(nRaw%60)
		i, j := SampleSwap(rng, n)
		c := CompleteStates(n, i, j)
		return 1 <= c && c <= n-1
	}
	if err := quick.Check(f, testseed.Quick(t, 1, 500)); err != nil {
		t.Fatal(err)
	}
}

func TestAlphaSmallN(t *testing.T) {
	if !math.IsNaN(Alpha(1)) {
		t.Error("Alpha(1) should be NaN")
	}
	// n=2: single pair (1,2), so α_2/(2−1) = 1 ⇒ α_2 = 1.
	if math.Abs(Alpha(2)-1) > 1e-12 {
		t.Errorf("Alpha(2) = %v, want 1", Alpha(2))
	}
}

func TestSampleSwapPanicsOnSmallN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for n < 2")
		}
	}()
	SampleSwap(rand.New(rand.NewSource(1)), 1)
}
