// Package analysis implements §5's probabilistic analysis of JISC:
// the triangular distribution over pairwise join-exchange positions
// (Eq. 1–2), the exact mean and variance of C_n — the number of
// complete states after a transition (Proposition 1) — their
// asymptotics (Proposition 2), and Monte-Carlo machinery to verify
// the concentration law C_n/n → 1 (Proposition 3).
package analysis

import (
	"fmt"
	"math"
	"math/rand"
)

// Harmonic returns H_n = Σ_{r=1..n} 1/r.
func Harmonic(n int) float64 {
	h := 0.0
	for r := 1; r <= n; r++ {
		h += 1.0 / float64(r)
	}
	return h
}

// HarmonicAsymptotic returns ln n + γ, the standard approximation of
// H_n (used in Proposition 2's proof).
func HarmonicAsymptotic(n int) float64 {
	const gamma = 0.5772156649015329
	return math.Log(float64(n)) + gamma
}

// Alpha returns the normalization factor α_n of Eq. 2 such that
// Σ_{1≤i<j≤n} α_n/(j−i) = 1. Expanding the double sum by distance
// d = j−i gives Σ_{d=1..n−1} (n−d)/d = n·H_{n−1} − (n−1), so
// α_n = 1/(n·H_{n−1} − n + 1) = 1/(n·H_n − n), using
// H_n = H_{n−1} + 1/n.
func Alpha(n int) float64 {
	if n < 2 {
		return math.NaN()
	}
	return 1.0 / (float64(n)*Harmonic(n) - float64(n))
}

// SwapProb returns Prob(I=i, J=j) for 1 ≤ i < j ≤ n under the
// triangular distribution of Eq. 1: α_n/(j−i).
func SwapProb(n, i, j int) float64 {
	if i < 1 || j <= i || j > n {
		return 0
	}
	return Alpha(n) / float64(j-i)
}

// MeanCn returns E[C_n] per Proposition 1:
// (2n·H_n − 3n + 1) / (2H_n − 2).
func MeanCn(n int) float64 {
	h := Harmonic(n)
	return (2*float64(n)*h - 3*float64(n) + 1) / (2*h - 2)
}

// VarCn returns Var[C_n] per Proposition 1:
// (2n²·H_n² − n²·H_n ... ) — the paper's closed form printed with
// typesetting damage; we use the underlying derivation directly:
// Var[C_n] = E[(J−I)²] − (E[J−I])², with
// E[(J−I)²] = α_n · Σ_d d(n−d) = α_n · n(n²−1)/6 = (n²−1)/(6H_n−6)
// and E[J−I] = α_n · n(n−1)/2 = (n−1)/(2H_n−2).
func VarCn(n int) float64 {
	h := Harmonic(n)
	eD := float64(n-1) / (2*h - 2)
	eD2 := (float64(n)*float64(n) - 1) / (6*h - 6)
	return eD2 - eD*eD
}

// MeanCnAsymptotic returns the Proposition 2 leading-order expansion
// E[C_n] ≈ n − n/(2 ln n).
func MeanCnAsymptotic(n int) float64 {
	ln := math.Log(float64(n))
	return float64(n) - float64(n)/(2*ln)
}

// VarCnAsymptotic returns the Proposition 2 leading-order expansion
// Var[C_n] ≈ n²/(6 ln n).
func VarCnAsymptotic(n int) float64 {
	ln := math.Log(float64(n))
	return float64(n) * float64(n) / (6 * ln)
}

// SampleSwap draws a pair (I, J), 1 ≤ I < J ≤ n, from the triangular
// distribution of Eq. 1 using inverse-transform sampling over the
// distance d = J−I (Prob(d) = α_n (n−d)/d) and a uniform position.
func SampleSwap(rng *rand.Rand, n int) (i, j int) {
	if n < 2 {
		panic(fmt.Sprintf("analysis: need n >= 2, got %d", n))
	}
	alpha := Alpha(n)
	u := rng.Float64()
	acc := 0.0
	d := 1
	for ; d < n; d++ {
		acc += alpha * float64(n-d) / float64(d)
		if u <= acc {
			break
		}
	}
	if d >= n {
		d = n - 1
	}
	i = 1 + rng.Intn(n-d)
	return i, i + d
}

// CompleteStates returns C_n = n − (J−I), Eq. 3.
func CompleteStates(n, i, j int) int { return n - (j - i) }

// MonteCarlo estimates the mean and variance of C_n over samples
// draws.
func MonteCarlo(rng *rand.Rand, n, samples int) (mean, variance float64) {
	sum, sumSq := 0.0, 0.0
	for s := 0; s < samples; s++ {
		i, j := SampleSwap(rng, n)
		c := float64(CompleteStates(n, i, j))
		sum += c
		sumSq += c * c
	}
	mean = sum / float64(samples)
	variance = sumSq/float64(samples) - mean*mean
	return mean, variance
}

// ConcentrationTail estimates Prob(|C_n/n − 1| > eps) by Monte Carlo —
// the quantity Proposition 3 proves tends to 0.
func ConcentrationTail(rng *rand.Rand, n, samples int, eps float64) float64 {
	bad := 0
	for s := 0; s < samples; s++ {
		i, j := SampleSwap(rng, n)
		ratio := float64(CompleteStates(n, i, j)) / float64(n)
		if math.Abs(ratio-1) > eps {
			bad++
		}
	}
	return float64(bad) / float64(samples)
}

// ChebyshevBound returns Var[C_n]/(ε n)², the Proposition 3 bound on
// the concentration tail.
func ChebyshevBound(n int, eps float64) float64 {
	d := eps * float64(n)
	return VarCn(n) / (d * d)
}
