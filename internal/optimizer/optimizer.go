// Package optimizer provides the optimize-at-runtime trigger policy
// that the paper treats as orthogonal (§2: "we do not address the
// actual conditions that trigger a plan transition"): a statistics
// collector and advisor that watches per-operator selectivities in a
// running engine, estimates the cost of alternative left-deep orders,
// and proposes a transition when the current plan has drifted far
// enough from the best one. Hysteresis (minimum improvement and
// cooldown) implements the thrashing avoidance of §5.1.2 on the
// triggering side; JISC's lazy migration handles it on the execution
// side.
package optimizer

import (
	"fmt"
	"math"
	"sort"

	"jisc/internal/engine"
	"jisc/internal/obs"
	"jisc/internal/plan"
	"jisc/internal/tuple"
)

// Config parameterizes an Advisor.
type Config struct {
	// MinImprovement is the minimum relative cost reduction (e.g.
	// 0.2 = 20%) a proposal must promise. Guards against thrashing.
	MinImprovement float64
	// Cooldown is the minimum number of observed tuples between
	// proposals. Guards against reacting to noise bursts.
	Cooldown uint64
	// Decay is the exponential smoothing factor applied to new
	// selectivity samples (0 < Decay ≤ 1; 1 = only the latest
	// window of observations counts). Default 0.5.
	Decay float64
	// MinProbes is the number of probes a stream must have received
	// since the last observation before its selectivity estimate is
	// trusted. Default 16.
	MinProbes uint64
	// UseLatency makes the advisor weight the cost model by the
	// measured per-stream probe latency (from the engine's sampled
	// obs instrumentation) instead of treating every probe as equally
	// expensive. With instrumentation off no latency estimates form
	// and the advisor behaves as if UseLatency were false.
	UseLatency bool
	// Tracer, when non-nil, receives an EvPlanProposed event for every
	// accepted proposal. Query labels those events.
	Tracer *obs.Tracer
	Query  string
}

// Advisor accumulates selectivity estimates and proposes plans.
type Advisor struct {
	cfg Config
	// sel holds the smoothed matches-per-probe estimate per stream.
	sel map[tuple.StreamID]float64
	// lat holds the smoothed probe latency (nanoseconds per probe of
	// the stream's scan state), from the engine's sampled timings.
	lat map[tuple.StreamID]float64
	// lastProbes/lastMatches are the previous cumulative counters, so
	// observations diff against them.
	lastProbes  map[tuple.StreamID]uint64
	lastMatches map[tuple.StreamID]uint64
	lastNanos   map[tuple.StreamID]uint64
	lastSamples map[tuple.StreamID]uint64
	sinceInput  uint64
	lastInput   uint64
}

// New returns an Advisor.
func New(cfg Config) (*Advisor, error) {
	if cfg.MinImprovement < 0 {
		return nil, fmt.Errorf("optimizer: negative MinImprovement")
	}
	if cfg.Decay == 0 {
		cfg.Decay = 0.5
	}
	if cfg.Decay < 0 || cfg.Decay > 1 {
		return nil, fmt.Errorf("optimizer: Decay must be in (0,1], got %v", cfg.Decay)
	}
	if cfg.MinProbes == 0 {
		cfg.MinProbes = 16
	}
	return &Advisor{
		cfg:         cfg,
		sel:         make(map[tuple.StreamID]float64),
		lat:         make(map[tuple.StreamID]float64),
		lastProbes:  make(map[tuple.StreamID]uint64),
		lastMatches: make(map[tuple.StreamID]uint64),
		lastNanos:   make(map[tuple.StreamID]uint64),
		lastSamples: make(map[tuple.StreamID]uint64),
	}, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Advisor {
	a, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// Observe pulls the per-scan probe/match counters (and, with
// instrumentation on, the sampled probe-latency accumulators) from a
// running engine and folds them into the smoothed estimates.
func (a *Advisor) Observe(e *engine.Engine) {
	for _, id := range e.Plan().Streams.Streams() {
		scan := e.Scan(id)
		if scan == nil {
			continue
		}
		a.ObserveSample(id, scan.Probes, scan.Matches)
		a.ObserveLatencySample(id, scan.ProbeNanos, scan.ProbeSamples)
	}
	in := e.Metrics().Input
	a.sinceInput += in - a.lastInput
	a.lastInput = in
}

// ObserveScanStats folds one cumulative per-stream counter reading —
// typically runtime.ScanStats' cross-shard sums — plus the matching
// cumulative input count into the estimates. Summed counters inherit
// ObserveSample's reset handling: a plan transition zeroes every
// shard's scan counters, the sums drop, and the advisor rebaselines.
func (a *Advisor) ObserveScanStats(stats []engine.ScanStats, input uint64) {
	for _, s := range stats {
		a.ObserveSample(s.Stream, s.Probes, s.Matches)
		a.ObserveLatencySample(s.Stream, s.ProbeNanos, s.ProbeSamples)
	}
	if input >= a.lastInput {
		a.sinceInput += input - a.lastInput
	}
	a.lastInput = input
}

// ObserveSample folds one cumulative (probes, matches) reading for a
// stream's scan state into the estimate. Exposed for tests and for
// engines not owned by this process. A reading below the previous one
// means the counters were reset — the engine rebuilds its operator
// tree (fresh Nodes, zeroed counters) at every plan transition — so
// the advisor rebaselines instead of folding in a huge bogus delta.
func (a *Advisor) ObserveSample(id tuple.StreamID, probes, matches uint64) {
	if probes < a.lastProbes[id] || matches < a.lastMatches[id] {
		a.lastProbes[id] = probes
		a.lastMatches[id] = matches
		return
	}
	dp := probes - a.lastProbes[id]
	dm := matches - a.lastMatches[id]
	a.lastProbes[id] = probes
	a.lastMatches[id] = matches
	if dp < a.cfg.MinProbes {
		return
	}
	sample := float64(dm) / float64(dp)
	if old, ok := a.sel[id]; ok {
		a.sel[id] = old*(1-a.cfg.Decay) + sample*a.cfg.Decay
	} else {
		a.sel[id] = sample
	}
}

// ObserveLatencySample folds one cumulative (nanoseconds, samples)
// probe-timing reading for a stream's scan state into the smoothed
// latency estimate, with the same reset rebaselining as ObserveSample.
// The accumulators come from the engine's sampled instrumentation
// (Node.ProbeNanos/ProbeSamples); with instrumentation off they stay
// zero and no estimate forms.
func (a *Advisor) ObserveLatencySample(id tuple.StreamID, nanos, samples uint64) {
	if nanos < a.lastNanos[id] || samples < a.lastSamples[id] {
		a.lastNanos[id] = nanos
		a.lastSamples[id] = samples
		return
	}
	dn := nanos - a.lastNanos[id]
	ds := samples - a.lastSamples[id]
	a.lastNanos[id] = nanos
	a.lastSamples[id] = samples
	if ds == 0 {
		return
	}
	sample := float64(dn) / float64(ds)
	if old, ok := a.lat[id]; ok {
		a.lat[id] = old*(1-a.cfg.Decay) + sample*a.cfg.Decay
	} else {
		a.lat[id] = sample
	}
}

// Selectivity returns the current matches-per-probe estimate for a
// stream and whether one exists yet.
func (a *Advisor) Selectivity(id tuple.StreamID) (float64, bool) {
	s, ok := a.sel[id]
	return s, ok
}

// ProbeLatency returns the smoothed probe latency estimate for a
// stream, in nanoseconds per probe, and whether one exists yet.
func (a *Advisor) ProbeLatency(id tuple.StreamID) (float64, bool) {
	l, ok := a.lat[id]
	return l, ok
}

// CostOf estimates the per-input-tuple processing cost of a left-deep
// order under the selectivity map: the sum of expected intermediate
// cardinalities Σ_{k≥2} Π_{i≤k} sel_i over the order's prefixes — the
// partial results materialized at each join level. Streams without an
// estimate count as selectivity 1.
func CostOf(order []tuple.StreamID, sel map[tuple.StreamID]float64) float64 {
	selOf := func(id tuple.StreamID) float64 {
		if s, ok := sel[id]; ok {
			return s
		}
		return 1
	}
	cost := 0.0
	card := selOf(order[0])
	for _, id := range order[1:] {
		card *= selOf(id)
		cost += card
	}
	return cost
}

// BestOrder returns the left-deep order minimizing CostOf: ascending
// selectivity. That is optimal by an exchange argument: swapping two
// adjacent streams at positions k, k+1 (k ≥ 1) changes only the k-th
// prefix product, by a positive multiple of sel_i − sel_j, and the
// bottom two positions are symmetric (every prefix contains both).
func BestOrder(streams []tuple.StreamID, sel map[tuple.StreamID]float64) []tuple.StreamID {
	order := append([]tuple.StreamID(nil), streams...)
	sort.SliceStable(order, func(i, j int) bool {
		si, ok := sel[order[i]]
		if !ok {
			si = 1
		}
		sj, ok := sel[order[j]]
		if !ok {
			sj = 1
		}
		if si != sj {
			return si < sj
		}
		return order[i] < order[j]
	})
	return order
}

// LatencyCostOf estimates the per-input-tuple processing time of a
// left-deep order: the expected number of probes into each level's
// inner state (the prefix cardinality feeding that level) weighted by
// that state's measured probe latency in nanoseconds. Streams without
// a selectivity estimate count as 1; streams without a latency
// estimate count as 1ns, which degrades gracefully to probe counting.
func LatencyCostOf(order []tuple.StreamID, sel, lat map[tuple.StreamID]float64) float64 {
	selOf := func(id tuple.StreamID) float64 {
		if s, ok := sel[id]; ok {
			return s
		}
		return 1
	}
	latOf := func(id tuple.StreamID) float64 {
		if l, ok := lat[id]; ok && l > 0 {
			return l
		}
		return 1
	}
	cost := 0.0
	card := selOf(order[0])
	for _, id := range order[1:] {
		cost += card * latOf(id)
		card *= selOf(id)
	}
	return cost
}

// LatencyOrder returns a left-deep order heuristically minimizing
// LatencyCostOf. Interior positions follow the Ibaraki–Kameda rank,
// descending (1 − sel)/lat: an adjacent exchange at positions k, k+1
// (k ≥ 1; streams x before y, prefix product P) compares
// P·lat_x + P·sel_x·lat_y against the swap, and x-first wins iff
// (1−sel_x)/lat_x > (1−sel_y)/lat_y. The head is special — position
// 0's own latency never enters the model (its state is not probed by
// a prefix), so after rank-sorting, each stream is tried as the head
// and the cheapest resulting order wins. With no latency estimates
// the rank degenerates to descending (1 − sel), i.e. BestOrder's
// ascending selectivity.
func LatencyOrder(streams []tuple.StreamID, sel, lat map[tuple.StreamID]float64) []tuple.StreamID {
	rank := func(id tuple.StreamID) float64 {
		s, ok := sel[id]
		if !ok {
			s = 1
		}
		l, ok := lat[id]
		if !ok || l <= 0 {
			l = 1
		}
		return (1 - s) / l
	}
	ranked := append([]tuple.StreamID(nil), streams...)
	sort.SliceStable(ranked, func(i, j int) bool {
		ri, rj := rank(ranked[i]), rank(ranked[j])
		if ri != rj {
			return ri > rj
		}
		return ranked[i] < ranked[j]
	})
	if len(ranked) < 3 {
		return ranked
	}
	best := ranked
	bestCost := LatencyCostOf(ranked, sel, lat)
	for i := 1; i < len(ranked); i++ {
		cand := make([]tuple.StreamID, 0, len(ranked))
		cand = append(cand, ranked[i])
		cand = append(cand, ranked[:i]...)
		cand = append(cand, ranked[i+1:]...)
		if c := LatencyCostOf(cand, sel, lat); c < bestCost {
			best, bestCost = cand, c
		}
	}
	return best
}

// Propose returns a better plan for the current one, if the estimated
// improvement clears the hysteresis thresholds. With UseLatency set
// and latency estimates available, candidates are compared under the
// latency-weighted cost model; otherwise under pure cardinalities.
// The cooldown counter resets on every proposal; accepted proposals
// are traced as EvPlanProposed when a Tracer is configured.
func (a *Advisor) Propose(current *plan.Plan) (*plan.Plan, bool) {
	if a.sinceInput < a.cfg.Cooldown {
		return nil, false
	}
	order, err := current.Order()
	if err != nil {
		return nil, false // only left-deep plans are advised
	}
	useLat := a.cfg.UseLatency && len(a.lat) > 0
	costOf := func(o []tuple.StreamID) float64 {
		if useLat {
			return LatencyCostOf(o, a.sel, a.lat)
		}
		return CostOf(o, a.sel)
	}
	// Candidate orders: ascending selectivity always; the latency-rank
	// order too when the latency signal is in play (the two differ
	// exactly when probe costs are skewed across streams).
	best := BestOrder(order, a.sel)
	if useLat {
		if cand := LatencyOrder(order, a.sel, a.lat); costOf(cand) < costOf(best) {
			best = cand
		}
	}
	curCost := costOf(order)
	bestCost := costOf(best)
	if bestCost >= curCost {
		return nil, false
	}
	improvement := (curCost - bestCost) / curCost
	if math.IsNaN(improvement) || improvement < a.cfg.MinImprovement {
		return nil, false
	}
	p, err := plan.LeftDeep(best...)
	if err != nil {
		return nil, false
	}
	if p.Equal(current) {
		return nil, false
	}
	a.sinceInput = 0
	a.cfg.Tracer.Emit(obs.Event{
		Kind: obs.EvPlanProposed, Query: a.cfg.Query,
		Count: uint64(improvement * 100),
		Note:  current.String() + " -> " + p.String(),
	})
	return p, true
}
