// Package optimizer provides the optimize-at-runtime trigger policy
// that the paper treats as orthogonal (§2: "we do not address the
// actual conditions that trigger a plan transition"): a statistics
// collector and advisor that watches per-operator selectivities in a
// running engine, estimates the cost of alternative left-deep orders,
// and proposes a transition when the current plan has drifted far
// enough from the best one. Hysteresis (minimum improvement and
// cooldown) implements the thrashing avoidance of §5.1.2 on the
// triggering side; JISC's lazy migration handles it on the execution
// side.
package optimizer

import (
	"fmt"
	"math"
	"sort"

	"jisc/internal/engine"
	"jisc/internal/plan"
	"jisc/internal/tuple"
)

// Config parameterizes an Advisor.
type Config struct {
	// MinImprovement is the minimum relative cost reduction (e.g.
	// 0.2 = 20%) a proposal must promise. Guards against thrashing.
	MinImprovement float64
	// Cooldown is the minimum number of observed tuples between
	// proposals. Guards against reacting to noise bursts.
	Cooldown uint64
	// Decay is the exponential smoothing factor applied to new
	// selectivity samples (0 < Decay ≤ 1; 1 = only the latest
	// window of observations counts). Default 0.5.
	Decay float64
	// MinProbes is the number of probes a stream must have received
	// since the last observation before its selectivity estimate is
	// trusted. Default 16.
	MinProbes uint64
}

// Advisor accumulates selectivity estimates and proposes plans.
type Advisor struct {
	cfg Config
	// sel holds the smoothed matches-per-probe estimate per stream.
	sel map[tuple.StreamID]float64
	// lastProbes/lastMatches are the previous cumulative counters, so
	// observations diff against them.
	lastProbes  map[tuple.StreamID]uint64
	lastMatches map[tuple.StreamID]uint64
	sinceInput  uint64
	lastInput   uint64
}

// New returns an Advisor.
func New(cfg Config) (*Advisor, error) {
	if cfg.MinImprovement < 0 {
		return nil, fmt.Errorf("optimizer: negative MinImprovement")
	}
	if cfg.Decay == 0 {
		cfg.Decay = 0.5
	}
	if cfg.Decay < 0 || cfg.Decay > 1 {
		return nil, fmt.Errorf("optimizer: Decay must be in (0,1], got %v", cfg.Decay)
	}
	if cfg.MinProbes == 0 {
		cfg.MinProbes = 16
	}
	return &Advisor{
		cfg:         cfg,
		sel:         make(map[tuple.StreamID]float64),
		lastProbes:  make(map[tuple.StreamID]uint64),
		lastMatches: make(map[tuple.StreamID]uint64),
	}, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Advisor {
	a, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// Observe pulls the per-scan probe/match counters from a running
// engine and folds them into the smoothed selectivity estimates.
func (a *Advisor) Observe(e *engine.Engine) {
	for _, id := range e.Plan().Streams.Streams() {
		scan := e.Scan(id)
		if scan == nil {
			continue
		}
		a.ObserveSample(id, scan.Probes, scan.Matches)
	}
	in := e.Metrics().Input
	a.sinceInput += in - a.lastInput
	a.lastInput = in
}

// ObserveSample folds one cumulative (probes, matches) reading for a
// stream's scan state into the estimate. Exposed for tests and for
// engines not owned by this process.
func (a *Advisor) ObserveSample(id tuple.StreamID, probes, matches uint64) {
	dp := probes - a.lastProbes[id]
	dm := matches - a.lastMatches[id]
	a.lastProbes[id] = probes
	a.lastMatches[id] = matches
	if dp < a.cfg.MinProbes {
		return
	}
	sample := float64(dm) / float64(dp)
	if old, ok := a.sel[id]; ok {
		a.sel[id] = old*(1-a.cfg.Decay) + sample*a.cfg.Decay
	} else {
		a.sel[id] = sample
	}
}

// Selectivity returns the current matches-per-probe estimate for a
// stream and whether one exists yet.
func (a *Advisor) Selectivity(id tuple.StreamID) (float64, bool) {
	s, ok := a.sel[id]
	return s, ok
}

// CostOf estimates the per-input-tuple processing cost of a left-deep
// order under the selectivity map: the sum of expected intermediate
// cardinalities Σ_{k≥2} Π_{i≤k} sel_i over the order's prefixes — the
// partial results materialized at each join level. Streams without an
// estimate count as selectivity 1.
func CostOf(order []tuple.StreamID, sel map[tuple.StreamID]float64) float64 {
	selOf := func(id tuple.StreamID) float64 {
		if s, ok := sel[id]; ok {
			return s
		}
		return 1
	}
	cost := 0.0
	card := selOf(order[0])
	for _, id := range order[1:] {
		card *= selOf(id)
		cost += card
	}
	return cost
}

// BestOrder returns the left-deep order minimizing CostOf: ascending
// selectivity. That is optimal by an exchange argument: swapping two
// adjacent streams at positions k, k+1 (k ≥ 1) changes only the k-th
// prefix product, by a positive multiple of sel_i − sel_j, and the
// bottom two positions are symmetric (every prefix contains both).
func BestOrder(streams []tuple.StreamID, sel map[tuple.StreamID]float64) []tuple.StreamID {
	order := append([]tuple.StreamID(nil), streams...)
	sort.SliceStable(order, func(i, j int) bool {
		si, ok := sel[order[i]]
		if !ok {
			si = 1
		}
		sj, ok := sel[order[j]]
		if !ok {
			sj = 1
		}
		if si != sj {
			return si < sj
		}
		return order[i] < order[j]
	})
	return order
}

// Propose returns a better plan for the current one, if the estimated
// improvement clears the hysteresis thresholds. The cooldown counter
// resets on every proposal.
func (a *Advisor) Propose(current *plan.Plan) (*plan.Plan, bool) {
	if a.sinceInput < a.cfg.Cooldown {
		return nil, false
	}
	order, err := current.Order()
	if err != nil {
		return nil, false // only left-deep plans are advised
	}
	best := BestOrder(order, a.sel)
	curCost := CostOf(order, a.sel)
	bestCost := CostOf(best, a.sel)
	if bestCost >= curCost {
		return nil, false
	}
	improvement := (curCost - bestCost) / curCost
	if math.IsNaN(improvement) || improvement < a.cfg.MinImprovement {
		return nil, false
	}
	p, err := plan.LeftDeep(best...)
	if err != nil {
		return nil, false
	}
	if p.Equal(current) {
		return nil, false
	}
	a.sinceInput = 0
	return p, true
}
