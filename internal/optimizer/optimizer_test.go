package optimizer

import (
	"math"
	"testing"
	"testing/quick"

	"jisc/internal/core"
	"jisc/internal/engine"
	"jisc/internal/obs"
	"jisc/internal/plan"
	"jisc/internal/testseed"
	"jisc/internal/tuple"
	"jisc/internal/workload"
)

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{MinImprovement: -1}); err == nil {
		t.Error("negative MinImprovement accepted")
	}
	if _, err := New(Config{Decay: 2}); err == nil {
		t.Error("Decay > 1 accepted")
	}
	if _, err := New(Config{Decay: -0.5}); err == nil {
		t.Error("negative Decay accepted")
	}
	a := MustNew(Config{})
	if a == nil {
		t.Fatal("default config rejected")
	}
}

func TestCostOf(t *testing.T) {
	sel := map[tuple.StreamID]float64{0: 1, 1: 0.5, 2: 2, 3: 1}
	// order 0,1,2,3: prefixes 1*0.5, 1*0.5*2, 1*0.5*2*1 = 0.5+1+1 = 2.5
	if got := CostOf([]tuple.StreamID{0, 1, 2, 3}, sel); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("cost = %v, want 2.5", got)
	}
	// order 0,2,1,3: prefixes 2, 1, 1 = 4
	if got := CostOf([]tuple.StreamID{0, 2, 1, 3}, sel); math.Abs(got-4) > 1e-12 {
		t.Fatalf("cost = %v, want 4", got)
	}
	// Unknown streams count as selectivity 1.
	if got := CostOf([]tuple.StreamID{9, 8}, nil); got != 1 {
		t.Fatalf("cost with nil sel = %v", got)
	}
}

func TestBestOrderSortsAscending(t *testing.T) {
	sel := map[tuple.StreamID]float64{0: 0.9, 1: 0.1, 2: 3, 3: 0.5}
	got := BestOrder([]tuple.StreamID{0, 1, 2, 3}, sel)
	want := []tuple.StreamID{1, 3, 0, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BestOrder = %v, want %v", got, want)
		}
	}
}

// Property: BestOrder's cost is ≤ the cost of any random permutation.
func TestBestOrderOptimalProperty(t *testing.T) {
	f := func(rawSel [6]uint8, perm1, perm2 uint8) bool {
		streams := []tuple.StreamID{0, 1, 2, 3, 4, 5}
		sel := map[tuple.StreamID]float64{}
		for i, r := range rawSel {
			sel[tuple.StreamID(i)] = float64(r%40)/10 + 0.05
		}
		best := BestOrder(streams, sel)
		bestCost := CostOf(best, sel)
		// Compare against a couple of derived permutations.
		alt := append([]tuple.StreamID(nil), streams...)
		i, j := int(perm1)%6, int(perm2)%6
		alt[i], alt[j] = alt[j], alt[i]
		return bestCost <= CostOf(alt, sel)+1e-9
	}
	if err := quick.Check(f, testseed.Quick(t, 1, 500)); err != nil {
		t.Fatal(err)
	}
}

func TestObserveSampleSmoothing(t *testing.T) {
	a := MustNew(Config{Decay: 0.5, MinProbes: 1})
	a.ObserveSample(0, 100, 100) // sel = 1.0
	if s, ok := a.Selectivity(0); !ok || s != 1.0 {
		t.Fatalf("sel = %v %v", s, ok)
	}
	a.ObserveSample(0, 200, 100) // window sample 0.0 -> smoothed 0.5
	if s, _ := a.Selectivity(0); math.Abs(s-0.5) > 1e-12 {
		t.Fatalf("smoothed sel = %v, want 0.5", s)
	}
	// Too few new probes: estimate unchanged.
	a.ObserveSample(0, 200, 100)
	if s, _ := a.Selectivity(0); math.Abs(s-0.5) > 1e-12 {
		t.Fatalf("estimate moved on zero probes: %v", s)
	}
}

func TestProposeHysteresis(t *testing.T) {
	a := MustNew(Config{MinImprovement: 0.3, Cooldown: 10, MinProbes: 1})
	cur := plan.MustLeftDeep(0, 1, 2)
	// No data, cooldown not reached: no proposal.
	if _, ok := a.Propose(cur); ok {
		t.Fatal("proposed with no observations")
	}
	// Feed strongly inverted selectivities.
	a.ObserveSample(1, 100, 10)  // sel 0.1
	a.ObserveSample(2, 100, 400) // sel 4.0
	a.sinceInput = 100
	// The expensive stream 2 sits in the middle of the current plan;
	// moving it last shrinks the first prefix by 40x.
	cur = plan.MustLeftDeep(0, 2, 1)
	p, ok := a.Propose(cur)
	if !ok {
		t.Fatal("no proposal despite large improvement")
	}
	order, _ := p.Order()
	if order[len(order)-1] != 2 {
		t.Fatalf("most expensive stream not last: %v", order)
	}
	// Cooldown resets after proposal.
	if _, ok := a.Propose(cur); ok {
		t.Fatal("proposal during cooldown")
	}
}

func TestProposeRejectsSmallImprovement(t *testing.T) {
	a := MustNew(Config{MinImprovement: 0.5, Cooldown: 0, MinProbes: 1})
	a.ObserveSample(1, 100, 100) // 1.0
	a.ObserveSample(2, 100, 110) // 1.1 — tiny difference
	a.sinceInput = 1
	if _, ok := a.Propose(plan.MustLeftDeep(0, 2, 1)); ok {
		t.Fatal("proposed for sub-threshold improvement")
	}
}

func TestProposeSkipsBushy(t *testing.T) {
	a := MustNew(Config{})
	bushy := plan.MustNew(plan.Join(plan.Join(plan.Leaf(0), plan.Leaf(1)), plan.Join(plan.Leaf(2), plan.Leaf(3))))
	if _, ok := a.Propose(bushy); ok {
		t.Fatal("advised a bushy plan")
	}
}

func TestProposeNoChangeForOptimalPlan(t *testing.T) {
	a := MustNew(Config{MinImprovement: 0.1, Cooldown: 0, MinProbes: 1})
	a.ObserveSample(1, 100, 10)
	a.ObserveSample(2, 100, 400)
	a.sinceInput = 1
	// Already optimal order.
	if _, ok := a.Propose(plan.MustLeftDeep(0, 1, 2)); ok {
		t.Fatal("proposed a no-op transition")
	}
}

// End to end: an engine running a plan with the expensive stream at
// the bottom; the advisor observes real probe counters and proposes
// moving the selective stream down, and the engine migrates under
// JISC to the improved plan.
func TestAdvisorDrivesEngineMigration(t *testing.T) {
	// Stream 1 draws from a tiny domain (matches often, expensive);
	// stream 2 from a large one (selective). Plan starts with the
	// expensive stream first.
	src := workload.MustNewSource(workload.Config{
		Streams: 3, Domain: 8, Seed: 5,
		Domains: []int64{8, 2, 64},
	})
	e := engine.MustNew(engine.Config{
		Plan: plan.MustLeftDeep(0, 1, 2), WindowSize: 64, Strategy: core.New(),
	})
	a := MustNew(Config{MinImprovement: 0.1, Cooldown: 100, MinProbes: 8})
	migrated := false
	for i := 0; i < 4000 && !migrated; i++ {
		e.Feed(src.Next())
		if i%200 == 0 {
			a.Observe(e)
			if p, ok := a.Propose(e.Plan()); ok {
				if err := e.Migrate(p); err != nil {
					t.Fatal(err)
				}
				migrated = true
				order, _ := p.Order()
				// The hot (tiny-domain) stream 1 must move after the
				// selective stream 2.
				pos := map[tuple.StreamID]int{}
				for idx, id := range order {
					pos[id] = idx
				}
				if pos[1] < pos[2] {
					t.Fatalf("expensive stream not demoted: %v", order)
				}
			}
		}
	}
	if !migrated {
		t.Fatal("advisor never proposed a transition")
	}
	if e.Metrics().Transitions != 1 {
		t.Fatalf("transitions = %d", e.Metrics().Transitions)
	}
}

// TestObserveSampleResetRebaseline: a cumulative reading below the
// previous one (fresh Nodes after a plan transition zero the counters)
// must rebaseline, not fold in a wrapped-around delta.
func TestObserveSampleResetRebaseline(t *testing.T) {
	a := MustNew(Config{Decay: 1, MinProbes: 1})
	a.ObserveSample(0, 100, 50)
	if s, _ := a.Selectivity(0); s != 0.5 {
		t.Fatalf("sel = %v, want 0.5", s)
	}
	// Counters reset (e.g. after Migrate rebuilt the tree), then a few
	// fresh probes with a different rate.
	a.ObserveSample(0, 4, 4)
	if s, _ := a.Selectivity(0); s != 0.5 {
		t.Fatalf("sel after reset reading = %v, want unchanged 0.5", s)
	}
	a.ObserveSample(0, 14, 14)
	if s, _ := a.Selectivity(0); s != 1.0 {
		t.Fatalf("sel after fresh delta = %v, want 1.0", s)
	}
}

func TestObserveLatencySampleSmoothingAndReset(t *testing.T) {
	a := MustNew(Config{Decay: 0.5})
	a.ObserveLatencySample(2, 1000, 10) // 100ns/probe
	if l, ok := a.ProbeLatency(2); !ok || l != 100 {
		t.Fatalf("lat = %v/%v, want 100", l, ok)
	}
	a.ObserveLatencySample(2, 1000+3000, 10+10) // 300ns/probe sample
	if l, _ := a.ProbeLatency(2); l != 200 {
		t.Fatalf("smoothed lat = %v, want 200", l)
	}
	a.ObserveLatencySample(2, 50, 1) // reset: rebaseline only
	if l, _ := a.ProbeLatency(2); l != 200 {
		t.Fatalf("lat after reset reading = %v, want unchanged 200", l)
	}
}

func TestLatencyCostOf(t *testing.T) {
	sel := map[tuple.StreamID]float64{0: 0.5, 1: 2, 2: 1}
	lat := map[tuple.StreamID]float64{0: 10, 1: 40, 2: 5}
	// order [0 1 2]: probes into 1 = 0.5 → 0.5·40; probes into 2 =
	// 0.5·2 → 1·5.
	if got, want := LatencyCostOf([]tuple.StreamID{0, 1, 2}, sel, lat), 0.5*40+1.0*5; got != want {
		t.Fatalf("LatencyCostOf = %v, want %v", got, want)
	}
	// Missing latency defaults to 1ns: degrades to probe counting.
	if got, want := LatencyCostOf([]tuple.StreamID{0, 1, 2}, sel, nil), 0.5+1.0; got != want {
		t.Fatalf("LatencyCostOf no-lat = %v, want %v", got, want)
	}
}

// TestLatencyOrderPrefersCheapStates: equal selectivities, so pure
// cardinality cost is indifferent — the latency rank must put the
// cheap-to-probe states first and the advisor must re-plan on that
// signal alone.
func TestLatencyOrderPrefersCheapStates(t *testing.T) {
	sel := map[tuple.StreamID]float64{0: 0.5, 1: 0.5, 2: 0.5}
	lat := map[tuple.StreamID]float64{0: 1000, 1: 10, 2: 100}
	got := LatencyOrder([]tuple.StreamID{0, 1, 2}, sel, lat)
	// Position 0's state latency never enters the model, so the
	// expensive state hides at the head; the rest go cheap-first.
	want := []tuple.StreamID{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LatencyOrder = %v, want %v", got, want)
		}
	}
	// Exchange-optimality spot check: the rank order is no worse than
	// every permutation of this 3-stream set.
	best := LatencyCostOf(got, sel, lat)
	perms := [][]tuple.StreamID{
		{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0},
	}
	for _, p := range perms {
		if c := LatencyCostOf(p, sel, lat); c < best {
			t.Fatalf("order %v costs %v, beats rank order %v at %v", p, c, got, best)
		}
	}
}

// TestProposeUsesLatencySignal: same selectivity everywhere, skewed
// probe latencies. Without UseLatency the advisor sees nothing to
// improve; with it, it proposes moving the expensive state out of the
// probe-heavy downstream positions and traces the proposal.
func TestProposeUsesLatencySignal(t *testing.T) {
	tr := obs.NewTracer(8)
	mk := func(useLat bool) *Advisor {
		a := MustNew(Config{MinImprovement: 0.1, MinProbes: 1, Decay: 1, UseLatency: useLat, Tracer: tr, Query: "q"})
		for id := tuple.StreamID(0); id < 3; id++ {
			a.ObserveSample(id, 100, 50)
		}
		a.ObserveLatencySample(0, 100000, 10) // 10µs: expensive scan state
		a.ObserveLatencySample(1, 1000, 10)
		a.ObserveLatencySample(2, 1000, 10)
		return a
	}
	cur := plan.MustLeftDeep(1, 2, 0)
	if p, ok := mk(false).Propose(cur); ok {
		t.Fatalf("latency-blind advisor proposed %v", p)
	}
	p, ok := mk(true).Propose(cur)
	if !ok {
		t.Fatal("latency-aware advisor proposed nothing")
	}
	order, _ := p.Order()
	if order[0] != 0 {
		t.Fatalf("expensive stream 0 not at the unprobed head in %v", order)
	}
	found := false
	for _, ev := range tr.Events() {
		if ev.Kind == obs.EvPlanProposed && ev.Query == "q" {
			found = true
		}
	}
	if !found {
		t.Fatal("no EvPlanProposed event traced")
	}
}
