package statestore

import (
	"fmt"
	"testing"

	"jisc/internal/state"
	"jisc/internal/storage"
	"jisc/internal/tuple"
)

func mustOpen(t *testing.T, opts Options) *Store {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = "spill"
	}
	if opts.FS == nil {
		opts.FS = storage.NewMemFS()
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func base(stream tuple.StreamID, seq uint64, key tuple.Value) *tuple.Tuple {
	return tuple.NewBase(stream, seq, key, seq)
}

// fill inserts n base tuples with distinct keys into tbl.
func fill(tbl *state.Table, n int) {
	for i := 0; i < n; i++ {
		tbl.Insert(base(0, uint64(i+1), tuple.Value(i)))
	}
}

func TestSpillAndFaultRoundTrip(t *testing.T) {
	perTuple := state.TupleBytes(base(0, 1, 1))
	s := mustOpen(t, Options{Budget: 4 * perTuple})
	tbl := state.NewTable(tuple.NewStreamSet(0))
	tbl.SetBackend(s, true)

	fill(tbl, 16)
	st := s.Stats()
	if st.ResidentBytes > 4*perTuple {
		t.Fatalf("resident %d exceeds budget %d", st.ResidentBytes, 4*perTuple)
	}
	if st.Spills == 0 || st.SpilledBuckets == 0 {
		t.Fatalf("expected spills, got %+v", st)
	}
	if tbl.Size() != 16 {
		t.Fatalf("logical size = %d, want 16", tbl.Size())
	}
	if tbl.DistinctKeys() != 16 {
		t.Fatalf("distinct keys = %d, want 16", tbl.DistinctKeys())
	}
	// Probe every key: spilled buckets fault back with identical
	// contents.
	for i := 0; i < 16; i++ {
		got := tbl.Probe(tuple.Value(i))
		if len(got) != 1 {
			t.Fatalf("probe key %d: %d tuples, want 1", i, len(got))
		}
		tup := got[0]
		if tup.Key != tuple.Value(i) || len(tup.Refs) != 1 || tup.Refs[0] != (tuple.Ref{Stream: 0, Seq: uint64(i + 1)}) {
			t.Fatalf("probe key %d returned wrong tuple: %v", i, tup)
		}
		if tup.Arrival != uint64(i+1) || tup.Oldest != uint64(i+1) {
			t.Fatalf("probe key %d lost ticks: %v", i, tup)
		}
	}
	if s.Stats().Faults == 0 {
		t.Fatal("expected faults")
	}
	if got := s.Stats().ResidentBytes; got > 4*perTuple {
		t.Fatalf("resident %d exceeds budget after probes", got)
	}
}

func TestMultiTupleBucketsAndPayloads(t *testing.T) {
	s := mustOpen(t, Options{Budget: 1}) // everything spills
	tbl := state.NewTable(tuple.NewStreamSet(0))
	tbl.SetBackend(s, true)

	for i := 0; i < 6; i++ {
		tup := base(0, uint64(i+1), tuple.Value(i%2))
		tup.Payload = []tuple.Value{tuple.Value(100 + i), tuple.Value(200 + i)}
		tbl.Insert(tup)
	}
	if tbl.Size() != 6 {
		t.Fatalf("size = %d", tbl.Size())
	}
	got := tbl.Probe(0)
	if len(got) != 3 {
		t.Fatalf("bucket 0 has %d tuples, want 3", len(got))
	}
	for _, tup := range got {
		i := int(tup.Refs[0].Seq) - 1
		want := []tuple.Value{tuple.Value(100 + i), tuple.Value(200 + i)}
		if len(tup.Payload) != 2 || tup.Payload[0] != want[0] || tup.Payload[1] != want[1] {
			t.Fatalf("payload lost in round trip: %v", tup)
		}
	}
}

func TestTombstoneEviction(t *testing.T) {
	perTuple := state.TupleBytes(base(0, 1, 1))
	s := mustOpen(t, Options{Budget: 2 * perTuple})
	tbl := state.NewTable(tuple.NewStreamSet(0))
	tbl.SetBackend(s, true)

	// Two tuples per key so tombstones have a partial phase.
	for i := 0; i < 8; i++ {
		tbl.Insert(base(0, uint64(i+1), tuple.Value(i%4)))
	}
	if s.Stats().SpilledBuckets == 0 {
		t.Fatal("expected spilled buckets")
	}
	// Evict the first round (seqs 1..4) in order, like a sliding
	// window would.
	for i := 0; i < 4; i++ {
		tbl.RemoveRef(tuple.Value(i%4), tuple.Ref{Stream: 0, Seq: uint64(i + 1)})
	}
	if tbl.Size() != 4 {
		t.Fatalf("size after eviction = %d, want 4", tbl.Size())
	}
	// Every key still has one live tuple, visible without faulting.
	for i := 0; i < 4; i++ {
		if !tbl.ContainsKey(tuple.Value(i)) {
			t.Fatalf("key %d vanished", i)
		}
	}
	// Faulting in filters the tombstoned tuples.
	for i := 0; i < 4; i++ {
		got := tbl.Probe(tuple.Value(i))
		if len(got) != 1 {
			t.Fatalf("key %d: %d tuples, want 1", i, len(got))
		}
		if got[0].Refs[0].Seq != uint64(i+5) {
			t.Fatalf("key %d: survivor has seq %d, want %d", i, got[0].Refs[0].Seq, i+5)
		}
	}
	// Evict the second round; keys disappear entirely.
	for i := 0; i < 4; i++ {
		tbl.RemoveRef(tuple.Value(i%4), tuple.Ref{Stream: 0, Seq: uint64(i + 5)})
	}
	if tbl.Size() != 0 {
		t.Fatalf("size = %d, want 0", tbl.Size())
	}
	for i := 0; i < 4; i++ {
		if tbl.ContainsKey(tuple.Value(i)) {
			t.Fatalf("key %d still present", i)
		}
	}
}

func TestEachAndCountOldCoverSpilled(t *testing.T) {
	s := mustOpen(t, Options{Budget: 1})
	tbl := state.NewTable(tuple.NewStreamSet(0))
	tbl.SetBackend(s, true)
	fill(tbl, 10)

	faultsBefore := s.Stats().Faults
	seen := make(map[tuple.Value]bool)
	tbl.Each(func(tup *tuple.Tuple) bool {
		seen[tup.Key] = true
		return true
	})
	if len(seen) != 10 {
		t.Fatalf("Each saw %d keys, want 10", len(seen))
	}
	if n := tbl.CountOld(5, func(tup *tuple.Tuple) uint64 { return tup.Oldest }); n != 5 {
		t.Fatalf("CountOld = %d, want 5", n)
	}
	if s.Stats().Faults != faultsBefore {
		t.Fatal("iteration must not fault buckets in")
	}
}

func TestClearDropsSpilled(t *testing.T) {
	s := mustOpen(t, Options{Budget: 1})
	tbl := state.NewTable(tuple.NewStreamSet(0))
	tbl.SetBackend(s, true)
	fill(tbl, 10)

	tbl.Clear()
	if tbl.Size() != 0 || tbl.DistinctKeys() != 0 || tbl.Bytes() != 0 {
		t.Fatalf("Clear left size=%d keys=%d bytes=%d", tbl.Size(), tbl.DistinctKeys(), tbl.Bytes())
	}
	st := s.Stats()
	if st.SpilledBuckets != 0 || st.SpilledBytes != 0 {
		t.Fatalf("Clear left spilled state: %+v", st)
	}
	if st.ResidentBytes != 0 {
		t.Fatalf("Clear left resident accounting: %d", st.ResidentBytes)
	}
	// The table is fully usable after Clear.
	fill(tbl, 4)
	if tbl.Size() != 4 {
		t.Fatalf("size after refill = %d", tbl.Size())
	}
}

func TestInsertIntoSpilledBucketFaultsFirst(t *testing.T) {
	perTuple := state.TupleBytes(base(0, 1, 1))
	s := mustOpen(t, Options{Budget: 2 * perTuple})
	tbl := state.NewTable(tuple.NewStreamSet(0))
	tbl.SetBackend(s, true)
	fill(tbl, 6)
	// Key 0 is almost certainly spilled; inserting another tuple under
	// it must keep the bucket whole.
	tbl.Insert(base(0, 100, 0))
	got := tbl.Probe(0)
	if len(got) != 2 {
		t.Fatalf("bucket 0 has %d tuples, want 2", len(got))
	}
}

func TestCompaction(t *testing.T) {
	perTuple := state.TupleBytes(base(0, 1, 1))
	s := mustOpen(t, Options{Budget: perTuple, MinCompactBytes: 256, SegmentBytes: 1024})
	tbl := state.NewTable(tuple.NewStreamSet(0))
	tbl.SetBackend(s, true)

	// Spill a lot, then evict most of it so garbage accumulates.
	for i := 0; i < 64; i++ {
		tbl.Insert(base(0, uint64(i+1), tuple.Value(i)))
	}
	for i := 0; i < 56; i++ {
		tbl.RemoveRef(tuple.Value(i), tuple.Ref{Stream: 0, Seq: uint64(i + 1)})
	}
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatalf("expected compactions, got %+v", st)
	}
	if st.GarbageBytes < 0 {
		t.Fatalf("negative garbage: %+v", st)
	}
	// Surviving keys are intact.
	live := 0
	for i := 0; i < 64; i++ {
		if tbl.ContainsKey(tuple.Value(i)) {
			live++
		}
	}
	if live != 8 {
		t.Fatalf("%d live keys, want 8", live)
	}
	if tbl.Size() != 8 {
		t.Fatalf("size = %d, want 8", tbl.Size())
	}
}

func TestFaultLoadedSliceSurvivesRespill(t *testing.T) {
	perTuple := state.TupleBytes(base(0, 1, 1))
	s := mustOpen(t, Options{Budget: 2 * perTuple})
	tbl := state.NewTable(tuple.NewStreamSet(0))
	tbl.SetBackend(s, true)
	fill(tbl, 8)

	// Hold the probe result, then force churn that re-spills the
	// bucket; the held slice must stay valid.
	held := tbl.Probe(0)
	if len(held) != 1 {
		t.Fatalf("probe: %d tuples", len(held))
	}
	for i := 100; i < 120; i++ {
		tbl.Insert(base(0, uint64(i+1), tuple.Value(i)))
	}
	if held[0].Key != 0 || held[0].Refs[0].Seq != 1 {
		t.Fatalf("held slice corrupted: %v", held[0])
	}
}

func TestUnboundedBudgetNeverSpills(t *testing.T) {
	s := mustOpen(t, Options{Budget: 0})
	tbl := state.NewTable(tuple.NewStreamSet(0))
	tbl.SetBackend(s, true)
	fill(tbl, 100)
	st := s.Stats()
	if st.Spills != 0 {
		t.Fatalf("unbounded store spilled: %+v", st)
	}
	if st.ResidentBytes != tbl.Bytes() {
		t.Fatalf("accounting mismatch: store %d, table %d", st.ResidentBytes, tbl.Bytes())
	}
}

func TestSpillWriteFailureFailsOpen(t *testing.T) {
	perTuple := state.TupleBytes(base(0, 1, 1))
	// Let the store set itself up, then cut the disk.
	crash := storage.NewCrashFS(storage.NewMemFS(), 1<<20)
	s := mustOpen(t, Options{Budget: 2 * perTuple, FS: crash})
	tbl := state.NewTable(tuple.NewStreamSet(0))
	tbl.SetBackend(s, true)
	fill(tbl, 4)
	// Exhaust the write budget.
	for crash.Crashed() == false {
		p := make([]byte, 1<<16)
		f, err := crash.Create("burn")
		if err != nil {
			break
		}
		f.Write(p)
		f.Close()
	}
	// Inserts keep working; buckets stay resident; errors are counted.
	for i := 100; i < 120; i++ {
		tbl.Insert(base(0, uint64(i+1), tuple.Value(i)))
	}
	st := s.Stats()
	if st.SpillErrors == 0 {
		t.Fatalf("expected spill errors, got %+v", st)
	}
	if tbl.Size() != 24 {
		t.Fatalf("size = %d, want 24", tbl.Size())
	}
	for i := 100; i < 120; i++ {
		if len(tbl.Probe(tuple.Value(i))) != 1 {
			t.Fatalf("key %d lost after write failure", i)
		}
	}
}

func TestReleaseForgetsTable(t *testing.T) {
	s := mustOpen(t, Options{Budget: 1})
	a := state.NewTable(tuple.NewStreamSet(0))
	a.SetBackend(s, true)
	b := state.NewTable(tuple.NewStreamSet(1))
	b.SetBackend(s, true)
	fill(a, 10)
	for i := 0; i < 10; i++ {
		b.Insert(base(1, uint64(i+1), tuple.Value(i)))
	}
	a.Release()
	st := s.Stats()
	if st.ResidentBytes != b.Bytes() {
		t.Fatalf("release did not drop a's accounting: store %d, b %d", st.ResidentBytes, b.Bytes())
	}
	// b is untouched.
	for i := 0; i < 10; i++ {
		if len(b.Probe(tuple.Value(i))) != 1 {
			t.Fatalf("b key %d lost", i)
		}
	}
}

func TestListAccounting(t *testing.T) {
	s := mustOpen(t, Options{Budget: 0})
	l := state.NewList(tuple.NewStreamSet(0))
	l.SetBackend(s)
	var want int64
	for i := 0; i < 10; i++ {
		tup := base(0, uint64(i+1), tuple.Value(i))
		want += state.TupleBytes(tup)
		l.Insert(tup)
	}
	if l.Bytes() != want || s.Stats().ResidentBytes != want {
		t.Fatalf("list bytes %d, store %d, want %d", l.Bytes(), s.Stats().ResidentBytes, want)
	}
	removed := l.RemoveRef(tuple.Ref{Stream: 0, Seq: 1})
	if len(removed) != 1 {
		t.Fatalf("removed %d", len(removed))
	}
	want -= state.TupleBytes(removed[0])
	if l.Bytes() != want || s.Stats().ResidentBytes != want {
		t.Fatalf("after remove: list %d, store %d, want %d", l.Bytes(), s.Stats().ResidentBytes, want)
	}
	l.Clear()
	if l.Bytes() != 0 || s.Stats().ResidentBytes != 0 {
		t.Fatalf("after clear: list %d, store %d", l.Bytes(), s.Stats().ResidentBytes)
	}
}

// TestRealFS exercises the ReaderAt read path against the actual
// filesystem (every other test runs on MemFS).
func TestRealFS(t *testing.T) {
	perTuple := state.TupleBytes(base(0, 1, 1))
	s := mustOpen(t, Options{Budget: 2 * perTuple, Dir: t.TempDir() + "/spill"})
	tbl := state.NewTable(tuple.NewStreamSet(0))
	tbl.SetBackend(s, true)
	fill(tbl, 32)
	for i := 0; i < 32; i++ {
		got := tbl.Probe(tuple.Value(i))
		if len(got) != 1 || got[0].Refs[0].Seq != uint64(i+1) {
			t.Fatalf("key %d: %v", i, got)
		}
	}
	if s.Stats().Faults == 0 {
		t.Fatal("expected faults on real fs")
	}
}

func TestSegmentRotation(t *testing.T) {
	s := mustOpen(t, Options{Budget: 1, SegmentBytes: 256, MinCompactBytes: 1 << 30})
	tbl := state.NewTable(tuple.NewStreamSet(0))
	tbl.SetBackend(s, true)
	fill(tbl, 64)
	if got := s.Stats().Segments; got < 2 {
		t.Fatalf("segments = %d, want rotation past 1", got)
	}
	// All buckets readable across segments.
	for i := 0; i < 64; i++ {
		if len(tbl.Probe(tuple.Value(i))) != 1 {
			t.Fatalf("key %d unreadable", i)
		}
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{ResidentBytes: 1, Faults: 2, Spills: 3}
	b := Stats{ResidentBytes: 10, Faults: 20, Spills: 30}
	c := a.Add(b)
	if c.ResidentBytes != 11 || c.Faults != 22 || c.Spills != 33 {
		t.Fatalf("Add: %+v", c)
	}
}

func TestStringerSmoke(t *testing.T) {
	tbl := state.NewTable(tuple.NewStreamSet(0))
	fill(tbl, 3)
	if got := fmt.Sprint(tbl); got == "" {
		t.Fatal("empty String()")
	}
}
