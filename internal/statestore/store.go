package statestore

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"jisc/internal/obs"
	"jisc/internal/state"
	"jisc/internal/storage"
	"jisc/internal/tuple"
)

// Options configures one Store (one per engine shard).
type Options struct {
	// Budget is the resident-byte budget (TupleBytes accounting) the
	// store governs. Zero or negative means unbounded: accounting runs
	// but nothing ever spills.
	Budget int64
	// Dir is the segment directory. It is wiped on Open — spill
	// segments are a residency cache, not durable state; crash
	// recovery rebuilds state from the WAL and checkpoints, re-spilling
	// as the budget demands.
	Dir string
	// FS is the filesystem; nil means the real one.
	FS storage.FS
	// SegmentBytes rotates the active segment once it reaches this
	// size. Zero means DefaultSegmentBytes.
	SegmentBytes int64
	// GarbageRatio triggers compaction when garbage exceeds this
	// fraction of total encoded bytes. Zero means DefaultGarbageRatio.
	GarbageRatio float64
	// MinCompactBytes suppresses compaction below this total encoded
	// size, so tiny stores do not churn. Zero means
	// DefaultMinCompactBytes.
	MinCompactBytes int64
	// FaultLatency, when non-nil, records the wall-clock latency of
	// every bucket fault.
	FaultLatency *obs.Histogram
}

// Tuning defaults.
const (
	DefaultSegmentBytes    = 1 << 20
	DefaultGarbageRatio    = 0.5
	DefaultMinCompactBytes = 64 << 10
)

// ckey names one bucket: which table, which join-attribute value.
type ckey struct {
	t   *state.Table
	key tuple.Value
}

// segment is one log-structured spill file, spill-%016x.seg. Only the
// newest (active) segment accepts appends; older ones are read-only
// until compaction rewrites the live set and deletes them.
type segment struct {
	id   uint64
	path string
	w    storage.File // nil once the segment stops accepting appends
	size int64
}

// bucketEntry locates one spilled bucket: a contiguous run of frames
// in one segment, plus the tombstone high-water mark and the live
// accounting needed to decide compaction.
type bucketEntry struct {
	seg *segment
	off int64
	n   int64 // encoded bytes of the bucket's frames

	// liveEnc/perEnc track how much of n is still live as tombstones
	// land — perEnc is the per-tuple share fixed at spill time.
	liveEnc int64
	perEnc  int64
	// memBytes/perMem are the same accounting in resident-equivalent
	// (TupleBytes) units, for the spilled-bytes statistic.
	memBytes int64
	perMem   int64

	// count is the number of live tuples; deadThrough is the tombstone
	// mark — single-ref tuples with Seq ≤ deadThrough are dead and are
	// filtered out on fault, peek, and compaction.
	count       int
	deadThrough uint64
}

// Store is the spill backend for one shard's tables. It is confined to
// the shard's goroutine like the tables themselves; only Stats may be
// called concurrently (every counter it reads is atomic).
//
// Spill writes, faults, and compaction all run synchronously on the
// shard worker, so when the disk cannot keep up the shard's input
// queue fills and the existing Block/Shed backpressure of the batch
// path takes over — the system slows or sheds instead of OOMing.
type Store struct {
	budget     int64
	dir        string
	fs         storage.FS
	segBytes   int64
	garbage    float64
	minCompact int64
	faultLat   *obs.Histogram

	index  map[*state.Table]map[tuple.Value]*bucketEntry
	segs   map[uint64]*segment
	active *segment
	next   uint64

	// ring/hand/inRing implement CLOCK over resident buckets. Stale
	// entries (buckets evicted or spilled since admission) are removed
	// lazily as the hand meets them.
	ring   []ckey
	hand   int
	inRing map[ckey]struct{}

	// compactBroken latches after a failed compaction so a sick disk
	// is not hammered with a rewrite attempt per tombstone; the store
	// keeps running fail-open (garbage just accumulates).
	compactBroken bool

	buf []byte // reusable frame-encoding buffer

	resident       atomic.Int64
	peak           atomic.Int64
	spilledMem     atomic.Int64
	spilledBuckets atomic.Int64
	encTotal       atomic.Int64
	encLive        atomic.Int64
	nsegs          atomic.Int64
	spills         atomic.Uint64
	faults         atomic.Uint64
	faultTuples    atomic.Uint64
	tombstones     atomic.Uint64
	compactions    atomic.Uint64
	spillErrors    atomic.Uint64
}

// Open creates a Store over a freshly wiped Dir.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, errors.New("statestore: Options.Dir is required")
	}
	fs := opts.FS
	if fs == nil {
		fs = storage.OS()
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.GarbageRatio <= 0 {
		opts.GarbageRatio = DefaultGarbageRatio
	}
	if opts.MinCompactBytes <= 0 {
		opts.MinCompactBytes = DefaultMinCompactBytes
	}
	if err := fs.RemoveAll(opts.Dir); err != nil {
		return nil, fmt.Errorf("statestore: wiping %s: %w", opts.Dir, err)
	}
	if err := fs.MkdirAll(opts.Dir); err != nil {
		return nil, fmt.Errorf("statestore: creating %s: %w", opts.Dir, err)
	}
	s := &Store{
		budget:     opts.Budget,
		dir:        opts.Dir,
		fs:         fs,
		segBytes:   opts.SegmentBytes,
		garbage:    opts.GarbageRatio,
		minCompact: opts.MinCompactBytes,
		faultLat:   opts.FaultLatency,
		index:      make(map[*state.Table]map[tuple.Value]*bucketEntry),
		segs:       make(map[uint64]*segment),
		inRing:     make(map[ckey]struct{}),
	}
	if err := s.rotate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Close releases the store, deleting its segment directory (the
// contents are a cache; nothing durable lives here).
func (s *Store) Close() error {
	for _, sg := range s.segs {
		if sg.w != nil {
			sg.w.Close()
			sg.w = nil
		}
	}
	return s.fs.RemoveAll(s.dir)
}

func (s *Store) segPath(id uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("spill-%016x.seg", id))
}

// rotate closes the active segment for appends and opens a fresh one.
func (s *Store) rotate() error {
	if s.active != nil && s.active.w != nil {
		s.active.w.Close()
		s.active.w = nil
	}
	id := s.next
	s.next++
	seg := &segment{id: id, path: s.segPath(id)}
	w, err := s.fs.Create(seg.path)
	if err != nil {
		return fmt.Errorf("statestore: creating segment %s: %w", seg.path, err)
	}
	seg.w = w
	s.segs[id] = seg
	s.active = seg
	s.nsegs.Store(int64(len(s.segs)))
	return nil
}

// Account implements state.Backend: the single resident-byte counter
// every attached table and list feeds.
func (s *Store) Account(delta int64) {
	r := s.resident.Add(delta)
	for {
		p := s.peak.Load()
		if r <= p || s.peak.CompareAndSwap(p, r) {
			return
		}
	}
}

// Admit implements state.Backend: register a resident bucket with the
// CLOCK ring. Re-admission of a bucket already in the ring is a no-op
// (its reference bit, held by the table, was just set anyway).
func (s *Store) Admit(t *state.Table, key tuple.Value) {
	ck := ckey{t, key}
	if _, ok := s.inRing[ck]; ok {
		return
	}
	s.inRing[ck] = struct{}{}
	s.ring = append(s.ring, ck)
}

// Pressured implements state.Backend: resident accounting is within
// an eighth of the budget. Reference-bit maintenance costs a map
// write per touch, so tables skip it while eviction is provably far
// away; the first CLOCK pass after pressure starts sees the untracked
// buckets cold and evicts in admission order until the bits warm up.
func (s *Store) Pressured() bool {
	return s.resident.Load() >= s.budget-s.budget>>3
}

// MaybeSpill implements state.Backend: spill cold buckets while the
// resident accounting exceeds the budget. A write failure fails open —
// the bucket stays resident and the loop stops, so a sick disk
// degrades to the old all-in-memory behavior instead of losing state.
func (s *Store) MaybeSpill() {
	if s.budget <= 0 {
		return
	}
	for s.resident.Load() > s.budget {
		ck, ok := s.victim()
		if !ok {
			return
		}
		if !s.spill(ck) {
			return
		}
	}
}

// victim runs the CLOCK hand: skip-and-clear touched buckets, drop
// stale entries, return the first cold one. The pass bound guarantees
// termination — after one full sweep every reference bit is clear.
func (s *Store) victim() (ckey, bool) {
	passes := 0
	for len(s.ring) > 0 && passes <= 2*len(s.ring)+1 {
		if s.hand >= len(s.ring) {
			s.hand = 0
		}
		ck := s.ring[s.hand]
		if len(ck.t.ResidentBucket(ck.key)) == 0 {
			s.dropAt(s.hand)
			continue
		}
		if ck.t.ClockTouched(ck.key) {
			s.hand++
			passes++
			continue
		}
		s.dropAt(s.hand)
		return ck, true
	}
	return ckey{}, false
}

// dropAt swap-removes ring[i] without advancing the hand.
func (s *Store) dropAt(i int) {
	delete(s.inRing, s.ring[i])
	last := len(s.ring) - 1
	s.ring[i] = s.ring[last]
	s.ring[last] = ckey{}
	s.ring = s.ring[:last]
}

// spill writes ck's bucket to the active segment and detaches it from
// the table. Returns false on a write failure (fail open).
func (s *Store) spill(ck ckey) bool {
	bucket := ck.t.ResidentBucket(ck.key)
	if len(bucket) == 0 {
		return true
	}
	s.buf = appendBucket(s.buf[:0], ck.key, ck.t.Set, bucket)
	n := int64(len(s.buf))
	// Rotate past the size threshold, or to replace an active segment
	// whose writer died on an earlier failure.
	if s.active.w == nil || (s.active.size > 0 && s.active.size+n > s.segBytes) {
		if err := s.rotate(); err != nil {
			s.spillErrors.Add(1)
			s.Admit(ck.t, ck.key)
			return false
		}
	}
	off := s.active.size
	if _, err := s.active.w.Write(s.buf); err != nil {
		// The active segment tail may now hold a torn frame; abandon it
		// for appends so offsets never point into the torn region.
		s.spillErrors.Add(1)
		s.Admit(ck.t, ck.key)
		_ = s.rotate()
		return false
	}
	s.active.size += n
	s.encTotal.Add(n)
	s.encLive.Add(n)
	mem, count := ck.t.MarkSpilled(ck.key)
	m := s.index[ck.t]
	if m == nil {
		m = make(map[tuple.Value]*bucketEntry)
		s.index[ck.t] = m
	}
	m[ck.key] = &bucketEntry{
		seg:      s.active,
		off:      off,
		n:        n,
		liveEnc:  n,
		perEnc:   n / int64(count),
		memBytes: mem,
		perMem:   mem / int64(count),
		count:    count,
	}
	s.spilledMem.Add(mem)
	s.spilledBuckets.Add(1)
	s.spills.Add(1)
	return true
}

func (s *Store) entry(t *state.Table, key tuple.Value) *bucketEntry {
	return s.index[t][key]
}

// removeEntry forgets one spilled bucket, turning its frames into
// garbage.
func (s *Store) removeEntry(t *state.Table, key tuple.Value, e *bucketEntry) {
	delete(s.index[t], key)
	if len(s.index[t]) == 0 {
		delete(s.index, t)
	}
	s.encLive.Add(-e.liveEnc)
	s.spilledMem.Add(-e.memBytes)
	s.spilledBuckets.Add(-1)
}

// Fault implements state.Backend: read the bucket back, forget its
// spilled copy, count and latency-sample the miss.
func (s *Store) Fault(t *state.Table, key tuple.Value) []*tuple.Tuple {
	start := time.Now()
	e := s.entry(t, key)
	if e == nil {
		return nil
	}
	tuples, err := s.load(e)
	if err != nil {
		// The resident copy was discarded when the bucket spilled; an
		// unreadable segment is unrecoverable state loss, not a
		// degradable condition.
		panic(fmt.Sprintf("statestore: faulting bucket key=%d of %v: %v", key, t.Set, err))
	}
	if len(tuples) != e.count {
		panic(fmt.Sprintf("statestore: bucket key=%d of %v decoded %d live tuples, accounting says %d", key, t.Set, len(tuples), e.count))
	}
	s.removeEntry(t, key, e)
	s.faults.Add(1)
	s.faultTuples.Add(uint64(len(tuples)))
	if s.faultLat != nil {
		s.faultLat.Record(time.Since(start))
	}
	s.maybeCompact()
	return tuples
}

// Peek implements state.Backend: iterate a spilled bucket without
// admitting it.
func (s *Store) Peek(t *state.Table, key tuple.Value, fn func(*tuple.Tuple) bool) bool {
	e := s.entry(t, key)
	if e == nil {
		return true
	}
	tuples, err := s.load(e)
	if err != nil {
		panic(fmt.Sprintf("statestore: peeking bucket key=%d of %v: %v", key, t.Set, err))
	}
	for _, tup := range tuples {
		if !fn(tup) {
			return false
		}
	}
	return true
}

// Tombstone implements state.Backend: record window eviction of
// spilled base tuples without faulting.
func (s *Store) Tombstone(t *state.Table, key tuple.Value, deadThrough uint64, last bool) {
	e := s.entry(t, key)
	if e == nil {
		return
	}
	s.tombstones.Add(1)
	if last {
		s.removeEntry(t, key, e)
		s.maybeCompact()
		return
	}
	if deadThrough > e.deadThrough {
		e.deadThrough = deadThrough
	}
	e.count--
	d := e.perEnc
	if d > e.liveEnc {
		d = e.liveEnc
	}
	e.liveEnc -= d
	s.encLive.Add(-d)
	dm := e.perMem
	if dm > e.memBytes {
		dm = e.memBytes
	}
	e.memBytes -= dm
	s.spilledMem.Add(-dm)
	s.maybeCompact()
}

// Drop implements state.Backend: forget every spilled bucket and ring
// entry of t (Clear, table teardown).
func (s *Store) Drop(t *state.Table) {
	for key, e := range s.index[t] {
		_ = key
		s.encLive.Add(-e.liveEnc)
		s.spilledMem.Add(-e.memBytes)
		s.spilledBuckets.Add(-1)
	}
	delete(s.index, t)
	for i := 0; i < len(s.ring); {
		if s.ring[i].t == t {
			s.dropAt(i)
		} else {
			i++
		}
	}
	if s.hand > len(s.ring) {
		s.hand = 0
	}
	s.maybeCompact()
}

// load reads and decodes one bucket's frames, filtering tombstoned
// tuples.
func (s *Store) load(e *bucketEntry) ([]*tuple.Tuple, error) {
	data := make([]byte, e.n)
	if err := readSpan(s.fs, e.seg.path, e.off, data); err != nil {
		return nil, err
	}
	return decodeSpan(data, e)
}

// decodeSpan decodes one spilled bucket's span of frames, dropping
// tuples at or below the entry's tombstone mark.
func decodeSpan(data []byte, e *bucketEntry) ([]*tuple.Tuple, error) {
	var out []*tuple.Tuple
	off := 0
	for off < len(data) {
		payload, n, ok := storage.NextFrame(data[off:], maxSpillPayload)
		if !ok {
			return nil, fmt.Errorf("corrupt frame at %s offset %d", e.seg.path, e.off+int64(off))
		}
		_, _, tuples, err := decodeBucket(payload)
		if err != nil {
			return nil, fmt.Errorf("CRC-valid frame at %s offset %d does not decode: %w", e.seg.path, e.off+int64(off), err)
		}
		for _, tup := range tuples {
			if e.deadThrough > 0 && len(tup.Refs) == 1 && tup.Refs[0].Seq <= e.deadThrough {
				continue
			}
			out = append(out, tup)
		}
		off += n
	}
	return out, nil
}

// readSpan reads data-len bytes at off from path, using the cheapest
// access the FS reader supports: ReaderAt (*os.File), then Seeker,
// then a discard-and-read fallback (MemFS snapshots).
func readSpan(fs storage.FS, path string, off int64, data []byte) error {
	rc, err := fs.Open(path)
	if err != nil {
		return err
	}
	defer rc.Close()
	switch r := rc.(type) {
	case io.ReaderAt:
		_, err = r.ReadAt(data, off)
	case io.ReadSeeker:
		if _, err = r.Seek(off, io.SeekStart); err == nil {
			_, err = io.ReadFull(r, data)
		}
	default:
		if _, err = io.CopyN(io.Discard, rc, off); err == nil {
			_, err = io.ReadFull(rc, data)
		}
	}
	return err
}

// maybeCompact rewrites the live set once garbage crosses the
// configured ratio of total encoded bytes.
func (s *Store) maybeCompact() {
	if s.compactBroken {
		return
	}
	total := s.encTotal.Load()
	if total < s.minCompact {
		return
	}
	if float64(total-s.encLive.Load()) <= s.garbage*float64(total) {
		return
	}
	if err := s.compact(); err != nil {
		s.spillErrors.Add(1)
		s.compactBroken = true
	}
}

// compact rewrites every live bucket into one fresh segment and
// deletes the old files. The rewrite is staged: nothing in the index
// changes until the new segment is fully written, so a failure leaves
// the store exactly as it was.
func (s *Store) compact() error {
	id := s.next
	s.next++
	seg := &segment{id: id, path: s.segPath(id)}
	w, err := s.fs.Create(seg.path)
	if err != nil {
		return err
	}
	type staged struct {
		t   *state.Table
		key tuple.Value
		e   *bucketEntry
	}
	// Visit live buckets in segment/offset order and read each old
	// segment once: per-bucket opens are O(file size) on snapshotting
	// filesystems (MemFS), which would make one compaction pass
	// quadratic in the spilled set.
	var live []staged
	for t, m := range s.index {
		for key, e := range m {
			live = append(live, staged{t, key, e})
		}
	}
	sort.Slice(live, func(i, j int) bool {
		if live[i].e.seg.id != live[j].e.seg.id {
			return live[i].e.seg.id < live[j].e.seg.id
		}
		return live[i].e.off < live[j].e.off
	})
	var (
		curSeg  *segment
		segData []byte
	)
	var entries []staged
	var mem int64
	for _, lv := range live {
		t, key, e := lv.t, lv.key, lv.e
		if e.seg != curSeg {
			rc, err := s.fs.Open(e.seg.path)
			if err == nil {
				segData, err = io.ReadAll(rc)
				rc.Close()
			}
			if err != nil {
				panic(fmt.Sprintf("statestore: compacting segment %s: %v", e.seg.path, err))
			}
			curSeg = e.seg
		}
		if e.off+e.n > int64(len(segData)) {
			panic(fmt.Sprintf("statestore: compacting bucket key=%d of %v: span [%d,%d) past end of %s (%d bytes)",
				key, t.Set, e.off, e.off+e.n, e.seg.path, len(segData)))
		}
		tuples, err := decodeSpan(segData[e.off:e.off+e.n], e)
		if err != nil {
			// Unreadable live data during compaction is the same
			// unrecoverable loss as a failed fault.
			panic(fmt.Sprintf("statestore: compacting bucket key=%d of %v: %v", key, t.Set, err))
		}
		if len(tuples) == 0 {
			entries = append(entries, staged{t, key, nil})
			continue
		}
		s.buf = appendBucket(s.buf[:0], key, t.Set, tuples)
		n := int64(len(s.buf))
		if _, err := w.Write(s.buf); err != nil {
			w.Close()
			_ = s.fs.Remove(seg.path)
			return err
		}
		var mb int64
		for _, tup := range tuples {
			mb += state.TupleBytes(tup)
		}
		entries = append(entries, staged{t, key, &bucketEntry{
			seg:      seg,
			off:      seg.size,
			n:        n,
			liveEnc:  n,
			perEnc:   n / int64(len(tuples)),
			memBytes: mb,
			perMem:   mb / int64(len(tuples)),
			count:    len(tuples),
			// Keep the tombstone mark: the filtered tuples are gone
			// from the rewrite, and future evictions only raise it.
			deadThrough: e.deadThrough,
		}})
		mem += mb
		seg.size += n
	}
	seg.w = w
	for _, old := range s.segs {
		if old.w != nil {
			old.w.Close()
			old.w = nil
		}
		_ = s.fs.Remove(old.path)
	}
	s.segs = map[uint64]*segment{seg.id: seg}
	s.active = seg
	var buckets int64
	for _, st := range entries {
		if st.e == nil {
			delete(s.index[st.t], st.key)
			if len(s.index[st.t]) == 0 {
				delete(s.index, st.t)
			}
			continue
		}
		s.index[st.t][st.key] = st.e
		buckets++
	}
	s.encTotal.Store(seg.size)
	s.encLive.Store(seg.size)
	s.spilledMem.Store(mem)
	s.spilledBuckets.Store(buckets)
	s.nsegs.Store(1)
	s.compactions.Add(1)
	return nil
}

// Stats is a point-in-time snapshot of the store's counters. Safe to
// take from any goroutine.
type Stats struct {
	// ResidentBytes is the current resident accounting across every
	// attached table and list; PeakResidentBytes is its high-water
	// mark (instantaneous, including the transient of a fault before
	// the following spill).
	ResidentBytes     int64 `json:"resident_bytes"`
	PeakResidentBytes int64 `json:"peak_resident_bytes"`
	// SpilledBytes is the resident-equivalent footprint of the spilled
	// live tuples; SpilledBuckets counts them.
	SpilledBytes   int64 `json:"spilled_bytes"`
	SpilledBuckets int64 `json:"spilled_buckets"`
	// Segments / SegmentBytes / GarbageBytes describe the on-disk
	// footprint and how much of it is dead.
	Segments     int64 `json:"segments"`
	SegmentBytes int64 `json:"segment_bytes"`
	GarbageBytes int64 `json:"garbage_bytes"`

	Spills      uint64 `json:"spills"`
	Faults      uint64 `json:"faults"`
	FaultTuples uint64 `json:"fault_tuples"`
	Tombstones  uint64 `json:"tombstones"`
	Compactions uint64 `json:"compactions"`
	SpillErrors uint64 `json:"spill_errors"`
}

// Stats returns the current counters.
func (s *Store) Stats() Stats {
	total := s.encTotal.Load()
	live := s.encLive.Load()
	return Stats{
		ResidentBytes:     s.resident.Load(),
		PeakResidentBytes: s.peak.Load(),
		SpilledBytes:      s.spilledMem.Load(),
		SpilledBuckets:    s.spilledBuckets.Load(),
		Segments:          s.nsegs.Load(),
		SegmentBytes:      total,
		GarbageBytes:      total - live,
		Spills:            s.spills.Load(),
		Faults:            s.faults.Load(),
		FaultTuples:       s.faultTuples.Load(),
		Tombstones:        s.tombstones.Load(),
		Compactions:       s.compactions.Load(),
		SpillErrors:       s.spillErrors.Load(),
	}
}

// Add merges two snapshots — per-shard stats into a runtime total.
// Peak adds (each shard has an independent budget slice).
func (a Stats) Add(b Stats) Stats {
	return Stats{
		ResidentBytes:     a.ResidentBytes + b.ResidentBytes,
		PeakResidentBytes: a.PeakResidentBytes + b.PeakResidentBytes,
		SpilledBytes:      a.SpilledBytes + b.SpilledBytes,
		SpilledBuckets:    a.SpilledBuckets + b.SpilledBuckets,
		Segments:          a.Segments + b.Segments,
		SegmentBytes:      a.SegmentBytes + b.SegmentBytes,
		GarbageBytes:      a.GarbageBytes + b.GarbageBytes,
		Spills:            a.Spills + b.Spills,
		Faults:            a.Faults + b.Faults,
		FaultTuples:       a.FaultTuples + b.FaultTuples,
		Tombstones:        a.Tombstones + b.Tombstones,
		Compactions:       a.Compactions + b.Compactions,
		SpillErrors:       a.SpillErrors + b.SpillErrors,
	}
}

var _ state.Backend = (*Store)(nil)
