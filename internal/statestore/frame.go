// Package statestore implements the spill tier behind state.Backend:
// a byte-accounted, memory-governed store that serializes cold hash
// buckets to per-shard, CRC32C-framed, log-structured segment files
// and faults them back just in time — the storage-level analogue of
// JISC's just-in-time completion. See DESIGN.md §15.
package statestore

import (
	"encoding/binary"
	"fmt"

	"jisc/internal/storage"
	"jisc/internal/tuple"
)

// Segment files reuse the durable frame discipline
// (len:u32 | crc:u32 | payload, little endian, CRC32C over the
// payload). One spilled bucket is a contiguous run of frames, each:
//
//	payload := kind:u8(=1) | key:u64 | set:u64 | count:u16 | count × tuple
//	tuple   := arrival:u64 | oldest:u64 | nrefs:u8 | nrefs × (stream:u8 | seq:u64)
//	           | npay:u16 | npay × value:u64
//
// Key and Set are per-frame because they are bucket/table constants;
// each decoded tuple inherits them. Frames are chunked so a frame
// never outgrows maxSpillPayload, keeping the scan bound shared with
// the WAL.

const (
	frameKindBucket = 1

	// maxTuplesPerFrame bounds count; appendBucket starts a new frame
	// past it (or past softFrameBytes, whichever comes first).
	maxTuplesPerFrame = 4096
	// softFrameBytes is the chunking threshold: a frame is closed once
	// its encoding crosses it, so even with maximal tuples (64 refs, a
	// full u16 payload) the payload stays under maxSpillPayload.
	softFrameBytes = 128 << 10
	// maxSpillPayload is the scan-time sanity bound on one frame's
	// payload, mirroring the WAL's.
	maxSpillPayload = 1 << 20

	// frameFixed is the fixed prefix of a bucket payload:
	// kind + key + set + count.
	frameFixed = 1 + 8 + 8 + 2
	// tupleFixed is the fixed prefix of one encoded tuple:
	// arrival + oldest + nrefs.
	tupleFixed = 8 + 8 + 1
)

var le = binary.LittleEndian

// appendBucket appends the spill frames for one bucket — all of
// tuples, chunked — onto buf, which the caller positions at the
// active segment's tail.
func appendBucket(buf []byte, key tuple.Value, set tuple.StreamSet, tuples []*tuple.Tuple) []byte {
	for len(tuples) > 0 {
		n := 0
		start := len(buf)
		for n < len(tuples) && n < maxTuplesPerFrame && len(buf)-start < softFrameBytes+storage.FrameHeader+frameFixed {
			if n == 0 {
				buf = append(buf, make([]byte, storage.FrameHeader)...)
				buf = append(buf, frameKindBucket)
				buf = le.AppendUint64(buf, uint64(key))
				buf = le.AppendUint64(buf, uint64(set))
				buf = append(buf, 0, 0) // count, patched below
			}
			buf = appendTuple(buf, tuples[n])
			n++
		}
		le.PutUint16(buf[start+storage.FrameHeader+frameFixed-2:], uint16(n))
		storage.SealFrame(buf, start)
		tuples = tuples[n:]
	}
	return buf
}

// appendBucketFrame encodes exactly one frame holding all of tuples —
// the canonical single-frame encoding the fuzz round-trip checks
// against. len(tuples) must be within maxTuplesPerFrame.
func appendBucketFrame(buf []byte, key tuple.Value, set tuple.StreamSet, tuples []*tuple.Tuple) []byte {
	start := len(buf)
	buf = append(buf, make([]byte, storage.FrameHeader)...)
	buf = append(buf, frameKindBucket)
	buf = le.AppendUint64(buf, uint64(key))
	buf = le.AppendUint64(buf, uint64(set))
	buf = le.AppendUint16(buf, uint16(len(tuples)))
	for _, t := range tuples {
		buf = appendTuple(buf, t)
	}
	storage.SealFrame(buf, start)
	return buf
}

func appendTuple(buf []byte, t *tuple.Tuple) []byte {
	if len(t.Refs) > 255 || len(t.Payload) > 1<<16-1 {
		// Refs are bounded by tuple.MaxStreams (64) and payloads by the
		// workload model; exceeding the wire widths means a corrupted
		// tuple, not a data condition.
		panic(fmt.Sprintf("statestore: tuple with %d refs / %d payload values exceeds the spill frame widths", len(t.Refs), len(t.Payload)))
	}
	buf = le.AppendUint64(buf, t.Arrival)
	buf = le.AppendUint64(buf, t.Oldest)
	buf = append(buf, byte(len(t.Refs)))
	for _, r := range t.Refs {
		buf = append(buf, byte(r.Stream))
		buf = le.AppendUint64(buf, r.Seq)
	}
	buf = le.AppendUint16(buf, uint16(len(t.Payload)))
	for _, v := range t.Payload {
		buf = le.AppendUint64(buf, uint64(v))
	}
	return buf
}

// decodeBucket decodes one CRC-validated bucket payload. It never
// panics on arbitrary input: every length is validated before use, and
// any structural violation (wrong kind, zero or oversized count,
// truncation, trailing bytes) is an error.
func decodeBucket(p []byte) (key tuple.Value, set tuple.StreamSet, tuples []*tuple.Tuple, err error) {
	if len(p) < frameFixed {
		return 0, 0, nil, fmt.Errorf("statestore: payload of %d bytes is shorter than the bucket header", len(p))
	}
	if p[0] != frameKindBucket {
		return 0, 0, nil, fmt.Errorf("statestore: unknown spill frame kind %d", p[0])
	}
	key = tuple.Value(le.Uint64(p[1:]))
	set = tuple.StreamSet(le.Uint64(p[9:]))
	count := int(le.Uint16(p[17:]))
	if count == 0 || count > maxTuplesPerFrame {
		return 0, 0, nil, fmt.Errorf("statestore: bucket frame count %d outside (0, %d]", count, maxTuplesPerFrame)
	}
	b := p[frameFixed:]
	tuples = make([]*tuple.Tuple, 0, count)
	for i := 0; i < count; i++ {
		if len(b) < tupleFixed {
			return 0, 0, nil, fmt.Errorf("statestore: bucket frame truncated in tuple %d header", i)
		}
		t := &tuple.Tuple{
			Key:     key,
			Set:     set,
			Arrival: le.Uint64(b),
			Oldest:  le.Uint64(b[8:]),
		}
		nrefs := int(b[16])
		b = b[tupleFixed:]
		if nrefs == 0 {
			return 0, 0, nil, fmt.Errorf("statestore: tuple %d has no provenance refs", i)
		}
		if len(b) < 9*nrefs {
			return 0, 0, nil, fmt.Errorf("statestore: bucket frame truncated in tuple %d refs", i)
		}
		t.Refs = make([]tuple.Ref, nrefs)
		for j := 0; j < nrefs; j++ {
			t.Refs[j] = tuple.Ref{Stream: tuple.StreamID(b[9*j]), Seq: le.Uint64(b[9*j+1:])}
		}
		b = b[9*nrefs:]
		if len(b) < 2 {
			return 0, 0, nil, fmt.Errorf("statestore: bucket frame truncated before tuple %d payload count", i)
		}
		npay := int(le.Uint16(b))
		b = b[2:]
		if len(b) < 8*npay {
			return 0, 0, nil, fmt.Errorf("statestore: bucket frame truncated in tuple %d payload", i)
		}
		if npay > 0 {
			t.Payload = make([]tuple.Value, npay)
			for j := 0; j < npay; j++ {
				t.Payload[j] = tuple.Value(le.Uint64(b[8*j:]))
			}
		}
		b = b[8*npay:]
		tuples = append(tuples, t)
	}
	if len(b) != 0 {
		return 0, 0, nil, fmt.Errorf("statestore: %d trailing bytes after bucket frame", len(b))
	}
	return key, set, tuples, nil
}
