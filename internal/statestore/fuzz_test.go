package statestore

import (
	"bytes"
	"testing"

	"jisc/internal/storage"
	"jisc/internal/tuple"
)

// seedPayloads returns canonical bucket payloads (frame headers
// stripped) covering the encoder's shapes: single tuple, multi-tuple,
// multi-ref composites, payload values.
func seedPayloads() [][]byte {
	var seeds [][]byte
	add := func(key tuple.Value, set tuple.StreamSet, tuples []*tuple.Tuple) {
		framed := appendBucketFrame(nil, key, set, tuples)
		seeds = append(seeds, framed[storage.FrameHeader:])
	}
	add(7, tuple.NewStreamSet(0), []*tuple.Tuple{tuple.NewBase(0, 1, 7, 10)})
	add(-3, tuple.NewStreamSet(2), []*tuple.Tuple{
		tuple.NewBase(2, 5, -3, 50),
		tuple.NewBase(2, 9, -3, 90),
	})
	comp := tuple.Join(tuple.NewBase(0, 1, 4, 1), tuple.NewBase(1, 2, 4, 2))
	add(4, comp.Set, []*tuple.Tuple{comp})
	withPay := tuple.NewBase(3, 11, 99, 11)
	withPay.Payload = []tuple.Value{1, -2, 3}
	add(99, tuple.NewStreamSet(3), []*tuple.Tuple{withPay})
	return seeds
}

// FuzzDecodeBucket checks the two spill-frame invariants: decoding
// arbitrary bytes never panics, and any payload that decodes is
// canonical — re-encoding the decoded bucket reproduces it byte for
// byte.
func FuzzDecodeBucket(f *testing.F) {
	for _, s := range seedPayloads() {
		f.Add(s)
	}
	f.Add([]byte{})
	f.Add([]byte{frameKindBucket})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, p []byte) {
		key, set, tuples, err := decodeBucket(p)
		if err != nil {
			return
		}
		if len(tuples) == 0 {
			t.Fatal("decode succeeded with zero tuples")
		}
		reenc := appendBucketFrame(nil, key, set, tuples)
		if !bytes.Equal(reenc[storage.FrameHeader:], p) {
			t.Fatalf("decode ⇒ re-encode is not the identity:\n in: %x\nout: %x", p, reenc[storage.FrameHeader:])
		}
	})
}

// TestDecodeBucketRejects pins the structural validations.
func TestDecodeBucketRejects(t *testing.T) {
	valid := seedPayloads()[0]
	cases := map[string][]byte{
		"empty":      {},
		"short":      valid[:10],
		"wrong kind": append([]byte{2}, valid[1:]...),
		"trailing":   append(append([]byte{}, valid...), 0),
		"zero count": func() []byte { p := append([]byte{}, valid...); p[17], p[18] = 0, 0; return p }(),
		"huge count": func() []byte { p := append([]byte{}, valid...); p[17], p[18] = 0xff, 0xff; return p }(),
		"zero nrefs": func() []byte { p := append([]byte{}, valid...); p[frameFixed+16] = 0; return p }(),
		"truncated":  valid[:len(valid)-1],
	}
	for name, p := range cases {
		if _, _, _, err := decodeBucket(p); err == nil {
			t.Errorf("%s: decode accepted invalid payload", name)
		}
	}
}

// TestAppendBucketChunks verifies multi-frame encoding of large
// buckets decodes back to the full tuple set.
func TestAppendBucketChunks(t *testing.T) {
	var tuples []*tuple.Tuple
	for i := 0; i < 3*maxTuplesPerFrame/2; i++ {
		tuples = append(tuples, tuple.NewBase(0, uint64(i+1), 5, uint64(i+1)))
	}
	buf := appendBucket(nil, 5, tuple.NewStreamSet(0), tuples)
	var got []*tuple.Tuple
	off := 0
	frames := 0
	for off < len(buf) {
		payload, n, ok := storage.NextFrame(buf[off:], maxSpillPayload)
		if !ok {
			t.Fatalf("bad frame at %d", off)
		}
		key, set, ts, err := decodeBucket(payload)
		if err != nil {
			t.Fatal(err)
		}
		if key != 5 || set != tuple.NewStreamSet(0) {
			t.Fatalf("frame header drifted: key=%d set=%v", key, set)
		}
		got = append(got, ts...)
		off += n
		frames++
	}
	if frames < 2 {
		t.Fatalf("expected chunking, got %d frame(s)", frames)
	}
	if len(got) != len(tuples) {
		t.Fatalf("decoded %d tuples, want %d", len(got), len(tuples))
	}
	for i := range got {
		if got[i].Refs[0].Seq != tuples[i].Refs[0].Seq {
			t.Fatalf("tuple %d reordered", i)
		}
	}
}
