package adaptive

import (
	"errors"
	"testing"
	"time"

	"jisc/internal/core"
	"jisc/internal/engine"
	"jisc/internal/metrics"
	"jisc/internal/obs"
	"jisc/internal/plan"
	"jisc/internal/tuple"
	"jisc/internal/workload"
)

// fakeTarget scripts the Target interface for policy tests: the test
// sets cumulative scan counters and obs snapshots between Step calls
// and records every Migrate.
type fakeTarget struct {
	stats      []engine.ScanStats
	input      uint64
	snap       obs.SetSnapshot
	cur        *plan.Plan
	migrated   []string
	migrateErr error
	scanErr    error
}

func (f *fakeTarget) ScanStats() ([]engine.ScanStats, error) { return f.stats, f.scanErr }
func (f *fakeTarget) Snapshot() metrics.Snapshot             { return metrics.Snapshot{Input: f.input} }
func (f *fakeTarget) ObsSnapshot() obs.SetSnapshot           { return f.snap }
func (f *fakeTarget) Plan() (*plan.Plan, error)              { return f.cur, nil }

func (f *fakeTarget) Migrate(p *plan.Plan) error {
	if f.migrateErr != nil {
		return f.migrateErr
	}
	f.cur = p
	f.migrated = append(f.migrated, p.String())
	return nil
}

// setSel sets the cumulative counters so that, with Decay 1, this
// tick's selectivity estimate for stream i is sel[i]. Each call adds
// 1000 probes per stream and input tuples.
func (f *fakeTarget) setSel(sel ...float64) {
	if f.stats == nil {
		f.stats = make([]engine.ScanStats, len(sel))
		for i := range f.stats {
			f.stats[i].Stream = tuple.StreamID(i)
		}
	}
	for i, s := range sel {
		f.stats[i].Probes += 1000
		f.stats[i].Matches += uint64(s * 1000)
	}
	f.input += 100
}

func newFake() *fakeTarget {
	return &fakeTarget{cur: plan.MustLeftDeep(0, 1, 2)}
}

// hist builds a feed-latency snapshot of n samples at each given
// nanosecond value.
func hist(n int, ns ...uint64) obs.SetSnapshot {
	var h obs.Histogram
	for _, v := range ns {
		for i := 0; i < n; i++ {
			h.Observe(v)
		}
	}
	return obs.SetSnapshot{Feed: h.Snapshot()}
}

var t0 = time.Unix(1000, 0)

func TestConfirmStreakGatesMigration(t *testing.T) {
	f := newFake()
	c := MustNew(f, Config{Confirm: 3, Decay: 1, MinProbes: 1, RegressionFactor: -1})
	for tick := 0; tick < 3; tick++ {
		f.setSel(1.0, 0.5, 0.0) // best order [2 1 0], current [0 1 2]
		c.Step(t0.Add(time.Duration(tick) * time.Second))
		if tick < 2 && c.Migrations() != 0 {
			t.Fatalf("migrated after %d confirmations, want %d", tick+1, 3)
		}
	}
	if c.Migrations() != 1 {
		t.Fatalf("Migrations = %d after 3 confirming ticks, want 1", c.Migrations())
	}
	if c.Proposals() != 3 {
		t.Fatalf("Proposals = %d, want 3", c.Proposals())
	}
	want := plan.MustLeftDeep(2, 1, 0).String()
	if len(f.migrated) != 1 || f.migrated[0] != want {
		t.Fatalf("migrated to %v, want [%s]", f.migrated, want)
	}
}

// TestHysteresisNoFlap: selectivities that oscillate between "the
// current plan is best" and "reverse it" on alternating ticks never
// produce Confirm consecutive identical proposals, so the controller
// never migrates — the §5.1.2 anti-thrashing property.
func TestHysteresisNoFlap(t *testing.T) {
	f := newFake()
	c := MustNew(f, Config{Confirm: 2, Decay: 1, MinProbes: 1, RegressionFactor: -1})
	for tick := 0; tick < 20; tick++ {
		if tick%2 == 0 {
			f.setSel(1.0, 0.5, 0.0) // would propose [2 1 0]
		} else {
			f.setSel(0.0, 0.5, 1.0) // current [0 1 2] is already best
		}
		c.Step(t0.Add(time.Duration(tick) * time.Second))
	}
	if c.Migrations() != 0 {
		t.Fatalf("oscillating statistics migrated %d times, want 0 (migrations: %v)", c.Migrations(), f.migrated)
	}
	if c.Proposals() == 0 {
		t.Fatal("no proposals at all; the oscillation never reached the advisor")
	}
}

func TestCooldownEnforced(t *testing.T) {
	f := newFake()
	c := MustNew(f, Config{Confirm: 1, Cooldown: 10 * time.Second, Decay: 1, MinProbes: 1, RegressionFactor: -1})
	f.setSel(1.0, 0.5, 0.0)
	c.Step(t0)
	if c.Migrations() != 1 {
		t.Fatalf("first migration did not happen: Migrations = %d", c.Migrations())
	}
	// Now the installed plan is [2 1 0]; flip the statistics so the
	// original order is best again.
	f.setSel(0.0, 0.5, 1.0)
	c.Step(t0.Add(time.Second))
	if c.Migrations() != 1 {
		t.Fatalf("migration inside the cooldown window: Migrations = %d", c.Migrations())
	}
	f.setSel(0.0, 0.5, 1.0)
	c.Step(t0.Add(11 * time.Second))
	if c.Migrations() != 2 {
		t.Fatalf("migration after the cooldown expired did not happen: Migrations = %d", c.Migrations())
	}
}

func TestRateLimitCapsMigrationsPerWindow(t *testing.T) {
	f := newFake()
	c := MustNew(f, Config{
		Confirm: 1, Cooldown: time.Nanosecond, MaxPerWindow: 2, RateWindow: time.Minute,
		Decay: 1, MinProbes: 1, RegressionFactor: -1,
	})
	// Alternate which order is best so every tick confirms a fresh
	// proposal; only the rate limit can stop the flapping now.
	for tick := 0; tick < 8; tick++ {
		if tick%2 == 0 {
			f.setSel(1.0, 0.5, 0.0)
		} else {
			f.setSel(0.0, 0.5, 1.0)
		}
		c.Step(t0.Add(time.Duration(tick) * time.Second))
	}
	if c.Migrations() != 2 {
		t.Fatalf("Migrations = %d inside one rate window, want 2", c.Migrations())
	}
	// A new window re-opens the budget.
	f.setSel(1.0, 0.5, 0.0)
	c.Step(t0.Add(2 * time.Minute))
	if c.Migrations() != 3 {
		t.Fatalf("Migrations = %d after the rate window rolled, want 3", c.Migrations())
	}
}

// TestRollbackOnRegression injects a feed-latency regression after a
// migration and checks the guard restores the previous plan, counts
// the rollback, and vetoes the regressed plan for VetoHold.
func TestRollbackOnRegression(t *testing.T) {
	f := newFake()
	c := MustNew(f, Config{
		Confirm: 1, Cooldown: time.Nanosecond, Decay: 1, MinProbes: 1,
		RegressionFactor: 2.0, RegressionWindow: 2 * time.Second, VetoHold: time.Hour,
	})
	// Tick 1: neutral statistics, just anchors the baseline window at
	// 10 samples of 1ms.
	f.snap = hist(10, 1e6)
	f.setSel(0.5, 0.5, 0.5)
	c.Step(t0)
	if c.Migrations() != 0 {
		t.Fatalf("neutral statistics migrated: %v", f.migrated)
	}
	// Tick 2 (inside the anchor window): a confirmed improvement
	// migrates; the baseline is the 10 further 1ms samples since tick 1.
	f.snap = hist(20, 1e6)
	f.setSel(1.0, 0.5, 0.0)
	c.Step(t0.Add(time.Second))
	if c.Migrations() != 1 {
		t.Fatalf("Migrations = %d, want 1", c.Migrations())
	}
	bad := f.cur.String()
	// Tick 3, one RegressionWindow later: everything fed since the
	// migration took 100ms — a 100× p99 regression.
	f.snap = hist(20, 1e6).Add(hist(20, 1e8))
	f.setSel(1.0, 0.5, 0.0)
	c.Step(t0.Add(3100 * time.Millisecond))
	if c.Rollbacks() != 1 {
		t.Fatalf("Rollbacks = %d, want 1", c.Rollbacks())
	}
	if got := f.cur.String(); got != plan.MustLeftDeep(0, 1, 2).String() {
		t.Fatalf("current plan after rollback is %s, want the previous plan", got)
	}
	// The regressed plan is vetoed: identical favorable statistics must
	// not reinstall it.
	migs := c.Migrations()
	for tick := 0; tick < 4; tick++ {
		f.setSel(1.0, 0.5, 0.0)
		c.Step(t0.Add(time.Duration(10+tick) * time.Second))
	}
	if c.Migrations() != migs {
		t.Fatalf("vetoed plan %s was reinstalled (migrations %v)", bad, f.migrated)
	}
}

// TestGuardSilentWithoutSamples: with obs instrumentation off the feed
// histogram is empty, and the guard must never roll back — the
// deterministic-simulation mode depends on it.
func TestGuardSilentWithoutSamples(t *testing.T) {
	f := newFake()
	c := MustNew(f, Config{Confirm: 1, Cooldown: time.Nanosecond, Decay: 1, MinProbes: 1,
		RegressionFactor: 2.0, RegressionWindow: time.Second})
	f.setSel(1.0, 0.5, 0.0)
	c.Step(t0)
	f.setSel(0.5, 0.5, 0.5)
	c.Step(t0.Add(5 * time.Second))
	if c.Rollbacks() != 0 {
		t.Fatalf("Rollbacks = %d with an empty feed histogram, want 0", c.Rollbacks())
	}
	if c.Migrations() != 1 {
		t.Fatalf("Migrations = %d, want 1", c.Migrations())
	}
}

func TestStepToleratesTargetErrors(t *testing.T) {
	f := newFake()
	c := MustNew(f, Config{Confirm: 1, Decay: 1, MinProbes: 1, RegressionFactor: -1})
	f.scanErr = errors.New("closing")
	f.setSel(1.0, 0.5, 0.0)
	c.Step(t0) // must not panic or migrate
	if c.Migrations() != 0 || c.Proposals() != 0 {
		t.Fatalf("Step acted on a failing target: proposals=%d migrations=%d", c.Proposals(), c.Migrations())
	}
	f.scanErr = nil
	f.migrateErr = errors.New("shard stopped")
	c.Step(t0.Add(time.Second))
	if c.Migrations() != 0 {
		t.Fatalf("a failed Migrate was counted: %d", c.Migrations())
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil target accepted")
	}
	f := newFake()
	if _, err := New(f, Config{Cooldown: -time.Second}); err == nil {
		t.Error("negative cooldown accepted")
	}
	if _, err := New(f, Config{Confirm: -1}); err == nil {
		t.Error("negative confirm accepted")
	}
	c := MustNew(f, Config{})
	if c.Running() {
		t.Error("controller running before Start")
	}
	if !c.LastMigration().IsZero() {
		t.Error("LastMigration non-zero before any migration")
	}
	c.Stop() // never started: must not hang
}

func TestStartStopLifecycle(t *testing.T) {
	f := newFake()
	c := MustNew(f, Config{Interval: time.Millisecond, RegressionFactor: -1})
	c.Start()
	c.Start() // idempotent
	if !c.Running() {
		t.Fatal("Running() false after Start")
	}
	time.Sleep(10 * time.Millisecond)
	c.Stop()
	c.Stop() // idempotent
	if c.Running() {
		t.Fatal("Running() true after Stop")
	}
}

// TestSingleEngineAutopilot closes the loop on a real engine: a skewed
// workload starts under the worst order, and single-stepped ticks must
// re-plan it so the hose stream leaves the front of the plan.
func TestSingleEngineAutopilot(t *testing.T) {
	e := engine.MustNew(engine.Config{
		Plan:       plan.MustLeftDeep(0, 1, 2),
		WindowSize: 200,
		Strategy:   core.New(),
	})
	c := MustNew(SingleEngine{E: e}, Config{
		Confirm: 2, Cooldown: time.Second, MinProbes: 16, RegressionFactor: -1,
	})
	src := workload.MustNewSource(workload.Config{
		Streams: 3, Domain: 200, Seed: 7, Domains: []int64{4, 2000, 2000},
	})
	clock := t0
	for i := 0; i < 30000; i++ {
		e.Feed(src.Next())
		if i%500 == 0 {
			clock = clock.Add(time.Second)
			c.Step(clock)
		}
	}
	if c.Migrations() == 0 {
		t.Fatal("the autopilot never re-planned a badly ordered skewed workload")
	}
	order, err := e.Plan().Order()
	if err != nil {
		t.Fatalf("installed plan is not left-deep: %v", err)
	}
	if order[0] == 0 {
		t.Fatalf("hose stream 0 still leads the plan %v after %d migrations", order, c.Migrations())
	}
}
