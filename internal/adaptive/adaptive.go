// Package adaptive closes the paper's re-optimization loop: a
// per-query Controller periodically snapshots per-operator selectivity
// and latency statistics from the sharded runtime, asks
// optimizer.Advisor for a better plan, and installs accepted proposals
// through the runtime's normal migration path — so WAL MIGRATE
// records, JISC completion episodes, and migration tracing all work
// unchanged under autopilot.
//
// The paper treats the transition trigger as orthogonal (§2) but its
// §5.1.2 thrashing discussion makes the guard rails the interesting
// part. The controller layers four on top of the advisor's own
// improvement hysteresis:
//
//   - confirmation: a proposal must be re-derived on Confirm
//     consecutive decision ticks before it is acted on, so a
//     selectivity blip that oscillates around the improvement
//     threshold never migrates;
//   - cooldown: accepted migrations are separated by at least Cooldown
//     of wall-clock time;
//   - rate limit: at most MaxPerWindow migrations per RateWindow,
//     whatever the statistics do;
//   - regression guard: after each migration the controller compares
//     the post-migration feed p99 (over RegressionWindow) against the
//     pre-migration window; if it worsened beyond RegressionFactor×,
//     the previous plan is restored and the regressed plan is vetoed
//     for VetoHold.
//
// A Controller can run as a background goroutine (Start/Stop — the
// server and cmd/jiscd mode) or be single-stepped with an injected
// clock (Step — the simulation harness's deterministic mode and the
// policy unit tests).
package adaptive

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"jisc/internal/engine"
	"jisc/internal/metrics"
	"jisc/internal/obs"
	"jisc/internal/optimizer"
	"jisc/internal/plan"
)

// Target is the slice of a runtime the controller observes and drives.
// *runtime.Runtime satisfies it; SingleEngine adapts a bare engine.
type Target interface {
	// ScanStats returns cumulative per-stream scan counters (summed
	// across shards), ascending by stream ID.
	ScanStats() ([]engine.ScanStats, error)
	// Snapshot returns the live merged metrics counters.
	Snapshot() metrics.Snapshot
	// ObsSnapshot returns the merged latency histograms; an empty
	// snapshot (Feed.Count == 0) disables the regression guard.
	ObsSnapshot() obs.SetSnapshot
	// Plan returns the currently executing plan.
	Plan() (*plan.Plan, error)
	// Migrate transitions every shard to p.
	Migrate(p *plan.Plan) error
}

// Config parameterizes a Controller. The zero value of every field
// selects a sane default; only Target is required.
type Config struct {
	// Interval is the decision-tick period of the background loop
	// (default 500ms). Ignored when the controller is single-stepped.
	Interval time.Duration
	// Cooldown is the minimum wall-clock time between accepted
	// migrations (default 5s). It should not be shorter than
	// RegressionWindow, or a new migration can supersede an unresolved
	// regression guard.
	Cooldown time.Duration
	// Confirm is how many consecutive decision ticks must re-derive the
	// same proposal before it is installed (default 2) — the
	// anti-flapping hysteresis on top of the advisor's MinImprovement.
	Confirm int
	// MaxPerWindow caps accepted migrations per RateWindow (default 4
	// per minute). Rollbacks do not consume the budget.
	MaxPerWindow int
	// RateWindow is the rate-limit window (default 1m).
	RateWindow time.Duration
	// RegressionFactor triggers a rollback when the post-migration feed
	// p99 exceeds the pre-migration p99 times this factor (default 2.0;
	// negative disables the guard). The guard also stays quiet when
	// either window holds fewer than 8 samples — in particular whenever
	// the target runs without obs instrumentation.
	RegressionFactor float64
	// RegressionWindow is how long after a migration the guard waits
	// before judging it (default 2s).
	RegressionWindow time.Duration
	// VetoHold is how long a rolled-back plan stays uninstallable
	// (default 5×Cooldown).
	VetoHold time.Duration

	// MinImprovement, Decay, MinProbes, and UseLatency pass through to
	// the optimizer.Advisor (MinImprovement default 0.2). The advisor's
	// own tuple-count cooldown stays 0: pacing is the controller's job.
	MinImprovement float64
	Decay          float64
	MinProbes      uint64
	UseLatency     bool

	// Tracer receives EvAutoDecision/EvAutoRollback (and the advisor's
	// EvPlanProposed) events; Query labels them. May be nil.
	Tracer *obs.Tracer
	Query  string

	// Now supplies the background loop's clock (default time.Now).
	// Single-stepped controllers pass the time to Step directly.
	Now func() time.Time
}

// minGuardSamples is the fewest feed-latency samples either regression
// window may hold for the guard to judge a migration.
const minGuardSamples = 8

// Controller is one query's closed-loop autopilot. All methods are
// safe for concurrent use; decision state is serialized by an internal
// mutex, and the counters are atomic so STATS and /metrics read them
// without blocking behind a decision tick.
type Controller struct {
	cfg     Config
	target  Target
	advisor *optimizer.Advisor

	proposals  atomic.Uint64
	migrations atomic.Uint64
	rollbacks  atomic.Uint64
	lastMig    atomic.Int64 // unix nanos of the last accepted migration, 0 = never

	mu        sync.Mutex
	pending   *plan.Plan // current confirmation candidate
	confirms  int
	cooldown  time.Time   // start of the active cooldown period
	recent    []time.Time // accepted migrations inside RateWindow
	veto      string      // plan string barred until vetoUntil
	vetoUntil time.Time

	// Regression-guard state. anchor is a trailing cumulative snapshot
	// of the feed histogram, re-taken roughly every RegressionWindow, so
	// feed.Sub(anchor) at migration time is the pre-migration window.
	guardArmed bool
	prevPlan   *plan.Plan
	installed  string
	migratedAt time.Time
	atFeed     obs.HistSnapshot
	baseline   obs.HistSnapshot
	anchor     obs.HistSnapshot
	anchorAt   time.Time

	paused    atomic.Bool
	started   atomic.Bool
	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// New builds a Controller for target. The controller is idle until
// Start (background loop) or Step (manual ticks).
func New(target Target, cfg Config) (*Controller, error) {
	if target == nil {
		return nil, fmt.Errorf("adaptive: nil target")
	}
	if cfg.Interval < 0 || cfg.Cooldown < 0 || cfg.RateWindow < 0 || cfg.RegressionWindow < 0 || cfg.VetoHold < 0 {
		return nil, fmt.Errorf("adaptive: negative duration in config")
	}
	if cfg.Confirm < 0 || cfg.MaxPerWindow < 0 {
		return nil, fmt.Errorf("adaptive: negative count in config")
	}
	if cfg.Interval == 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	if cfg.Cooldown == 0 {
		cfg.Cooldown = 5 * time.Second
	}
	if cfg.Confirm == 0 {
		cfg.Confirm = 2
	}
	if cfg.MaxPerWindow == 0 {
		cfg.MaxPerWindow = 4
	}
	if cfg.RateWindow == 0 {
		cfg.RateWindow = time.Minute
	}
	if cfg.RegressionFactor == 0 {
		cfg.RegressionFactor = 2.0
	}
	if cfg.RegressionWindow == 0 {
		cfg.RegressionWindow = 2 * time.Second
	}
	if cfg.VetoHold == 0 {
		cfg.VetoHold = 5 * cfg.Cooldown
	}
	if cfg.MinImprovement == 0 {
		cfg.MinImprovement = 0.2
	}
	adv, err := optimizer.New(optimizer.Config{
		MinImprovement: cfg.MinImprovement,
		Decay:          cfg.Decay,
		MinProbes:      cfg.MinProbes,
		UseLatency:     cfg.UseLatency,
		Tracer:         cfg.Tracer,
		Query:          cfg.Query,
	})
	if err != nil {
		return nil, err
	}
	return &Controller{
		cfg:     cfg,
		target:  target,
		advisor: adv,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}, nil
}

// MustNew is New but panics on error.
func MustNew(target Target, cfg Config) *Controller {
	c, err := New(target, cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Start launches the background decision loop: one Step per Interval
// until Stop. Start is idempotent.
func (c *Controller) Start() {
	c.startOnce.Do(func() {
		c.started.Store(true)
		go c.loop()
	})
}

func (c *Controller) loop() {
	defer close(c.done)
	t := time.NewTicker(c.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.Step(c.now())
		}
	}
}

// Stop terminates the background loop and waits for any in-flight
// decision tick to finish. Idempotent; a never-started controller
// stops immediately. The target must still be accepting control
// messages when Stop is called (stop the autopilot before closing the
// runtime).
func (c *Controller) Stop() {
	c.stopOnce.Do(func() {
		close(c.stop)
		if c.started.Load() {
			<-c.done
		}
		c.started.Store(false)
	})
}

// Running reports whether the background loop is active.
func (c *Controller) Running() bool { return c.started.Load() }

// Pause suspends decision-making without stopping the background loop:
// Step returns immediately while paused, so no migration can start.
// The server pauses autopilots during a graceful drain — a plan
// transition racing the drain barrier would re-lengthen the queues the
// drain is emptying. Unlike Stop, Pause is reversible and does not
// join the loop goroutine, so it is safe from any context.
func (c *Controller) Pause() { c.paused.Store(true) }

// Resume lifts a Pause. Confirmation streaks and cooldowns resume
// where they left off.
func (c *Controller) Resume() { c.paused.Store(false) }

// Paused reports whether decision-making is suspended.
func (c *Controller) Paused() bool { return c.paused.Load() }

func (c *Controller) now() time.Time {
	if c.cfg.Now != nil {
		return c.cfg.Now()
	}
	return time.Now()
}

// Proposals returns how many plan changes the advisor has proposed
// (confirmed or not).
func (c *Controller) Proposals() uint64 { return c.proposals.Load() }

// Migrations returns how many proposals the controller has installed.
func (c *Controller) Migrations() uint64 { return c.migrations.Load() }

// Rollbacks returns how many installed plans the regression guard has
// reverted.
func (c *Controller) Rollbacks() uint64 { return c.rollbacks.Load() }

// LastMigration returns when the controller last installed a plan; the
// zero time when it never has.
func (c *Controller) LastMigration() time.Time {
	ns := c.lastMig.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// Step runs one decision tick at the given time: fold fresh statistics
// into the advisor, resolve a pending regression guard, and — when a
// proposal has been confirmed and clears cooldown, rate limit, and
// veto — migrate the target. Step is synchronous and deterministic
// given the target's statistics, so the simulation harness drives it
// with a logical clock between flush barriers.
func (c *Controller) Step(now time.Time) {
	if c.paused.Load() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	stats, err := c.target.ScanStats()
	if err != nil {
		return // target closing; the loop will be stopped shortly
	}
	c.advisor.ObserveScanStats(stats, c.target.Snapshot().Input)
	feed := c.target.ObsSnapshot().Feed

	if c.guardArmed {
		if now.Sub(c.migratedAt) >= c.cfg.RegressionWindow {
			c.guardArmed = false
			c.judge(now, feed)
			c.anchor, c.anchorAt = feed, now
		}
	} else if now.Sub(c.anchorAt) >= c.cfg.RegressionWindow {
		// Keep the trailing anchor about one RegressionWindow behind, so
		// the pre-migration baseline spans a window comparable to the
		// post-migration one.
		c.anchor, c.anchorAt = feed, now
	}

	cur, err := c.target.Plan()
	if err != nil {
		return
	}
	p, ok := c.advisor.Propose(cur)
	if !ok {
		// The advisor no longer stands by the pending candidate (or the
		// current plan is already best): drop the confirmation streak.
		c.pending, c.confirms = nil, 0
		return
	}
	c.proposals.Add(1)
	if c.pending != nil && p.Equal(c.pending) {
		c.confirms++
	} else {
		c.pending, c.confirms = p, 1
	}
	if c.confirms < c.cfg.Confirm {
		return
	}
	if p.String() == c.veto && now.Before(c.vetoUntil) {
		return
	}
	if !c.cooldown.IsZero() && now.Sub(c.cooldown) < c.cfg.Cooldown {
		return
	}
	keep := c.recent[:0]
	for _, t := range c.recent {
		if now.Sub(t) < c.cfg.RateWindow {
			keep = append(keep, t)
		}
	}
	c.recent = keep
	if len(c.recent) >= c.cfg.MaxPerWindow {
		return
	}

	if err := c.target.Migrate(p); err != nil {
		return
	}
	n := c.migrations.Add(1)
	c.lastMig.Store(now.UnixNano())
	c.cooldown = now
	c.recent = append(c.recent, now)
	c.pending, c.confirms = nil, 0

	// Arm the regression guard: remember how to get back, what the feed
	// latency looked like before, and where the post-migration window
	// starts (a fresh snapshot, so the migration stall itself and the
	// pre-window samples stay out of the judged interval).
	c.prevPlan, c.installed = cur, p.String()
	c.baseline = feed.Sub(c.anchor)
	c.atFeed = c.target.ObsSnapshot().Feed
	c.migratedAt = now
	c.anchor, c.anchorAt = c.atFeed, now
	c.guardArmed = c.cfg.RegressionFactor > 0

	c.cfg.Tracer.Emit(obs.Event{
		Kind: obs.EvAutoDecision, Query: c.cfg.Query, Count: n,
		Note: cur.String() + " -> " + p.String(),
	})
}

// judge resolves an armed regression guard: compare the post-migration
// feed p99 against the pre-migration baseline and roll back on a
// regression beyond RegressionFactor.
func (c *Controller) judge(now time.Time, feed obs.HistSnapshot) {
	post := feed.Sub(c.atFeed)
	if c.baseline.Count < minGuardSamples || post.Count < minGuardSamples {
		return
	}
	baseP99 := c.baseline.Quantile(0.99)
	postP99 := post.Quantile(0.99)
	if float64(postP99) <= float64(baseP99)*c.cfg.RegressionFactor {
		return
	}
	if err := c.target.Migrate(c.prevPlan); err != nil {
		return
	}
	n := c.rollbacks.Add(1)
	c.veto, c.vetoUntil = c.installed, now.Add(c.cfg.VetoHold)
	c.cooldown = now
	c.pending, c.confirms = nil, 0
	c.cfg.Tracer.Emit(obs.Event{
		Kind: obs.EvAutoRollback, Query: c.cfg.Query, Count: n,
		Dur:  postP99,
		Note: c.installed + " -> " + c.prevPlan.String(),
	})
}

// SingleEngine adapts a bare deterministic engine to the Target
// interface for in-process use (examples, tests). The engine is
// single-threaded: the caller must not feed it concurrently with
// controller steps, so pair SingleEngine with manual Step calls, not
// with Start.
type SingleEngine struct{ E *engine.Engine }

func (s SingleEngine) ScanStats() ([]engine.ScanStats, error) { return s.E.ScanStats(), nil }
func (s SingleEngine) Snapshot() metrics.Snapshot             { return s.E.Metrics() }
func (s SingleEngine) Plan() (*plan.Plan, error)              { return s.E.Plan(), nil }
func (s SingleEngine) Migrate(p *plan.Plan) error             { return s.E.Migrate(p) }

func (s SingleEngine) ObsSnapshot() obs.SetSnapshot {
	if r := s.E.Obs(); r != nil {
		return r.Snapshot()
	}
	return obs.SetSnapshot{}
}
