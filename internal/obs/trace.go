package obs

import (
	"sync"
	"time"
)

// EventKind classifies migration-lifecycle trace events.
type EventKind uint8

const (
	// EvPlanProposed: an optimizer proposed a plan switch (note holds
	// "old -> new").
	EvPlanProposed EventKind = iota
	// EvPlanInstalled: a plan transition was applied (note holds
	// "old -> new"; Count/Extra hold incomplete/complete state counts).
	EvPlanInstalled
	// EvStateComplete: a state of the new plan was classified complete
	// at transition time (note holds the stream set).
	EvStateComplete
	// EvStateIncomplete: a state of the new plan was classified
	// incomplete at transition time (note holds the stream set).
	EvStateIncomplete
	// EvCompletionStart: a just-in-time completion episode began for
	// Key.
	EvCompletionStart
	// EvCompletionEnd: a completion episode finished; Count holds the
	// tuples materialized, Dur the episode duration.
	EvCompletionEnd
	// EvSubscriberDropped: the server disconnected a subscriber whose
	// connection fell behind; Count holds the drop total so far.
	EvSubscriberDropped
	// EvAutoDecision: the adaptive controller accepted a confirmed
	// proposal and migrated the runtime (note holds "old -> new"; Count
	// holds the controller's migration total so far).
	EvAutoDecision
	// EvAutoRollback: the adaptive controller's regression guard rolled
	// the runtime back to the pre-migration plan (note holds
	// "regressed -> restored"; Count holds the rollback total so far).
	EvAutoRollback
)

var eventKindNames = [...]string{
	EvPlanProposed:      "plan-proposed",
	EvPlanInstalled:     "plan-installed",
	EvStateComplete:     "state-complete",
	EvStateIncomplete:   "state-incomplete",
	EvCompletionStart:   "completion-start",
	EvCompletionEnd:     "completion-end",
	EvSubscriberDropped: "subscriber-dropped",
	EvAutoDecision:      "auto-decision",
	EvAutoRollback:      "auto-rollback",
}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "unknown"
}

// Event is one migration-lifecycle record. Unused fields stay zero.
type Event struct {
	// Seq is the tracer-assigned emission number (monotone, including
	// events later overwritten by the ring).
	Seq uint64 `json:"seq"`
	// Time is the wall-clock emission time, stamped by the tracer when
	// left zero.
	Time time.Time `json:"time"`
	Kind EventKind `json:"-"`
	// KindName mirrors Kind as a string for JSON dumps.
	KindName string `json:"kind"`
	// Query names the continuous query the event belongs to.
	Query string `json:"query,omitempty"`
	// Shard identifies the runtime shard (0 for unsharded engines).
	Shard int `json:"shard"`
	// Tick is the engine arrival tick, when the event has one.
	Tick uint64 `json:"tick,omitempty"`
	// Key is the join-attribute value of completion events.
	Key int64 `json:"key,omitempty"`
	// Count is the event's primary count (tuples materialized by a
	// completion, incomplete states of a transition, drops so far).
	Count uint64 `json:"count,omitempty"`
	// Extra is the secondary count (complete states of a transition).
	Extra uint64 `json:"extra,omitempty"`
	// Dur is the episode duration of EvCompletionEnd.
	Dur time.Duration `json:"dur_ns,omitempty"`
	// Note carries free-form context (plans, stream sets).
	Note string `json:"note,omitempty"`
}

// Tracer records migration-lifecycle events into a fixed-capacity ring
// buffer: memory is bounded, the newest events win, and every
// overwritten event is counted as dropped. Emission takes a short
// mutex — events fire on migration lifecycles, not per tuple, so the
// tracer is deliberately kept off the feed hot path. All methods are
// safe for concurrent use, and safe on a nil *Tracer (no-ops), so
// instrumented code never branches on wiring.
type Tracer struct {
	// Now supplies event timestamps; defaults to time.Now. Tests
	// inject a fake clock.
	Now func() time.Time

	mu      sync.Mutex
	buf     []Event
	next    uint64 // total events emitted
	dropped uint64 // events overwritten by the ring
}

// DefaultTraceCap is the ring capacity NewTracer(0) allocates.
const DefaultTraceCap = 4096

// NewTracer returns a tracer holding the last capacity events
// (DefaultTraceCap when capacity ≤ 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{buf: make([]Event, 0, capacity)}
}

// Emit appends ev, stamping Seq, KindName, and (when zero) Time. The
// oldest event is overwritten — and counted dropped — once the ring is
// full. Emit on a nil tracer is a no-op.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	ev.Seq = t.next
	ev.KindName = ev.Kind.String()
	if ev.Time.IsZero() {
		if t.Now != nil {
			ev.Time = t.Now()
		} else {
			ev.Time = time.Now()
		}
	}
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[t.next%uint64(cap(t.buf))] = ev
		t.dropped++
	}
	t.next++
	t.mu.Unlock()
}

// Events returns a copy of the retained events, oldest first. Nil
// tracers return nil.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	if len(t.buf) < cap(t.buf) {
		return append(out, t.buf...)
	}
	// Full ring: the oldest retained event sits at the write cursor.
	start := int(t.next % uint64(cap(t.buf)))
	out = append(out, t.buf[start:]...)
	return append(out, t.buf[:start]...)
}

// Dropped returns how many events were overwritten by the ring.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Emitted returns the total number of events ever emitted, retained or
// not.
func (t *Tracer) Emitted() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}
