package obs

import (
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"jisc/internal/testseed"
)

// Every nanosecond value must land in a bucket whose bound brackets
// it, and bounds must be strictly increasing.
func TestBucketIndexBounds(t *testing.T) {
	prev := uint64(0)
	for i := 0; i < NumBuckets; i++ {
		b := BucketBound(i)
		if i > 0 && b <= prev {
			t.Fatalf("bucket %d bound %d not above previous %d", i, b, prev)
		}
		prev = b
	}
	vals := []uint64{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 100, 999, 1 << 20, 1<<40 + 12345, 1 << 62}
	r := rand.New(rand.NewSource(testseed.Seed(t, 1)))
	for i := 0; i < 10000; i++ {
		vals = append(vals, uint64(r.Int63()))
	}
	for _, v := range vals {
		i := bucketIndex(v)
		if v > BucketBound(i) && i < NumBuckets-1 {
			t.Fatalf("value %d above bucket %d bound %d", v, i, BucketBound(i))
		}
		if i > 0 && v <= BucketBound(i-1) {
			t.Fatalf("value %d not above bucket %d's lower fence %d", v, i, BucketBound(i-1))
		}
	}
}

// Histogram merging must be associative and commutative — the property
// the per-shard aggregation relies on.
func TestSnapshotMergeAssociative(t *testing.T) {
	mk := func(seed int64, n int) HistSnapshot {
		var h Histogram
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < n; i++ {
			h.Observe(uint64(r.Int63n(1_000_000_000)))
		}
		return h.Snapshot()
	}
	base := testseed.Seed(t, 0)
	a, b, c := mk(base+1, 500), mk(base+2, 300), mk(base+3, 700)
	ab_c := a.Add(b).Add(c)
	a_bc := a.Add(b.Add(c))
	ba_c := b.Add(a).Add(c)
	for _, o := range []HistSnapshot{a_bc, ba_c} {
		if o != ab_c {
			t.Fatalf("merge not associative/commutative:\n%+v\nvs\n%+v", ab_c, o)
		}
	}
	if ab_c.Count != 1500 {
		t.Fatalf("merged count = %d", ab_c.Count)
	}
	// Merged quantiles equal quantiles of a single histogram fed the
	// union of the samples.
	var union Histogram
	for off, n := range map[int64]int{1: 500, 2: 300, 3: 700} {
		r := rand.New(rand.NewSource(base + off))
		for i := 0; i < n; i++ {
			union.Observe(uint64(r.Int63n(1_000_000_000)))
		}
	}
	if u := union.Snapshot(); u != ab_c {
		t.Fatalf("merged snapshot differs from union histogram")
	}
}

// Concurrent Record from many goroutines with concurrent Snapshot must
// lose nothing (run under -race).
func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				h.Snapshot() // concurrent reader
			}
		}
	}()
	base := testseed.Seed(t, 0)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(base + int64(g)))
			for i := 0; i < per; i++ {
				h.Observe(uint64(r.Int63n(1 << 30)))
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*per)
	}
	var sum uint64
	for _, c := range s.Counts {
		sum += c
	}
	if sum != s.Count {
		t.Fatalf("bucket sum %d != count %d", sum, s.Count)
	}
}

func TestQuantiles(t *testing.T) {
	var h Histogram
	if q := h.Snapshot().Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram p50 = %v", q)
	}
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	checks := []struct {
		q    float64
		want time.Duration
	}{
		{0.5, 500 * time.Microsecond},
		{0.95, 950 * time.Microsecond},
		{0.99, 990 * time.Microsecond},
		{1.0, 1000 * time.Microsecond},
	}
	for _, c := range checks {
		got := s.Quantile(c.q)
		// Log-linear buckets bound the relative error by 1/subCount.
		if got < c.want || float64(got) > float64(c.want)*(1+1.0/subCount)+1 {
			t.Errorf("p%v = %v, want within 25%% above %v", c.q*100, got, c.want)
		}
	}
	if s.Max != uint64(1000*time.Microsecond) {
		t.Fatalf("max = %d", s.Max)
	}
	if m := s.Mean(); m < 400*time.Microsecond || m > 600*time.Microsecond {
		t.Fatalf("mean = %v", m)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestRecordNegativeAndZero(t *testing.T) {
	var h Histogram
	h.Record(-time.Second)
	h.Record(0)
	s := h.Snapshot()
	if s.Count != 2 || s.Counts[0] != 2 || s.Sum != 0 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestWritePromHistogram(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	var b strings.Builder
	WritePromHistogram(&b, "jisc_feed_seconds", PromLabels("default"), h.Snapshot())
	out := b.String()
	for _, want := range []string{
		"# TYPE jisc_feed_seconds histogram",
		`jisc_feed_seconds_bucket{query="default",le="+Inf"} 100`,
		`jisc_feed_seconds_count{query="default"} 100`,
		`jisc_feed_seconds_sum{query="default"} `,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Cumulative bucket counts must be non-decreasing and end at Count.
	var last uint64
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, "_bucket") {
			continue
		}
		fields := strings.Fields(line)
		n, err := strconv.ParseUint(fields[len(fields)-1], 10, 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		if n < last {
			t.Fatalf("cumulative count decreased: %q after %d", line, last)
		}
		last = n
	}
	if last != 100 {
		t.Fatalf("final cumulative = %d", last)
	}
}
