package obs

import (
	"fmt"
	"io"
	"strings"
)

// Prometheus text exposition (version 0.0.4), hand-rolled so the
// telemetry endpoint needs no dependency. Histograms are exported in
// seconds, as Prometheus convention requires; only non-empty buckets
// are emitted (cumulative counts stay correct under any subset of
// boundaries), keeping the scrape small despite the fixed bucket
// table. The Series variants emit samples without a TYPE header, for
// endpoints exporting the same metric across several queries — the
// format allows one TYPE line per metric name.

// PromLabels formats the single query label. Values are escaped per
// the exposition format.
func PromLabels(query string) string {
	return `query="` + escapeLabel(query) + `"`
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// WritePromType emits the TYPE header for a metric. kind is "counter",
// "gauge", or "histogram".
func WritePromType(w io.Writer, name, kind string) {
	fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
}

// WritePromCounter emits one counter sample with a TYPE header.
func WritePromCounter(w io.Writer, name, labels string, v uint64) {
	WritePromType(w, name, "counter")
	WritePromCounterSeries(w, name, labels, v)
}

// WritePromCounterSeries emits one counter sample without a header.
func WritePromCounterSeries(w io.Writer, name, labels string, v uint64) {
	fmt.Fprintf(w, "%s{%s} %d\n", name, labels, v)
}

// WritePromGauge emits one gauge sample with a TYPE header.
func WritePromGauge(w io.Writer, name, labels string, v float64) {
	WritePromType(w, name, "gauge")
	WritePromGaugeSeries(w, name, labels, v)
}

// WritePromGaugeSeries emits one gauge sample without a header.
func WritePromGaugeSeries(w io.Writer, name, labels string, v float64) {
	fmt.Fprintf(w, "%s{%s} %g\n", name, labels, v)
}

// WritePromHistogram emits s as a Prometheus histogram named name
// (unit: seconds) with the given extra labels ("k=\"v\"" form, no
// braces, may be empty), preceded by its TYPE header.
func WritePromHistogram(w io.Writer, name, labels string, s HistSnapshot) {
	WritePromType(w, name, "histogram")
	WritePromHistogramSeries(w, name, labels, s)
}

// WritePromHistogramSeries is WritePromHistogram without the header.
func WritePromHistogramSeries(w io.Writer, name, labels string, s HistSnapshot) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		cum += c
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n",
			name, labels, sep, formatSeconds(BucketBound(i)), cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, s.Count)
	fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, float64(s.Sum)/1e9)
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, s.Count)
}

// WritePromHistogramRaw emits s as a histogram whose observations are
// unitless values (batch sizes, counts) rather than nanoseconds: "le"
// bounds and the sum are written as raw integers with no seconds
// scaling. Preceded by its TYPE header.
func WritePromHistogramRaw(w io.Writer, name, labels string, s HistSnapshot) {
	WritePromType(w, name, "histogram")
	WritePromHistogramRawSeries(w, name, labels, s)
}

// WritePromHistogramRawSeries is WritePromHistogramRaw without the
// header.
func WritePromHistogramRawSeries(w io.Writer, name, labels string, s HistSnapshot) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		cum += c
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%d\"} %d\n", name, labels, sep, BucketBound(i), cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, s.Count)
	fmt.Fprintf(w, "%s_sum{%s} %d\n", name, labels, s.Sum)
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, s.Count)
}

// formatSeconds renders a nanosecond bound as seconds for the "le"
// label, with enough precision to keep distinct bounds distinct.
func formatSeconds(ns uint64) string {
	return fmt.Sprintf("%g", float64(ns)/1e9)
}
