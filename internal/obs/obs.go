// Package obs is the observability layer: low-overhead latency
// histograms, migration-lifecycle event tracing, and the Prometheus
// text formatting behind the telemetry endpoint.
//
// The paper's headline claim is about latency — lazy state completion
// (JISC) trades one large migration stall for many small per-probe
// completion episodes — and counters alone cannot show that. This
// package records the distributions: per-tuple end-to-end feed
// latency, per-operator probe/build time (sampled), per-completion-
// episode duration, and per-transition Migrate duration (the stall an
// eager strategy pays).
//
// The hot-path discipline matches internal/metrics: histograms are
// fixed arrays of sync/atomic counters, recorded by the executor
// goroutine and snapshotted concurrently by monitoring without locks
// or channel round trips. The tracer is mutex-guarded but only fires
// on migration lifecycle events, never per tuple. Everything is
// optional: a nil *Recorder on an engine, or nil *Tracer anywhere,
// disables the corresponding instrumentation entirely.
//
// Wiring: one Set per continuous query, one Recorder per runtime
// shard (Set.Recorder), one shared Tracer per Set. Set.Snapshot merges
// the per-shard histograms — merging is exact because every histogram
// shares the same fixed bucket boundaries.
package obs

import (
	"sync"
)

// sampleEvery is the probe/build sampling period: one in sampleEvery
// operator probes is timed. feedEvery is the same for whole-tuple feed
// latency. Timing everything would put several clock reads on every
// tuple (~25% on the steady-state feed benchmark); sampling keeps the
// overhead within the ≤10% budget while the histograms still converge
// on the true distributions — the workload's arrival pattern is not
// correlated with the sample phase.
const (
	sampleEvery = 16
	feedEvery   = 4
)

// Recorder bundles one engine's (one shard's) latency histograms and
// its link to the query-wide tracer. Fields are recorded by the engine
// hot path and read by monitoring via Snapshot; a Recorder must not be
// copied after first use.
type Recorder struct {
	// Feed is the per-tuple end-to-end feed latency — window slide,
	// scan insert, every probe/build level, output emission — sampled
	// one tuple in feedEvery.
	Feed Histogram
	// Probe holds sampled per-operator probe durations (hash lookup or
	// nested-loops scan of the opposite state).
	Probe Histogram
	// Build holds sampled per-operator build durations (composite
	// construction + state insert).
	Build Histogram
	// Completion holds per-completion-episode durations — the many
	// small pauses JISC trades the one big stall for.
	Completion Histogram
	// Migrate holds per-transition Migrate durations: the buffer-
	// clearing phase plus the strategy's OnTransition (for an eager
	// strategy, the halt the paper's §3.2 describes).
	Migrate Histogram
	// WALAppend and WALFsync time the durability layer: per-record
	// write-ahead-log append (encode + buffered write + any policy
	// fsync) and per-fsync flush+sync duration (one sample per group
	// commit under the batch policy). Unlike the engine histograms
	// these are recorded from producer and flusher goroutines, which
	// is safe — Histogram is atomic; only the Sample* phase counters
	// are executor-only, and the WAL does not use them.
	WALAppend Histogram
	WALFsync  Histogram
	// BatchFill holds realized ingest batch sizes (tuples per
	// FeedBatch call), not durations: Observe takes the batch length
	// and Count doubles as the batch-flush counter. Rendered with raw
	// bucket bounds, never as seconds.
	BatchFill Histogram
	// SpillFault times tiered-state bucket faults: the disk read +
	// decode a probe pays when its bucket was spilled past the state
	// budget. Count doubles as the fault counter. Recorded by the
	// statestore on the executor goroutine.
	SpillFault Histogram

	// Query and Shard label trace events emitted through this
	// recorder.
	Query string
	Shard int
	// Tracer receives migration-lifecycle events; nil disables
	// tracing.
	Tracer *Tracer

	// probes and feeds are the sampling phases. Deliberately plain
	// (non-atomic) counters: Sample* may only be called by the one
	// executor goroutine that owns the shard, and snapshots never read
	// them — so the hot path pays no atomic RMW just to decide whether
	// to time something.
	probes uint64
	feeds  uint64
}

// SampleProbe reports whether this probe should be timed, advancing
// the sampling phase. Must be called only from the shard's executor
// goroutine. Safe for nil recorders (false).
func (r *Recorder) SampleProbe() bool {
	if r == nil {
		return false
	}
	r.probes++
	return r.probes%sampleEvery == 0
}

// SampleFeed reports whether this tuple's end-to-end feed latency
// should be timed, advancing the sampling phase. Must be called only
// from the shard's executor goroutine. Safe for nil recorders (false).
func (r *Recorder) SampleFeed() bool {
	if r == nil {
		return false
	}
	r.feeds++
	return r.feeds%feedEvery == 0
}

// ObserveBatchFill records one ingest batch of n tuples. Safe for nil
// recorders.
func (r *Recorder) ObserveBatchFill(n int) {
	if r == nil {
		return
	}
	r.BatchFill.Observe(uint64(n))
}

// Snapshot copies the recorder's histograms.
func (r *Recorder) Snapshot() SetSnapshot {
	return SetSnapshot{
		Feed:       r.Feed.Snapshot(),
		Probe:      r.Probe.Snapshot(),
		Build:      r.Build.Snapshot(),
		Completion: r.Completion.Snapshot(),
		Migrate:    r.Migrate.Snapshot(),
		WALAppend:  r.WALAppend.Snapshot(),
		WALFsync:   r.WALFsync.Snapshot(),
		BatchFill:  r.BatchFill.Snapshot(),
		SpillFault: r.SpillFault.Snapshot(),
	}
}

// Set is the per-query observability bundle: one Recorder per runtime
// shard plus the shared event tracer.
type Set struct {
	// Query names the continuous query the set belongs to.
	Query string
	// Tracer is shared by every shard's recorder. May be nil.
	Tracer *Tracer

	mu   sync.Mutex
	recs []*Recorder
}

// NewSet builds a Set with a tracer holding traceCap events
// (DefaultTraceCap when ≤ 0).
func NewSet(query string, traceCap int) *Set {
	return &Set{Query: query, Tracer: NewTracer(traceCap)}
}

// Recorder returns the recorder for the given shard, creating it on
// first use. Safe for concurrent use; safe on a nil Set (returns nil).
func (s *Set) Recorder(shard int) *Recorder {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.recs {
		if r.Shard == shard {
			return r
		}
	}
	r := &Recorder{Query: s.Query, Shard: shard, Tracer: s.Tracer}
	s.recs = append(s.recs, r)
	return r
}

// Recorders returns the live recorders.
func (s *Set) Recorders() []*Recorder {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Recorder(nil), s.recs...)
}

// Snapshot merges every shard's histograms into one SetSnapshot —
// exact because all histograms share the same bucket boundaries. Safe
// from any goroutine, concurrently with recording; a nil Set yields an
// empty snapshot.
func (s *Set) Snapshot() SetSnapshot {
	var out SetSnapshot
	if s == nil {
		return out
	}
	for _, r := range s.Recorders() {
		out = out.Add(r.Snapshot())
	}
	out.TraceDropped = s.Tracer.Dropped()
	out.TraceEmitted = s.Tracer.Emitted()
	return out
}

// SetSnapshot is the merged, immutable view of a Set (or of one
// Recorder).
type SetSnapshot struct {
	Feed       HistSnapshot
	Probe      HistSnapshot
	Build      HistSnapshot
	Completion HistSnapshot
	Migrate    HistSnapshot
	WALAppend  HistSnapshot
	WALFsync   HistSnapshot
	// BatchFill buckets hold batch sizes in tuples, not nanoseconds.
	BatchFill HistSnapshot
	// SpillFault holds tiered-state bucket fault latencies; its Count
	// is the fault total.
	SpillFault HistSnapshot

	// TraceDropped and TraceEmitted mirror the tracer's drop
	// accounting at snapshot time.
	TraceDropped uint64
	TraceEmitted uint64
}

// Add merges two snapshots element-wise.
func (s SetSnapshot) Add(o SetSnapshot) SetSnapshot {
	return SetSnapshot{
		Feed:         s.Feed.Add(o.Feed),
		Probe:        s.Probe.Add(o.Probe),
		Build:        s.Build.Add(o.Build),
		Completion:   s.Completion.Add(o.Completion),
		Migrate:      s.Migrate.Add(o.Migrate),
		WALAppend:    s.WALAppend.Add(o.WALAppend),
		WALFsync:     s.WALFsync.Add(o.WALFsync),
		BatchFill:    s.BatchFill.Add(o.BatchFill),
		SpillFault:   s.SpillFault.Add(o.SpillFault),
		TraceDropped: s.TraceDropped + o.TraceDropped,
		TraceEmitted: s.TraceEmitted + o.TraceEmitted,
	}
}
