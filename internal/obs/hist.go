package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Log-linear bucketing (the HDR-histogram discipline): each power-of-
// two octave of the nanosecond range is split into subCount linear
// sub-buckets, giving a bounded relative error of 1/subCount (25%)
// across the whole range with a small fixed table — no allocation, no
// configuration, and bucket boundaries that are identical in every
// histogram, which is what makes snapshots mergeable by element-wise
// addition.
const (
	subBits  = 2
	subCount = 1 << subBits
	// NumBuckets covers every uint64 nanosecond value exactly: the
	// highest index bucketIndex produces (for v near 2^64) is 251,
	// whose bound is the maximal uint64.
	NumBuckets = 252
)

// bucketIndex maps a nanosecond value to its bucket.
func bucketIndex(v uint64) int {
	if v < subCount {
		return int(v)
	}
	msb := bits.Len64(v) - 1
	idx := subCount*(msb-subBits) + int(v>>(msb-subBits))
	if idx >= NumBuckets {
		return NumBuckets - 1
	}
	return idx
}

// BucketBound returns the inclusive upper bound, in nanoseconds, of
// bucket i — the boundary reported as the Prometheus "le" label.
func BucketBound(i int) uint64 {
	if i < subCount {
		return uint64(i)
	}
	shift := i/subCount - 1
	sub := uint64(i%subCount) + subCount
	return (sub+1)<<shift - 1
}

// Histogram is a lock-free latency histogram: fixed log-bucketed
// counters updated with sync/atomic only, so the executor hot path
// records without locks and any goroutine snapshots concurrently.
// The zero value is ready to use; a Histogram must not be copied
// after first use.
type Histogram struct {
	counts [NumBuckets]atomic.Uint64
	sum    atomic.Uint64 // nanoseconds
	max    atomic.Uint64 // nanoseconds
}

// Record adds one duration sample. Negative durations count as zero.
func (h *Histogram) Record(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.Observe(ns)
}

// Observe adds one sample of ns nanoseconds. The total sample count is
// not tracked separately — it is the sum of the bucket counters, paid
// once at snapshot time instead of one more atomic add per sample.
func (h *Histogram) Observe(ns uint64) {
	h.counts[bucketIndex(ns)].Add(1)
	h.sum.Add(ns)
	for {
		m := h.max.Load()
		if ns <= m || h.max.CompareAndSwap(m, ns) {
			return
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Snapshot copies the histogram for reporting. Safe to call from any
// goroutine, concurrently with Record; the copy is weakly consistent
// (counters are read one by one), which is the same contract as
// metrics.Collector.Snapshot.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Sum: h.sum.Load(),
		Max: h.max.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		s.Count += s.Counts[i]
	}
	return s
}

// HistSnapshot is an immutable copy of a Histogram. The zero value is
// an empty snapshot.
type HistSnapshot struct {
	Counts [NumBuckets]uint64
	Count  uint64
	Sum    uint64 // nanoseconds
	Max    uint64 // nanoseconds
}

// Add returns the element-wise sum of s and o — the merge used to
// aggregate per-shard histograms. Merging is associative and
// commutative because every histogram shares the same fixed bucket
// boundaries.
func (s HistSnapshot) Add(o HistSnapshot) HistSnapshot {
	out := HistSnapshot{
		Count: s.Count + o.Count,
		Sum:   s.Sum + o.Sum,
		Max:   s.Max,
	}
	if o.Max > out.Max {
		out.Max = o.Max
	}
	for i := range s.Counts {
		out.Counts[i] = s.Counts[i] + o.Counts[i]
	}
	return out
}

// Sub returns the element-wise difference s − o, the interval view of
// a cumulative histogram: with o an earlier snapshot of the same
// histogram, the result holds exactly the samples recorded between the
// two snapshot points. Buckets subtract saturating at zero (weakly
// consistent snapshots can transiently disagree per bucket), Count is
// recomputed from the resulting buckets, and Max is inherited from s —
// the per-interval maximum is not recoverable from cumulative state, so
// the lifetime maximum stands in as an upper bound.
func (s HistSnapshot) Sub(o HistSnapshot) HistSnapshot {
	out := HistSnapshot{Max: s.Max}
	for i := range s.Counts {
		if s.Counts[i] > o.Counts[i] {
			out.Counts[i] = s.Counts[i] - o.Counts[i]
		}
		out.Count += out.Counts[i]
	}
	if s.Sum > o.Sum {
		out.Sum = s.Sum - o.Sum
	}
	return out
}

// Quantile returns an upper bound on the q-quantile (0 ≤ q ≤ 1) of the
// recorded samples: the bound of the first bucket whose cumulative
// count reaches q·Count, clamped to the recorded maximum. Returns 0
// when the histogram is empty.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			b := BucketBound(i)
			if b > s.Max {
				b = s.Max
			}
			return time.Duration(b)
		}
	}
	return time.Duration(s.Max)
}

// Mean returns the average recorded duration, or 0 when empty.
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / s.Count)
}
