package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestTracerWraparoundAndDrops(t *testing.T) {
	tr := NewTracer(4)
	now := time.Unix(1000, 0)
	tr.Now = func() time.Time { now = now.Add(time.Second); return now }
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Kind: EvCompletionEnd, Key: int64(i)})
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	// The ring keeps the newest 4, oldest first.
	for i, ev := range evs {
		if want := int64(6 + i); ev.Key != want {
			t.Fatalf("event %d key = %d, want %d", i, ev.Key, want)
		}
		if ev.Seq != uint64(6+i) {
			t.Fatalf("event %d seq = %d", i, ev.Seq)
		}
		if ev.KindName != "completion-end" {
			t.Fatalf("event kind name = %q", ev.KindName)
		}
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	if tr.Emitted() != 10 {
		t.Fatalf("emitted = %d, want 10", tr.Emitted())
	}
	// Events must be in emission order even mid-ring.
	tr.Emit(Event{Kind: EvPlanInstalled})
	evs = tr.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("out of order: %d after %d", evs[i].Seq, evs[i-1].Seq)
		}
	}
}

func TestTracerPartialRing(t *testing.T) {
	tr := NewTracer(8)
	tr.Emit(Event{Kind: EvPlanProposed, Note: "a -> b"})
	tr.Emit(Event{Kind: EvStateIncomplete})
	evs := tr.Events()
	if len(evs) != 2 || tr.Dropped() != 0 {
		t.Fatalf("events=%d dropped=%d", len(evs), tr.Dropped())
	}
	if evs[0].Kind != EvPlanProposed || evs[0].Note != "a -> b" {
		t.Fatalf("first event = %+v", evs[0])
	}
	if evs[0].Time.IsZero() {
		t.Fatal("time not stamped")
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Kind: EvSubscriberDropped})
	if tr.Events() != nil || tr.Dropped() != 0 || tr.Emitted() != 0 {
		t.Fatal("nil tracer not inert")
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Emit(Event{Kind: EvCompletionStart})
				tr.Events()
			}
		}()
	}
	wg.Wait()
	if tr.Emitted() != 4000 {
		t.Fatalf("emitted = %d", tr.Emitted())
	}
	if tr.Dropped() != 4000-64 {
		t.Fatalf("dropped = %d", tr.Dropped())
	}
}

func TestEventJSON(t *testing.T) {
	tr := NewTracer(2)
	tr.Emit(Event{Kind: EvCompletionEnd, Query: "q", Shard: 1, Key: 42, Count: 7, Dur: 3 * time.Millisecond})
	b, err := json.Marshal(tr.Events())
	if err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded[0]["kind"] != "completion-end" || decoded[0]["key"].(float64) != 42 {
		t.Fatalf("decoded = %v", decoded[0])
	}
}

func TestSetSnapshotMerge(t *testing.T) {
	s := NewSet("q", 16)
	r0, r1 := s.Recorder(0), s.Recorder(1)
	if s.Recorder(0) != r0 {
		t.Fatal("Recorder not idempotent per shard")
	}
	r0.Feed.Record(time.Millisecond)
	r1.Feed.Record(2 * time.Millisecond)
	r1.Completion.Record(5 * time.Millisecond)
	s.Tracer.Emit(Event{Kind: EvPlanInstalled})
	snap := s.Snapshot()
	if snap.Feed.Count != 2 {
		t.Fatalf("merged feed count = %d", snap.Feed.Count)
	}
	if snap.Completion.Count != 1 {
		t.Fatalf("merged completion count = %d", snap.Completion.Count)
	}
	if snap.TraceEmitted != 1 {
		t.Fatalf("trace emitted = %d", snap.TraceEmitted)
	}
	if got := snap.Feed.Max; got != uint64(2*time.Millisecond) {
		t.Fatalf("merged max = %d", got)
	}
	// Nil set and nil recorder are inert.
	var ns *Set
	if ns.Recorder(0) != nil || ns.Snapshot().Feed.Count != 0 {
		t.Fatal("nil set not inert")
	}
	var nr *Recorder
	if nr.SampleProbe() {
		t.Fatal("nil recorder samples")
	}
}

func TestSampleProbePeriod(t *testing.T) {
	r := &Recorder{}
	hits := 0
	for i := 0; i < sampleEvery*10; i++ {
		if r.SampleProbe() {
			hits++
		}
	}
	if hits != 10 {
		t.Fatalf("hits = %d, want 10", hits)
	}
}
