package migrate

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"jisc/internal/engine"
	"jisc/internal/plan"
	"jisc/internal/testseed"
	"jisc/internal/tuple"
	"jisc/internal/workload"
)

// Parallel Track duplicate-elimination edge cases around the overlap
// window — the interval during which a superseded track and its
// successor both run. These are the known-good baselines the sim
// shrinker relies on when it reduces a divergence involving PT.

// A tuple arriving during the overlap is processed by both tracks. A
// later arrival can then pair with it in both tracks simultaneously —
// the same provenance from two plans — and must be emitted exactly
// once.
func TestParallelTrackOverlapArrivalDedup(t *testing.T) {
	counts := map[string]int{}
	pt := MustNewParallelTrack(PTConfig{
		Plan: plan.MustLeftDeep(0, 1), WindowSize: 10, CheckEvery: 100,
		Output: func(d engine.Delta) { counts[d.Tuple.Fingerprint()]++ },
	})
	pt.Feed(ev(0, 5)) // 0#1, pre-transition: only the old track has it
	if err := pt.Migrate(plan.MustLeftDeep(1, 0)); err != nil {
		t.Fatal(err)
	}
	pt.Feed(ev(1, 5)) // 1#1 arrives during the overlap, lands in BOTH tracks
	// Old track pairs 0#1 with 1#1; the new track has no stream-0
	// tuple, so no duplicate yet.
	if got := pt.Metrics().DupDropped; got != 0 {
		t.Fatalf("DupDropped = %d before any duplicate was possible", got)
	}
	pt.Feed(ev(0, 5)) // 0#2: pairs with the overlap tuple 1#1 in BOTH tracks
	want := map[string]int{"0#1|1#1": 1, "0#2|1#1": 1}
	if d := diffFingerprints(want, counts); d != "" {
		t.Fatalf("overlap-arrival output multiset wrong:\n%s", d)
	}
	if got := pt.Metrics().DupDropped; got != 1 {
		t.Fatalf("DupDropped = %d, want exactly 1 (the twin of 0#2|1#1)", got)
	}
}

// When the discard check retires the last superseded track, the
// fingerprint table must be released: a single plan cannot produce
// duplicates, and holding the table would leak one entry per output
// for the rest of the query's life.
func TestParallelTrackSeenTableReleasedAfterDiscard(t *testing.T) {
	pt := MustNewParallelTrack(PTConfig{Plan: plan.MustLeftDeep(0, 1), WindowSize: 2, CheckEvery: 1})
	pt.Feed(ev(0, 1))
	pt.Feed(ev(1, 1))
	if err := pt.Migrate(plan.MustLeftDeep(1, 0)); err != nil {
		t.Fatal(err)
	}
	// Turn the windows over so every pre-transition tuple expires from
	// the old track; CheckEvery=1 runs the discard scan on every feed.
	for i := 0; i < 8 && pt.MigrationActive(); i++ {
		pt.Feed(ev(tuple.StreamID(i%2), tuple.Value(10+i)))
	}
	if pt.MigrationActive() {
		t.Fatal("old track never discarded")
	}
	if len(pt.seen) != 0 {
		t.Fatalf("fingerprint table still holds %d entries after the migration stage ended", len(pt.seen))
	}
}

// Three stacked tracks (an overlapped transition) with tuples arriving
// in every overlap interval: the emitted multiset must still equal a
// never-migrated engine's, with every cross-track duplicate dropped.
func TestParallelTrackStackedTracksDifferential(t *testing.T) {
	base := testseed.Seed(t, 1)
	for c := 0; c < 10; c++ {
		seed := base + int64(c)
		rng := rand.New(rand.NewSource(seed))
		plans := []*plan.Plan{
			plan.MustLeftDeep(0, 1, 2),
			plan.MustLeftDeep(2, 0, 1),
			plan.MustLeftDeep(1, 2, 0),
		}
		ptOuts := map[string]int{}
		pt := MustNewParallelTrack(PTConfig{
			Plan: plans[0], WindowSize: 4, CheckEvery: 3,
			Output: func(d engine.Delta) { ptOuts[d.Tuple.Fingerprint()]++ },
		})
		refOuts := map[string]int{}
		ref := engine.MustNew(engine.Config{
			Plan: plans[0], WindowSize: 4, Strategy: engine.Static{},
			Output: func(d engine.Delta) {
				if !d.Retraction {
					refOuts[d.Tuple.Fingerprint()]++
				}
			},
		})
		src := workload.MustNewSource(workload.Config{Streams: 3, Domain: 3, Seed: seed})
		maxTracks := 0
		for i := 0; i < 200; i++ {
			if i == 40 || i == 43 { // second switch lands mid-overlap
				if err := pt.Migrate(plans[(i % len(plans))]); err != nil {
					t.Fatal(err)
				}
			} else if i > 60 && rng.Intn(40) == 0 {
				if err := pt.Migrate(plans[rng.Intn(len(plans))]); err != nil {
					t.Fatal(err)
				}
			}
			if pt.Tracks() > maxTracks {
				maxTracks = pt.Tracks()
			}
			e := src.Next()
			pt.Feed(e)
			ref.Feed(e)
		}
		if maxTracks < 3 {
			t.Fatalf("seed %d: scenario never stacked 3 tracks (max %d)", seed, maxTracks)
		}
		if d := diffFingerprints(refOuts, ptOuts); d != "" {
			t.Fatalf("seed %d: stacked-track PT diverges from never-migrated engine:\n%s", seed, d)
		}
	}
}

// diffFingerprints renders the difference between two output
// multisets; empty when equal.
func diffFingerprints(want, got map[string]int) string {
	keys := map[string]bool{}
	for k := range want {
		keys[k] = true
	}
	for k := range got {
		keys[k] = true
	}
	var lines []string
	for k := range keys {
		if want[k] != got[k] {
			lines = append(lines, fmt.Sprintf("  %s: want %d, got %d", k, want[k], got[k]))
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
