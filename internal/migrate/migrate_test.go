package migrate

import (
	"testing"
	"time"

	"jisc/internal/engine"
	"jisc/internal/plan"
	"jisc/internal/tuple"
	"jisc/internal/workload"
)

func ev(s tuple.StreamID, k tuple.Value) workload.Event {
	return workload.Event{Stream: s, Key: k}
}

func TestMovingStateEagerlyFillsStates(t *testing.T) {
	e := engine.MustNew(engine.Config{
		Plan: plan.MustLeftDeep(0, 1, 2), WindowSize: 100, Strategy: MovingState{},
	})
	for _, k := range []tuple.Value{1, 2, 3} {
		e.Feed(ev(1, k))
		e.Feed(ev(2, k))
	}
	if err := e.Migrate(plan.MustLeftDeep(1, 2, 0)); err != nil {
		t.Fatal(err)
	}
	n12 := e.NodeBySet(tuple.NewStreamSet(1, 2))
	if !n12.St.Complete() {
		t.Fatal("moving state left {1,2} incomplete")
	}
	if n12.St.Size() != 3 {
		t.Fatalf("{1,2} size = %d, want 3 (all keys eagerly computed)", n12.St.Size())
	}
	if e.Metrics().MigrationWork == 0 {
		t.Fatal("no migration work recorded")
	}
}

func TestMovingStateOutputLatencyIsTheHalt(t *testing.T) {
	clock := time.Unix(0, 0)
	e := engine.MustNew(engine.Config{
		Plan: plan.MustLeftDeep(0, 1, 2), Strategy: MovingState{},
		Now: func() time.Time { return clock },
	})
	e.Feed(ev(1, 1))
	e.Feed(ev(2, 1))
	if err := e.Migrate(plan.MustLeftDeep(1, 2, 0)); err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(2 * time.Second) // models the recomputation halt
	e.Feed(ev(0, 1))
	lat := e.Metrics().OutputLatencies
	if len(lat) != 1 || lat[0] != 2*time.Second {
		t.Fatalf("latencies = %v", lat)
	}
}

func TestMovingStateBushy(t *testing.T) {
	e := engine.MustNew(engine.Config{
		Plan: plan.MustLeftDeep(0, 1, 2, 3), WindowSize: 100, Strategy: MovingState{},
	})
	for _, k := range []tuple.Value{1, 2} {
		for s := tuple.StreamID(0); s < 4; s++ {
			e.Feed(ev(s, k))
		}
	}
	bushy := plan.MustNew(plan.Join(
		plan.Join(plan.Leaf(0), plan.Leaf(1)),
		plan.Join(plan.Leaf(2), plan.Leaf(3)),
	))
	if err := e.Migrate(bushy); err != nil {
		t.Fatal(err)
	}
	n23 := e.NodeBySet(tuple.NewStreamSet(2, 3))
	if !n23.St.Complete() || n23.St.Size() != 2 {
		t.Fatalf("{2,3}: complete=%v size=%d", n23.St.Complete(), n23.St.Size())
	}
}

func TestMovingStateNLJoin(t *testing.T) {
	band := func(a, b *tuple.Tuple) bool {
		d := a.Key - b.Key
		return d >= -1 && d <= 1
	}
	e := engine.MustNew(engine.Config{
		Plan: plan.MustLeftDeep(0, 1, 2), Kind: engine.NLJoin, Theta: band,
		Strategy: MovingState{},
	})
	e.Feed(ev(1, 10))
	e.Feed(ev(2, 10))
	if err := e.Migrate(plan.MustLeftDeep(1, 2, 0)); err != nil {
		t.Fatal(err)
	}
	n12 := e.NodeBySet(tuple.NewStreamSet(1, 2))
	if !n12.Ls.Complete() || n12.Ls.Size() != 1 {
		t.Fatalf("NL {1,2}: complete=%v size=%d", n12.Ls.Complete(), n12.Ls.Size())
	}
}

func TestParallelTrackConfigValidation(t *testing.T) {
	if _, err := NewParallelTrack(PTConfig{}); err == nil {
		t.Error("nil plan accepted")
	}
	if _, err := NewParallelTrack(PTConfig{Plan: plan.MustLeftDeep(0, 1), CheckEvery: -1}); err == nil {
		t.Error("negative check period accepted")
	}
}

func TestParallelTrackRunsBothPlans(t *testing.T) {
	pt := MustNewParallelTrack(PTConfig{Plan: plan.MustLeftDeep(0, 1, 2), WindowSize: 4, CheckEvery: 2})
	pt.Feed(ev(0, 1))
	if pt.Tracks() != 1 {
		t.Fatalf("tracks = %d", pt.Tracks())
	}
	if err := pt.Migrate(plan.MustLeftDeep(0, 2, 1)); err != nil {
		t.Fatal(err)
	}
	if pt.Tracks() != 2 || !pt.MigrationActive() {
		t.Fatalf("tracks after migrate = %d", pt.Tracks())
	}
	// Every fed tuple is processed by both tracks: migration work.
	pt.Feed(ev(1, 1))
	if pt.Metrics().MigrationWork == 0 {
		t.Fatal("double processing not recorded")
	}
}

func TestParallelTrackDiscardsOldPlan(t *testing.T) {
	pt := MustNewParallelTrack(PTConfig{Plan: plan.MustLeftDeep(0, 1, 2), WindowSize: 3, CheckEvery: 2})
	src := workload.MustNewSource(workload.Config{Streams: 3, Domain: 4, Seed: 1})
	for i := 0; i < 30; i++ {
		pt.Feed(src.Next())
	}
	if err := pt.Migrate(plan.MustLeftDeep(2, 1, 0)); err != nil {
		t.Fatal(err)
	}
	// After 3 windows' worth of tuples, every pre-transition tuple has
	// left every window; the discard check must fire.
	for i := 0; i < 60 && pt.MigrationActive(); i++ {
		pt.Feed(src.Next())
	}
	if pt.MigrationActive() {
		t.Fatal("old plan never discarded")
	}
	if pt.Tracks() != 1 {
		t.Fatalf("tracks = %d", pt.Tracks())
	}
}

func TestParallelTrackDuplicateElimination(t *testing.T) {
	var outs []string
	pt := MustNewParallelTrack(PTConfig{
		Plan: plan.MustLeftDeep(0, 1), WindowSize: 10, CheckEvery: 100,
		Output: func(d engine.Delta) { outs = append(outs, d.Tuple.Fingerprint()) },
	})
	pt.Feed(ev(0, 5))
	if err := pt.Migrate(plan.MustLeftDeep(1, 0)); err != nil {
		t.Fatal(err)
	}
	// Post-transition pair: both tracks produce it; exactly one copy
	// must be emitted.
	pt.Feed(ev(0, 7))
	pt.Feed(ev(1, 7))
	// Mixed pair (old 0#1 with new 1#2): only the old track can see it.
	pt.Feed(ev(1, 5))
	counts := map[string]int{}
	for _, f := range outs {
		counts[f]++
	}
	for f, c := range counts {
		if c != 1 {
			t.Errorf("output %s emitted %d times", f, c)
		}
	}
	if len(counts) != 2 {
		t.Fatalf("outputs = %v, want the all-new pair and the mixed pair", counts)
	}
	if pt.Metrics().DupDropped == 0 {
		t.Fatal("no duplicates recorded as dropped")
	}
}

func TestParallelTrackOverlappedTransitionsStackTracks(t *testing.T) {
	pt := MustNewParallelTrack(PTConfig{Plan: plan.MustLeftDeep(0, 1, 2), WindowSize: 100, CheckEvery: 1000})
	pt.Feed(ev(0, 1))
	if err := pt.Migrate(plan.MustLeftDeep(0, 2, 1)); err != nil {
		t.Fatal(err)
	}
	pt.Feed(ev(1, 1))
	if err := pt.Migrate(plan.MustLeftDeep(2, 1, 0)); err != nil {
		t.Fatal(err)
	}
	if pt.Tracks() != 3 {
		t.Fatalf("tracks = %d, want 3 (overlapped transitions)", pt.Tracks())
	}
}

func TestParallelTrackRejectsDifferentStreams(t *testing.T) {
	pt := MustNewParallelTrack(PTConfig{Plan: plan.MustLeftDeep(0, 1)})
	if err := pt.Migrate(plan.MustLeftDeep(0, 2)); err == nil {
		t.Fatal("accepted different stream set")
	}
}

func TestNames(t *testing.T) {
	if (MovingState{}).Name() != "moving-state" {
		t.Error("MovingState name")
	}
	pt := MustNewParallelTrack(PTConfig{Plan: plan.MustLeftDeep(0, 1)})
	if pt.Name() != "parallel-track" {
		t.Error("ParallelTrack name")
	}
}
