package migrate

import (
	"fmt"
	"time"

	"jisc/internal/engine"
	"jisc/internal/metrics"
	"jisc/internal/plan"
	"jisc/internal/tuple"
	"jisc/internal/workload"
)

// track is one plan instance inside a ParallelTrack executor.
type track struct {
	eng *engine.Engine
	// born is the global input count at which this track started
	// (zero for the initial plan). A track's states only ever contain
	// tuples that arrived after born.
	born uint64
	// supersededAt is the born tick of the next-newer track, or 0
	// while this track is the newest. An entry is "old" for the
	// discard check when its oldest constituent arrived at or before
	// supersededAt.
	supersededAt uint64
}

// ParallelTrack implements the Parallel Track Strategy (§3.3): at a
// transition the old plan keeps running with its states while the new
// plan starts with empty states; every subsequent input tuple is
// processed by both. The old plan is discarded once a periodic scan
// finds no pre-transition entries left in its states (window turnover
// guarantees this). Duplicate elimination happens at the root: a
// result whose constituents all arrived after a newer track was born
// is produced by that newer track too, so only the newest capable
// track emits it.
//
// Overlapped transitions stack additional tracks, degrading throughput
// exactly as §3.3 describes.
type ParallelTrack struct {
	tracks []*track // oldest first; the last one is the newest plan

	windowSize    int
	windowSizes   map[tuple.StreamID]int
	deterministic bool
	streams       tuple.StreamSet
	out           engine.Output
	met           metrics.Collector
	now           func() time.Time

	// checkEvery is the input-count period of the old-plan discard
	// scan (§3.3 calls out its cost).
	checkEvery uint64
	inputs     uint64
	seqs       map[tuple.StreamID]uint64
	// seen holds the provenance fingerprints emitted during the
	// current migration stage, for root duplicate elimination.
	seen map[string]struct{}
}

// PTConfig parameterizes a ParallelTrack executor.
type PTConfig struct {
	// Plan is the initial query plan.
	Plan *plan.Plan
	// WindowSize is the per-stream window size (default 10_000).
	WindowSize int
	// WindowSizes optionally overrides WindowSize per stream, mirroring
	// engine.Config.WindowSizes; every track's engine gets the same map.
	WindowSizes map[tuple.StreamID]int
	// Deterministic is forwarded to each track's engine (sorted key
	// iteration during fills), so simulation runs replay bit-for-bit.
	Deterministic bool
	// Output receives deduplicated root results; may be nil.
	Output engine.Output
	// CheckEvery is the discard-scan period in input tuples
	// (default 1000).
	CheckEvery int
	// Now supplies time for latency metrics (default time.Now).
	Now func() time.Time
}

// NewParallelTrack builds the executor on its initial plan.
func NewParallelTrack(cfg PTConfig) (*ParallelTrack, error) {
	if cfg.Plan == nil {
		return nil, fmt.Errorf("paralleltrack: nil plan")
	}
	if cfg.CheckEvery == 0 {
		cfg.CheckEvery = 1000
	}
	if cfg.CheckEvery < 0 {
		return nil, fmt.Errorf("paralleltrack: negative check period")
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	pt := &ParallelTrack{
		windowSize:    cfg.WindowSize,
		windowSizes:   cfg.WindowSizes,
		deterministic: cfg.Deterministic,
		streams:       cfg.Plan.Streams,
		out:           cfg.Output,
		now:           cfg.Now,
		checkEvery:    uint64(cfg.CheckEvery),
		seqs:          make(map[tuple.StreamID]uint64),
		seen:          make(map[string]struct{}),
	}
	tr, err := pt.newTrack(cfg.Plan, 0)
	if err != nil {
		return nil, err
	}
	pt.tracks = []*track{tr}
	return pt, nil
}

// MustNewParallelTrack is NewParallelTrack but panics on error.
func MustNewParallelTrack(cfg PTConfig) *ParallelTrack {
	pt, err := NewParallelTrack(cfg)
	if err != nil {
		panic(err)
	}
	return pt
}

func (pt *ParallelTrack) newTrack(p *plan.Plan, born uint64) (*track, error) {
	tr := &track{born: born}
	eng, err := engine.New(engine.Config{
		Plan:          p,
		WindowSize:    pt.windowSize,
		WindowSizes:   pt.windowSizes,
		Strategy:      engine.Static{},
		Deterministic: pt.deterministic,
		Output: func(d engine.Delta) {
			pt.emit(tr, d)
		},
		Now: pt.now,
	})
	if err != nil {
		return nil, err
	}
	tr.eng = eng
	return tr, nil
}

// Name implements engine.Executor.
func (pt *ParallelTrack) Name() string { return "parallel-track" }

// Tracks returns the number of concurrently running plans (1 in
// steady state).
func (pt *ParallelTrack) Tracks() int { return len(pt.tracks) }

// Metrics implements engine.Executor.
func (pt *ParallelTrack) Metrics() metrics.Snapshot {
	s := pt.met.Snapshot()
	// Fold in per-track operator work so probe/insert counts reflect
	// the double processing.
	for _, tr := range pt.tracks {
		es := tr.eng.Metrics()
		s.Probes += es.Probes
		s.Inserts += es.Inserts
		s.Evictions += es.Evictions
	}
	return s
}

// emit performs the root duplicate elimination of §3.3: while several
// tracks run, every result is fingerprinted by its provenance and a
// result already emitted by another track is dropped. The hash
// maintenance is a real per-output cost of the strategy — one of the
// drawbacks the paper calls out. A result's provenance is unique, and
// each track produces a given provenance at most once, so the
// fingerprint check is exact.
func (pt *ParallelTrack) emit(tr *track, d engine.Delta) {
	if len(pt.tracks) > 1 {
		fp := d.Tuple.Fingerprint()
		if _, dup := pt.seen[fp]; dup {
			pt.met.DupDropped.Add(1)
			return
		}
		pt.seen[fp] = struct{}{}
	}
	pt.met.MarkOutput(pt.now())
	if pt.out != nil {
		pt.out(d)
	}
}

// Feed implements engine.Executor: every track processes the tuple,
// with identical tuple identity across tracks (FeedStamped).
// Processing beyond the newest track is migration work.
func (pt *ParallelTrack) Feed(ev workload.Event) {
	pt.inputs++
	pt.met.Input.Add(1)
	seq := pt.seqs[ev.Stream] + 1
	pt.seqs[ev.Stream] = seq
	for i, tr := range pt.tracks {
		tr.eng.FeedStamped(ev, seq, pt.inputs)
		if i < len(pt.tracks)-1 {
			pt.met.MigrationWork.Add(1)
		}
	}
	if len(pt.tracks) > 1 && pt.inputs%pt.checkEvery == 0 {
		pt.discardCheck()
	}
}

// Migrate implements engine.Executor: start a new empty-state track on
// the new plan; the existing tracks keep running until discarded.
func (pt *ParallelTrack) Migrate(p *plan.Plan) error {
	if p.Streams != pt.streams {
		return fmt.Errorf("paralleltrack: new plan covers %v, old covers %v", p.Streams, pt.streams)
	}
	pt.met.MarkTransition(pt.now())
	tr, err := pt.newTrack(p, pt.inputs)
	if err != nil {
		return err
	}
	for _, old := range pt.tracks {
		if old.supersededAt == 0 {
			old.supersededAt = pt.inputs
		}
	}
	pt.tracks = append(pt.tracks, tr)
	return nil
}

// discardCheck is the periodic scan of §3.3: every operator of every
// superseded track checks whether pre-supersession entries remain in
// its state; a track with none left is discarded.
func (pt *ParallelTrack) discardCheck() {
	kept := pt.tracks[:0]
	for i, tr := range pt.tracks {
		if i == len(pt.tracks)-1 {
			kept = append(kept, tr)
			break
		}
		old := 0
		for _, n := range tr.eng.Nodes() {
			if n.St == nil {
				continue
			}
			old += n.St.CountOld(tr.supersededAt, func(t *tuple.Tuple) uint64 { return t.Oldest })
			pt.met.MigrationWork.Add(uint64(n.St.Size())) // scan cost
		}
		if old > 0 {
			kept = append(kept, tr)
		}
	}
	pt.tracks = kept
	if len(pt.tracks) == 1 {
		// Migration stage over: a single plan cannot produce
		// duplicates, so release the fingerprint table.
		pt.seen = make(map[string]struct{})
	}
}

// MigrationActive reports whether superseded tracks are still running.
func (pt *ParallelTrack) MigrationActive() bool { return len(pt.tracks) > 1 }

// StateSizes returns the total stored tuples of each running track —
// the §5 memory picture: during a migration stage the strategy holds
// every track's states at once.
func (pt *ParallelTrack) StateSizes() []int {
	sizes := make([]int, len(pt.tracks))
	for i, tr := range pt.tracks {
		sizes[i] = tr.eng.TotalStateSize()
	}
	return sizes
}

// ParallelTrack satisfies the shared executor contract.
var _ engine.Executor = (*ParallelTrack)(nil)
