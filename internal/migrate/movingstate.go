// Package migrate implements the two baseline plan-migration
// strategies the paper compares JISC against: the Moving State
// Strategy (§3.2 — halt the query and compute every missing state
// eagerly at transition time) and the Parallel Track Strategy (§3.3 —
// run the old and new plans simultaneously until the old plan's
// states contain only post-transition entries, with duplicate
// elimination at the root).
package migrate

import (
	"jisc/internal/engine"
	"jisc/internal/tuple"
)

// MovingState is the eager migration strategy of §3.2: when a
// transition is triggered, execution halts and every state of the new
// plan that did not exist in the old plan is recomputed bottom-up from
// its children before processing resumes. Output latency during the
// halt is the strategy's weakness (Figure 10); total work is close to
// JISC's (§5.1.1).
type MovingState struct{}

// Name implements engine.Strategy.
func (MovingState) Name() string { return "moving-state" }

// OnTransition implements engine.Strategy: fill every incomplete state
// bottom-up and mark it complete. The engine is single-threaded, so
// the time this call takes is exactly the halt the paper describes —
// the latency metrics window it via MarkTransition/MarkOutput.
func (MovingState) OnTransition(e *engine.Engine) error {
	for _, n := range e.Nodes() {
		if n.IsLeaf() {
			continue
		}
		switch {
		case n.St != nil && !n.St.Complete():
			if n.Kind == engine.SetDiff {
				fillDiff(e, n)
			} else {
				fillJoin(e, n)
			}
			n.St.MarkComplete()
			e.ClearBorn(n.Set)
		case n.Ls != nil && !n.Ls.Complete():
			fillNL(e, n)
			n.Ls.MarkComplete()
			e.ClearBorn(n.Set)
		}
	}
	return nil
}

// fillJoin recomputes a hash-join state in full as the cross join of
// its children's states per key. Children precede parents in
// e.Nodes(), so child states are already complete here.
func fillJoin(e *engine.Engine, n *engine.Node) {
	met := e.Collector()
	bld := e.Builder()
	// Iterate the side with fewer distinct keys; Join output is
	// orientation-independent (provenance is canonicalized).
	small, big := n.Left.St, n.Right.St
	if big.DistinctKeys() < small.DistinctKeys() {
		small, big = big, small
	}
	for _, key := range e.IterKeys(small) {
		for _, l := range small.Probe(key) {
			for _, r := range big.Probe(key) {
				n.St.Insert(bld.Join(l, r))
				met.MigrationWork.Add(1)
			}
		}
	}
}

// fillNL recomputes a nested-loops state in full. In hybrid plans the
// children may be hash-join nodes; EachEntry abstracts the state type.
func fillNL(e *engine.Engine, n *engine.Node) {
	met := e.Collector()
	bld := e.Builder()
	pred := e.Theta()
	n.Left.EachEntry(func(l *tuple.Tuple) bool {
		n.Right.EachEntry(func(r *tuple.Tuple) bool {
			met.MigrationWork.Add(1)
			if pred(l, r) {
				n.Ls.Insert(bld.JoinTheta(l, r))
			}
			return true
		})
		return true
	})
}

// fillDiff recomputes a set-difference state in full: the left child's
// passing tuples whose keys have no live inner match.
func fillDiff(e *engine.Engine, n *engine.Node) {
	met := e.Collector()
	for _, key := range e.IterKeys(n.Left.St) {
		met.MigrationWork.Add(1)
		if n.Right.St.ContainsKey(key) {
			continue
		}
		for _, t := range n.Left.St.Probe(key) {
			n.St.Insert(t)
			met.MigrationWork.Add(1)
		}
	}
}

// BeforeProbe implements engine.Strategy (no-op: every state is
// complete after OnTransition).
func (MovingState) BeforeProbe(*engine.Engine, *engine.Node, *engine.Node, *tuple.Tuple, bool) {}

// EvictContinue implements engine.Strategy (standard rule).
func (MovingState) EvictContinue(*engine.Engine, *engine.Node, tuple.Value) bool { return false }
