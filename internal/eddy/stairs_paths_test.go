package eddy

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"jisc/internal/plan"
	"jisc/internal/testseed"
	"jisc/internal/tuple"
	"jisc/internal/workload"
)

// These tests pin the eddy routing and STAIRS completion paths as
// known-good baselines for the simulation shrinker: when the sim
// harness reduces a divergence, these are the single-path behaviors it
// assumes correct.

func TestMustConstructorsPanicOnBadConfig(t *testing.T) {
	for name, f := range map[string]func(){
		"cacq":   func() { MustNewCACQ(CACQConfig{}) },
		"stairs": func() { MustNewStairs(StairsConfig{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MustNew %s did not panic on nil plan", name)
				}
			}()
			f()
		}()
	}
}

func TestCACQMigrateRejectsBadPlans(t *testing.T) {
	c := MustNewCACQ(CACQConfig{Plan: plan.MustLeftDeep(0, 1, 2)})
	bushy := plan.MustNew(plan.Join(plan.Join(plan.Leaf(0), plan.Leaf(1)), plan.Join(plan.Leaf(2), plan.Leaf(3))))
	if err := c.Migrate(bushy); err == nil {
		t.Error("bushy routing order accepted")
	}
	if err := c.Migrate(plan.MustLeftDeep(0, 1, 3)); err == nil {
		t.Error("different stream set accepted")
	}
}

func TestStairsMigrateRejectsBadPlans(t *testing.T) {
	s := MustNewStairs(StairsConfig{Plan: plan.MustLeftDeep(0, 1, 2)})
	if err := s.Migrate(plan.MustLeftDeep(0, 2, 3)); err == nil {
		t.Error("different stream set accepted")
	}
	bushy := plan.MustNew(plan.Join(plan.Join(plan.Leaf(0), plan.Leaf(1)), plan.Join(plan.Leaf(2), plan.Leaf(3))))
	s4 := MustNewStairs(StairsConfig{Plan: plan.MustLeftDeep(0, 1, 2, 3)})
	if err := s4.Migrate(bushy); err == nil {
		t.Error("bushy routing order accepted")
	}
}

// Lazy completion must walk down through multiple stacked incomplete
// prefix states to the base stem: two back-to-back routing changes
// leave every prefix state of the final order incomplete, and the
// next probing tuple has to rebuild the whole lineage for its key.
func TestStairsLazyCompletionWalksToBase(t *testing.T) {
	var outs []string
	s := MustNewStairs(StairsConfig{
		Plan: plan.MustLeftDeep(0, 1, 2, 3), Lazy: true,
		Output: func(tp *tuple.Tuple) { outs = append(outs, tp.Fingerprint()) },
	})
	for st := 0; st < 4; st++ {
		s.Feed(ev(tuple.StreamID(st), 5))
	}
	if len(outs) != 1 {
		t.Fatalf("priming outputs = %v", outs)
	}
	// Two immediate order changes: every prefix of the final order is
	// fresh and incomplete.
	if err := s.Migrate(plan.MustLeftDeep(3, 2, 1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Migrate(plan.MustLeftDeep(1, 3, 0, 2)); err != nil {
		t.Fatal(err)
	}
	before := s.Metrics()
	// A stream-2 arrival probes prefix {1,3,0}, which is incomplete —
	// the walk descends through incomplete {1,3} to the base stem of
	// stream 1 and completes both levels for key 5.
	s.Feed(ev(2, 5))
	after := s.Metrics()
	if after.Completions < 2 {
		t.Fatalf("Completions rose by %d, want ≥ 2 (stacked lazy completion)", after.Completions-before.Completions)
	}
	if len(outs) != 2 {
		t.Fatalf("outputs after lazy completion = %v", outs)
	}
	// Same key again: the states are attempted now, no re-completion.
	mid := s.Metrics()
	s.Feed(ev(2, 5))
	if got := s.Metrics().Completions; got != mid.Completions {
		t.Fatalf("re-probing an attempted key re-ran completion (%d -> %d)", mid.Completions, got)
	}
}

// Differential baseline: lazy STAIRS must emit exactly the output
// multiset of eager STAIRS across randomized workloads with repeated
// (including back-to-back) routing changes.
func TestStairsLazyEagerDifferential(t *testing.T) {
	base := testseed.Seed(t, 1)
	orders := []*plan.Plan{
		plan.MustLeftDeep(0, 1, 2, 3),
		plan.MustLeftDeep(2, 0, 3, 1),
		plan.MustLeftDeep(3, 1, 0, 2),
		plan.MustLeftDeep(1, 2, 3, 0),
	}
	for c := 0; c < 8; c++ {
		seed := base + int64(c)
		outs := map[bool]map[string]int{}
		for _, lazy := range []bool{false, true} {
			dst := map[string]int{}
			outs[lazy] = dst
			s := MustNewStairs(StairsConfig{
				Plan: orders[0], WindowSize: 6, Lazy: lazy,
				Output: func(tp *tuple.Tuple) { dst[tp.Fingerprint()]++ },
			})
			rng := rand.New(rand.NewSource(seed))
			src := workload.MustNewSource(workload.Config{Streams: 4, Domain: 4, Seed: seed})
			for i := 0; i < 250; i++ {
				if i > 0 && i%50 == 0 {
					if err := s.Migrate(orders[rng.Intn(len(orders))]); err != nil {
						t.Fatal(err)
					}
					if rng.Intn(2) == 0 { // back-to-back change
						if err := s.Migrate(orders[rng.Intn(len(orders))]); err != nil {
							t.Fatal(err)
						}
					}
				}
				s.Feed(src.Next())
			}
		}
		if d := diffCounts(outs[false], outs[true]); d != "" {
			t.Fatalf("seed %d: lazy STAIRS diverges from eager:\n%s", seed, d)
		}
	}
}

// Lottery routing must keep CACQ's output identical to fixed-order
// routing across migrations — routing policy affects cost, never
// results.
func TestCACQLotteryDifferentialUnderMigration(t *testing.T) {
	base := testseed.Seed(t, 2)
	for c := 0; c < 6; c++ {
		seed := base + int64(c)
		outs := map[Routing]map[string]int{}
		for _, r := range []Routing{FixedOrder, Lottery} {
			dst := map[string]int{}
			outs[r] = dst
			cq := MustNewCACQ(CACQConfig{
				Plan: plan.MustLeftDeep(0, 1, 2, 3), WindowSize: 5, Routing: r,
				Output: func(tp *tuple.Tuple) { dst[tp.Fingerprint()]++ },
			})
			src := workload.MustNewSource(workload.Config{Streams: 4, Domain: 3, Seed: seed})
			for i := 0; i < 300; i++ {
				if i == 150 {
					if err := cq.Migrate(plan.MustLeftDeep(3, 1, 2, 0)); err != nil {
						t.Fatal(err)
					}
				}
				cq.Feed(src.Next())
			}
		}
		if d := diffCounts(outs[FixedOrder], outs[Lottery]); d != "" {
			t.Fatalf("seed %d: lottery routing changed CACQ's results:\n%s", seed, d)
		}
	}
}

// diffCounts renders the difference between two output multisets;
// empty when equal.
func diffCounts(want, got map[string]int) string {
	keys := map[string]bool{}
	for k := range want {
		keys[k] = true
	}
	for k := range got {
		keys[k] = true
	}
	var lines []string
	for k := range keys {
		if want[k] != got[k] {
			lines = append(lines, fmt.Sprintf("  %s: want %d, got %d", k, want[k], got[k]))
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
