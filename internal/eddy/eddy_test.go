package eddy

import (
	"testing"

	"jisc/internal/plan"
	"jisc/internal/tuple"
	"jisc/internal/workload"
)

func ev(s tuple.StreamID, k tuple.Value) workload.Event {
	return workload.Event{Stream: s, Key: k}
}

func TestCACQValidation(t *testing.T) {
	if _, err := NewCACQ(CACQConfig{}); err == nil {
		t.Error("nil plan accepted")
	}
	bushy := plan.MustNew(plan.Join(plan.Join(plan.Leaf(0), plan.Leaf(1)), plan.Join(plan.Leaf(2), plan.Leaf(3))))
	if _, err := NewCACQ(CACQConfig{Plan: bushy}); err == nil {
		t.Error("bushy plan accepted")
	}
}

func TestCACQJoins(t *testing.T) {
	var outs []string
	c := MustNewCACQ(CACQConfig{
		Plan:   plan.MustLeftDeep(0, 1, 2),
		Output: func(tp *tuple.Tuple) { outs = append(outs, tp.Fingerprint()) },
	})
	c.Feed(ev(0, 5))
	c.Feed(ev(1, 5))
	c.Feed(ev(2, 5))
	if len(outs) != 1 || outs[0] != "0#1|1#1|2#1" {
		t.Fatalf("outs = %v", outs)
	}
	// Second stream-0 tuple joins the stored 1 and 2 tuples.
	c.Feed(ev(0, 5))
	if len(outs) != 2 {
		t.Fatalf("outs = %v", outs)
	}
}

func TestCACQNoIntermediateStateAndFreeMigration(t *testing.T) {
	c := MustNewCACQ(CACQConfig{Plan: plan.MustLeftDeep(0, 1, 2, 3)})
	src := workload.MustNewSource(workload.Config{Streams: 4, Domain: 5, Seed: 2})
	for i := 0; i < 100; i++ {
		c.Feed(src.Next())
	}
	before := c.Metrics()
	if err := c.Migrate(plan.MustLeftDeep(3, 2, 1, 0)); err != nil {
		t.Fatal(err)
	}
	after := c.Metrics()
	if after.Probes != before.Probes || after.Inserts != before.Inserts {
		t.Fatal("CACQ migration performed state work")
	}
	want := []tuple.StreamID{3, 2, 1, 0}
	got := c.Order()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v", got)
		}
	}
}

func TestCACQEddyVisitsCounted(t *testing.T) {
	c := MustNewCACQ(CACQConfig{Plan: plan.MustLeftDeep(0, 1, 2)})
	c.Feed(ev(0, 5))
	c.Feed(ev(1, 5))
	c.Feed(ev(2, 5))
	if c.Metrics().EddyVisits == 0 {
		t.Fatal("no eddy visits recorded")
	}
}

func TestCACQWindowEviction(t *testing.T) {
	var outs []string
	c := MustNewCACQ(CACQConfig{
		Plan: plan.MustLeftDeep(0, 1), WindowSize: 2,
		Output: func(tp *tuple.Tuple) { outs = append(outs, tp.Fingerprint()) },
	})
	c.Feed(ev(0, 1))
	c.Feed(ev(0, 2))
	c.Feed(ev(0, 3)) // evicts key 1
	c.Feed(ev(1, 1))
	if len(outs) != 0 {
		t.Fatalf("expired tuple joined: %v", outs)
	}
}

func TestCACQRejectsDifferentStreams(t *testing.T) {
	c := MustNewCACQ(CACQConfig{Plan: plan.MustLeftDeep(0, 1)})
	if err := c.Migrate(plan.MustLeftDeep(0, 2)); err == nil {
		t.Fatal("accepted different stream set")
	}
}

func TestStairsValidation(t *testing.T) {
	if _, err := NewStairs(StairsConfig{}); err == nil {
		t.Error("nil plan accepted")
	}
}

func TestStairsJoinsAndState(t *testing.T) {
	var outs []string
	s := MustNewStairs(StairsConfig{
		Plan:   plan.MustLeftDeep(0, 1, 2),
		Output: func(tp *tuple.Tuple) { outs = append(outs, tp.Fingerprint()) },
	})
	s.Feed(ev(0, 5))
	s.Feed(ev(1, 5))
	s.Feed(ev(2, 5))
	if len(outs) != 1 || outs[0] != "0#1|1#1|2#1" {
		t.Fatalf("outs = %v", outs)
	}
	// Intermediate STAIR state exists (unlike CACQ).
	if st, ok := s.inter[tuple.NewStreamSet(0, 1)]; !ok || st.Size() != 1 {
		t.Fatal("intermediate state not materialized")
	}
}

func TestStairsEagerMigrationPromotesAll(t *testing.T) {
	s := MustNewStairs(StairsConfig{Plan: plan.MustLeftDeep(0, 1, 2)})
	s.Feed(ev(1, 5))
	s.Feed(ev(2, 5))
	if err := s.Migrate(plan.MustLeftDeep(1, 2, 0)); err != nil {
		t.Fatal(err)
	}
	st := s.inter[tuple.NewStreamSet(1, 2)]
	if !st.Complete() || st.Size() != 1 {
		t.Fatalf("eager promote: complete=%v size=%d", st.Complete(), st.Size())
	}
	if s.Metrics().MigrationWork == 0 {
		t.Fatal("no promote work recorded")
	}
}

func TestStairsLazyMigrationDefersPromotion(t *testing.T) {
	var outs []string
	s := MustNewStairs(StairsConfig{
		Plan: plan.MustLeftDeep(0, 1, 2), Lazy: true,
		Output: func(tp *tuple.Tuple) { outs = append(outs, tp.Fingerprint()) },
	})
	s.Feed(ev(1, 5))
	s.Feed(ev(2, 5))
	if err := s.Migrate(plan.MustLeftDeep(1, 2, 0)); err != nil {
		t.Fatal(err)
	}
	st := s.inter[tuple.NewStreamSet(1, 2)]
	if st.Complete() || st.Size() != 0 {
		t.Fatalf("lazy migrate did eager work: size=%d", st.Size())
	}
	// The probe by stream 0 promotes on demand and joins.
	s.Feed(ev(0, 5))
	if len(outs) != 1 {
		t.Fatalf("outs = %v", outs)
	}
	if s.Metrics().Completions == 0 {
		t.Fatal("no lazy promotion recorded")
	}
}

func TestStairsNames(t *testing.T) {
	if MustNewStairs(StairsConfig{Plan: plan.MustLeftDeep(0, 1)}).Name() != "stairs" {
		t.Error("eager name")
	}
	if MustNewStairs(StairsConfig{Plan: plan.MustLeftDeep(0, 1), Lazy: true}).Name() != "stairs-jisc" {
		t.Error("lazy name")
	}
	if MustNewCACQ(CACQConfig{Plan: plan.MustLeftDeep(0, 1)}).Name() != "cacq" {
		t.Error("cacq name")
	}
}

func BenchmarkCACQSteadyState(b *testing.B) {
	c := MustNewCACQ(CACQConfig{Plan: plan.MustLeftDeep(0, 1, 2, 3), WindowSize: 1000})
	src := workload.MustNewSource(workload.Config{Streams: 4, Domain: 10000, Seed: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Feed(src.Next())
	}
}

func TestCACQLotteryMatchesFixedOutput(t *testing.T) {
	run := func(routing Routing) map[string]int {
		outs := map[string]int{}
		c := MustNewCACQ(CACQConfig{
			Plan: plan.MustLeftDeep(0, 1, 2), WindowSize: 16, Routing: routing,
			Output: func(tp *tuple.Tuple) { outs[tp.Fingerprint()]++ },
		})
		src := workload.MustNewSource(workload.Config{Streams: 3, Domain: 6, Seed: 44})
		for i := 0; i < 600; i++ {
			c.Feed(src.Next())
		}
		return outs
	}
	fixed := run(FixedOrder)
	lot := run(Lottery)
	if len(fixed) != len(lot) {
		t.Fatalf("outputs differ: fixed %d vs lottery %d", len(fixed), len(lot))
	}
	for fp, n := range fixed {
		if lot[fp] != n {
			t.Fatalf("%s: fixed %d vs lottery %d", fp, n, lot[fp])
		}
	}
}

func TestCACQLotteryPrefersSelectiveStem(t *testing.T) {
	// Stream 2 draws from a huge domain (nearly never matches):
	// routing it first should cost fewer eddy visits than the adverse
	// fixed order that visits it last.
	mkSrc := func() *workload.Source {
		return workload.MustNewSource(workload.Config{
			Streams: 4, Domain: 8, Seed: 9,
			Domains: []int64{8, 8, 100000, 8},
		})
	}
	adverse := MustNewCACQ(CACQConfig{
		Plan: plan.MustLeftDeep(0, 1, 3, 2), WindowSize: 64, // selective stream last
	})
	adaptive := MustNewCACQ(CACQConfig{
		Plan: plan.MustLeftDeep(0, 1, 3, 2), WindowSize: 64, Routing: Lottery,
	})
	src1, src2 := mkSrc(), mkSrc()
	for i := 0; i < 5000; i++ {
		adverse.Feed(src1.Next())
		adaptive.Feed(src2.Next())
	}
	av := adverse.Metrics().EddyVisits
	lv := adaptive.Metrics().EddyVisits
	if lv >= av {
		t.Fatalf("lottery routing not cheaper: adaptive %d visits vs fixed-adverse %d", lv, av)
	}
}

func TestLotteryNextExhausted(t *testing.T) {
	l := newLottery([]tuple.StreamID{0, 1})
	if _, ok := l.next([]tuple.StreamID{0, 1}, tuple.NewStreamSet(0, 1)); ok {
		t.Fatal("next returned a stream with all done")
	}
}

func TestStairsWindowEviction(t *testing.T) {
	var outs []string
	s := MustNewStairs(StairsConfig{
		Plan: plan.MustLeftDeep(0, 1), WindowSize: 2,
		Output: func(tp *tuple.Tuple) { outs = append(outs, tp.Fingerprint()) },
	})
	s.Feed(ev(0, 1))
	s.Feed(ev(0, 2))
	s.Feed(ev(0, 3)) // evicts key 1 from stem and prefixes
	s.Feed(ev(1, 1)) // expired key: no join
	if len(outs) != 0 {
		t.Fatalf("expired tuple joined: %v", outs)
	}
	s.Feed(ev(1, 3))
	if len(outs) != 1 {
		t.Fatalf("live join missed: %v", outs)
	}
	if s.Metrics().Evictions == 0 {
		t.Fatal("evictions not counted")
	}
}

func TestStairsLazyEvictionThroughIncompleteStates(t *testing.T) {
	s := MustNewStairs(StairsConfig{Plan: plan.MustLeftDeep(0, 1, 2), WindowSize: 2, Lazy: true})
	s.Feed(ev(0, 5))
	s.Feed(ev(1, 5))
	if err := s.Migrate(plan.MustLeftDeep(1, 2, 0)); err != nil {
		t.Fatal(err)
	}
	// Slide stream 1's window so key 5 expires while {1,2} is
	// incomplete: the removal must pass through without stopping.
	s.Feed(ev(1, 8))
	s.Feed(ev(1, 9))
	// key 5's entries must never be completed into {1,2} afterwards.
	s.Feed(ev(0, 5))
	st := s.inter[tuple.NewStreamSet(1, 2)]
	if st.ContainsKey(5) {
		t.Fatal("expired key materialized during lazy completion")
	}
}
