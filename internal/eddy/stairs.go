package eddy

import (
	"fmt"
	"time"

	"jisc/internal/metrics"
	"jisc/internal/plan"
	"jisc/internal/state"
	"jisc/internal/tuple"
	"jisc/internal/window"
	"jisc/internal/workload"
)

// Stairs executes a multi-way equi-join in an eddy framework with
// STAIR operators (§3.2): unlike CACQ's SteMs, STAIRs materialize
// intermediate join state, organized here along the routing order as
// one state per routing prefix (the lineage the eddy's routing policy
// induces). Two migration modes exist:
//
//   - eager (§3.2): a routing change triggers Promote/Demote on all
//     state entries at once — the Moving State Strategy inside an
//     eddy. The query halts for the duration.
//   - lazy (§4.6, JISC-on-STAIRs): demotions discard dead prefix
//     states immediately, but promotions run on demand, one join
//     attribute value at a time, when a probe first needs the missing
//     entries.
type Stairs struct {
	order   []tuple.StreamID
	streams tuple.StreamSet
	lazy    bool

	stems   map[tuple.StreamID]*state.Table
	windows map[tuple.StreamID]*window.Window
	// inter[set] is the STAIR state over a routing prefix.
	inter map[tuple.StreamSet]*state.Table
	// born records the tick an incomplete prefix state was created.
	born map[tuple.StreamSet]uint64

	seqs map[tuple.StreamID]uint64
	tick uint64

	out func(*tuple.Tuple)
	met metrics.Collector
	now func() time.Time
}

// StairsConfig parameterizes a Stairs executor.
type StairsConfig struct {
	// Plan supplies the streams and the initial routing order (the
	// bottom-up order of a left-deep plan).
	Plan *plan.Plan
	// WindowSize is the per-stream window size (default 10_000).
	WindowSize int
	// Lazy selects JISC-on-STAIRs (§4.6) instead of eager
	// Promote/Demote.
	Lazy bool
	// Output receives result tuples; may be nil.
	Output func(*tuple.Tuple)
	// Now supplies time for latency metrics (default time.Now).
	Now func() time.Time
}

// NewStairs builds the executor.
func NewStairs(cfg StairsConfig) (*Stairs, error) {
	if cfg.Plan == nil {
		return nil, fmt.Errorf("stairs: nil plan")
	}
	order, err := cfg.Plan.Order()
	if err != nil {
		return nil, fmt.Errorf("stairs: routing requires a left-deep plan: %w", err)
	}
	if cfg.WindowSize == 0 {
		cfg.WindowSize = 10000
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	s := &Stairs{
		order:   order,
		streams: cfg.Plan.Streams,
		lazy:    cfg.Lazy,
		stems:   make(map[tuple.StreamID]*state.Table),
		windows: make(map[tuple.StreamID]*window.Window),
		inter:   make(map[tuple.StreamSet]*state.Table),
		born:    make(map[tuple.StreamSet]uint64),
		seqs:    make(map[tuple.StreamID]uint64),
		out:     cfg.Output,
		now:     cfg.Now,
	}
	for _, id := range order {
		s.stems[id] = state.NewTable(tuple.NewStreamSet(id))
		s.windows[id] = window.New(id, cfg.WindowSize)
	}
	for _, set := range s.prefixSets() {
		s.inter[set] = state.NewTable(set)
	}
	return s, nil
}

// MustNewStairs is NewStairs but panics on error.
func MustNewStairs(cfg StairsConfig) *Stairs {
	s, err := NewStairs(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// prefixSets returns the stream sets of the routing prefixes of
// length ≥ 2 under the current order, bottom-up.
func (s *Stairs) prefixSets() []tuple.StreamSet {
	sets := make([]tuple.StreamSet, 0, len(s.order)-1)
	set := tuple.NewStreamSet(s.order[0])
	for _, id := range s.order[1:] {
		set = set.Add(id)
		sets = append(sets, set)
	}
	return sets
}

// Name implements engine.Executor.
func (s *Stairs) Name() string {
	if s.lazy {
		return "stairs-jisc"
	}
	return "stairs"
}

// Metrics implements engine.Executor.
func (s *Stairs) Metrics() metrics.Snapshot { return s.met.Snapshot() }

// position returns the index of stream id in the routing order.
func (s *Stairs) position(id tuple.StreamID) int {
	for i, o := range s.order {
		if o == id {
			return i
		}
	}
	panic(fmt.Sprintf("stairs: stream %d not in routing order", id))
}

// Feed implements engine.Executor.
func (s *Stairs) Feed(ev workload.Event) {
	s.FeedStamped(ev, s.seqs[ev.Stream]+1, s.tick+1)
}

// FeedStamped processes ev with caller-assigned identity.
func (s *Stairs) FeedStamped(ev workload.Event, seq, tick uint64) {
	s.tick = tick
	s.seqs[ev.Stream] = seq
	s.met.Input.Add(1)

	ref := tuple.Ref{Stream: ev.Stream, Seq: seq}
	if exp, ok := s.windows[ev.Stream].Admit(ref, ev.Key); ok {
		s.evict(exp)
	}

	t := tuple.NewBase(ev.Stream, seq, ev.Key, tick)
	s.stems[ev.Stream].Insert(t)
	s.met.Inserts.Add(1)

	// Route along the prefix lineage: a tuple at position p first
	// probes the state below it (prefix p-1, possibly incomplete),
	// then climbs through the remaining stems.
	p := s.position(ev.Stream)
	prefixes := s.prefixSets()
	var cur []*tuple.Tuple
	s.met.EddyVisits.Add(1)
	switch p {
	case 0:
		cur = s.probe(s.stems[s.order[1]], t)
		p = 1
	default:
		var below *state.Table
		if p == 1 {
			below = s.stems[s.order[0]]
		} else {
			below = s.inter[prefixes[p-2]]
			s.completeLazy(below, prefixes, p-2, t.Key)
		}
		cur = s.probe(below, t)
	}
	for _, c := range cur {
		s.inter[prefixes[p-1]].Insert(c)
		s.met.Inserts.Add(1)
	}
	for k := p + 1; k < len(s.order); k++ {
		if len(cur) == 0 {
			return
		}
		s.met.EddyVisits.Add(uint64(len(cur)))
		var next []*tuple.Tuple
		stem := s.stems[s.order[k]]
		for _, u := range cur {
			next = append(next, s.probe(stem, u)...)
		}
		for _, c := range next {
			s.inter[prefixes[k-1]].Insert(c)
			s.met.Inserts.Add(1)
		}
		cur = next
	}
	for _, r := range cur {
		s.met.MarkOutput(s.now())
		if s.out != nil {
			s.out(r)
		}
	}
}

func (s *Stairs) probe(st *state.Table, t *tuple.Tuple) []*tuple.Tuple {
	s.met.Probes.Add(1)
	matches := st.Probe(t.Key)
	out := make([]*tuple.Tuple, 0, len(matches))
	for _, m := range matches {
		out = append(out, tuple.Join(t, m))
	}
	return out
}

// completeLazy performs the on-demand Promote of §4.6: materialize the
// entries for key in the prefix state at index idx (and everything
// below it) before it is probed.
func (s *Stairs) completeLazy(st *state.Table, prefixes []tuple.StreamSet, idx int, key tuple.Value) {
	if st.Complete() || st.Attempted(key) {
		return
	}
	// Walk down to the highest complete-or-attempted level.
	low := idx
	for low >= 0 {
		t := s.inter[prefixes[low]]
		if t.Complete() || t.Attempted(key) {
			break
		}
		low--
	}
	// Entries below the walk: either a completed prefix or the base
	// stem of order[0].
	var entries []*tuple.Tuple
	if low >= 0 {
		entries = s.inter[prefixes[low]].Probe(key)
	} else {
		entries = s.stems[s.order[0]].Probe(key)
	}
	for k := low + 1; k <= idx; k++ {
		target := s.inter[prefixes[k]]
		born := s.born[prefixes[k]]
		stem := s.stems[s.order[k+1]]
		s.met.Completions.Add(1)
		for _, l := range entries {
			if l.Arrival > born {
				continue
			}
			for _, r := range stem.Probe(key) {
				if r.Arrival > born {
					continue
				}
				target.Insert(tuple.Join(l, r))
				s.met.CompletedEntries.Add(1)
			}
		}
		if target.MarkAttempted(key) {
			target.MarkComplete()
			delete(s.born, prefixes[k])
		}
		// Climb with everything now present for this key at level k,
		// not only what this call inserted — post-born entries are
		// filtered again at the next level's own born tick.
		entries = target.Probe(key)
	}
}

// evict removes an expired base tuple from the stem and from every
// prefix state covering its stream, continuing past incomplete states
// whose entries for the key were never materialized (the §4.2 rule).
func (s *Stairs) evict(exp window.Entry) {
	s.stems[exp.Ref.Stream].RemoveRef(exp.Key, exp.Ref)
	s.met.Evictions.Add(1)
	for _, set := range s.prefixSets() {
		if !set.Has(exp.Ref.Stream) {
			continue
		}
		st := s.inter[set]
		removed := len(st.RemoveRef(exp.Key, exp.Ref))
		s.met.Evictions.Add(uint64(removed))
		if removed == 0 && !(s.lazy && !st.Complete() && !st.Attempted(exp.Key)) {
			return
		}
	}
}

// Migrate implements engine.Executor: adopt the new routing order.
// Prefix states whose stream set survives are kept (an incomplete one
// stays incomplete, §4.5); dead states are demoted (discarded). Eager
// mode then promotes every missing state at once; lazy mode defers
// promotion to completeLazy.
func (s *Stairs) Migrate(p *plan.Plan) error {
	if p.Streams != s.streams {
		return fmt.Errorf("stairs: new plan covers %v, old covers %v", p.Streams, s.streams)
	}
	order, err := p.Order()
	if err != nil {
		return fmt.Errorf("stairs: routing requires a left-deep plan: %w", err)
	}
	s.met.MarkTransition(s.now())
	s.order = order

	live := make(map[tuple.StreamSet]bool)
	for _, set := range s.prefixSets() {
		live[set] = true
		if _, ok := s.inter[set]; !ok {
			st := state.NewTable(set)
			st.MarkIncomplete()
			s.inter[set] = st
			s.born[set] = s.tick
		}
	}
	for set := range s.inter {
		if !live[set] {
			delete(s.inter, set) // Demote
			delete(s.born, set)
		}
	}
	if !s.lazy {
		s.promoteAll()
	}
	return nil
}

// promoteAll is the eager Promote of §3.2: recompute every incomplete
// prefix state bottom-up from the level below and the stems.
func (s *Stairs) promoteAll() {
	prefixes := s.prefixSets()
	for k, set := range prefixes {
		st := s.inter[set]
		if st.Complete() {
			continue
		}
		var below *state.Table
		if k == 0 {
			below = s.stems[s.order[0]]
		} else {
			below = s.inter[prefixes[k-1]]
		}
		stem := s.stems[s.order[k+1]]
		for _, key := range below.Keys() {
			for _, l := range below.Probe(key) {
				for _, r := range stem.Probe(key) {
					st.Insert(tuple.Join(l, r))
					s.met.MigrationWork.Add(1)
				}
			}
		}
		st.MarkComplete()
		delete(s.born, set)
	}
}

var _ interface {
	Name() string
	Feed(workload.Event)
	Migrate(*plan.Plan) error
	Metrics() metrics.Snapshot
} = (*Stairs)(nil)
