package eddy

import (
	"jisc/internal/tuple"
)

// Routing selects CACQ's tuple-routing policy.
type Routing int

const (
	// FixedOrder routes every tuple along the current plan-derived
	// order — the configuration the paper's experiments compare JISC
	// against, where an external optimizer changes the order at a
	// transition.
	FixedOrder Routing = iota
	// Lottery is the eddies' original adaptive policy: each SteM
	// earns tickets by consuming tuples quickly and returning few
	// matches (filtering early is good), and the eddy routes each
	// tuple to the eligible SteM holding the most tickets. The eddy
	// then adapts without any explicit plan transition — the
	// "per-tuple plan" flexibility §3.1 describes.
	Lottery
)

// lottery tracks per-SteM tickets as an exponentially decayed estimate
// of the SteM's drop rate (probes that returned nothing).
type lottery struct {
	drop map[tuple.StreamID]float64
}

func newLottery(order []tuple.StreamID) *lottery {
	l := &lottery{drop: make(map[tuple.StreamID]float64, len(order))}
	for _, id := range order {
		l.drop[id] = 0.5 // uninformed prior
	}
	return l
}

// observe folds one probe outcome into the SteM's ticket estimate.
func (l *lottery) observe(id tuple.StreamID, matches int) {
	const decay = 1.0 / 64
	hit := 0.0
	if matches == 0 {
		hit = 1.0
	}
	l.drop[id] = l.drop[id]*(1-decay) + hit*decay
}

// next picks the eligible SteM with the highest drop rate: routing to
// the best filter first minimizes the expected number of intermediate
// tuples re-entering the eddy.
func (l *lottery) next(order []tuple.StreamID, done tuple.StreamSet) (tuple.StreamID, bool) {
	best := tuple.StreamID(0)
	bestDrop := -1.0
	found := false
	for _, id := range order {
		if done.Has(id) {
			continue
		}
		if d := l.drop[id]; d > bestDrop {
			best, bestDrop, found = id, d, true
		}
	}
	return best, found
}
