// Package eddy implements the eddy-based execution framework the
// paper discusses as related work and as a JISC target: CACQ with
// stateless SteMs (§3.1) and STAIRs with intermediate state and
// Promote/Demote (§3.2, §4.6), including the lazy JISC-on-STAIRs
// variant. An eddy routes every tuple through the remaining operators
// according to the current routing order; each hop is an eddy visit
// (the per-tuple overhead CACQ pays, Figure 9b).
package eddy

import (
	"fmt"
	"time"

	"jisc/internal/metrics"
	"jisc/internal/plan"
	"jisc/internal/state"
	"jisc/internal/tuple"
	"jisc/internal/window"
	"jisc/internal/workload"
)

// CACQ executes a multi-way equi-join with one SteM (State Module)
// per stream and no intermediate state (§3.1). An arriving tuple is
// inserted into its stream's SteM and then joined across the SteMs of
// all other streams in routing order, re-entering the eddy after each
// hop; a tuple's progress is tracked by its stream-set bitvector.
// Plan transitions cost nothing — the routing order just changes —
// but every input recomputes all intermediate results from scratch.
//
// Because its output is computed directly from the live windows, CACQ
// doubles as the brute-force oracle in the equivalence tests.
type CACQ struct {
	order   []tuple.StreamID
	stems   map[tuple.StreamID]*state.Table
	windows map[tuple.StreamID]*window.Window
	seqs    map[tuple.StreamID]uint64
	tick    uint64
	streams tuple.StreamSet

	out func(*tuple.Tuple)
	met metrics.Collector
	now func() time.Time

	// queue is the eddy's dispatch queue, reused across inputs.
	queue []*tuple.Tuple
	// lot holds the adaptive routing state under the Lottery policy.
	lot *lottery
}

// CACQConfig parameterizes a CACQ executor.
type CACQConfig struct {
	// Plan supplies the streams and the initial routing order (the
	// bottom-up order of a left-deep plan).
	Plan *plan.Plan
	// WindowSize is the per-stream window size (default 10_000).
	WindowSize int
	// Routing selects the policy: plan-derived FixedOrder (default)
	// or the adaptive Lottery.
	Routing Routing
	// Output receives result tuples; may be nil.
	Output func(*tuple.Tuple)
	// Now supplies time for latency metrics (default time.Now).
	Now func() time.Time
}

// NewCACQ builds the executor.
func NewCACQ(cfg CACQConfig) (*CACQ, error) {
	if cfg.Plan == nil {
		return nil, fmt.Errorf("cacq: nil plan")
	}
	order, err := cfg.Plan.Order()
	if err != nil {
		return nil, fmt.Errorf("cacq: routing requires a left-deep plan: %w", err)
	}
	if cfg.WindowSize == 0 {
		cfg.WindowSize = 10000
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	c := &CACQ{
		order:   order,
		stems:   make(map[tuple.StreamID]*state.Table),
		windows: make(map[tuple.StreamID]*window.Window),
		seqs:    make(map[tuple.StreamID]uint64),
		streams: cfg.Plan.Streams,
		out:     cfg.Output,
		now:     cfg.Now,
	}
	if cfg.Routing == Lottery {
		c.lot = newLottery(order)
	}
	for _, id := range order {
		c.stems[id] = state.NewTable(tuple.NewStreamSet(id))
		c.windows[id] = window.New(id, cfg.WindowSize)
	}
	return c, nil
}

// MustNewCACQ is NewCACQ but panics on error.
func MustNewCACQ(cfg CACQConfig) *CACQ {
	c, err := NewCACQ(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Name implements engine.Executor.
func (c *CACQ) Name() string { return "cacq" }

// Metrics implements engine.Executor.
func (c *CACQ) Metrics() metrics.Snapshot { return c.met.Snapshot() }

// Order returns the current routing order.
func (c *CACQ) Order() []tuple.StreamID { return append([]tuple.StreamID(nil), c.order...) }

// Feed implements engine.Executor.
func (c *CACQ) Feed(ev workload.Event) {
	c.FeedStamped(ev, c.seqs[ev.Stream]+1, c.tick+1)
}

// FeedStamped processes ev with caller-assigned identity, mirroring
// engine.FeedStamped so outputs are comparable across executors.
func (c *CACQ) FeedStamped(ev workload.Event, seq, tick uint64) {
	c.tick = tick
	c.seqs[ev.Stream] = seq
	c.met.Input.Add(1)

	// Slide the window: expired tuples leave only the SteM — CACQ has
	// no intermediate state to clean, its advantage on eviction.
	ref := tuple.Ref{Stream: ev.Stream, Seq: seq}
	if exp, ok := c.windows[ev.Stream].Admit(ref, ev.Key); ok {
		c.stems[ev.Stream].RemoveRef(exp.Key, exp.Ref)
		c.met.Evictions.Add(1)
	}

	t := tuple.NewBase(ev.Stream, seq, ev.Key, tick)
	c.stems[ev.Stream].Insert(t)
	c.met.Inserts.Add(1)

	// The eddy's dispatch loop: tuples (base and intermediate) queue
	// up at the eddy, which pops each one, consults the routing policy
	// against the tuple's done-bitvector (its stream set), and sends
	// it to the next SteM; join results re-enter the eddy. This
	// re-dispatch per hop is CACQ's per-tuple overhead (§3.1,
	// Figure 9b).
	c.queue = append(c.queue[:0], t)
	for len(c.queue) > 0 {
		u := c.queue[len(c.queue)-1]
		c.queue = c.queue[:len(c.queue)-1]
		c.met.EddyVisits.Add(1)
		// Routing decision: the next unvisited SteM — first in routing
		// order, or the best filter under the lottery policy.
		var next tuple.StreamID
		done := true
		if c.lot != nil {
			if id, ok := c.lot.next(c.order, u.Set); ok {
				next, done = id, false
			}
		} else {
			for _, s := range c.order {
				if !u.Set.Has(s) {
					next, done = s, false
					break
				}
			}
		}
		if done {
			c.met.MarkOutput(c.now())
			if c.out != nil {
				c.out(u)
			}
			continue
		}
		c.met.Probes.Add(1)
		matches := c.stems[next].Probe(u.Key)
		if c.lot != nil {
			c.lot.observe(next, len(matches))
		}
		for _, m := range matches {
			c.queue = append(c.queue, tuple.Join(u, m))
		}
	}
}

// Migrate implements engine.Executor: swap the routing order. No
// state moves, no halt (§3.1).
func (c *CACQ) Migrate(p *plan.Plan) error {
	if p.Streams != c.streams {
		return fmt.Errorf("cacq: new plan covers %v, old covers %v", p.Streams, c.streams)
	}
	order, err := p.Order()
	if err != nil {
		return fmt.Errorf("cacq: routing requires a left-deep plan: %w", err)
	}
	c.met.MarkTransition(c.now())
	c.order = order
	return nil
}

// compile-time checks: both eddy executors satisfy the shared
// executor contract (the interface lives in package engine; keeping
// the assertion here avoids an import there).
var _ interface {
	Name() string
	Feed(workload.Event)
	Migrate(*plan.Plan) error
	Metrics() metrics.Snapshot
} = (*CACQ)(nil)
