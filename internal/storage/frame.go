// Package storage holds the low-level file primitives every
// log-structured file in this repository is built on: the FS
// abstraction (with its OS, in-memory, and crash-injecting
// implementations) and the CRC-framed record discipline —
// len:u32 | crc:u32 | payload, little endian, CRC32C over the payload.
//
// It is a leaf package by design: the durability layer (internal/
// durable) and the tiered state store (internal/statestore) both build
// on it, and durable itself depends on the engine for recovery — so
// the shared primitives must live below both. durable re-exports the
// names it historically owned as aliases.
package storage

import (
	"encoding/binary"
	"hash/crc32"
)

// FrameHeader is the byte length of a frame's len+crc header.
const FrameHeader = 8

var (
	le         = binary.LittleEndian
	castagnoli = crc32.MakeTable(crc32.Castagnoli)
)

// AppendFramed appends payload to dst as one self-delimiting frame.
func AppendFramed(dst, payload []byte) []byte {
	dst = le.AppendUint32(dst, uint32(len(payload)))
	dst = le.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...)
}

// SealFrame patches the FrameHeader bytes at start, treating
// dst[start+FrameHeader:] as the frame's payload. Callers that build
// the payload in place (reserving the header first) avoid the copy
// AppendFramed would make.
func SealFrame(dst []byte, start int) {
	payload := dst[start+FrameHeader:]
	le.PutUint32(dst[start:], uint32(len(payload)))
	le.PutUint32(dst[start+4:], crc32.Checksum(payload, castagnoli))
}

// NextFrame validates the frame at the head of data and returns its
// payload and total encoded length. ok is false when data starts with
// a torn or corrupted frame (short header, implausible length, short
// payload, or CRC mismatch) — the caller should treat everything from
// that offset on as an unreplayable tail. max bounds the accepted
// payload length.
func NextFrame(data []byte, max int) (payload []byte, n int, ok bool) {
	if len(data) < FrameHeader {
		return nil, 0, false
	}
	ln := int(le.Uint32(data))
	if ln == 0 || ln > max || len(data)-FrameHeader < ln {
		return nil, 0, false
	}
	payload = data[FrameHeader : FrameHeader+ln]
	if crc32.Checksum(payload, castagnoli) != le.Uint32(data[4:]) {
		return nil, 0, false
	}
	return payload, FrameHeader + ln, true
}
