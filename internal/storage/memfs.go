package storage

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// MemFS is an in-memory FS. It exists for fault-injection sweeps at
// scale: the simulation harness runs thousands of CrashFS crash/
// recovery scenarios per test invocation, and backing each with a real
// temp directory would spend the suite's budget on disk I/O. Semantics
// match the durability layer's use of a POSIX filesystem: appends see
// existing content, Create truncates, Rename replaces, ReadDir is
// sorted, and Sync/SyncDir are no-ops (an in-memory write is "durable"
// the moment it lands, the same model CrashFS cuts writes against).
//
// MemFS is safe for concurrent use.
type MemFS struct {
	mu    sync.Mutex
	files map[string][]byte
	dirs  map[string]bool
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string][]byte), dirs: make(map[string]bool)}
}

// MkdirAll implements FS.
func (m *MemFS) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for dir != "" && dir != "/" && dir != "." {
		m.dirs[dir] = true
		i := strings.LastIndexByte(dir, '/')
		if i < 0 {
			break
		}
		dir = dir[:i]
	}
	return nil
}

type memFile struct {
	fs   *MemFS
	path string
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.fs.files[f.path] = append(f.fs.files[f.path], p...)
	return len(p), nil
}

func (f *memFile) Sync() error  { return nil }
func (f *memFile) Close() error { return nil }

// Create implements FS: open for writing, truncating existing content.
func (m *MemFS) Create(path string) (File, error) {
	m.mu.Lock()
	m.files[path] = nil
	m.mu.Unlock()
	return &memFile{fs: m, path: path}, nil
}

// OpenAppend implements FS: open for appending, creating if absent.
func (m *MemFS) OpenAppend(path string) (File, error) {
	m.mu.Lock()
	if _, ok := m.files[path]; !ok {
		m.files[path] = nil
	}
	m.mu.Unlock()
	return &memFile{fs: m, path: path}, nil
}

// Open implements FS: open for reading. The reader sees a snapshot of
// the content at Open time.
func (m *MemFS) Open(path string) (io.ReadCloser, error) {
	m.mu.Lock()
	data, ok := m.files[path]
	snapshot := append([]byte(nil), data...)
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("memfs: open %s: file does not exist", path)
	}
	return io.NopCloser(bytes.NewReader(snapshot)), nil
}

// ReadDir implements FS: immediate children of dir, sorted. A missing
// directory yields an empty list, like the OS implementation.
func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	prefix := strings.TrimSuffix(dir, "/") + "/"
	seen := make(map[string]bool)
	for path := range m.files {
		if rest, ok := strings.CutPrefix(path, prefix); ok && !strings.Contains(rest, "/") {
			seen[rest] = true
		}
	}
	for path := range m.dirs {
		if rest, ok := strings.CutPrefix(path, prefix); ok && !strings.Contains(rest, "/") {
			seen[rest] = true
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// Rename implements FS, replacing any existing target.
func (m *MemFS) Rename(oldPath, newPath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[oldPath]
	if !ok {
		return fmt.Errorf("memfs: rename %s: file does not exist", oldPath)
	}
	delete(m.files, oldPath)
	m.files[newPath] = data
	return nil
}

// Remove implements FS.
func (m *MemFS) Remove(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[path]; !ok {
		return fmt.Errorf("memfs: remove %s: file does not exist", path)
	}
	delete(m.files, path)
	return nil
}

// RemoveAll implements FS: remove path and everything under it.
func (m *MemFS) RemoveAll(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	prefix := strings.TrimSuffix(path, "/") + "/"
	for p := range m.files {
		if p == path || strings.HasPrefix(p, prefix) {
			delete(m.files, p)
		}
	}
	for p := range m.dirs {
		if p == path || strings.HasPrefix(p, prefix) {
			delete(m.dirs, p)
		}
	}
	return nil
}

// Truncate implements FS.
func (m *MemFS) Truncate(path string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[path]
	if !ok {
		return fmt.Errorf("memfs: truncate %s: file does not exist", path)
	}
	if size > int64(len(data)) {
		grown := make([]byte, size)
		copy(grown, data)
		m.files[path] = grown
		return nil
	}
	m.files[path] = data[:size]
	return nil
}

// SyncDir implements FS (no-op in memory).
func (m *MemFS) SyncDir(string) error { return nil }

// Size implements FS.
func (m *MemFS) Size(path string) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[path]
	if !ok {
		return 0, fmt.Errorf("memfs: stat %s: file does not exist", path)
	}
	return int64(len(data)), nil
}

var _ FS = (*MemFS)(nil)
