package storage

import (
	"errors"
	"io"
	"os"
	"sort"
	"sync"
)

// FS abstracts the handful of filesystem operations the log-
// structured layers (write-ahead log, checkpoints, state-spill
// segments) perform, so tests can inject faults (CrashFS) without
// touching the log or store logic.
type FS interface {
	MkdirAll(dir string) error
	// Create opens path for writing, truncating any existing file.
	Create(path string) (File, error)
	// OpenAppend opens path for appending, creating it if absent.
	OpenAppend(path string) (File, error)
	// Open opens path for reading.
	Open(path string) (io.ReadCloser, error)
	// ReadDir returns the names in dir, sorted. A missing directory
	// yields an empty list, not an error.
	ReadDir(dir string) ([]string, error)
	Rename(oldPath, newPath string) error
	Remove(path string) error
	RemoveAll(path string) error
	Truncate(path string, size int64) error
	// SyncDir fsyncs the directory itself, making renames and removals
	// durable.
	SyncDir(dir string) error
	// Size returns the byte size of path.
	Size(path string) (int64, error)
}

// File is a writable log or checkpoint file.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// OS returns the real filesystem.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
}

func (osFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
}

func (osFS) Open(path string) (io.ReadCloser, error) { return os.Open(path) }

func (osFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }
func (osFS) Remove(path string) error             { return os.Remove(path) }
func (osFS) RemoveAll(path string) error          { return os.RemoveAll(path) }
func (osFS) Truncate(path string, size int64) error {
	return os.Truncate(path, size)
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func (osFS) Size(path string) (int64, error) {
	st, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// ErrCrashed is returned by a CrashFS once its write budget is
// exhausted: the simulated machine has lost power.
var ErrCrashed = errors.New("storage: simulated crash (write budget exhausted)")

// CrashFS wraps an FS and simulates power loss at a chosen byte
// offset: the first Budget bytes written through it reach the inner
// filesystem; the write that crosses the budget is cut short — a torn
// write, exactly what a real crash mid-write leaves behind — and every
// mutating operation after that fails with ErrCrashed. Reads keep
// working, so a test can "reboot" and inspect what survived.
type CrashFS struct {
	inner FS

	mu        sync.Mutex
	remaining int64
	crashed   bool
}

// NewCrashFS wraps inner with a write budget of budget bytes.
func NewCrashFS(inner FS, budget int64) *CrashFS {
	return &CrashFS{inner: inner, remaining: budget}
}

// Crashed reports whether the budget has been exhausted.
func (c *CrashFS) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// consume reserves up to n bytes of budget; it returns how many bytes
// of the write survive and whether the crash fired on this write.
func (c *CrashFS) consume(n int) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return 0, true
	}
	if int64(n) <= c.remaining {
		c.remaining -= int64(n)
		return n, false
	}
	allowed := int(c.remaining)
	c.remaining = 0
	c.crashed = true
	return allowed, true
}

func (c *CrashFS) mutate() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrCrashed
	}
	return nil
}

func (c *CrashFS) MkdirAll(dir string) error {
	if err := c.mutate(); err != nil {
		return err
	}
	return c.inner.MkdirAll(dir)
}

func (c *CrashFS) Create(path string) (File, error) {
	if err := c.mutate(); err != nil {
		return nil, err
	}
	f, err := c.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &crashFile{fs: c, f: f}, nil
}

func (c *CrashFS) OpenAppend(path string) (File, error) {
	if err := c.mutate(); err != nil {
		return nil, err
	}
	f, err := c.inner.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &crashFile{fs: c, f: f}, nil
}

func (c *CrashFS) Open(path string) (io.ReadCloser, error) { return c.inner.Open(path) }
func (c *CrashFS) ReadDir(dir string) ([]string, error)    { return c.inner.ReadDir(dir) }
func (c *CrashFS) Size(path string) (int64, error)         { return c.inner.Size(path) }

func (c *CrashFS) Rename(oldPath, newPath string) error {
	if err := c.mutate(); err != nil {
		return err
	}
	return c.inner.Rename(oldPath, newPath)
}

func (c *CrashFS) Remove(path string) error {
	if err := c.mutate(); err != nil {
		return err
	}
	return c.inner.Remove(path)
}

func (c *CrashFS) RemoveAll(path string) error {
	if err := c.mutate(); err != nil {
		return err
	}
	return c.inner.RemoveAll(path)
}

func (c *CrashFS) Truncate(path string, size int64) error {
	if err := c.mutate(); err != nil {
		return err
	}
	return c.inner.Truncate(path, size)
}

func (c *CrashFS) SyncDir(dir string) error {
	if err := c.mutate(); err != nil {
		return err
	}
	return c.inner.SyncDir(dir)
}

type crashFile struct {
	fs *CrashFS
	f  File
}

func (cf *crashFile) Write(p []byte) (int, error) {
	allowed, crashed := cf.fs.consume(len(p))
	if allowed > 0 {
		n, err := cf.f.Write(p[:allowed])
		if err != nil {
			return n, err
		}
	}
	if crashed {
		return allowed, ErrCrashed
	}
	return len(p), nil
}

func (cf *crashFile) Sync() error {
	if err := cf.fs.mutate(); err != nil {
		return err
	}
	return cf.f.Sync()
}

// Close always closes the inner file — a crashed process's descriptors
// are closed by the OS regardless.
func (cf *crashFile) Close() error { return cf.f.Close() }
