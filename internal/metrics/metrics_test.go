package metrics

import (
	"testing"
	"time"
)

func TestOutputLatency(t *testing.T) {
	var c Collector
	t0 := time.Unix(0, 0)
	c.MarkTransition(t0)
	if c.Transitions != 1 {
		t.Fatalf("Transitions = %d", c.Transitions)
	}
	c.MarkOutput(t0.Add(5 * time.Millisecond))
	c.MarkOutput(t0.Add(9 * time.Millisecond)) // second output: no new latency sample
	if len(c.OutputLatencies) != 1 {
		t.Fatalf("latencies = %v, want one sample", c.OutputLatencies)
	}
	if c.OutputLatencies[0] != 5*time.Millisecond {
		t.Fatalf("latency = %v, want 5ms", c.OutputLatencies[0])
	}
	if c.Output != 2 {
		t.Fatalf("Output = %d, want 2", c.Output)
	}

	c.MarkTransition(t0.Add(20 * time.Millisecond))
	c.MarkOutput(t0.Add(120 * time.Millisecond))
	if got := c.MaxOutputLatency(); got != 100*time.Millisecond {
		t.Fatalf("MaxOutputLatency = %v, want 100ms", got)
	}
}

func TestMaxOutputLatencyEmpty(t *testing.T) {
	var c Collector
	if c.MaxOutputLatency() != 0 {
		t.Fatal("non-zero max latency with no samples")
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	var c Collector
	c.Input = 3
	c.MarkTransition(time.Unix(0, 0))
	c.MarkOutput(time.Unix(1, 0))
	s := c.Snapshot()
	c.Input = 99
	c.OutputLatencies[0] = 0
	if s.Input != 3 {
		t.Fatal("Snapshot shares Input")
	}
	if s.OutputLatencies[0] != time.Second {
		t.Fatal("Snapshot shares latency slice")
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
}

func TestSnapshotStringSections(t *testing.T) {
	s := Snapshot{
		Input: 1, Output: 2, Completions: 3, CompletedEntries: 4,
		DupDropped: 5, EddyVisits: 6, Transitions: 7,
	}
	str := s.String()
	for _, want := range []string{"completions=3", "dup-dropped=5", "eddy-visits=6", "transitions=7"} {
		if !contains(str, want) {
			t.Errorf("String %q missing %q", str, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestThroughput(t *testing.T) {
	if got := Throughput(1000, time.Second); got != 1000 {
		t.Fatalf("Throughput = %f", got)
	}
	if got := Throughput(1000, 0); got != 0 {
		t.Fatalf("Throughput with zero duration = %f", got)
	}
	if got := Throughput(500, 250*time.Millisecond); got != 2000 {
		t.Fatalf("Throughput = %f, want 2000", got)
	}
}
