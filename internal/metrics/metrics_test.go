package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestOutputLatency(t *testing.T) {
	var c Collector
	t0 := time.Unix(0, 0)
	c.MarkTransition(t0)
	if c.Transitions.Load() != 1 {
		t.Fatalf("Transitions = %d", c.Transitions.Load())
	}
	c.MarkOutput(t0.Add(5 * time.Millisecond))
	c.MarkOutput(t0.Add(9 * time.Millisecond)) // second output: no new latency sample
	if lat := c.OutputLatencies(); len(lat) != 1 {
		t.Fatalf("latencies = %v, want one sample", lat)
	} else if lat[0] != 5*time.Millisecond {
		t.Fatalf("latency = %v, want 5ms", lat[0])
	}
	if c.Output.Load() != 2 {
		t.Fatalf("Output = %d, want 2", c.Output.Load())
	}

	c.MarkTransition(t0.Add(20 * time.Millisecond))
	c.MarkOutput(t0.Add(120 * time.Millisecond))
	if got := c.MaxOutputLatency(); got != 100*time.Millisecond {
		t.Fatalf("MaxOutputLatency = %v, want 100ms", got)
	}
}

func TestMaxOutputLatencyEmpty(t *testing.T) {
	var c Collector
	if c.MaxOutputLatency() != 0 {
		t.Fatal("non-zero max latency with no samples")
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	var c Collector
	c.Input.Store(3)
	c.MarkTransition(time.Unix(0, 0))
	c.MarkOutput(time.Unix(1, 0))
	s := c.Snapshot()
	c.Input.Store(99)
	c.MarkTransition(time.Unix(2, 0))
	c.MarkOutput(time.Unix(2, 1))
	if s.Input != 3 {
		t.Fatal("Snapshot shares Input")
	}
	if len(s.OutputLatencies) != 1 || s.OutputLatencies[0] != time.Second {
		t.Fatalf("Snapshot latencies = %v, want [1s]", s.OutputLatencies)
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
}

// TestConcurrentSnapshot exercises the lock-free contract: counters
// incremented from many goroutines while another snapshots. Run under
// -race this is the regression test for the control-channel-free
// metrics path.
func TestConcurrentSnapshot(t *testing.T) {
	var c Collector
	const workers = 4
	const perWorker = 10000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				_ = c.Snapshot()
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Input.Add(1)
				c.Probes.Add(1)
				if i%100 == 0 {
					c.MarkOutput(time.Unix(int64(i), 0))
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	s := c.Snapshot()
	if s.Input != workers*perWorker {
		t.Fatalf("Input = %d, want %d", s.Input, workers*perWorker)
	}
	if s.Probes != workers*perWorker {
		t.Fatalf("Probes = %d, want %d", s.Probes, workers*perWorker)
	}
}

func TestSnapshotAdd(t *testing.T) {
	a := Snapshot{Input: 1, Output: 2, Probes: 3, OutputLatencies: []time.Duration{time.Second}}
	b := Snapshot{Input: 10, Output: 20, Probes: 30, OutputLatencies: []time.Duration{2 * time.Second}}
	sum := a.Add(b)
	if sum.Input != 11 || sum.Output != 22 || sum.Probes != 33 {
		t.Fatalf("Add = %+v", sum)
	}
	if len(sum.OutputLatencies) != 2 {
		t.Fatalf("latencies = %v", sum.OutputLatencies)
	}
}

func TestMergeShards(t *testing.T) {
	shards := []Snapshot{
		{Input: 5, Transitions: 2},
		{Input: 7, Transitions: 2},
		{Input: 1, Transitions: 1}, // shard migrated once less (mid-fan-out read)
	}
	m := MergeShards(shards)
	if m.Input != 13 {
		t.Fatalf("Input = %d, want 13", m.Input)
	}
	if m.Transitions != 2 {
		t.Fatalf("Transitions = %d, want 2 (max, not sum)", m.Transitions)
	}
}

func TestSnapshotStringSections(t *testing.T) {
	s := Snapshot{
		Input: 1, Output: 2, Completions: 3, CompletedEntries: 4,
		DupDropped: 5, EddyVisits: 6, Transitions: 7,
	}
	str := s.String()
	for _, want := range []string{"completions=3", "dup-dropped=5", "eddy-visits=6", "transitions=7"} {
		if !contains(str, want) {
			t.Errorf("String %q missing %q", str, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestThroughput(t *testing.T) {
	if got := Throughput(1000, time.Second); got != 1000 {
		t.Fatalf("Throughput = %f", got)
	}
	if got := Throughput(1000, 0); got != 0 {
		t.Fatalf("Throughput with zero duration = %f", got)
	}
	if got := Throughput(500, 250*time.Millisecond); got != 2000 {
		t.Fatalf("Throughput = %f, want 2000", got)
	}
}
