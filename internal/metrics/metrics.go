// Package metrics collects the performance measures the paper reports:
// execution time of the migration stage, throughput during normal
// operation, output latency after a transition, and the bookkeeping
// counters (probes, completions, duplicate eliminations) used by the
// ablation benches.
//
// Counters are lock-free atomics, so a Collector owned by an executor
// goroutine can be snapshotted concurrently from any other goroutine —
// monitoring never round-trips through the executor's control channel.
// The latency samples (a slice) are guarded by a small mutex taken
// only on transition, on the first output after one, and on Snapshot.
package metrics

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Collector accumulates counters and transition timing for one
// executor run. The zero value is ready to use. Counter increments are
// atomic; a Collector must not be copied after first use.
type Collector struct {
	// Input counts tuples fed into the executor.
	Input atomic.Uint64
	// Output counts result tuples emitted at the root.
	Output atomic.Uint64
	// Probes counts hash/list probes performed by join operators.
	Probes atomic.Uint64
	// Inserts counts state insertions.
	Inserts atomic.Uint64
	// Completions counts on-demand state-completion invocations (JISC).
	Completions atomic.Uint64
	// CompletedEntries counts tuples materialized by state completion.
	CompletedEntries atomic.Uint64
	// Evictions counts window-expiry removals applied to states.
	Evictions atomic.Uint64
	// DupDropped counts outputs suppressed by duplicate elimination
	// (Parallel Track).
	DupDropped atomic.Uint64
	// EddyVisits counts tuple passes through the eddy router (CACQ,
	// STAIRs).
	EddyVisits atomic.Uint64
	// Transitions counts plan transitions applied.
	Transitions atomic.Uint64
	// MigrationWork counts tuples (re)processed solely because of a
	// migration strategy (e.g. eager moving-state joins, parallel
	// track double-processing).
	MigrationWork atomic.Uint64

	// mu guards the transition-to-first-output latency bookkeeping
	// (§6.3); counters above are deliberately outside it.
	mu             sync.Mutex
	transitionAt   time.Time
	awaitingOutput bool
	latencies      []time.Duration
}

// MarkTransition records that a plan transition was triggered now.
func (c *Collector) MarkTransition(now time.Time) {
	c.Transitions.Add(1)
	c.mu.Lock()
	c.transitionAt = now
	c.awaitingOutput = true
	c.mu.Unlock()
}

// MarkOutput records a root output at time now; the first one after a
// transition closes the output-latency measurement.
func (c *Collector) MarkOutput(now time.Time) {
	c.Output.Add(1)
	c.mu.Lock()
	if c.awaitingOutput {
		c.latencies = append(c.latencies, now.Sub(c.transitionAt))
		c.awaitingOutput = false
	}
	c.mu.Unlock()
}

// OutputLatencies returns a copy of the recorded transition-to-first-
// output latencies.
func (c *Collector) OutputLatencies() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]time.Duration, len(c.latencies))
	copy(out, c.latencies)
	return out
}

// MaxOutputLatency returns the largest recorded transition-to-first-
// output latency, or zero when none was recorded.
func (c *Collector) MaxOutputLatency() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	var m time.Duration
	for _, d := range c.latencies {
		if d > m {
			m = d
		}
	}
	return m
}

// Restore overwrites the collector with s — used when resuming an
// engine from a checkpoint, so lifetime counters survive a restart
// instead of resetting to zero. Not safe concurrently with counter
// updates; call it only while the owning executor is quiescent.
func (c *Collector) Restore(s Snapshot) {
	c.Input.Store(s.Input)
	c.Output.Store(s.Output)
	c.Probes.Store(s.Probes)
	c.Inserts.Store(s.Inserts)
	c.Completions.Store(s.Completions)
	c.CompletedEntries.Store(s.CompletedEntries)
	c.Evictions.Store(s.Evictions)
	c.DupDropped.Store(s.DupDropped)
	c.EddyVisits.Store(s.EddyVisits)
	c.Transitions.Store(s.Transitions)
	c.MigrationWork.Store(s.MigrationWork)
	c.mu.Lock()
	c.latencies = append([]time.Duration(nil), s.OutputLatencies...)
	c.awaitingOutput = false
	c.mu.Unlock()
}

// Snapshot is an immutable copy of the collector for reporting.
type Snapshot struct {
	Input, Output, Probes, Inserts           uint64
	Completions, CompletedEntries, Evictions uint64
	DupDropped, EddyVisits, Transitions      uint64
	MigrationWork                            uint64
	OutputLatencies                          []time.Duration
}

// Snapshot copies the current counters. It is safe to call from any
// goroutine, concurrently with counter updates.
func (c *Collector) Snapshot() Snapshot {
	return Snapshot{
		Input: c.Input.Load(), Output: c.Output.Load(),
		Probes: c.Probes.Load(), Inserts: c.Inserts.Load(),
		Completions: c.Completions.Load(), CompletedEntries: c.CompletedEntries.Load(),
		Evictions: c.Evictions.Load(), DupDropped: c.DupDropped.Load(),
		EddyVisits: c.EddyVisits.Load(), Transitions: c.Transitions.Load(),
		MigrationWork:   c.MigrationWork.Load(),
		OutputLatencies: c.OutputLatencies(),
	}
}

// Add returns the element-wise sum of s and o, with latency samples
// appended — the merge used to aggregate per-shard snapshots. The
// Transitions counter is summed like the rest; callers merging shards
// that migrate in lockstep (every shard applies the same transition)
// should divide by the shard count or use MergeShards.
func (s Snapshot) Add(o Snapshot) Snapshot {
	lat := make([]time.Duration, 0, len(s.OutputLatencies)+len(o.OutputLatencies))
	lat = append(lat, s.OutputLatencies...)
	lat = append(lat, o.OutputLatencies...)
	return Snapshot{
		Input: s.Input + o.Input, Output: s.Output + o.Output,
		Probes: s.Probes + o.Probes, Inserts: s.Inserts + o.Inserts,
		Completions: s.Completions + o.Completions, CompletedEntries: s.CompletedEntries + o.CompletedEntries,
		Evictions: s.Evictions + o.Evictions, DupDropped: s.DupDropped + o.DupDropped,
		EddyVisits: s.EddyVisits + o.EddyVisits, Transitions: s.Transitions + o.Transitions,
		MigrationWork:   s.MigrationWork + o.MigrationWork,
		OutputLatencies: lat,
	}
}

// MergeShards aggregates per-shard snapshots of one sharded executor:
// tuple and work counters sum, while Transitions — identical on every
// shard because migrations fan out to all of them — is taken from the
// maximum rather than summed.
func MergeShards(shards []Snapshot) Snapshot {
	var total Snapshot
	var transitions uint64
	for _, s := range shards {
		if s.Transitions > transitions {
			transitions = s.Transitions
		}
		s.Transitions = 0
		total = total.Add(s)
	}
	total.Transitions = transitions
	return total
}

func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "in=%d out=%d probes=%d inserts=%d", s.Input, s.Output, s.Probes, s.Inserts)
	if s.Completions > 0 {
		fmt.Fprintf(&b, " completions=%d(+%d entries)", s.Completions, s.CompletedEntries)
	}
	if s.DupDropped > 0 {
		fmt.Fprintf(&b, " dup-dropped=%d", s.DupDropped)
	}
	if s.EddyVisits > 0 {
		fmt.Fprintf(&b, " eddy-visits=%d", s.EddyVisits)
	}
	if s.Transitions > 0 {
		fmt.Fprintf(&b, " transitions=%d", s.Transitions)
	}
	return b.String()
}

// Throughput returns tuples per second for n tuples processed in d.
func Throughput(n uint64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds()
}
