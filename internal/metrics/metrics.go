// Package metrics collects the performance measures the paper reports:
// execution time of the migration stage, throughput during normal
// operation, output latency after a transition, and the bookkeeping
// counters (probes, completions, duplicate eliminations) used by the
// ablation benches.
package metrics

import (
	"fmt"
	"strings"
	"time"
)

// Collector accumulates counters and transition timing for one
// executor run. The zero value is ready to use.
type Collector struct {
	// Input counts tuples fed into the executor.
	Input uint64
	// Output counts result tuples emitted at the root.
	Output uint64
	// Probes counts hash/list probes performed by join operators.
	Probes uint64
	// Inserts counts state insertions.
	Inserts uint64
	// Completions counts on-demand state-completion invocations (JISC).
	Completions uint64
	// CompletedEntries counts tuples materialized by state completion.
	CompletedEntries uint64
	// Evictions counts window-expiry removals applied to states.
	Evictions uint64
	// DupDropped counts outputs suppressed by duplicate elimination
	// (Parallel Track).
	DupDropped uint64
	// EddyVisits counts tuple passes through the eddy router (CACQ,
	// STAIRs).
	EddyVisits uint64
	// Transitions counts plan transitions applied.
	Transitions uint64
	// MigrationWork counts tuples (re)processed solely because of a
	// migration strategy (e.g. eager moving-state joins, parallel
	// track double-processing).
	MigrationWork uint64

	// transitionAt is the wall-clock instant of the most recent
	// transition; firstOutputAfter records the latency to the first
	// root output after it (§6.3).
	transitionAt     time.Time
	awaitingOutput   bool
	OutputLatencies  []time.Duration
	transitionActive bool
}

// MarkTransition records that a plan transition was triggered now.
func (c *Collector) MarkTransition(now time.Time) {
	c.Transitions++
	c.transitionAt = now
	c.awaitingOutput = true
}

// MarkOutput records a root output at time now; the first one after a
// transition closes the output-latency measurement.
func (c *Collector) MarkOutput(now time.Time) {
	c.Output++
	if c.awaitingOutput {
		c.OutputLatencies = append(c.OutputLatencies, now.Sub(c.transitionAt))
		c.awaitingOutput = false
	}
}

// MaxOutputLatency returns the largest recorded transition-to-first-
// output latency, or zero when none was recorded.
func (c *Collector) MaxOutputLatency() time.Duration {
	var m time.Duration
	for _, d := range c.OutputLatencies {
		if d > m {
			m = d
		}
	}
	return m
}

// Snapshot is an immutable copy of the collector for reporting.
type Snapshot struct {
	Input, Output, Probes, Inserts           uint64
	Completions, CompletedEntries, Evictions uint64
	DupDropped, EddyVisits, Transitions      uint64
	MigrationWork                            uint64
	OutputLatencies                          []time.Duration
}

// Snapshot copies the current counters.
func (c *Collector) Snapshot() Snapshot {
	lat := make([]time.Duration, len(c.OutputLatencies))
	copy(lat, c.OutputLatencies)
	return Snapshot{
		Input: c.Input, Output: c.Output, Probes: c.Probes, Inserts: c.Inserts,
		Completions: c.Completions, CompletedEntries: c.CompletedEntries,
		Evictions: c.Evictions, DupDropped: c.DupDropped, EddyVisits: c.EddyVisits,
		Transitions: c.Transitions, MigrationWork: c.MigrationWork,
		OutputLatencies: lat,
	}
}

func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "in=%d out=%d probes=%d inserts=%d", s.Input, s.Output, s.Probes, s.Inserts)
	if s.Completions > 0 {
		fmt.Fprintf(&b, " completions=%d(+%d entries)", s.Completions, s.CompletedEntries)
	}
	if s.DupDropped > 0 {
		fmt.Fprintf(&b, " dup-dropped=%d", s.DupDropped)
	}
	if s.EddyVisits > 0 {
		fmt.Fprintf(&b, " eddy-visits=%d", s.EddyVisits)
	}
	if s.Transitions > 0 {
		fmt.Fprintf(&b, " transitions=%d", s.Transitions)
	}
	return b.String()
}

// Throughput returns tuples per second for n tuples processed in d.
func Throughput(n uint64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds()
}
