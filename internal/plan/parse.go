package plan

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"jisc/internal/tuple"
)

// Parse reads a plan from its textual form. Two syntaxes are accepted:
//
//   - infix trees, as printed by Plan.String: "((0⋈1)⋈2)". The join
//     symbol may be "⋈", "*", or whitespace: "((0 1) 2)".
//   - comma-separated left-deep orders: "0,1,2".
//
// Stream identifiers are decimal, 0 ≤ id < tuple.MaxStreams.
func Parse(s string) (*Plan, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("plan: empty input")
	}
	if !strings.ContainsAny(s, "()") {
		// Comma list → left-deep.
		parts := strings.Split(s, ",")
		order := make([]tuple.StreamID, 0, len(parts))
		for _, p := range parts {
			id, err := parseStream(strings.TrimSpace(p))
			if err != nil {
				return nil, err
			}
			order = append(order, id)
		}
		return LeftDeep(order...)
	}
	p := &parser{src: s}
	root, err := p.parseNode()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("plan: trailing input at byte %d: %q", p.pos, p.src[p.pos:])
	}
	return New(root)
}

// MustParse is Parse but panics on error; for literals in tests.
func MustParse(s string) *Plan {
	p, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return p
}

func parseStream(s string) (tuple.StreamID, error) {
	v, err := strconv.Atoi(s)
	if err != nil || v < 0 || v >= tuple.MaxStreams {
		return 0, fmt.Errorf("plan: bad stream id %q", s)
	}
	return tuple.StreamID(v), nil
}

type parser struct {
	src string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) {
		switch {
		case p.src[p.pos] == ' ' || p.src[p.pos] == '\t':
			p.pos++
		case strings.HasPrefix(p.src[p.pos:], "⋈"):
			p.pos += len("⋈")
		case p.src[p.pos] == '*':
			p.pos++
		default:
			return
		}
	}
}

// parseNode reads either "(node node)" or a stream id.
func (p *parser) parseNode() (*Node, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return nil, fmt.Errorf("plan: unexpected end of input")
	}
	if p.src[p.pos] == '(' {
		p.pos++
		left, err := p.parseNode()
		if err != nil {
			return nil, err
		}
		right, err := p.parseNode()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			return nil, fmt.Errorf("plan: missing ')' at byte %d", p.pos)
		}
		p.pos++
		return Join(left, right), nil
	}
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		p.pos++
	}
	if start == p.pos {
		return nil, fmt.Errorf("plan: expected stream id or '(' at byte %d: %q", p.pos, p.src[p.pos:])
	}
	id, err := parseStream(p.src[start:p.pos])
	if err != nil {
		return nil, err
	}
	return Leaf(id), nil
}

// MarshalJSON encodes the plan as its infix string.
func (p *Plan) MarshalJSON() ([]byte, error) {
	return json.Marshal(p.String())
}

// UnmarshalJSON decodes a plan from its infix (or comma-list) string.
func (p *Plan) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	parsed, err := Parse(s)
	if err != nil {
		return err
	}
	*p = *parsed
	return nil
}
