package plan

import (
	"math/rand"
	"testing"
	"testing/quick"

	"jisc/internal/testseed"
	"jisc/internal/tuple"
)

func TestLeftDeepShape(t *testing.T) {
	p := MustLeftDeep(0, 1, 2, 3)
	if p.Joins() != 3 {
		t.Fatalf("Joins = %d, want 3", p.Joins())
	}
	if !p.Root.IsLeftDeep() {
		t.Fatal("LeftDeep plan not left-deep")
	}
	if got := p.String(); got != "(((0⋈1)⋈2)⋈3)" {
		t.Fatalf("String = %q, want fully parenthesized infix", got)
	}
	order, err := p.Order()
	if err != nil {
		t.Fatal(err)
	}
	want := []tuple.StreamID{0, 1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("Order = %v, want %v", order, want)
		}
	}
}

func TestLeftDeepErrors(t *testing.T) {
	if _, err := LeftDeep(0); err == nil {
		t.Error("single-stream plan accepted")
	}
	if _, err := LeftDeep(); err == nil {
		t.Error("empty plan accepted")
	}
}

func TestNewRejectsDuplicateStream(t *testing.T) {
	root := Join(Leaf(0), Leaf(0))
	if _, err := New(root); err == nil {
		t.Fatal("duplicate stream accepted")
	}
}

func TestNewRejectsNilAndLeafRoot(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil root accepted")
	}
	if _, err := New(Leaf(0)); err == nil {
		t.Error("leaf root accepted")
	}
}

func TestBushyShape(t *testing.T) {
	// (0⋈1) ⋈ (2⋈3)
	p := MustNew(Join(Join(Leaf(0), Leaf(1)), Join(Leaf(2), Leaf(3))))
	if p.Root.IsLeftDeep() {
		t.Fatal("bushy plan reported left-deep")
	}
	if p.Joins() != 3 {
		t.Fatalf("Joins = %d, want 3", p.Joins())
	}
	if p.Root.Height() != 2 {
		t.Fatalf("Height = %d, want 2", p.Root.Height())
	}
	if _, err := p.Order(); err == nil {
		t.Fatal("Order on bushy plan did not error")
	}
}

func TestSetAndJoinSets(t *testing.T) {
	p := MustLeftDeep(2, 0, 1)
	if p.Streams != tuple.NewStreamSet(0, 1, 2) {
		t.Fatalf("Streams = %v", p.Streams)
	}
	js := p.JoinSets()
	if len(js) != 2 {
		t.Fatalf("JoinSets len = %d", len(js))
	}
	if js[0] != tuple.NewStreamSet(2, 0) || js[1] != tuple.NewStreamSet(0, 1, 2) {
		t.Fatalf("JoinSets = %v", js)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := MustLeftDeep(0, 1, 2)
	c := p.Root.Clone()
	c.Right.Stream = 9
	if p.Root.Right.Stream == 9 {
		t.Fatal("Clone shares nodes with original")
	}
}

func TestEqual(t *testing.T) {
	a := MustLeftDeep(0, 1, 2)
	b := MustLeftDeep(0, 1, 2)
	c := MustLeftDeep(0, 2, 1)
	d := MustNew(Join(Leaf(0), Join(Leaf(1), Leaf(2))))
	if !a.Equal(b) {
		t.Error("identical plans not Equal")
	}
	if a.Equal(c) {
		t.Error("different orders Equal")
	}
	if a.Equal(d) {
		t.Error("different shapes Equal")
	}
}

func TestSwap(t *testing.T) {
	p := MustLeftDeep(0, 1, 2, 3, 4)
	q, err := p.Swap(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	order, _ := q.Order()
	want := []tuple.StreamID{0, 3, 2, 1, 4}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("swapped order = %v, want %v", order, want)
		}
	}
	if _, err := p.Swap(0, 99); err == nil {
		t.Error("out-of-range swap accepted")
	}
}

func TestDiffClassification(t *testing.T) {
	// Old: (((0⋈1)⋈2)⋈3); states {0,1},{0,1,2},{0,1,2,3}.
	old := MustLeftDeep(0, 1, 2, 3)
	oldC := AllComplete(old)

	// New: (((0⋈1)⋈3)⋈2) — swap positions 2 and 3.
	neu := MustLeftDeep(0, 1, 3, 2)
	c := Diff(oldC, neu)
	if !c[tuple.NewStreamSet(0, 1)] {
		t.Error("{0,1} should be complete (exists in old plan)")
	}
	if c[tuple.NewStreamSet(0, 1, 3)] {
		t.Error("{0,1,3} should be incomplete (absent from old plan)")
	}
	if !c[tuple.NewStreamSet(0, 1, 2, 3)] {
		t.Error("root state should be complete (full set exists in old plan)")
	}
	// Leaves are always complete.
	for _, id := range []tuple.StreamID{0, 1, 2, 3} {
		if !c[tuple.NewStreamSet(id)] {
			t.Errorf("leaf %d not complete", id)
		}
	}
	if got := IncompleteCount(c, neu); got != 1 {
		t.Errorf("IncompleteCount = %d, want 1", got)
	}
	if got := CompleteCount(c, neu); got != 2 {
		t.Errorf("CompleteCount = %d, want 2", got)
	}
}

// §4.5: a state that exists in the old plan but is incomplete there
// must remain incomplete in the new plan (overlapped transitions).
func TestDiffOverlappedTransitions(t *testing.T) {
	a := MustLeftDeep(0, 1, 2, 3) // plan (a)
	b := MustLeftDeep(1, 2, 0, 3) // plan (b): state {1,2} incomplete vs (a)
	cB := Diff(AllComplete(a), b)
	if cB[tuple.NewStreamSet(1, 2)] {
		t.Fatal("{1,2} must be incomplete after a→b")
	}
	// Transition b→c before {1,2} completes; c also contains {1,2}.
	c := MustLeftDeep(1, 2, 3, 0)
	cC := Diff(cB, c)
	if cC[tuple.NewStreamSet(1, 2)] {
		t.Fatal("{1,2} must stay incomplete after b→c (Definition 1 naive application would wrongly mark it complete)")
	}
	if !cC[tuple.NewStreamSet(0, 1, 2, 3)] {
		t.Fatal("root state should be complete")
	}
}

func TestDiffBushy(t *testing.T) {
	// Old: (((0⋈1)⋈2)⋈3). New: (0⋈1) ⋈ (2⋈3) — bushy.
	old := AllComplete(MustLeftDeep(0, 1, 2, 3))
	neu := MustNew(Join(Join(Leaf(0), Leaf(1)), Join(Leaf(2), Leaf(3))))
	c := Diff(old, neu)
	if !c[tuple.NewStreamSet(0, 1)] {
		t.Error("{0,1} should be complete")
	}
	if c[tuple.NewStreamSet(2, 3)] {
		t.Error("{2,3} should be incomplete")
	}
	if !c[tuple.NewStreamSet(0, 1, 2, 3)] {
		t.Error("root should be complete")
	}
}

// Property (§5.2): for any pairwise exchange in a left-deep plan, the
// number of incomplete states reported by Diff equals the closed form
// used in the probabilistic analysis.
func TestSwapIncompleteStatesMatchesDiffProperty(t *testing.T) {
	f := func(seedRaw int64) bool {
		rng := rand.New(rand.NewSource(seedRaw))
		n := 3 + rng.Intn(18) // streams
		order := make([]tuple.StreamID, n)
		for i := range order {
			order[i] = tuple.StreamID(i)
		}
		old := MustLeftDeep(order...)
		i := rng.Intn(n)
		j := rng.Intn(n)
		neu, err := old.Swap(i, j)
		if err != nil {
			return false
		}
		got := IncompleteCount(Diff(AllComplete(old), neu), neu)
		return got == SwapIncompleteStates(i, j)
	}
	if err := quick.Check(f, testseed.Quick(t, 1, 200)); err != nil {
		t.Fatal(err)
	}
}

func TestSwapIncompleteStatesEdgeCases(t *testing.T) {
	cases := []struct{ i, j, want int }{
		{0, 0, 0}, {0, 1, 0}, {1, 0, 0}, {1, 2, 1}, {0, 3, 2}, {2, 5, 3}, {5, 2, 3},
	}
	for _, c := range cases {
		if got := SwapIncompleteStates(c.i, c.j); got != c.want {
			t.Errorf("SwapIncompleteStates(%d,%d) = %d, want %d", c.i, c.j, got, c.want)
		}
	}
}

func TestDescribeAndRender(t *testing.T) {
	p := MustLeftDeep(0, 1, 2)
	c := Diff(AllComplete(p), MustLeftDeep(0, 2, 1))
	if Describe(c, p) == "" {
		t.Error("empty Describe")
	}
	if p.Render() == "" {
		t.Error("empty Render")
	}
}

func TestWalkOrder(t *testing.T) {
	p := MustLeftDeep(0, 1, 2)
	var sets []tuple.StreamSet
	p.Root.Walk(func(n *Node) { sets = append(sets, n.Set()) })
	// Bottom-up: leaf 0, leaf 1, join {0,1}, leaf 2, join {0,1,2}.
	want := []tuple.StreamSet{
		tuple.NewStreamSet(0), tuple.NewStreamSet(1), tuple.NewStreamSet(0, 1),
		tuple.NewStreamSet(2), tuple.NewStreamSet(0, 1, 2),
	}
	if len(sets) != len(want) {
		t.Fatalf("Walk visited %d nodes, want %d", len(sets), len(want))
	}
	for i := range want {
		if sets[i] != want[i] {
			t.Fatalf("Walk order = %v, want %v", sets, want)
		}
	}
}
