package plan

import (
	"fmt"
	"sort"
	"strings"

	"jisc/internal/tuple"
)

// Completeness records, for each state (stream set) of a plan, whether
// it is complete per Definition 1. It is the contract between the
// planner-side diff and the runtime migration strategies.
type Completeness map[tuple.StreamSet]bool

// AllComplete returns the completeness map of a plan running in steady
// state: every state (leaf and join) complete.
func AllComplete(p *Plan) Completeness {
	c := make(Completeness)
	for _, s := range p.StateSets() {
		c[s] = true
	}
	return c
}

// Diff classifies the states of newPlan against the states of the old
// plan. A new state is complete iff it existed in the old plan AND was
// complete there (§4.5's overlapped-transition rule: a state copied
// while still incomplete stays incomplete). Leaf states are always
// complete (§4.7: unary operators' states are always complete).
func Diff(old Completeness, newPlan *Plan) Completeness {
	out := make(Completeness)
	newPlan.Root.Walk(func(n *Node) {
		set := n.Set()
		if n.IsLeaf() {
			out[set] = true
			return
		}
		complete, existed := old[set]
		out[set] = existed && complete
	})
	return out
}

// IncompleteCount returns how many join states of p are incomplete
// under c.
func IncompleteCount(c Completeness, p *Plan) int {
	n := 0
	for _, s := range p.JoinSets() {
		if !c[s] {
			n++
		}
	}
	return n
}

// CompleteCount returns how many join states of p are complete under
// c — the paper's C_n for a transition into p.
func CompleteCount(c Completeness, p *Plan) int {
	return p.Joins() - IncompleteCount(c, p)
}

// Describe renders the classification for diagnostics, one state per
// line, stable order.
func Describe(c Completeness, p *Plan) string {
	sets := p.JoinSets()
	sort.Slice(sets, func(i, j int) bool { return sets[i] < sets[j] })
	var b strings.Builder
	for _, s := range sets {
		status := "incomplete"
		if c[s] {
			status = "complete"
		}
		fmt.Fprintf(&b, "%v: %s\n", s, status)
	}
	return b.String()
}

// SwapIncompleteStates returns the number of incomplete join states a
// pairwise exchange of 0-based order positions i and j produces in a
// left-deep plan. In the paper's labeling (§5.2) both bottom-join
// streams carry label 1 and the count is J−I; with 0-based order
// indices that is j − max(i,1) for i < j (the join at level k covers
// the order prefix [0..k], so exactly the joins with max(i,1) ≤ k < j
// change their stream set). Checked against Diff by property tests.
func SwapIncompleteStates(i, j int) int {
	if j < i {
		i, j = j, i
	}
	if i == j {
		return 0
	}
	if i < 1 {
		i = 1
	}
	if j <= i {
		return 0
	}
	return j - i
}
