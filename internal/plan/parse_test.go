package plan

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"

	"jisc/internal/testseed"
	"jisc/internal/tuple"
)

func TestParseLeftDeepList(t *testing.T) {
	p := MustParse("0,1,2,3")
	if !p.Equal(MustLeftDeep(0, 1, 2, 3)) {
		t.Fatalf("parsed %s", p)
	}
	if q := MustParse(" 2 , 0 , 1 "); !q.Equal(MustLeftDeep(2, 0, 1)) {
		t.Fatalf("parsed %s", q)
	}
}

func TestParseInfix(t *testing.T) {
	cases := map[string]*Plan{
		"((0⋈1)⋈2)":      MustLeftDeep(0, 1, 2),
		"((0 1) 2)":      MustLeftDeep(0, 1, 2),
		"((0*1)*2)":      MustLeftDeep(0, 1, 2),
		"((0 1) (2 3))":  MustNew(Join(Join(Leaf(0), Leaf(1)), Join(Leaf(2), Leaf(3)))),
		"(3 (1 0))":      MustNew(Join(Leaf(3), Join(Leaf(1), Leaf(0)))),
		"(((0⋈1)⋈2)⋈3)":  MustLeftDeep(0, 1, 2, 3),
		"  ((0 1) 2)   ": MustLeftDeep(0, 1, 2),
	}
	for src, want := range cases {
		got, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		if !got.Equal(want) {
			t.Errorf("Parse(%q) = %s, want %s", src, got, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "   ", "(", ")", "(0", "(0 1", "(0 1))", "0,1,x", "((0 1) 0)",
		"(0 0)", "abc", "(0 1) 2", "0,,1", "999999", "(0 99)",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
}

func TestParseSingleStreamRejected(t *testing.T) {
	if _, err := Parse("0"); err == nil {
		t.Fatal("single-stream plan accepted")
	}
}

// Property: String → Parse round-trips every random plan tree.
func TestParseRoundTripProperty(t *testing.T) {
	build := func(rng *rand.Rand, streams []tuple.StreamID) *Node {
		var rec func(ids []tuple.StreamID) *Node
		rec = func(ids []tuple.StreamID) *Node {
			if len(ids) == 1 {
				return Leaf(ids[0])
			}
			cut := 1 + rng.Intn(len(ids)-1)
			return Join(rec(ids[:cut]), rec(ids[cut:]))
		}
		return rec(streams)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(9)
		ids := make([]tuple.StreamID, n)
		for i := range ids {
			ids[i] = tuple.StreamID(i)
		}
		rng.Shuffle(n, func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		p := MustNew(build(rng, ids))
		q, err := Parse(p.String())
		return err == nil && p.Equal(q)
	}
	if err := quick.Check(f, testseed.Quick(t, 1, 200)); err != nil {
		t.Fatal(err)
	}
}

func TestPlanJSON(t *testing.T) {
	p := MustLeftDeep(0, 1, 2)
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `"((0⋈1)⋈2)"` {
		t.Fatalf("marshal = %s", data)
	}
	var q Plan
	if err := json.Unmarshal(data, &q); err != nil {
		t.Fatal(err)
	}
	if !p.Equal(&q) {
		t.Fatalf("round trip = %s", &q)
	}
	if err := json.Unmarshal([]byte(`"((("`), &q); err == nil {
		t.Fatal("bad plan JSON accepted")
	}
	if err := json.Unmarshal([]byte(`42`), &q); err == nil {
		t.Fatal("non-string plan JSON accepted")
	}
}

func FuzzParse(f *testing.F) {
	for _, seed := range []string{"((0⋈1)⋈2)", "0,1,2", "((0 1) (2 3))", "(((", "0,,1"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		// Any accepted plan must round-trip through its String form.
		q, err := Parse(p.String())
		if err != nil {
			t.Fatalf("round trip of %q -> %q failed: %v", src, p.String(), err)
		}
		if !p.Equal(q) {
			t.Fatalf("round trip of %q changed the plan", src)
		}
	})
}
