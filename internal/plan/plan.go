// Package plan models logical query execution plans: binary
// tree-structured join plans over base streams (§2.1), left-deep and
// bushy shapes, the pairwise join exchanges studied in §5.2, and the
// complete/incomplete state classification of Definition 1 that drives
// every migration strategy.
package plan

import (
	"fmt"
	"strings"

	"jisc/internal/tuple"
)

// Node is one node of a binary tree-structured plan. A leaf scans one
// base stream; an internal node joins its two children.
type Node struct {
	// Stream is the scanned stream when the node is a leaf.
	Stream tuple.StreamID
	// Left and Right are the children; both nil for a leaf.
	Left, Right *Node
}

// Leaf returns a stream-scan node.
func Leaf(id tuple.StreamID) *Node { return &Node{Stream: id} }

// Join returns an internal join node over two subplans.
func Join(left, right *Node) *Node { return &Node{Left: left, Right: right} }

// IsLeaf reports whether the node scans a base stream.
func (n *Node) IsLeaf() bool { return n.Left == nil && n.Right == nil }

// Set returns the set of base streams covered by the subtree — the
// identity of the node's state.
func (n *Node) Set() tuple.StreamSet {
	if n.IsLeaf() {
		return tuple.NewStreamSet(n.Stream)
	}
	return n.Left.Set().Union(n.Right.Set())
}

// Clone returns a deep copy of the subtree.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	return &Node{Stream: n.Stream, Left: n.Left.Clone(), Right: n.Right.Clone()}
}

// Walk visits the subtree bottom-up (children before parents).
func (n *Node) Walk(fn func(*Node)) {
	if n == nil {
		return
	}
	n.Left.Walk(fn)
	n.Right.Walk(fn)
	fn(n)
}

// Joins returns the number of join (internal) nodes in the subtree.
func (n *Node) Joins() int {
	if n == nil || n.IsLeaf() {
		return 0
	}
	return 1 + n.Left.Joins() + n.Right.Joins()
}

// Height returns the height of the subtree; a leaf has height 0.
func (n *Node) Height() int {
	if n == nil || n.IsLeaf() {
		return 0
	}
	lh, rh := n.Left.Height(), n.Right.Height()
	if lh > rh {
		return lh + 1
	}
	return rh + 1
}

// IsLeftDeep reports whether every right child in the subtree is a
// leaf (the shape Procedure 3's simplified completion relies on).
func (n *Node) IsLeftDeep() bool {
	if n == nil || n.IsLeaf() {
		return true
	}
	return n.Right.IsLeaf() && n.Left.IsLeftDeep()
}

// String renders the subtree in the paper's infix notation, e.g.
// "((0⋈1)⋈2)".
func (n *Node) String() string {
	if n.IsLeaf() {
		return fmt.Sprintf("%d", n.Stream)
	}
	return fmt.Sprintf("(%s⋈%s)", n.Left.String(), n.Right.String())
}

// Plan is a validated query execution plan.
type Plan struct {
	Root *Node
	// Streams is the set of base streams the plan covers.
	Streams tuple.StreamSet
}

// New validates the tree (every stream scanned exactly once, at least
// one join) and wraps it in a Plan.
func New(root *Node) (*Plan, error) {
	if root == nil {
		return nil, fmt.Errorf("plan: nil root")
	}
	seen := tuple.StreamSet(0)
	var dup error
	root.Walk(func(n *Node) {
		if n.IsLeaf() {
			if seen.Has(n.Stream) && dup == nil {
				dup = fmt.Errorf("plan: stream %d scanned more than once", n.Stream)
			}
			seen = seen.Add(n.Stream)
			return
		}
		if (n.Left == nil) != (n.Right == nil) {
			if dup == nil {
				dup = fmt.Errorf("plan: unary internal node")
			}
		}
	})
	if dup != nil {
		return nil, dup
	}
	if root.IsLeaf() {
		return nil, fmt.Errorf("plan: single-stream plan has no joins")
	}
	return &Plan{Root: root, Streams: seen}, nil
}

// MustNew is New but panics on error; for literals in tests/examples.
func MustNew(root *Node) *Plan {
	p, err := New(root)
	if err != nil {
		panic(err)
	}
	return p
}

// LeftDeep builds the left-deep plan ((order[0]⋈order[1])⋈order[2])…
// The paper labels order[0] and order[1] position 1 and order[i]
// position i for i ≥ 1 (both bottom-join streams share label 1, §5.2).
func LeftDeep(order ...tuple.StreamID) (*Plan, error) {
	if len(order) < 2 {
		return nil, fmt.Errorf("plan: left-deep plan needs at least 2 streams, got %d", len(order))
	}
	n := Leaf(order[0])
	for _, id := range order[1:] {
		n = Join(n, Leaf(id))
	}
	return New(n)
}

// MustLeftDeep is LeftDeep but panics on error.
func MustLeftDeep(order ...tuple.StreamID) *Plan {
	p, err := LeftDeep(order...)
	if err != nil {
		panic(err)
	}
	return p
}

// Order returns the bottom-up stream order of a left-deep plan, or an
// error if the plan is not left-deep.
func (p *Plan) Order() ([]tuple.StreamID, error) {
	if !p.Root.IsLeftDeep() {
		return nil, fmt.Errorf("plan: not left-deep: %s", p.Root)
	}
	var order []tuple.StreamID
	n := p.Root
	for !n.IsLeaf() {
		order = append(order, n.Right.Stream)
		n = n.Left
	}
	order = append(order, n.Stream)
	// Reverse to bottom-up.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order, nil
}

// Joins returns the number of join operators.
func (p *Plan) Joins() int { return p.Root.Joins() }

// StateSets returns the stream sets of every stateful node (leaves and
// joins), bottom-up.
func (p *Plan) StateSets() []tuple.StreamSet {
	var sets []tuple.StreamSet
	p.Root.Walk(func(n *Node) { sets = append(sets, n.Set()) })
	return sets
}

// JoinSets returns the stream sets of the join (internal) nodes only,
// bottom-up — the states Definition 1 classifies.
func (p *Plan) JoinSets() []tuple.StreamSet {
	var sets []tuple.StreamSet
	p.Root.Walk(func(n *Node) {
		if !n.IsLeaf() {
			sets = append(sets, n.Set())
		}
	})
	return sets
}

// Equal reports whether two plans have identical shape and stream
// placement.
func (p *Plan) Equal(q *Plan) bool {
	var eq func(a, b *Node) bool
	eq = func(a, b *Node) bool {
		if a == nil || b == nil {
			return a == b
		}
		if a.IsLeaf() != b.IsLeaf() {
			return false
		}
		if a.IsLeaf() {
			return a.Stream == b.Stream
		}
		return eq(a.Left, b.Left) && eq(a.Right, b.Right)
	}
	return eq(p.Root, q.Root)
}

// Swap returns a copy of a left-deep plan with the streams at
// (1-based) positions i and j exchanged — the pairwise join exchange
// of §5.2. Position 1 addresses order[1] (the bottom join's inner);
// position 0 addresses the outermost leaf order[0], which the paper
// also labels 1 since both bottom streams share the leaf join.
func (p *Plan) Swap(i, j int) (*Plan, error) {
	order, err := p.Order()
	if err != nil {
		return nil, err
	}
	if i < 0 || j < 0 || i >= len(order) || j >= len(order) {
		return nil, fmt.Errorf("plan: swap positions (%d,%d) out of range [0,%d)", i, j, len(order))
	}
	order[i], order[j] = order[j], order[i]
	return LeftDeep(order...)
}

func (p *Plan) String() string { return p.Root.String() }

// Render returns a multi-line ASCII rendering of the plan tree with
// one node per line, deepest nodes indented most.
func (p *Plan) Render() string {
	var b strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		if n == nil {
			return
		}
		indent := strings.Repeat("  ", depth)
		if n.IsLeaf() {
			fmt.Fprintf(&b, "%sscan %d\n", indent, n.Stream)
			return
		}
		fmt.Fprintf(&b, "%s⋈ %v\n", indent, n.Set())
		walk(n.Left, depth+1)
		walk(n.Right, depth+1)
	}
	walk(p.Root, 0)
	return b.String()
}
