package plan

import "testing"

// FuzzPlanParse throws arbitrary strings at the spec parser.
// Invariants, for any input:
//
//   - Parse never panics;
//   - an accepted spec renders (String) back to a spec that parses,
//     and that render is a fixed point: parse ⇒ render ⇒ parse yields
//     the identical render. This pins the infix grammar and String as
//     exact inverses, which the WAL replay path (MIGRATE records store
//     the infix form) and the sim generator both rely on.
func FuzzPlanParse(f *testing.F) {
	for _, s := range []string{
		"0",
		"0,1,2",
		" 3 , 1 , 2 ",
		"((0⋈1)⋈2)",
		"((0 1) 2)",
		"((0*1)*(2*3))",
		"(((4⋈0)⋈(1⋈3))⋈2)",
		"(0⋈(1⋈(2⋈3)))",
		"((0⋈1)⋈2",   // missing paren
		"((0⋈1)⋈2))", // trailing input
		"0,1,0",      // duplicate leaf
		"0,,1",
		"(⋈)",
		"99999999999999999999",
		"(0⋈63)",
		"(0⋈64)", // stream id out of range
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := Parse(s)
		if err != nil {
			return
		}
		r1 := p.String()
		p2, err := Parse(r1)
		if err != nil {
			t.Fatalf("render of accepted spec %q does not re-parse: %q: %v", s, r1, err)
		}
		if r2 := p2.String(); r2 != r1 {
			t.Fatalf("render is not a fixed point: %q -> %q -> %q", s, r1, r2)
		}
	})
}
