package sim

// Differential comparisons for the batched ingest path. The quartet
// already proves the per-event JISC engine equals the oracle, so the
// batched runs compare FeedBatch directly against per-event Feed on
// otherwise identical engines: any divergence is a batching bug, not
// a join bug, and the mismatch says so.

import (
	"fmt"

	"jisc/internal/core"
	"jisc/internal/engine"
	"jisc/internal/runtime"
	"jisc/internal/workload"
)

// runBatched drives one JISC engine through FeedBatch in BatchSize
// chunks against a per-event reference. Chunks are NOT split at
// migration points: the batched engine installs each plan switch from
// inside the AfterFeed hook, mid-batch, at the exact event index the
// reference switches at — the hook-per-tuple contract FeedBatch
// guarantees.
func runBatched(sc Scenario) *Mismatch {
	plans, err := parsePlans(sc)
	if err != nil {
		return harnessErr(sc, 0, err)
	}
	wm := winMap(sc)

	mk := func(outs map[string]int) engine.Config {
		return engine.Config{
			Plan:          plans[0],
			WindowSizes:   wm,
			Strategy:      core.New(),
			Deterministic: true,
			Output: func(d engine.Delta) {
				if !d.Retraction {
					outs[d.Tuple.Fingerprint()]++
				}
			},
		}
	}

	refOuts := map[string]int{}
	ref := engine.MustNew(mk(refOuts))

	batOuts := map[string]int{}
	var bat *engine.Engine
	var migErr error
	fed, mig := 0, 0
	batCfg := mk(batOuts)
	batCfg.AfterFeed = func(uint64) {
		fed++
		for mig < len(sc.Migrations) && sc.Migrations[mig].At == fed {
			if err := bat.Migrate(plans[1+mig]); err != nil && migErr == nil {
				migErr = fmt.Errorf("batched: mid-batch migrate to %s: %w", plans[1+mig], err)
			}
			mig++
		}
	}
	bat = engine.MustNew(batCfg)
	// Migrations at index 0 precede the first tuple on both sides.
	for mig < len(sc.Migrations) && sc.Migrations[mig].At == 0 {
		if err := bat.Migrate(plans[1+mig]); err != nil {
			return harnessErr(sc, 0, err)
		}
		if err := ref.Migrate(plans[1+mig]); err != nil {
			return harnessErr(sc, 0, err)
		}
		mig++
	}

	compare := func(fed int) *Mismatch {
		if migErr != nil {
			return harnessErr(sc, fed, migErr)
		}
		if !multisetsEqual(refOuts, batOuts) {
			return &Mismatch{Scenario: sc, Engine: "batched", Batch: fed,
				Detail: "FeedBatch output multiset diverges from per-event Feed:\n" + diffMultisets(refOuts, batOuts)}
		}
		r, b := ref.Metrics(), bat.Metrics()
		if r.Input != b.Input || r.Output != b.Output || r.Transitions != b.Transitions {
			return &Mismatch{Scenario: sc, Engine: "batched", Batch: fed,
				Detail: fmt.Sprintf("counters diverge: Input=%d (want %d) Output=%d (want %d) Transitions=%d (want %d)",
					b.Input, r.Input, b.Output, r.Output, b.Transitions, r.Transitions)}
		}
		return nil
	}

	refMig := mig
	for i := 0; i < len(sc.Events); i += sc.BatchSize {
		end := min(i+sc.BatchSize, len(sc.Events))
		bat.FeedBatch(sc.Events[i:end])
		for j := i; j < end; j++ {
			ref.Feed(sc.Events[j])
			for refMig < len(sc.Migrations) && sc.Migrations[refMig].At == j+1 {
				if err := ref.Migrate(plans[1+refMig]); err != nil {
					return harnessErr(sc, j+1, err)
				}
				refMig++
			}
		}
		if m := compare(end); m != nil {
			return m
		}
	}
	return compare(len(sc.Events))
}

// runShardedBatched drives the sharded runtime through FeedBatch —
// the scatter path — against per-shard oracles. The runtime cannot
// switch plans mid-batch (Migrate is a separate control message), so
// chunks split at migration points; within a chunk the scatter must
// preserve per-shard arrival order, which is exactly what the oracles
// check.
func runShardedBatched(sc Scenario) *Mismatch {
	plans, err := parsePlans(sc)
	if err != nil {
		return harnessErr(sc, 0, err)
	}
	shards := sc.Shards
	outs := make([]map[string]int, shards)
	oracles := make([]*oracle, shards)
	for i := range outs {
		outs[i] = map[string]int{}
		oracles[i] = newOracle(sc.Windows)
	}
	rt, err := runtime.New(runtime.Config{
		Engine: engine.Config{
			Plan:          plans[0],
			WindowSizes:   winMap(sc),
			Strategy:      core.New(),
			Deterministic: true,
			Output: func(d engine.Delta) {
				if !d.Retraction {
					outs[runtime.ShardOf(d.Tuple.Key, shards)][d.Tuple.Fingerprint()]++
				}
			},
		},
		Shards: shards,
	})
	if err != nil {
		return harnessErr(sc, 0, err)
	}
	defer rt.Close()

	var pend []workload.Event
	flush := func() error {
		if len(pend) == 0 {
			return nil
		}
		err := rt.FeedBatch(pend)
		for _, ev := range pend {
			oracles[runtime.ShardOf(ev.Key, shards)].feed(ev)
		}
		pend = pend[:0]
		return err
	}

	compare := func(fed, transitions int) *Mismatch {
		if err := rt.Flush(); err != nil {
			return harnessErr(sc, fed, err)
		}
		var want uint64
		for i := range oracles {
			if !multisetsEqual(oracles[i].outs, outs[i]) {
				return &Mismatch{Scenario: sc, Engine: fmt.Sprintf("sharded-batched/shard-%d", i), Batch: fed,
					Detail: "FeedBatch output multiset diverges from per-shard oracle:\n" + diffMultisets(oracles[i].outs, outs[i])}
			}
			want += total(oracles[i].outs)
		}
		s, err := rt.Metrics()
		if err != nil {
			return harnessErr(sc, fed, err)
		}
		if s.Input != uint64(fed) || s.Transitions != uint64(transitions) || s.Output != want {
			return &Mismatch{Scenario: sc, Engine: "sharded-batched", Batch: fed,
				Detail: fmt.Sprintf("counters diverge: Input=%d (want %d) Transitions=%d (want %d) Output=%d (want %d)",
					s.Input, fed, s.Transitions, transitions, s.Output, want)}
		}
		return nil
	}

	mig, transitions := 0, 0
	for i := 0; i <= len(sc.Events); i++ {
		for mig < len(sc.Migrations) && sc.Migrations[mig].At == i {
			if err := flush(); err != nil {
				return harnessErr(sc, i, err)
			}
			if err := rt.Migrate(plans[1+mig]); err != nil {
				return harnessErr(sc, i, err)
			}
			mig++
			transitions++
		}
		if i == len(sc.Events) {
			break
		}
		pend = append(pend, sc.Events[i])
		if (i+1)%sc.BatchSize == 0 {
			if err := flush(); err != nil {
				return harnessErr(sc, i+1, err)
			}
			if m := compare(i+1, transitions); m != nil {
				return m
			}
		}
	}
	if err := flush(); err != nil {
		return harnessErr(sc, len(sc.Events), err)
	}
	return compare(len(sc.Events), transitions)
}
