package sim

import "jisc/internal/workload"

// Shrink reduces a failing scenario to a minimal one that still
// fails, ddmin-style: first truncate to the first divergence point
// and strip the scenario's extra comparisons (crash run, sharding),
// then alternately drop migrations and remove event chunks of halving
// size until neither makes progress or the run budget is spent. check
// is usually Run; because Run is deterministic, rerunning the
// original seed reproduces the same minimal scenario.
func Shrink(sc Scenario, m *Mismatch, check func(Scenario) *Mismatch, budget int) (Scenario, *Mismatch) {
	best, bestM := sc, m
	runs := 0
	try := func(c Scenario) bool {
		if runs >= budget {
			return false
		}
		runs++
		if mm := check(c); mm != nil {
			best, bestM = c, mm
			return true
		}
		return false
	}

	truncate := func() bool {
		if bestM.Batch <= 0 || bestM.Batch >= len(best.Events) {
			return false
		}
		return try(truncated(best, bestM.Batch))
	}
	truncate()

	if best.CrashBudget != 0 || best.CheckpointAt != 0 {
		c := best
		c.CrashBudget, c.CheckpointAt = 0, 0
		try(c)
	}
	if best.Shards > 1 {
		c := best
		c.Shards = 1
		try(c)
	}
	if best.UseFeedBatch {
		c := best
		c.UseFeedBatch = false
		try(c)
	}
	if best.UseAutopilot {
		c := best
		c.UseAutopilot = false
		try(c)
	}
	if best.UseSpill {
		c := best
		c.UseSpill = false
		try(c)
	}
	if best.UseOverload {
		c := best
		c.UseOverload = false
		try(c)
	}

	for progress := true; progress && runs < budget; {
		progress = false
		for i := len(best.Migrations) - 1; i >= 0; i-- {
			if i >= len(best.Migrations) {
				continue
			}
			c := best
			c.Migrations = append(append([]Migration{}, best.Migrations[:i]...), best.Migrations[i+1:]...)
			if try(c) {
				progress = true
			}
		}
		for size := len(best.Events) / 2; size >= 1; size /= 2 {
			for start := 0; start+size <= len(best.Events) && runs < budget; {
				if try(without(best, start, size)) {
					progress = true
					// best shrank in place; the next chunk slid to start.
				} else {
					start += size
				}
			}
		}
		if truncate() {
			progress = true
		}
	}
	return best, bestM
}

// truncated cuts the event log to its first n events, dropping
// migrations scheduled after the cut.
func truncated(sc Scenario, n int) Scenario {
	c := sc
	c.Events = append([]workload.Event{}, sc.Events[:n]...)
	c.Migrations = nil
	for _, m := range sc.Migrations {
		if m.At <= n {
			c.Migrations = append(c.Migrations, m)
		}
	}
	clampAux(&c)
	return c
}

// without removes the event chunk [start, start+size), remapping
// migration indices so each switch keeps its position relative to the
// surviving events.
func without(sc Scenario, start, size int) Scenario {
	c := sc
	c.Events = append(append([]workload.Event{}, sc.Events[:start]...), sc.Events[start+size:]...)
	c.Migrations = make([]Migration, 0, len(sc.Migrations))
	for _, m := range sc.Migrations {
		at := m.At
		switch {
		case at > start+size:
			at -= size
		case at > start:
			at = start
		}
		c.Migrations = append(c.Migrations, Migration{At: at, Plan: m.Plan})
	}
	clampAux(&c)
	return c
}

// clampAux keeps the auxiliary draw points inside the shrunk event
// log.
func clampAux(c *Scenario) {
	if c.CheckpointAt > len(c.Events) {
		c.CheckpointAt = len(c.Events)
	}
}
