package sim

import (
	"fmt"

	"jisc/internal/core"
	"jisc/internal/durable"
	"jisc/internal/engine"
	"jisc/internal/metrics"
	"jisc/internal/migrate"
	"jisc/internal/plan"
	"jisc/internal/runtime"
	"jisc/internal/storage"
	"jisc/internal/tuple"
	"jisc/internal/workload"
)

// Mismatch describes one differential divergence: which engine, how
// many events had been fed when the comparison failed, and the
// multiset/counter difference.
type Mismatch struct {
	Scenario Scenario
	Engine   string
	Batch    int
	Detail   string
}

// Repro is the one-line reproduction command for the scenario's seed.
// Generate and Run are deterministic, so the seed reproduces both the
// failure and — after the harness shrinks — the same minimal
// scenario.
func (m *Mismatch) Repro() string {
	return fmt.Sprintf("go test ./internal/sim -run 'TestSim$' -sim.seed=%d", m.Scenario.Seed)
}

func (m *Mismatch) String() string {
	return fmt.Sprintf("%s diverged after %d events:\n%s", m.Engine, m.Batch, m.Detail)
}

// Run executes one scenario under every applicable comparison and
// returns the first divergence, or nil. The single-shard quartet
// (oracle, JISC, Moving State, Parallel Track) always runs; scenarios
// with Shards > 1 additionally compare the sharded runtime against
// per-shard oracles; scenarios with a crash budget additionally run
// crash/recovery equivalence over a fault-injection filesystem;
// scenarios with UseSpill additionally run a budget-governed
// spill-to-disk engine against the oracle; scenarios with UseOverload
// additionally run the event log through an admission controller
// under a logical clock, checked against an independent shed/reject
// model and a drop-aware oracle.
func Run(sc Scenario) *Mismatch {
	if m := runQuartet(sc); m != nil {
		return m
	}
	if sc.UseFeedBatch {
		if m := runBatched(sc); m != nil {
			return m
		}
	}
	if sc.Shards > 1 {
		if m := runSharded(sc); m != nil {
			return m
		}
		if sc.UseFeedBatch {
			if m := runShardedBatched(sc); m != nil {
				return m
			}
		}
	}
	if sc.CrashBudget > 0 {
		if m := runCrash(sc); m != nil {
			return m
		}
	}
	if sc.UseAutopilot {
		if m := runAutopilot(sc); m != nil {
			return m
		}
	}
	if sc.UseSpill {
		if m := runSpill(sc); m != nil {
			return m
		}
	}
	if sc.UseOverload {
		if m := runOverload(sc); m != nil {
			return m
		}
	}
	return nil
}

// runSpill drives a JISC engine whose state is governed by the
// scenario's tiny byte budget — cold buckets spilled to an in-memory
// filesystem and faulted back on demand — through the same
// event/migration interleaving as the quartet, comparing against the
// oracle after every batch. Small segments keep many files live so
// tombstone garbage and compaction get exercised too.
func runSpill(sc Scenario) *Mismatch {
	plans, err := parsePlans(sc)
	if err != nil {
		return harnessErr(sc, 0, err)
	}
	outs := map[string]int{}
	e := engine.MustNew(engine.Config{
		Plan:              plans[0],
		WindowSizes:       winMap(sc),
		Strategy:          core.New(),
		Deterministic:     true,
		StateBudget:       sc.SpillBudget,
		SpillFS:           storage.NewMemFS(),
		SpillSegmentBytes: 4 << 10,
		Output: func(d engine.Delta) {
			if !d.Retraction {
				outs[d.Tuple.Fingerprint()]++
			}
		},
	})
	defer e.Close()
	orc := newOracle(sc.Windows)

	compare := func(fed, transitions int) *Mismatch {
		if !multisetsEqual(orc.outs, outs) {
			return &Mismatch{Scenario: sc, Engine: "jisc-spill", Batch: fed,
				Detail: "output multiset diverges from oracle:\n" + diffMultisets(orc.outs, outs)}
		}
		s := e.Metrics()
		if s.Input != uint64(fed) || s.Transitions != uint64(transitions) || s.Output != total(outs) {
			return &Mismatch{Scenario: sc, Engine: "jisc-spill", Batch: fed,
				Detail: fmt.Sprintf("counters diverge: Input=%d (want %d) Transitions=%d (want %d) Output=%d (want %d)",
					s.Input, fed, s.Transitions, transitions, s.Output, total(outs))}
		}
		return nil
	}

	mig, transitions := 0, 0
	for i := 0; i <= len(sc.Events); i++ {
		for mig < len(sc.Migrations) && sc.Migrations[mig].At == i {
			p := plans[1+mig]
			if err := e.Migrate(p); err != nil {
				return harnessErr(sc, i, fmt.Errorf("jisc-spill: migrate to %s: %w", p, err))
			}
			mig++
			transitions++
		}
		if i == len(sc.Events) {
			break
		}
		ev := sc.Events[i]
		e.Feed(ev)
		orc.feed(ev)
		if (i+1)%sc.BatchSize == 0 {
			if m := compare(i+1, transitions); m != nil {
				return m
			}
		}
	}
	return compare(len(sc.Events), transitions)
}

// harnessErr wraps an unexpected infrastructure error (plan parse,
// migrate failure) as a mismatch so it surfaces with a repro line.
func harnessErr(sc Scenario, batch int, err error) *Mismatch {
	return &Mismatch{Scenario: sc, Engine: "harness", Batch: batch, Detail: err.Error()}
}

func winMap(sc Scenario) map[tuple.StreamID]int {
	m := make(map[tuple.StreamID]int, len(sc.Windows))
	for i, w := range sc.Windows {
		m[tuple.StreamID(i)] = w
	}
	return m
}

// parsePlans returns the initial plan followed by each migration
// target.
func parsePlans(sc Scenario) ([]*plan.Plan, error) {
	ps := make([]*plan.Plan, 0, 1+len(sc.Migrations))
	p, err := plan.Parse(sc.InitPlan)
	if err != nil {
		return nil, fmt.Errorf("sim: initial plan %q: %w", sc.InitPlan, err)
	}
	ps = append(ps, p)
	for _, mg := range sc.Migrations {
		p, err := plan.Parse(mg.Plan)
		if err != nil {
			return nil, fmt.Errorf("sim: migration plan %q: %w", mg.Plan, err)
		}
		ps = append(ps, p)
	}
	return ps, nil
}

// executor adapts each engine under test to the quartet loop.
type executor struct {
	name    string
	feed    func(workload.Event)
	migrate func(*plan.Plan) error
	metrics func() metrics.Snapshot
	outs    map[string]int
}

// runQuartet drives the three migration strategies and the oracle
// through the same event/migration interleaving, comparing cumulative
// output multisets and STATS counters after every batch.
func runQuartet(sc Scenario) *Mismatch {
	plans, err := parsePlans(sc)
	if err != nil {
		return harnessErr(sc, 0, err)
	}
	wm := winMap(sc)

	var exes []*executor
	mkEngine := func(name string, strat engine.Strategy) {
		ex := &executor{name: name, outs: map[string]int{}}
		e := engine.MustNew(engine.Config{
			Plan:          plans[0],
			WindowSizes:   wm,
			Strategy:      strat,
			Deterministic: true,
			Output: func(d engine.Delta) {
				if !d.Retraction {
					ex.outs[d.Tuple.Fingerprint()]++
				}
			},
		})
		ex.feed = e.Feed
		ex.migrate = e.Migrate
		ex.metrics = e.Metrics
		exes = append(exes, ex)
	}
	mkEngine("jisc", &core.JISC{FaultSkipEveryNth: sc.FaultSkip})
	mkEngine("moving-state", migrate.MovingState{})
	{
		ex := &executor{name: "parallel-track", outs: map[string]int{}}
		pt := migrate.MustNewParallelTrack(migrate.PTConfig{
			Plan:          plans[0],
			WindowSizes:   wm,
			CheckEvery:    sc.CheckEvery,
			Deterministic: true,
			Output: func(d engine.Delta) {
				if !d.Retraction {
					ex.outs[d.Tuple.Fingerprint()]++
				}
			},
		})
		ex.feed = pt.Feed
		ex.migrate = pt.Migrate
		ex.metrics = pt.Metrics
		exes = append(exes, ex)
	}
	orc := newOracle(sc.Windows)

	compare := func(fed, transitions int) *Mismatch {
		for _, ex := range exes {
			if !multisetsEqual(orc.outs, ex.outs) {
				return &Mismatch{Scenario: sc, Engine: ex.name, Batch: fed,
					Detail: "output multiset diverges from oracle:\n" + diffMultisets(orc.outs, ex.outs)}
			}
			s := ex.metrics()
			if s.Input != uint64(fed) || s.Transitions != uint64(transitions) || s.Output != total(ex.outs) {
				return &Mismatch{Scenario: sc, Engine: ex.name, Batch: fed,
					Detail: fmt.Sprintf("counters diverge: Input=%d (want %d) Transitions=%d (want %d) Output=%d (want %d)",
						s.Input, fed, s.Transitions, transitions, s.Output, total(ex.outs))}
			}
		}
		return nil
	}

	mig, transitions := 0, 0
	for i := 0; i <= len(sc.Events); i++ {
		for mig < len(sc.Migrations) && sc.Migrations[mig].At == i {
			p := plans[1+mig]
			for _, ex := range exes {
				if err := ex.migrate(p); err != nil {
					return harnessErr(sc, i, fmt.Errorf("%s: migrate to %s: %w", ex.name, p, err))
				}
			}
			mig++
			transitions++
		}
		if i == len(sc.Events) {
			break
		}
		ev := sc.Events[i]
		for _, ex := range exes {
			ex.feed(ev)
		}
		orc.feed(ev)
		if (i+1)%sc.BatchSize == 0 {
			if m := compare(i+1, transitions); m != nil {
				return m
			}
		}
	}
	return compare(len(sc.Events), transitions)
}

// runSharded drives the sharded runtime (hash-partitioned by join
// key) against one oracle per shard, comparing per-shard output
// multisets at every batch's drain barrier (Flush). Per-stream
// sequence numbers restart per shard, so fingerprints are only
// comparable within a shard — which is exactly the granularity the
// oracle models.
func runSharded(sc Scenario) *Mismatch {
	plans, err := parsePlans(sc)
	if err != nil {
		return harnessErr(sc, 0, err)
	}
	shards := sc.Shards
	outs := make([]map[string]int, shards)
	oracles := make([]*oracle, shards)
	for i := range outs {
		outs[i] = map[string]int{}
		oracles[i] = newOracle(sc.Windows)
	}
	rt, err := runtime.New(runtime.Config{
		Engine: engine.Config{
			Plan:          plans[0],
			WindowSizes:   winMap(sc),
			Strategy:      core.New(),
			Deterministic: true,
			Output: func(d engine.Delta) {
				if !d.Retraction {
					outs[runtime.ShardOf(d.Tuple.Key, shards)][d.Tuple.Fingerprint()]++
				}
			},
		},
		Shards: shards,
	})
	if err != nil {
		return harnessErr(sc, 0, err)
	}
	defer rt.Close()

	compare := func(fed, transitions int) *Mismatch {
		if err := rt.Flush(); err != nil {
			return harnessErr(sc, fed, err)
		}
		var want uint64
		for i := range oracles {
			if !multisetsEqual(oracles[i].outs, outs[i]) {
				return &Mismatch{Scenario: sc, Engine: fmt.Sprintf("sharded/shard-%d", i), Batch: fed,
					Detail: "output multiset diverges from per-shard oracle:\n" + diffMultisets(oracles[i].outs, outs[i])}
			}
			want += total(oracles[i].outs)
		}
		s, err := rt.Metrics()
		if err != nil {
			return harnessErr(sc, fed, err)
		}
		if s.Input != uint64(fed) || s.Transitions != uint64(transitions) || s.Output != want {
			return &Mismatch{Scenario: sc, Engine: "sharded", Batch: fed,
				Detail: fmt.Sprintf("counters diverge: Input=%d (want %d) Transitions=%d (want %d) Output=%d (want %d)",
					s.Input, fed, s.Transitions, transitions, s.Output, want)}
		}
		return nil
	}

	mig, transitions := 0, 0
	for i := 0; i <= len(sc.Events); i++ {
		for mig < len(sc.Migrations) && sc.Migrations[mig].At == i {
			if err := rt.Migrate(plans[1+mig]); err != nil {
				return harnessErr(sc, i, err)
			}
			mig++
			transitions++
		}
		if i == len(sc.Events) {
			break
		}
		ev := sc.Events[i]
		if err := rt.Feed(ev); err != nil {
			return harnessErr(sc, i, err)
		}
		oracles[runtime.ShardOf(ev.Key, shards)].feed(ev)
		if (i+1)%sc.BatchSize == 0 {
			if m := compare(i+1, transitions); m != nil {
				return m
			}
		}
	}
	return compare(len(sc.Events), transitions)
}

// crashOp is one operation of the crash schedule: a plan switch (when
// migrate is non-nil) or an event chunk. Per-event scenarios carry
// one event per op and feed it through Feed (per-event FEED frames);
// UseFeedBatch scenarios carry BatchSize chunks fed through FeedBatch
// (FEEDB frames).
type crashOp struct {
	migrate *plan.Plan
	evs     []workload.Event
	batched bool
}

func applyCrashOp(rt *runtime.Runtime, op crashOp) error {
	if op.migrate != nil {
		return rt.Migrate(op.migrate)
	}
	if op.batched {
		return rt.FeedBatch(op.evs)
	}
	return rt.Feed(op.evs[0])
}

// runCrash checks crash/recovery equivalence: the durable runtime
// (per-shard WAL, FsyncAlways) executes the scenario over a CrashFS
// that cuts writes after CrashBudget bytes; recovery rebuilds it from
// whatever survived and the remainder of the schedule is fed. The
// combined pre-crash + post-recovery output multiset and the final
// counters must match a reference run that never crashed. Acked
// operations form a strict prefix (the CrashFS fails every write
// after the cut, and a failed append is always a torn, unreplayable
// frame), with one genuinely partial case: a Migrate that logged on
// shard 0 but not on later shards. Recovery converges the laggards,
// so the reference treats such a migration as applied; the recovered
// Transitions counter says which case occurred.
func runCrash(sc Scenario) *Mismatch {
	plans, err := parsePlans(sc)
	if err != nil {
		return harnessErr(sc, 0, err)
	}
	ops := make([]crashOp, 0, len(sc.Events)+len(sc.Migrations))
	ckptOp := -1
	ckptPending := false
	var pend []workload.Event
	flushPend := func() {
		if len(pend) == 0 {
			return
		}
		if ckptPending {
			// The checkpoint lands before the chunk whose first event is
			// the draw point; flushPend was forced at the draw, so pend
			// starts there.
			ckptOp = len(ops)
			ckptPending = false
		}
		ops = append(ops, crashOp{evs: pend, batched: sc.UseFeedBatch})
		pend = nil
	}
	mig := 0
	for i := 0; i <= len(sc.Events); i++ {
		for mig < len(sc.Migrations) && sc.Migrations[mig].At == i {
			flushPend()
			ops = append(ops, crashOp{migrate: plans[1+mig]})
			mig++
		}
		if i == len(sc.Events) {
			break
		}
		if sc.CheckpointAt == i+1 {
			flushPend()
			ckptPending = true
		}
		pend = append(pend, sc.Events[i])
		if !sc.UseFeedBatch || len(pend) >= sc.BatchSize {
			flushPend()
		}
	}
	flushPend()

	engCfg := func(outs map[string]int) engine.Config {
		return engine.Config{
			Plan:          plans[0],
			WindowSizes:   winMap(sc),
			Strategy:      core.New(),
			Deterministic: true,
			Output: func(d engine.Delta) {
				if !d.Retraction {
					outs[d.Tuple.Fingerprint()]++
				}
			},
		}
	}

	inner := durable.NewMemFS()
	cfs := durable.NewCrashFS(inner, sc.CrashBudget)
	dopts := durable.Options{
		Dir:                "sim",
		Fsync:              durable.FsyncAlways,
		CheckpointInterval: -1,
		FS:                 cfs,
	}
	preOuts := map[string]int{}
	rt1, err := runtime.New(runtime.Config{Engine: engCfg(preOuts), Shards: sc.Shards, Durability: dopts})
	if err != nil {
		return harnessErr(sc, 0, fmt.Errorf("durable runtime: %w", err))
	}
	failed := -1
	for i, op := range ops {
		if i == ckptOp {
			rt1.CheckpointNow() //nolint:errcheck // a checkpoint crash is a valid draw; the next op observes it
		}
		if err := applyCrashOp(rt1, op); err != nil {
			failed = i
			break
		}
	}
	// Drain: after Close, preOuts holds exactly the outputs of every
	// acked operation (plus, for a batched op that failed mid-scatter,
	// the sub-batches delivered before the failing shard).
	rt1.Close()

	acked := ops
	if failed >= 0 {
		acked = ops[:failed]
	}
	ackedEvents, ackedMigs := 0, 0
	for _, op := range acked {
		if op.migrate != nil {
			ackedMigs++
		} else {
			ackedEvents += len(op.evs)
		}
	}

	// Reboot from what landed on the inner filesystem.
	ropts := dopts
	ropts.FS = inner
	postOuts := map[string]int{}
	rt2, err := runtime.New(runtime.Config{Engine: engCfg(postOuts), Shards: sc.Shards, Durability: ropts})
	if err != nil {
		return &Mismatch{Scenario: sc, Engine: "recovery", Batch: ackedEvents,
			Detail: fmt.Sprintf("recovery failed: %v", err)}
	}
	defer rt2.Close()
	recSnap, err := rt2.Metrics()
	if err != nil {
		return harnessErr(sc, ackedEvents, err)
	}

	// A Migrate that crashed mid-fan-out logged on shard 0 first;
	// recovery converged the laggards, so it counts as applied.
	absorbed := failed >= 0 && ops[failed].migrate != nil && recSnap.Transitions > uint64(ackedMigs)

	refOuts := map[string]int{}
	rtRef, err := runtime.New(runtime.Config{Engine: engCfg(refOuts), Shards: sc.Shards})
	if err != nil {
		return harnessErr(sc, 0, err)
	}
	defer rtRef.Close()
	for _, op := range acked {
		if err := applyCrashOp(rtRef, op); err != nil {
			return harnessErr(sc, ackedEvents, err)
		}
	}
	if absorbed {
		if err := rtRef.Migrate(ops[failed].migrate); err != nil {
			return harnessErr(sc, ackedEvents, err)
		}
		ackedMigs++
	}
	// A batched op that failed mid-scatter delivered whole sub-batches
	// to shards below the failing one (FeedBatch scatters in ascending
	// shard order and a failed WAL append is a torn, unreplayable
	// frame, so a shard's sub-batch is all-or-nothing). The recovered
	// Input says how far the scatter got; the reference absorbs exactly
	// that sub-batch prefix. Any other excess is a durability bug.
	if extra := int(recSnap.Input) - ackedEvents; extra != 0 {
		if failed < 0 || ops[failed].migrate != nil || extra < 0 {
			return &Mismatch{Scenario: sc, Engine: "recovery", Batch: ackedEvents,
				Detail: fmt.Sprintf("recovered Input=%d, want %d: replay does not match the acked prefix", recSnap.Input, ackedEvents)}
		}
		subs := make([][]workload.Event, sc.Shards)
		for _, ev := range ops[failed].evs {
			i := runtime.ShardOf(ev.Key, sc.Shards)
			subs[i] = append(subs[i], ev)
		}
		cum, matched := 0, false
		for i := 0; i < sc.Shards && !matched; i++ {
			if len(subs[i]) == 0 {
				continue
			}
			for _, ev := range subs[i] {
				if err := rtRef.Feed(ev); err != nil {
					return harnessErr(sc, ackedEvents, err)
				}
			}
			cum += len(subs[i])
			matched = cum == extra
		}
		if !matched {
			return &Mismatch{Scenario: sc, Engine: "recovery", Batch: ackedEvents,
				Detail: fmt.Sprintf("recovered Input=%d exceeds the acked prefix by %d, which is not a whole-sub-batch prefix of the failed batch (sub-batch sizes of op %d in shard order)", recSnap.Input, extra, failed)}
		}
	}
	if err := rtRef.Flush(); err != nil {
		return harnessErr(sc, ackedEvents, err)
	}
	refMid, err := rtRef.Metrics()
	if err != nil {
		return harnessErr(sc, ackedEvents, err)
	}
	if recSnap.Input != refMid.Input || recSnap.Output != refMid.Output || recSnap.Transitions != refMid.Transitions {
		return &Mismatch{Scenario: sc, Engine: "recovery", Batch: ackedEvents,
			Detail: fmt.Sprintf("recovered counters diverge from reference at crash point: Input=%d (want %d) Output=%d (want %d) Transitions=%d (want %d)",
				recSnap.Input, refMid.Input, recSnap.Output, refMid.Output, recSnap.Transitions, refMid.Transitions)}
	}

	// Feed the rest of the schedule — retrying the failed operation
	// unless recovery absorbed it — to both runtimes.
	var rest []crashOp
	if failed >= 0 {
		rest = ops[failed:]
		if absorbed {
			rest = ops[failed+1:]
		}
	}
	for _, op := range rest {
		if err := applyCrashOp(rt2, op); err != nil {
			return harnessErr(sc, ackedEvents, fmt.Errorf("post-recovery %v: %w", op, err))
		}
		if err := applyCrashOp(rtRef, op); err != nil {
			return harnessErr(sc, ackedEvents, err)
		}
	}
	if err := rt2.Flush(); err != nil {
		return harnessErr(sc, len(sc.Events), err)
	}
	if err := rtRef.Flush(); err != nil {
		return harnessErr(sc, len(sc.Events), err)
	}
	finalRec, err := rt2.Metrics()
	if err != nil {
		return harnessErr(sc, len(sc.Events), err)
	}
	finalRef, err := rtRef.Metrics()
	if err != nil {
		return harnessErr(sc, len(sc.Events), err)
	}
	if finalRec.Input != finalRef.Input || finalRec.Output != finalRef.Output || finalRec.Transitions != finalRef.Transitions {
		return &Mismatch{Scenario: sc, Engine: "recovery", Batch: len(sc.Events),
			Detail: fmt.Sprintf("final counters diverge: Input=%d (want %d) Output=%d (want %d) Transitions=%d (want %d)",
				finalRec.Input, finalRef.Input, finalRec.Output, finalRef.Output, finalRec.Transitions, finalRef.Transitions)}
	}
	union := map[string]int{}
	for k, c := range preOuts {
		union[k] += c
	}
	for k, c := range postOuts {
		union[k] += c
	}
	if !multisetsEqual(refOuts, union) {
		return &Mismatch{Scenario: sc, Engine: "recovery", Batch: len(sc.Events),
			Detail: "pre-crash + post-recovery output multiset diverges from uninterrupted reference:\n" + diffMultisets(refOuts, union)}
	}
	return nil
}
