// Package sim is the deterministic simulation harness: a seeded
// scenario generator, a differential correctness oracle, and a
// shrinker that reduces any divergence to a minimal reproducible
// scenario.
//
// One uint64 seed fully determines a Scenario — query shape, window
// sizes, key distribution, event interleaving, migration schedule,
// shard count, and crash point. Each scenario executes under four
// engines (JISC lazy completion, Moving State, Parallel Track, and a
// naive oracle that recomputes the multi-way join from raw window
// contents on every arrival) and the harness asserts identical output
// multisets and identical STATS-visible counters after every tuple
// batch. Scenarios that draw a shard count > 1 additionally run the
// sharded runtime against per-shard oracles, and scenarios that draw
// a crash point run the durable runtime over a fault-injection
// filesystem and assert post-recovery equivalence. About half of all
// scenarios (UseFeedBatch) also exercise the batched ingest path —
// engine FeedBatch with migrations landing mid-batch, the sharded
// runtime's scatter path, and FEEDB WAL frames under crashes — each
// differentially compared against the per-event path. About a quarter
// (UseAutopilot) additionally run under a single-stepped
// adaptive.Controller, so the plans actually executed are chosen by
// the live autopilot — and whatever it decides, the output multiset
// must still match the oracle. About a third (UseSpill) additionally
// run a JISC engine under a tiny randomized state budget, so nearly
// every bucket lives in spill segments and faults back on demand —
// migrations included, the output must still match the oracle. And
// about a quarter (UseOverload) run the whole event log through an
// admission.Controller driven by a logical clock: chunks are shed by
// the rate limiter and rejected by the in-flight budget exactly as a
// live server would under overload, every decision is checked bit for
// bit against an independent token-bucket/budget model, every offered
// tuple must land in exactly one of admitted/shed/rejected, and the
// engine's output must equal a drop-aware oracle fed only the
// admitted events.
//
// On mismatch the harness shrinks (Shrink) and prints a one-line
// repro: go test ./internal/sim -run 'TestSim$' -sim.seed=N.
package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"jisc/internal/plan"
	"jisc/internal/tuple"
	"jisc/internal/workload"
)

// Migration is one scheduled plan switch: Plan is installed before
// event index At is fed. Two Migrations with equal At are applied
// back-to-back with no tuple between them — a switch landing mid-
// completion-episode, the overlapped-transition case of §4.5.
type Migration struct {
	At   int
	Plan string
}

// Scenario is one fully-determined simulation input. Generate derives
// every field from the seed; the shrinker then edits Events and
// Migrations directly, so Run must treat the struct — not the seed —
// as the source of truth.
type Scenario struct {
	Seed    uint64
	Streams int
	// InitPlan is the initial plan's infix form; Migrations hold the
	// switch targets (ascending At).
	InitPlan   string
	Migrations []Migration
	// Windows is the per-stream count-window size.
	Windows []int
	Dist    workload.KeyDist
	Domain  int64
	// Weights skews per-stream arrival rates; nil means round-robin.
	Weights []float64
	Events  []workload.Event
	// BatchSize is the tuple-batch length between differential
	// comparisons.
	BatchSize int
	// CheckEvery is the Parallel Track discard-scan period.
	CheckEvery int
	// Shards, when > 1, additionally runs the sharded runtime against
	// per-shard oracles.
	Shards int
	// CrashBudget, when > 0, additionally runs the durable runtime
	// over a CrashFS with this write budget and asserts post-recovery
	// equivalence. CheckpointAt, when > 0, takes a manual checkpoint
	// before feeding that event index.
	CrashBudget  int64
	CheckpointAt int
	// FaultSkip is test-only fault injection: every FaultSkip-th JISC
	// completion episode is skipped (core.JISC.FaultSkipEveryNth). The
	// self-test sets it to prove the oracle catches the lost results.
	FaultSkip int
	// UseFeedBatch routes the scenario through the batched ingest path
	// as well: the engine's FeedBatch (migrations land mid-batch via
	// the AfterFeed hook), the sharded runtime's FeedBatch, and — when
	// the scenario also draws a crash — FEEDB WAL frames, each compared
	// differentially against the per-event path. BatchSize doubles as
	// the chunk length.
	UseFeedBatch bool
	// UseAutopilot additionally runs the scenario under a
	// single-stepped adaptive.Controller choosing plans from live
	// selectivities (on top of the scheduled Migrations), compared
	// against the plan-independent oracle. Autopilot scenarios draw a
	// left-deep InitPlan, since the advisor only advises left-deep
	// current plans.
	UseAutopilot bool
	// UseSpill additionally runs a JISC engine whose state is governed
	// by SpillBudget bytes — cold buckets spill to an in-memory
	// filesystem and fault back on probe — compared against the
	// oracle. Budgets of a few hundred bytes force nearly all state
	// through the spill/fault cycle.
	UseSpill    bool
	SpillBudget int64
	// UseOverload additionally runs the scenario through an
	// admission.Controller under a logical clock: a token bucket of
	// OverloadRate tuples/sec (capacity OverloadBurst) sheds chunks, an
	// OverloadBudget-byte in-flight budget rejects them, and the run is
	// checked three ways — every admission decision against an
	// independent arithmetic model (bit for bit), every offered tuple
	// conserved across admitted/shed/rejected, and the engine's output
	// against a drop-aware oracle fed exactly the admitted events.
	UseOverload    bool
	OverloadRate   float64
	OverloadBurst  float64
	OverloadBudget int64
}

// Generate derives a complete Scenario from one seed. Independent
// sub-generators (shape, events, migrations, crash point) use labeled
// derived seeds, so the draws are uncorrelated but each is a pure
// function of the scenario seed.
func Generate(seed uint64) Scenario {
	rng := rand.New(rand.NewSource(workload.DeriveSeed(seed, "shape")))
	sc := Scenario{Seed: seed}
	sc.Streams = 3 + rng.Intn(4)
	sc.Domain = int64(2 + rng.Intn(9))
	if rng.Intn(4) == 0 {
		sc.Dist = workload.Zipf
	}
	sc.Windows = make([]int, sc.Streams)
	for i := range sc.Windows {
		sc.Windows[i] = 2 + rng.Intn(14)
	}
	limitFanout(&sc)
	if rng.Intn(2) == 0 {
		sc.Weights = make([]float64, sc.Streams)
		for i := range sc.Weights {
			sc.Weights[i] = 0.25 + 1.75*rng.Float64()
		}
	}
	sc.InitPlan = randPlan(rng, sc.Streams)

	n := 60 + rng.Intn(240)
	src := workload.MustNewSource(workload.Config{
		Streams: sc.Streams,
		Domain:  sc.Domain,
		Dist:    sc.Dist,
		Seed:    workload.DeriveSeed(seed, "events"),
		Weights: sc.Weights,
	})
	sc.Events = src.Take(n)

	mrng := rand.New(rand.NewSource(workload.DeriveSeed(seed, "migrations")))
	k := mrng.Intn(5)
	ats := make([]int, 0, k)
	for i := 0; i < k; i++ {
		if len(ats) > 0 && mrng.Intn(3) == 0 {
			// Back-to-back switch: same index as the previous one, so
			// the second Migrate lands while the first transition's
			// states are still incomplete.
			ats = append(ats, ats[len(ats)-1])
		} else {
			ats = append(ats, 1+mrng.Intn(n))
		}
	}
	sort.Ints(ats)
	cur := sc.InitPlan
	for _, at := range ats {
		p := randPlan(mrng, sc.Streams)
		for tries := 0; p == cur && tries < 8; tries++ {
			p = randPlan(mrng, sc.Streams)
		}
		sc.Migrations = append(sc.Migrations, Migration{At: at, Plan: p})
		cur = p
	}
	sc.BatchSize = 5 + mrng.Intn(40)
	sc.CheckEvery = 3 + mrng.Intn(9)
	sc.Shards = 1 + mrng.Intn(4)

	crng := rand.New(rand.NewSource(workload.DeriveSeed(seed, "crash")))
	if crng.Intn(3) == 0 {
		sc.CrashBudget = 256 + crng.Int63n(int64(n)*30)
		if crng.Intn(2) == 0 {
			sc.CheckpointAt = 1 + crng.Intn(n)
		}
	}

	brng := rand.New(rand.NewSource(workload.DeriveSeed(seed, "feedbatch")))
	sc.UseFeedBatch = brng.Intn(2) == 0

	arng := rand.New(rand.NewSource(workload.DeriveSeed(seed, "autopilot")))
	if arng.Intn(4) == 0 {
		sc.UseAutopilot = true
		ids := make([]tuple.StreamID, sc.Streams)
		for i := range ids {
			ids[i] = tuple.StreamID(i)
		}
		arng.Shuffle(sc.Streams, func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		sc.InitPlan = plan.MustLeftDeep(ids...).String()
	}

	srng := rand.New(rand.NewSource(workload.DeriveSeed(seed, "spill")))
	if srng.Intn(3) == 0 {
		sc.UseSpill = true
		sc.SpillBudget = 128 + srng.Int63n(4096)
	}

	orng := rand.New(rand.NewSource(workload.DeriveSeed(seed, "overload")))
	if orng.Intn(4) == 0 {
		drawOverload(&sc, orng)
	}
	return sc
}

// limitFanout bounds the expected per-arrival output fan-out so a
// single scenario cannot draw a combination of tiny domain, wide
// windows, and many streams that multiplies into millions of results.
// The bound is on the product over streams of the per-stream match
// estimate window/domain; Zipf scenarios use an effective domain of 2
// because s=1.1 concentrates most mass on the smallest keys.
func limitFanout(sc *Scenario) {
	dom := float64(sc.Domain)
	if sc.Dist == workload.Zipf {
		dom = 2
	}
	for {
		fan := 1.0
		for _, w := range sc.Windows {
			if m := float64(w) / dom; m > 1 {
				fan *= m
			}
		}
		if fan <= 64 {
			return
		}
		// Halve the widest window (floor 2) and re-estimate.
		widest := 0
		for i, w := range sc.Windows {
			if w > sc.Windows[widest] {
				widest = i
			}
		}
		if sc.Windows[widest] <= 2 {
			return
		}
		sc.Windows[widest] /= 2
	}
}

// randPlan draws a random plan over streams 0..streams-1: a shuffled
// left-deep order two thirds of the time, a random bushy tree
// otherwise.
func randPlan(rng *rand.Rand, streams int) string {
	ids := make([]tuple.StreamID, streams)
	for i := range ids {
		ids[i] = tuple.StreamID(i)
	}
	rng.Shuffle(streams, func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	if rng.Intn(3) > 0 {
		return plan.MustLeftDeep(ids...).String()
	}
	var build func(part []tuple.StreamID) *plan.Node
	build = func(part []tuple.StreamID) *plan.Node {
		if len(part) == 1 {
			return plan.Leaf(part[0])
		}
		cut := 1 + rng.Intn(len(part)-1)
		return plan.Join(build(part[:cut]), build(part[cut:]))
	}
	return plan.MustNew(build(ids)).String()
}

// Describe renders a scenario as a human-readable dump — the shape
// line, the migration schedule, and every event. Printed for shrunk
// (minimal) scenarios only; an unshrunk scenario is reproduced from
// its seed instead.
func Describe(sc Scenario) string {
	var b strings.Builder
	fmt.Fprintf(&b, "  seed=%d streams=%d domain=%d dist=%d windows=%v shards=%d batch=%d checkEvery=%d crashBudget=%d ckptAt=%d faultSkip=%d feedBatch=%v autopilot=%v spill=%v spillBudget=%d overload=%v rate=%.1f oburst=%.1f obudget=%d\n",
		sc.Seed, sc.Streams, sc.Domain, sc.Dist, sc.Windows, sc.Shards, sc.BatchSize, sc.CheckEvery, sc.CrashBudget, sc.CheckpointAt, sc.FaultSkip, sc.UseFeedBatch, sc.UseAutopilot, sc.UseSpill, sc.SpillBudget, sc.UseOverload, sc.OverloadRate, sc.OverloadBurst, sc.OverloadBudget)
	fmt.Fprintf(&b, "  plan %s\n", sc.InitPlan)
	for _, m := range sc.Migrations {
		fmt.Fprintf(&b, "  migrate@%d -> %s\n", m.At, m.Plan)
	}
	for i, ev := range sc.Events {
		fmt.Fprintf(&b, "  ev[%d] stream=%d key=%d\n", i, ev.Stream, ev.Key)
	}
	return b.String()
}
