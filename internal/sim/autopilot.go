package sim

import (
	"fmt"
	"time"

	"jisc/internal/adaptive"
	"jisc/internal/core"
	"jisc/internal/engine"
)

// runAutopilot drives a JISC engine whose plan is chosen by a
// single-stepped adaptive.Controller — not (only) by the scenario's
// migration schedule — against the plan-independent oracle. The
// controller runs in its deterministic mode: no goroutine, one Step on
// a logical clock after every comparison batch, regression guard
// disabled (the engine runs without obs instrumentation, and the sim
// must not depend on wall-clock latency). Whatever plans the
// controller installs, the output multiset must match the oracle and
// the Transitions counter must equal scheduled + autopilot migrations.
func runAutopilot(sc Scenario) *Mismatch {
	m, _ := runAutopilotCount(sc)
	return m
}

// runAutopilotCount is runAutopilot, also reporting how many plans the
// controller installed (for coverage assertions in the forced sweep).
func runAutopilotCount(sc Scenario) (*Mismatch, uint64) {
	plans, err := parsePlans(sc)
	if err != nil {
		return harnessErr(sc, 0, err), 0
	}
	outs := map[string]int{}
	e := engine.MustNew(engine.Config{
		Plan:          plans[0],
		WindowSizes:   winMap(sc),
		Strategy:      core.New(),
		Deterministic: true,
		Output: func(d engine.Delta) {
			if !d.Retraction {
				outs[d.Tuple.Fingerprint()]++
			}
		},
	})
	ctl := adaptive.MustNew(adaptive.SingleEngine{E: e}, adaptive.Config{
		Confirm:          2,
		Cooldown:         2 * time.Second,
		MinProbes:        4,
		RegressionFactor: -1,
	})
	orc := newOracle(sc.Windows)

	compare := func(fed, scheduled int) *Mismatch {
		if !multisetsEqual(orc.outs, outs) {
			return &Mismatch{Scenario: sc, Engine: "autopilot", Batch: fed,
				Detail: "output multiset diverges from oracle:\n" + diffMultisets(orc.outs, outs)}
		}
		s := e.Metrics()
		wantTrans := uint64(scheduled) + ctl.Migrations()
		if s.Input != uint64(fed) || s.Transitions != wantTrans || s.Output != total(outs) {
			return &Mismatch{Scenario: sc, Engine: "autopilot", Batch: fed,
				Detail: fmt.Sprintf("counters diverge: Input=%d (want %d) Transitions=%d (want %d scheduled + %d autopilot) Output=%d (want %d)",
					s.Input, fed, s.Transitions, scheduled, ctl.Migrations(), s.Output, total(outs))}
		}
		return nil
	}

	clock := time.Unix(0, 0)
	mig, scheduled := 0, 0
	for i := 0; i <= len(sc.Events); i++ {
		for mig < len(sc.Migrations) && sc.Migrations[mig].At == i {
			if err := e.Migrate(plans[1+mig]); err != nil {
				return harnessErr(sc, i, err), ctl.Migrations()
			}
			mig++
			scheduled++
		}
		if i == len(sc.Events) {
			break
		}
		e.Feed(sc.Events[i])
		orc.feed(sc.Events[i])
		if (i+1)%sc.BatchSize == 0 {
			// One decision tick per batch, a logical second apart so the
			// controller's cooldown gates ticks, not wall time.
			clock = clock.Add(time.Second)
			ctl.Step(clock)
			if m := compare(i+1, scheduled); m != nil {
				return m, ctl.Migrations()
			}
		}
	}
	return compare(len(sc.Events), scheduled), ctl.Migrations()
}
